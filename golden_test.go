package treegion

import (
	"os"
	"strings"
	"testing"
)

// TestGoldenFig1 compiles the shipped testdata/fig1.tir (the paper's
// Figure 1 CFG) under every region former and locks in the qualitative
// outcomes: region structure, code expansion, and the performance ordering
// the paper's worked example demonstrates.
func TestGoldenFig1(t *testing.T) {
	src, err := os.ReadFile("testdata/fig1.tir")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := ParseFunction(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(fn.Blocks) != 9 || fn.NumOps() != 24 {
		t.Fatalf("fig1.tir: %d blocks / %d ops, want 9 / 24", len(fn.Blocks), fn.NumOps())
	}
	prof, err := ProfileFunction(fn, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}

	compile := func(kind RegionKind, rename bool) *FunctionResult {
		cfg := Config{
			Kind: kind, Heuristic: GlobalWeight, Machine: FourU,
			Rename: rename, DominatorParallelism: kind == TreegionTD,
			TD: TDConfig{ExpansionLimit: 2.0, PathLimit: 20, MergeLimit: 4},
		}
		res, err := CompileFunction(fn.Clone(), prof.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	tree := compile(Treegion, true)
	// Treegion formation on Fig. 1: exactly three regions —
	// {bb1..bb4,bb8}, {bb5,bb6,bb7}, {bb9} in the paper's numbering.
	if len(tree.Regions) != 3 {
		t.Fatalf("fig1 forms %d treegions, want 3", len(tree.Regions))
	}
	sizes := map[int]int{}
	for _, r := range tree.Regions {
		sizes[len(r.Blocks)]++
	}
	if sizes[5] != 1 || sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("treegion sizes = %v, want {5,3,1}", sizes)
	}
	if tree.OpsAfter != tree.OpsBefore {
		t.Fatal("plain treegions must not expand code")
	}

	bb := compile(BasicBlocks, true)
	slr := compile(SLR, true)
	sb := compile(Superblock, false)
	td := compile(TreegionTD, true)

	// Orderings the paper's example implies: every region scheme beats
	// basic blocks; tail-duplicated treegions are the best.
	for _, c := range []struct {
		name string
		r    *FunctionResult
	}{{"slr", slr}, {"sb", sb}, {"tree", tree}, {"td", td}} {
		if c.r.Time >= bb.Time {
			t.Errorf("%s (%v) does not beat basic blocks (%v)", c.name, c.r.Time, bb.Time)
		}
	}
	if td.Time > tree.Time {
		t.Errorf("tree-td (%v) worse than plain treegions (%v) on fig1", td.Time, tree.Time)
	}
	if td.OpsAfter <= td.OpsBefore {
		t.Error("tree-td did not duplicate on fig1 (bb5/bb9 merges should fold in)")
	}

	// The worked example's renaming fires (r4a/r5a analogues).
	if tree.NumRenamed < 2 {
		t.Errorf("renamed = %d, want the example's conflicting defs renamed", tree.NumRenamed)
	}
}

func TestDOTFacade(t *testing.T) {
	src, err := os.ReadFile("testdata/fig1.tir")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := ParseFunction(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileFunction(fn, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileFunction(fn, prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dot := DOT(res.Fn, res.Regions, res.Prof)
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "cluster_0") {
		t.Fatalf("DOT output malformed:\n%s", dot[:200])
	}
}

func TestPrintFunctionFacade(t *testing.T) {
	prog, err := GenerateBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	text := PrintFunction(prog.Funcs[0])
	back, err := ParseFunction(text)
	if err != nil {
		t.Fatal(err)
	}
	if PrintFunction(back) != text {
		t.Fatal("facade round trip failed")
	}
}
