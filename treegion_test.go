package treegion

import (
	"context"
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/region"
	"treegion/internal/sched"
)

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	want := []string{"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"}
	if len(names) != len(want) {
		t.Fatalf("Benchmarks() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Benchmarks() = %v, want %v", names, want)
		}
	}
	if _, err := GenerateBenchmark("nonesuch"); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

func TestEndToEndPipeline(t *testing.T) {
	prog, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(context.Background(), prog, profs, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(context.Background(), prog, profs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedup(base.Time, res.Time)
	if sp < 1.5 {
		t.Fatalf("treegion speedup = %.3f, want well above 1 (the paper's headline effect)", sp)
	}
	// Compilation must not mutate the cached program: recompiling gives the
	// same numbers.
	res2, err := Compile(context.Background(), prog, profs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != res2.Time {
		t.Fatalf("recompilation differs: %v vs %v", res.Time, res2.Time)
	}
}

func TestParsersRoundTrip(t *testing.T) {
	for _, h := range []Heuristic{DepHeight, ExitCount, GlobalWeight, WeightedCount} {
		got, err := ParseHeuristic(h.String())
		if err != nil || got != h {
			t.Errorf("ParseHeuristic(%q) = %v, %v", h.String(), got, err)
		}
	}
	for _, k := range []RegionKind{BasicBlocks, SLR, Treegion, Superblock, TreegionTD} {
		got, err := ParseRegionKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseRegionKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if m, ok := MachineByName("8U"); !ok || m.IssueWidth != 8 {
		t.Error("MachineByName failed")
	}
}

// paperCFG builds the Figure 1 CFG with the Figures 4/5 ops; see
// examples/paperfigure for the annotated version.
func paperCFG(t *testing.T) (*ir.Function, *profile.Data) {
	t.Helper()
	f := ir.NewFunction("fig1")
	bb := make([]*ir.Block, 9)
	for i := range bb {
		bb[i] = f.NewBlock()
	}
	rA, rB := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	r1, r2, r3 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	r4, r5, r6 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	r100 := f.NewReg(ir.ClassGPR)
	p1, p3 := f.NewReg(ir.ClassPred), f.NewReg(ir.ClassPred)

	f.EmitMovI(bb[0], rA, 1000)
	f.EmitMovI(bb[0], rB, 2000)
	f.EmitLd(bb[0], r1, rA, 0)
	f.EmitLd(bb[0], r2, rB, 0)
	f.EmitCmpp(bb[0], p1, ir.NoReg, ir.CondGT, r1, r2)
	b8 := f.NewReg(ir.ClassBTR)
	f.EmitPbr(bb[0], b8, bb[7].ID)
	f.EmitBrct(bb[0], b8, p1, bb[7].ID, 0.35)
	bb[0].FallThrough = bb[1].ID

	f.EmitMovI(bb[1], r100, 100)
	f.EmitALU(bb[1], ir.Add, r3, r1, r2)
	f.EmitCmpp(bb[1], p3, ir.NoReg, ir.CondLT, r3, r100)
	b4 := f.NewReg(ir.ClassBTR)
	f.EmitPbr(bb[1], b4, bb[3].ID)
	f.EmitBrct(bb[1], b4, p3, bb[3].ID, 0.4)
	bb[1].FallThrough = bb[2].ID

	f.EmitMovI(bb[2], r4, 1)
	f.EmitMovI(bb[2], r5, 2)
	bb[2].FallThrough = bb[4].ID
	f.EmitMovI(bb[3], r4, 3)
	f.EmitMovI(bb[3], r5, 4)
	bb[3].FallThrough = bb[4].ID

	f.EmitMovI(bb[4], r6, 0)
	p5 := f.NewReg(ir.ClassPred)
	f.EmitCmpp(bb[4], p5, ir.NoReg, ir.CondGT, r4, r5)
	f.EmitBrct(bb[4], ir.NoReg, p5, bb[5].ID, 0.5)
	bb[4].FallThrough = bb[6].ID
	f.EmitSt(bb[5], rA, 8, r4)
	bb[5].FallThrough = bb[8].ID
	f.EmitSt(bb[6], rA, 16, r5)
	bb[6].FallThrough = bb[8].ID
	f.EmitMovI(bb[7], r6, 5)
	bb[7].FallThrough = bb[8].ID
	f.EmitSt(bb[8], rB, 8, r6)
	f.EmitRet(bb[8])
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	prof := profile.New()
	for _, w := range []struct {
		b ir.BlockID
		v float64
	}{{0, 100}, {1, 65}, {2, 40}, {3, 25}, {4, 65}, {5, 32}, {6, 33}, {7, 35}, {8, 100}} {
		prof.AddBlock(w.b, w.v)
	}
	for _, e := range []struct {
		f, t ir.BlockID
		v    float64
	}{
		{0, 7, 35}, {0, 1, 65}, {1, 3, 25}, {1, 2, 40}, {2, 4, 40}, {3, 4, 25},
		{4, 5, 32}, {4, 6, 33}, {5, 8, 32}, {6, 8, 33}, {7, 8, 35},
	} {
		prof.AddEdge(e.f, e.t, e.v)
	}
	return f, prof
}

// TestPaperWorkedExample replays the Figures 4/5 comparison: on the same
// code and profile, the treegion schedule's weighted time beats the
// superblock setup (the paper's 525 vs 500 cycles).
func TestPaperWorkedExample(t *testing.T) {
	measure := func(fn *ir.Function, prof *profile.Data, r *region.Region, rename bool) float64 {
		lv := cfg.ComputeLiveness(cfg.New(fn))
		g, err := ddg.Build(fn, r, ddg.Options{Rename: rename, Liveness: lv, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		s := sched.ListSchedule(g, machine.FourU, core.GlobalWeight.Keys)
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
		return eval.MeasureRegion(s, prof, lv).Time
	}

	// Superblock setup: trace (bb1,bb2,bb3) + bb4 + bb8 sections.
	fnSB, profSB := paperCFG(t)
	trace := region.New(fnSB, region.KindSuperblock, 0)
	trace.Add(1, 0)
	trace.Add(2, 1)
	sbTime := measure(fnSB, profSB, trace, false) +
		measure(fnSB, profSB, region.New(fnSB, region.KindSuperblock, 3), false) +
		measure(fnSB, profSB, region.New(fnSB, region.KindSuperblock, 7), false)

	// Treegion: formation gives {bb1,bb2,bb3,bb4,bb8} rooted at bb1.
	fnT, profT := paperCFG(t)
	var top *region.Region
	for _, r := range core.Form(fnT, cfg.New(fnT)) {
		if r.Root == 0 {
			top = r
		}
	}
	if top == nil || len(top.Blocks) != 5 {
		t.Fatalf("top treegion = %v, want the paper's 5-block tree", top)
	}
	treeTime := measure(fnT, profT, top, true)

	if treeTime >= sbTime {
		t.Fatalf("treegion (%v) must beat the superblock setup (%v) on the worked example",
			treeTime, sbTime)
	}
	// Figure 5's renamed registers (r4a, r5a) must exist: the MOVIs writing
	// r4/r5 on the duplicated-diamond arms conflict and get fresh dests.
	renamed := 0
	for _, b := range top.Blocks {
		for _, op := range fnT.Block(b).Ops {
			if op.Renamed {
				renamed++
			}
		}
	}
	if renamed == 0 {
		t.Fatal("expected renamed ops (the paper's r4a/r5a)")
	}
}

func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation is not short")
	}
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper Table 1: treegions average well above one block and carry
		// tens of ops.
		if r.AvgBlocks < 1.5 || r.AvgOps < 10 {
			t.Errorf("%s: treegion stats too small: %+v", r.Benchmark, r)
		}
	}
	slr, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if slr[i].AvgBlocks >= rows[i].AvgBlocks {
			t.Errorf("%s: SLRs (%v blocks) should be smaller than treegions (%v)",
				slr[i].Benchmark, slr[i].AvgBlocks, rows[i].AvgBlocks)
		}
	}
	// One speedup sanity point: treegions with global weight beat the
	// baseline on the 8U machine for every benchmark.
	for i := range s.Programs {
		sp, err := s.SpeedupOf(i, Config{Kind: Treegion, Heuristic: GlobalWeight, Machine: EightU, Rename: true})
		if err != nil {
			t.Fatal(err)
		}
		if sp <= 1.5 {
			t.Errorf("%s: 8U treegion speedup = %.3f", s.Programs[i].Name, sp)
		}
	}
}

func TestGeoMean(t *testing.T) {
	rows := []SpeedupRow{
		{Benchmark: "a", Speedup: map[string]float64{"x": 2}},
		{Benchmark: "b", Speedup: map[string]float64{"x": 8}},
	}
	if g := GeoMean(rows, "x"); g < 3.99 || g > 4.01 {
		t.Fatalf("GeoMean = %v, want 4", g)
	}
	if g := GeoMean(rows, "missing"); g != 0 {
		t.Fatalf("GeoMean of empty column = %v", g)
	}
}
