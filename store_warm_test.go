package treegion

// Acceptance tests for the persistent artifact store: a suite compiled
// against a store directory once must compile ZERO functions when a fresh
// process (fresh memory cache, fresh store handle, same directory)
// compiles it again — every lookup is a disk hit, proven by the pipeline
// telemetry counters — and the restored results must be numerically
// identical to the cold ones.

import (
	"context"
	"strings"
	"testing"

	"treegion/internal/eval"
)

func TestWarmStoreSuiteCompileSkipsScheduler(t *testing.T) {
	dir := t.TempDir()
	progs, err := GenerateSuite()
	if err != nil {
		t.Fatal(err)
	}
	var profs []Profiles
	total := 0
	for _, p := range progs {
		pr, err := ProfileProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		profs = append(profs, pr)
		total += len(p.Funcs)
	}

	// runOnce models one process: its own memory cache and store handle,
	// sharing only the store directory. Besides the aggregate times it
	// renders every function and schedule to text, the byte-level identity
	// witness compared across the cold and warm processes.
	runOnce := func() (*CompileMetrics, []float64, []string) {
		st, err := OpenArtifactStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		cache := NewCompileCache(0)
		cache.SetL2(st)
		m := &CompileMetrics{}
		var times []float64
		var renders []string
		for i := range progs {
			res, err := Compile(context.Background(), progs[i], profs[i], DefaultConfig(),
				WithCache(cache), WithMetrics(m))
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, res.Time)
			for _, fr := range res.Funcs {
				var sb strings.Builder
				sb.WriteString(PrintFunction(fr.Fn))
				for _, sc := range fr.Schedules {
					sb.WriteString(sc.String())
				}
				renders = append(renders, sb.String())
			}
		}
		return m, times, renders
	}

	m1, t1, r1 := runOnce()
	if got := m1.Compiles.Load(); got == 0 {
		t.Fatal("cold run compiled nothing")
	}
	if got := m1.StoreHits.Load(); got != 0 {
		t.Fatalf("cold run took %d store hits from an empty store", got)
	}

	m2, t2, r2 := runOnce()
	if got := m2.Compiles.Load(); got != 0 {
		t.Fatalf("warm run invoked the scheduler %d times, want 0 (all %d functions should come from disk)", got, total)
	}
	if hits := m2.StoreHits.Load(); hits == 0 {
		t.Fatal("warm run reported no store hits")
	}
	if hits, cached := m2.StoreHits.Load(), m2.CacheHits.Load(); hits > cached {
		t.Fatalf("store hits %d exceed total cache hits %d", hits, cached)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("%s: warm time %v != cold time %v", progs[i].Name, t2[i], t1[i])
		}
	}
	// Bit-identical restore: every disk-revived function and schedule must
	// render byte-for-byte equal to what the cold compile produced.
	if len(r1) != len(r2) {
		t.Fatalf("warm run produced %d function renderings, cold produced %d", len(r2), len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("function %d: warm rendering differs from cold compile:\n--- cold\n%s\n--- warm\n%s", i, r1[i], r2[i])
		}
	}
}

// TestWarmStoreServesVerifiedKeysDistinctly: entries cached by an
// unverified run must not satisfy a verifying run (the verify bit is part
// of the content address), and vice versa.
// TestWarmStoreVerdictsPersist covers the verdict cache across process
// restarts: verified and plain compiles share one artifact per key, and the
// verifier's verdict persists beside it, so a verified run over a warm
// store reuses every artifact, and a second verified run re-checks nothing.
func TestWarmStoreVerdictsPersist(t *testing.T) {
	dir := t.TempDir()
	prog, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	run := func(verify bool) *CompileMetrics {
		st, err := OpenArtifactStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		cache := NewCompileCache(0)
		cache.SetL2(st)
		m := &CompileMetrics{}
		opts := []CompileOption{WithCache(cache), WithMetrics(m)}
		if verify {
			opts = append(opts, WithVerify())
		}
		if _, err := Compile(context.Background(), prog, profs, DefaultConfig(), opts...); err != nil {
			t.Fatal(err)
		}
		return m
	}

	cold := run(false)
	if cold.Compiles.Load() == 0 {
		t.Fatal("cold run compiled nothing")
	}
	// A verifying run reuses the plain artifacts (same key) and only runs
	// the verifier — once per function, persisting each verdict.
	verified := run(true)
	if got := verified.Compiles.Load(); got != 0 {
		t.Fatalf("verified run compiled %d functions instead of reusing stored artifacts", got)
	}
	if verified.StoreHits.Load() == 0 {
		t.Fatal("verified run took no store hits")
	}
	if verified.VerifyRuns.Load() == 0 {
		t.Fatal("verified run never ran the verifier")
	}
	// A second verifying run finds both artifact and verdict on disk: no
	// compiles, no verifier executions.
	warm := run(true)
	if got := warm.Compiles.Load(); got != 0 {
		t.Fatalf("second verified run compiled %d functions, want 0", got)
	}
	if warm.StoreHits.Load() == 0 {
		t.Fatal("second verified run took no store hits")
	}
	if got := warm.VerifyRuns.Load(); got != 0 {
		t.Fatalf("second verified run ran the verifier %d times, want 0", got)
	}
	if warm.VerdictHits.Load() == 0 {
		t.Fatal("second verified run took no verdict hits")
	}
}

// TestWarmStoreRestoredResultsDriveExperiments: results revived from disk
// must be structurally complete — the experiment analyses walk regions,
// schedules and DDG nodes of every FunctionResult, so a shallow restore
// would panic or produce different aggregates.
func TestWarmStoreRestoredResultsDriveExperiments(t *testing.T) {
	dir := t.TempDir()
	prog, err := GenerateBenchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*ProgramResult, *CompileMetrics) {
		st, err := OpenArtifactStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		cache := NewCompileCache(0)
		cache.SetL2(st)
		m := &CompileMetrics{}
		res, err := Compile(context.Background(), prog, profs, DefaultConfig(),
			WithCache(cache), WithMetrics(m))
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	cold, _ := run()
	warm, m := run()
	if m.Compiles.Load() != 0 {
		t.Fatalf("warm run compiled %d functions", m.Compiles.Load())
	}
	if warm.Time != cold.Time || warm.CodeExpansion != cold.CodeExpansion {
		t.Fatalf("aggregates differ: time %v/%v expansion %v/%v",
			warm.Time, cold.Time, warm.CodeExpansion, cold.CodeExpansion)
	}
	if warm.RegionStats.Count != cold.RegionStats.Count ||
		warm.RegionStats.AvgBlocks != cold.RegionStats.AvgBlocks {
		t.Fatal("region statistics differ after disk round trip")
	}
	// UtilizationOf walks every schedule's regions, DDG and profile — the
	// deepest structural consumer the experiment layer has.
	cfg := DefaultConfig()
	for i, fr := range warm.Funcs {
		cu := eval.UtilizationOf(cold.Funcs[i], cold.Funcs[i].Prof, cfg.Machine)
		wu := eval.UtilizationOf(fr, fr.Prof, cfg.Machine)
		if cu != wu {
			t.Fatalf("function %s utilization %v != %v", fr.Fn.Name, wu, cu)
		}
	}
}
