module treegion

go 1.22
