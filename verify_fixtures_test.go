package treegion_test

// Adversarial verifier fixtures: each testdata/verify/*.tir program is
// compiled legally, then corrupted in one named, surgical way — a cycle
// moved, a destination retargeted, an immediate tampered with — and the
// static verifier must flag exactly the rule the fixture pins. The
// malformed-IR fixtures skip compilation and are parsed with the unchecked
// parser, since the checked one would reject them at the door.

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/machine"
	"treegion/internal/sched"
	"treegion/internal/verify"
)

// fixture pins one corruption to one rule ID. A nil corrupt marks a
// malformed-IR fixture that is verified as parsed, without compiling.
type fixture struct {
	name string
	rule string
	kind eval.RegionKind
	// sem includes the differential-semantics pass (needs the original).
	sem     bool
	corrupt func(t *testing.T, fr *eval.FunctionResult)
}

var fixtures = []fixture{
	{name: "latency", rule: "SC002", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, add := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Add })
		_, ld := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Ld })
		s.Cycle[add.Index] = s.Cycle[ld.Index]
	}},
	{name: "width", rule: "SC003", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, _ := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.MovI })
		for _, n := range s.Graph.Nodes {
			if n.Op.Opcode == ir.MovI {
				s.Cycle[n.Index] = 0
			}
		}
	}},
	{name: "renameclobber", rule: "SC005", kind: eval.Treegion, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, br := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Brct })
		_, spec := findNode(t, fr, func(n *ddg.Node) bool {
			return n.Home == 1 && !n.Term && len(n.Op.Dests) == 1 &&
				s.Graph.NodeOf(n.Op) == n && s.Cycle[n.Index] <= s.Cycle[br.Index]
		})
		spec.Op.Dests[0] = ir.Reg{Class: ir.ClassGPR, Num: 9}
	}},
	{name: "branchorder", rule: "SC006", kind: eval.Treegion, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, br := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Brct })
		_, bru := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Bru && n.Home == br.Home })
		s.Cycle[bru.Index] = s.Cycle[br.Index] - 1
	}},
	{name: "memorder", rule: "SC004", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, st1 := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St })
		_, st2 := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St && n.Op.Imm == 4 })
		s.Cycle[st2.Index] = s.Cycle[st1.Index] - 1
	}},
	{name: "sinkstore", rule: "SC007", kind: eval.Treegion, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, st := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St })
		_, br := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Brct })
		s.Cycle[st.Index] = s.Cycle[br.Index]
	}},
	{name: "unsched", rule: "SC001", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, st := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St })
		s.Cycle[st.Index] = -1
	}},
	{name: "immtamper", rule: "SEM001", kind: eval.BasicBlocks, sem: true, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		for _, b := range fr.Fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.MovI && op.Imm == 5 {
					op.Imm = 6
					return
				}
			}
		}
		t.Fatal("movi 5 not found")
	}},
	// Malformed-IR fixtures: verified as parsed (unchecked parser).
	{name: "badcfg", rule: "IR004"},
	{name: "retsuccs", rule: "IR005"},
	{name: "useundef", rule: "IR009"},
}

func TestAdversarialFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "verify", fx.name+".tir"))
			if err != nil {
				t.Fatal(err)
			}
			if fx.corrupt == nil {
				fn, err := irtext.ParseUnchecked(string(src))
				if err != nil {
					t.Fatal(err)
				}
				ds := verify.Compiled(fn, nil, nil, verify.Options{Machine: machine.FourU})
				assertRules(t, ds, fx.rule)
				return
			}
			orig, err := irtext.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			prof, err := interp.Profile(orig, 1, 100, interp.Config{MaxSteps: 1_000_000})
			if err != nil {
				t.Fatal(err)
			}
			c := eval.DefaultConfig()
			c.Kind = fx.kind
			c.Machine = machine.FourU
			fr, err := eval.CompileFunction(orig.Clone(), prof.Clone(), c)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opts := verify.Options{Machine: c.Machine, TD: c.TD}
			if fx.sem {
				opts.Orig = orig
			}
			// The uncorrupted compile must be provably legal first — a
			// fixture that trips the verifier on its own proves nothing.
			for _, d := range verify.Compiled(fr.Fn, fr.Regions, fr.Schedules, opts) {
				t.Errorf("clean compile: %s", d)
			}
			if t.Failed() {
				t.FailNow()
			}
			fx.corrupt(t, fr)
			assertRules(t, verify.Compiled(fr.Fn, fr.Regions, fr.Schedules, opts), fx.rule)
		})
	}
}

// assertRules requires at least one diagnostic, every Error-severity rule
// to be exactly want, and no stray advisories.
func assertRules(t *testing.T, ds []verify.Diagnostic, want string) {
	t.Helper()
	if len(ds) == 0 {
		t.Fatalf("corruption went undetected (want %s)", want)
	}
	rules := map[string]bool{}
	for _, d := range ds {
		rules[d.Rule] = true
	}
	var got []string
	for r := range rules {
		got = append(got, r)
	}
	sort.Strings(got)
	if len(got) != 1 || got[0] != want {
		for _, d := range ds {
			t.Logf("  %s", d)
		}
		t.Fatalf("fired rules %v, want exactly [%s]", got, want)
	}
}

// findNode locates the first node in schedule order matching pred, with
// its schedule.
func findNode(t *testing.T, fr *eval.FunctionResult, pred func(*ddg.Node) bool) (*sched.Schedule, *ddg.Node) {
	t.Helper()
	for _, s := range fr.Schedules {
		for _, n := range s.Graph.Nodes {
			if pred(n) {
				return s, n
			}
		}
	}
	t.Fatal("fixture target node not found")
	return nil, nil
}
