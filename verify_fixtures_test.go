package treegion_test

// Adversarial verifier fixtures: each testdata/verify/*.tir program is
// compiled legally, then corrupted in one named, surgical way — a cycle
// moved, a destination retargeted, an immediate tampered with — and the
// static verifier must flag exactly the rule the fixture pins. The
// malformed-IR fixtures skip compilation and are parsed with the unchecked
// parser, since the checked one would reject them at the door.

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/inline"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/sched"
	"treegion/internal/verify"
)

// fixture pins one corruption to one rule ID. A nil corrupt marks a
// malformed-IR fixture that is verified as parsed, without compiling.
type fixture struct {
	name string
	rule string
	kind eval.RegionKind
	// sem includes the differential-semantics pass (needs the original).
	sem bool
	// prog parses the fixture as a multi-function program and verifies
	// function 0 with the program as call-convention context; inline
	// additionally compiles it with demand-driven inlining on, so the
	// splice-integrity rules see real splice records.
	prog    bool
	inline  bool
	corrupt func(t *testing.T, fr *eval.FunctionResult)
}

var fixtures = []fixture{
	{name: "latency", rule: "SC002", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, add := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Add })
		_, ld := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Ld })
		s.Cycle[add.Index] = s.Cycle[ld.Index]
	}},
	{name: "width", rule: "SC003", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, _ := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.MovI })
		for _, n := range s.Graph.Nodes {
			if n.Op.Opcode == ir.MovI {
				s.Cycle[n.Index] = 0
			}
		}
	}},
	{name: "renameclobber", rule: "SC005", kind: eval.Treegion, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, br := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Brct })
		_, spec := findNode(t, fr, func(n *ddg.Node) bool {
			return n.Home == 1 && !n.Term && len(n.Op.Dests) == 1 &&
				s.Graph.NodeOf(n.Op) == n && s.Cycle[n.Index] <= s.Cycle[br.Index]
		})
		spec.Op.Dests[0] = ir.Reg{Class: ir.ClassGPR, Num: 9}
	}},
	{name: "branchorder", rule: "SC006", kind: eval.Treegion, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, br := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Brct })
		_, bru := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Bru && n.Home == br.Home })
		s.Cycle[bru.Index] = s.Cycle[br.Index] - 1
	}},
	{name: "memorder", rule: "SC004", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, st1 := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St })
		_, st2 := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St && n.Op.Imm == 4 })
		s.Cycle[st2.Index] = s.Cycle[st1.Index] - 1
	}},
	{name: "sinkstore", rule: "SC007", kind: eval.Treegion, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, st := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St })
		_, br := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.Brct })
		s.Cycle[st.Index] = s.Cycle[br.Index]
	}},
	{name: "unsched", rule: "SC001", kind: eval.BasicBlocks, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		s, st := findNode(t, fr, func(n *ddg.Node) bool { return n.Op.Opcode == ir.St })
		s.Cycle[st.Index] = -1
	}},
	{name: "immtamper", rule: "SEM001", kind: eval.BasicBlocks, sem: true, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		for _, b := range fr.Fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.MovI && op.Imm == 5 {
					op.Imm = 6
					return
				}
			}
		}
		t.Fatal("movi 5 not found")
	}},
	// Interprocedural fixtures: verified with the resolved program (and,
	// for the splice rules, real inliner records) as context.
	{name: "callconv", rule: "CL001", kind: eval.BasicBlocks, prog: true, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		call := findOp(t, fr, ir.Call)
		fp := findOp(t, fr, ir.MovI)
		for _, b := range fr.Fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.MovI && op.Dests[0].Class == ir.ClassFPR {
					fp = op
				}
			}
		}
		if fp.Dests[0].Class != ir.ClassFPR {
			t.Fatal("no FPR definition in fixture")
		}
		call.Srcs[0] = fp.Dests[0]
	}},
	{name: "badsplice", rule: "CL002", kind: eval.Treegion, prog: true, inline: true, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		if len(fr.Inline.Splices) == 0 {
			t.Fatal("fixture compile spliced nothing")
		}
		fr.Inline.Splices[0].Entry = fr.Inline.Splices[0].Cont
	}},
	{name: "deepsplice", rule: "CL003", kind: eval.Treegion, prog: true, inline: true, corrupt: func(t *testing.T, fr *eval.FunctionResult) {
		if len(fr.Inline.Splices) == 0 {
			t.Fatal("fixture compile spliced nothing")
		}
		fr.Inline.Splices[0].Depth = 99
	}},
	// Malformed-IR fixtures: verified as parsed (unchecked parser).
	{name: "badcfg", rule: "IR004"},
	{name: "retsuccs", rule: "IR005"},
	{name: "useundef", rule: "IR009"},
}

func TestAdversarialFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "verify", fx.name+".tir"))
			if err != nil {
				t.Fatal(err)
			}
			if fx.corrupt == nil {
				fn, err := irtext.ParseUnchecked(string(src))
				if err != nil {
					t.Fatal(err)
				}
				ds := verify.Compiled(fn, nil, nil, verify.Options{Machine: machine.FourU})
				assertRules(t, ds, fx.rule)
				return
			}
			var (
				orig *ir.Function
				prof *profile.Data
				prg  *ir.Program
			)
			c := eval.DefaultConfig()
			c.Kind = fx.kind
			c.Machine = machine.FourU
			if fx.prog {
				var err error
				prg, err = irtext.ParseProgram(string(src))
				if err != nil {
					t.Fatal(err)
				}
				profs := make([]*profile.Data, len(prg.Funcs))
				for i, fn := range prg.Funcs {
					profs[i], err = interp.Profile(fn, 1, 100, interp.Config{MaxSteps: 1_000_000})
					if err != nil {
						t.Fatal(err)
					}
				}
				if fx.inline {
					c.Inline = inline.DefaultConfig()
					c.InlineEnv = &inline.Env{Prog: prg, Profiles: profs}
				}
				orig, prof = prg.Funcs[0], profs[0]
			} else {
				var err error
				orig, err = irtext.Parse(string(src))
				if err != nil {
					t.Fatal(err)
				}
				prof, err = interp.Profile(orig, 1, 100, interp.Config{MaxSteps: 1_000_000})
				if err != nil {
					t.Fatal(err)
				}
			}
			fr, err := eval.CompileFunction(orig.Clone(), prof.Clone(), c)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opts := verify.Options{Machine: c.Machine, TD: c.TD, Prog: prg}
			if fx.sem {
				opts.Orig = orig
			}
			if fx.inline {
				opts.Inline = &fr.Inline
			}
			// The uncorrupted compile must be provably legal first — a
			// fixture that trips the verifier on its own proves nothing.
			for _, d := range verify.Compiled(fr.Fn, fr.Regions, fr.Schedules, opts) {
				t.Errorf("clean compile: %s", d)
			}
			if t.Failed() {
				t.FailNow()
			}
			fx.corrupt(t, fr)
			assertRules(t, verify.Compiled(fr.Fn, fr.Regions, fr.Schedules, opts), fx.rule)
		})
	}
}

// assertRules requires at least one diagnostic, every Error-severity rule
// to be exactly want, and no stray advisories.
func assertRules(t *testing.T, ds []verify.Diagnostic, want string) {
	t.Helper()
	if len(ds) == 0 {
		t.Fatalf("corruption went undetected (want %s)", want)
	}
	rules := map[string]bool{}
	for _, d := range ds {
		rules[d.Rule] = true
	}
	var got []string
	for r := range rules {
		got = append(got, r)
	}
	sort.Strings(got)
	if len(got) != 1 || got[0] != want {
		for _, d := range ds {
			t.Logf("  %s", d)
		}
		t.Fatalf("fired rules %v, want exactly [%s]", got, want)
	}
}

// findOp locates the first op with the given opcode in block order.
func findOp(t *testing.T, fr *eval.FunctionResult, opc ir.Opcode) *ir.Op {
	t.Helper()
	for _, b := range fr.Fn.Blocks {
		for _, op := range b.Ops {
			if op.Opcode == opc {
				return op
			}
		}
	}
	t.Fatalf("fixture has no %v op", opc)
	return nil
}

// findNode locates the first node in schedule order matching pred, with
// its schedule.
func findNode(t *testing.T, fr *eval.FunctionResult, pred func(*ddg.Node) bool) (*sched.Schedule, *ddg.Node) {
	t.Helper()
	for _, s := range fr.Schedules {
		for _, n := range s.Graph.Nodes {
			if pred(n) {
				return s, n
			}
		}
	}
	t.Fatal("fixture target node not found")
	return nil, nil
}
