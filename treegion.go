// Package treegion is a reproduction of "Treegion Scheduling for Wide Issue
// Processors" (Havanki, Banerjia, Conte; HPCA 1998): a compiler backend that
// forms non-linear tree-shaped scheduling regions over a program's control
// flow graph and list schedules them onto wide VLIW machine models, with
// speculation, compile-time register renaming, tail duplication, and
// dominator parallelism.
//
// The public API exposes the full pipeline:
//
//	prog, _  := treegion.GenerateBenchmark("gcc")   // synthetic SPECint95-like program
//	profs, _ := treegion.ProfileProgram(prog)       // stochastic profiling
//	cfg      := treegion.DefaultConfig()            // treegions + global weight + 4U
//	res, _   := treegion.Compile(ctx, prog, profs, cfg, treegion.WithWorkers(8))
//	base, _  := treegion.Compile(ctx, prog, profs, treegion.BaselineConfig())
//	fmt.Println(treegion.Speedup(base.Time, res.Time))
//
// plus experiment drivers that regenerate every table and figure of the
// paper (Table1 .. Table4, Figure6, Figure8, Figure13).
package treegion

import (
	"context"
	"fmt"

	"treegion/internal/compcache"
	"treegion/internal/core"
	"treegion/internal/eval"
	"treegion/internal/hyper"
	"treegion/internal/inline"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/machine"
	"treegion/internal/pipeline"
	"treegion/internal/profile"
	"treegion/internal/progen"
	"treegion/internal/region"
	"treegion/internal/sched"
	"treegion/internal/store"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
	"treegion/internal/viz"
)

// Re-exported pipeline types. The aliases expose the full internal
// functionality as the library's public surface.
type (
	// Config selects region former, heuristic and machine model.
	Config = eval.Config
	// RegionKind selects the region former.
	RegionKind = eval.RegionKind
	// Heuristic is one of the paper's four scheduling priorities.
	Heuristic = core.Heuristic
	// Machine is a VLIW machine model.
	Machine = machine.Model
	// TDConfig bounds treegion tail duplication.
	TDConfig = core.TDConfig
	// HyperConfig bounds hyperblock-style if-conversion.
	HyperConfig = hyper.Config
	// Program is a generated synthetic benchmark.
	Program = progen.Program
	// Profiles holds per-function profile data for a program.
	Profiles = eval.Profiles
	// ProgramResult aggregates one benchmark compilation.
	ProgramResult = eval.ProgramResult
	// FunctionResult is one compiled function.
	FunctionResult = eval.FunctionResult
	// Function is an IR function (for users building their own inputs).
	Function = ir.Function
	// IRProgram is a multi-function IR unit with a resolved call graph —
	// the input to interprocedural compilation (Program remains the
	// generated-benchmark container).
	IRProgram = ir.Program
	// InlineConfig bounds demand-driven inline-on-absorb (WithInline).
	InlineConfig = inline.Config
	// InlineStats reports the splices performed and calls declined.
	InlineStats = inline.Stats
	// ProfileData is block/edge execution counts for one function.
	ProfileData = profile.Data
	// CompileMetrics holds the pipeline's activity counters.
	CompileMetrics = pipeline.Metrics
	// Telemetry is the metrics registry: counters, gauges and phase-latency
	// histograms rendered in the Prometheus text format (NewTelemetry).
	Telemetry = telemetry.Registry
	// CompileTrace is the per-function (or per-program, when merged)
	// compile-phase trace attached to every FunctionResult.
	CompileTrace = telemetry.CompileTrace
	// TraceSnapshot is a point-in-time copy of a CompileTrace.
	TraceSnapshot = telemetry.TraceSnapshot
	// Phase identifies one compile phase in a CompileTrace.
	Phase = telemetry.Phase
	// SchedStats summarizes schedules: speculation, branch packing, copies.
	SchedStats = sched.Stats
	// RegionStats aggregates region shapes (counts, sizes, histograms).
	RegionStats = region.Stats
	// CompileCache is a sharded content-addressed cache of function
	// compilation results with LRU eviction under a byte budget.
	CompileCache = compcache.Cache
	// CacheStats is a snapshot of a CompileCache's counters.
	CacheStats = compcache.Stats
	// ArtifactStore is the disk-backed content-addressed artifact store:
	// the persistent L2 tier behind a CompileCache (see SetL2).
	ArtifactStore = store.Store
	// StoreStats is a snapshot of an ArtifactStore's counters.
	StoreStats = store.Stats
	// Diagnostic is one static-verifier finding: a stable rule ID, a
	// severity, and a function/block/op location.
	Diagnostic = verify.Diagnostic
	// Severity grades a Diagnostic.
	Severity = verify.Severity
	// VerifyFailure is the error a verifying compile returns when the
	// verifier proves a schedule illegal; it carries the full diagnostic
	// list and the distinct violated rule IDs.
	VerifyFailure = verify.Failure
)

// Diagnostic severities.
const (
	SeverityInfo    = verify.Info
	SeverityWarning = verify.Warning
	SeverityError   = verify.Error
)

// Region formers.
const (
	BasicBlocks = eval.BasicBlocks
	SLR         = eval.SLR
	Treegion    = eval.Treegion
	Superblock  = eval.Superblock
	TreegionTD  = eval.TreegionTD
)

// Scheduling heuristics (Section 3 of the paper).
const (
	DepHeight     = core.DepHeight
	ExitCount     = core.ExitCount
	GlobalWeight  = core.GlobalWeight
	WeightedCount = core.WeightedCount
)

// Machine models.
var (
	Scalar   = machine.Scalar
	FourU    = machine.FourU
	EightU   = machine.EightU
	SixteenU = machine.SixteenU
)

// Benchmarks lists the eight synthetic SPECint95-flavoured benchmark names.
func Benchmarks() []string {
	var out []string
	for _, p := range progen.Presets() {
		out = append(out, p.Name)
	}
	return out
}

// GenerateBenchmark deterministically builds the named synthetic benchmark.
func GenerateBenchmark(name string) (*Program, error) {
	p, ok := progen.PresetByName(name)
	if !ok {
		return nil, fmt.Errorf("treegion: unknown benchmark %q (want one of %v)", name, Benchmarks())
	}
	return progen.Generate(p)
}

// GenerateSuite builds all eight benchmarks.
func GenerateSuite() ([]*Program, error) { return progen.GenerateAll() }

// ProfileProgram profiles every function of prog with the stochastic
// interpreter (deterministic in the preset seed).
func ProfileProgram(prog *Program) (Profiles, error) { return eval.ProfileProgram(prog) }

// ProfileFunction profiles a single user-built function.
func ProfileFunction(fn *Function, seed uint64, trips int) (*ProfileData, error) {
	return interp.Profile(fn, seed, trips, interp.Config{MaxSteps: 2_000_000})
}

// CompileOption customizes Compile and CompileOne. The zero set of options
// compiles with GOMAXPROCS workers, no cache, no metrics, no telemetry.
type CompileOption func(*pipeline.Options)

// WithWorkers bounds concurrent function compiles (<= 0 means GOMAXPROCS).
func WithWorkers(n int) CompileOption {
	return func(o *pipeline.Options) { o.Workers = n }
}

// WithCache memoizes compiles in a shared content-addressed result cache.
func WithCache(c *CompileCache) CompileOption {
	return func(o *pipeline.Options) { o.Cache = c }
}

// WithMetrics publishes pipeline activity counters to m.
func WithMetrics(m *CompileMetrics) CompileOption {
	return func(o *pipeline.Options) { o.Metrics = m }
}

// WithTelemetry publishes per-compile phase-latency histograms, scheduling
// counters and region-shape histograms to the registry.
func WithTelemetry(t *Telemetry) CompileOption {
	return func(o *pipeline.Options) { o.Telemetry = t }
}

// WithVerify runs the static verifier over every cold compile: IR
// well-formedness, region invariants, schedule legality and differential
// semantics are re-derived and proven rather than trusted. A function that
// fails verification returns a *VerifyFailure; advisory diagnostics are
// attached to its FunctionResult.
func WithVerify() CompileOption {
	return func(o *pipeline.Options) { o.Verify = true }
}

// WithInline enables demand-driven inline-on-absorb (Way & Pollock style)
// during treegion formation: the batch's functions are resolved into a
// program, and calls whose callee fits cfg's budgets are spliced into the
// growing treegion, letting regions extend across call sites. Non-inlined
// calls remain scheduling barriers exactly as without the option. Use
// DefaultInlineConfig for the experiments' budgets.
func WithInline(cfg InlineConfig) CompileOption {
	return func(o *pipeline.Options) { o.Inline = cfg }
}

// DefaultInlineConfig returns the enabled inlining budgets used by the
// experiments: depth 3, callee bodies up to 48 ops / 12 blocks, 3× code
// expansion.
func DefaultInlineConfig() InlineConfig { return inline.DefaultConfig() }

// VerifyFunction runs the static verifier over an already compiled
// function. orig, when non-nil, is the pre-compilation function and enables
// the differential interpretation check.
func VerifyFunction(orig *Function, fr *FunctionResult, c Config) []Diagnostic {
	return eval.VerifyResult(orig, fr, c)
}

// NewTelemetry builds an empty metrics registry; render it with its
// WritePrometheus method (the daemon serves it on /v1/metrics).
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// ExportSchedulerTelemetry exposes the process-wide scheduler histograms —
// currently treegion_sched_ready_occupancy, the ready-set size sampled once
// per issued cycle — on reg. Safe to call more than once.
func ExportSchedulerTelemetry(reg *Telemetry) { telemetry.ExportReadyOccupancy(reg) }

// Compile compiles prog under c on fresh clones and aggregates times, code
// expansion, region statistics, scheduling statistics and the compile
// trace. Functions compile concurrently on the worker pipeline with results
// reassembled in function order, so the output is byte-identical to a
// serial compile regardless of worker count.
func Compile(ctx context.Context, prog *Program, profs Profiles, c Config, opts ...CompileOption) (*ProgramResult, error) {
	var o pipeline.Options
	for _, opt := range opts {
		opt(&o)
	}
	return pipeline.CompileProgram(ctx, prog, profs, c, o)
}

// CompileOne compiles a single function through the pipeline's cache and
// panic isolation. Unlike CompileFunction it does not mutate fn or prof (it
// compiles clones); it reports whether the result was served from the cache.
func CompileOne(ctx context.Context, fn *Function, prof *ProfileData, c Config, opts ...CompileOption) (*FunctionResult, bool, error) {
	var o pipeline.Options
	for _, opt := range opts {
		opt(&o)
	}
	return pipeline.CompileFunction(ctx, fn, prof, c, o)
}

// CompileEach compiles fns[i] against profs[i] (on clones — the originals
// are never mutated) across the batched work-stealing pool and calls emit
// exactly once per index, in index order, as results become available. A
// per-function failure is delivered to emit as err and the run continues;
// an error returned by emit cancels the remaining work and is returned.
// This is the streaming core behind the daemon's /v1/compile-batch.
func CompileEach(ctx context.Context, fns []*Function, profs []*ProfileData, c Config,
	emit func(i int, fr *FunctionResult, cached bool, err error) error, opts ...CompileOption) error {
	var o pipeline.Options
	for _, opt := range opts {
		opt(&o)
	}
	return pipeline.CompileEach(ctx, fns, profs, c, o, emit)
}

// NewCompileCache builds a content-addressed compilation result cache with
// the given byte budget (<= 0 selects a default of 512 MiB).
func NewCompileCache(budgetBytes int64) *CompileCache {
	return compcache.New(budgetBytes)
}

// OpenArtifactStore opens (creating if needed) the disk-backed artifact
// store rooted at dir, holding it to budgetBytes of entries (<= 0 means
// the 4 GiB default). Layer it under a memory cache with
// cache.SetL2(store) so pipeline lookups go memory → disk → compile, and
// warm store directories survive process restarts.
func OpenArtifactStore(dir string, budgetBytes int64) (*ArtifactStore, error) {
	return store.Open(dir, budgetBytes)
}

// CompileFunction compiles one function (mutating it; pass a clone to keep
// the original) and returns its regions, schedules and estimated time.
func CompileFunction(fn *Function, prof *ProfileData, c Config) (*FunctionResult, error) {
	return eval.CompileFunction(fn, prof, c)
}

// DefaultConfig is the paper's headline configuration: treegion scheduling,
// global weight heuristic, 4-issue machine, renaming on.
func DefaultConfig() Config { return eval.DefaultConfig() }

// BaselineConfig is the speedup denominator: basic-block scheduling on the
// single-issue machine.
func BaselineConfig() Config { return eval.BaselineConfig() }

// Speedup returns baselineTime / t.
func Speedup(baselineTime, t float64) float64 { return eval.Speedup(baselineTime, t) }

// ParseFunction reads a function in the textual IR format (see
// internal/irtext's package documentation for the grammar).
func ParseFunction(src string) (*Function, error) { return irtext.Parse(src) }

// PrintFunction serializes a function to the textual IR format.
func PrintFunction(fn *Function) string { return irtext.Print(fn) }

// ParseIRProgram reads a multi-function .tir source and resolves its call
// graph (callees must be defined, call arities must match signatures).
func ParseIRProgram(src string) (*IRProgram, error) { return irtext.ParseProgram(src) }

// ResolveProgram resolves already-built functions into a multi-function
// program with a checked call graph — the same validation ParseIRProgram
// applies (unique names, defined callees, matching call arities).
func ResolveProgram(fns []*Function) (*IRProgram, error) { return ir.NewProgram(fns) }

// PrintIRProgram serializes a resolved program to the textual IR format.
func PrintIRProgram(p *IRProgram) string { return irtext.PrintProgram(p) }

// DOT renders a function's CFG (with optional regions and profile) as
// Graphviz DOT for visual inspection of what the region formers built.
func DOT(fn *Function, regions []*region.Region, prof *ProfileData) string {
	return viz.DOT(fn, regions, prof)
}

// ParseHeuristic resolves a heuristic name (depheight, exitcount,
// globalweight, weightedcount).
func ParseHeuristic(name string) (Heuristic, error) { return core.ParseHeuristic(name) }

// ParseRegionKind resolves a region former name (bb, slr, tree, sb, tree-td).
func ParseRegionKind(name string) (RegionKind, error) { return eval.ParseRegionKind(name) }

// MachineByName resolves a machine model name (1U, 4U, 8U, 16U).
func MachineByName(name string) (Machine, bool) { return machine.ByName(name) }
