package treegion

// Integration tests for the compilation-service subsystem: the concurrent
// pipeline behind CompileProgram, the content-addressed result cache, and
// the Suite's thread safety.

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// resultKey projects a ProgramResult onto its observable content (cycle
// counts, schedule lengths, expansion, region stats) as plain values, so
// results from independent compiles can be compared with reflect.DeepEqual
// without tripping over pointer identity inside the ddg graphs.
type resultKey struct {
	Name          string
	Time          float64
	CodeExpansion float64
	RegionStats   struct {
		Count, MaxBlocks  int
		AvgBlocks, AvgOps float64
	}
	FuncTimes    []float64
	SchedLengths [][]int
}

func keyOf(r *ProgramResult) resultKey {
	k := resultKey{Name: r.Name, Time: r.Time, CodeExpansion: r.CodeExpansion}
	k.RegionStats.Count = r.RegionStats.Count
	k.RegionStats.MaxBlocks = r.RegionStats.MaxBlocks
	k.RegionStats.AvgBlocks = r.RegionStats.AvgBlocks
	k.RegionStats.AvgOps = r.RegionStats.AvgOps
	for _, fr := range r.Funcs {
		k.FuncTimes = append(k.FuncTimes, fr.Time)
		var lens []int
		for _, s := range fr.Schedules {
			lens = append(lens, s.Length)
		}
		k.SchedLengths = append(k.SchedLengths, lens)
	}
	return k
}

// TestCompileProgramDeterministicWorkers is the public-API determinism
// contract: 1 worker and N workers produce identical ProgramResults —
// cycle counts, schedule lengths and speedups.
func TestCompileProgramDeterministicWorkers(t *testing.T) {
	prog, err := GenerateBenchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	one, err := Compile(ctx, prog, profs, DefaultConfig(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	baseOne, err := Compile(ctx, prog, profs, BaselineConfig(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		many, err := Compile(ctx, prog, profs, DefaultConfig(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(keyOf(one), keyOf(many)) {
			t.Errorf("workers=%d: ProgramResult differs from 1-worker compile", workers)
		}
		baseMany, err := Compile(ctx, prog, profs, BaselineConfig(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if s1, sN := Speedup(baseOne.Time, one.Time), Speedup(baseMany.Time, many.Time); s1 != sN {
			t.Errorf("workers=%d: speedup %v differs from 1-worker speedup %v", workers, sN, s1)
		}
	}
}

// TestSuiteCacheSecondPass: recompiling the suite's benchmarks under an
// already-seen set of configurations must be served by the shared
// content-addressed cache (hit rate > 0 by a wide margin).
func TestSuiteCacheSecondPass(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles two benchmarks twice")
	}
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for i := 0; i < 2; i++ {
		if _, err := Compile(context.Background(), s.Programs[i], s.Profiles[i], cfg, WithCache(suiteCache(s))); err != nil {
			t.Fatal(err)
		}
	}
	cold := suiteCache(s).Stats()
	if cold.Hits != 0 || cold.Misses == 0 {
		t.Fatalf("first pass: %+v, want only misses", cold)
	}
	for i := 0; i < 2; i++ {
		if _, err := Compile(context.Background(), s.Programs[i], s.Profiles[i], cfg, WithCache(suiteCache(s))); err != nil {
			t.Fatal(err)
		}
	}
	warm := suiteCache(s).Stats()
	if warm.HitRate() <= 0 {
		t.Fatalf("second pass hit rate = %v, want > 0", warm.HitRate())
	}
	if warm.Hits != cold.Misses {
		t.Errorf("second pass hits = %d, want every first-pass miss (%d) served", warm.Hits, cold.Misses)
	}
}

// suiteCache exposes the Suite's shared compile cache to the tests.
func suiteCache(s *Suite) *CompileCache { return s.ccache }

// TestSuiteConcurrentAccess drives Suite methods from many goroutines: the
// memoization maps are mutex-guarded shared state under the parallel
// driver, so this must be clean under -race.
func TestSuiteConcurrentAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several configurations concurrently")
	}
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(2)
	configs := []Config{
		DefaultConfig(),
		{Kind: SLR, Heuristic: DepHeight, Machine: FourU, Rename: true},
		{Kind: BasicBlocks, Heuristic: DepHeight, Machine: EightU, Rename: true},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(configs)*2)
	for g := 0; g < len(configs)*2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Two goroutines per config race on the same memoization keys;
			// benchmark 0 keeps the compile volume reasonable.
			_, errs[g] = s.SpeedupOf(0, configs[g%len(configs)])
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The same config through the memoized path twice must agree.
	v1, err := s.SpeedupOf(0, configs[0])
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.SpeedupOf(0, configs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("memoized speedups differ: %v vs %v", v1, v2)
	}
}

// TestCompileWithVerify covers the pipeline's verify mode: a clean compile
// passes with Verify on, verified and plain compiles share one cache entry
// (the verdict rides under the same key, so a verified request after a
// plain compile reuses the artifact and only runs the verifier), and a
// repeated verified compile hits both the result cache and the verdict
// cache — the verifier runs exactly once per key.
func TestCompileWithVerify(t *testing.T) {
	prog, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cache := NewCompileCache(0)
	var metrics CompileMetrics
	fn, prof := prog.Funcs[0], profs[0]

	if _, cached, err := CompileOne(ctx, fn, prof, DefaultConfig(), WithCache(cache), WithMetrics(&metrics)); err != nil {
		t.Fatal(err)
	} else if cached {
		t.Fatal("first compile reported cached")
	}
	if _, cached, err := CompileOne(ctx, fn, prof, DefaultConfig(), WithCache(cache), WithMetrics(&metrics), WithVerify()); err != nil {
		t.Fatalf("verified compile: %v", err)
	} else if !cached {
		t.Error("verified compile recompiled instead of reusing the plain artifact")
	}
	if n := metrics.VerifyRuns.Load(); n != 1 {
		t.Errorf("verify runs = %d, want 1", n)
	}
	fr, cached, err := CompileOne(ctx, fn, prof, DefaultConfig(), WithCache(cache), WithMetrics(&metrics), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("repeated verified compile missed the cache")
	}
	if n := metrics.VerifyRuns.Load(); n != 1 {
		t.Errorf("verify runs after warm verified compile = %d, want 1", n)
	}
	if n := metrics.VerdictHits.Load(); n != 1 {
		t.Errorf("verdict hits = %d, want 1", n)
	}
	for _, d := range fr.Diagnostics {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if n := metrics.VerifyFailures.Load(); n != 0 {
		t.Errorf("verify failures = %d, want 0", n)
	}
}
