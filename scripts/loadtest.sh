#!/bin/sh
# Boots the two-replica scale-out topology — two treegiond daemons and the
# shard router in front of them — then runs a short closed-loop
# treegion-loadgen pass through the router. Exits non-zero if any component
# fails to come up or the loadgen's error rate exceeds its budget.
#
# Tunables (environment):
#   PORT_A/PORT_B/PORT_R  listen ports         (default 18137/18147/18130)
#   DURATION              loadgen run length   (default 10s)
#   QPS                   loadgen target rate  (default 20)
#   CONCURRENCY           loadgen workers      (default 4)
#   PRESET                loadgen IR corpus    (default compress; "stress"
#                                              for the full-size corpus)
set -eu

PORT_A=${PORT_A:-18137}
PORT_B=${PORT_B:-18147}
PORT_R=${PORT_R:-18130}
DURATION=${DURATION:-10s}
QPS=${QPS:-20}
CONCURRENCY=${CONCURRENCY:-4}
PRESET=${PRESET:-compress}
GO=${GO:-go}

WORKDIR=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "loadtest: building binaries"
$GO build -o "$WORKDIR/treegiond" ./cmd/treegiond
$GO build -o "$WORKDIR/treegion-router" ./cmd/treegion-router
$GO build -o "$WORKDIR/treegion-loadgen" ./cmd/treegion-loadgen

echo "loadtest: starting replicas on :$PORT_A and :$PORT_B"
"$WORKDIR/treegiond" -addr "127.0.0.1:$PORT_A" >"$WORKDIR/daemon-a.log" 2>&1 &
PIDS="$PIDS $!"
"$WORKDIR/treegiond" -addr "127.0.0.1:$PORT_B" >"$WORKDIR/daemon-b.log" 2>&1 &
PIDS="$PIDS $!"

echo "loadtest: starting router on :$PORT_R"
"$WORKDIR/treegion-router" -addr "127.0.0.1:$PORT_R" \
    -replicas "http://127.0.0.1:$PORT_A,http://127.0.0.1:$PORT_B" \
    -health-interval 500ms >"$WORKDIR/router.log" 2>&1 &
PIDS="$PIDS $!"

# Wait for the router to see at least one healthy replica.
i=0
until curl -sf "http://127.0.0.1:$PORT_R/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "loadtest: router never became healthy" >&2
        cat "$WORKDIR"/*.log >&2 || true
        exit 1
    fi
    sleep 0.2
done
echo "loadtest: fleet is up"

"$WORKDIR/treegion-loadgen" -url "http://127.0.0.1:$PORT_R" \
    -qps "$QPS" -concurrency "$CONCURRENCY" -duration "$DURATION" \
    -preset "$PRESET"
status=$?

echo "loadtest: router shard counters:"
curl -s "http://127.0.0.1:$PORT_R/v1/metrics" | grep '^treegion_router_requests_total' || true
exit $status
