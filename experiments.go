package treegion

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"treegion/internal/compcache"
	"treegion/internal/core"
	"treegion/internal/eval"
	"treegion/internal/linear"
	"treegion/internal/machine"
	"treegion/internal/pipeline"
	"treegion/internal/regalloc"
	"treegion/internal/telemetry"
)

// Suite caches the generated benchmark programs, their profiles, and the
// per-benchmark baseline times, so the experiment drivers (one per paper
// table/figure) don't regenerate shared state. Program compiles run on the
// concurrent pipeline over a shared content-addressed function cache, and
// the memoization maps are mutex-guarded, so Suite methods may be called
// from multiple goroutines.
type Suite struct {
	Programs []*Program
	Profiles []Profiles

	mu       sync.Mutex
	baseline map[string]float64 // benchmark -> 1U basic-block time
	cache    map[string]*ProgramResult

	workers int
	ccache  *compcache.Cache
	metrics pipeline.Metrics
	reg     *telemetry.Registry
}

// NewSuite generates and profiles all eight benchmarks.
func NewSuite() (*Suite, error) {
	progs, err := GenerateSuite()
	if err != nil {
		return nil, err
	}
	s := &Suite{
		Programs: progs,
		baseline: make(map[string]float64),
		cache:    make(map[string]*ProgramResult),
		ccache:   compcache.New(compcache.DefaultBudget),
		reg:      telemetry.NewRegistry(),
	}
	s.ccache.Register(s.reg, "treegion")
	s.metrics.Register(s.reg, "treegion")
	for _, p := range progs {
		profs, err := ProfileProgram(p)
		if err != nil {
			return nil, err
		}
		s.Profiles = append(s.Profiles, profs)
	}
	return s, nil
}

// SetWorkers bounds the pipeline's per-program compile concurrency
// (<= 0 restores the GOMAXPROCS default).
func (s *Suite) SetWorkers(n int) {
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// CacheStats snapshots the shared function-compile cache counters.
func (s *Suite) CacheStats() compcache.Stats { return s.ccache.Stats() }

// AttachStore layers the disk-backed artifact store under the suite's
// memory cache, so compiles hit disk before recomputing and cold compiles
// are written through for future processes. The store's counters join the
// suite registry under the "treegion" prefix.
func (s *Suite) AttachStore(st *ArtifactStore) {
	s.ccache.SetL2(st)
	st.Register(s.reg, "treegion")
}

// StoreStats snapshots the suite's pipeline metrics for store activity:
// total compiles executed and how many lookups the persistent store
// served.
func (s *Suite) StoreHits() (compiles, storeHits int64) {
	return s.metrics.Compiles.Load(), s.metrics.StoreHits.Load()
}

// PipelineMetrics snapshots the pipeline activity counters.
func (s *Suite) PipelineMetrics() (compiles, cacheHits, panics int64) {
	return s.metrics.Compiles.Load(), s.metrics.CacheHits.Load(), s.metrics.Panics.Load()
}

// Telemetry exposes the suite's metrics registry: phase-latency histograms,
// scheduling counters and cache/pipeline activity for every compile the
// experiment drivers execute.
func (s *Suite) Telemetry() *Telemetry { return s.reg }

// run compiles benchmark i under c on the pipeline, memoizing the whole
// ProgramResult on the config fingerprint.
func (s *Suite) run(i int, c Config) (*ProgramResult, error) {
	key := fmt.Sprintf("%d/%s", i, c.Fingerprint())
	s.mu.Lock()
	r, ok := s.cache[key]
	workers := s.workers
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	r, err := Compile(context.Background(), s.Programs[i], s.Profiles[i], c,
		WithWorkers(workers), WithCache(s.ccache), WithMetrics(&s.metrics), WithTelemetry(s.reg))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// A concurrent caller may have raced us here; keep the first result so
	// every caller sees one canonical *ProgramResult per key.
	if prev, ok := s.cache[key]; ok {
		r = prev
	} else {
		s.cache[key] = r
	}
	s.mu.Unlock()
	return r, nil
}

// SpeedupOf compiles benchmark i under c and returns its speedup over
// basic-block scheduling on the 1-issue machine (the paper's metric).
func (s *Suite) SpeedupOf(i int, c Config) (float64, error) {
	name := s.Programs[i].Name
	s.mu.Lock()
	base, ok := s.baseline[name]
	s.mu.Unlock()
	if !ok {
		br, err := s.run(i, BaselineConfig())
		if err != nil {
			return 0, err
		}
		base = br.Time
		s.mu.Lock()
		s.baseline[name] = base
		s.mu.Unlock()
	}
	r, err := s.run(i, c)
	if err != nil {
		return 0, err
	}
	return Speedup(base, r.Time), nil
}

// StatRow is one benchmark's region-characteristic row (Tables 1 and 2).
type StatRow struct {
	Benchmark string
	AvgBlocks float64
	MaxBlocks int
	AvgOps    float64
}

// Table1 reproduces the paper's Table 1: treegion statistics (no tail
// duplication) per benchmark.
func (s *Suite) Table1() ([]StatRow, error) {
	return s.statTable(Config{Kind: Treegion, Heuristic: DepHeight, Machine: FourU, Rename: true})
}

// Table2 reproduces Table 2: SLR statistics per benchmark.
func (s *Suite) Table2() ([]StatRow, error) {
	return s.statTable(Config{Kind: SLR, Heuristic: DepHeight, Machine: FourU, Rename: true})
}

func (s *Suite) statTable(c Config) ([]StatRow, error) {
	var rows []StatRow
	for i, p := range s.Programs {
		r, err := s.run(i, c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StatRow{
			Benchmark: p.Name,
			AvgBlocks: r.RegionStats.AvgBlocks,
			MaxBlocks: r.RegionStats.MaxBlocks,
			AvgOps:    r.RegionStats.AvgOps,
		})
	}
	return rows, nil
}

// ExpansionRow is one benchmark's code-expansion row (Table 3).
type ExpansionRow struct {
	Benchmark string
	SB        float64 // superblock formation
	Tree20    float64 // treegion tail duplication, limit 2.0
	Tree30    float64 // limit 3.0
}

// Table3 reproduces Table 3: code expansion for superblocks and treegions
// with tail duplication at limits 2.0 and 3.0 (merge limit 4, path limit 20).
func (s *Suite) Table3() ([]ExpansionRow, error) {
	var rows []ExpansionRow
	for i, p := range s.Programs {
		row := ExpansionRow{Benchmark: p.Name}
		sb, err := s.run(i, s.sbConfig(machine.FourU))
		if err != nil {
			return nil, err
		}
		row.SB = sb.CodeExpansion
		for _, lim := range []float64{2.0, 3.0} {
			r, err := s.run(i, s.tdConfig(lim, machine.FourU))
			if err != nil {
				return nil, err
			}
			if lim == 2.0 {
				row.Tree20 = r.CodeExpansion
			} else {
				row.Tree30 = r.CodeExpansion
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SizeRow is one benchmark's region-size row (Table 4): superblocks vs
// treegions with tail duplication at limit 2.0.
type SizeRow struct {
	Benchmark            string
	SBCount, TreeCount   int
	SBAvgBB, TreeAvgBB   float64
	SBAvgOps, TreeAvgOps float64
}

// Table4 reproduces Table 4. As in the paper, the superblock columns count
// only trace-formed regions (cold filler code is not a superblock), while
// treegion formation covers the whole program.
func (s *Suite) Table4() ([]SizeRow, error) {
	var rows []SizeRow
	for i, p := range s.Programs {
		sb, err := s.run(i, s.sbConfig(machine.FourU))
		if err != nil {
			return nil, err
		}
		tr, err := s.run(i, s.tdConfig(2.0, machine.FourU))
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeRow{
			Benchmark: p.Name,
			SBCount:   sb.RegionStats.Count, SBAvgBB: sb.RegionStats.AvgBlocks, SBAvgOps: sb.RegionStats.AvgOps,
			TreeCount: tr.RegionStats.Count, TreeAvgBB: tr.RegionStats.AvgBlocks, TreeAvgOps: tr.RegionStats.AvgOps,
		})
	}
	return rows, nil
}

// SpeedupRow is one benchmark's speedups under a set of labelled configs.
type SpeedupRow struct {
	Benchmark string
	Speedup   map[string]float64
}

// Figure6 reproduces Figure 6: dependence-height scheduling of basic
// blocks, SLRs and treegions on the 4U and 8U machines, as speedup over the
// 1-issue basic-block baseline.
func (s *Suite) Figure6() ([]SpeedupRow, []string, error) {
	var configs []labelled
	for _, m := range []machine.Model{machine.FourU, machine.EightU} {
		configs = append(configs,
			labelled{"bb/" + m.Name, Config{Kind: BasicBlocks, Heuristic: DepHeight, Machine: m, Rename: true}},
			labelled{"slr/" + m.Name, Config{Kind: SLR, Heuristic: DepHeight, Machine: m, Rename: true}},
			labelled{"tree/" + m.Name, Config{Kind: Treegion, Heuristic: DepHeight, Machine: m, Rename: true}},
		)
	}
	return s.speedups(configs)
}

// Figure8 reproduces Figure 8: the four treegion heuristics on 4U and 8U.
func (s *Suite) Figure8() ([]SpeedupRow, []string, error) {
	var configs []labelled
	for _, m := range []machine.Model{machine.FourU, machine.EightU} {
		for _, h := range core.Heuristics() {
			configs = append(configs, labelled{
				h.String() + "/" + m.Name,
				Config{Kind: Treegion, Heuristic: h, Machine: m, Rename: true},
			})
		}
	}
	return s.speedups(configs)
}

// Figure13 reproduces Figure 13: superblocks versus tail-duplicated
// treegions (global weight heuristic, dominator parallelism on) at
// expansion limits 2.0 and 3.0, on 4U and 8U.
func (s *Suite) Figure13() ([]SpeedupRow, []string, error) {
	var configs []labelled
	for _, m := range []machine.Model{machine.FourU, machine.EightU} {
		configs = append(configs,
			labelled{"sb/" + m.Name, s.sbConfig(m)},
			labelled{"tree2.0/" + m.Name, s.tdConfig(2.0, m)},
			labelled{"tree3.0/" + m.Name, s.tdConfig(3.0, m)},
		)
	}
	return s.speedups(configs)
}

type labelled struct {
	label string
	cfg   Config
}

func (s *Suite) speedups(configs []labelled) ([]SpeedupRow, []string, error) {
	var labels []string
	for _, c := range configs {
		labels = append(labels, c.label)
	}
	var rows []SpeedupRow
	for i, p := range s.Programs {
		row := SpeedupRow{Benchmark: p.Name, Speedup: make(map[string]float64)}
		for _, c := range configs {
			v, err := s.SpeedupOf(i, c.cfg)
			if err != nil {
				return nil, nil, err
			}
			row.Speedup[c.label] = v
		}
		rows = append(rows, row)
	}
	return rows, labels, nil
}

// sbConfig is IMPACT-faithful superblock compilation: global-weight list
// scheduling with *restricted* speculation (no compile-time renaming —
// renaming is the treegion paper's own mechanism, so the superblock
// baseline, "as described in the literature", does not get it).
func (s *Suite) sbConfig(m machine.Model) Config {
	return Config{
		Kind: Superblock, Heuristic: GlobalWeight, Machine: m, Rename: false,
		SB: linear.DefaultSuperblockConfig(),
	}
}

func (s *Suite) tdConfig(limit float64, m machine.Model) Config {
	return Config{
		Kind: TreegionTD, Heuristic: GlobalWeight, Machine: m, Rename: true,
		DominatorParallelism: true,
		TD:                   core.TDConfig{ExpansionLimit: limit, PathLimit: 20, MergeLimit: 4},
	}
}

// ProfileVariation runs the paper's proposed future-work study (Section 6):
// treegion schedules are built from the training profile and then
// re-evaluated against a profile gathered from a different input set (a
// fresh interpreter seed on the compiled functions). For each heuristic it
// reports the speedup under the training profile and under the varied one,
// on the 4U machine — the regime where heuristic differences matter most.
// The paper conjectured the exit-count and weighted-count heuristics "may
// preserve performance better" under variation.
func (s *Suite) ProfileVariation() ([]SpeedupRow, []string, error) {
	var labels []string
	for _, h := range core.Heuristics() {
		labels = append(labels, h.String()+"/train", h.String()+"/varied")
	}
	var rows []SpeedupRow
	for i, p := range s.Programs {
		row := SpeedupRow{Benchmark: p.Name, Speedup: make(map[string]float64)}

		// Baseline times under both profiles.
		baseRes, err := s.run(i, BaselineConfig())
		if err != nil {
			return nil, nil, err
		}
		baseVaried := 0.0
		for fi, fr := range baseRes.Funcs {
			prof, err := eval.ProfileCompiled(fr, p.Preset.Seed*7777+uint64(fi), p.Preset.ProfileTrips)
			if err != nil {
				return nil, nil, err
			}
			baseVaried += eval.ReMeasure(fr, prof).Time
		}

		for _, h := range core.Heuristics() {
			cfg := Config{Kind: Treegion, Heuristic: h, Machine: machine.FourU, Rename: true}
			res, err := s.run(i, cfg)
			if err != nil {
				return nil, nil, err
			}
			row.Speedup[h.String()+"/train"] = Speedup(baseRes.Time, res.Time)
			varied := 0.0
			for fi, fr := range res.Funcs {
				prof, err := eval.ProfileCompiled(fr, p.Preset.Seed*7777+uint64(fi), p.Preset.ProfileTrips)
				if err != nil {
					return nil, nil, err
				}
				varied += eval.ReMeasure(fr, prof).Time
			}
			row.Speedup[h.String()+"/varied"] = Speedup(baseVaried, varied)
		}
		rows = append(rows, row)
	}
	return rows, labels, nil
}

// WideMachines extends Figure 6's study to the 16-issue model, showing the
// headroom trend the paper describes ("on a very wide machine, both
// schedulers are able to speculate more instructions. However, the treegion
// scheduler has access to multiple paths, allowing even more speculation").
func (s *Suite) WideMachines() ([]SpeedupRow, []string, error) {
	var configs []labelled
	for _, m := range []machine.Model{machine.FourU, machine.EightU, machine.SixteenU} {
		configs = append(configs,
			labelled{"slr/" + m.Name, Config{Kind: SLR, Heuristic: DepHeight, Machine: m, Rename: true}},
			labelled{"tree/" + m.Name, Config{Kind: Treegion, Heuristic: DepHeight, Machine: m, Rename: true}},
		)
	}
	return s.speedups(configs)
}

// Ablations quantifies the design choices DESIGN.md calls out, on the
// 8-issue machine with the global weight heuristic:
//
//	rename-off    treegions without compile-time renaming (restricted
//	              speculation instead) — the paper's enabling mechanism;
//	dompar-off    tail-duplicated treegions without dominator parallelism;
//	td-1.0 …      the expansion-limit sweep for treeform-td.
func (s *Suite) Ablations() ([]SpeedupRow, []string, error) {
	configs := []labelled{
		{"tree", Config{Kind: Treegion, Heuristic: GlobalWeight, Machine: EightU, Rename: true}},
		{"rename-off", Config{Kind: Treegion, Heuristic: GlobalWeight, Machine: EightU, Rename: false}},
		{"td-2.0", s.tdConfig(2.0, machine.EightU)},
	}
	noDompar := s.tdConfig(2.0, machine.EightU)
	noDompar.DominatorParallelism = false
	configs = append(configs, labelled{"dompar-off", noDompar})
	for _, lim := range []float64{1.0, 1.5, 3.0, 4.0} {
		configs = append(configs, labelled{fmt.Sprintf("td-%.1f", lim), s.tdConfig(lim, machine.EightU)})
	}
	return s.speedups(configs)
}

// Hyperblocks runs the paper's proposed predication-vs-tail-duplication
// comparison (future work, Section 6): plain treegions, treegions over
// if-converted (hyperblock-style predicated) code, and tail-duplicated
// treegions, with the global weight heuristic. If-conversion removes merge
// points without duplicating code, so treegions grow for free — but the
// predicated ops occupy issue slots on every execution, which is the
// tradeoff the paper wanted measured.
func (s *Suite) Hyperblocks() ([]SpeedupRow, []string, error) {
	var configs []labelled
	for _, m := range []machine.Model{machine.FourU, machine.EightU} {
		plain := Config{Kind: Treegion, Heuristic: GlobalWeight, Machine: m, Rename: true}
		hyperTree := plain
		hyperTree.IfConvert = true
		hyperTD := s.tdConfig(2.0, m)
		hyperTD.IfConvert = true
		configs = append(configs,
			labelled{"tree/" + m.Name, plain},
			labelled{"hyper/" + m.Name, hyperTree},
			labelled{"td/" + m.Name, s.tdConfig(2.0, m)},
			labelled{"hyper-td/" + m.Name, hyperTD},
		)
	}
	return s.speedups(configs)
}

// ResourceRow reports issue-slot utilization and register pressure for one
// benchmark under several region formers (8U, global weight).
type ResourceRow struct {
	Benchmark string
	// Utilization and AvgPressure are keyed by former label.
	Utilization map[string]float64
	AvgPressure map[string]float64
}

// Resources quantifies the paper's motivating claim — linear regions leave
// issue slots idle on wide machines, treegions fill them — plus the cost
// side the paper's follow-up work tackles: register pressure from
// speculation and renaming.
func (s *Suite) Resources() ([]ResourceRow, []string, error) {
	configs := []labelled{
		{"bb", Config{Kind: BasicBlocks, Heuristic: GlobalWeight, Machine: EightU, Rename: true}},
		{"slr", Config{Kind: SLR, Heuristic: GlobalWeight, Machine: EightU, Rename: true}},
		{"tree", Config{Kind: Treegion, Heuristic: GlobalWeight, Machine: EightU, Rename: true}},
		{"tree-td", s.tdConfig(2.0, machine.EightU)},
	}
	var labels []string
	for _, c := range configs {
		labels = append(labels, c.label)
	}
	var rows []ResourceRow
	for i, p := range s.Programs {
		row := ResourceRow{
			Benchmark:   p.Name,
			Utilization: map[string]float64{},
			AvgPressure: map[string]float64{},
		}
		for _, c := range configs {
			res, err := s.run(i, c.cfg)
			if err != nil {
				return nil, nil, err
			}
			util, press, totW := 0.0, 0.0, 0.0
			for _, fr := range res.Funcs {
				w := fr.Prof.BlockWeight(fr.Fn.Entry) + 1
				util += w * eval.UtilizationOf(fr, fr.Prof, c.cfg.Machine)
				avg, _ := eval.PressureOf(fr, fr.Prof)
				press += w * avg
				totW += w
			}
			row.Utilization[c.label] = util / totW
			row.AvgPressure[c.label] = press / totW
		}
		rows = append(rows, row)
	}
	return rows, labels, nil
}

// RegisterRow reports spill behaviour for one benchmark (8U, global
// weight, treegion scheduling) under two register-file sizes.
type RegisterRow struct {
	Benchmark string
	// SpillsPerKOp is spilled intervals per thousand static ops.
	SpillsPerKOp map[int]float64
	// Slowdown is the estimated fractional time increase from spill code.
	Slowdown map[int]float64
}

// Registers runs the register-pressure assessment the paper set aside for
// follow-up work: linear-scan allocation over every tail-duplicated
// treegion schedule (the highest-pressure configuration) under small
// register files, reporting spill density and the estimated slowdown if the
// spill memory ops were charged. With 1998-scale 32-entry files nothing
// spills — wide-issue treegion scheduling stays allocatable, which is
// itself the reassuring result; the 12/16/24-entry sweep shows where
// pressure starts to bite. (A 1998-style 8-entry branch-target file is the
// first to bind: wide treegions keep over a dozen PBR values in flight.)
func (s *Suite) Registers() ([]RegisterRow, []int, error) {
	sizes := []int{12, 16, 24}
	cfg := s.tdConfig(2.0, machine.EightU) // the highest-pressure configuration
	var rows []RegisterRow
	for i, p := range s.Programs {
		res, err := s.run(i, cfg)
		if err != nil {
			return nil, nil, err
		}
		row := RegisterRow{Benchmark: p.Name, SpillsPerKOp: map[int]float64{}, Slowdown: map[int]float64{}}
		for _, k := range sizes {
			files := regalloc.FileSizes{GPR: k, Pred: k, BTR: k, FPR: k}
			spills, extra, ops := 0, 0.0, 0
			allocHist := s.reg.Histogram("treegion_compile_phase_seconds",
				telemetry.Labels{"phase": telemetry.PhaseRegalloc.String()},
				"Wall time per compile phase per function.", telemetry.DefBuckets)
			for _, fr := range res.Funcs {
				for _, sc := range fr.Schedules {
					t0 := time.Now()
					a := regalloc.Allocate(sc, files)
					allocHist.ObserveDuration(time.Since(t0))
					spills += a.TotalSpills()
					extra += fr.Prof.BlockWeight(sc.Graph.Region.Root) * float64(a.SpillCycles) / float64(max(1, sc.Model.IssueWidth))
				}
				ops += fr.OpsAfter
			}
			row.SpillsPerKOp[k] = 1000 * float64(spills) / float64(ops)
			row.Slowdown[k] = extra / res.Time
		}
		rows = append(rows, row)
	}
	return rows, sizes, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GeoMean returns the geometric mean of the named column over rows,
// skipping zero entries — the aggregate the paper's bar charts imply.
func GeoMean(rows []SpeedupRow, label string) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if v := r.Speedup[label]; v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
