// Command treegion-router fronts a fleet of treegiond replicas with a
// content-hash shard router: /v1/compile and /v1/compile-batch requests are
// placed by rendezvous hashing over the request's compile content key, so
// identical compiles always land on the same replica and each replica's
// cache and artifact-store tiers own a stable slice of the keyspace.
//
// Usage:
//
//	treegion-router -replicas http://127.0.0.1:8037,http://127.0.0.1:8047 \
//	                [-addr :8030] [-retries 2] [-retry-backoff 50ms] \
//	                [-health-interval 2s] [-health-timeout 1s]
//
// The router serves its own /v1/metrics (per-replica request, error,
// retry, in-flight and latency series in Prometheus text format) and
// /v1/healthz (503 when no replica is healthy). Unhealthy replicas are
// skipped at placement time and their keys spill to the next-ranked
// replica until the prober sees them recover. Connection-level failures
// retry on the next-ranked replica with exponential backoff; HTTP error
// statuses are forwarded as-is.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"treegion/internal/router"
	"treegion/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8030", "listen address")
	replicas := flag.String("replicas", "", "comma-separated treegiond base URLs (required)")
	retries := flag.Int("retries", 2, "extra forwarding attempts on connection failure")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica health probe period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "per-probe timeout")
	flag.Parse()

	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}
	if len(urls) == 0 {
		log.Fatalf("treegion-router: -replicas is required (comma-separated treegiond base URLs)")
	}

	rt, err := router.New(router.Config{
		Replicas:       urls,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		Registry:       telemetry.NewRegistry(),
	})
	if err != nil {
		log.Fatalf("treegion-router: %v", err)
	}
	rt.Start()
	defer rt.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Batch streams run long; per-write deadlines inside the proxy loop
		// bound stalls instead of a whole-response timeout.
		WriteTimeout: 0,
		IdleTimeout:  2 * time.Minute,
	}
	go func() {
		log.Printf("treegion-router: listening on %s, %d replicas: %s",
			*addr, len(urls), strings.Join(urls, ", "))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("treegion-router: listener: %v", err)
			stop()
		}
	}()

	<-ctx.Done()
	log.Printf("treegion-router: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("treegion-router: http shutdown: %v", err)
	}
	log.Printf("treegion-router: bye")
}
