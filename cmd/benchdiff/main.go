// Command benchdiff compares two benchmark captures produced by
// `go test -json -bench ...` (the BENCH_*.json files `make bench` writes).
// It is the dependency-free fallback behind `make bench-compare`: when
// benchstat is on PATH the Makefile prefers it (feeding it text extracted
// with -extract), and otherwise this tool prints an old/new/delta table for
// every benchmark present in either capture.
//
//	benchdiff OLD.json NEW.json     # comparison table
//	benchdiff -extract CAP.json     # plain benchmark lines, benchstat format
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's parsed measurements.
type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// event is the subset of the `go test -json` stream benchdiff reads.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLines extracts the raw benchmark result lines from a capture file.
// Lines arriving split across events (gotest emits the name and the numbers
// as separate output events for running benchmarks) are joined.
func benchLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	carry := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the capture
		}
		if ev.Action != "output" {
			continue
		}
		chunk := ev.Output
		if !strings.HasSuffix(chunk, "\n") {
			carry += chunk
			continue
		}
		line := strings.TrimRight(carry+chunk, "\n")
		carry = ""
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "Benchmark") && strings.Contains(trimmed, "ns/op") {
			lines = append(lines, trimmed)
		}
	}
	return lines, sc.Err()
}

// parse turns benchmark result lines into named results. A line reads
//
//	BenchmarkName-8  3  248532221 ns/op  241959616 B/op  365493 allocs/op ...
func parse(lines []string) map[string]result {
	out := make(map[string]result)
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip -GOMAXPROCS suffix
			}
		}
		var r result
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "B/op":
				r.bytesPerOp = v
				r.hasMem = true
			case "allocs/op":
				r.allocsPerOp = v
				r.hasMem = true
			}
		}
		if r.nsPerOp > 0 {
			out[name] = r
		}
	}
	return out
}

func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func main() {
	extract := flag.String("extract", "", "print the capture's benchmark lines in benchstat's plain format and exit")
	flag.Parse()

	if *extract != "" {
		lines, err := benchLines(*extract)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json | benchdiff -extract CAP.json")
		os.Exit(2)
	}
	oldLines, err := benchLines(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	newLines, err := benchLines(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", flag.Arg(1), err)
		os.Exit(1)
	}
	olds, news := parse(oldLines), parse(newLines)

	names := make([]string, 0, len(news))
	seen := make(map[string]bool)
	for n := range olds {
		seen[n] = true
		names = append(names, n)
	}
	for n := range news {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-36s %14s %14s %9s %14s %14s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "time", "old allocs/op", "new allocs/op", "allocs")
	for _, n := range names {
		o, haveOld := olds[n]
		nw, haveNew := news[n]
		switch {
		case !haveOld:
			fmt.Printf("%-36s %14s %14.0f %9s %14s %14.0f %9s\n", n, "-", nw.nsPerOp, "new", "-", nw.allocsPerOp, "new")
		case !haveNew:
			fmt.Printf("%-36s %14.0f %14s %9s %14.0f %14s %9s\n", n, o.nsPerOp, "-", "gone", o.allocsPerOp, "-", "gone")
		default:
			fmt.Printf("%-36s %14.0f %14.0f %9s %14.0f %14.0f %9s\n",
				n, o.nsPerOp, nw.nsPerOp, delta(o.nsPerOp, nw.nsPerOp),
				o.allocsPerOp, nw.allocsPerOp, delta(o.allocsPerOp, nw.allocsPerOp))
		}
	}
}
