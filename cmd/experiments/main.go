// Command experiments regenerates the paper's tables and figures over the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments [-exp table1|table2|table3|table4|fig6|fig8|fig13|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"treegion"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1..table4, fig6, fig8, fig13, profvar, wide, ablation, hyper, resources, registers, or all")
	workers := flag.Int("workers", 0, "concurrent function compiles per benchmark (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print pipeline and compile-cache statistics at the end")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory; warm runs reuse on-disk compiles (empty = disabled)")
	storeBudget := flag.Int64("store-budget", 4<<30, "artifact store byte budget")
	flag.Parse()

	suite, err := treegion.NewSuite()
	if err != nil {
		fail(err)
	}
	suite.SetWorkers(*workers)
	if *storeDir != "" {
		st, err := treegion.OpenArtifactStore(*storeDir, *storeBudget)
		if err != nil {
			fail(err)
		}
		defer st.Close()
		suite.AttachStore(st)
	}
	run := func(name string, f func(*treegion.Suite) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(suite); err != nil {
			fail(fmt.Errorf("%s: %w", name, err))
		}
	}
	run("table1", table1)
	run("table2", table2)
	run("table3", table3)
	run("table4", table4)
	run("fig6", fig6)
	run("fig8", fig8)
	run("fig13", fig13)
	run("profvar", profvar)
	run("wide", wide)
	run("ablation", ablation)
	run("hyper", hyperexp)
	run("resources", resources)
	run("registers", registers)

	if *stats {
		cs := suite.CacheStats()
		compiles, hits, panics := suite.PipelineMetrics()
		fmt.Printf("pipeline: %d cold compiles, %d cache hits, %d panics\n", compiles, hits, panics)
		fmt.Printf("cache:    %d entries, %d/%d bytes, hit rate %.1f%% (%d evictions)\n",
			cs.Entries, cs.Bytes, cs.Budget, 100*cs.HitRate(), cs.Evictions)
		if *storeDir != "" {
			_, storeHits := suite.StoreHits()
			fmt.Printf("store:    %d compiles served from %s\n", storeHits, *storeDir)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func table1(s *treegion.Suite) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	fmt.Println("Table 1: Treegion statistics")
	fmt.Printf("%-10s %9s %9s %11s\n", "program", "avg #bb", "max #bb", "avg #instrs")
	for _, r := range rows {
		fmt.Printf("%-10s %9.2f %9d %11.2f\n", r.Benchmark, r.AvgBlocks, r.MaxBlocks, r.AvgOps)
	}
	fmt.Println()
	return nil
}

func table2(s *treegion.Suite) error {
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	fmt.Println("Table 2: SLR statistics")
	fmt.Printf("%-10s %9s %9s %11s\n", "program", "avg #bb", "max #bb", "avg #ops")
	for _, r := range rows {
		fmt.Printf("%-10s %9.2f %9d %11.2f\n", r.Benchmark, r.AvgBlocks, r.MaxBlocks, r.AvgOps)
	}
	fmt.Println()
	return nil
}

func table3(s *treegion.Suite) error {
	rows, err := s.Table3()
	if err != nil {
		return err
	}
	fmt.Println("Table 3: Code expansion")
	fmt.Printf("%-10s %8s %11s %11s\n", "program", "sb", "tree(2.0)", "tree(3.0)")
	var sb, t2, t3 float64
	for _, r := range rows {
		fmt.Printf("%-10s %8.2f %11.2f %11.2f\n", r.Benchmark, r.SB, r.Tree20, r.Tree30)
		sb += r.SB
		t2 += r.Tree20
		t3 += r.Tree30
	}
	n := float64(len(rows))
	fmt.Printf("%-10s %8.2f %11.2f %11.2f\n\n", "average", sb/n, t2/n, t3/n)
	return nil
}

func table4(s *treegion.Suite) error {
	rows, err := s.Table4()
	if err != nil {
		return err
	}
	fmt.Println("Table 4: Superblock vs treegion(2.0) region statistics")
	fmt.Printf("%-10s %10s %10s %10s %10s %10s %10s\n",
		"program", "sb#", "tree#", "sb bb", "tree bb", "sb ops", "tree ops")
	for _, r := range rows {
		fmt.Printf("%-10s %10d %10d %10.2f %10.2f %10.2f %10.2f\n",
			r.Benchmark, r.SBCount, r.TreeCount, r.SBAvgBB, r.TreeAvgBB, r.SBAvgOps, r.TreeAvgOps)
	}
	fmt.Println()
	return nil
}

func printSpeedups(title string, rows []treegion.SpeedupRow, labels []string) {
	fmt.Println(title)
	fmt.Printf("%-10s", "program")
	for _, l := range labels {
		fmt.Printf(" %13s", l)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Benchmark)
		for _, l := range labels {
			fmt.Printf(" %13.3f", r.Speedup[l])
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "geomean")
	for _, l := range labels {
		fmt.Printf(" %13.3f", treegion.GeoMean(rows, l))
	}
	fmt.Println()
	fmt.Println()
}

func fig6(s *treegion.Suite) error {
	rows, labels, err := s.Figure6()
	if err != nil {
		return err
	}
	sort.Strings(labels[:3])
	printSpeedups("Figure 6: dependence-height scheduling (speedup over 1U basic blocks)", rows, labels)
	return nil
}

func fig8(s *treegion.Suite) error {
	rows, labels, err := s.Figure8()
	if err != nil {
		return err
	}
	printSpeedups("Figure 8: the four treegion heuristics", rows, labels)
	return nil
}

func fig13(s *treegion.Suite) error {
	rows, labels, err := s.Figure13()
	if err != nil {
		return err
	}
	printSpeedups("Figure 13: superblocks vs tail-duplicated treegions (global weight)", rows, labels)
	return nil
}

func profvar(s *treegion.Suite) error {
	rows, labels, err := s.ProfileVariation()
	if err != nil {
		return err
	}
	printSpeedups("Profile variation (paper future work): train vs varied input, 4U", rows, labels)
	return nil
}

func wide(s *treegion.Suite) error {
	rows, labels, err := s.WideMachines()
	if err != nil {
		return err
	}
	printSpeedups("Wide machines: SLR vs treegion headroom (dep-height)", rows, labels)
	return nil
}

func ablation(s *treegion.Suite) error {
	rows, labels, err := s.Ablations()
	if err != nil {
		return err
	}
	printSpeedups("Ablations (8U, global weight)", rows, labels)
	return nil
}

func hyperexp(s *treegion.Suite) error {
	rows, labels, err := s.Hyperblocks()
	if err != nil {
		return err
	}
	printSpeedups("Hyperblocks (paper future work): predication vs tail duplication", rows, labels)
	return nil
}

func resources(s *treegion.Suite) error {
	rows, labels, err := s.Resources()
	if err != nil {
		return err
	}
	fmt.Println("Resources (8U, global weight): issue-slot utilization / avg register pressure")
	fmt.Printf("%-10s", "program")
	for _, l := range labels {
		fmt.Printf(" %16s", l)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Benchmark)
		for _, l := range labels {
			fmt.Printf("      %4.1f%%/%5.1f", 100*r.Utilization[l], r.AvgPressure[l])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func registers(s *treegion.Suite) error {
	rows, sizes, err := s.Registers()
	if err != nil {
		return err
	}
	fmt.Println("Registers (follow-up work): spills/1k-ops and est. slowdown, treegions on 8U")
	fmt.Printf("%-10s", "program")
	for _, k := range sizes {
		fmt.Printf("   %8s-reg", fmt.Sprint(k))
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.Benchmark)
		for _, k := range sizes {
			fmt.Printf("   %5.1f/%4.1f%%", r.SpillsPerKOp[k], 100*r.Slowdown[k])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}
