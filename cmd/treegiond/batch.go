package main

// POST /v1/compile-batch: the streaming batch endpoint. The request names a
// list of functions plus one shared configuration; the response is NDJSON —
// one line per function, written and flushed as soon as that function's
// compile lands (the pipeline delivers results in index order, so the
// stream is deterministic and byte-comparable across daemons), then one
// trailing summary line carrying the only wall-clock field. Cache, store,
// verify and telemetry semantics are exactly /v1/compile's: every function
// goes through the same tiered GetOrCompute path.
//
// Two streaming-specific behaviours, both load-bearing:
//
//   - The response runs under per-write deadlines (http.ResponseController)
//     instead of the server's whole-response write timeout, which a long
//     batch would otherwise trip mid-stream.
//   - The request context is the pipeline context: a client that goes away
//     cancels the remaining compiles instead of leaving the daemon heating
//     the room for a reader that no longer exists.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"treegion"
)

// batchRequest is the POST /v1/compile-batch body: shared configuration
// (same fields and defaults as /v1/compile) plus the function list.
type batchRequest struct {
	Functions []batchFunction `json:"functions"`

	Region         string  `json:"region"`
	Heuristic      string  `json:"heuristic"`
	Machine        string  `json:"machine"`
	Rename         *bool   `json:"rename"`
	DomPar         bool    `json:"dompar"`
	IfConvert      bool    `json:"ifconvert"`
	ExpansionLimit float64 `json:"expansion_limit"`
	Seed           uint64  `json:"seed"`
	Trips          int     `json:"trips"`
	Schedules      bool    `json:"schedules"`
	Verify         bool    `json:"verify"`
	// Inline resolves the batch's functions into one program and splices
	// eligible callees into the growing treegions. The batch must form a
	// valid program: function names unique, every named callee present in
	// the batch, call arities matching the callee signatures.
	Inline bool `json:"inline"`
}

// batchFunction is one function of a batch.
type batchFunction struct {
	IR string `json:"ir"`
}

// batchRequestFields lists the accepted body fields for the unknown-field
// 400.
var batchRequestFields = []string{
	"functions", "region", "heuristic", "machine", "rename", "dompar",
	"ifconvert", "expansion_limit", "seed", "trips", "schedules", "verify",
	"inline",
}

// maxBatchFunctions bounds one batch; bigger workloads belong on several
// requests (which the router will spread across shards anyway).
const maxBatchFunctions = 1024

// batchLine is one NDJSON result line. Exactly one of Result and Error is
// set. Result carries no wall-clock fields — lines are deterministic in the
// inputs, which the router's byte-identity tests rely on; timing lives in
// the summary line.
type batchLine struct {
	Index  int              `json:"index"`
	Result *compileResponse `json:"result,omitempty"`
	Error  *batchLineError  `json:"error,omitempty"`
}

// batchLineError is a per-function failure: the batch keeps streaming.
type batchLineError struct {
	Code    string   `json:"code"`
	Message string   `json:"message"`
	Rules   []string `json:"rules,omitempty"`
}

// batchSummary is the final NDJSON line of every completed stream.
type batchSummary struct {
	Done      bool    `json:"done"`
	Functions int     `json:"functions"`
	Errors    int     `json:"errors"`
	Cached    int     `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// compileRequestFor projects the shared batch configuration onto the
// single-compile request shape so configFrom/parseAndProfile/shapeResponse
// are shared verbatim with /v1/compile.
func (br *batchRequest) compileRequestFor(ir string) *compileRequest {
	return &compileRequest{
		IR:             ir,
		Region:         br.Region,
		Heuristic:      br.Heuristic,
		Machine:        br.Machine,
		Rename:         br.Rename,
		DomPar:         br.DomPar,
		IfConvert:      br.IfConvert,
		ExpansionLimit: br.ExpansionLimit,
		Seed:           br.Seed,
		Trips:          br.Trips,
		Schedules:      br.Schedules,
		Verify:         br.Verify,
		Inline:         br.Inline,
	}
}

func decodeBatchRequest(data []byte) (*batchRequest, *apiError) {
	var req batchRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if f, ok := unknownField(err); ok {
			return nil, apiErr(http.StatusBadRequest, "unknown_field",
				fmt.Errorf("unknown config field %q (valid fields: %s)", f, strings.Join(batchRequestFields, ", ")))
		}
		return nil, apiErr(http.StatusBadRequest, "bad_json", fmt.Errorf("bad request body: %w", err))
	}
	if len(req.Functions) == 0 {
		return nil, apiErr(http.StatusBadRequest, "missing_field", fmt.Errorf("missing or empty \"functions\" field"))
	}
	if len(req.Functions) > maxBatchFunctions {
		return nil, apiErr(http.StatusBadRequest, "batch_too_large",
			fmt.Errorf("%d functions in one batch (max %d)", len(req.Functions), maxBatchFunctions))
	}
	for i, f := range req.Functions {
		if f.IR == "" {
			return nil, apiErr(http.StatusBadRequest, "missing_field", fmt.Errorf("functions[%d]: missing \"ir\" field", i))
		}
	}
	return &req, nil
}

func (s *server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_compile_batch_requests_total", "POST /v1/compile-batch requests.").Inc()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("POST required"))
		return
	}
	started := time.Now()
	body, aerr := s.readBody(w, r)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	req, aerr := decodeBatchRequest(body)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	shared := req.compileRequestFor("")
	cfg, err := s.configFrom(shared)
	if err != nil {
		s.writeError(w, apiErr(http.StatusBadRequest, "bad_config", err))
		return
	}
	// Parse and profile every function before the first response byte, so
	// malformed input still gets a clean HTTP error status instead of a
	// broken 200 stream.
	n := len(req.Functions)
	fns := make([]*treegion.Function, n)
	profs := make([]*treegion.ProfileData, n)
	for i, f := range req.Functions {
		fn, prof, aerr := s.parseAndProfile(req.compileRequestFor(f.IR))
		if aerr != nil {
			aerr.msg = fmt.Sprintf("functions[%d]: %s", i, aerr.msg)
			s.writeError(w, aerr)
			return
		}
		fns[i], profs[i] = fn, prof
	}
	// An inlining batch must resolve into a program; reject an unresolvable
	// one here, while a clean HTTP error status is still possible (the
	// pipeline would re-derive the same failure after the 200 header).
	if req.Inline {
		if _, err := treegion.ResolveProgram(fns); err != nil {
			s.writeError(w, apiErr(http.StatusBadRequest, "bad_program", err))
			return
		}
	}
	s.reg.Counter("treegiond_http_compile_batch_functions_total",
		"Functions received on /v1/compile-batch.").Add(int64(n))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	nErrors, nCached := 0, 0
	emit := func(i int, fr *treegion.FunctionResult, cached bool, cerr error) error {
		line := batchLine{Index: i}
		if cerr != nil {
			nErrors++
			ae := compileError(cerr)
			line.Error = &batchLineError{Code: ae.code, Message: ae.msg, Rules: ae.rules}
		} else {
			if cached {
				nCached++
			}
			line.Result = s.shapeResponse(req.compileRequestFor(req.Functions[i].IR), fr, cached)
		}
		// Each line gets its own write window: long batches must not trip
		// the server-wide response write timeout mid-stream.
		_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := enc.Encode(&line); err != nil {
			return err
		}
		return rc.Flush()
	}
	err = treegion.CompileEach(r.Context(), fns, profs, cfg, emit, s.compileOptions(req.Verify, req.Inline)...)
	if err != nil {
		// The client is gone (write failure or disconnect-driven cancel);
		// there is nobody left to send a summary to.
		s.reg.Counter("treegiond_http_compile_batch_aborts_total",
			"Batch streams aborted by client disconnect or write failure.").Inc()
		return
	}
	_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	enc.Encode(batchSummary{
		Done:      true,
		Functions: n,
		Errors:    nErrors,
		Cached:    nCached,
		ElapsedMS: float64(time.Since(started).Microseconds()) / 1000,
	})
	rc.Flush()
}
