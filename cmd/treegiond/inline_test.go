package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
)

func callpair(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../examples/tir/callpair.tir")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestCompileEndpointProgram: a multi-function "ir" body compiles as a
// program; with "inline": true the call splices and the response carries
// the inline record; with "verify" the whole rule set (including the CL
// call rules and differential semantics over real calls) must stay silent.
func TestCompileEndpointProgram(t *testing.T) {
	_, ts := testServer(t)
	src := callpair(t)

	// Without inline: the program compiles, the call stays a barrier.
	req, _ := json.Marshal(map[string]any{"ir": src, "region": "tree-td", "verify": true})
	resp, cr := postCompile(t, ts, string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if cr.Functions != 2 || cr.Inlined != 0 {
		t.Fatalf("functions = %d, inlined = %d; want 2, 0", cr.Functions, cr.Inlined)
	}
	if len(cr.Diagnostics) != 0 {
		t.Fatalf("verify diagnostics: %v", cr.Diagnostics)
	}

	// With inline: the callee splices, and verification still proves the
	// result against the original program's call-executing semantics.
	reqIn, _ := json.Marshal(map[string]any{"ir": src, "region": "tree-td", "verify": true, "inline": true})
	respIn, crIn := postCompile(t, ts, string(reqIn))
	if respIn.StatusCode != http.StatusOK {
		t.Fatalf("inline status = %d, want 200", respIn.StatusCode)
	}
	if crIn.Inlined == 0 || crIn.InlinedOps == 0 {
		t.Fatalf("inline response records no splices: %+v", crIn)
	}
	if len(crIn.Diagnostics) != 0 {
		t.Fatalf("inline verify diagnostics: %v", crIn.Diagnostics)
	}
	if crIn.Time >= cr.Time {
		t.Errorf("inlined time %v not better than %v with the call barrier", crIn.Time, cr.Time)
	}

	// An unresolvable program with inline on is a 400, not a compile error.
	bad, _ := json.Marshal(map[string]any{"ir": "func solo\nbb0:\n  r2 = call @missing r0, r1\n  ret", "inline": true})
	respBad, _ := postCompile(t, ts, string(bad))
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unresolvable program: status = %d, want 400", respBad.StatusCode)
	}
}

// TestCompileBatchInline: the batch endpoint resolves its function list
// into one program when "inline" is set; each caller's line reports its own
// splices, and an unresolvable batch is rejected before the stream starts.
func TestCompileBatchInline(t *testing.T) {
	_, ts := testServer(t)
	src := callpair(t)
	// Split the example into its two functions for the batch shape.
	i := strings.Index(src, "func pair_mix")
	caller, callee := src[:i], src[i:]

	body, _ := json.Marshal(map[string]any{
		"functions": []map[string]string{{"ir": caller}, {"ir": callee}},
		"region":    "tree-td",
		"verify":    true,
		"inline":    true,
	})
	resp, err := http.Post(ts.URL+"/v1/compile-batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var lines []batchLine
	var summary batchSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "\"done\"") {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var ln batchLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !summary.Done || summary.Errors != 0 || len(lines) != 2 {
		t.Fatalf("summary %+v, %d lines", summary, len(lines))
	}
	if lines[0].Result == nil || lines[0].Result.Inlined == 0 {
		t.Fatalf("caller line records no splices: %+v", lines[0].Result)
	}
	if lines[1].Result == nil || lines[1].Result.Inlined != 0 {
		t.Fatalf("leaf callee line claims splices: %+v", lines[1].Result)
	}

	// A batch that does not resolve (missing callee) fails up front.
	badBody, _ := json.Marshal(map[string]any{
		"functions": []map[string]string{{"ir": caller}},
		"inline":    true,
	})
	respBad, err := http.Post(ts.URL+"/v1/compile-batch", "application/json", strings.NewReader(string(badBody)))
	if err != nil {
		t.Fatal(err)
	}
	er := decodeError(t, respBad)
	if respBad.StatusCode != http.StatusBadRequest || er.Error.Code != "bad_program" {
		t.Fatalf("status = %d code = %q, want 400 bad_program", respBad.StatusCode, er.Error.Code)
	}
}
