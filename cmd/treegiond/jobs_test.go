package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// storeServer builds a server backed by a persistent store directory (for
// journal-recovery tests) with the given queue shape.
func storeServer(t *testing.T, dir string, jobWorkers, jobQueue int) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(serverConfig{
		cacheBytes: 1 << 20,
		storeDir:   dir,
		jobWorkers: jobWorkers,
		jobQueue:   jobQueue,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, jr
}

func pollJob(t *testing.T, ts *httptest.Server, id string, want string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jr.State == want {
			return jr
		}
		if jr.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job %s reached %s (%s %s), want %s", id, jr.State, jr.Code, jr.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobMatchesSynchronousCompile is the API acceptance check: POST
// /v1/jobs → poll → result returns the same compileResponse the
// synchronous /v1/compile endpoint produces, modulo the fields that
// describe transport (elapsed wall time, which request hit the cache).
func TestJobMatchesSynchronousCompile(t *testing.T) {
	_, ts := testServer(t)
	body, _ := json.Marshal(map[string]any{"ir": fig1(t), "schedules": true, "verify": true})

	resp, sync := postCompile(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d", resp.StatusCode)
	}

	jresp, jr := postJob(t, ts, string(body))
	if jresp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d, want 202", jresp.StatusCode)
	}
	if loc := jresp.Header.Get("Location"); loc != "/v1/jobs/"+jr.ID {
		t.Fatalf("Location %q", loc)
	}
	done := pollJob(t, ts, jr.ID, "done")

	var async compileResponse
	if err := json.Unmarshal(done.Result, &async); err != nil {
		t.Fatal(err)
	}
	// Neutralize the transport-dependent fields, then demand byte-equal
	// JSON for everything else.
	async.ElapsedMS, sync.ElapsedMS = 0, 0
	async.Cached, sync.Cached = false, false
	aj, _ := json.Marshal(async)
	sj, _ := json.Marshal(sync)
	if !bytes.Equal(aj, sj) {
		t.Fatalf("async result differs from sync:\n--- async\n%s\n--- sync\n%s", aj, sj)
	}
	if !async.Verified || async.Function != "fig1" {
		t.Fatalf("async result %+v", async)
	}
}

func TestJobQueueOverflowAnswers429(t *testing.T) {
	// One worker, capacity one: a slow job occupies the worker, one more
	// fills the queue, and further submissions must bounce with 429
	// queue_full long before twelve arrive.
	_, ts := storeServer(t, t.TempDir(), 1, 1)

	got429 := false
	var accepted []string
	for i := 0; i < 12 && !got429; i++ {
		// Heavy profiling trips keep each job busy long enough that the
		// single worker cannot drain the queue between submissions.
		b, _ := json.Marshal(map[string]any{"ir": fig1(t), "trips": 2000000, "seed": uint64(i + 1)})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var jr jobResponse
			if err := json.Unmarshal(data, &jr); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, jr.ID)
		case http.StatusTooManyRequests:
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatal(err)
			}
			if er.Error.Code != "queue_full" {
				t.Fatalf("429 code %q", er.Error.Code)
			}
			got429 = true
		default:
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	if !got429 {
		t.Fatal("bounded queue never answered 429")
	}
	for _, id := range accepted {
		pollJob(t, ts, id, "done")
	}
}

func TestJobUnknownIs404(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/jdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if er := decodeError(t, resp); er.Error.Code != "unknown_job" {
		t.Fatalf("code %q", er.Error.Code)
	}
}

func TestJobBadPayloadRejectedAtSubmit(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"nope": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if er := decodeError(t, resp); er.Error.Code != "unknown_field" {
		t.Fatalf("code %q", er.Error.Code)
	}
}

func TestJobCancelQueued(t *testing.T) {
	// Saturate the single worker so the second job stays queued, then
	// DELETE it before it runs.
	_, ts := storeServer(t, t.TempDir(), 1, 4)
	slow, _ := json.Marshal(map[string]any{"ir": fig1(t), "trips": 20000})
	fast, _ := json.Marshal(map[string]any{"ir": fig1(t), "seed": 99})
	_, first := postJob(t, ts, string(slow))
	_, second := postJob(t, ts, string(fast))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.State != "canceled" && jr.State != "queued" && jr.State != "running" && jr.State != "done" {
		t.Fatalf("cancel state %q", jr.State)
	}
	// Whatever the race with the worker, the job must settle terminally.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := pollAny(t, ts, second.ID)
		if got.State == "canceled" || got.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pollJob(t, ts, first.ID, "done")
}

func pollAny(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

func TestJobListEndpoint(t *testing.T) {
	_, ts := testServer(t)
	body, _ := json.Marshal(map[string]any{"ir": fig1(t)})
	_, jr := postJob(t, ts, string(body))
	pollJob(t, ts, jr.ID, "done")

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []jobResponse `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != jr.ID {
		t.Fatalf("list %+v", list.Jobs)
	}
}

// TestJobJournalRecoveryAcrossRestart: jobs queued in one server process
// are journaled in the store and run to completion by the next process on
// the same store directory.
func TestJobJournalRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body, _ := json.Marshal(map[string]any{"ir": fig1(t)})

	// First "process": plant journal records exactly as a crash would leave
	// them — one job journaled as queued but never executed, one that was
	// mid-run when the process died.
	s1, err := newServer(serverConfig{cacheBytes: 1 << 20, storeDir: dir, jobWorkers: 1, jobQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	planted, _ := json.Marshal(map[string]any{
		"id": "jplanted", "state": "queued", "payload": json.RawMessage(body),
		"attempts": 0, "created": time.Now().Add(-time.Minute).Format(time.RFC3339Nano),
	})
	if err := s1.store.Journal().Put("jplanted", planted); err != nil {
		t.Fatal(err)
	}
	running, _ := json.Marshal(map[string]any{
		"id": "jwasrunning", "state": "running", "payload": json.RawMessage(body),
		"attempts": 1, "created": time.Now().Add(-time.Minute).Format(time.RFC3339Nano),
	})
	if err := s1.store.Journal().Put("jwasrunning", running); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.shutdown(ctx)
	cancel()

	// Second "process" on the same directory.
	_, ts2 := storeServer(t, dir, 2, 8)
	done := pollJob(t, ts2, "jplanted", "done")
	var async compileResponse
	if err := json.Unmarshal(done.Result, &async); err != nil {
		t.Fatal(err)
	}
	if async.Function != "fig1" {
		t.Fatalf("recovered job compiled %q", async.Function)
	}
	interrupted := pollAny(t, ts2, "jwasrunning")
	if interrupted.State != "interrupted" {
		t.Fatalf("mid-run job after restart: %+v", interrupted)
	}
}
