package main

// End-to-end shard-router tests: two real in-process treegiond instances
// behind internal/router must be indistinguishable from one daemon — batch
// result lines byte-identical, single compiles identical modulo wall-clock
// — and a client that abandons a batch stream must stop the compiles it
// left behind.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treegion"
	"treegion/internal/progen"
	"treegion/internal/router"
	"treegion/internal/telemetry"
)

// presetIRs renders a progen preset's functions to textual IR.
func presetIRs(t *testing.T, p progen.Preset) []string {
	t.Helper()
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	irs := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		irs[i] = treegion.PrintFunction(fn)
	}
	return irs
}

func batchBody(t *testing.T, irs []string, trips int) []byte {
	t.Helper()
	fns := make([]map[string]string, len(irs))
	for i, ir := range irs {
		fns[i] = map[string]string{"ir": ir}
	}
	b, err := json.Marshal(map[string]any{"functions": fns, "trips": trips})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postNDJSON posts body and returns the raw NDJSON lines.
func postNDJSON(t *testing.T, url string, body []byte) []string {
	t.Helper()
	resp, err := http.Post(url+"/v1/compile-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch Content-Type = %q, want application/x-ndjson", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty batch response")
	}
	return lines
}

// routedFleet boots n treegiond instances and a router in front of them,
// returning the router's base URL.
func routedFleet(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		_, ts := testServer(t)
		urls[i] = ts.URL
	}
	rt, err := router.New(router.Config{Replicas: urls, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return front.URL
}

// A two-replica fleet behind the router must produce byte-identical batch
// result lines to a single daemon: result lines carry no wall-clock fields,
// and compilation is deterministic in the inputs.
func TestRouterBatchByteIdenticalToSingleDaemon(t *testing.T) {
	preset, _ := progen.PresetByName("compress")
	irs := presetIRs(t, preset)
	body := batchBody(t, irs, 8)

	_, single := testServer(t)
	want := postNDJSON(t, single.URL, body)

	frontURL := routedFleet(t, 2)
	got := postNDJSON(t, frontURL, body)

	if len(got) != len(want) {
		t.Fatalf("line counts differ: router %d, single %d", len(got), len(want))
	}
	// Every line but the trailing summary must match byte for byte.
	for i := 0; i < len(want)-1; i++ {
		if got[i] != want[i] {
			t.Fatalf("result line %d differs\nrouter: %s\nsingle: %s", i, got[i], want[i])
		}
	}
	// The summary differs only in elapsed_ms.
	var gs, ws map[string]any
	if err := json.Unmarshal([]byte(got[len(got)-1]), &gs); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(want[len(want)-1]), &ws); err != nil {
		t.Fatal(err)
	}
	delete(gs, "elapsed_ms")
	delete(ws, "elapsed_ms")
	if fmt.Sprint(gs) != fmt.Sprint(ws) {
		t.Fatalf("summaries differ beyond elapsed_ms:\nrouter: %v\nsingle: %v", gs, ws)
	}
}

// Single compiles through the router must equal direct compiles modulo the
// elapsed_ms wall-clock field, and repeating a body must keep landing on
// the same replica (the second round is a cache hit somewhere).
func TestRouterCompileMatchesSingleDaemon(t *testing.T) {
	preset, _ := progen.PresetByName("compress")
	irs := presetIRs(t, preset)

	_, single := testServer(t)
	frontURL := routedFleet(t, 2)

	normalize := func(data []byte) string {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("bad compile response: %v: %s", err, data)
		}
		delete(m, "elapsed_ms")
		delete(m, "cached")
		out, _ := json.Marshal(m)
		return string(out)
	}
	post := func(url, ir string) string {
		body, _ := json.Marshal(map[string]any{"ir": ir, "trips": 8})
		resp, err := http.Post(url+"/v1/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile status %d: %s", resp.StatusCode, data)
		}
		return normalize(data)
	}
	for i, ir := range irs {
		direct := post(single.URL, ir)
		routed := post(frontURL, ir)
		if direct != routed {
			t.Fatalf("function %d: routed result differs from direct\nrouted: %s\ndirect: %s", i, routed, direct)
		}
	}
}

// Abandoning a batch stream must stop the remaining compiles: the request
// context is the pipeline context, so a disconnect cancels queued work
// instead of compiling for a reader that is gone.
func TestBatchClientDisconnectStopsCompiling(t *testing.T) {
	s, ts := testServer(t)

	// Unique, deliberately heavy functions (no cache hits, long compiles)
	// so cancellation demonstrably lands before the batch drains.
	p := progen.Stress()
	p.NumFuncs, p.OpsPerFunc = 10, 3000
	irs := presetIRs(t, p)
	body := batchBody(t, irs, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/compile-batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read exactly one result line, then walk away.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first batch line: %v", err)
	}
	cancel()

	// The daemon must notice the disconnect and count an aborted stream.
	// Registration is idempotent, so this resolves the handler's counter.
	aborts := s.reg.Counter("treegiond_http_compile_batch_aborts_total",
		"Batch streams aborted by client disconnect or write failure.")
	deadline := time.Now().Add(15 * time.Second)
	for aborts.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abort counter never ticked: compiles=%d inFlight=%d",
				s.metrics.Compiles.Load(), s.metrics.InFlight.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Let any in-flight compile land, then confirm the batch stopped short.
	for s.metrics.InFlight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never drained: inFlight=%d", s.metrics.InFlight.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if compiles := s.metrics.Compiles.Load(); compiles >= int64(len(irs)) {
		t.Fatalf("all %d functions compiled despite client disconnect after line 1", len(irs))
	}
}
