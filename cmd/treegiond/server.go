package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"treegion"
)

// server is the daemon state: a shared compile cache, pipeline metrics and
// per-endpoint request counters.
type server struct {
	workers int
	cache   *treegion.CompileCache
	metrics *treegion.CompileMetrics

	start    time.Time
	requests struct {
		compile, compileErrors, metrics, healthz atomic.Int64
	}
}

func newServer(workers int, cacheBytes int64) *server {
	return &server{
		workers: workers,
		cache:   treegion.NewCompileCache(cacheBytes),
		metrics: &treegion.CompileMetrics{},
		start:   time.Now(),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// compileRequest is the POST /compile body. The function arrives as
// textual IR (the internal/irtext grammar); the configuration arrives by
// name, mirroring treegionc's flags. Zero values select the paper's
// defaults (treegions, global weight, 4U, renaming on).
type compileRequest struct {
	IR        string `json:"ir"`
	Region    string `json:"region"`    // bb, slr, tree, sb, tree-td (default tree)
	Heuristic string `json:"heuristic"` // depheight, exitcount, globalweight, weightedcount
	Machine   string `json:"machine"`   // 1U, 4U, 8U, 16U (default 4U)
	// Rename defaults to true; send false explicitly to disable.
	Rename    *bool `json:"rename"`
	DomPar    bool  `json:"dompar"`
	IfConvert bool  `json:"ifconvert"`
	// ExpansionLimit bounds tree-td tail duplication (default 2.0).
	ExpansionLimit float64 `json:"expansion_limit"`
	// Seed and Trips drive the stochastic profiler (defaults 1 and 100).
	Seed  uint64 `json:"seed"`
	Trips int    `json:"trips"`
	// Schedules requests the textual schedules in the response.
	Schedules bool `json:"schedules"`
}

// compileResponse is the POST /compile reply: the schedule metadata and
// timing of one compiled function.
type compileResponse struct {
	Function        string   `json:"function"`
	Time            float64  `json:"time_cycles"`
	TimeWithCopies  float64  `json:"time_with_copies_cycles"`
	OpsBefore       int      `json:"ops_before"`
	OpsAfter        int      `json:"ops_after"`
	Regions         int      `json:"regions"`
	ScheduleLengths []int    `json:"schedule_lengths"`
	Speculated      int      `json:"speculated"`
	Renamed         int      `json:"renamed"`
	Copies          int      `json:"copies"`
	Merged          int      `json:"merged"`
	Cached          bool     `json:"cached"`
	ElapsedMS       float64  `json:"elapsed_ms"`
	Schedules       []string `json:"schedules,omitempty"`
}

func (s *server) configFrom(req *compileRequest) (treegion.Config, error) {
	var zero treegion.Config
	if req.Region == "" {
		req.Region = "tree"
	}
	if req.Heuristic == "" {
		req.Heuristic = "globalweight"
	}
	if req.Machine == "" {
		req.Machine = "4U"
	}
	if req.ExpansionLimit == 0 {
		req.ExpansionLimit = 2.0
	}
	kind, err := treegion.ParseRegionKind(req.Region)
	if err != nil {
		return zero, err
	}
	h, err := treegion.ParseHeuristic(req.Heuristic)
	if err != nil {
		return zero, err
	}
	m, ok := treegion.MachineByName(req.Machine)
	if !ok {
		return zero, fmt.Errorf("unknown machine %q (want 1U, 4U, 8U or 16U)", req.Machine)
	}
	rename := true
	if req.Rename != nil {
		rename = *req.Rename
	}
	return treegion.Config{
		Kind:                 kind,
		Heuristic:            h,
		Machine:              m,
		Rename:               rename,
		DominatorParallelism: req.DomPar || kind == treegion.TreegionTD,
		TD:                   treegion.TDConfig{ExpansionLimit: req.ExpansionLimit, PathLimit: 20, MergeLimit: 4},
		IfConvert:            req.IfConvert,
	}, nil
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.compile.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	started := time.Now()
	var req compileRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.IR == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("missing \"ir\" field"))
		return
	}
	cfg, err := s.configFrom(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	fn, err := treegion.ParseFunction(req.IR)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parse ir: %w", err))
		return
	}
	seed, trips := req.Seed, req.Trips
	if seed == 0 {
		seed = 1
	}
	if trips <= 0 {
		trips = 100
	}
	prof, err := treegion.ProfileFunction(fn, seed, trips)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("profile: %w", err))
		return
	}
	fr, cached, err := treegion.CompileFunctionWith(r.Context(), fn, prof, cfg, treegion.CompileOptions{
		Workers: s.workers,
		Cache:   s.cache,
		Metrics: s.metrics,
	})
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("compile: %w", err))
		return
	}
	resp := compileResponse{
		Function:       fr.Fn.Name,
		Time:           fr.Time,
		TimeWithCopies: fr.Copies,
		OpsBefore:      fr.OpsBefore,
		OpsAfter:       fr.OpsAfter,
		Regions:        len(fr.Regions),
		Speculated:     fr.NumSpeculated,
		Renamed:        fr.NumRenamed,
		Copies:         fr.NumCopies,
		Merged:         fr.NumMerged,
		Cached:         cached,
		ElapsedMS:      float64(time.Since(started).Microseconds()) / 1000,
	}
	for _, sc := range fr.Schedules {
		resp.ScheduleLengths = append(resp.ScheduleLengths, sc.Length)
		if req.Schedules {
			resp.Schedules = append(resp.Schedules, sc.String())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.requests.compileErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleMetrics serves the cache and pipeline counters in Prometheus text
// exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.metrics.Add(1)
	cs := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("treegiond_cache_hits_total", "Compiles served from the result cache.", cs.Hits)
	counter("treegiond_cache_misses_total", "Cache lookups that required a compile.", cs.Misses)
	counter("treegiond_cache_evictions_total", "Entries evicted under the byte budget.", cs.Evictions)
	gauge("treegiond_cache_entries", "Resident cache entries.", cs.Entries)
	gauge("treegiond_cache_bytes", "Estimated resident cache bytes.", cs.Bytes)
	gauge("treegiond_cache_budget_bytes", "Configured cache byte budget.", cs.Budget)
	counter("treegiond_pipeline_compiles_total", "Cold function compiles executed.", s.metrics.Compiles.Load())
	counter("treegiond_pipeline_cache_hits_total", "Pipeline compiles served from cache.", s.metrics.CacheHits.Load())
	counter("treegiond_pipeline_panics_total", "Compiles that panicked (isolated to errors).", s.metrics.Panics.Load())
	counter("treegiond_pipeline_errors_total", "Compiles that returned errors.", s.metrics.Errors.Load())
	gauge("treegiond_pipeline_in_flight", "Compiles currently executing.", s.metrics.InFlight.Load())
	counter("treegiond_http_compile_requests_total", "POST /compile requests.", s.requests.compile.Load())
	counter("treegiond_http_request_errors_total", "Requests answered with an error status.", s.requests.compileErrors.Load())
	counter("treegiond_http_metrics_requests_total", "GET /metrics requests.", s.requests.metrics.Load())
	counter("treegiond_http_healthz_requests_total", "GET /healthz requests.", s.requests.healthz.Load())
	gauge("treegiond_uptime_seconds", "Seconds since daemon start.", int64(time.Since(s.start).Seconds()))
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.healthz.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
