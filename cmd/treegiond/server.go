package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"treegion"
	"treegion/internal/api"
	"treegion/internal/jobs"
)

// serverConfig collects the daemon's tunables (one field per flag).
type serverConfig struct {
	workers    int
	cacheBytes int64

	// storeDir, when non-empty, opens the persistent artifact store there
	// and layers it under the memory cache; storeBudget bounds its bytes.
	storeDir    string
	storeBudget int64

	// jobWorkers/jobQueue/jobTimeout configure the async job queue.
	jobWorkers int
	jobQueue   int
	jobTimeout time.Duration
}

// server is the daemon state: a shared tiered compile cache (memory over
// the optional persistent artifact store), the async job queue, pipeline
// metrics and a telemetry registry that every subsystem (cache, store,
// jobs, pipeline, HTTP layer, per-phase compile telemetry) reports through.
type server struct {
	workers int
	cache   *treegion.CompileCache
	store   *treegion.ArtifactStore
	jobs    *jobs.Queue
	metrics *treegion.CompileMetrics
	reg     *treegion.Telemetry

	start time.Time
}

func newServer(cfg serverConfig) (*server, error) {
	s := &server{
		workers: cfg.workers,
		cache:   treegion.NewCompileCache(cfg.cacheBytes),
		metrics: &treegion.CompileMetrics{},
		reg:     treegion.NewTelemetry(),
		start:   time.Now(),
	}
	s.cache.Register(s.reg, "treegiond")
	s.metrics.Register(s.reg, "treegiond")
	treegion.ExportSchedulerTelemetry(s.reg)
	s.reg.GaugeFunc("treegiond_uptime_seconds", "Seconds since daemon start.", func() int64 {
		return int64(time.Since(s.start).Seconds())
	})

	var journal jobs.Journal
	if cfg.storeDir != "" {
		st, err := treegion.OpenArtifactStore(cfg.storeDir, cfg.storeBudget)
		if err != nil {
			return nil, fmt.Errorf("open artifact store: %w", err)
		}
		s.store = st
		s.cache.SetL2(st)
		st.Register(s.reg, "treegiond")
		journal = st.Journal()
	}

	q, err := jobs.New(jobs.Options{
		Workers:  cfg.jobWorkers,
		Capacity: cfg.jobQueue,
		Timeout:  cfg.jobTimeout,
		Retries:  2,
		Journal:  journal,
		Run:      s.runJob,
	})
	if err != nil {
		return nil, err
	}
	s.jobs = q
	q.Register(s.reg, "treegiond")
	q.Start()
	return s, nil
}

// shutdown drains the daemon gracefully: stop accepting jobs, let running
// jobs finish (queued jobs stay journaled for the next start), then flush
// and close the store.
func (s *server) shutdown(ctx context.Context) error {
	err := s.jobs.Drain(ctx)
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// API version prefix. Old unversioned paths redirect permanently (308 for
// POST /compile so clients re-send the body, 301 for the GET endpoints) and
// carry a Deprecation header; they will be dropped one release after /v1.
const apiPrefix = "/v1"

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(apiPrefix+"/compile", s.handleCompile)
	mux.HandleFunc(apiPrefix+"/compile-batch", s.handleCompileBatch)
	mux.HandleFunc(apiPrefix+"/jobs", s.handleJobs)
	mux.HandleFunc(apiPrefix+"/jobs/", s.handleJob)
	mux.HandleFunc(apiPrefix+"/metrics", s.handleMetrics)
	mux.HandleFunc(apiPrefix+"/store/stats", s.handleStoreStats)
	mux.HandleFunc(apiPrefix+"/healthz", s.handleHealthz)
	mux.HandleFunc("/compile", s.legacyRedirect(apiPrefix+"/compile", http.StatusPermanentRedirect))
	mux.HandleFunc("/metrics", s.legacyRedirect(apiPrefix+"/metrics", http.StatusMovedPermanently))
	mux.HandleFunc("/healthz", s.legacyRedirect(apiPrefix+"/healthz", http.StatusMovedPermanently))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.fail(w, http.StatusNotFound, "not_found",
			fmt.Errorf("no such endpoint %q (want %s/compile, %s/jobs, %s/metrics or %s/healthz)",
				r.URL.Path, apiPrefix, apiPrefix, apiPrefix, apiPrefix))
	})
	return mux
}

// debugRoutes serves net/http/pprof on the -debug-addr listener, kept off
// the public mux so profiling is never exposed on the service port.
func debugRoutes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) legacyRedirect(target string, code int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("treegiond_http_legacy_redirects_total",
			"Requests to deprecated unversioned paths.").Inc()
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", target))
		http.Redirect(w, r, target, code)
	}
}

// compileRequest is the POST /v1/compile body. The function arrives as
// textual IR (the internal/irtext grammar); the configuration arrives by
// name, mirroring treegionc's flags. Zero values select the paper's
// defaults (treegions, global weight, 4U, renaming on). Unknown fields are
// rejected with a structured 400.
type compileRequest struct {
	IR        string `json:"ir"`
	Region    string `json:"region"`    // bb, slr, tree, sb, tree-td (default tree)
	Heuristic string `json:"heuristic"` // depheight, exitcount, globalweight, weightedcount
	Machine   string `json:"machine"`   // 1U, 4U, 8U, 16U (default 4U)
	// Rename defaults to true; send false explicitly to disable.
	Rename    *bool `json:"rename"`
	DomPar    bool  `json:"dompar"`
	IfConvert bool  `json:"ifconvert"`
	// ExpansionLimit bounds tree-td tail duplication (default 2.0).
	ExpansionLimit float64 `json:"expansion_limit"`
	// Seed and Trips drive the stochastic profiler (defaults 1 and 100).
	Seed  uint64 `json:"seed"`
	Trips int    `json:"trips"`
	// Schedules requests the textual schedules in the response.
	Schedules bool `json:"schedules"`
	// Trace requests the per-phase compile trace in the response.
	Trace bool `json:"trace"`
	// Verify runs the static schedule verifier over the result. A schedule
	// with Error-severity diagnostics is rejected with a 422 verify_failed
	// error listing the violated rule IDs; advisory diagnostics ride along
	// in the response.
	Verify bool `json:"verify"`
	// Inline enables demand-driven inline-on-absorb: the request's functions
	// are resolved into a program and calls whose callee fits the default
	// budgets are spliced into the growing treegions. Requires the "ir" field
	// to resolve as a program (callees defined, arities matching).
	Inline bool `json:"inline"`
}

// compileRequestFields lists the accepted body fields, quoted in the
// structured 400 a request with an unknown field receives.
var compileRequestFields = []string{
	"ir", "region", "heuristic", "machine", "rename", "dompar", "ifconvert",
	"expansion_limit", "seed", "trips", "schedules", "trace", "verify", "inline",
}

// tracePhase is one row of the optional per-phase trace in the response.
type tracePhase struct {
	Calls int64   `json:"calls"`
	Ops   int64   `json:"ops"`
	MS    float64 `json:"ms"`
}

// compileResponse is the POST /v1/compile reply: the schedule metadata and
// timing of one compiled function.
type compileResponse struct {
	Function        string                `json:"function"`
	Time            float64               `json:"time_cycles"`
	TimeWithCopies  float64               `json:"time_with_copies_cycles"`
	OpsBefore       int                   `json:"ops_before"`
	OpsAfter        int                   `json:"ops_after"`
	Regions         int                   `json:"regions"`
	ScheduleLengths []int                 `json:"schedule_lengths"`
	Speculated      int                   `json:"speculated"`
	Renamed         int                   `json:"renamed"`
	Copies          int                   `json:"copies"`
	Merged          int                   `json:"merged"`
	BranchCycles    int                   `json:"branch_cycles"`
	Cached          bool                  `json:"cached"`
	// Functions is the function count of a multi-function compile (omitted
	// for the single-function requests the endpoint has always served).
	Functions int `json:"functions,omitempty"`
	// Inline statistics, present when the request enabled inlining and the
	// compile consulted the inliner.
	Inlined        int     `json:"inlined,omitempty"`
	InlinedOps     int     `json:"inlined_ops,omitempty"`
	InlineDeclined int     `json:"inline_declined,omitempty"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	Schedules       []string              `json:"schedules,omitempty"`
	Trace           map[string]tracePhase `json:"trace,omitempty"`
	// Verified is true when the request asked for verification and every
	// rule passed; Diagnostics carries any advisory (sub-Error) findings.
	Verified    bool     `json:"verified,omitempty"`
	Diagnostics []string `json:"diagnostics,omitempty"`
}

// errorResponse is the structured error body every non-2xx reply carries:
// {"error": {"code": "...", "message": "..."}}. The shape is defined once
// in internal/api and shared with the router, so the two binaries cannot
// drift apart.
type errorResponse = api.Error

func (s *server) configFrom(req *compileRequest) (treegion.Config, error) {
	var zero treegion.Config
	if req.Region == "" {
		req.Region = "tree"
	}
	if req.Heuristic == "" {
		req.Heuristic = "globalweight"
	}
	if req.Machine == "" {
		req.Machine = "4U"
	}
	if req.ExpansionLimit == 0 {
		req.ExpansionLimit = 2.0
	}
	kind, err := treegion.ParseRegionKind(req.Region)
	if err != nil {
		return zero, err
	}
	h, err := treegion.ParseHeuristic(req.Heuristic)
	if err != nil {
		return zero, err
	}
	m, ok := treegion.MachineByName(req.Machine)
	if !ok {
		return zero, fmt.Errorf("unknown machine %q (want 1U, 4U, 8U or 16U)", req.Machine)
	}
	rename := true
	if req.Rename != nil {
		rename = *req.Rename
	}
	return treegion.Config{
		Kind:                 kind,
		Heuristic:            h,
		Machine:              m,
		Rename:               rename,
		DominatorParallelism: req.DomPar || kind == treegion.TreegionTD,
		TD:                   treegion.TDConfig{ExpansionLimit: req.ExpansionLimit, PathLimit: 20, MergeLimit: 4},
		IfConvert:            req.IfConvert,
	}, nil
}

// unknownField extracts the field name from the json package's
// DisallowUnknownFields error, which is only exposed as text.
func unknownField(err error) (string, bool) {
	const marker = `json: unknown field "`
	msg := err.Error()
	i := strings.Index(msg, marker)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j], true
	}
	return "", false
}

// apiError is one structured API failure: an HTTP status, a
// machine-readable code and the verify detail when applicable. It doubles
// as the job runner's error type, so a failed job reports the same code a
// synchronous request would have.
type apiError struct {
	status int
	code   string
	msg    string
	rules  []string
	diags  []string
}

func (e *apiError) Error() string { return e.msg }

// Code implements jobs.Coder: the code lands in Job.ErrorCode.
func (e *apiError) Code() string { return e.code }

func apiErr(status int, code string, err error) *apiError {
	return &apiError{status: status, code: code, msg: err.Error()}
}

// decodeCompileRequest parses one compile-request body (the POST
// /v1/compile body and the POST /v1/jobs payload share this format).
func decodeCompileRequest(data []byte) (*compileRequest, *apiError) {
	var req compileRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if f, ok := unknownField(err); ok {
			return nil, apiErr(http.StatusBadRequest, "unknown_field",
				fmt.Errorf("unknown config field %q (valid fields: %s)", f, strings.Join(compileRequestFields, ", ")))
		}
		return nil, apiErr(http.StatusBadRequest, "bad_json", fmt.Errorf("bad request body: %w", err))
	}
	if req.IR == "" {
		return nil, apiErr(http.StatusBadRequest, "missing_field", fmt.Errorf("missing \"ir\" field"))
	}
	return &req, nil
}

// parseAndProfile turns one request's IR into a parsed function and its
// stochastic profile (the compile pipeline's two inputs).
func (s *server) parseAndProfile(req *compileRequest) (*treegion.Function, *treegion.ProfileData, *apiError) {
	fn, err := treegion.ParseFunction(req.IR)
	if err != nil {
		return nil, nil, apiErr(http.StatusBadRequest, "bad_ir", fmt.Errorf("parse ir: %w", err))
	}
	seed, trips := req.Seed, req.Trips
	if seed == 0 {
		seed = 1
	}
	if trips <= 0 {
		trips = 100
	}
	prof, err := treegion.ProfileFunction(fn, seed, trips)
	if err != nil {
		return nil, nil, apiErr(http.StatusUnprocessableEntity, "profile_failed", fmt.Errorf("profile: %w", err))
	}
	return fn, prof, nil
}

// compileOptions assembles the pipeline options every compile on this
// daemon shares: the worker pool bound, the tiered cache/store, metrics and
// telemetry — plus verification and inline-on-absorb when the request asks
// for them.
func (s *server) compileOptions(verify, inlineOn bool) []treegion.CompileOption {
	copts := []treegion.CompileOption{
		treegion.WithWorkers(s.workers),
		treegion.WithCache(s.cache),
		treegion.WithMetrics(s.metrics),
		treegion.WithTelemetry(s.reg),
	}
	if verify {
		copts = append(copts, treegion.WithVerify())
	}
	if inlineOn {
		copts = append(copts, treegion.WithInline(treegion.DefaultInlineConfig()))
	}
	return copts
}

// compileError maps a pipeline error onto the structured API error space.
func compileError(err error) *apiError {
	var vf *treegion.VerifyFailure
	if errors.As(err, &vf) {
		ae := apiErr(http.StatusUnprocessableEntity, "verify_failed", vf)
		ae.rules = vf.Rules()
		for _, d := range vf.Diagnostics {
			ae.diags = append(ae.diags, d.String())
		}
		return ae
	}
	return apiErr(http.StatusUnprocessableEntity, "compile_failed", fmt.Errorf("compile: %w", err))
}

// compile is the request core shared by the synchronous handler and the
// async job runner: parse, profile, compile through the tiered cache,
// shape the response. ElapsedMS is left for the caller. A single-function
// request without inlining takes exactly the historical path (same cache
// keys, same response bytes); a multi-function "ir" or "inline": true
// compiles the resolved program as one unit.
func (s *server) compile(ctx context.Context, req *compileRequest) (*compileResponse, *apiError) {
	cfg, err := s.configFrom(req)
	if err != nil {
		return nil, apiErr(http.StatusBadRequest, "bad_config", err)
	}
	// Inline requests and multi-function sources (the single-function parser
	// rejects a second `func` declaration) go through the program path.
	if req.Inline {
		return s.compileProgram(ctx, req, cfg)
	}
	fn, prof, aerr := s.parseAndProfile(req)
	if aerr != nil {
		if _, perr := treegion.ParseIRProgram(req.IR); perr == nil {
			return s.compileProgram(ctx, req, cfg)
		}
		return nil, aerr
	}
	fr, cached, err := treegion.CompileOne(ctx, fn, prof, cfg, s.compileOptions(req.Verify, false)...)
	if err != nil {
		return nil, compileError(err)
	}
	return s.shapeResponse(req, fr, cached), nil
}

// compileProgram serves the interprocedural request shape: the "ir" field
// holds a whole program, whose call graph must resolve; with "inline" set,
// eligible callees splice into the growing treegions.
func (s *server) compileProgram(ctx context.Context, req *compileRequest, cfg treegion.Config) (*compileResponse, *apiError) {
	irprog, err := treegion.ParseIRProgram(req.IR)
	if err != nil {
		return nil, apiErr(http.StatusBadRequest, "bad_ir", fmt.Errorf("parse ir: %w", err))
	}
	seed, trips := req.Seed, req.Trips
	if seed == 0 {
		seed = 1
	}
	if trips <= 0 {
		trips = 100
	}
	prog := &treegion.Program{Name: irprog.Funcs[0].Name, Funcs: irprog.Funcs}
	var profs treegion.Profiles
	for i, fn := range irprog.Funcs {
		prof, err := treegion.ProfileFunction(fn, seed+uint64(i), trips)
		if err != nil {
			return nil, apiErr(http.StatusUnprocessableEntity, "profile_failed", fmt.Errorf("profile %s: %w", fn.Name, err))
		}
		profs = append(profs, prof)
	}
	res, err := treegion.Compile(ctx, prog, profs, cfg, s.compileOptions(req.Verify, req.Inline)...)
	if err != nil {
		return nil, compileError(err)
	}
	return s.shapeProgramResponse(req, res), nil
}

// shapeProgramResponse renders a whole-program compile: aggregate time,
// code size, scheduling counters and the inline record, with the
// per-function details (schedules, traces) concatenated in function order.
func (s *server) shapeProgramResponse(req *compileRequest, res *treegion.ProgramResult) *compileResponse {
	resp := &compileResponse{
		Function:  res.Name,
		Functions: len(res.Funcs),
		Time:      res.Time,
	}
	for _, fr := range res.Funcs {
		resp.TimeWithCopies += fr.Copies
		resp.OpsBefore += fr.OpsBefore
		resp.OpsAfter += fr.OpsAfter
		resp.Regions += len(fr.Regions)
		resp.Speculated += fr.NumSpeculated
		resp.Renamed += fr.NumRenamed
		resp.Copies += fr.NumCopies
		resp.Merged += fr.NumMerged
		resp.BranchCycles += fr.Sched.BranchCycles
		for _, sc := range fr.Schedules {
			resp.ScheduleLengths = append(resp.ScheduleLengths, sc.Length)
			if req.Schedules {
				resp.Schedules = append(resp.Schedules, sc.String())
			}
		}
		if req.Verify {
			for _, d := range fr.Diagnostics {
				resp.Diagnostics = append(resp.Diagnostics, d.String())
			}
		}
	}
	if req.Verify {
		resp.Verified = true
	}
	if req.Inline {
		resp.Inlined = res.Inline.Inlined
		resp.InlinedOps = res.Inline.InlinedOps
		resp.InlineDeclined = res.Inline.Declined()
	}
	return resp
}

// shapeResponse renders one compiled function as the API response body
// (shared by /v1/compile, /v1/jobs and each /v1/compile-batch line).
func (s *server) shapeResponse(req *compileRequest, fr *treegion.FunctionResult, cached bool) *compileResponse {
	resp := &compileResponse{
		Function:       fr.Fn.Name,
		Time:           fr.Time,
		TimeWithCopies: fr.Copies,
		OpsBefore:      fr.OpsBefore,
		OpsAfter:       fr.OpsAfter,
		Regions:        len(fr.Regions),
		Speculated:     fr.NumSpeculated,
		Renamed:        fr.NumRenamed,
		Copies:         fr.NumCopies,
		Merged:         fr.NumMerged,
		BranchCycles:   fr.Sched.BranchCycles,
		Cached:         cached,
	}
	if req.Verify {
		resp.Verified = true
		for _, d := range fr.Diagnostics {
			resp.Diagnostics = append(resp.Diagnostics, d.String())
		}
	}
	if req.Inline {
		resp.Inlined = fr.Inline.Inlined
		resp.InlinedOps = fr.Inline.InlinedOps
		resp.InlineDeclined = fr.Inline.Declined()
	}
	for _, sc := range fr.Schedules {
		resp.ScheduleLengths = append(resp.ScheduleLengths, sc.Length)
		if req.Schedules {
			resp.Schedules = append(resp.Schedules, sc.String())
		}
	}
	if req.Trace {
		snap := fr.Trace.Snapshot()
		resp.Trace = make(map[string]tracePhase)
		for p := treegion.Phase(0); int(p) < len(snap.Phase); p++ {
			ps := snap.Phase[p]
			if ps.Calls == 0 {
				continue
			}
			resp.Trace[p.String()] = tracePhase{
				Calls: ps.Calls,
				Ops:   ps.Ops,
				MS:    float64(ps.Duration().Microseconds()) / 1000,
			}
		}
	}
	return resp
}

// readBody drains one bounded request body.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiError) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, apiErr(http.StatusRequestEntityTooLarge, "body_too_large", err)
		}
		return nil, apiErr(http.StatusBadRequest, "bad_body", fmt.Errorf("read request body: %w", err))
	}
	return data, nil
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_compile_requests_total", "POST /v1/compile requests.").Inc()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("POST required"))
		return
	}
	started := time.Now()
	body, aerr := s.readBody(w, r)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	req, aerr := decodeCompileRequest(body)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	resp, aerr := s.compile(r.Context(), req)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	resp.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// runJob is the async job runner: the journaled payload is a compile
// request body, the result is the same compileResponse the synchronous
// endpoint returns.
func (s *server) runJob(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
	req, aerr := decodeCompileRequest(payload)
	if aerr != nil {
		return nil, aerr
	}
	started := time.Now()
	resp, aerr := s.compile(ctx, req)
	if aerr != nil {
		return nil, aerr
	}
	resp.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
	return json.Marshal(resp)
}

// jobResponse is the job-endpoint reply shape.
type jobResponse struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Attempts int             `json:"attempts,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	Code     string          `json:"error_code,omitempty"`
}

func jobView(j jobs.Job) jobResponse {
	return jobResponse{
		ID:       j.ID,
		State:    string(j.State),
		Attempts: j.Attempts,
		Result:   j.Result,
		Error:    j.Error,
		Code:     j.ErrorCode,
	}
}

// handleJobs serves the collection: POST submits a compile job (202 with
// the job ID; 429 when the queue is full), GET lists known jobs.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_jobs_requests_total", "/v1/jobs requests.").Inc()
	switch r.Method {
	case http.MethodPost:
		body, aerr := s.readBody(w, r)
		if aerr != nil {
			s.writeError(w, aerr)
			return
		}
		// Reject malformed payloads at submission, not at execution.
		if _, aerr := decodeCompileRequest(body); aerr != nil {
			s.writeError(w, aerr)
			return
		}
		j, err := s.jobs.Submit(body)
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.writeError(w, apiErr(http.StatusTooManyRequests, "queue_full",
				fmt.Errorf("job queue is full; retry later or raise -job-queue")))
			return
		case errors.Is(err, jobs.ErrDraining):
			s.writeError(w, apiErr(http.StatusServiceUnavailable, "draining",
				fmt.Errorf("daemon is shutting down")))
			return
		case err != nil:
			s.writeError(w, apiErr(http.StatusInternalServerError, "submit_failed", err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", apiPrefix+"/jobs/"+j.ID)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(jobView(j))
	case http.MethodGet:
		list := s.jobs.List()
		views := make([]jobResponse, len(list))
		for i, j := range list {
			views[i] = jobView(j)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"jobs": views})
	default:
		s.fail(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("POST or GET required"))
	}
}

// handleJob serves one job: GET polls state/result, DELETE cancels.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_jobs_requests_total", "/v1/jobs requests.").Inc()
	id := strings.TrimPrefix(r.URL.Path, apiPrefix+"/jobs/")
	if id == "" || strings.ContainsRune(id, '/') {
		s.fail(w, http.StatusNotFound, "not_found", fmt.Errorf("no such endpoint %q", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, ok := s.jobs.Get(id)
		if !ok {
			s.fail(w, http.StatusNotFound, "unknown_job", fmt.Errorf("no job %q", id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(jobView(j))
	case http.MethodDelete:
		j, ok := s.jobs.Cancel(id)
		if !ok {
			s.fail(w, http.StatusNotFound, "unknown_job", fmt.Errorf("no job %q", id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(jobView(j))
	default:
		s.fail(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("GET or DELETE required"))
	}
}

// fail writes the structured error body with the given HTTP status and
// machine-readable code.
func (s *server) fail(w http.ResponseWriter, status int, code string, err error) {
	s.writeError(w, apiErr(status, code, err))
}

// writeError answers one request with a structured apiError, carrying the
// verifier rule IDs and diagnostics when the error has them.
func (s *server) writeError(w http.ResponseWriter, e *apiError) {
	s.reg.Counter("treegiond_http_request_errors_total",
		"Requests answered with an error status.").Inc()
	api.WriteError(w, e.status, api.ErrorDetail{
		Code:        e.code,
		Message:     e.msg,
		Rules:       e.rules,
		Diagnostics: e.diags,
	})
}

// handleStoreStats reports the persistent artifact store's counters — the
// tiered cache's disk layer — including how many lookups were rejected for
// carrying a different payload schema (schema_skew: tgart1 or any foreign
// tgart2 revision reads as a plain miss). Without -store-dir the body is
// {"enabled": false, ...zeros}.
func (s *server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_store_stats_requests_total", "GET /v1/store/stats requests.").Inc()
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Errorf("GET required"))
		return
	}
	var resp api.StoreStats
	if s.store != nil {
		st := s.store.Stats()
		resp = api.StoreStats{
			Enabled:       true,
			SchemaVersion: s.store.SchemaVersion(),
			Hits:          st.Hits,
			Misses:        st.Misses,
			Puts:          st.Puts,
			Evictions:     st.Evictions,
			Corrupt:       st.Corrupt,
			SchemaSkew:    st.SchemaSkew,
			WriteErrors:   st.WriteErrors,
			EncodeErrors:  st.EncodeErrors,
			Entries:       st.Entries,
			Bytes:         st.Bytes,
			Budget:        st.Budget,
			VerdictHits:   st.VerdictHits,
			VerdictMisses: st.VerdictMisses,
			VerdictPuts:   st.VerdictPuts,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleMetrics renders the whole registry — cache, pipeline, HTTP and
// per-phase compile telemetry — in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_metrics_requests_total", "GET /v1/metrics requests.").Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("treegiond_http_healthz_requests_total", "GET /v1/healthz requests.").Inc()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%d}\n", int64(time.Since(s.start).Seconds()))
}
