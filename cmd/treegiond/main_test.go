package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(0, 1<<20)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func fig1(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/fig1.tir")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func postCompile(t *testing.T, ts *httptest.Server, body string) (*http.Response, compileResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr compileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, cr
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req, err := json.Marshal(map[string]any{"ir": fig1(t), "schedules": true})
	if err != nil {
		t.Fatal(err)
	}

	resp, cr := postCompile(t, ts, string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if cr.Function != "fig1" {
		t.Errorf("function = %q, want fig1", cr.Function)
	}
	if cr.Time <= 0 {
		t.Errorf("time = %v, want > 0", cr.Time)
	}
	if cr.Regions == 0 || len(cr.ScheduleLengths) != cr.Regions {
		t.Errorf("regions = %d, schedule lengths = %d", cr.Regions, len(cr.ScheduleLengths))
	}
	if len(cr.Schedules) == 0 {
		t.Error("schedules requested but absent")
	}
	if cr.Cached {
		t.Error("first compile reported cached")
	}

	// The same request again must hit the content-addressed cache and
	// return identical numbers.
	resp2, cr2 := postCompile(t, ts, string(req))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, want 200", resp2.StatusCode)
	}
	if !cr2.Cached {
		t.Error("second identical compile missed the cache")
	}
	if cr2.Time != cr.Time || cr2.OpsAfter != cr.OpsAfter {
		t.Errorf("cached result differs: time %v vs %v, ops %d vs %d", cr2.Time, cr.Time, cr2.OpsAfter, cr.OpsAfter)
	}

	// A different config is a different content address.
	req8, _ := json.Marshal(map[string]any{"ir": fig1(t), "machine": "8U"})
	_, cr3 := postCompile(t, ts, string(req8))
	if cr3.Cached {
		t.Error("different config reported cached")
	}
}

func TestCompileEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"missing ir", `{}`, http.StatusBadRequest},
		{"bad ir", `{"ir": "not a function"}`, http.StatusBadRequest},
		{"bad region", `{"ir": "func f\nbb0:\n  ret\n", "region": "nope"}`, http.StatusBadRequest},
		{"bad machine", `{"ir": "func f\nbb0:\n  ret\n", "machine": "2U"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postCompile(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile status = %d, want 405", resp.StatusCode)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := testServer(t)
	req, _ := json.Marshal(map[string]any{"ir": fig1(t)})
	postCompile(t, ts, string(req))
	postCompile(t, ts, string(req))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"treegiond_cache_hits_total 1",
		"treegiond_cache_misses_total 1",
		"treegiond_pipeline_compiles_total 1",
		"treegiond_http_compile_requests_total 2",
		"# TYPE treegiond_cache_entries gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", hresp.StatusCode)
	}
}
