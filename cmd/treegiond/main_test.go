package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"treegion/internal/api"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(serverConfig{cacheBytes: 1 << 20, jobWorkers: 2, jobQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.shutdown(ctx)
	})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func fig1(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/fig1.tir")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func postCompile(t *testing.T, ts *httptest.Server, body string) (*http.Response, compileResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr compileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, cr
}

// decodeError reads a structured {"error": {"code", "message"}} body.
func decodeError(t *testing.T, resp *http.Response) errorResponse {
	t.Helper()
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return er
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req, err := json.Marshal(map[string]any{"ir": fig1(t), "schedules": true, "trace": true})
	if err != nil {
		t.Fatal(err)
	}

	resp, cr := postCompile(t, ts, string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if cr.Function != "fig1" {
		t.Errorf("function = %q, want fig1", cr.Function)
	}
	if cr.Time <= 0 {
		t.Errorf("time = %v, want > 0", cr.Time)
	}
	if cr.Regions == 0 || len(cr.ScheduleLengths) != cr.Regions {
		t.Errorf("regions = %d, schedule lengths = %d", cr.Regions, len(cr.ScheduleLengths))
	}
	if len(cr.Schedules) == 0 {
		t.Error("schedules requested but absent")
	}
	if cr.Cached {
		t.Error("first compile reported cached")
	}
	if len(cr.Trace) == 0 {
		t.Error("trace requested but absent")
	}
	for _, phase := range []string{"treeform", "list-sched", "ddg-build"} {
		if _, ok := cr.Trace[phase]; !ok {
			t.Errorf("trace missing phase %q: %v", phase, cr.Trace)
		}
	}

	// The same request again must hit the content-addressed cache and
	// return identical numbers.
	resp2, cr2 := postCompile(t, ts, string(req))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, want 200", resp2.StatusCode)
	}
	if !cr2.Cached {
		t.Error("second identical compile missed the cache")
	}
	if cr2.Time != cr.Time || cr2.OpsAfter != cr.OpsAfter {
		t.Errorf("cached result differs: time %v vs %v, ops %d vs %d", cr2.Time, cr.Time, cr2.OpsAfter, cr.OpsAfter)
	}

	// A different config is a different content address.
	req8, _ := json.Marshal(map[string]any{"ir": fig1(t), "machine": "8U"})
	_, cr3 := postCompile(t, ts, string(req8))
	if cr3.Cached {
		t.Error("different config reported cached")
	}
}

func TestCompileEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name, body string
		want       int
		code       string
	}{
		{"empty body", ``, http.StatusBadRequest, "bad_json"},
		{"missing ir", `{}`, http.StatusBadRequest, "missing_field"},
		{"bad ir", `{"ir": "not a function"}`, http.StatusBadRequest, "bad_ir"},
		{"bad region", `{"ir": "func f\nbb0:\n  ret\n", "region": "nope"}`, http.StatusBadRequest, "bad_config"},
		{"bad machine", `{"ir": "func f\nbb0:\n  ret\n", "machine": "2U"}`, http.StatusBadRequest, "bad_config"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		er := decodeError(t, resp)
		if er.Error.Code != tc.code {
			t.Errorf("%s: error code = %q, want %q", tc.name, er.Error.Code, tc.code)
		}
		if er.Error.Message == "" {
			t.Errorf("%s: error message empty", tc.name)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile status = %d, want 405", resp.StatusCode)
	}
	if er := decodeError(t, resp); er.Error.Code != "method_not_allowed" {
		t.Errorf("GET /v1/compile error code = %q, want method_not_allowed", er.Error.Code)
	}
}

// TestCompileUnknownField verifies the strict decoder: an unknown config
// field is a structured 400 naming the field and listing the valid ones.
func TestCompileUnknownField(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
		strings.NewReader(`{"ir": "func f\nbb0:\n  ret\n", "mahcine": "8U"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	er := decodeError(t, resp)
	if er.Error.Code != "unknown_field" {
		t.Errorf("error code = %q, want unknown_field", er.Error.Code)
	}
	if !strings.Contains(er.Error.Message, `"mahcine"`) {
		t.Errorf("message does not name the bad field: %q", er.Error.Message)
	}
	for _, valid := range []string{"machine", "region", "heuristic", "expansion_limit"} {
		if !strings.Contains(er.Error.Message, valid) {
			t.Errorf("message does not list valid field %q: %q", valid, er.Error.Message)
		}
	}
}

// TestLegacyRedirects verifies the unversioned paths answer with permanent
// redirects to /v1 (308 for POST so the body is re-sent, 301 for GETs),
// carry a Deprecation header, and still work end to end through a client
// that follows redirects.
func TestLegacyRedirects(t *testing.T) {
	_, ts := testServer(t)
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}

	resp, err := noFollow.Post(ts.URL+"/compile", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPermanentRedirect {
		t.Errorf("POST /compile status = %d, want 308", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/compile" {
		t.Errorf("POST /compile Location = %q, want /v1/compile", loc)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("POST /compile missing Deprecation header")
	}

	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := noFollow.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMovedPermanently {
			t.Errorf("GET %s status = %d, want 301", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1"+path {
			t.Errorf("GET %s Location = %q, want /v1%s", path, loc, path)
		}
	}

	// The default client follows the 308 re-sending the POST body, so old
	// clients keep working unmodified.
	req, _ := json.Marshal(map[string]any{"ir": fig1(t)})
	resp2, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(string(req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("redirected POST /compile status = %d, want 200", resp2.StatusCode)
	}
	var cr compileResponse
	if err := json.NewDecoder(resp2.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Function != "fig1" {
		t.Errorf("redirected compile function = %q, want fig1", cr.Function)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := testServer(t)
	req, _ := json.Marshal(map[string]any{"ir": fig1(t)})
	postCompile(t, ts, string(req))
	postCompile(t, ts, string(req))

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		// Cache and pipeline counters (names unchanged from the old API).
		"treegiond_cache_hits_total 1",
		"treegiond_cache_misses_total 1",
		"treegiond_pipeline_compiles_total 1",
		"treegiond_http_compile_requests_total 2",
		"# TYPE treegiond_cache_entries gauge",
		// Per-phase compile latency histograms from the telemetry registry.
		"# TYPE treegion_compile_phase_seconds histogram",
		`treegion_compile_phase_seconds_bucket{phase="treeform",le="+Inf"} 1`,
		`treegion_compile_phase_seconds_count{phase="list-sched"} 1`,
		// Scheduling counters: speculation and renaming after one compile.
		"treegion_sched_speculated_ops_total",
		"treegion_sched_renamed_dests_total",
		"treegion_compile_functions_total 1",
		// Region-shape histograms.
		"# TYPE treegion_region_blocks histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", hresp.StatusCode)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" {
		t.Errorf("healthz status field = %q, want ok", hz.Status)
	}
}

// TestDebugRoutes checks the pprof mux serves its index (the daemon mounts
// it on -debug-addr only, never on the service listener).
func TestDebugRoutes(t *testing.T) {
	ts := httptest.NewServer(debugRoutes())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status = %d, want 200", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "goroutine") {
		t.Error("pprof index does not list profiles")
	}

	// The service mux must NOT expose pprof.
	_, svc := testServer(t)
	sresp, err := http.Get(svc.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		t.Errorf("service mux serves /debug/pprof/ with %d, want 404", sresp.StatusCode)
	}
}

// TestCompileVerify covers the "verify" request field: a verified compile
// succeeds with verified=true, reusing the artifact a plain compile of the
// same function already cached (one key for both; only the verdict is
// verify-specific).
func TestCompileVerify(t *testing.T) {
	_, ts := testServer(t)
	plain, err := json.Marshal(map[string]any{"ir": fig1(t)})
	if err != nil {
		t.Fatal(err)
	}
	if resp, cr := postCompile(t, ts, string(plain)); resp.StatusCode != http.StatusOK || cr.Verified {
		t.Fatalf("plain compile: status %d, verified %v", resp.StatusCode, cr.Verified)
	}

	verified, err := json.Marshal(map[string]any{"ir": fig1(t), "verify": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, cr := postCompile(t, ts, string(verified))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verified compile: status %d, want 200", resp.StatusCode)
	}
	if !cr.Verified {
		t.Error("verified compile did not report verified")
	}
	if !cr.Cached {
		t.Error("verified compile recompiled instead of reusing the plain artifact")
	}
	if len(cr.Diagnostics) != 0 {
		t.Errorf("unexpected diagnostics: %v", cr.Diagnostics)
	}

	resp2, cr2 := postCompile(t, ts, string(verified))
	if resp2.StatusCode != http.StatusOK || !cr2.Cached || !cr2.Verified {
		t.Errorf("repeated verified compile: status %d, cached %v, verified %v",
			resp2.StatusCode, cr2.Cached, cr2.Verified)
	}
}

// TestStoreStats: GET /v1/store/stats reports the artifact store's counters
// and schema version on a store-backed daemon, and {"enabled": false} on a
// memory-only one.
func TestStoreStats(t *testing.T) {
	getStats := func(ts *httptest.Server) api.StoreStats {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/store/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		var st api.StoreStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	_, memOnly := testServer(t)
	if st := getStats(memOnly); st.Enabled || st.Puts != 0 {
		t.Fatalf("memory-only daemon reported store stats %+v, want disabled zeros", st)
	}

	_, ts := storeServer(t, t.TempDir(), 1, 8)
	body, err := json.Marshal(map[string]any{"ir": fig1(t)})
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := postCompile(t, ts, string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d, want 200", resp.StatusCode)
	}
	st := getStats(ts)
	if !st.Enabled {
		t.Fatal("store-backed daemon reported enabled=false")
	}
	if st.SchemaVersion == 0 {
		t.Error("schema_version = 0, want the current tgart2 schema")
	}
	if st.Puts == 0 || st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("after one cold compile: %+v, want puts/entries/bytes > 0", st)
	}
	if st.Budget <= 0 {
		t.Errorf("budget_bytes = %d, want > 0", st.Budget)
	}

	resp, err := http.Post(ts.URL+"/v1/store/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if er := decodeError(t, resp); resp.StatusCode != http.StatusMethodNotAllowed || er.Error.Code != "method_not_allowed" {
		t.Fatalf("POST: status %d code %q, want 405 method_not_allowed", resp.StatusCode, er.Error.Code)
	}
}
