// Command treegiond is the treegion compilation service: an HTTP daemon
// that compiles textual-IR functions through the concurrent pipeline and a
// content-addressed result cache.
//
// Endpoints:
//
//	POST /compile   {"ir": "func f\nbb0:\n  ...", "region": "tree", ...}
//	                → schedule metadata + timing JSON (see compileRequest)
//	GET  /metrics   cache/pipeline/HTTP counters, Prometheus text format
//	GET  /healthz   liveness probe
//
// Usage:
//
//	treegiond [-addr :8037] [-workers 0] [-cache-bytes 536870912]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8037", "listen address")
	workers := flag.Int("workers", 0, "pipeline workers per compile (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-bytes", 512<<20, "result cache byte budget")
	flag.Parse()

	s := newServer(*workers, *cacheBytes)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("treegiond: listening on %s (workers=%d, cache budget=%d bytes)", *addr, *workers, *cacheBytes)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("treegiond: %v", err)
	}
}
