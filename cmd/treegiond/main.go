// Command treegiond is the treegion compilation service: an HTTP daemon
// that compiles textual-IR functions through the concurrent pipeline, a
// tiered content-addressed result cache (memory over an optional
// disk-backed artifact store), and an asynchronous job queue.
//
// Endpoints (API v1; the unversioned paths redirect permanently and carry a
// Deprecation header):
//
//	POST   /v1/compile    {"ir": "func f\nbb0:\n  ...", "region": "tree", ...}
//	                      → schedule metadata + timing JSON (see compileRequest)
//	POST   /v1/jobs       same body → 202 {"id": "j...", "state": "queued"};
//	                      429 queue_full when the bounded queue overflows
//	GET    /v1/jobs       list known jobs, newest first
//	GET    /v1/jobs/{id}  poll: queued/running/done/failed (+ result or error)
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /v1/metrics    cache/store/jobs/pipeline/HTTP counters plus
//	                      per-phase compile latency histograms, Prometheus text
//	GET    /v1/healthz    liveness probe
//
// Errors are structured: {"error": {"code": "...", "message": "..."}} with
// a machine-readable code (bad_json, unknown_field, bad_config, ...).
//
// Usage:
//
//	treegiond [-addr :8037] [-workers 0] [-cache-bytes 536870912]
//	          [-store-dir DIR] [-store-budget 4294967296]
//	          [-job-workers 2] [-job-queue 64] [-job-timeout 5m]
//	          [-debug-addr :8038]
//
// -store-dir enables the persistent artifact store: compile results
// survive restarts (warm starts skip the scheduler entirely) and the job
// journal lives there, so queued jobs are recovered after a crash.
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/, kept off the service port so profiling is opt-in.
//
// On SIGINT/SIGTERM the daemon drains gracefully: listeners stop accepting
// work, in-flight requests and running jobs finish, still-queued jobs stay
// journaled for the next start, and the store is flushed.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treegion/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8037", "listen address")
	workers := flag.Int("workers", 0, "pipeline workers per compile (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-bytes", 512<<20, "in-memory result cache byte budget")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory (empty = disabled)")
	storeBudget := flag.Int64("store-budget", 4<<30, "artifact store byte budget (GC evicts oldest entries beyond it)")
	jobWorkers := flag.Int("job-workers", 2, "async job queue workers")
	jobQueue := flag.Int("job-queue", 64, "async job queue capacity (submissions beyond it get 429)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job execution timeout (0 = none)")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (empty = disabled)")
	phaseAllocs := flag.Bool("phase-allocs", false,
		"sample per-phase heap allocations (treegion_compile_phase_allocs_total; adds MemStats reads per phase)")
	flag.Parse()

	telemetry.SetAllocTracking(*phaseAllocs)

	s, err := newServer(serverConfig{
		workers:     *workers,
		cacheBytes:  *cacheBytes,
		storeDir:    *storeDir,
		storeBudget: *storeBudget,
		jobWorkers:  *jobWorkers,
		jobQueue:    *jobQueue,
		jobTimeout:  *jobTimeout,
	})
	if err != nil {
		log.Fatalf("treegiond: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugRoutes(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       30 * time.Second,
			// pprof profile/trace streams run for their ?seconds= duration,
			// so the write timeout must exceed the common 30s default.
			WriteTimeout: 2 * time.Minute,
			IdleTimeout:  2 * time.Minute,
		}
		go func() {
			log.Printf("treegiond: pprof on %s/debug/pprof/", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("treegiond: pprof listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Synchronous compiles answer within the write window; long work
		// belongs on /v1/jobs, which replies immediately with a job ID.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	go func() {
		log.Printf("treegiond: listening on %s (workers=%d, cache budget=%d bytes, store=%q)",
			*addr, *workers, *cacheBytes, *storeDir)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("treegiond: listener: %v", err)
			stop()
		}
	}()

	<-ctx.Done()
	log.Printf("treegiond: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("treegiond: http shutdown: %v", err)
	}
	if dbg != nil {
		if err := dbg.Shutdown(shutdownCtx); err != nil {
			log.Printf("treegiond: pprof shutdown: %v", err)
		}
	}
	if err := s.shutdown(shutdownCtx); err != nil {
		log.Printf("treegiond: drain: %v", err)
	}
	log.Printf("treegiond: bye")
}
