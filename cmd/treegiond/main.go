// Command treegiond is the treegion compilation service: an HTTP daemon
// that compiles textual-IR functions through the concurrent pipeline and a
// content-addressed result cache.
//
// Endpoints (API v1; the unversioned paths redirect permanently and carry a
// Deprecation header):
//
//	POST /v1/compile   {"ir": "func f\nbb0:\n  ...", "region": "tree", ...}
//	                   → schedule metadata + timing JSON (see compileRequest)
//	GET  /v1/metrics   cache/pipeline/HTTP counters plus per-phase compile
//	                   latency histograms, Prometheus text format
//	GET  /v1/healthz   liveness probe
//
// Errors are structured: {"error": {"code": "...", "message": "..."}} with
// a machine-readable code (bad_json, unknown_field, bad_config, ...).
//
// Usage:
//
//	treegiond [-addr :8037] [-workers 0] [-cache-bytes 536870912]
//	          [-debug-addr :8038]
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/, kept off the service port so profiling is opt-in.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8037", "listen address")
	workers := flag.Int("workers", 0, "pipeline workers per compile (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-bytes", 512<<20, "result cache byte budget")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (empty = disabled)")
	flag.Parse()

	s := newServer(*workers, *cacheBytes)
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugRoutes(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("treegiond: pprof on %s/debug/pprof/", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil {
				log.Printf("treegiond: pprof listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("treegiond: listening on %s (workers=%d, cache budget=%d bytes)", *addr, *workers, *cacheBytes)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("treegiond: %v", err)
	}
}
