// Command treegionc is the compiler driver: it generates one synthetic
// benchmark (or reads a single- or multi-function textual-IR file via
// -input), profiles it, compiles it under a chosen region former /
// heuristic / machine, and reports estimated performance. With -inline,
// treegion formation splices eligible callees into the growing regions
// (demand-driven inline-on-absorb); with -dump it prints the schedules of
// the hottest regions.
//
// Usage:
//
//	treegionc [-bench gcc] [-region tree] [-heuristic globalweight]
//	          [-machine 4U] [-limit 2.0] [-dump 3] [-workers 0] [-stats]
//	treegionc -input prog.tir [-inline] [-verify] ...
//
// -stats prints the per-phase compile trace (calls, ops, wall time per
// phase) for the whole program and for each function, plus scheduling
// statistics (speculated ops, branch packing).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"treegion"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark to compile (see -list)")
	workers := flag.Int("workers", 0, "concurrent function compiles (0 = GOMAXPROCS)")
	input := flag.String("input", "", "compile a textual-IR file (single- or multi-function) instead of a benchmark")
	trips := flag.Int("trips", 100, "profiling trips for -input functions")
	inlineFlag := flag.Bool("inline", false, "demand-driven inline-on-absorb: splice eligible callees into growing treegions")
	list := flag.Bool("list", false, "list benchmarks and exit")
	regionKind := flag.String("region", "tree", "region former: bb, slr, tree, sb, tree-td")
	heuristic := flag.String("heuristic", "globalweight", "depheight, exitcount, globalweight, weightedcount")
	machineName := flag.String("machine", "4U", "machine model: 1U, 4U, 8U, 16U")
	limit := flag.Float64("limit", 2.0, "code expansion limit for tree-td")
	noRename := flag.Bool("norename", false, "disable compile-time register renaming")
	ifConvert := flag.Bool("ifconvert", false, "run hyperblock-style if-conversion first")
	dump := flag.Int("dump", 0, "print the N hottest region schedules")
	stats := flag.Bool("stats", false, "print per-phase compile traces and scheduling statistics")
	verifyFlag := flag.Bool("verify", false, "statically verify every emitted schedule; exit non-zero with rule IDs on violations")
	dot := flag.String("dot", "", "write the first function's region-annotated CFG as Graphviz DOT to this file")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory; warm runs skip recompiling (empty = disabled)")
	storeBudget := flag.Int64("store-budget", 4<<30, "artifact store byte budget")
	flag.Parse()

	if *list {
		for _, b := range treegion.Benchmarks() {
			fmt.Println(b)
		}
		return
	}

	kind, err := treegion.ParseRegionKind(*regionKind)
	if err != nil {
		log.Fatal(err)
	}
	h, err := treegion.ParseHeuristic(*heuristic)
	if err != nil {
		log.Fatal(err)
	}
	m, ok := treegion.MachineByName(*machineName)
	if !ok {
		log.Fatalf("unknown machine %q", *machineName)
	}

	var prog *treegion.Program
	var profs treegion.Profiles
	if *input != "" {
		src, err := os.ReadFile(*input)
		if err != nil {
			log.Fatal(err)
		}
		irprog, err := treegion.ParseIRProgram(string(src))
		if err != nil {
			log.Fatal(err)
		}
		prog = &treegion.Program{Name: irprog.Funcs[0].Name, Funcs: irprog.Funcs}
		for i, fn := range irprog.Funcs {
			prof, err := treegion.ProfileFunction(fn, uint64(1+i), *trips)
			if err != nil {
				log.Fatal(err)
			}
			profs = append(profs, prof)
		}
	} else {
		var err error
		prog, err = treegion.GenerateBenchmark(*bench)
		if err != nil {
			log.Fatal(err)
		}
		profs, err = treegion.ProfileProgram(prog)
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := treegion.Config{
		Kind:                 kind,
		Heuristic:            h,
		Machine:              m,
		Rename:               !*noRename,
		DominatorParallelism: kind == treegion.TreegionTD,
		TD:                   treegion.TDConfig{ExpansionLimit: *limit, PathLimit: 20, MergeLimit: 4},
		IfConvert:            *ifConvert,
	}
	ctx := context.Background()
	copts := []treegion.CompileOption{treegion.WithWorkers(*workers)}
	if *verifyFlag {
		copts = append(copts, treegion.WithVerify())
	}
	if *storeDir != "" {
		st, err := treegion.OpenArtifactStore(*storeDir, *storeBudget)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		cache := treegion.NewCompileCache(0)
		cache.SetL2(st)
		copts = append(copts, treegion.WithCache(cache))
	}
	// The baseline compiles without inlining: the speedup denominator is the
	// untransformed program on the scalar machine.
	mainOpts := copts
	if *inlineFlag {
		mainOpts = append(append([]treegion.CompileOption(nil), copts...),
			treegion.WithInline(treegion.DefaultInlineConfig()))
	}
	res, err := treegion.Compile(ctx, prog, profs, cfg, mainOpts...)
	if err != nil {
		fatalCompile(err)
	}
	base, err := treegion.Compile(ctx, prog, profs, treegion.BaselineConfig(), copts...)
	if err != nil {
		fatalCompile(err)
	}
	if *verifyFlag {
		advisories := 0
		for _, fr := range res.Funcs {
			for _, d := range fr.Diagnostics {
				advisories++
				fmt.Fprintf(os.Stderr, "treegionc: %s\n", d)
			}
		}
		fmt.Printf("verify:         %d functions proven legal (%d advisory diagnostics)\n",
			len(res.Funcs), advisories)
	}

	fmt.Printf("benchmark:      %s (%d functions)\n", prog.Name, len(prog.Funcs))
	fmt.Printf("configuration:  %s regions, %s heuristic, %s machine, rename=%v\n",
		kind, h, m.Name, cfg.Rename)
	fmt.Printf("estimated time: %.0f cycles (baseline %.0f)\n", res.Time, base.Time)
	fmt.Printf("speedup:        %.3fx over 1-issue basic blocks\n", treegion.Speedup(base.Time, res.Time))
	fmt.Printf("code expansion: %.2f\n", res.CodeExpansion)
	fmt.Printf("regions:        %d (avg %.2f blocks, %.2f ops, max %d blocks)\n",
		res.RegionStats.Count, res.RegionStats.AvgBlocks, res.RegionStats.AvgOps, res.RegionStats.MaxBlocks)
	ren, cop, mer, spec := 0, 0, 0, 0
	for _, f := range res.Funcs {
		ren += f.NumRenamed
		cop += f.NumCopies
		mer += f.NumMerged
		spec += f.NumSpeculated
	}
	fmt.Printf("speculated %d ops; renamed %d dests (%d copies); merged %d duplicates\n",
		spec, ren, cop, mer)
	if *inlineFlag {
		il := res.Inline
		fmt.Printf("inlining:       %d calls spliced (%d ops); declined %d (depth %d, size %d, budget %d, guarded %d, shape %d)\n",
			il.Inlined, il.InlinedOps, il.Declined(),
			il.DeclinedDepth, il.DeclinedSize, il.DeclinedBudget, il.DeclinedGuarded, il.DeclinedShape)
	}

	if *stats {
		fmt.Printf("\nscheduling:     %d ops in %d cycles; %d speculated; %.2f branches/cycle (max %d); %d predicated branch cycles\n",
			res.Sched.Ops, res.Sched.Length, res.Sched.Speculated,
			res.Sched.BranchesPerCycle(), res.Sched.MaxBranchesPerCycle, res.Sched.PredicatedCycles)
		fmt.Printf("region blocks:  %s\n", res.RegionStats.Blocks)
		fmt.Printf("region paths:   %s\n", res.RegionStats.Paths)
		fmt.Printf("\n== compile trace: %s\n%s", prog.Name, res.Trace.Snapshot().Table())
		for _, fr := range res.Funcs {
			fmt.Printf("\n== compile trace: %s\n%s", fr.Fn.Name, fr.Trace.Snapshot().Table())
		}
	}

	if *dot != "" {
		if len(res.Funcs) == 0 {
			fmt.Fprintf(os.Stderr, "treegionc: -dot %s: program has no compiled functions to render\n", *dot)
			os.Exit(1)
		}
		fr := res.Funcs[0]
		if err := os.WriteFile(*dot, []byte(treegion.DOT(fr.Fn, fr.Regions, fr.Prof)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "treegionc: writing DOT file: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (render with: dot -Tsvg %s)\n", *dot, *dot)
	}

	if *dump > 0 {
		type hot struct {
			fi, ri int
			w      float64
		}
		var hots []hot
		for fi, fr := range res.Funcs {
			for ri, r := range fr.Regions {
				hots = append(hots, hot{fi, ri, profs[fi].BlockWeight(r.Root)})
			}
		}
		sort.Slice(hots, func(i, j int) bool { return hots[i].w > hots[j].w })
		if len(hots) > *dump {
			hots = hots[:*dump]
		}
		for _, x := range hots {
			fr := res.Funcs[x.fi]
			fmt.Printf("\n== %s %v (root weight %.0f)\n%s",
				fr.Fn.Name, fr.Regions[x.ri], x.w, fr.Schedules[x.ri])
		}
	}
}

// fatalCompile reports a compile failure. Verifier rejections render every
// diagnostic with its rule ID; anything else is reported as-is.
func fatalCompile(err error) {
	var vf *treegion.VerifyFailure
	if errors.As(err, &vf) {
		fmt.Fprintf(os.Stderr, "treegionc: %v\n", err)
		for _, d := range vf.Diagnostics {
			fmt.Fprintf(os.Stderr, "treegionc: %s\n", d)
		}
		os.Exit(1)
	}
	log.Fatal(err)
}
