// Command treegion-loadgen drives a treegiond daemon or a treegion-router
// fleet with a closed-loop compile workload and reports latency percentiles,
// achieved QPS and the error rate.
//
// Request bodies are generated from a progen preset (default the out-of-suite
// "stress" preset; "-preset stress2" substitutes the asymptotic tier, whose
// giant straight-line functions make each request an order of magnitude
// heavier): each worker cycles through the preset's functions,
// POSTing them to /v1/compile — or, with -batch N, grouped N-at-a-time to the
// streaming /v1/compile-batch endpoint (latency then measures time-to-last-
// byte of the stream). The loop is closed: a worker issues its next request
// only after the previous one completes, optionally paced to a target QPS by
// a shared token ticker.
//
// Usage:
//
//	treegion-loadgen -url http://127.0.0.1:8030 [-qps 50] [-concurrency 8]
//	                 [-duration 30s] [-preset stress] [-batch 0]
//	                 [-error-budget 0.01]
//
// Exit status is non-zero when the observed error rate exceeds -error-budget,
// so the loadgen doubles as a pass/fail gate in make loadtest and CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"treegion"
	"treegion/internal/progen"
)

func main() {
	baseURL := flag.String("url", "http://127.0.0.1:8030", "router or daemon base URL")
	qps := flag.Float64("qps", 0, "target request rate (0 = unpaced closed loop)")
	concurrency := flag.Int("concurrency", 4, "closed-loop workers")
	duration := flag.Duration("duration", 15*time.Second, "run length")
	presetName := flag.String("preset", "stress", "progen preset supplying the IR corpus (suite name, stress, or stress2)")
	batch := flag.Int("batch", 0, "functions per /v1/compile-batch request (0 = single /v1/compile requests)")
	errorBudget := flag.Float64("error-budget", 0.01, "maximum tolerated error fraction; exceeding it exits non-zero")
	flag.Parse()

	bodies, err := buildBodies(*presetName, *batch)
	if err != nil {
		log.Fatalf("treegion-loadgen: %v", err)
	}
	path := "/v1/compile"
	if *batch > 0 {
		path = "/v1/compile-batch"
	}
	target := strings.TrimSuffix(*baseURL, "/") + path

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	// Pacing: a token bucket fed at -qps. Workers block for a token before
	// each request, so the loop stays closed (no unbounded queueing) while
	// the offered rate tracks the target.
	var tokens chan struct{}
	if *qps > 0 {
		tokens = make(chan struct{}, *concurrency)
		interval := time.Duration(float64(time.Second) / *qps)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					default: // all workers busy; drop the token, stay closed-loop
					}
				}
			}
		}()
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: *concurrency * 2,
		IdleConnTimeout:     90 * time.Second,
	}}

	var (
		mu        sync.Mutex
		latencies []float64 // seconds
		requests  atomic.Int64
		failures  atomic.Int64
	)
	started := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, 0, 1024)
			for i := w; ; i++ {
				if tokens != nil {
					select {
					case <-ctx.Done():
						mu.Lock()
						latencies = append(latencies, local...)
						mu.Unlock()
						return
					case <-tokens:
					}
				} else if ctx.Err() != nil {
					mu.Lock()
					latencies = append(latencies, local...)
					mu.Unlock()
					return
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				ok := doRequest(ctx, client, target, body)
				requests.Add(1)
				if !ok {
					if ctx.Err() != nil { // cut off mid-flight by the deadline, not a server error
						requests.Add(-1)
					} else {
						failures.Add(1)
					}
				} else {
					local = append(local, time.Since(t0).Seconds())
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started).Seconds()

	n := requests.Load()
	nf := failures.Load()
	sort.Float64s(latencies)
	errRate := 0.0
	if n > 0 {
		errRate = float64(nf) / float64(n)
	}
	fmt.Printf("target:       %s\n", target)
	fmt.Printf("requests:     %d (%.1f/s achieved", n, float64(n)/elapsed)
	if *qps > 0 {
		fmt.Printf(", %.1f/s target", *qps)
	}
	fmt.Printf(")\n")
	fmt.Printf("errors:       %d (%.2f%%, budget %.2f%%)\n", nf, 100*errRate, 100**errorBudget)
	fmt.Printf("latency p50:  %s\n", fmtSeconds(percentile(latencies, 0.50)))
	fmt.Printf("latency p90:  %s\n", fmtSeconds(percentile(latencies, 0.90)))
	fmt.Printf("latency p99:  %s\n", fmtSeconds(percentile(latencies, 0.99)))
	fmt.Printf("latency max:  %s\n", fmtSeconds(percentile(latencies, 1.0)))
	if errRate > *errorBudget {
		fmt.Printf("FAIL: error rate %.2f%% exceeds budget %.2f%%\n", 100*errRate, 100**errorBudget)
		os.Exit(1)
	}
}

// buildBodies renders the preset's functions into ready-to-POST JSON bodies:
// one body per function for /v1/compile, or ceil(n/batch) grouped bodies for
// /v1/compile-batch.
func buildBodies(presetName string, batch int) ([][]byte, error) {
	preset, ok := progen.PresetByName(presetName)
	if !ok {
		return nil, fmt.Errorf("unknown preset %q", presetName)
	}
	prog, err := progen.Generate(preset)
	if err != nil {
		return nil, err
	}
	irs := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		irs[i] = treegion.PrintFunction(fn)
	}
	var bodies [][]byte
	if batch <= 0 {
		for _, ir := range irs {
			b, err := json.Marshal(map[string]any{"ir": ir, "trips": preset.ProfileTrips})
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, b)
		}
		return bodies, nil
	}
	for lo := 0; lo < len(irs); lo += batch {
		hi := lo + batch
		if hi > len(irs) {
			hi = len(irs)
		}
		fns := make([]map[string]string, 0, hi-lo)
		for _, ir := range irs[lo:hi] {
			fns = append(fns, map[string]string{"ir": ir})
		}
		b, err := json.Marshal(map[string]any{"functions": fns, "trips": preset.ProfileTrips})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, b)
	}
	return bodies, nil
}

// doRequest POSTs one body and drains the response (time-to-last-byte for
// streaming batches). It reports success: a 2xx status with a fully read
// body.
func doRequest(ctx context.Context, client *http.Client, target string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return false
	}
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
