// Command treegion-lint statically verifies compiled schedules. It parses
// each textual-IR file (single- or multi-function), compiles it under the
// requested configurations and runs the internal/verify rule set — IR
// well-formedness (IR001-IR009), region invariants (RG001-RG005), schedule
// legality (SC001-SC008, MC001), call/interprocedural rules (CL001-CL003)
// and differential semantics (SEM001-SEM002) — over every result.
//
// Usage:
//
//	treegion-lint [-region all] [-heuristic globalweight] [-machine 4U]
//	              [-limit 2.0] [-seed 1] [-trips 100] [-inline] [-q] file.tir...
//
// -region/-heuristic accept "all" to sweep every former or heuristic.
// -inline additionally compiles with demand-driven inline-on-absorb, so the
// splice-integrity rules check real inliner output. Each diagnostic prints
// as "file [config]: severity RULE fn/bb/op: message". The exit status is
// non-zero iff any Error-severity diagnostic fired.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"treegion"
)

var regionNames = []string{"bb", "slr", "tree", "sb", "tree-td"}
var heuristicNames = []string{"depheight", "exitcount", "globalweight", "weightedcount"}

func main() {
	regionFlag := flag.String("region", "all", "region former to lint: bb, slr, tree, sb, tree-td or all")
	heuristicFlag := flag.String("heuristic", "globalweight", "scheduling heuristic, or all")
	machineName := flag.String("machine", "4U", "machine model: 1U, 4U, 8U, 16U")
	limit := flag.Float64("limit", 2.0, "code expansion limit for tree-td")
	seed := flag.Uint64("seed", 1, "profiling seed")
	trips := flag.Int("trips", 100, "profiling trips")
	inlineFlag := flag.Bool("inline", false, "also splice eligible callees during formation (exercises CL002/CL003 on real splices)")
	quiet := flag.Bool("q", false, "print Error-severity diagnostics only")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "treegion-lint: no input files (usage: treegion-lint [flags] file.tir...)")
		os.Exit(2)
	}
	kinds, err := expand(*regionFlag, regionNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
		os.Exit(2)
	}
	heuristics, err := expand(*heuristicFlag, heuristicNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
		os.Exit(2)
	}
	m, ok := treegion.MachineByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "treegion-lint: unknown machine %q\n", *machineName)
		os.Exit(2)
	}

	failed := false
	files, configs := 0, 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
			failed = true
			continue
		}
		irprog, err := treegion.ParseIRProgram(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: parse: %v\n", path, err)
			failed = true
			continue
		}
		prog := &treegion.Program{Name: path, Funcs: irprog.Funcs}
		var profs treegion.Profiles
		profileOK := true
		for i, fn := range irprog.Funcs {
			prof, err := treegion.ProfileFunction(fn, *seed+uint64(i), *trips)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: profile %s: %v\n", path, fn.Name, err)
				failed = true
				profileOK = false
				break
			}
			profs = append(profs, prof)
		}
		if !profileOK {
			continue
		}
		files++
		for _, kindName := range kinds {
			for _, hName := range heuristics {
				kind, err := treegion.ParseRegionKind(kindName)
				if err != nil {
					fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
					os.Exit(2)
				}
				h, err := treegion.ParseHeuristic(hName)
				if err != nil {
					fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
					os.Exit(2)
				}
				cfg := treegion.Config{
					Kind:                 kind,
					Heuristic:            h,
					Machine:              m,
					Rename:               true,
					DominatorParallelism: kind == treegion.TreegionTD,
					TD:                   treegion.TDConfig{ExpansionLimit: *limit, PathLimit: 20, MergeLimit: 4},
				}
				configs++
				if lintOne(path, prog, profs, cfg, *inlineFlag, *quiet) {
					failed = true
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("treegion-lint: %d file(s) clean across %d configuration(s)\n", files, configs)
	}
}

// lintOne compiles prog under cfg through the verifying pipeline (which
// resolves the file's call graph when inlining is on) and renders every
// diagnostic. It reports whether an Error-severity diagnostic (or a compile
// failure) occurred.
func lintOne(path string, prog *treegion.Program, profs treegion.Profiles, cfg treegion.Config, inlineOn, quiet bool) bool {
	tag := fmt.Sprintf("%s/%s/%s", cfg.Kind, cfg.Heuristic, cfg.Machine.Name)
	opts := []treegion.CompileOption{treegion.WithVerify()}
	if inlineOn {
		tag += "/inline"
		opts = append(opts, treegion.WithInline(treegion.DefaultInlineConfig()))
	}
	res, err := treegion.Compile(context.Background(), prog, profs, cfg, opts...)
	if err != nil {
		var vf *treegion.VerifyFailure
		if errors.As(err, &vf) {
			for _, d := range vf.Diagnostics {
				fmt.Fprintf(os.Stderr, "%s [%s]: %s\n", path, tag, d)
			}
		} else {
			fmt.Fprintf(os.Stderr, "%s [%s]: compile: %v\n", path, tag, err)
		}
		return true
	}
	failed := false
	for _, fr := range res.Funcs {
		for _, d := range fr.Diagnostics {
			if d.Severity >= treegion.SeverityError {
				failed = true
			} else if quiet {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s [%s]: %s\n", path, tag, d)
		}
	}
	return failed
}

// expand resolves a flag value that is either "all" or one of valid.
func expand(v string, valid []string) ([]string, error) {
	if v == "all" {
		return valid, nil
	}
	for _, name := range valid {
		if name == v {
			return []string{v}, nil
		}
	}
	return nil, fmt.Errorf("unknown value %q (want all or one of %v)", v, valid)
}
