// Command treegion-lint statically verifies compiled schedules. It parses
// each textual-IR file, compiles it under the requested configurations and
// runs the internal/verify rule set — IR well-formedness (IR001-IR009),
// region invariants (RG001-RG005), schedule legality (SC001-SC008, MC001)
// and differential semantics (SEM001-SEM002) — over every result.
//
// Usage:
//
//	treegion-lint [-region all] [-heuristic globalweight] [-machine 4U]
//	              [-limit 2.0] [-seed 1] [-trips 100] [-q] file.tir...
//
// -region/-heuristic accept "all" to sweep every former or heuristic. Each
// diagnostic prints as "file [config]: severity RULE fn/bb/op: message".
// The exit status is non-zero iff any Error-severity diagnostic fired.
package main

import (
	"flag"
	"fmt"
	"os"

	"treegion"
)

var regionNames = []string{"bb", "slr", "tree", "sb", "tree-td"}
var heuristicNames = []string{"depheight", "exitcount", "globalweight", "weightedcount"}

func main() {
	regionFlag := flag.String("region", "all", "region former to lint: bb, slr, tree, sb, tree-td or all")
	heuristicFlag := flag.String("heuristic", "globalweight", "scheduling heuristic, or all")
	machineName := flag.String("machine", "4U", "machine model: 1U, 4U, 8U, 16U")
	limit := flag.Float64("limit", 2.0, "code expansion limit for tree-td")
	seed := flag.Uint64("seed", 1, "profiling seed")
	trips := flag.Int("trips", 100, "profiling trips")
	quiet := flag.Bool("q", false, "print Error-severity diagnostics only")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "treegion-lint: no input files (usage: treegion-lint [flags] file.tir...)")
		os.Exit(2)
	}
	kinds, err := expand(*regionFlag, regionNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
		os.Exit(2)
	}
	heuristics, err := expand(*heuristicFlag, heuristicNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
		os.Exit(2)
	}
	m, ok := treegion.MachineByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "treegion-lint: unknown machine %q\n", *machineName)
		os.Exit(2)
	}

	failed := false
	files, configs := 0, 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
			failed = true
			continue
		}
		fn, err := treegion.ParseFunction(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: parse: %v\n", path, err)
			failed = true
			continue
		}
		prof, err := treegion.ProfileFunction(fn, *seed, *trips)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: profile: %v\n", path, err)
			failed = true
			continue
		}
		files++
		for _, kindName := range kinds {
			for _, hName := range heuristics {
				kind, err := treegion.ParseRegionKind(kindName)
				if err != nil {
					fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
					os.Exit(2)
				}
				h, err := treegion.ParseHeuristic(hName)
				if err != nil {
					fmt.Fprintf(os.Stderr, "treegion-lint: %v\n", err)
					os.Exit(2)
				}
				cfg := treegion.Config{
					Kind:                 kind,
					Heuristic:            h,
					Machine:              m,
					Rename:               true,
					DominatorParallelism: kind == treegion.TreegionTD,
					TD:                   treegion.TDConfig{ExpansionLimit: *limit, PathLimit: 20, MergeLimit: 4},
				}
				configs++
				if lintOne(path, fn, prof, cfg, *quiet) {
					failed = true
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("treegion-lint: %d file(s) clean across %d configuration(s)\n", files, configs)
	}
}

// lintOne compiles fn under cfg and renders every diagnostic the verifier
// produces. It reports whether an Error-severity diagnostic (or a compile
// failure) occurred.
func lintOne(path string, fn *treegion.Function, prof *treegion.ProfileData, cfg treegion.Config, quiet bool) bool {
	tag := fmt.Sprintf("%s/%s/%s", cfg.Kind, cfg.Heuristic, cfg.Machine.Name)
	fr, err := treegion.CompileFunction(fn.Clone(), prof.Clone(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s [%s]: compile: %v\n", path, tag, err)
		return true
	}
	failed := false
	for _, d := range treegion.VerifyFunction(fn, fr, cfg) {
		if d.Severity >= treegion.SeverityError {
			failed = true
		} else if quiet {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s [%s]: %s\n", path, tag, d)
	}
	return failed
}

// expand resolves a flag value that is either "all" or one of valid.
func expand(v string, valid []string) ([]string, error) {
	if v == "all" {
		return valid, nil
	}
	for _, name := range valid {
		if name == v {
			return []string{v}, nil
		}
	}
	return nil, fmt.Errorf("unknown value %q (want all or one of %v)", v, valid)
}
