// Command treegion-vet runs the repository's own static-analysis suite:
// the determinism, atomicity, arena-escape, wallclock, API-error and
// record-size invariants that back the byte-identical-schedule guarantee.
// See internal/analysis and DESIGN.md §14.
//
// Usage:
//
//	treegion-vet [-json] [-v] [-tests=false] [packages...]
//
// Patterns default to ./... and are passed to `go list`. The exit status
// is 1 when any finding is reported, so `make ci` fails on violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"

	"treegion/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	verbose := flag.Bool("v", false, "print per-package suppression debt (//det:ordered and //vet:ignore counts)")
	tests := flag.Bool("tests", true, "include test files in the analysis")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: treegion-vet [-json] [-v] [-tests=false] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "treegion-vet:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, dir, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := analysis.Run(fset, pkgs, analysis.Analyzers())

	if *verbose {
		// Suppression debt: every annotation is a place the analyzer was
		// told to stand down. Keep the list short and the reasons honest.
		sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
		for _, pkg := range pkgs {
			ordered, ignored := pkg.Dirs.OrderedCount(), pkg.Dirs.IgnoreCount()
			if ordered == 0 && ignored == 0 {
				continue
			}
			fmt.Fprintf(os.Stderr, "treegion-vet: %s: %d //det:ordered, %d //vet:ignore\n",
				pkg.Path, ordered, ignored)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "treegion-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "treegion-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
