package treegion

import (
	"context"
	"testing"

	"treegion/internal/eval"
	"treegion/internal/progen"
)

// TestShapesHoldOnFreshSeeds regenerates the whole benchmark suite with
// shifted generator seeds and checks the paper's qualitative results still
// hold — the reproduction must not be overfitted to the default seeds.
func TestShapesHoldOnFreshSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a full second suite")
	}
	presets := progen.Presets()
	var progs []*Program
	var profs []Profiles
	for _, p := range presets {
		p.Seed += 7_000_001 // a different universe of programs
		prog, err := progen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := eval.ProfileProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, prog)
		profs = append(profs, pf)
	}

	speedup := func(i int, c Config) float64 {
		t.Helper()
		base, err := Compile(context.Background(), progs[i], profs[i], BaselineConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Compile(context.Background(), progs[i], profs[i], c)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(base.Time, res.Time)
	}
	tree8 := Config{Kind: Treegion, Heuristic: DepHeight, Machine: EightU, Rename: true}
	slr8 := Config{Kind: SLR, Heuristic: DepHeight, Machine: EightU, Rename: true}
	gw4 := Config{Kind: Treegion, Heuristic: GlobalWeight, Machine: FourU, Rename: true}
	dh4 := Config{Kind: Treegion, Heuristic: DepHeight, Machine: FourU, Rename: true}
	sb8 := Config{Kind: Superblock, Heuristic: GlobalWeight, Machine: EightU, Rename: false}
	td8 := Config{
		Kind: TreegionTD, Heuristic: GlobalWeight, Machine: EightU,
		Rename: true, DominatorParallelism: true,
		TD: TDConfig{ExpansionLimit: 3.0, PathLimit: 20, MergeLimit: 4},
	}

	sumTree, sumSLR, sumGW, sumDH, sumSB, sumTD := 0.0, 0.0, 0.0, 0.0, 0.0, 0.0
	for i := range progs {
		sumTree += speedup(i, tree8)
		sumSLR += speedup(i, slr8)
		sumGW += speedup(i, gw4)
		sumDH += speedup(i, dh4)
		sumSB += speedup(i, sb8)
		sumTD += speedup(i, td8)
	}
	if sumTree <= sumSLR {
		t.Errorf("fresh seeds: 8U treegions (%v) should beat SLRs (%v)", sumTree, sumSLR)
	}
	if sumGW <= sumDH {
		t.Errorf("fresh seeds: global weight (%v) should beat dep-height (%v) at 4U", sumGW, sumDH)
	}
	if sumTD <= sumSB {
		t.Errorf("fresh seeds: tree-td(3.0) (%v) should beat superblocks (%v) at 8U", sumTD, sumSB)
	}
}
