package treegion

import (
	"context"
	"os"
	"strings"
	"testing"

	"treegion/internal/region"
	"treegion/internal/telemetry"
)

// TestTraceDeterministicAcrossWorkers locks in the determinism contract of
// the compile trace: the Calls and Ops columns (and every scheduling
// statistic) are integer sums over per-function work, so a program compiled
// with 1 worker and with 8 workers must produce identical counts — only
// wall times may differ.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	prog, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r1, err := Compile(ctx, prog, profs, DefaultConfig(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Compile(ctx, prog, profs, DefaultConfig(), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}

	c1, c8 := r1.Trace.Snapshot().Counts(), r8.Trace.Snapshot().Counts()
	if c1 != c8 {
		t.Errorf("trace counts differ across worker counts:\n1 worker: %v\n8 workers: %v", c1, c8)
	}
	if r1.Sched != r8.Sched {
		t.Errorf("sched stats differ across worker counts:\n1 worker: %+v\n8 workers: %+v", r1.Sched, r8.Sched)
	}
	if r1.Time != r8.Time {
		t.Errorf("times differ: %v vs %v", r1.Time, r8.Time)
	}

	// The trace actually recorded the pipeline's phases.
	snap := r1.Trace.Snapshot()
	for _, p := range []Phase{telemetry.PhaseTreeform, telemetry.PhaseDDG, telemetry.PhaseListSched} {
		if snap.Phase[p].Calls == 0 {
			t.Errorf("phase %s has no calls", p)
		}
	}
	if tot := snap.Total(); tot.Nanos <= 0 {
		t.Errorf("total trace time = %d, want > 0", tot.Nanos)
	}

	// The -stats table renders every active phase plus a totals row.
	tbl := snap.Table()
	for _, want := range []string{"phase", "treeform", "list-sched", "total"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("trace table missing %q:\n%s", want, tbl)
		}
	}
}

// TestFig1SchedStats pins the scheduling statistics of the paper's Figure 1
// example CFG under the headline treegion configuration: the three-treegion
// partition schedules all 24 ops, speculates work above the tree branches,
// and the per-function stats agree with the per-schedule sums.
func TestFig1SchedStats(t *testing.T) {
	src, err := os.ReadFile("testdata/fig1.tir")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := ParseFunction(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileFunction(fn, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := CompileOne(context.Background(), fn, prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var want SchedStats
	for _, s := range fr.Schedules {
		want = want.Add(s.Stats())
	}
	if fr.Sched != want {
		t.Errorf("FunctionResult.Sched = %+v, want per-schedule sum %+v", fr.Sched, want)
	}
	if fr.Sched.Ops < 24 {
		t.Errorf("Ops = %d, want >= 24 (renaming copies may add more)", fr.Sched.Ops)
	}
	if fr.Sched.Speculated == 0 {
		t.Error("treegion compile of fig1 speculated nothing")
	}
	if fr.Sched.Speculated != fr.NumSpeculated {
		t.Errorf("Sched.Speculated = %d, NumSpeculated = %d", fr.Sched.Speculated, fr.NumSpeculated)
	}
	// fig1 has 5 conditional branches and 3 returns across 3 regions; every
	// region schedules at least one branch-issuing cycle.
	if fr.Sched.Branches < 3 || fr.Sched.BranchCycles < 3 {
		t.Errorf("Branches = %d, BranchCycles = %d, want >= 3 each", fr.Sched.Branches, fr.Sched.BranchCycles)
	}
	if fr.Sched.BranchesPerCycle() < 1.0 {
		t.Errorf("BranchesPerCycle = %v, want >= 1.0", fr.Sched.BranchesPerCycle())
	}

	// Region histograms from the same compile: 3 treegions of {5,3,1}
	// blocks (the golden partition) land in buckets 1, 3-4 and 5-8.
	rs := region.ComputeStats(fr.Regions, fr.Prof)
	if got, want := rs.Blocks.String(), "1:1 3-4:1 5-8:1"; got != want {
		t.Errorf("region block histogram = %q, want %q", got, want)
	}

	// The per-function trace covered the scheduling of every region.
	snap := fr.Trace.Snapshot()
	if got := snap.Phase[telemetry.PhaseListSched].Calls; got != int64(len(fr.Regions)) {
		t.Errorf("list-sched calls = %d, want one per region (%d)", got, len(fr.Regions))
	}
}

// TestWithTelemetryPublishes checks the functional-options path end to end:
// compiling with WithTelemetry fills the registry with phase histograms and
// scheduling counters.
func TestWithTelemetryPublishes(t *testing.T) {
	prog, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetry()
	if _, err := Compile(context.Background(), prog, profs, DefaultConfig(), WithTelemetry(reg)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`treegion_compile_phase_seconds_bucket{phase="treeform"`,
		`treegion_compile_phase_seconds_bucket{phase="list-sched"`,
		"treegion_sched_speculated_ops_total",
		"treegion_compile_functions_total",
		"# TYPE treegion_region_blocks histogram",
		"# TYPE treegion_code_expansion_ratio histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry missing %q in:\n%s", want, out)
		}
	}
}
