package router

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"treegion/internal/api"
	"treegion/internal/telemetry"
)

func keyOf(s string) ShardKey { return sha256.Sum256([]byte(s)) }

// Rendezvous ranking must be a pure function of (key, names): the same
// inputs rank identically on every router instance, which is what lets a
// fleet of routers agree on placement without coordination.
func TestRendezvousDeterministic(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1", "d:1"}
	for i := 0; i < 50; i++ {
		key := keyOf(fmt.Sprintf("req-%d", i))
		first := Rendezvous(key, names)
		// Ranking must not depend on input order.
		shuffled := []string{"d:1", "b:1", "a:1", "c:1"}
		second := Rendezvous(key, shuffled)
		if strings.Join(first, ",") != strings.Join(second, ",") {
			t.Fatalf("key %d: ranking depends on name order: %v vs %v", i, first, second)
		}
		if len(first) != len(names) {
			t.Fatalf("ranking dropped names: %v", first)
		}
	}
}

// Removing a replica must only move the keys it owned: every other key
// keeps its first choice. Adding one must only steal ~1/n of the keys.
// This is rendezvous hashing's whole reason to exist — a modulo scheme
// would reshuffle nearly everything.
func TestRendezvousMinimalMovementOnRemove(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1", "d:1"}
	const nKeys = 400
	owner := make(map[int]string, nKeys)
	for i := 0; i < nKeys; i++ {
		owner[i] = Rendezvous(keyOf(fmt.Sprintf("key-%d", i)), names)[0]
	}
	removed := "b:1"
	var survivors []string
	for _, n := range names {
		if n != removed {
			survivors = append(survivors, n)
		}
	}
	moved := 0
	for i := 0; i < nKeys; i++ {
		after := Rendezvous(keyOf(fmt.Sprintf("key-%d", i)), survivors)[0]
		if owner[i] == removed {
			moved++
			continue // these keys have to move; anywhere is fine
		}
		if after != owner[i] {
			t.Fatalf("key-%d moved from %s to %s although %s was the replica removed", i, owner[i], after, removed)
		}
	}
	if moved == 0 || moved == nKeys {
		t.Fatalf("degenerate distribution: %d/%d keys on removed replica", moved, nKeys)
	}
}

func TestRendezvousMinimalMovementOnAdd(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	grown := append(append([]string{}, names...), "d:1")
	const nKeys = 400
	moved := 0
	for i := 0; i < nKeys; i++ {
		key := keyOf(fmt.Sprintf("key-%d", i))
		before := Rendezvous(key, names)[0]
		after := Rendezvous(key, grown)[0]
		if before != after {
			if after != "d:1" {
				t.Fatalf("key-%d moved %s→%s, but only the new replica may steal keys", i, before, after)
			}
			moved++
		}
	}
	// Expect ~1/4 of keys on the new replica; allow a generous band.
	if moved < nKeys/8 || moved > nKeys/2 {
		t.Fatalf("new replica stole %d/%d keys, want ≈%d", moved, nKeys, nKeys/4)
	}
}

// The shard key must ignore presentation-only fields (schedules, trace) and
// field order, and must differ when the compile inputs differ.
func TestKeyForBody(t *testing.T) {
	base := `{"ir":"func f\nbb0:\n  ret","machine":"hpl8"}`
	k1, err := KeyForBody([]byte(base))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyForBody([]byte(`{"machine":"hpl8","schedules":true,"ir":"func f\nbb0:\n  ret"}`))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("key depends on field order or on the schedules presentation flag")
	}
	k3, err := KeyForBody([]byte(`{"ir":"func g\nbb0:\n  ret","machine":"hpl8"}`))
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("different IR produced the same shard key")
	}
	if _, err := KeyForBody([]byte("not json")); err == nil {
		t.Fatal("want error for malformed body")
	}
}

// fakeReplica is an httptest backend that records hits and can be told to
// refuse connections (simulated by closing the listener).
type fakeReplica struct {
	ts   *httptest.Server
	hits atomic.Int64
}

func newFakeReplica(t *testing.T, tag string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"served_by":%q}`, tag)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func testRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// The same body must always land on the same replica, and distinct bodies
// must spread across replicas.
func TestRouterStableSharding(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	rt := testRouter(t, Config{Replicas: []string{a.ts.URL, b.ts.URL}})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	post := func(body string) string {
		resp, err := http.Post(front.URL+"/v1/compile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out struct {
			ServedBy string `json:"served_by"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Treegion-Replica"); got == "" {
			t.Fatal("missing X-Treegion-Replica header")
		}
		return out.ServedBy
	}

	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"ir":"func f%d\nbb0:\n  ret"}`, i)
		first := post(body)
		for rep := 0; rep < 3; rep++ {
			if got := post(body); got != first {
				t.Fatalf("body %d flapped replicas: %s then %s", i, first, got)
			}
		}
		seen[first] = true
	}
	if len(seen) != 2 {
		t.Fatalf("16 distinct bodies all landed on one replica: %v", seen)
	}
	if a.hits.Load() == 0 || b.hits.Load() == 0 {
		t.Fatalf("hit counts a=%d b=%d, want both > 0", a.hits.Load(), b.hits.Load())
	}
}

// A dead first-choice replica must not fail the request: the router retries
// on the next-ranked replica.
func TestRouterRetriesOnDeadReplica(t *testing.T) {
	alive := newFakeReplica(t, "alive")
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connections now refused

	rt := testRouter(t, Config{
		Replicas:     []string{alive.ts.URL, deadURL},
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"ir":"func f%d\nbb0:\n  ret"}`, i)
		resp, err := http.Post(front.URL+"/v1/compile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via retry", i, resp.StatusCode)
		}
	}
}

// The health prober must mark a dead replica unhealthy (rerouting its keys)
// and flip /v1/healthz to 503 only when the whole fleet is down.
func TestRouterHealthProbing(t *testing.T) {
	a := newFakeReplica(t, "a")
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt := testRouter(t, Config{
		Replicas:       []string{a.ts.URL, deadURL},
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  100 * time.Millisecond,
	})
	rt.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if h := rt.HealthyReplicas(); len(h) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked the dead replica down: healthy=%v", rt.HealthyReplicas())
		}
		time.Sleep(5 * time.Millisecond)
	}

	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with one live replica: %d, want 200", resp.StatusCode)
	}
}

func TestRouterRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for empty replica list")
	}
	if _, err := New(Config{Replicas: []string{"http://h:1", "http://h:1"}}); err == nil {
		t.Fatal("want error for duplicate replicas")
	}
	if _, err := New(Config{Replicas: []string{"::bad::"}}); err == nil {
		t.Fatal("want error for malformed URL")
	}
}

func TestRouterUnroutedEndpoint(t *testing.T) {
	a := newFakeReplica(t, "a")
	rt := testRouter(t, Config{Replicas: []string{a.ts.URL}})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/jobs via router: %d, want 404", resp.StatusCode)
	}
}

func TestRouterMetricsExposed(t *testing.T) {
	a := newFakeReplica(t, "a")
	reg := telemetry.NewRegistry()
	rt := testRouter(t, Config{Replicas: []string{a.ts.URL}, Registry: reg})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/compile", "application/json",
		strings.NewReader(`{"ir":"func f\nbb0:\n  ret"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"treegion_router_requests_total",
		"treegion_router_replica_up",
		"treegion_router_in_flight",
		"treegion_router_request_seconds_bucket",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestRouterErrorShape: the router's own rejections carry the same
// structured {"error":{code,message}} body treegiond answers with
// (internal/api), so clients parse one shape regardless of which tier
// failed the request.
func TestRouterErrorShape(t *testing.T) {
	a := newFakeReplica(t, "a")
	rt := testRouter(t, Config{Replicas: []string{a.ts.URL}})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var er api.Error
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if er.Error.Code != "bad_json" || er.Error.Message == "" {
		t.Fatalf("error body %+v, want code bad_json with a message", er.Error)
	}
}
