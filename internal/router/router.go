// Package router is the horizontal scale-out tier: a thin HTTP shard router
// that partitions compile traffic across N treegiond replicas by content
// key, so each replica's memory cache and artifact store see a stable,
// disjoint slice of the keyspace and the tiers shard horizontally.
//
// Placement uses rendezvous (highest-random-weight) hashing over the
// SHA-256 content key of the request — the same key family the compcache
// uses — so adding or removing a replica only moves the keys that must move
// (~1/n of the space), and every router instance agrees on placement
// without coordination or a shared table.
//
// The router health-checks replicas in the background, retries a failed
// forward on the next-ranked healthy replica with exponential backoff
// (connection-level failures only — HTTP error statuses are the caller's
// business and are forwarded untouched), reuses upstream connections, and
// reports per-replica request/error/in-flight/latency metrics in Prometheus
// text format.
package router

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"treegion/internal/api"
	"treegion/internal/telemetry"
)

// Config parameterizes a Router.
type Config struct {
	// Replicas are the treegiond base URLs, e.g. "http://127.0.0.1:8037".
	Replicas []string
	// Retries bounds forwarding attempts beyond the first (default 2).
	Retries int
	// RetryBackoff is the initial inter-attempt backoff, doubling per
	// attempt (default 50ms).
	RetryBackoff time.Duration
	// HealthInterval is the background health-probe period (default 2s);
	// HealthTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// Registry, when non-nil, receives the router's metrics.
	Registry *telemetry.Registry
	// Transport overrides the upstream transport (tests); nil uses a
	// keep-alive transport shared by every replica.
	Transport http.RoundTripper
}

// replica is one upstream treegiond.
type replica struct {
	name     string // label value: the URL's host
	base     *url.URL
	healthy  atomic.Bool
	inFlight atomic.Int64
}

// Router fans requests out across replicas by content key.
type Router struct {
	cfg      Config
	replicas []*replica
	client   *http.Client
	reg      *telemetry.Registry

	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds a Router over cfg.Replicas. Replicas start healthy; the first
// probe round corrects that within HealthInterval. Call Start to begin
// probing and Close to stop it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt := &Router{
		cfg:    cfg,
		client: &http.Client{Transport: transport},
		reg:    cfg.Registry,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, raw := range cfg.Replicas {
		u, err := url.Parse(strings.TrimSuffix(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: bad replica URL %q", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("router: duplicate replica %q", u.Host)
		}
		seen[u.Host] = true
		rep := &replica{name: u.Host, base: u}
		rep.healthy.Store(true)
		rt.replicas = append(rt.replicas, rep)
	}
	for _, rep := range rt.replicas {
		rep := rep
		rt.reg.LabeledGaugeFunc("treegion_router_replica_up",
			telemetry.Labels{"replica": rep.name},
			"1 when the replica's last health probe succeeded.", func() int64 {
				if rep.healthy.Load() {
					return 1
				}
				return 0
			})
		rt.reg.LabeledGaugeFunc("treegion_router_in_flight",
			telemetry.Labels{"replica": rep.name},
			"Requests currently being proxied to the replica.", rep.inFlight.Load)
	}
	return rt, nil
}

// Start launches the background health loop.
func (rt *Router) Start() {
	if rt.started.Swap(true) {
		return
	}
	go func() {
		defer close(rt.done)
		t := time.NewTicker(rt.cfg.HealthInterval)
		defer t.Stop()
		rt.probeAll()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
}

// Close stops the health loop and idle upstream connections.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
		if rt.started.Load() {
			<-rt.done
		}
	}
	if t, ok := rt.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

func (rt *Router) probeAll() {
	for _, rep := range rt.replicas {
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.String()+"/v1/healthz", nil)
		resp, err := rt.client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if rep.healthy.Swap(ok) != ok {
			rt.reg.LabeledCounter("treegion_router_health_transitions_total",
				telemetry.Labels{"replica": rep.name},
				"Replica health state changes observed by the prober.").Inc()
		}
	}
}

// HealthyReplicas returns the names of the replicas whose last probe
// succeeded.
func (rt *Router) HealthyReplicas() []string {
	var out []string
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			out = append(out, rep.name)
		}
	}
	return out
}

// ShardKey is the 32-byte content key a request routes by.
type ShardKey [sha256.Size]byte

// KeyForBody computes the shard key of a /v1/compile or /v1/compile-batch
// body: a SHA-256 over the canonicalized semantic fields (sorted keys,
// presentation-only fields removed), mirroring the compcache content-key
// construction — identical compiles route to the same replica, so each
// replica's cache and store tiers own a stable slice of the keyspace.
func KeyForBody(body []byte) (ShardKey, error) {
	var k ShardKey
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return k, fmt.Errorf("router: bad request body: %w", err)
	}
	// schedules/trace change the response shape, not the compile; keys must
	// not depend on them or identical compiles would scatter.
	delete(m, "schedules")
	delete(m, "trace")
	canon, err := json.Marshal(m) // map marshaling sorts keys
	if err != nil {
		return k, err
	}
	return sha256.Sum256(canon), nil
}

// Rendezvous ranks names for key by highest-random-weight hashing, best
// first. Deterministic in (key, name): removing a name never reorders the
// rest, which is the minimal-movement property the shard tests pin down.
func Rendezvous(key ShardKey, names []string) []string {
	type scored struct {
		name  string
		score uint64
	}
	ranked := make([]scored, 0, len(names))
	for _, n := range names {
		h := sha256.New()
		h.Write(key[:])
		h.Write([]byte{0})
		h.Write([]byte(n))
		sum := h.Sum(nil)
		ranked = append(ranked, scored{n, binary.BigEndian.Uint64(sum[:8])})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.name
	}
	return out
}

// ranked returns the router's replicas in rendezvous order for key, healthy
// replicas first (both groups keep rendezvous order, so a sick replica's
// keys land on their natural second choice and return home on recovery).
func (rt *Router) ranked(key ShardKey) []*replica {
	byName := make(map[string]*replica, len(rt.replicas))
	names := make([]string, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		byName[rep.name] = rep
		names = append(names, rep.name)
	}
	order := Rendezvous(key, names)
	out := make([]*replica, 0, len(order))
	for _, n := range order {
		if byName[n].healthy.Load() {
			out = append(out, byName[n])
		}
	}
	for _, n := range order {
		if !byName[n].healthy.Load() {
			out = append(out, byName[n])
		}
	}
	return out
}

// fail answers one request with the structured error body shared with
// treegiond (internal/api): clients parse one shape no matter which tier
// rejected the request.
func (rt *Router) fail(w http.ResponseWriter, status int, code, msg string) {
	rt.reg.Counter("treegion_router_request_errors_total",
		"Requests the router answered with an error.").Inc()
	api.WriteError(w, status, api.ErrorDetail{Code: code, Message: msg})
}

// Handler returns the router's public mux: /v1/compile and
// /v1/compile-batch are forwarded by shard key; /v1/metrics and /v1/healthz
// are served by the router itself.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", rt.handleProxy)
	mux.HandleFunc("/v1/compile-batch", rt.handleProxy)
	mux.HandleFunc("/v1/metrics", rt.handleMetrics)
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		rt.fail(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no such endpoint %q (the router serves /v1/compile, /v1/compile-batch, /v1/metrics, /v1/healthz; per-replica endpoints like /v1/jobs are not routed)", r.URL.Path))
	})
	return mux
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WritePrometheus(w)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := len(rt.HealthyReplicas())
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"status\":%q,\"replicas\":%d,\"healthy\":%d}\n",
		map[bool]string{true: "ok", false: "no_healthy_replicas"}[healthy > 0],
		len(rt.replicas), healthy)
}

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.fail(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			rt.fail(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error())
			return
		}
		rt.fail(w, http.StatusBadRequest, "bad_body", err.Error())
		return
	}
	key, err := KeyForBody(body)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad_json", err.Error())
		return
	}
	ranked := rt.ranked(key)
	attempts := rt.cfg.Retries + 1
	if attempts > len(ranked) {
		attempts = len(ranked)
	}
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		rep := ranked[i]
		if i > 0 {
			rt.reg.Counter("treegion_router_retries_total",
				"Forwards retried on the next-ranked replica after a connection failure.").Inc()
			select {
			case <-time.After(backoff):
			case <-r.Context().Done():
				return
			}
			backoff *= 2
		}
		sent, err := rt.forward(w, r, rep, body)
		if err == nil {
			return
		}
		lastErr = err
		rt.reg.LabeledCounter("treegion_router_replica_errors_total",
			telemetry.Labels{"replica": rep.name},
			"Connection-level forwarding failures per replica.").Inc()
		if sent {
			// Bytes already reached the client; the response is torn and a
			// retry would corrupt it. Abort.
			return
		}
	}
	rt.fail(w, http.StatusBadGateway, "no_replica",
		fmt.Sprintf("no replica could serve the request: %v", lastErr))
}

// forward proxies one buffered request to rep, streaming the response
// through with per-chunk flushes (NDJSON batch lines reach the client as
// the replica emits them). It reports whether any response bytes were
// written to the client, which gates retries.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, rep *replica, body []byte) (sent bool, err error) {
	rt.reg.LabeledCounter("treegion_router_requests_total",
		telemetry.Labels{"replica": rep.name},
		"Requests forwarded per replica.").Inc()
	rep.inFlight.Add(1)
	defer rep.inFlight.Add(-1)
	started := time.Now()

	u := *rep.base
	u.Path = strings.TrimSuffix(u.Path, "/") + r.URL.Path
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u.String(), strings.NewReader(string(body)))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()

	hdr := w.Header()
	for _, k := range []string{"Content-Type", "Cache-Control", "X-Accel-Buffering"} {
		if v := resp.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	hdr.Set("X-Treegion-Replica", rep.name)
	w.WriteHeader(resp.StatusCode)
	sent = true

	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true, nil // client went away; upstream ctx tears down with r.Context()
			}
			rc.Flush()
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Upstream died mid-body; the response is torn but already
			// started, so nothing can be retried.
			return true, nil
		}
	}
	rt.reg.Histogram("treegion_router_request_seconds",
		telemetry.Labels{"replica": rep.name},
		"Forwarded request latency per replica.", telemetry.DefBuckets).
		Observe(time.Since(started).Seconds())
	return true, nil
}
