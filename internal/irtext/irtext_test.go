package irtext

import (
	"strings"
	"testing"

	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/progen"
)

const sample = `
; the paper's Figure 1 fragment, hand-written
func fig1
bb0:
  r0 = movi 1000
  r1 = ld [r0+8]
  p0 = cmpp gt r1, r0
  b0 = pbr @bb2
  brct b0, p0, @bb2 #0.35
  fallthrough @bb1
bb1:
  r2 = add r1, r0
  st [r0+0], r2
  fallthrough @bb3
bb2:
  (p0) r2 = movi 5
  fallthrough @bb3
bb3:
  ret
`

func TestParseSample(t *testing.T) {
	fn, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "fig1" || len(fn.Blocks) != 4 {
		t.Fatalf("parsed %q with %d blocks", fn.Name, len(fn.Blocks))
	}
	b0 := fn.Block(0)
	if len(b0.Ops) != 5 {
		t.Fatalf("bb0 has %d ops", len(b0.Ops))
	}
	if b0.Ops[1].Opcode != ir.Ld || b0.Ops[1].Imm != 8 {
		t.Fatalf("ld parsed as %v", b0.Ops[1])
	}
	br := b0.Ops[4]
	if br.Opcode != ir.Brct || br.Target != 2 || br.Prob != 0.35 {
		t.Fatalf("branch parsed as %v prob %v", br, br.Prob)
	}
	if b0.FallThrough != 1 {
		t.Fatal("fallthrough wrong")
	}
	guarded := fn.Block(2).Ops[0]
	if !guarded.Guarded() || guarded.Guard != ir.Pred(0) {
		t.Fatalf("guard parsed as %v", guarded.Guard)
	}
	// Registers must be noted so the allocator cannot clash.
	if r := fn.NewReg(ir.ClassGPR); r.Num < 3 {
		t.Fatalf("register allocator clashes: got %v", r)
	}
	// The parsed function runs.
	if _, err := interp.Run(fn, interp.NewOracle(1), interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripSample(t *testing.T) {
	fn, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(fn)
	fn2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if Print(fn2) != text {
		t.Fatalf("round trip not a fixed point:\n%s\nvs\n%s", text, Print(fn2))
	}
}

// Property: Print∘Parse is the identity on Print's image, for every function
// of the whole synthetic suite.
func TestRoundTripSuite(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		for _, fn := range prog.Funcs {
			text := Print(fn)
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
			}
			if got := Print(back); got != text {
				// Show the first differing line for debugging.
				a, b := strings.Split(text, "\n"), strings.Split(got, "\n")
				for i := range a {
					if i >= len(b) || a[i] != b[i] {
						t.Fatalf("%s/%s: round trip differs at line %d:\n  %q\n  %q",
							prog.Name, fn.Name, i+1, a[i], b[i])
					}
				}
				t.Fatalf("%s/%s: round trip differs in length", prog.Name, fn.Name)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
			}
			if back.NumOps() != fn.NumOps() || len(back.Blocks) != len(fn.Blocks) {
				t.Fatalf("%s/%s: op/block counts changed", prog.Name, fn.Name)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no func", "bb0:\n  ret"},
		{"dup func", "func a\nfunc b"},
		{"dup block", "func a\nbb0:\n  ret\nbb0:\n  ret"},
		{"op outside block", "func a\n  ret"},
		{"undeclared target", "func a\nbb0:\n  bru @bb9"},
		{"bad register", "func a\nbb0:\n  q1 = movi 3\n  ret"},
		{"bad opcode", "func a\nbb0:\n  r1 = frobnicate r2, r3\n  ret"},
		{"bad immediate", "func a\nbb0:\n  r1 = movi abc\n  ret"},
		{"bad mem operand", "func a\nbb0:\n  r1 = ld r2+8\n  ret"},
		{"bad cond", "func a\nbb0:\n  p0 = cmpp zz r1, r2\n  ret"},
		{"bad prob", "func a\nbb0:\n  p0 = cmpp gt r1, r2\n  brct _, p0, @bb1 #7\n  fallthrough @bb1\nbb1:\n  ret"},
		{"guard not predicate", "func a\nbb0:\n  (r1) r2 = movi 3\n  ret"},
		{"st with dest", "func a\nbb0:\n  r1 = st [r0+0], r2\n  ret"},
		{"branch with dest", "func a\nbb0:\n  r1 = bru @bb0"},
		{"invalid structure", "func a\nbb0:\n  ret\n  fallthrough @bb0"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: error not detected", c.name)
		}
	}
}

func TestParseNegativeOffsets(t *testing.T) {
	fn, err := Parse("func a\nbb0:\n  r1 = ld [r0-16]\n  st [r0+-8], r1\n  ret")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Block(0).Ops[0].Imm != -16 || fn.Block(0).Ops[1].Imm != -8 {
		t.Fatalf("offsets = %d, %d", fn.Block(0).Ops[0].Imm, fn.Block(0).Ops[1].Imm)
	}
}

func TestParseTwoDestCmpp(t *testing.T) {
	fn, err := Parse("func a\nbb0:\n  p0, p1 = cmpp le r1, r2\n  ret")
	if err != nil {
		t.Fatal(err)
	}
	op := fn.Block(0).Ops[0]
	if len(op.Dests) != 2 || op.Dests[1] != ir.Pred(1) || op.Cond != ir.CondLE {
		t.Fatalf("cmpp parsed as %v", op)
	}
}
