package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"treegion/internal/ir"
)

// Parse reads one function in the package's text format. Every block
// referenced by a branch, pbr or fallthrough must be declared; the first
// declared block is the entry. The parsed function is validated before it
// is returned.
func Parse(src string) (*ir.Function, error) {
	fn, err := ParseUnchecked(src)
	if err != nil {
		return nil, err
	}
	if err := fn.Validate(); err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	return fn, nil
}

// ParseUnchecked is Parse without the final ir.Function.Validate call. It
// exists for the verifier's adversarial fixtures: structurally broken
// functions (an op after a branch, a RET with successors) must be loadable
// so the IR well-formedness rules can be exercised against them.
func ParseUnchecked(src string) (*ir.Function, error) {
	p := &parser{}
	lines := strings.Split(src, "\n")
	// Pre-scan declarations so forward references resolve and block IDs
	// follow declaration order (Print/Parse round-trips preserve layout).
	for i, raw := range lines {
		line := clean(raw)
		switch {
		case strings.HasPrefix(line, "func "):
			if p.fn != nil {
				return nil, fmt.Errorf("irtext: line %d: duplicate func declaration", i+1)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "func "))
			if name == "" {
				return nil, fmt.Errorf("irtext: line %d: func needs a name", i+1)
			}
			p.fn = ir.NewFunction(name)
			p.declared = make(map[int]*ir.Block)
		case strings.HasSuffix(line, ":"):
			if p.fn == nil {
				return nil, fmt.Errorf("irtext: line %d: block before func declaration", i+1)
			}
			n, err := blockNum(strings.TrimSuffix(line, ":"))
			if err != nil {
				return nil, fmt.Errorf("irtext: line %d: %w", i+1, err)
			}
			if _, dup := p.declared[n]; dup {
				return nil, fmt.Errorf("irtext: line %d: bb%d declared twice", i+1, n)
			}
			p.declared[n] = p.fn.NewBlock()
		}
	}
	if p.fn == nil {
		return nil, fmt.Errorf("irtext: no function declared")
	}
	for i, raw := range lines {
		line := clean(raw)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("irtext: line %d: %w", i+1, err)
		}
	}
	return p.fn, nil
}

func clean(raw string) string {
	line := raw
	if idx := strings.IndexByte(line, ';'); idx >= 0 {
		line = line[:idx]
	}
	return strings.TrimSpace(line)
}

type parser struct {
	fn  *ir.Function
	cur *ir.Block
	// declared maps textual block labels to blocks, in declaration order.
	declared map[int]*ir.Block
}

// block resolves the block labelled bbN, which must be declared.
func (p *parser) block(n int) (*ir.Block, error) {
	if b, ok := p.declared[n]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("reference to undeclared bb%d", n)
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "func "):
		return nil // handled in the pre-scan
	case strings.HasSuffix(line, ":"):
		n, err := blockNum(strings.TrimSuffix(line, ":"))
		if err != nil {
			return err
		}
		p.cur, err = p.block(n)
		return err
	case p.cur == nil:
		return fmt.Errorf("op outside a block")
	case strings.HasPrefix(line, "fallthrough"):
		t, err := p.target(strings.TrimSpace(strings.TrimPrefix(line, "fallthrough")))
		if err != nil {
			return err
		}
		p.cur.FallThrough = t
		return nil
	default:
		return p.op(line)
	}
}

func blockNum(tok string) (int, error) {
	if !strings.HasPrefix(tok, "bb") {
		return 0, fmt.Errorf("bad block label %q", tok)
	}
	n, err := strconv.Atoi(tok[2:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad block label %q", tok)
	}
	return n, nil
}

// reg parses a register token: r3, p1, b0, f2, or _ for none.
func reg(tok string) (ir.Reg, error) {
	tok = strings.TrimSpace(tok)
	if tok == "_" {
		return ir.NoReg, nil
	}
	if len(tok) < 2 {
		return ir.NoReg, fmt.Errorf("bad register %q", tok)
	}
	var class ir.RegClass
	switch tok[0] {
	case 'r':
		class = ir.ClassGPR
	case 'p':
		class = ir.ClassPred
	case 'b':
		class = ir.ClassBTR
	case 'f':
		class = ir.ClassFPR
	default:
		return ir.NoReg, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return ir.NoReg, fmt.Errorf("bad register %q", tok)
	}
	return ir.Reg{Class: class, Num: n}, nil
}

// target parses @bbN.
func (p *parser) target(tok string) (ir.BlockID, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "@") {
		return ir.NoBlock, fmt.Errorf("bad target %q", tok)
	}
	n, err := blockNum(tok[1:])
	if err != nil {
		return ir.NoBlock, err
	}
	b, err := p.block(n)
	if err != nil {
		return ir.NoBlock, err
	}
	return b.ID, nil
}

var opcodeByName = func() map[string]ir.Opcode {
	m := make(map[string]ir.Opcode, len(mnemonics))
	for o, s := range mnemonics {
		m[s] = o
	}
	return m
}()

var condByName = func() map[string]ir.Cond {
	m := make(map[string]ir.Cond, len(condNames))
	for c, s := range condNames {
		m[s] = c
	}
	return m
}()

// op parses one instruction line into the current block.
func (p *parser) op(line string) error {
	guard := ir.NoReg
	if strings.HasPrefix(line, "(") {
		end := strings.IndexByte(line, ')')
		if end < 0 {
			return fmt.Errorf("unterminated guard")
		}
		g, err := reg(line[1:end])
		if err != nil {
			return err
		}
		if g.Class != ir.ClassPred {
			return fmt.Errorf("guard %q is not a predicate", line[1:end])
		}
		guard = g
		line = strings.TrimSpace(line[end+1:])
	}

	var dests []ir.Reg
	rest := line
	if eq := strings.Index(line, "="); eq >= 0 && !strings.Contains(line[:eq], "[") {
		for _, tok := range strings.Split(line[:eq], ",") {
			d, err := reg(tok)
			if err != nil {
				return err
			}
			p.fn.NoteReg(d)
			dests = append(dests, d)
		}
		rest = strings.TrimSpace(line[eq+1:])
	}

	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("empty op")
	}
	name := fields[0]
	args := strings.TrimSpace(strings.TrimPrefix(rest, name))
	opc, ok := opcodeByName[name]
	if !ok {
		return fmt.Errorf("unknown op %q", name)
	}

	op := p.fn.NewOp(opc)
	op.Dests = dests
	op.Guard = guard
	b := p.cur

	fail := func(format string, a ...interface{}) error {
		return fmt.Errorf("%s: "+format, append([]interface{}{name}, a...)...)
	}
	wantDests := func(n int) error {
		if len(dests) != n {
			return fail("needs %d destination(s), got %d", n, len(dests))
		}
		return nil
	}

	switch opc {
	case ir.MovI:
		if err := wantDests(1); err != nil {
			return err
		}
		v, err := strconv.ParseInt(strings.TrimSpace(args), 10, 64)
		if err != nil {
			return fail("bad immediate %q", args)
		}
		op.Imm = v
	case ir.Mov, ir.Copy:
		if err := wantDests(1); err != nil {
			return err
		}
		s, err := reg(args)
		if err != nil {
			return err
		}
		op.Srcs = []ir.Reg{s}
	case ir.Ld:
		if err := wantDests(1); err != nil {
			return err
		}
		base, off, err := memOperand(args)
		if err != nil {
			return err
		}
		op.Srcs = []ir.Reg{base}
		op.Imm = off
	case ir.St:
		if len(dests) != 0 {
			return fail("takes no destinations")
		}
		comma := strings.LastIndex(args, ",")
		if comma < 0 {
			return fail("needs [base+off], value")
		}
		base, off, err := memOperand(strings.TrimSpace(args[:comma]))
		if err != nil {
			return err
		}
		v, err := reg(args[comma+1:])
		if err != nil {
			return err
		}
		op.Srcs = []ir.Reg{base, v}
		op.Imm = off
	case ir.Cmpp:
		if len(dests) != 1 && len(dests) != 2 {
			return fail("needs 1 or 2 destinations")
		}
		fs := strings.Fields(args)
		if len(fs) < 2 {
			return fail("needs a condition and two sources")
		}
		cond, ok := condByName[fs[0]]
		if !ok {
			return fail("unknown condition %q", fs[0])
		}
		op.Cond = cond
		srcs := strings.Split(strings.TrimSpace(strings.TrimPrefix(args, fs[0])), ",")
		if len(srcs) != 2 {
			return fail("needs two sources")
		}
		a, err := reg(srcs[0])
		if err != nil {
			return err
		}
		c, err := reg(srcs[1])
		if err != nil {
			return err
		}
		op.Srcs = []ir.Reg{a, c}
	case ir.Pbr:
		if err := wantDests(1); err != nil {
			return err
		}
		t, err := p.target(args)
		if err != nil {
			return err
		}
		op.Target = t
	case ir.Brct, ir.Brcf:
		if len(dests) != 0 {
			return fail("takes no destinations")
		}
		prob := 0.5
		if h := strings.LastIndex(args, "#"); h >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSpace(args[h+1:]), 64)
			if err != nil || v < 0 || v > 1 {
				return fail("bad probability %q", args[h+1:])
			}
			prob = v
			args = strings.TrimSpace(args[:h])
		}
		parts := strings.Split(args, ",")
		if len(parts) != 3 {
			return fail("needs btr, pred, @target")
		}
		btr, err := reg(parts[0])
		if err != nil {
			return err
		}
		pr, err := reg(parts[1])
		if err != nil {
			return err
		}
		t, err := p.target(parts[2])
		if err != nil {
			return err
		}
		op.Srcs = []ir.Reg{btr, pr} // NoReg btr slot matches the builder's layout
		op.Target = t
		op.Prob = prob
	case ir.Bru:
		if len(dests) != 0 {
			return fail("takes no destinations")
		}
		t, err := p.target(args)
		if err != nil {
			return err
		}
		op.Target = t
		op.Prob = 1
	case ir.Call, ir.Ret, ir.Nop:
		if strings.TrimSpace(args) != "" {
			return fail("takes no operands")
		}
	default: // two-source ALU / FP
		if err := wantDests(1); err != nil {
			return err
		}
		srcs := strings.Split(args, ",")
		if len(srcs) != 2 {
			return fail("needs two sources")
		}
		a, err := reg(srcs[0])
		if err != nil {
			return err
		}
		c, err := reg(srcs[1])
		if err != nil {
			return err
		}
		op.Srcs = []ir.Reg{a, c}
	}
	for _, s := range op.Srcs {
		p.fn.NoteReg(s)
	}
	p.fn.NoteReg(op.Guard)
	b.Ops = append(b.Ops, op)
	return nil
}

// memOperand parses [reg+off] (off may be negative: [r1+-8] or [r1-8]).
func memOperand(tok string) (ir.Reg, int64, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return ir.NoReg, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner[1:], "+-")
	if sep < 0 {
		return ir.NoReg, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	sep++
	base, err := reg(inner[:sep])
	if err != nil {
		return ir.NoReg, 0, err
	}
	offStr := inner[sep:]
	if strings.HasPrefix(offStr, "+") {
		offStr = offStr[1:]
	}
	off, err := strconv.ParseInt(offStr, 10, 64)
	if err != nil {
		return ir.NoReg, 0, fmt.Errorf("bad offset in %q", tok)
	}
	return base, off, nil
}

