package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"treegion/internal/ir"
)

// Parse reads one function in the package's text format. Every block
// referenced by a branch, pbr or fallthrough must be declared; the first
// declared block is the entry. The parsed function is validated before it
// is returned.
func Parse(src string) (*ir.Function, error) {
	fn, err := ParseUnchecked(src)
	if err != nil {
		return nil, err
	}
	if err := fn.Validate(); err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	return fn, nil
}

// ParseProgram reads a multi-function file: each `func` line starts a new
// function. Functions are parsed and validated individually, then resolved
// into an ir.Program, which rejects duplicate names, calls to undefined
// functions, and arity-mismatched call sites.
func ParseProgram(src string) (*ir.Program, error) {
	var chunks []string
	var starts []int // 1-based line offsets, for error messages
	cur := strings.Builder{}
	lineNo, curStart := 0, 1
	curHasFunc := false
	for rest := src; len(rest) > 0 || lineNo == 0; {
		var raw string
		raw, rest = nextLine(rest)
		lineNo++
		if strings.HasPrefix(clean(raw), "func ") {
			// Start a new chunk only once the current one holds a function;
			// leading comments and blank lines attach to the first function.
			if curHasFunc {
				chunks = append(chunks, cur.String())
				starts = append(starts, curStart)
				cur.Reset()
				curStart = lineNo
			}
			curHasFunc = true
		}
		cur.WriteString(raw)
		cur.WriteByte('\n')
	}
	chunks = append(chunks, cur.String())
	starts = append(starts, curStart)

	funcs := make([]*ir.Function, 0, len(chunks))
	for i, chunk := range chunks {
		fn, err := Parse(chunk)
		if err != nil {
			if len(chunks) > 1 {
				return nil, fmt.Errorf("irtext: function starting at line %d: %w", starts[i], err)
			}
			return nil, err
		}
		funcs = append(funcs, fn)
	}
	prog, err := ir.NewProgram(funcs)
	if err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	return prog, nil
}

// ParseUnchecked is Parse without the final ir.Function.Validate call. It
// exists for the verifier's adversarial fixtures: structurally broken
// functions (an op after a branch, a RET with successors) must be loadable
// so the IR well-formedness rules can be exercised against them.
//
// The parser sits on the artifact-store decode path (tgart2 ships functions
// as canonical text), so it slab-allocates: one pre-scan counts ops and
// operands, then all ops, op pointers, and operand registers are carved out
// of three backing arrays instead of one allocation per op.
func ParseUnchecked(src string) (*ir.Function, error) {
	p := &parser{}
	// Pre-scan declarations so forward references resolve and block IDs
	// follow declaration order (Print/Parse round-trips preserve layout),
	// counting the op lines per block for the slab carve.
	var fnName string
	var fnParams, fnRets []ir.Reg
	var labels, labelLines, opsPerLabel []int
	nops := 0
	lineNo := 0
	for rest := src; len(rest) > 0 || lineNo == 0; {
		var raw string
		raw, rest = nextLine(rest)
		lineNo++
		line := clean(raw)
		switch {
		case line == "":
		case strings.HasPrefix(line, "func "):
			if fnName != "" {
				return nil, fmt.Errorf("irtext: line %d: duplicate func declaration (use ParseProgram for multi-function files)", lineNo)
			}
			name, params, rets, err := funcHeader(strings.TrimSpace(strings.TrimPrefix(line, "func ")))
			if err != nil {
				return nil, fmt.Errorf("irtext: line %d: %w", lineNo, err)
			}
			fnName, fnParams, fnRets = name, params, rets
		case strings.HasSuffix(line, ":"):
			if fnName == "" {
				return nil, fmt.Errorf("irtext: line %d: block before func declaration", lineNo)
			}
			n, err := blockNum(strings.TrimSuffix(line, ":"))
			if err != nil {
				return nil, fmt.Errorf("irtext: line %d: %w", lineNo, err)
			}
			labels = append(labels, n)
			labelLines = append(labelLines, lineNo)
			opsPerLabel = append(opsPerLabel, 0)
		case strings.HasPrefix(line, "fallthrough"):
		default:
			if len(opsPerLabel) > 0 {
				opsPerLabel[len(opsPerLabel)-1]++
			}
			nops++
		}
	}
	if fnName == "" {
		return nil, fmt.Errorf("irtext: no function declared")
	}

	p.fn = ir.NewFunction(fnName)
	p.fn.Params, p.fn.Rets = fnParams, fnRets
	for _, r := range fnParams {
		p.fn.NoteReg(r)
	}
	for _, r := range fnRets {
		p.fn.NoteReg(r)
	}
	// Machine-generated text declares bb0..bbN-1 in order; then the label
	// IS the block index and the lookup is a slice. Hand-written files with
	// gaps or shuffled labels fall back to a map.
	dense := true
	for i, n := range labels {
		if n != i {
			dense = false
			break
		}
	}
	if dense {
		for range labels {
			p.fn.NewBlock()
		}
		p.denseLabels = p.fn.Blocks
	} else {
		p.declared = make(map[int]*ir.Block, len(labels))
		for i, n := range labels {
			if _, dup := p.declared[n]; dup {
				return nil, fmt.Errorf("irtext: line %d: bb%d declared twice", labelLines[i], n)
			}
			p.declared[n] = p.fn.NewBlock()
		}
	}

	p.opSlab = make([]ir.Op, nops)
	p.opPtrs = make([]*ir.Op, 0, nops)
	p.regSlab = make([]ir.Reg, 4*nops) // ≤2 dests + ≤2 srcs per op
	p.opsPerLabel = opsPerLabel

	lineNo = 0
	first := true
	for rest := src; len(rest) > 0 || first; {
		var raw string
		raw, rest = nextLine(rest)
		first = false
		lineNo++
		line := clean(raw)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("irtext: line %d: %w", lineNo, err)
		}
	}
	return p.fn, nil
}

// funcHeader parses the token(s) after "func ": a bare name, or
// "name(r1, r2)" optionally followed by "-> (r3)" declaring the call
// convention registers.
func funcHeader(hdr string) (name string, params, rets []ir.Reg, err error) {
	if hdr == "" {
		return "", nil, nil, fmt.Errorf("func needs a name")
	}
	paren := strings.IndexByte(hdr, '(')
	if paren < 0 {
		if strings.ContainsAny(hdr, " \t") {
			return "", nil, nil, fmt.Errorf("bad func header %q", hdr)
		}
		return hdr, nil, nil, nil
	}
	name = strings.TrimSpace(hdr[:paren])
	if name == "" {
		return "", nil, nil, fmt.Errorf("func needs a name")
	}
	rest := hdr[paren:]
	params, rest, err = regList(rest)
	if err != nil {
		return "", nil, nil, err
	}
	rest = strings.TrimSpace(rest)
	if rest != "" {
		if !strings.HasPrefix(rest, "->") {
			return "", nil, nil, fmt.Errorf("bad func header %q", hdr)
		}
		rets, rest, err = regList(strings.TrimSpace(rest[2:]))
		if err != nil {
			return "", nil, nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return "", nil, nil, fmt.Errorf("bad func header %q", hdr)
		}
	}
	return name, params, rets, nil
}

// regList parses a parenthesized comma-separated register list, returning
// the registers and the unconsumed remainder. "()" yields an empty list.
func regList(s string) ([]ir.Reg, string, error) {
	if !strings.HasPrefix(s, "(") {
		return nil, "", fmt.Errorf("expected '(' in %q", s)
	}
	end := strings.IndexByte(s, ')')
	if end < 0 {
		return nil, "", fmt.Errorf("unterminated register list in %q", s)
	}
	inner := strings.TrimSpace(s[1:end])
	rest := s[end+1:]
	if inner == "" {
		return nil, rest, nil
	}
	var out []ir.Reg
	for _, tok := range strings.Split(inner, ",") {
		r, err := reg(tok)
		if err != nil {
			return nil, "", err
		}
		if !r.IsValid() {
			return nil, "", fmt.Errorf("bad register in list %q", inner)
		}
		out = append(out, r)
	}
	return out, rest, nil
}

// nextLine splits off the first line of s (without the newline).
func nextLine(s string) (line, rest string) {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

func clean(raw string) string {
	line := raw
	if idx := strings.IndexByte(line, ';'); idx >= 0 {
		line = line[:idx]
	}
	return strings.TrimSpace(line)
}

type parser struct {
	fn  *ir.Function
	cur *ir.Block
	// Exactly one of denseLabels/declared resolves textual labels:
	// denseLabels when labels are 0..n-1 in declaration order (index ==
	// label), declared otherwise.
	denseLabels []*ir.Block
	declared    map[int]*ir.Block

	opSlab      []ir.Op  // backing array for all ops
	opPtrs      []*ir.Op // backing array for the blocks' Ops slices
	regSlab     []ir.Reg // backing array for all Dests/Srcs
	oi, ri      int
	opsPerLabel []int // op-line count per declaration, for carving opPtrs
	labelIdx    int   // next declaration index in the second pass
}

// block resolves the block labelled bbN, which must be declared.
func (p *parser) block(n int) (*ir.Block, error) {
	if p.denseLabels != nil {
		if n >= 0 && n < len(p.denseLabels) {
			return p.denseLabels[n], nil
		}
	} else if b, ok := p.declared[n]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("reference to undeclared bb%d", n)
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "func "):
		return nil // handled in the pre-scan
	case strings.HasSuffix(line, ":"):
		n, err := blockNum(strings.TrimSuffix(line, ":"))
		if err != nil {
			return err
		}
		p.cur, err = p.block(n)
		if err != nil {
			return err
		}
		// Carve this block's Ops pointer slice: full-cap so appends fill
		// the carved region and never spill into the next block's.
		cnt := p.opsPerLabel[p.labelIdx]
		p.labelIdx++
		off := len(p.opPtrs)
		p.opPtrs = p.opPtrs[:off+cnt]
		p.cur.Ops = p.opPtrs[off:off:off+cnt]
		return nil
	case p.cur == nil:
		return fmt.Errorf("op outside a block")
	case strings.HasPrefix(line, "fallthrough"):
		t, err := p.target(strings.TrimSpace(strings.TrimPrefix(line, "fallthrough")))
		if err != nil {
			return err
		}
		p.cur.FallThrough = t
		return nil
	default:
		return p.op(line)
	}
}

// carveRegs copies n registers from buf into the shared register slab and
// returns the full-cap sub-slice.
func (p *parser) carveRegs(buf []ir.Reg) []ir.Reg {
	n := len(buf)
	if n == 0 {
		return nil
	}
	s := p.regSlab[p.ri : p.ri+n : p.ri+n]
	copy(s, buf)
	p.ri += n
	return s
}

func blockNum(tok string) (int, error) {
	if !strings.HasPrefix(tok, "bb") {
		return 0, fmt.Errorf("bad block label %q", tok)
	}
	n, err := strconv.Atoi(tok[2:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad block label %q", tok)
	}
	return n, nil
}

// reg parses a register token: r3, p1, b0, f2, or _ for none.
func reg(tok string) (ir.Reg, error) {
	tok = strings.TrimSpace(tok)
	if tok == "_" {
		return ir.NoReg, nil
	}
	if len(tok) < 2 {
		return ir.NoReg, fmt.Errorf("bad register %q", tok)
	}
	var class ir.RegClass
	switch tok[0] {
	case 'r':
		class = ir.ClassGPR
	case 'p':
		class = ir.ClassPred
	case 'b':
		class = ir.ClassBTR
	case 'f':
		class = ir.ClassFPR
	default:
		return ir.NoReg, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return ir.NoReg, fmt.Errorf("bad register %q", tok)
	}
	return ir.Reg{Class: class, Num: n}, nil
}

// target parses @bbN.
func (p *parser) target(tok string) (ir.BlockID, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "@") {
		return ir.NoBlock, fmt.Errorf("bad target %q", tok)
	}
	n, err := blockNum(tok[1:])
	if err != nil {
		return ir.NoBlock, err
	}
	b, err := p.block(n)
	if err != nil {
		return ir.NoBlock, err
	}
	return b.ID, nil
}

var opcodeByName = func() map[string]ir.Opcode {
	m := make(map[string]ir.Opcode, len(mnemonics))
	//det:ordered inverting an injective table; the resulting map is the same under any insertion order
	for o, s := range mnemonics {
		m[s] = o
	}
	return m
}()

var condByName = func() map[string]ir.Cond {
	m := make(map[string]ir.Cond, len(condNames))
	//det:ordered inverting an injective table; the resulting map is the same under any insertion order
	for c, s := range condNames {
		m[s] = c
	}
	return m
}()

// split2 splits s at its single comma; ok is false when s has zero or more
// than one comma.
func split2(s string) (a, b string, ok bool) {
	i := strings.IndexByte(s, ',')
	if i < 0 || strings.IndexByte(s[i+1:], ',') >= 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// op parses one instruction line into the current block.
func (p *parser) op(line string) error {
	guard := ir.NoReg
	if strings.HasPrefix(line, "(") {
		end := strings.IndexByte(line, ')')
		if end < 0 {
			return fmt.Errorf("unterminated guard")
		}
		g, err := reg(line[1:end])
		if err != nil {
			return err
		}
		if g.Class != ir.ClassPred {
			return fmt.Errorf("guard %q is not a predicate", line[1:end])
		}
		guard = g
		line = strings.TrimSpace(line[end+1:])
	}

	// Only the first two parsed destinations are kept (no op takes more);
	// ndests still counts them all so arity errors report the real count.
	var destBuf [2]ir.Reg
	ndests := 0
	rest := line
	if eq := strings.IndexByte(line, '='); eq >= 0 && strings.IndexByte(line[:eq], '[') < 0 {
		for tok := line[:eq]; ; {
			var seg string
			if i := strings.IndexByte(tok, ','); i >= 0 {
				seg, tok = tok[:i], tok[i+1:]
			} else {
				seg, tok = tok, ""
			}
			d, err := reg(seg)
			if err != nil {
				return err
			}
			p.fn.NoteReg(d)
			if ndests < len(destBuf) {
				destBuf[ndests] = d
			}
			ndests++
			if tok == "" {
				break
			}
		}
		rest = strings.TrimSpace(line[eq+1:])
	}
	dests := p.carveRegs(destBuf[:min(ndests, len(destBuf))])

	name := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name = rest[:i]
	}
	if name == "" {
		return fmt.Errorf("empty op")
	}
	args := strings.TrimSpace(strings.TrimPrefix(rest, name))
	opc, ok := opcodeByName[name]
	if !ok {
		return fmt.Errorf("unknown op %q", name)
	}

	op := &p.opSlab[p.oi]
	p.oi++
	p.fn.InitOp(op, opc)
	op.Dests = dests
	op.Guard = guard
	b := p.cur

	fail := func(format string, a ...interface{}) error {
		return fmt.Errorf("%s: "+format, append([]interface{}{name}, a...)...)
	}
	wantDests := func(n int) error {
		if ndests != n {
			return fail("needs %d destination(s), got %d", n, ndests)
		}
		return nil
	}
	var srcBuf [2]ir.Reg

	switch opc {
	case ir.MovI:
		if err := wantDests(1); err != nil {
			return err
		}
		v, err := strconv.ParseInt(strings.TrimSpace(args), 10, 64)
		if err != nil {
			return fail("bad immediate %q", args)
		}
		op.Imm = v
	case ir.Mov, ir.Copy:
		if err := wantDests(1); err != nil {
			return err
		}
		s, err := reg(args)
		if err != nil {
			return err
		}
		srcBuf[0] = s
		op.Srcs = p.carveRegs(srcBuf[:1])
	case ir.Ld:
		if err := wantDests(1); err != nil {
			return err
		}
		base, off, err := memOperand(args)
		if err != nil {
			return err
		}
		srcBuf[0] = base
		op.Srcs = p.carveRegs(srcBuf[:1])
		op.Imm = off
	case ir.St:
		if ndests != 0 {
			return fail("takes no destinations")
		}
		comma := strings.LastIndexByte(args, ',')
		if comma < 0 {
			return fail("needs [base+off], value")
		}
		base, off, err := memOperand(strings.TrimSpace(args[:comma]))
		if err != nil {
			return err
		}
		v, err := reg(args[comma+1:])
		if err != nil {
			return err
		}
		srcBuf[0], srcBuf[1] = base, v
		op.Srcs = p.carveRegs(srcBuf[:2])
		op.Imm = off
	case ir.Cmpp:
		if ndests != 1 && ndests != 2 {
			return fail("needs 1 or 2 destinations")
		}
		cname := args
		if i := strings.IndexAny(args, " \t"); i >= 0 {
			cname = args[:i]
		}
		if cname == "" {
			return fail("needs a condition and two sources")
		}
		cond, ok := condByName[cname]
		if !ok {
			return fail("unknown condition %q", cname)
		}
		op.Cond = cond
		sa, sb, ok := split2(strings.TrimSpace(strings.TrimPrefix(args, cname)))
		if !ok {
			return fail("needs two sources")
		}
		a, err := reg(sa)
		if err != nil {
			return err
		}
		c, err := reg(sb)
		if err != nil {
			return err
		}
		srcBuf[0], srcBuf[1] = a, c
		op.Srcs = p.carveRegs(srcBuf[:2])
	case ir.Pbr:
		if err := wantDests(1); err != nil {
			return err
		}
		t, err := p.target(args)
		if err != nil {
			return err
		}
		op.Target = t
	case ir.Brct, ir.Brcf:
		if ndests != 0 {
			return fail("takes no destinations")
		}
		prob := 0.5
		if h := strings.LastIndexByte(args, '#'); h >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSpace(args[h+1:]), 64)
			if err != nil || v < 0 || v > 1 {
				return fail("bad probability %q", args[h+1:])
			}
			prob = v
			args = strings.TrimSpace(args[:h])
		}
		c1 := strings.IndexByte(args, ',')
		var c2 int = -1
		if c1 >= 0 {
			if j := strings.IndexByte(args[c1+1:], ','); j >= 0 {
				c2 = c1 + 1 + j
			}
		}
		if c1 < 0 || c2 < 0 || strings.IndexByte(args[c2+1:], ',') >= 0 {
			return fail("needs btr, pred, @target")
		}
		btr, err := reg(args[:c1])
		if err != nil {
			return err
		}
		pr, err := reg(args[c1+1 : c2])
		if err != nil {
			return err
		}
		t, err := p.target(args[c2+1:])
		if err != nil {
			return err
		}
		srcBuf[0], srcBuf[1] = btr, pr // NoReg btr slot matches the builder's layout
		op.Srcs = p.carveRegs(srcBuf[:2])
		op.Target = t
		op.Prob = prob
	case ir.Bru:
		if ndests != 0 {
			return fail("takes no destinations")
		}
		t, err := p.target(args)
		if err != nil {
			return err
		}
		op.Target = t
		op.Prob = 1
	case ir.Call:
		args = strings.TrimSpace(args)
		if args == "" {
			// Legacy opaque call: bare barrier, no callee.
			if ndests != 0 {
				return fail("opaque call takes no destinations")
			}
			break
		}
		if !strings.HasPrefix(args, "@") {
			return fail("callee must be @name")
		}
		callee := args[1:]
		rest := ""
		if i := strings.IndexAny(callee, " \t"); i >= 0 {
			callee, rest = callee[:i], strings.TrimSpace(callee[i:])
		}
		if callee == "" {
			return fail("bad callee %q", "@"+callee)
		}
		if _, err := blockNum(callee); err == nil {
			return fail("callee %q looks like a block label", "@"+callee)
		}
		op.Callee = callee
		if ndests > len(destBuf) {
			return fail("takes at most %d destinations", len(destBuf))
		}
		if rest != "" {
			nsrcs := 0
			for _, tok := range strings.Split(rest, ",") {
				s, err := reg(tok)
				if err != nil {
					return err
				}
				if nsrcs >= len(srcBuf) {
					return fail("takes at most %d arguments", len(srcBuf))
				}
				srcBuf[nsrcs] = s
				nsrcs++
			}
			op.Srcs = p.carveRegs(srcBuf[:nsrcs])
		}
	case ir.Ret, ir.Nop:
		if strings.TrimSpace(args) != "" {
			return fail("takes no operands")
		}
	default: // two-source ALU / FP
		if err := wantDests(1); err != nil {
			return err
		}
		sa, sb, ok := split2(args)
		if !ok {
			return fail("needs two sources")
		}
		a, err := reg(sa)
		if err != nil {
			return err
		}
		c, err := reg(sb)
		if err != nil {
			return err
		}
		srcBuf[0], srcBuf[1] = a, c
		op.Srcs = p.carveRegs(srcBuf[:2])
	}
	for _, s := range op.Srcs {
		p.fn.NoteReg(s)
	}
	p.fn.NoteReg(op.Guard)
	b.Ops = append(b.Ops, op)
	return nil
}

// memOperand parses [reg+off] (off may be negative: [r1+-8] or [r1-8]).
func memOperand(tok string) (ir.Reg, int64, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return ir.NoReg, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner[1:], "+-")
	if sep < 0 {
		return ir.NoReg, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	sep++
	base, err := reg(inner[:sep])
	if err != nil {
		return ir.NoReg, 0, err
	}
	offStr := inner[sep:]
	if strings.HasPrefix(offStr, "+") {
		offStr = offStr[1:]
	}
	off, err := strconv.ParseInt(offStr, 10, 64)
	if err != nil {
		return ir.NoReg, 0, fmt.Errorf("bad offset in %q", tok)
	}
	return base, off, nil
}
