// Package irtext serializes ir.Functions to a human-writable assembly-like
// text format and parses it back. The format lets users feed hand-written
// programs to the compiler driver (treegionc -input) and makes golden tests
// readable.
//
// Grammar (';' starts a comment):
//
//	func <name>                  ; or: func <name>(r1, r2) -> (r3)
//	bb<N>:                       ; blocks in any order; the first is entry
//	  [(p<G>)] <op>              ; optional if-conversion guard
//	  ...
//	  fallthrough @bb<M>         ; optional, last line of a block
//
// A file may hold several functions (ParseProgram); each `func` line starts
// a new one. The optional parenthesized lists on the `func` line declare the
// call convention: parameter registers, then return registers after `->`.
//
// Ops:
//
//	r1 = movi 42                 r1 = add r2, r3     (sub/mul/div/and/or/
//	r1 = mov r2                                       xor/shl/shr/fadd/fmul/fdiv)
//	r1 = ld [r2+8]               st [r2+8], r3
//	p0 = cmpp gt r1, r2          p0, p1 = cmpp le r1, r2
//	b0 = pbr @bb3                brct b0, p0, @bb3 #0.25
//	bru @bb3                     brcf b0, p0, @bb3 #0.5
//	call                         ret
//	r1 = call @f r2, r3          ; resolved call: srcs -> callee params
//	r1 = copy r2
//
// Register classes by prefix: r (general), p (predicate), b (branch target),
// f (floating point). Conditional branches carry their taken probability
// after '#' (defaults to 0.5).
package irtext

import (
	"slices"
	"strconv"

	"treegion/internal/ir"
)

// Print serializes fn in the package's text format.
//
// Print sits on the hot path of every cache lookup (the content-addressed
// key is the SHA-256 of this text) and of every store write, so it builds
// the output with manual byte appends rather than fmt.
func Print(fn *ir.Function) string {
	return string(AppendFunc(nil, fn))
}

// AppendFunc appends fn's text format to buf and returns it, letting the
// cache-key path hash the text out of one reused buffer instead of
// materializing a fresh string per lookup.
func AppendFunc(buf []byte, fn *ir.Function) []byte {
	// ~24 bytes/op line covers the suite's mix; under-estimates just grow.
	buf = slices.Grow(buf, 16+len(fn.Name)+8*len(fn.Blocks)+24*fn.NumOps())
	buf = append(buf, "func "...)
	buf = append(buf, fn.Name...)
	// The convention lists are printed only when present, so call-free
	// functions keep the legacy single-token header byte for byte.
	if len(fn.Params) > 0 || len(fn.Rets) > 0 {
		buf = append(buf, '(')
		for i, r := range fn.Params {
			if i > 0 {
				buf = append(buf, ", "...)
			}
			buf = appendReg(buf, r)
		}
		buf = append(buf, ')')
		if len(fn.Rets) > 0 {
			buf = append(buf, " -> ("...)
			for i, r := range fn.Rets {
				if i > 0 {
					buf = append(buf, ", "...)
				}
				buf = appendReg(buf, r)
			}
			buf = append(buf, ')')
		}
	}
	buf = append(buf, '\n')
	for _, b := range fn.Blocks {
		buf = append(buf, "bb"...)
		buf = strconv.AppendInt(buf, int64(b.ID), 10)
		buf = append(buf, ":\n"...)
		for _, op := range b.Ops {
			buf = append(buf, ' ', ' ')
			buf = appendOp(buf, op)
			buf = append(buf, '\n')
		}
		if b.FallThrough != ir.NoBlock {
			buf = append(buf, "  fallthrough @bb"...)
			buf = strconv.AppendInt(buf, int64(b.FallThrough), 10)
			buf = append(buf, '\n')
		}
	}
	return buf
}

// PrintProgram serializes every function of a multi-function program, in
// program order, separated by blank lines. The result parses back with
// ParseProgram.
func PrintProgram(p *ir.Program) string {
	var buf []byte
	for i, fn := range p.Funcs {
		if i > 0 {
			buf = append(buf, '\n')
		}
		buf = AppendFunc(buf, fn)
	}
	return string(buf)
}

// appendReg appends a register token (r3, p1, b0, f2, or _).
func appendReg(buf []byte, r ir.Reg) []byte {
	var c byte
	switch r.Class {
	case ir.ClassGPR:
		c = 'r'
	case ir.ClassPred:
		c = 'p'
	case ir.ClassBTR:
		c = 'b'
	case ir.ClassFPR:
		c = 'f'
	default:
		return append(buf, '_')
	}
	buf = append(buf, c)
	return strconv.AppendInt(buf, int64(r.Num), 10)
}

func appendTarget(buf []byte, t ir.BlockID) []byte {
	buf = append(buf, "@bb"...)
	return strconv.AppendInt(buf, int64(t), 10)
}

func appendOp(buf []byte, op *ir.Op) []byte {
	if op.Guarded() {
		buf = append(buf, '(')
		buf = appendReg(buf, op.Guard)
		buf = append(buf, ") "...)
	}
	switch op.Opcode {
	case ir.MovI:
		buf = appendReg(buf, op.Dests[0])
		buf = append(buf, " = movi "...)
		buf = strconv.AppendInt(buf, op.Imm, 10)
	case ir.Mov, ir.Copy:
		buf = appendReg(buf, op.Dests[0])
		buf = append(buf, " = "...)
		buf = append(buf, mnemonic(op.Opcode)...)
		buf = append(buf, ' ')
		buf = appendReg(buf, op.Srcs[0])
	case ir.Ld:
		buf = appendReg(buf, op.Dests[0])
		buf = append(buf, " = ld ["...)
		buf = appendReg(buf, op.Srcs[0])
		buf = append(buf, '+')
		buf = strconv.AppendInt(buf, op.Imm, 10)
		buf = append(buf, ']')
	case ir.St:
		buf = append(buf, "st ["...)
		buf = appendReg(buf, op.Srcs[0])
		buf = append(buf, '+')
		buf = strconv.AppendInt(buf, op.Imm, 10)
		buf = append(buf, "], "...)
		buf = appendReg(buf, op.Srcs[1])
	case ir.Cmpp:
		buf = appendReg(buf, op.Dests[0])
		if len(op.Dests) > 1 {
			buf = append(buf, ", "...)
			buf = appendReg(buf, op.Dests[1])
		}
		buf = append(buf, " = cmpp "...)
		buf = append(buf, condName(op.Cond)...)
		buf = append(buf, ' ')
		buf = appendReg(buf, op.Srcs[0])
		buf = append(buf, ", "...)
		buf = appendReg(buf, op.Srcs[1])
	case ir.Pbr:
		buf = appendReg(buf, op.Dests[0])
		buf = append(buf, " = pbr "...)
		buf = appendTarget(buf, op.Target)
	case ir.Brct, ir.Brcf:
		buf = append(buf, mnemonic(op.Opcode)...)
		buf = append(buf, ' ')
		if len(op.Srcs) > 1 && op.Srcs[0].IsValid() {
			buf = appendReg(buf, op.Srcs[0])
		} else {
			buf = append(buf, '_')
		}
		buf = append(buf, ", "...)
		buf = appendReg(buf, op.Srcs[len(op.Srcs)-1])
		buf = append(buf, ", "...)
		buf = appendTarget(buf, op.Target)
		buf = append(buf, " #"...)
		buf = strconv.AppendFloat(buf, op.Prob, 'g', -1, 64)
	case ir.Bru:
		buf = append(buf, "bru "...)
		buf = appendTarget(buf, op.Target)
	case ir.Call:
		if op.Callee == "" {
			buf = append(buf, "call"...)
			break
		}
		for i, d := range op.Dests {
			if i > 0 {
				buf = append(buf, ", "...)
			}
			buf = appendReg(buf, d)
		}
		if len(op.Dests) > 0 {
			buf = append(buf, " = "...)
		}
		buf = append(buf, "call @"...)
		buf = append(buf, op.Callee...)
		for i, s := range op.Srcs {
			if i > 0 {
				buf = append(buf, ","...)
			}
			buf = append(buf, ' ')
			buf = appendReg(buf, s)
		}
	case ir.Ret:
		buf = append(buf, "ret"...)
	case ir.Nop:
		buf = append(buf, "nop"...)
	default: // two-source ALU
		buf = appendReg(buf, op.Dests[0])
		buf = append(buf, " = "...)
		buf = append(buf, mnemonic(op.Opcode)...)
		buf = append(buf, ' ')
		buf = appendReg(buf, op.Srcs[0])
		buf = append(buf, ", "...)
		buf = appendReg(buf, op.Srcs[1])
	}
	return buf
}

var mnemonics = map[ir.Opcode]string{
	ir.Add: "add", ir.Sub: "sub", ir.Mul: "mul", ir.Div: "div",
	ir.And: "and", ir.Or: "or", ir.Xor: "xor", ir.Shl: "shl", ir.Shr: "shr",
	ir.MovI: "movi", ir.Mov: "mov", ir.Copy: "copy",
	ir.Cmpp: "cmpp", ir.Ld: "ld", ir.St: "st",
	ir.FAdd: "fadd", ir.FMul: "fmul", ir.FDiv: "fdiv",
	ir.Pbr: "pbr", ir.Brct: "brct", ir.Brcf: "brcf", ir.Bru: "bru",
	ir.Call: "call", ir.Ret: "ret", ir.Nop: "nop",
}

func mnemonic(o ir.Opcode) string { return mnemonics[o] }

var condNames = map[ir.Cond]string{
	ir.CondEQ: "eq", ir.CondNE: "ne", ir.CondLT: "lt",
	ir.CondLE: "le", ir.CondGT: "gt", ir.CondGE: "ge",
}

func condName(c ir.Cond) string { return condNames[c] }
