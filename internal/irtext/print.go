// Package irtext serializes ir.Functions to a human-writable assembly-like
// text format and parses it back. The format lets users feed hand-written
// programs to the compiler driver (treegionc -input) and makes golden tests
// readable.
//
// Grammar (one function per file; ';' starts a comment):
//
//	func <name>
//	bb<N>:                       ; blocks in any order; the first is entry
//	  [(p<G>)] <op>              ; optional if-conversion guard
//	  ...
//	  fallthrough @bb<M>         ; optional, last line of a block
//
// Ops:
//
//	r1 = movi 42                 r1 = add r2, r3     (sub/mul/div/and/or/
//	r1 = mov r2                                       xor/shl/shr/fadd/fmul/fdiv)
//	r1 = ld [r2+8]               st [r2+8], r3
//	p0 = cmpp gt r1, r2          p0, p1 = cmpp le r1, r2
//	b0 = pbr @bb3                brct b0, p0, @bb3 #0.25
//	bru @bb3                     brcf b0, p0, @bb3 #0.5
//	call                         ret
//	r1 = copy r2
//
// Register classes by prefix: r (general), p (predicate), b (branch target),
// f (floating point). Conditional branches carry their taken probability
// after '#' (defaults to 0.5).
package irtext

import (
	"fmt"
	"strings"

	"treegion/internal/ir"
)

// Print serializes fn in the package's text format.
func Print(fn *ir.Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", fn.Name)
	for _, b := range fn.Blocks {
		fmt.Fprintf(&sb, "bb%d:\n", b.ID)
		for _, op := range b.Ops {
			sb.WriteString("  ")
			sb.WriteString(printOp(op))
			sb.WriteString("\n")
		}
		if b.FallThrough != ir.NoBlock {
			fmt.Fprintf(&sb, "  fallthrough @bb%d\n", b.FallThrough)
		}
	}
	return sb.String()
}

func printOp(op *ir.Op) string {
	var sb strings.Builder
	if op.Guarded() {
		fmt.Fprintf(&sb, "(%s) ", op.Guard)
	}
	switch op.Opcode {
	case ir.MovI:
		fmt.Fprintf(&sb, "%s = movi %d", op.Dests[0], op.Imm)
	case ir.Mov, ir.Copy:
		fmt.Fprintf(&sb, "%s = %s %s", op.Dests[0], mnemonic(op.Opcode), op.Srcs[0])
	case ir.Ld:
		fmt.Fprintf(&sb, "%s = ld [%s+%d]", op.Dests[0], op.Srcs[0], op.Imm)
	case ir.St:
		fmt.Fprintf(&sb, "st [%s+%d], %s", op.Srcs[0], op.Imm, op.Srcs[1])
	case ir.Cmpp:
		if len(op.Dests) > 1 {
			fmt.Fprintf(&sb, "%s, %s = cmpp %s %s, %s",
				op.Dests[0], op.Dests[1], condName(op.Cond), op.Srcs[0], op.Srcs[1])
		} else {
			fmt.Fprintf(&sb, "%s = cmpp %s %s, %s",
				op.Dests[0], condName(op.Cond), op.Srcs[0], op.Srcs[1])
		}
	case ir.Pbr:
		fmt.Fprintf(&sb, "%s = pbr @bb%d", op.Dests[0], op.Target)
	case ir.Brct, ir.Brcf:
		btr := "_"
		if len(op.Srcs) > 1 && op.Srcs[0].IsValid() {
			btr = op.Srcs[0].String()
		}
		p := op.Srcs[len(op.Srcs)-1]
		fmt.Fprintf(&sb, "%s %s, %s, @bb%d #%g", mnemonic(op.Opcode), btr, p, op.Target, op.Prob)
	case ir.Bru:
		fmt.Fprintf(&sb, "bru @bb%d", op.Target)
	case ir.Call:
		sb.WriteString("call")
	case ir.Ret:
		sb.WriteString("ret")
	case ir.Nop:
		sb.WriteString("nop")
	default: // two-source ALU
		fmt.Fprintf(&sb, "%s = %s %s, %s", op.Dests[0], mnemonic(op.Opcode), op.Srcs[0], op.Srcs[1])
	}
	return sb.String()
}

var mnemonics = map[ir.Opcode]string{
	ir.Add: "add", ir.Sub: "sub", ir.Mul: "mul", ir.Div: "div",
	ir.And: "and", ir.Or: "or", ir.Xor: "xor", ir.Shl: "shl", ir.Shr: "shr",
	ir.MovI: "movi", ir.Mov: "mov", ir.Copy: "copy",
	ir.Cmpp: "cmpp", ir.Ld: "ld", ir.St: "st",
	ir.FAdd: "fadd", ir.FMul: "fmul", ir.FDiv: "fdiv",
	ir.Pbr: "pbr", ir.Brct: "brct", ir.Brcf: "brcf", ir.Bru: "bru",
	ir.Call: "call", ir.Ret: "ret", ir.Nop: "nop",
}

func mnemonic(o ir.Opcode) string { return mnemonics[o] }

var condNames = map[ir.Cond]string{
	ir.CondEQ: "eq", ir.CondNE: "ne", ir.CondLT: "lt",
	ir.CondLE: "le", ir.CondGT: "gt", ir.CondGE: "ge",
}

func condName(c ir.Cond) string { return condNames[c] }
