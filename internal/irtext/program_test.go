package irtext

import (
	"strings"
	"testing"

	"treegion/internal/ir"
	"treegion/internal/progen"
)

const programSample = `
; a caller and its callee, with the fixed two-arg one-ret convention
func pmain
bb0:
  r0 = movi 7
  r1 = movi 5
  r2 = call @padd r0, r1
  st [r0+0], r2
  ret

func padd(r0, r1) -> (r2)
bb0:
  r2 = add r0, r1
  ret
`

func TestParseProgramSample(t *testing.T) {
	p, err := ParseProgram(programSample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 || p.Funcs[0].Name != "pmain" || p.Funcs[1].Name != "padd" {
		t.Fatalf("parsed %d funcs", len(p.Funcs))
	}
	// The leading comment attaches to the first function, not a phantom
	// zeroth chunk.
	var call *ir.Op
	for _, b := range p.Funcs[0].Blocks {
		for _, op := range b.Ops {
			if op.Opcode == ir.Call {
				call = op
			}
		}
	}
	if call == nil || call.Callee != "padd" || len(call.Srcs) != 2 || len(call.Dests) != 1 {
		t.Fatalf("call parsed as %+v", call)
	}
	callee := p.Funcs[1]
	if len(callee.Params) != 2 || len(callee.Rets) != 1 {
		t.Fatalf("convention lost: params %v rets %v", callee.Params, callee.Rets)
	}
	if sites := p.CallSites(); len(sites) != 1 || sites[0].Callee != 1 {
		t.Fatalf("call sites %+v", sites)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p, err := ParseProgram(programSample)
	if err != nil {
		t.Fatal(err)
	}
	text := PrintProgram(p)
	p2, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if got := PrintProgram(p2); got != text {
		t.Fatalf("round trip not a fixed point:\n%s\nvs\n%s", text, got)
	}
}

// Property: PrintProgram∘ParseProgram is the identity on PrintProgram's
// image for the call-emitting presets, which exercise headers with
// conventions, call ops, and multi-function layout.
func TestProgramRoundTripPresets(t *testing.T) {
	for _, name := range []string{"callhot", "calldeep"} {
		p, ok := progen.PresetByName(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		gen, err := progen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.NewProgram(gen.Funcs)
		if err != nil {
			t.Fatal(err)
		}
		text := PrintProgram(prog)
		back, err := ParseProgram(text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := PrintProgram(back); got != text {
			a, b := strings.Split(text, "\n"), strings.Split(got, "\n")
			for i := range a {
				if i >= len(b) || a[i] != b[i] {
					t.Fatalf("%s: round trip differs at line %d:\n  %q\n  %q", name, i+1, a[i], b[i])
				}
			}
			t.Fatalf("%s: round trip differs in length", name)
		}
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"dup name", "func a\nbb0:\n  ret\n\nfunc a\nbb0:\n  ret", "duplicate"},
		{"undefined callee", "func a\nbb0:\n  r2 = call @nope r0, r1\n  ret", "undefined"},
		{"second func invalid", "func a\nbb0:\n  ret\n\nfunc b\nbb0:\n  bru @bb9", "line 5"},
	}
	for _, c := range cases {
		_, err := ParseProgram(c.src)
		if err == nil {
			t.Errorf("%s: error not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err %q lacks %q", c.name, err, c.frag)
		}
	}
}
