package irtext

import (
	"encoding/binary"
	"math"
	"slices"

	"treegion/internal/ir"
)

// AppendFuncKey appends a compact binary serialization of fn to buf and
// returns it. It carries exactly the function content the textual format
// (Print) does — name, entry, block structure, opcodes, operands,
// immediates, branch targets and probabilities — but as fixed-width
// little-endian fields, so producing it is a straight memory walk with no
// integer or float formatting. The cache-key path hashes this instead of
// the text: the resulting keys partition compilations identically (both
// serializations are injective over the same content), they just cost a
// fraction of the CPU per lookup.
//
// The layout is self-delimiting (every list is count-prefixed), which keeps
// the serialization injective: no two distinct functions share an encoding.
func AppendFuncKey(buf []byte, fn *ir.Function) []byte {
	le := binary.LittleEndian
	buf = slices.Grow(buf, 16+len(fn.Name)+12*len(fn.Blocks)+40*fn.NumOps())
	buf = le.AppendUint32(buf, uint32(len(fn.Name)))
	buf = append(buf, fn.Name...)
	buf = le.AppendUint32(buf, uint32(fn.Entry))
	buf = le.AppendUint32(buf, uint32(len(fn.Blocks)))
	for _, b := range fn.Blocks {
		buf = le.AppendUint32(buf, uint32(b.ID))
		buf = le.AppendUint32(buf, uint32(b.FallThrough))
		buf = le.AppendUint32(buf, uint32(len(b.Ops)))
		for _, op := range b.Ops {
			buf = append(buf, byte(op.Opcode), byte(op.Cond))
			if op.Guarded() {
				buf = append(buf, 1, byte(op.Guard.Class))
				buf = le.AppendUint32(buf, uint32(op.Guard.Num))
			} else {
				buf = append(buf, 0)
			}
			buf = append(buf, byte(len(op.Dests)), byte(len(op.Srcs)))
			for _, r := range op.Dests {
				buf = append(buf, byte(r.Class))
				buf = le.AppendUint32(buf, uint32(r.Num))
			}
			for _, r := range op.Srcs {
				buf = append(buf, byte(r.Class))
				buf = le.AppendUint32(buf, uint32(r.Num))
			}
			buf = le.AppendUint64(buf, uint64(op.Imm))
			buf = le.AppendUint32(buf, uint32(op.Target))
			buf = le.AppendUint64(buf, math.Float64bits(op.Prob))
		}
	}
	// Interprocedural tail: call convention registers and callee symbols.
	// It is appended only when the function actually has them, so call-free
	// functions keep their legacy key bytes (and store/cache entries). The
	// base layout is fully count-prefixed and therefore prefix-free, so
	// adding a conditional tail cannot collide with any base-only encoding.
	interproc := len(fn.Params) > 0 || len(fn.Rets) > 0
	if !interproc {
	scan:
		for _, b := range fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.Call && op.Callee != "" {
					interproc = true
					break scan
				}
			}
		}
	}
	if interproc {
		buf = le.AppendUint32(buf, uint32(len(fn.Params)))
		for _, r := range fn.Params {
			buf = append(buf, byte(r.Class))
			buf = le.AppendUint32(buf, uint32(r.Num))
		}
		buf = le.AppendUint32(buf, uint32(len(fn.Rets)))
		for _, r := range fn.Rets {
			buf = append(buf, byte(r.Class))
			buf = le.AppendUint32(buf, uint32(r.Num))
		}
		// One entry per Call op in block/op order (empty string for opaque
		// calls), keeping callee symbols positionally aligned with the base
		// encoding's opcodes.
		for _, b := range fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode != ir.Call {
					continue
				}
				buf = le.AppendUint32(buf, uint32(len(op.Callee)))
				buf = append(buf, op.Callee...)
			}
		}
	}
	return buf
}
