package interp

import (
	"reflect"
	"strings"
	"testing"

	"treegion/internal/ir"
)

// callProg builds main -> add(7,5) with the result stored to memory.
func callProg(t *testing.T) *ir.Program {
	t.Helper()
	add := ir.NewFunction("add")
	pa := add.NewReg(ir.ClassGPR)
	pb := add.NewReg(ir.ClassGPR)
	add.Params = []ir.Reg{pa, pb}
	ab := add.NewBlock()
	s := add.NewReg(ir.ClassGPR)
	add.EmitALU(ab, ir.Add, s, pa, pb)
	add.Rets = []ir.Reg{s}
	add.EmitRet(ab)

	main := ir.NewFunction("main")
	mb := main.NewBlock()
	r0 := main.NewReg(ir.ClassGPR)
	r1 := main.NewReg(ir.ClassGPR)
	r2 := main.NewReg(ir.ClassGPR)
	main.EmitMovI(mb, r0, 7)
	main.EmitMovI(mb, r1, 5)
	main.EmitCall(mb, "add", []ir.Reg{r2}, []ir.Reg{r0, r1})
	main.EmitSt(mb, r0, 0, r2)
	main.EmitRet(mb)

	p, err := ir.NewProgram([]*ir.Function{main, add})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunInExecutesCalls(t *testing.T) {
	p := callProg(t)
	tr, err := RunIn(p, p.Funcs[0], NewOracle(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 12 || tr.Stores[0].Addr != 7 {
		t.Fatalf("stores = %+v, want one store of 12 to [7]", tr.Stores)
	}
	// Trace: caller entry (orig 0), callee entry under its namespace, then
	// the caller's resumption record.
	want := []ir.BlockID{0, ir.BlockID(p.OrigBase(1)), 0}
	if !reflect.DeepEqual(tr.Blocks, want) {
		t.Fatalf("trace = %v, want %v", tr.Blocks, want)
	}
}

func TestRunInNilProgramMatchesRun(t *testing.T) {
	p := callProg(t)
	main := p.Funcs[0]
	got, err := RunIn(nil, main, NewOracle(9), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(main, NewOracle(9), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunIn(nil) diverges from Run:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunInGuardedCallSquashed(t *testing.T) {
	p := callProg(t)
	main := p.Funcs[0]
	var call *ir.Op
	for _, b := range main.Blocks {
		for _, op := range b.Ops {
			if op.Opcode == ir.Call {
				call = op
			}
		}
	}
	// Guard on an undefined predicate (reads as zero): the callee must not
	// run, so its return value copy must not happen and the store writes 0.
	call.Guard = main.NewReg(ir.ClassPred)
	tr, err := RunIn(p, main, NewOracle(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 0 {
		t.Fatalf("stores = %+v, want squashed call (stored 0)", tr.Stores)
	}
	if len(tr.Blocks) != 1 {
		t.Fatalf("trace = %v, want no callee blocks", tr.Blocks)
	}
}

func TestRunInDepthCap(t *testing.T) {
	f := ir.NewFunction("loop")
	pa := f.NewReg(ir.ClassGPR)
	pb := f.NewReg(ir.ClassGPR)
	f.Params = []ir.Reg{pa, pb}
	b := f.NewBlock()
	r := f.NewReg(ir.ClassGPR)
	f.EmitCall(b, "loop", []ir.Reg{r}, []ir.Reg{pa, pb})
	f.Rets = []ir.Reg{r}
	f.EmitRet(b)
	p, err := ir.NewProgram([]*ir.Function{f})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunIn(p, f, NewOracle(1), Config{}); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("recursion: err = %v, want depth cap", err)
	}
}

func TestRunInArityMismatch(t *testing.T) {
	p := callProg(t)
	main := p.Funcs[0]
	for _, b := range main.Blocks {
		for _, op := range b.Ops {
			if op.Opcode == ir.Call {
				op.Srcs = op.Srcs[:1] // violate the convention post-resolution
			}
		}
	}
	if _, err := RunIn(p, main, NewOracle(1), Config{}); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("arity: err = %v, want convention error", err)
	}
}
