package interp

import (
	"math"
	"testing"

	"treegion/internal/ir"
)

// branchy builds bb0 -> {bb1 (p=0.8), bb2}; both -> bb3 (ret), with a store
// of a computed value in each arm.
func branchy(t *testing.T) *ir.Function {
	t.Helper()
	f := ir.NewFunction("branchy")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	r1 := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(b0, r0, 10)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r0)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.8)
	b0.FallThrough = b2.ID
	f.EmitALU(b1, ir.Add, r1, r0, r0) // 20
	f.EmitSt(b1, r0, 0, r1)
	f.EmitBru(b1, ir.NoReg, b3.ID)
	f.EmitALU(b2, ir.Sub, r1, r0, r0) // 0
	f.EmitSt(b2, r0, 4, r1)
	b2.FallThrough = b3.ID
	f.EmitRet(b3)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunProducesTrace(t *testing.T) {
	f := branchy(t)
	tr, err := Run(f, NewOracle(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != 3 {
		t.Fatalf("visited %v, want 3 blocks", tr.Blocks)
	}
	if tr.Blocks[0] != 0 || tr.Blocks[2] != 3 {
		t.Fatalf("path %v must start at bb0 and end at bb3", tr.Blocks)
	}
	if len(tr.Stores) != 1 {
		t.Fatalf("stores = %v, want exactly one", tr.Stores)
	}
	switch tr.Blocks[1] {
	case 1:
		if tr.Stores[0] != (StoreEvent{Addr: 10, Value: 20}) {
			t.Fatalf("bb1 store = %+v", tr.Stores[0])
		}
	case 2:
		if tr.Stores[0] != (StoreEvent{Addr: 14, Value: 0}) {
			t.Fatalf("bb2 store = %+v", tr.Stores[0])
		}
	default:
		t.Fatalf("unexpected middle block %v", tr.Blocks[1])
	}
}

func TestRunDeterministic(t *testing.T) {
	f := branchy(t)
	a, err := Run(f, NewOracle(42), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(f, NewOracle(42), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Blocks) != len(b.Blocks) || len(a.Stores) != len(b.Stores) {
		t.Fatal("same seed must replay the same trip")
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatal("block sequence differs across identical runs")
		}
	}
}

func TestProfileRespectsBias(t *testing.T) {
	f := branchy(t)
	const trips = 4000
	d, err := Profile(f, 7, trips, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.BlockWeight(0) != trips || d.BlockWeight(3) != trips {
		t.Fatalf("entry/exit weights = %v/%v, want %d", d.BlockWeight(0), d.BlockWeight(3), trips)
	}
	frac := d.BlockWeight(1) / trips
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("taken fraction = %.3f, want ~0.8", frac)
	}
	if d.BlockWeight(1)+d.BlockWeight(2) != trips {
		t.Fatalf("arm weights don't partition: %v + %v != %d",
			d.BlockWeight(1), d.BlockWeight(2), trips)
	}
	// Edge counts must agree with block counts in this merge-free interior.
	if d.EdgeWeight(0, 1) != d.BlockWeight(1) {
		t.Fatal("edge weight (0,1) inconsistent with block weight")
	}
	if d.EdgeWeight(1, 3)+d.EdgeWeight(2, 3) != d.BlockWeight(3) {
		t.Fatal("incoming edges of bb3 don't sum to its weight")
	}
}

func TestLoopTerminatesAndCounts(t *testing.T) {
	f := ir.NewFunction("loop")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	r := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	b0.FallThrough = b1.ID
	f.EmitALU(b1, ir.Add, r, r, r)
	f.EmitCmpp(b1, p, ir.NoReg, ir.CondLT, r, r)
	f.EmitBrct(b1, ir.NoReg, p, b1.ID, 0.75) // ~4 iterations on average
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	const trips = 3000
	d, err := Profile(f, 3, trips, Config{})
	if err != nil {
		t.Fatal(err)
	}
	iters := d.BlockWeight(1) / trips
	if iters < 3.3 || iters > 4.7 {
		t.Fatalf("mean iterations = %.2f, want ~4", iters)
	}
	if d.EdgeWeight(1, 1) != d.BlockWeight(1)-float64(trips) {
		t.Fatal("back-edge count inconsistent")
	}
}

func TestRunawayLoopCaught(t *testing.T) {
	f := ir.NewFunction("forever")
	b0 := f.NewBlock()
	f.EmitALU(b0, ir.Add, ir.GPR(0), ir.GPR(0), ir.GPR(0))
	f.EmitBru(b0, ir.NoReg, b0.ID)
	if _, err := Run(f, NewOracle(0), Config{MaxSteps: 100}); err == nil {
		t.Fatal("infinite loop not caught")
	}
	if _, err := Profile(f, 0, 1, Config{MaxSteps: 100}); err == nil {
		t.Fatal("infinite loop not caught during profiling")
	}
}

func TestMissingSuccessorCaught(t *testing.T) {
	f := ir.NewFunction("dangling")
	b0 := f.NewBlock()
	f.EmitALU(b0, ir.Add, ir.GPR(0), ir.GPR(0), ir.GPR(0))
	// No Ret, no fallthrough.
	if _, err := Run(f, NewOracle(0), Config{}); err == nil {
		t.Fatal("dangling block not caught")
	}
}

func TestOracleStableAcrossOccurrences(t *testing.T) {
	o := NewOracle(5)
	a := o.Take(3, 0, 0.5)
	b := o.Take(3, 0, 0.5)
	if a != b {
		t.Fatal("oracle must be a pure function of (origID, occurrence)")
	}
	// Probability 0 and 1 are absolute.
	for i := 0; i < 50; i++ {
		if o.Take(9, i, 0) {
			t.Fatal("prob 0 must never be taken")
		}
		if !o.Take(9, i, 1) {
			t.Fatal("prob 1 must always be taken")
		}
	}
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		opc     ir.Opcode
		a, b, w int64
	}{
		{ir.Add, 3, 4, 7},
		{ir.Sub, 3, 4, -1},
		{ir.Mul, 3, 4, 12},
		{ir.Div, 12, 4, 3},
		{ir.Div, 12, 0, 0}, // guarded
		{ir.And, 6, 3, 2},
		{ir.Or, 6, 3, 7},
		{ir.Xor, 6, 3, 5},
		{ir.Shl, 1, 4, 16},
		{ir.Shr, 16, 4, 1},
	}
	for _, c := range cases {
		if got := ALU(c.opc, c.a, c.b); got != c.w {
			t.Errorf("ALU(%v, %d, %d) = %d, want %d", c.opc, c.a, c.b, got, c.w)
		}
	}
}

func TestCmppComplement(t *testing.T) {
	f := ir.NewFunction("cmpp")
	b := f.NewBlock()
	r0, r1 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	p, q := f.NewReg(ir.ClassPred), f.NewReg(ir.ClassPred)
	f.EmitMovI(b, r0, 5)
	f.EmitMovI(b, r1, 3)
	f.EmitCmpp(b, p, q, ir.CondGT, r0, r1)
	st := newState()
	for _, op := range b.Ops {
		st.exec(op)
	}
	if st.get(p) != 1 || st.get(q) != 0 {
		t.Fatalf("p=%d q=%d, want 1/0", st.get(p), st.get(q))
	}
}

func TestSyntheticMemoryDeterministic(t *testing.T) {
	if SyntheticMem(100) != SyntheticMem(100) {
		t.Fatal("synthetic memory must be deterministic")
	}
	// Load then store then load observes the store.
	st := newState()
	st.set(ir.GPR(0), 100)
	ld := &ir.Op{Opcode: ir.Ld, Dests: []ir.Reg{ir.GPR(1)}, Srcs: []ir.Reg{ir.GPR(0)}}
	st.exec(ld)
	if st.get(ir.GPR(1)) != SyntheticMem(100) {
		t.Fatal("first load must see synthetic memory")
	}
	st.mem[100] = 77
	st.exec(ld)
	if st.get(ir.GPR(1)) != 77 {
		t.Fatal("load after store must see the store")
	}
}
