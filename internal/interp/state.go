package interp

import "treegion/internal/ir"

// state is the machine state of one trip: register files and memory.
// Memory cells read before being written return a deterministic synthetic
// value derived from the address, so load-dependent computation still
// produces meaningful, reproducible store traces.
type state struct {
	regs map[ir.Reg]int64
	mem  map[int64]int64
}

func newState() *state {
	return &state{
		regs: make(map[ir.Reg]int64),
		mem:  make(map[int64]int64),
	}
}

func (s *state) get(r ir.Reg) int64 { return s.regs[r] }

func (s *state) set(r ir.Reg, v int64) {
	if r.IsValid() {
		s.regs[r] = v
	}
}

// SyntheticMem returns the initial content of an untouched memory cell.
func SyntheticMem(addr int64) int64 {
	x := uint64(addr) * 0x2545f4914f6cdd1d
	x ^= x >> 29
	return int64(x & 0xffff)
}

// exec evaluates one non-memory-write, non-control op. Guarded ops whose
// predicate is false are squashed.
func (s *state) exec(op *ir.Op) {
	if op.Guarded() && s.get(op.Guard) == 0 {
		return
	}
	switch op.Opcode {
	case ir.Nop, ir.Call, ir.Pbr:
		// Call is opaque; Pbr's BTR value is only meaningful to the
		// scheduler's dataflow, model it as the target block number.
		if op.Opcode == ir.Pbr {
			s.set(op.Dests[0], int64(op.Target))
		}
	case ir.MovI:
		s.set(op.Dests[0], op.Imm)
	case ir.Mov, ir.Copy:
		s.set(op.Dests[0], s.get(op.Srcs[0]))
	case ir.Ld:
		addr := s.get(op.Srcs[0]) + op.Imm
		v, ok := s.mem[addr]
		if !ok {
			v = SyntheticMem(addr)
		}
		s.set(op.Dests[0], v)
	case ir.Cmpp:
		a, b := s.get(op.Srcs[0]), s.get(op.Srcs[1])
		res := int64(0)
		if Compare(op.Cond, a, b) {
			res = 1
		}
		s.set(op.Dests[0], res)
		if len(op.Dests) > 1 {
			s.set(op.Dests[1], 1-res)
		}
	default:
		a, b := int64(0), int64(0)
		if len(op.Srcs) > 0 {
			a = s.get(op.Srcs[0])
		}
		if len(op.Srcs) > 1 {
			b = s.get(op.Srcs[1])
		}
		s.set(op.Dests[0], ALU(op.Opcode, a, b))
	}
}

// Compare evaluates a CMPP relation.
func Compare(c ir.Cond, a, b int64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

// ALU evaluates an integer/FP arithmetic opcode over 64-bit values.
func ALU(opc ir.Opcode, a, b int64) int64 {
	switch opc {
	case ir.Add, ir.FAdd:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul, ir.FMul:
		return a * b
	case ir.Div, ir.FDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	}
	return 0
}
