package interp

import (
	"fmt"

	"treegion/internal/ir"
)

// maxCallDepth bounds the call-frame stack of RunIn. Generated programs are
// shallow (calldeep chains are depth 3); the bound exists so accidental
// recursion surfaces as a deterministic error on both sides of a semantic
// comparison instead of a stack overflow.
const maxCallDepth = 64

// nsOrig maps an op/block Orig ID into the run's shared namespace: IDs below
// ir.OrigStride are native to the executing function and get the frame's
// base added; IDs at or above the stride were already namespaced by the
// inliner and pass through unchanged. The root frame runs at base 0, so a
// call-free function's trace and oracle keys are bit-identical to a legacy
// Run.
func nsOrig(base, orig int) int {
	if orig < ir.OrigStride {
		return base + orig
	}
	return orig
}

// RunIn executes fn once under the oracle, resolving Call ops against prog:
// a resolved call pushes a fresh register frame (params bound from the call's
// sources), executes the callee's body over the shared memory and oracle,
// and copies the callee's Rets into the call's destinations. Opaque calls
// (empty Callee, or nil prog) stay no-ops, exactly as in Run.
//
// Callee blocks are recorded in the trace under the callee's Orig namespace
// (prog.OrigBase), and after a call returns the caller's block is recorded
// again — the "resumption record". An inliner splice makes the same sequence
// observable directly (spliced clones carry namespaced Origs; the
// continuation block keeps the host block's Orig), so the block traces of an
// original program and its inlined compilation are comparable element for
// element.
func RunIn(prog *ir.Program, fn *ir.Function, o Oracle, cfg Config) (*Trace, error) {
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	r := &runner{
		prog:     prog,
		o:        o,
		maxSteps: maxSteps,
		tr:       &Trace{},
		occ:      make(map[int]int),
		mem:      make(map[int64]int64),
	}
	err := r.frame(fn, 0, 0, &state{regs: make(map[ir.Reg]int64), mem: r.mem})
	return r.tr, err
}

// runner is the shared state of one RunIn trip: the trace, the step budget,
// the branch-occurrence counters and the memory are global across call
// frames; registers are per-frame.
type runner struct {
	prog     *ir.Program
	o        Oracle
	maxSteps int
	tr       *Trace
	occ      map[int]int
	mem      map[int64]int64
}

func (r *runner) frame(fn *ir.Function, base, depth int, st *state) error {
	cur := fn.Entry
	for {
		b := fn.Block(cur)
		r.tr.Blocks = append(r.tr.Blocks, ir.BlockID(nsOrig(base, int(b.Orig))))
		next := b.FallThrough
		jumped := false
		done := false
		for _, op := range b.Ops {
			r.tr.Steps++
			if r.tr.Steps > r.maxSteps {
				return fmt.Errorf("interp: %s exceeded %d steps (runaway loop?)", fn.Name, r.maxSteps)
			}
			switch op.Opcode {
			case ir.Brct, ir.Brcf:
				key := nsOrig(base, op.Orig)
				n := r.occ[key]
				r.occ[key] = n + 1
				if r.o.Take(key, n, op.Prob) {
					next = op.Target
					jumped = true
				}
			case ir.Bru:
				next = op.Target
				jumped = true
			case ir.Ret:
				done = true
			case ir.St:
				if op.Guarded() && st.get(op.Guard) == 0 {
					break // squashed predicated store
				}
				addr := st.get(op.Srcs[0]) + op.Imm
				v := st.get(op.Srcs[1])
				st.mem[addr] = v
				r.tr.Stores = append(r.tr.Stores, StoreEvent{Addr: addr, Value: v})
			case ir.Call:
				callee := r.prog.Lookup(op.Callee)
				if callee == nil {
					st.exec(op) // opaque barrier, exactly as in Run
					break
				}
				if op.Guarded() && st.get(op.Guard) == 0 {
					break // squashed predicated call
				}
				if depth+1 > maxCallDepth {
					return fmt.Errorf("interp: %s: call depth exceeds %d (recursion?)", fn.Name, maxCallDepth)
				}
				if len(op.Srcs) != len(callee.Params) || len(op.Dests) != len(callee.Rets) {
					return fmt.Errorf("interp: %s: call @%s passes %d args/%d results, want %d/%d",
						fn.Name, op.Callee, len(op.Srcs), len(op.Dests),
						len(callee.Params), len(callee.Rets))
				}
				cst := &state{regs: make(map[ir.Reg]int64), mem: st.mem}
				for i, p := range callee.Params {
					cst.set(p, st.get(op.Srcs[i]))
				}
				cbase := r.prog.OrigBase(r.prog.Index(op.Callee))
				if err := r.frame(callee, cbase, depth+1, cst); err != nil {
					return err
				}
				for i, d := range op.Dests {
					st.set(d, cst.get(callee.Rets[i]))
				}
				// Resumption record: control re-enters the caller's block.
				// The inliner's continuation split (which keeps the host
				// block's Orig) makes the same re-entry observable, so both
				// sides of a differential check log it.
				r.tr.Blocks = append(r.tr.Blocks, ir.BlockID(nsOrig(base, int(b.Orig))))
			default:
				st.exec(op)
			}
			if jumped || done {
				break
			}
		}
		if done {
			return nil
		}
		if next == ir.NoBlock {
			return fmt.Errorf("interp: %s: bb%d has no successor and no RET", fn.Name, cur)
		}
		cur = next
	}
}
