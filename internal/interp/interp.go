// Package interp executes ir.Functions. It plays two roles:
//
//  1. Profiler. Running a function many times with a stochastic branch
//     oracle produces the block/edge counts that stand in for the paper's
//     SPEC training-input profiles.
//  2. Semantics checker. Because the oracle keys every decision off the
//     *original* branch op (duplicates share Orig), the same seed drives the
//     same logical path through a function before and after a
//     CFG-duplicating transformation. Comparing observable traces (stores,
//     visited original blocks) then verifies that region formation preserved
//     program behaviour.
//
// Data values are computed for real (loads read a deterministic synthetic
// memory; ALU ops do 64-bit arithmetic) so store traces carry information,
// but *control* follows the oracle rather than computed predicates — this is
// what lets the generator dial in the branch biases the paper's analysis
// depends on (biased, wide-shallow, and linearized treegions).
package interp

import (
	"fmt"

	"treegion/internal/ir"
	"treegion/internal/profile"
)

// Oracle decides conditional branches. origID is the Orig field of the
// branch op (stable across tail duplication) and occurrence is how many
// times that original branch has executed so far in this trip, so a
// decision stream replays identically across CFG transformations.
type Oracle interface {
	Take(origID, occurrence int, prob float64) bool
}

// hashOracle draws deterministic pseudo-random decisions from a seed.
type hashOracle struct{ seed uint64 }

// NewOracle returns a deterministic Oracle for the given seed.
func NewOracle(seed uint64) Oracle { return &hashOracle{seed: seed} }

func (h *hashOracle) Take(origID, occurrence int, prob float64) bool {
	x := h.seed
	x ^= uint64(origID) * 0x9e3779b97f4a7c15
	x ^= uint64(occurrence) * 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return u < prob
}

// StoreEvent is one observable store.
type StoreEvent struct {
	Addr  int64
	Value int64
}

// Trace is the observable behaviour of one trip through a function.
type Trace struct {
	// Blocks is the sequence of *original* block IDs visited, so traces are
	// comparable across tail duplication.
	Blocks []ir.BlockID
	// Stores is the sequence of memory writes.
	Stores []StoreEvent
	// Steps is the number of ops executed.
	Steps int
}

// Config bounds a run.
type Config struct {
	MaxSteps int // per trip; 0 means a generous default
}

const defaultMaxSteps = 200000

// Run executes fn once under the oracle and returns its trace. It reports
// an error if the trip exceeds the step bound (runaway loop) or executes an
// ill-formed op.
func Run(fn *ir.Function, o Oracle, cfg Config) (*Trace, error) {
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	st := newState()
	tr := &Trace{}
	occ := make(map[int]int)
	cur := fn.Entry
	for {
		b := fn.Block(cur)
		tr.Blocks = append(tr.Blocks, b.Orig)
		next := b.FallThrough
		jumped := false
		done := false
		for _, op := range b.Ops {
			tr.Steps++
			if tr.Steps > maxSteps {
				return tr, fmt.Errorf("interp: %s exceeded %d steps (runaway loop?)", fn.Name, maxSteps)
			}
			switch op.Opcode {
			case ir.Brct, ir.Brcf:
				n := occ[op.Orig]
				occ[op.Orig] = n + 1
				if o.Take(op.Orig, n, op.Prob) {
					next = op.Target
					jumped = true
				}
			case ir.Bru:
				next = op.Target
				jumped = true
			case ir.Ret:
				done = true
			case ir.St:
				if op.Guarded() && st.get(op.Guard) == 0 {
					break // squashed predicated store
				}
				addr := st.get(op.Srcs[0]) + op.Imm
				v := st.get(op.Srcs[1])
				st.mem[addr] = v
				tr.Stores = append(tr.Stores, StoreEvent{Addr: addr, Value: v})
			default:
				st.exec(op)
			}
			if jumped || done {
				break
			}
		}
		if done {
			return tr, nil
		}
		if next == ir.NoBlock {
			return tr, fmt.Errorf("interp: %s: bb%d has no successor and no RET", fn.Name, cur)
		}
		cur = next
	}
}

// Profile runs fn `trips` times with seeds seed, seed+1, ... and accumulates
// block and edge counts. Each trip's visited path contributes to the
// profile keyed by the *current* block IDs (not originals), since region
// formation operates on the current CFG.
func Profile(fn *ir.Function, seed uint64, trips int, cfg Config) (*profile.Data, error) {
	d := profile.New()
	for t := 0; t < trips; t++ {
		if err := profileTrip(fn, NewOracle(seed+uint64(t)), cfg, d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func profileTrip(fn *ir.Function, o Oracle, cfg Config, d *profile.Data) error {
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	occ := make(map[int]int)
	cur := fn.Entry
	steps := 0
	for {
		b := fn.Block(cur)
		d.AddBlock(cur, 1)
		next := b.FallThrough
		jumped := false
		done := false
		for _, op := range b.Ops {
			steps++
			if steps > maxSteps {
				return fmt.Errorf("interp: profiling %s exceeded %d steps", fn.Name, maxSteps)
			}
			switch op.Opcode {
			case ir.Brct, ir.Brcf:
				n := occ[op.Orig]
				occ[op.Orig] = n + 1
				if o.Take(op.Orig, n, op.Prob) {
					next = op.Target
					jumped = true
				}
			case ir.Bru:
				next = op.Target
				jumped = true
			case ir.Ret:
				done = true
			}
			if jumped || done {
				break
			}
		}
		if done {
			return nil
		}
		if next == ir.NoBlock {
			return fmt.Errorf("interp: %s: bb%d has no successor and no RET", fn.Name, cur)
		}
		d.AddEdge(cur, next, 1)
		cur = next
	}
}
