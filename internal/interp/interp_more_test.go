package interp

import (
	"testing"

	"treegion/internal/ir"
)

func TestGuardedOpsSquash(t *testing.T) {
	// v = 7; p = (1 > 2) = false; (p) v = 9; store v  → 7.
	f := ir.NewFunction("g")
	b := f.NewBlock()
	a1, a2 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	v := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(b, a1, 1)
	f.EmitMovI(b, a2, 2)
	f.EmitMovI(b, v, 7)
	f.EmitCmpp(b, p, ir.NoReg, ir.CondGT, a1, a2)
	g := f.EmitMovI(b, v, 9)
	g.Guard = p
	f.EmitSt(b, a1, 0, v)
	f.EmitRet(b)
	tr, err := Run(f, NewOracle(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 7 {
		t.Fatalf("stores = %v, want value 7", tr.Stores)
	}

	// Flip the condition: the guarded op fires.
	f.Block(0).Ops[3].Cond = ir.CondLT
	tr, err = Run(f, NewOracle(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stores[0].Value != 9 {
		t.Fatalf("guarded op did not fire: %v", tr.Stores)
	}
}

func TestGuardedStoreSquash(t *testing.T) {
	f := ir.NewFunction("gs")
	b := f.NewBlock()
	a := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(b, a, 5)
	f.EmitCmpp(b, p, ir.NoReg, ir.CondGT, a, a) // false
	st := f.EmitSt(b, a, 0, a)
	st.Guard = p
	f.EmitRet(b)
	tr, err := Run(f, NewOracle(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 0 {
		t.Fatalf("guarded store executed despite false predicate: %v", tr.Stores)
	}
}

func TestBruFollowed(t *testing.T) {
	f := ir.NewFunction("bru")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.EmitBru(b0, ir.NoReg, b2.ID)
	f.EmitRet(b1) // unreachable
	f.EmitSt(b2, ir.GPR(0), 0, ir.GPR(0))
	f.EmitRet(b2)
	tr, err := Run(f, NewOracle(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != 2 || tr.Blocks[1] != b2.ID {
		t.Fatalf("path = %v, want bb0 -> bb2", tr.Blocks)
	}
	if len(tr.Stores) != 1 {
		t.Fatal("bb2's store missing")
	}
}

func TestCallIsOpaqueNoop(t *testing.T) {
	f := ir.NewFunction("call")
	b := f.NewBlock()
	v := f.NewReg(ir.ClassGPR)
	f.EmitMovI(b, v, 3)
	call := f.NewOp(ir.Call)
	b.Ops = append(b.Ops, call)
	f.EmitSt(b, v, 0, v)
	f.EmitRet(b)
	tr, err := Run(f, NewOracle(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 3 {
		t.Fatalf("stores = %v", tr.Stores)
	}
}

func TestProfileEdgeKeysMatchCurrentBlocks(t *testing.T) {
	// Profiling counts current block IDs (not originals), which is what
	// region formation needs after tail duplication.
	f := ir.NewFunction("ids")
	b0, b1 := f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	dup := f.DuplicateBlock(b1) // carries its own RET copy; unreachable
	d, err := Profile(f, 1, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.BlockWeight(b1.ID) != 5 || d.BlockWeight(dup.ID) != 0 {
		t.Fatalf("weights: bb1=%v dup=%v", d.BlockWeight(b1.ID), d.BlockWeight(dup.ID))
	}
}
