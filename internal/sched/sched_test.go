package sched

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/linear"
	"treegion/internal/machine"
	"treegion/internal/progen"
	"treegion/internal/region"
)

func depHeight(n *ddg.Node) [3]float64 {
	return core.DepHeight.Keys(n)
}

func buildGraph(t *testing.T, f *ir.Function, r *region.Region) *ddg.Graph {
	t.Helper()
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleRespectsLatency(t *testing.T) {
	f := ir.NewFunction("lat")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	a := f.NewReg(ir.ClassGPR)
	c := f.NewReg(ir.ClassGPR)
	ld := f.EmitLd(b0, a, r0, 0)
	add := f.EmitALU(b0, ir.Add, c, a, a)
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.FourU, depHeight)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Cycle[g.NodeOf(add).Index]-s.Cycle[g.NodeOf(ld).Index] < 2 {
		t.Fatal("load latency not respected")
	}
}

func TestScheduleRespectsWidth(t *testing.T) {
	f := ir.NewFunction("wide")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	// Eight independent ops: on a 4-wide machine they need 2 cycles; on a
	// 1-wide machine, 8.
	for i := 0; i < 8; i++ {
		f.EmitALU(b0, ir.Add, f.NewReg(ir.ClassGPR), r0, r0)
	}
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)

	s4 := ListSchedule(g, machine.FourU, depHeight)
	if err := s4.Verify(); err != nil {
		t.Fatal(err)
	}
	// 8 adds in 2 cycles, Ret pinned after... Ret has op->term lat-0 edges,
	// so it can share the last cycle if a slot is free; 8 adds fill exactly
	// 2 rows, Ret goes in row 2 (or later).
	if s4.Length > 3 {
		t.Fatalf("4U length = %d, want <= 3", s4.Length)
	}

	s1 := ListSchedule(g, machine.Scalar, depHeight)
	if err := s1.Verify(); err != nil {
		t.Fatal(err)
	}
	if s1.Length < 9 {
		t.Fatalf("1U length = %d, want >= 9", s1.Length)
	}
}

func TestScheduleSpeculatesAcrossPaths(t *testing.T) {
	// Treegion with two arms of independent work: a wide machine should
	// hoist ops from both arms beside the root's work.
	f := ir.NewFunction("spec")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0, r1 := ir.GPR(0), ir.GPR(1)
	f.NoteReg(r0)
	f.NoteReg(r1)
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r1)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	for i := 0; i < 3; i++ {
		f.EmitALU(b1, ir.Add, f.NewReg(ir.ClassGPR), r0, r1)
		f.EmitALU(b2, ir.Sub, f.NewReg(ir.ClassGPR), r0, r1)
	}
	b1.FallThrough = b3.ID
	b2.FallThrough = b3.ID
	f.EmitRet(b3)
	r := region.New(f, region.KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)
	r.Add(b2.ID, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.EightU, depHeight)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := s.SpeculatedAbove(); got < 4 {
		t.Fatalf("SpeculatedAbove = %d, want most arm ops hoisted", got)
	}
	// All 6 arm ops plus the compare fit beside each other: the branch
	// resolves at cycle 1, so the whole region fits in 2-3 cycles.
	if s.Length > 3 {
		t.Fatalf("8U treegion length = %d, want <= 3\n%s", s.Length, s)
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	f := ir.NewFunction("det")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	for i := 0; i < 10; i++ {
		f.EmitALU(b0, ir.Add, f.NewReg(ir.ClassGPR), r0, r0)
	}
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	a := ListSchedule(g, machine.FourU, depHeight)
	b := ListSchedule(g, machine.FourU, depHeight)
	for i := range a.Cycle {
		if a.Cycle[i] != b.Cycle[i] {
			t.Fatal("nondeterministic schedule")
		}
	}
}

func TestEmptyRegion(t *testing.T) {
	f := ir.NewFunction("empty")
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.FourU, depHeight)
	if s.Length != 0 {
		t.Fatalf("empty block schedule length = %d", s.Length)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The big integration property: every region former × every heuristic ×
// both machines produces schedules that pass the checker, on every suite
// program.
func TestAllSchedulesValidOnSuite(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	models := []machine.Model{machine.FourU, machine.EightU}
	for _, prog := range progs[:3] { // compress, gcc, go — keep runtime sane
		for fi, origFn := range prog.Funcs {
			if fi > 1 {
				break
			}
			for _, former := range []string{"bb", "slr", "tree", "sb", "treetd"} {
				fn := origFn.Clone()
				prof, err := interp.Profile(fn, 21, 30, interp.Config{})
				if err != nil {
					t.Fatal(err)
				}
				g := cfg.New(fn)
				var regions []*region.Region
				domPar := false
				switch former {
				case "bb":
					regions = linear.BasicBlocks(fn)
				case "slr":
					regions = linear.SLRs(fn, g, prof)
				case "tree":
					regions = core.Form(fn, g)
				case "sb":
					regions = linear.Superblocks(fn, prof, linear.DefaultSuperblockConfig())
				case "treetd":
					regions = core.FormTD(fn, prof, core.DefaultTDConfig())
					domPar = true
				}
				if err := region.CheckPartition(fn, regions); err != nil {
					t.Fatalf("%s/%s/%s: %v", prog.Name, fn.Name, former, err)
				}
				lv := cfg.ComputeLiveness(cfg.New(fn))
				for _, r := range regions {
					dg, err := ddg.Build(fn, r, ddg.Options{
						Rename:               true,
						DominatorParallelism: domPar,
						Liveness:             lv,
						Profile:              prof,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, h := range core.Heuristics() {
						for _, m := range models {
							s := ListSchedule(dg, m, h.Keys)
							if err := s.Verify(); err != nil {
								t.Fatalf("%s/%s former=%s h=%v m=%s: %v",
									prog.Name, fn.Name, former, h, m.Name, err)
							}
						}
					}
				}
			}
		}
	}
}
