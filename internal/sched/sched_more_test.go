package sched

import (
	"sort"
	"testing"

	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/region"
)

func TestCopiesAreSlotFree(t *testing.T) {
	// Five independent MOVIs plus a Copy: on a 4-wide machine everything
	// with real slots needs 2 cycles, but if the copy's operand is ready it
	// must not consume a slot.
	f := ir.NewFunction("cp")
	b0 := f.NewBlock()
	src := f.NewReg(ir.ClassGPR)
	f.EmitMovI(b0, src, 1)
	cp := f.NewOp(ir.Copy)
	cp.Dests = []ir.Reg{f.NewReg(ir.ClassGPR)}
	cp.Srcs = []ir.Reg{src}
	b0.Ops = append(b0.Ops, cp)
	for i := 0; i < 3; i++ {
		f.EmitMovI(b0, f.NewReg(ir.ClassGPR), int64(i))
	}
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.FourU, depHeight)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// 4 MOVIs fill cycle 0; the copy waits on its operand (lat 1) and then
	// rides free in cycle 1 beside nothing else... total length 2.
	if s.Length > 2 {
		t.Fatalf("schedule length %d, want <= 2 (copies ride free)\n%s", s.Length, s)
	}
	// Real-slot count per cycle never exceeds the width even though the
	// copy shares a row.
	perCycle := map[int]int{}
	for _, n := range g.Nodes {
		if !n.IsCopy() {
			perCycle[s.Cycle[n.Index]]++
		}
	}
	cycles := make([]int, 0, len(perCycle))
	for c := range perCycle {
		cycles = append(cycles, c)
	}
	sort.Ints(cycles)
	for _, c := range cycles {
		if k := perCycle[c]; k > 4 {
			t.Fatalf("cycle %d issues %d real ops", c, k)
		}
	}
}

func TestEagerTerminatorsToggle(t *testing.T) {
	// With eager terminators a data-ready branch issues before taller ALU
	// chains; with the knob off, the chain wins the slot on a 1-wide
	// machine and the branch slips.
	build := func() (*ddg.Graph, *ir.Op) {
		f := ir.NewFunction("et")
		b0, tgt, ft := f.NewBlock(), f.NewBlock(), f.NewBlock()
		r0 := ir.GPR(0)
		f.NoteReg(r0)
		p := f.NewReg(ir.ClassPred)
		f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r0)
		// A three-deep chain with greater height than the branch.
		a := f.NewReg(ir.ClassGPR)
		c := f.NewReg(ir.ClassGPR)
		d := f.NewReg(ir.ClassGPR)
		f.EmitALU(b0, ir.Add, a, r0, r0)
		f.EmitALU(b0, ir.Add, c, a, r0)
		f.EmitALU(b0, ir.Add, d, c, r0)
		br := f.EmitBrct(b0, ir.NoReg, p, tgt.ID, 0.5)
		b0.FallThrough = ft.ID
		// The chain result d is dead at both exits, so the chain may sink
		// below the branch; only the priority order decides who goes first.
		_ = d
		f.EmitSt(tgt, r0, 0, r0)
		f.EmitRet(tgt)
		f.EmitSt(ft, r0, 8, r0)
		f.EmitRet(ft)
		r := region.New(f, region.KindBasicBlock, b0.ID)
		return buildGraph(t, f, r), br
	}

	g1, br1 := build()
	s1 := ListSchedule(g1, machine.Scalar, depHeight)
	eagerCycle := s1.Cycle[g1.NodeOf(br1).Index]

	old := EagerTerminators
	EagerTerminators = false
	defer func() { EagerTerminators = old }()
	g2, br2 := build()
	s2 := ListSchedule(g2, machine.Scalar, depHeight)
	lazyCycle := s2.Cycle[g2.NodeOf(br2).Index]

	if err := s1.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Verify(); err != nil {
		t.Fatal(err)
	}
	if eagerCycle >= lazyCycle {
		t.Fatalf("eager branch at %d, lazy at %d: the knob has no effect", eagerCycle, lazyCycle)
	}
}

func TestSixteenWide(t *testing.T) {
	f := ir.NewFunction("w16")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	for i := 0; i < 16; i++ {
		f.EmitALU(b0, ir.Add, f.NewReg(ir.ClassGPR), r0, r0)
	}
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.SixteenU, depHeight)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Length > 2 {
		t.Fatalf("16 independent ops on 16U took %d cycles", s.Length)
	}
}

func TestScheduleStringShowsRows(t *testing.T) {
	f := ir.NewFunction("str")
	b0 := f.NewBlock()
	f.EmitMovI(b0, f.NewReg(ir.ClassGPR), 7)
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.FourU, depHeight)
	out := s.String()
	if out == "" || len(out) < 10 {
		t.Fatalf("String() = %q", out)
	}
}

func TestPriorityOrderingUsedForSlots(t *testing.T) {
	// Two independent chains, one twice as heavy by weight; on a 1-wide
	// machine the global-weight heuristic must schedule the heavy chain's
	// ops first.
	f := ir.NewFunction("prio")
	b0, hot, cold, join := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0 := ir.GPR(0)
	f.NoteReg(r0)
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r0)
	f.EmitBrct(b0, ir.NoReg, p, hot.ID, 0.9)
	b0.FallThrough = cold.ID
	hotOp := f.EmitALU(hot, ir.Add, f.NewReg(ir.ClassGPR), r0, r0)
	hot.FallThrough = join.ID
	coldOp := f.EmitALU(cold, ir.Sub, f.NewReg(ir.ClassGPR), r0, r0)
	cold.FallThrough = join.ID
	f.EmitRet(join)
	r := region.New(f, region.KindTreegion, b0.ID)
	r.Add(hot.ID, b0.ID)
	r.Add(cold.ID, b0.ID)

	g := buildGraph(t, f, r)
	// Fake weights directly on the nodes (no profile needed).
	for _, n := range g.Nodes {
		switch n.Home {
		case hot.ID:
			n.Weight = 90
		case cold.ID:
			n.Weight = 10
		}
	}
	s := ListSchedule(g, machine.Scalar, core.GlobalWeight.Keys)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Cycle[g.NodeOf(hotOp).Index] >= s.Cycle[g.NodeOf(coldOp).Index] {
		t.Fatal("global weight did not prioritize the hot path's op")
	}
}
