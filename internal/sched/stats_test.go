package sched

import (
	"testing"

	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/region"
)

// specTreegion builds the two-armed treegion of
// TestScheduleSpeculatesAcrossPaths: a root compare+branch with three
// independent ops on each arm, wide enough to hoist everything.
func specTreegion(t *testing.T) *Schedule {
	t.Helper()
	f := ir.NewFunction("spec")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0, r1 := ir.GPR(0), ir.GPR(1)
	f.NoteReg(r0)
	f.NoteReg(r1)
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r1)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	for i := 0; i < 3; i++ {
		f.EmitALU(b1, ir.Add, f.NewReg(ir.ClassGPR), r0, r1)
		f.EmitALU(b2, ir.Sub, f.NewReg(ir.ClassGPR), r0, r1)
	}
	b1.FallThrough = b3.ID
	b2.FallThrough = b3.ID
	f.EmitRet(b3)
	r := region.New(f, region.KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)
	r.Add(b2.ID, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.EightU, depHeight)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStatsMatchesSchedule(t *testing.T) {
	s := specTreegion(t)
	st := s.Stats()
	if st.Ops != len(s.Graph.Nodes) {
		t.Errorf("Ops = %d, want %d", st.Ops, len(s.Graph.Nodes))
	}
	if st.Length != s.Length {
		t.Errorf("Length = %d, want %d", st.Length, s.Length)
	}
	if st.Speculated != s.SpeculatedAbove() {
		t.Errorf("Speculated = %d, want SpeculatedAbove() = %d", st.Speculated, s.SpeculatedAbove())
	}
	if st.Speculated < 4 {
		t.Errorf("Speculated = %d, want most arm ops hoisted", st.Speculated)
	}
	// The region has one conditional branch; only the branch terminator
	// counts (bb3 with the Ret is outside the region).
	if st.Branches != 1 {
		t.Errorf("Branches = %d, want 1", st.Branches)
	}
	if st.BranchCycles != 1 || st.MaxBranchesPerCycle != 1 || st.PredicatedCycles != 0 {
		t.Errorf("branch packing = %d cycles, max %d, predicated %d; want 1/1/0",
			st.BranchCycles, st.MaxBranchesPerCycle, st.PredicatedCycles)
	}
}

func TestStatsSingleBlock(t *testing.T) {
	f := ir.NewFunction("bb")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	f.EmitALU(b0, ir.Add, f.NewReg(ir.ClassGPR), r0, r0)
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	g := buildGraph(t, f, r)
	s := ListSchedule(g, machine.FourU, depHeight)
	st := s.Stats()
	if st.Speculated != 0 {
		t.Errorf("basic block speculated %d ops", st.Speculated)
	}
	// The Ret is the block's only terminator.
	if st.Branches != 1 || st.BranchCycles != 1 {
		t.Errorf("Branches = %d, BranchCycles = %d, want 1/1", st.Branches, st.BranchCycles)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Ops: 10, Copies: 1, Branches: 3, Length: 5, Speculated: 2,
		BranchCycles: 3, PredicatedCycles: 1, MaxBranchesPerCycle: 2}
	b := Stats{Ops: 4, Branches: 1, Length: 2, BranchCycles: 1, MaxBranchesPerCycle: 3}
	got := a.Add(b)
	want := Stats{Ops: 14, Copies: 1, Branches: 4, Length: 7, Speculated: 2,
		BranchCycles: 4, PredicatedCycles: 1, MaxBranchesPerCycle: 3}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	if got.BranchesPerCycle() != 1.0 {
		t.Errorf("BranchesPerCycle = %v, want 1.0", got.BranchesPerCycle())
	}
	if (Stats{}).BranchesPerCycle() != 0 {
		t.Error("zero stats BranchesPerCycle != 0")
	}
}
