package sched

import "math/bits"

// This file implements the scheduler's ready queues as hierarchical CLZ
// bitmaps over the dense rank space (DESIGN §16). Since PR 5 every node
// carries a rank in [0,n) — its position in the static priority order — so
// a priority queue over ranks is just a bit set with fast find-minimum:
//
//   - level 0 has one bit per rank, minimum-first: rank r lives at bit
//     63-(r&63) of word r>>6, so bits.LeadingZeros64 on a word yields the
//     smallest rank it holds;
//   - level k+1 has one bit per level-k word, set iff that word is nonzero.
//
// The top level is always a single word, so find-minimum is depth CLZ
// steps (depth ≤ 2 for n ≤ 4096, ≤ 3 for n ≤ 262144): read the top word,
// CLZ to the first nonzero child, descend. Insert and delete touch at most
// depth words each, and stop as soon as a summary bit is already correct —
// O(1) against the heap's O(log n), with no branches on comparison order.
//
// The same structure backs all three queues: cur (pop-min per issue slot),
// next (bulk word-at-a-time drain into cur at sweep boundaries), and each
// bucket of the calendar that replaces the future heap (see calendar).

// bitqMaxDepth covers rank spaces up to 64^4 = 16.7M nodes, far beyond any
// region the generators or the stress tiers produce.
const bitqMaxDepth = 4

// bitq is one hierarchical bitmap queue. Its level slices are carved from a
// Scratch-owned slab (see Scratch.reset), so queue operations never
// allocate; the drain invariant — every schedule ends with all queues
// empty — keeps the slab all-zero between calls without explicit clearing.
type bitq struct {
	lvl   [bitqMaxDepth][]uint64 // lvl[0] = rank words; lvl[k] summarizes lvl[k-1]
	depth int32
	n     int32 // population count
}

// bitqSize computes the per-level word counts for a space of n values and
// the resulting depth and total word footprint. The top level is always a
// single word.
func bitqSize(n int) (lvl [bitqMaxDepth]int, depth, total int) {
	w := (n + 63) >> 6
	if w < 1 {
		w = 1
	}
	for {
		lvl[depth] = w
		total += w
		depth++
		if w == 1 {
			return
		}
		w = (w + 63) >> 6
	}
}

// carve points q's levels into slab starting at off and returns the new
// offset. The slab words must be zero (guaranteed by the drain invariant,
// or by the dirty-slab sweep in Scratch.reset after an aborted call).
func (q *bitq) carve(slab []uint64, off int, lvl [bitqMaxDepth]int, depth int) int {
	q.depth = int32(depth)
	q.n = 0
	for l := 0; l < depth; l++ {
		q.lvl[l] = slab[off : off+lvl[l]]
		off += lvl[l]
	}
	return off
}

// firstWord descends the summaries to the index of the first nonzero
// level-0 word. Requires q.n > 0.
func (q *bitq) firstWord() int {
	w := 0
	for l := int(q.depth) - 1; l >= 1; l-- {
		w = w<<6 + bits.LeadingZeros64(q.lvl[l][w])
	}
	return w
}

// setSummary propagates "level-0 word w became nonzero" upward, stopping at
// the first summary word that was already nonzero.
func (q *bitq) setSummary(w int) {
	for l := 1; l < int(q.depth); l++ {
		parent := w >> 6
		old := q.lvl[l][parent]
		q.lvl[l][parent] = old | uint64(1)<<63>>(uint(w)&63)
		if old != 0 {
			return
		}
		w = parent
	}
}

// clearSummary propagates "level-0 word w became zero" upward, stopping at
// the first summary word that stays nonzero.
func (q *bitq) clearSummary(w int) {
	for l := 1; l < int(q.depth); l++ {
		parent := w >> 6
		q.lvl[l][parent] &^= uint64(1) << 63 >> (uint(w) & 63)
		if q.lvl[l][parent] != 0 {
			return
		}
		w = parent
	}
}

// insert adds rank r. Ranks are unique per region and live in at most one
// queue at a time, so r is never already present.
func (q *bitq) insert(r int32) {
	w := int(r) >> 6
	old := q.lvl[0][w]
	q.lvl[0][w] = old | uint64(1)<<63>>(uint32(r)&63)
	q.n++
	if old == 0 {
		q.setSummary(w)
	}
}

// popMin removes and returns the smallest rank. Requires q.n > 0.
func (q *bitq) popMin() int32 {
	w := q.firstWord()
	word := q.lvl[0][w]
	b := bits.LeadingZeros64(word)
	word &^= uint64(1) << 63 >> uint(b)
	q.lvl[0][w] = word
	q.n--
	if word == 0 {
		q.clearSummary(w)
	}
	return int32(w<<6 + b)
}

// drainInto moves every rank from q into dst, whole words at a time: the
// source summaries locate each nonzero word, which is OR-ed into dst and
// cleared here. Both queues must span the same rank space. Cost is
// O(populated words), not O(rank space), so sweep promotion on a sparse
// next set touches only the words that matter.
func (q *bitq) drainInto(dst *bitq) {
	for q.n > 0 {
		w := q.firstWord()
		word := q.lvl[0][w]
		cnt := int32(bits.OnesCount64(word))
		q.lvl[0][w] = 0
		q.clearSummary(w)
		q.n -= cnt
		old := dst.lvl[0][w]
		dst.lvl[0][w] = old | word
		dst.n += cnt
		if old == 0 {
			dst.setSummary(w)
		}
	}
}

// calendar replaces the (earliest, rank) future heap. All pending entries
// have earliest in (cycle, cycle+maxLat], a window of at most maxLat
// distinct values, so a ring of W = pow2 ≥ maxLat+1 buckets indexed by
// earliest&(W-1) never aliases two live earliest values to one bucket: a
// nonempty bucket holds exactly one earliest value, and the bucket due at
// the current cycle drains whole. The occupancy word occ mirrors bucket
// emptiness minimum-first (bucket b at bit W-1-b of the low W bits), so
// "jump to the minimum pending earliest" — the heap peek this structure
// replaces — is one rotate plus one CLZ (nextEarliest).
//
// The machine models cap edge latency at 9 (FDiv), giving W = 16 in
// production; the single-word occupancy supports any latency up to 63.
type calendar struct {
	buckets []bitq
	occ     uint64
	w       int32 // bucket count, power of two in [1, 64]
	mask    int32 // w - 1
	n       int32
}

// insert files rank r under its earliest-issue cycle.
func (c *calendar) insert(earliest, r int32) {
	b := earliest & c.mask
	q := &c.buckets[b]
	if q.n == 0 {
		c.occ |= uint64(1) << (uint32(c.w-1) - uint32(b))
	}
	q.insert(r)
	c.n++
}

// drainDue moves every rank whose earliest equals cycle into dst. By the
// window invariant that is exactly the content of bucket cycle&mask.
func (c *calendar) drainDue(cycle int32, dst *bitq) {
	b := cycle & c.mask
	q := &c.buckets[b]
	if q.n == 0 {
		return
	}
	c.occ &^= uint64(1) << (uint32(c.w-1) - uint32(b))
	c.n -= q.n
	q.drainInto(dst)
}

// nextEarliest returns the smallest pending earliest, which is strictly
// greater than cycle (the caller drained the due bucket first). The
// occupancy word is rotated so the bucket for cycle+1 lands at the top of
// the W-bit field; the leading-zero distance to the first set bit is then
// the jump distance minus one. Requires c.n > 0.
func (c *calendar) nextEarliest(cycle int32) int32 {
	if c.occ == 0 {
		panic("sched: calendar jump with no pending nodes (cyclic DDG?)")
	}
	k := uint32(cycle+1) & uint32(c.mask)
	v := c.occ
	rv := (v<<k | v>>(uint32(c.w)-k)) & (uint64(1)<<uint32(c.w) - 1)
	d := int32(c.w) - int32(bits.Len64(rv))
	return cycle + 1 + d
}
