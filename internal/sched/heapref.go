package sched

import (
	"sync"

	"treegion/internal/ddg"
	"treegion/internal/machine"
)

// This file retains the pre-bitmap heap scheduler verbatim as a reference
// implementation. It is not a production path: the differential tests in
// sched_ref_test.go assert byte-identical schedules between it and the
// bitmap queues, and BenchmarkColdCompileSched uses it as the heap-era
// baseline for the speedup metric. It keeps its own scratch slices (the
// cur/next/future fields of Scratch) so the comparison measures queue
// mechanics, not allocator noise.

// heapScratchPool recycles reference-scheduler scratch without touching the
// production pool's carved bitmaps.
var heapScratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// ListScheduleHeapRef schedules g with the retained rank min-heaps — the
// pre-bitmap implementation. Schedules are byte-identical to ListSchedule;
// see ListScheduleTraced for the sweep semantics both reproduce.
func ListScheduleHeapRef(g *ddg.Graph, m machine.Model, prio PriorityFn) *Schedule {
	sc := heapScratchPool.Get().(*Scratch)
	defer heapScratchPool.Put(sc)
	return ListScheduleHeapRefScratch(g, m, prio, sc)
}

// ListScheduleHeapRefScratch is ListScheduleHeapRef scheduling into a
// caller-owned Scratch (benchmarks pass one so the heap-vs-bitmap
// comparison has identical allocation behavior).
func ListScheduleHeapRefScratch(g *ddg.Graph, m machine.Model, prio PriorityFn, sc *Scratch) *Schedule {
	n := len(g.Nodes)
	s := &Schedule{Graph: g, Model: m, Cycle: make([]int, n)}
	if n == 0 {
		return s
	}
	sc.reset(n)
	prioritize(g, prio, sc)

	order := sc.order
	rankOf, preds, earliest := sc.rankOf, sc.preds, sc.earliest
	cur, next, future := sc.cur, sc.next, sc.future
	for _, nd := range g.Nodes {
		preds[nd.Index] = int32(len(nd.Preds))
		if preds[nd.Index] == 0 {
			rankPush(&cur, rankOf[nd.Index])
		}
	}

	remaining := n
	cycle := int32(0)
	for remaining > 0 {
		// A new cycle starts a fresh sweep: everything ready is eligible.
		for _, r := range next {
			rankPush(&cur, r)
		}
		next = next[:0]
		for len(future) > 0 && int32(future[0]>>32) <= cycle {
			rankPush(&cur, int32(futPop(&future)&0xffffffff))
		}
		if len(cur) == 0 {
			// Nothing eligible: jump to the next cycle at which something
			// becomes ready.
			jump := int32(future[0] >> 32)
			if jump <= cycle {
				jump = cycle + 1
			}
			cycle = jump
			continue
		}
		slots := m.IssueWidth
		lastPopped := int32(-1)
		for slots > 0 {
			if len(cur) == 0 {
				if len(next) == 0 {
					break
				}
				// The sweep passed some nodes that became ready behind it;
				// rescan from the top (same cycle, fresh sweep).
				for _, r := range next {
					rankPush(&cur, r)
				}
				next = next[:0]
				lastPopped = -1
				continue
			}
			rank := rankPop(&cur)
			nd := order[rank]
			i := nd.Index
			s.Cycle[i] = int(cycle)
			remaining--
			if !nd.IsCopy() {
				// Renaming copies ride free (see ListScheduleScratch).
				slots--
			}
			lastPopped = rank
			for _, e := range nd.Succs {
				j := e.To.Index
				preds[j]--
				if t := cycle + int32(e.Latency); t > earliest[j] {
					earliest[j] = t
				}
				if preds[j] == 0 {
					switch {
					case earliest[j] > cycle:
						futPush(&future, uint64(earliest[j])<<32|uint64(rankOf[j]))
					case rankOf[j] > lastPopped:
						rankPush(&cur, rankOf[j])
					default:
						next = append(next, rankOf[j])
					}
				}
			}
		}
		cycle++
	}
	sc.cur, sc.next, sc.future = cur, next, future

	for _, nd := range g.Nodes {
		if c := s.Cycle[nd.Index] + 1; c > s.Length {
			s.Length = c
		}
	}
	return s
}

// Rank min-heap over int32 (reference implementation only).
func rankPush(h *[]int32, v int32) {
	a := append(*h, v)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func rankPop(h *[]int32) int32 {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && a[l] < a[m] {
			m = l
		}
		if r < last && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	*h = a
	return top
}

// (earliest, rank) min-heap packed into uint64 (reference only).
func futPush(h *[]uint64, v uint64) {
	a := append(*h, v)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func futPop(h *[]uint64) uint64 {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && a[l] < a[m] {
			m = l
		}
		if r < last && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	*h = a
	return top
}
