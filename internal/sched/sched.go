// Package sched list schedules a region's DDG onto a VLIW machine model
// (step 3 of the paper's Fig. 3 algorithm). The scheduler is cycle-driven:
// at each cycle it fills up to issue-width slots with ready ops, picking by
// the static priority order the chosen heuristic produced. Speculation is
// implicit — ops without control edges simply become ready early and float
// above branches.
package sched

import (
	"fmt"
	"sort"
	"time"

	"treegion/internal/ddg"
	"treegion/internal/machine"
	"treegion/internal/telemetry"
)

// EagerTerminators makes terminators sort ahead of every other op so each
// branch issues at its earliest data-ready cycle (the behaviour the paper's
// example schedules show). It is exported as an ablation knob for the
// scheduling-policy benchmarks; the default matches the paper.
var EagerTerminators = true

// PriorityFn produces a node's static sort keys, most significant first;
// nodes are ordered by descending keys (ties by node index, which follows
// region preorder, keeping schedules deterministic).
type PriorityFn func(*ddg.Node) [3]float64

// Schedule is the placement of every DDG node into a cycle.
type Schedule struct {
	Graph *ddg.Graph
	Model machine.Model
	// Cycle[i] is the issue cycle of node with Index i.
	Cycle []int
	// Length is the total schedule length in cycles.
	Length int
}

// ListSchedule builds the schedule. It never fails: the DDG is acyclic by
// construction (node order is topological).
func ListSchedule(g *ddg.Graph, m machine.Model, prio PriorityFn) *Schedule {
	return ListScheduleTraced(g, m, prio, nil)
}

// ListScheduleTraced is ListSchedule recording the priority sort and the
// scheduling loop as separate phases on tr (nil disables tracing).
func ListScheduleTraced(g *ddg.Graph, m machine.Model, prio PriorityFn, tr *telemetry.CompileTrace) *Schedule {
	n := len(g.Nodes)
	s := &Schedule{Graph: g, Model: m, Cycle: make([]int, n)}
	if n == 0 {
		return s
	}
	t0 := time.Now()

	// Static priority order. Terminators always sort first: a branch gates
	// every exit below it, predicated branches pack several to a cycle, and
	// delaying one delays a whole path — so they issue as soon as their
	// predicate is ready, and the heuristic orders the real ops. (The
	// paper's example schedules likewise issue every branch at its earliest
	// possible cycle.)
	order := make([]*ddg.Node, n)
	copy(order, g.Nodes)
	keys := make([][3]float64, n)
	for _, nd := range g.Nodes {
		keys[nd.Index] = prio(nd)
	}
	sort.SliceStable(order, func(i, j int) bool {
		ni, nj := order[i], order[j]
		if EagerTerminators && ni.Term != nj.Term {
			return ni.Term
		}
		a, b := keys[ni.Index], keys[nj.Index]
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] > b[k]
			}
		}
		return ni.Index < nj.Index
	})
	tr.Observe(telemetry.PhasePrioritySort, time.Since(t0), n)

	t0 = time.Now()
	unscheduledPreds := make([]int, n)
	earliest := make([]int, n)
	for _, nd := range g.Nodes {
		unscheduledPreds[nd.Index] = len(nd.Preds)
	}
	scheduled := make([]bool, n)
	remaining := n
	cycle := 0
	for remaining > 0 {
		slots := m.IssueWidth
		progress := false
		// Latency-0 edges let an op and its dependent share a cycle, so a
		// single pass can leave same-cycle-ready work behind; sweep until
		// the cycle fills or stabilizes.
		for again := true; again && slots > 0; {
			again = false
			for _, nd := range order {
				if slots == 0 {
					break
				}
				i := nd.Index
				if scheduled[i] || unscheduledPreds[i] > 0 || earliest[i] > cycle {
					continue
				}
				s.Cycle[i] = cycle
				scheduled[i] = true
				remaining--
				if !nd.IsCopy() {
					// Renaming copies ride free: the paper excludes copy
					// Ops from its speedup accounting (a copy-coalescing
					// phase or spare move capacity is assumed), so they
					// must not crowd real ops out of issue slots either.
					slots--
				}
				progress = true
				for _, e := range nd.Succs {
					j := e.To.Index
					unscheduledPreds[j]--
					if t := cycle + e.Latency; t > earliest[j] {
						earliest[j] = t
					}
					if e.Latency == 0 {
						again = true
					}
				}
			}
		}
		if remaining == 0 {
			break
		}
		if !progress {
			// Jump to the next cycle at which something can become ready.
			next := -1
			for _, nd := range g.Nodes {
				i := nd.Index
				if scheduled[i] || unscheduledPreds[i] > 0 {
					continue
				}
				if next < 0 || earliest[i] < next {
					next = earliest[i]
				}
			}
			if next <= cycle {
				next = cycle + 1
			}
			cycle = next
			continue
		}
		cycle++
	}
	for _, nd := range g.Nodes {
		if c := s.Cycle[nd.Index] + 1; c > s.Length {
			s.Length = c
		}
	}
	tr.Observe(telemetry.PhaseListSched, time.Since(t0), n)
	return s
}

// Verify checks the schedule against every DDG edge and the machine's issue
// width. It returns the first violation, or nil.
func (s *Schedule) Verify() error {
	perCycle := make(map[int]int)
	for _, nd := range s.Graph.Nodes {
		c := s.Cycle[nd.Index]
		if c < 0 {
			return fmt.Errorf("sched: node %d (%v) unscheduled", nd.Index, nd.Op)
		}
		if !nd.IsCopy() { // copies are slot-free (see ListSchedule)
			perCycle[c]++
		}
		for _, e := range nd.Succs {
			if s.Cycle[e.To.Index] < c+e.Latency {
				return fmt.Errorf("sched: edge %v -> %v violated: %d -> %d (lat %d)",
					nd.Op, e.To.Op, c, s.Cycle[e.To.Index], e.Latency)
			}
		}
	}
	for c, k := range perCycle {
		if k > s.Model.IssueWidth {
			return fmt.Errorf("sched: cycle %d issues %d ops on a %d-wide machine", c, k, s.Model.IssueWidth)
		}
	}
	return nil
}

// SpeculatedAbove counts the ops placed at cycles earlier than some branch
// of an ancestor block — the amount of speculation the schedule performs.
// Renaming copies are not counted.
func (s *Schedule) SpeculatedAbove() int {
	r := s.Graph.Region
	// Latest terminator cycle per block.
	lastTerm := make(map[int]int) // blockID -> cycle
	for _, nd := range s.Graph.Nodes {
		if nd.Term {
			if c, ok := lastTerm[int(nd.Home)]; !ok || s.Cycle[nd.Index] > c {
				lastTerm[int(nd.Home)] = s.Cycle[nd.Index]
			}
		}
	}
	count := 0
	for _, nd := range s.Graph.Nodes {
		if nd.Term || nd.IsCopy() {
			continue
		}
		for _, anc := range r.Ancestors(nd.Home) {
			if tc, ok := lastTerm[int(anc)]; ok && s.Cycle[nd.Index] < tc {
				count++
				break
			}
		}
	}
	return count
}

// String renders the schedule as MultiOp rows.
func (s *Schedule) String() string {
	rows := make([][]*ddg.Node, s.Length)
	for _, nd := range s.Graph.Nodes {
		c := s.Cycle[nd.Index]
		rows[c] = append(rows[c], nd)
	}
	out := ""
	for c, row := range rows {
		out += fmt.Sprintf("%3d:", c)
		for _, nd := range row {
			out += fmt.Sprintf("  [bb%d] %v", nd.Home, nd.Op)
		}
		out += "\n"
	}
	return out
}
