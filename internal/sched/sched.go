// Package sched list schedules a region's DDG onto a VLIW machine model
// (step 3 of the paper's Fig. 3 algorithm). The scheduler is cycle-driven:
// at each cycle it fills up to issue-width slots with ready ops, picking by
// the static priority order the chosen heuristic produced. Speculation is
// implicit — ops without control edges simply become ready early and float
// above branches.
package sched

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/telemetry"
)

// EagerTerminators makes terminators sort ahead of every other op so each
// branch issues at its earliest data-ready cycle (the behaviour the paper's
// example schedules show). It is exported as an ablation knob for the
// scheduling-policy benchmarks; the default matches the paper.
var EagerTerminators = true

// PriorityFn produces a node's static sort keys, most significant first;
// nodes are ordered by descending keys (ties by node index, which follows
// region preorder, keeping schedules deterministic).
type PriorityFn func(*ddg.Node) [3]float64

// Schedule is the placement of every DDG node into a cycle.
type Schedule struct {
	Graph *ddg.Graph
	Model machine.Model
	// Cycle[i] is the issue cycle of node with Index i.
	Cycle []int
	// Length is the total schedule length in cycles.
	Length int
}

// Scratch holds the scheduler's per-call working set. A caller that owns a
// Scratch (the batched pipeline gives each worker one) reuses the buffers
// across every region it schedules via ListScheduleScratch; callers without
// one go through a shared sync.Pool instead, so the buffers are still
// recycled, just with cross-worker round trips.
//
// The ready queues are hierarchical CLZ bitmaps over the rank space (see
// bitq.go): qcur/qnext share one word slab, the calendar's buckets another.
// Both slabs rely on the drain invariant — every completed schedule leaves
// all queues empty, so the slabs are all-zero between calls and reset never
// sweeps them. qdirty guards the one exception: a call that panicked midway
// (the pipeline recovers per-function and reuses the worker's arena) leaves
// bits behind, so the next reset clears the slabs explicitly.
type Scratch struct {
	order    []*ddg.Node
	keys     [][3]float64
	rankOf   []int32
	preds    []int32
	earliest []int32

	qcur    bitq     // ranks eligible in the current sweep
	qnext   bitq     // ranks readied behind the sweep position
	qcal    calendar // not-yet-eligible ranks bucketed by earliest
	qslab   []uint64 // backing words for qcur and qnext
	calslab []uint64 // backing words for the calendar buckets
	qdirty  bool

	occ telemetry.ReadyOccupancySample

	cur    []int32  // heap reference only: min-heap of ready ranks
	next   []int32  // heap reference only: ranks readied behind the sweep
	future []uint64 // heap reference only: min-heap of earliest<<32|rank
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

func (sc *Scratch) reset(n int) {
	if cap(sc.order) < n {
		sc.order = make([]*ddg.Node, n)
		sc.keys = make([][3]float64, n)
		sc.rankOf = make([]int32, n)
		sc.preds = make([]int32, n)
		sc.earliest = make([]int32, n)
	}
	sc.order = sc.order[:n]
	sc.keys = sc.keys[:n]
	sc.rankOf = sc.rankOf[:n]
	sc.preds = sc.preds[:n]
	sc.earliest = sc.earliest[:n]
	for i := 0; i < n; i++ {
		sc.earliest[i] = 0
	}
	sc.cur = sc.cur[:0]
	sc.next = sc.next[:0]
	sc.future = sc.future[:0]
}

// resetQueues carves the cur/next bitmaps and the calendar for a rank space
// of n and a maximum edge latency of maxLat, growing the slabs on first use
// or when a region outgrows them. Steady state allocates nothing: the slabs
// are already zero (drain invariant) and the carves only re-point slices.
func (sc *Scratch) resetQueues(n, maxLat int) {
	lvl, depth, per := bitqSize(n)
	w := 1
	for w < maxLat+1 {
		w <<= 1
	}
	if w > 64 {
		panic(fmt.Sprintf("sched: edge latency %d exceeds the calendar's 63-cycle capacity", maxLat))
	}

	if need := 2 * per; cap(sc.qslab) < need {
		sc.qslab = make([]uint64, need)
	} else {
		sc.qslab = sc.qslab[:need]
	}
	if need := w * per; cap(sc.calslab) < need {
		sc.calslab = make([]uint64, need)
	} else {
		sc.calslab = sc.calslab[:need]
	}
	if cap(sc.qcal.buckets) < w {
		sc.qcal.buckets = make([]bitq, w)
	}
	sc.qcal.buckets = sc.qcal.buckets[:w]
	if sc.qdirty {
		clear(sc.qslab[:cap(sc.qslab)])
		clear(sc.calslab[:cap(sc.calslab)])
	}
	sc.qdirty = true

	off := sc.qcur.carve(sc.qslab, 0, lvl, depth)
	sc.qnext.carve(sc.qslab, off, lvl, depth)
	sc.qcal.w, sc.qcal.mask, sc.qcal.n, sc.qcal.occ = int32(w), int32(w-1), 0, 0
	off = 0
	for b := 0; b < w; b++ {
		off = sc.qcal.buckets[b].carve(sc.calslab, off, lvl, depth)
	}
}

// prioritize fills sc.order with g.Nodes in static priority order and
// sc.rankOf with each node's resulting rank. Terminators always sort
// first: a branch gates every exit below it, predicated branches pack
// several to a cycle, and delaying one delays a whole path — so they issue
// as soon as their predicate is ready, and the heuristic orders the real
// ops. (The paper's example schedules likewise issue every branch at its
// earliest possible cycle.) Shared by the bitmap scheduler and the
// retained heap reference so both schedule the identical rank space.
func prioritize(g *ddg.Graph, prio PriorityFn, sc *Scratch) {
	order := sc.order
	copy(order, g.Nodes)
	keys := sc.keys
	for _, nd := range g.Nodes {
		keys[nd.Index] = prio(nd)
	}
	// The Index tiebreak makes the comparison a total order, so the
	// unstable sort returns the same permutation a stable one would —
	// at pdqsort speed rather than symmerge. The sort is over half the
	// scheduler's time on stress-tier regions.
	slices.SortFunc(order, func(a, b *ddg.Node) int {
		if EagerTerminators && a.Term != b.Term {
			if a.Term {
				return -1
			}
			return 1
		}
		ka, kb := keys[a.Index], keys[b.Index]
		for k := 0; k < 3; k++ {
			if ka[k] != kb[k] {
				if ka[k] > kb[k] {
					return -1
				}
				return 1
			}
		}
		return a.Index - b.Index
	})
	for rank, nd := range order {
		sc.rankOf[nd.Index] = int32(rank)
	}
}

// ListSchedule builds the schedule. It never fails: the DDG is acyclic by
// construction (node order is topological).
func ListSchedule(g *ddg.Graph, m machine.Model, prio PriorityFn) *Schedule {
	return ListScheduleTraced(g, m, prio, nil)
}

// ListScheduleTraced is ListSchedule recording the priority sort and the
// scheduling loop as separate phases on tr (nil disables tracing).
//
// The ready queue is a trio of hierarchical CLZ bitmaps over the static
// rank order (bitq.go), engineered to reproduce the classic sweep
// scheduler op for op:
//
//   - cur holds the ranks eligible in the current sweep; popping the
//     minimum visits ready nodes in exactly the order a linear scan of the
//     rank array would.
//   - A node readied by a latency-0 edge joins cur only if its rank lies
//     ahead of the sweep position (the last rank popped); otherwise the
//     scan has already passed it, and it goes to next — the following
//     sweep of the same cycle, which starts when cur drains.
//   - Nodes ready but with earliest-issue beyond the current cycle wait in
//     the calendar bucketed by earliest; when nothing is eligible the
//     cycle jumps straight to the minimum pending earliest (one CLZ).
//
// Every pop therefore yields precisely the node the legacy scheduler would
// have picked next, at the same cycle — schedules are byte-identical (the
// retained heap reference, ListScheduleHeapRef, is the differential
// witness) — but each readiness event costs O(1) instead of O(log n).
func ListScheduleTraced(g *ddg.Graph, m machine.Model, prio PriorityFn, tr *telemetry.CompileTrace) *Schedule {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return ListScheduleScratch(g, m, prio, tr, sc)
}

// ListScheduleScratch is ListScheduleTraced scheduling into a caller-owned
// Scratch. A worker that schedules many regions back to back (the batched
// pipeline) passes the same Scratch every time and never touches the shared
// pool. nil falls back to the pooled path.
func ListScheduleScratch(g *ddg.Graph, m machine.Model, prio PriorityFn, tr *telemetry.CompileTrace, sc *Scratch) *Schedule {
	if sc == nil {
		return ListScheduleTraced(g, m, prio, tr)
	}
	n := len(g.Nodes)
	s := &Schedule{Graph: g, Model: m, Cycle: make([]int, n)}
	if n == 0 {
		return s
	}
	t0 := time.Now()
	a0 := telemetry.AllocMark()

	sc.reset(n)
	prioritize(g, prio, sc)
	tr.ObserveAllocs(telemetry.PhasePrioritySort, a0)
	tr.Observe(telemetry.PhasePrioritySort, time.Since(t0), n)

	t0 = time.Now()
	a0 = telemetry.AllocMark()
	order := sc.order
	rankOf, preds, earliest := sc.rankOf, sc.preds, sc.earliest
	maxLat := 0
	for _, nd := range g.Nodes {
		preds[nd.Index] = int32(len(nd.Preds))
		for _, e := range nd.Succs {
			if e.Latency > maxLat {
				maxLat = e.Latency
			}
		}
	}
	sc.resetQueues(n, maxLat)
	cur, next, cal := &sc.qcur, &sc.qnext, &sc.qcal
	for _, nd := range g.Nodes {
		if preds[nd.Index] == 0 {
			cur.insert(rankOf[nd.Index])
		}
	}

	remaining := n
	cycle := int32(0)
	for remaining > 0 {
		// A new cycle starts a fresh sweep: everything ready is eligible.
		next.drainInto(cur)
		cal.drainDue(cycle, cur)
		if cur.n == 0 {
			// Nothing eligible: jump to the next cycle at which something
			// becomes ready.
			cycle = cal.nextEarliest(cycle)
			continue
		}
		sc.occ.Observe(int(cur.n))
		slots := m.IssueWidth
		lastPopped := int32(-1)
		for slots > 0 {
			if cur.n == 0 {
				if next.n == 0 {
					break
				}
				// The sweep passed some nodes that became ready behind it;
				// rescan from the top (same cycle, fresh sweep).
				next.drainInto(cur)
				lastPopped = -1
				continue
			}
			rank := cur.popMin()
			nd := order[rank]
			i := nd.Index
			s.Cycle[i] = int(cycle)
			remaining--
			if !nd.IsCopy() {
				// Renaming copies ride free: the paper excludes copy
				// Ops from its speedup accounting (a copy-coalescing
				// phase or spare move capacity is assumed), so they
				// must not crowd real ops out of issue slots either.
				slots--
			}
			lastPopped = rank
			for _, e := range nd.Succs {
				j := e.To.Index
				preds[j]--
				if t := cycle + int32(e.Latency); t > earliest[j] {
					earliest[j] = t
				}
				if preds[j] == 0 {
					switch {
					case earliest[j] > cycle:
						cal.insert(earliest[j], rankOf[j])
					case rankOf[j] > lastPopped:
						cur.insert(rankOf[j])
					default:
						next.insert(rankOf[j])
					}
				}
			}
		}
		cycle++
	}
	// Every node issued, so every queue drained back to empty: the slabs are
	// all-zero again and the next reset can skip sweeping them.
	sc.qdirty = false
	sc.occ.Flush()

	for _, nd := range g.Nodes {
		if c := s.Cycle[nd.Index] + 1; c > s.Length {
			s.Length = c
		}
	}
	tr.ObserveAllocs(telemetry.PhaseListSched, a0)
	tr.Observe(telemetry.PhaseListSched, time.Since(t0), n)
	return s
}

// Verify checks the schedule against every DDG edge and the machine's issue
// width. It returns the first violation, or nil.
func (s *Schedule) Verify() error {
	perCycle := make([]int, s.Length)
	for _, nd := range s.Graph.Nodes {
		c := s.Cycle[nd.Index]
		if c < 0 {
			return fmt.Errorf("sched: node %d (%v) unscheduled", nd.Index, nd.Op)
		}
		if !nd.IsCopy() && c < len(perCycle) { // copies are slot-free (see ListSchedule)
			perCycle[c]++
		}
		for _, e := range nd.Succs {
			if s.Cycle[e.To.Index] < c+e.Latency {
				return fmt.Errorf("sched: edge %v -> %v violated: %d -> %d (lat %d)",
					nd.Op, e.To.Op, c, s.Cycle[e.To.Index], e.Latency)
			}
		}
	}
	for c, k := range perCycle {
		if k > s.Model.IssueWidth {
			return fmt.Errorf("sched: cycle %d issues %d ops on a %d-wide machine", c, k, s.Model.IssueWidth)
		}
	}
	return nil
}

// SpeculatedAbove counts the ops placed at cycles earlier than some branch
// of an ancestor block — the amount of speculation the schedule performs.
// Renaming copies are not counted.
func (s *Schedule) SpeculatedAbove() int {
	r := s.Graph.Region
	// Latest terminator cycle per block (-1 = no terminator).
	lastTerm := make([]int, len(s.Graph.Fn.Blocks))
	for i := range lastTerm {
		lastTerm[i] = -1
	}
	for _, nd := range s.Graph.Nodes {
		if nd.Term && s.Cycle[nd.Index] > lastTerm[nd.Home] {
			lastTerm[nd.Home] = s.Cycle[nd.Index]
		}
	}
	count := 0
	for _, nd := range s.Graph.Nodes {
		if nd.Term || nd.IsCopy() {
			continue
		}
		for anc := r.Parent(nd.Home); anc != ir.NoBlock; anc = r.Parent(anc) {
			if tc := lastTerm[anc]; tc >= 0 && s.Cycle[nd.Index] < tc {
				count++
				break
			}
		}
	}
	return count
}

// String renders the schedule as MultiOp rows.
func (s *Schedule) String() string {
	rows := make([][]*ddg.Node, s.Length)
	for _, nd := range s.Graph.Nodes {
		c := s.Cycle[nd.Index]
		rows[c] = append(rows[c], nd)
	}
	out := ""
	for c, row := range rows {
		out += fmt.Sprintf("%3d:", c)
		for _, nd := range row {
			out += fmt.Sprintf("  [bb%d] %v", nd.Home, nd.Op)
		}
		out += "\n"
	}
	return out
}
