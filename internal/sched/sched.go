// Package sched list schedules a region's DDG onto a VLIW machine model
// (step 3 of the paper's Fig. 3 algorithm). The scheduler is cycle-driven:
// at each cycle it fills up to issue-width slots with ready ops, picking by
// the static priority order the chosen heuristic produced. Speculation is
// implicit — ops without control edges simply become ready early and float
// above branches.
package sched

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/telemetry"
)

// EagerTerminators makes terminators sort ahead of every other op so each
// branch issues at its earliest data-ready cycle (the behaviour the paper's
// example schedules show). It is exported as an ablation knob for the
// scheduling-policy benchmarks; the default matches the paper.
var EagerTerminators = true

// PriorityFn produces a node's static sort keys, most significant first;
// nodes are ordered by descending keys (ties by node index, which follows
// region preorder, keeping schedules deterministic).
type PriorityFn func(*ddg.Node) [3]float64

// Schedule is the placement of every DDG node into a cycle.
type Schedule struct {
	Graph *ddg.Graph
	Model machine.Model
	// Cycle[i] is the issue cycle of node with Index i.
	Cycle []int
	// Length is the total schedule length in cycles.
	Length int
}

// Scratch holds the scheduler's per-call working set. A caller that owns a
// Scratch (the batched pipeline gives each worker one) reuses the buffers
// across every region it schedules via ListScheduleScratch; callers without
// one go through a shared sync.Pool instead, so the buffers are still
// recycled, just with cross-worker round trips.
type Scratch struct {
	order    []*ddg.Node
	keys     [][3]float64
	rankOf   []int32
	preds    []int32
	earliest []int32
	cur      []int32  // min-heap of ranks ready in the current sweep
	next     []int32  // ranks that became ready behind the sweep position
	future   []uint64 // min-heap of earliest<<32|rank for not-yet-eligible nodes
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

func (sc *Scratch) reset(n int) {
	if cap(sc.order) < n {
		sc.order = make([]*ddg.Node, n)
		sc.keys = make([][3]float64, n)
		sc.rankOf = make([]int32, n)
		sc.preds = make([]int32, n)
		sc.earliest = make([]int32, n)
	}
	sc.order = sc.order[:n]
	sc.keys = sc.keys[:n]
	sc.rankOf = sc.rankOf[:n]
	sc.preds = sc.preds[:n]
	sc.earliest = sc.earliest[:n]
	for i := 0; i < n; i++ {
		sc.earliest[i] = 0
	}
	sc.cur = sc.cur[:0]
	sc.next = sc.next[:0]
	sc.future = sc.future[:0]
}

// Rank min-heap over int32.
func rankPush(h *[]int32, v int32) {
	a := append(*h, v)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func rankPop(h *[]int32) int32 {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && a[l] < a[m] {
			m = l
		}
		if r < last && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	*h = a
	return top
}

// (earliest, rank) min-heap packed into uint64.
func futPush(h *[]uint64, v uint64) {
	a := append(*h, v)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func futPop(h *[]uint64) uint64 {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && a[l] < a[m] {
			m = l
		}
		if r < last && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	*h = a
	return top
}

// ListSchedule builds the schedule. It never fails: the DDG is acyclic by
// construction (node order is topological).
func ListSchedule(g *ddg.Graph, m machine.Model, prio PriorityFn) *Schedule {
	return ListScheduleTraced(g, m, prio, nil)
}

// ListScheduleTraced is ListSchedule recording the priority sort and the
// scheduling loop as separate phases on tr (nil disables tracing).
//
// The ready queue is a pair of priority heaps over the static rank order,
// engineered to reproduce the classic sweep scheduler op for op:
//
//   - cur holds the ranks eligible in the current sweep; popping the
//     minimum visits ready nodes in exactly the order a linear scan of the
//     rank array would.
//   - A node readied by a latency-0 edge joins cur only if its rank lies
//     ahead of the sweep position (the last rank popped); otherwise the
//     scan has already passed it, and it goes to next — the following
//     sweep of the same cycle, which starts when cur drains.
//   - Nodes ready but with earliest-issue beyond the current cycle wait in
//     future keyed by (earliest, rank); when nothing is eligible the cycle
//     jumps straight to the heap's minimum earliest.
//
// Every pop therefore yields precisely the node the legacy scheduler would
// have picked next, at the same cycle — schedules are byte-identical — but
// each readiness event costs O(log n) instead of a rescan of the rank array.
func ListScheduleTraced(g *ddg.Graph, m machine.Model, prio PriorityFn, tr *telemetry.CompileTrace) *Schedule {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return ListScheduleScratch(g, m, prio, tr, sc)
}

// ListScheduleScratch is ListScheduleTraced scheduling into a caller-owned
// Scratch. A worker that schedules many regions back to back (the batched
// pipeline) passes the same Scratch every time and never touches the shared
// pool. nil falls back to the pooled path.
func ListScheduleScratch(g *ddg.Graph, m machine.Model, prio PriorityFn, tr *telemetry.CompileTrace, sc *Scratch) *Schedule {
	if sc == nil {
		return ListScheduleTraced(g, m, prio, tr)
	}
	n := len(g.Nodes)
	s := &Schedule{Graph: g, Model: m, Cycle: make([]int, n)}
	if n == 0 {
		return s
	}
	t0 := time.Now()
	a0 := telemetry.AllocMark()

	sc.reset(n)

	// Static priority order. Terminators always sort first: a branch gates
	// every exit below it, predicated branches pack several to a cycle, and
	// delaying one delays a whole path — so they issue as soon as their
	// predicate is ready, and the heuristic orders the real ops. (The
	// paper's example schedules likewise issue every branch at its earliest
	// possible cycle.)
	order := sc.order
	copy(order, g.Nodes)
	keys := sc.keys
	for _, nd := range g.Nodes {
		keys[nd.Index] = prio(nd)
	}
	slices.SortStableFunc(order, func(a, b *ddg.Node) int {
		if EagerTerminators && a.Term != b.Term {
			if a.Term {
				return -1
			}
			return 1
		}
		ka, kb := keys[a.Index], keys[b.Index]
		for k := 0; k < 3; k++ {
			if ka[k] != kb[k] {
				if ka[k] > kb[k] {
					return -1
				}
				return 1
			}
		}
		return a.Index - b.Index
	})
	tr.ObserveAllocs(telemetry.PhasePrioritySort, a0)
	tr.Observe(telemetry.PhasePrioritySort, time.Since(t0), n)

	t0 = time.Now()
	a0 = telemetry.AllocMark()
	rankOf, preds, earliest := sc.rankOf, sc.preds, sc.earliest
	for rank, nd := range order {
		rankOf[nd.Index] = int32(rank)
	}
	cur, next, future := sc.cur, sc.next, sc.future
	for _, nd := range g.Nodes {
		preds[nd.Index] = int32(len(nd.Preds))
		if preds[nd.Index] == 0 {
			rankPush(&cur, rankOf[nd.Index])
		}
	}

	remaining := n
	cycle := int32(0)
	for remaining > 0 {
		// A new cycle starts a fresh sweep: everything ready is eligible.
		for _, r := range next {
			rankPush(&cur, r)
		}
		next = next[:0]
		for len(future) > 0 && int32(future[0]>>32) <= cycle {
			rankPush(&cur, int32(futPop(&future)&0xffffffff))
		}
		if len(cur) == 0 {
			// Nothing eligible: jump to the next cycle at which something
			// becomes ready.
			jump := int32(future[0] >> 32)
			if jump <= cycle {
				jump = cycle + 1
			}
			cycle = jump
			continue
		}
		slots := m.IssueWidth
		lastPopped := int32(-1)
		for slots > 0 {
			if len(cur) == 0 {
				if len(next) == 0 {
					break
				}
				// The sweep passed some nodes that became ready behind it;
				// rescan from the top (same cycle, fresh sweep).
				for _, r := range next {
					rankPush(&cur, r)
				}
				next = next[:0]
				lastPopped = -1
				continue
			}
			rank := rankPop(&cur)
			nd := order[rank]
			i := nd.Index
			s.Cycle[i] = int(cycle)
			remaining--
			if !nd.IsCopy() {
				// Renaming copies ride free: the paper excludes copy
				// Ops from its speedup accounting (a copy-coalescing
				// phase or spare move capacity is assumed), so they
				// must not crowd real ops out of issue slots either.
				slots--
			}
			lastPopped = rank
			for _, e := range nd.Succs {
				j := e.To.Index
				preds[j]--
				if t := cycle + int32(e.Latency); t > earliest[j] {
					earliest[j] = t
				}
				if preds[j] == 0 {
					switch {
					case earliest[j] > cycle:
						futPush(&future, uint64(earliest[j])<<32|uint64(rankOf[j]))
					case rankOf[j] > lastPopped:
						rankPush(&cur, rankOf[j])
					default:
						next = append(next, rankOf[j])
					}
				}
			}
		}
		cycle++
	}
	sc.cur, sc.next, sc.future = cur, next, future

	for _, nd := range g.Nodes {
		if c := s.Cycle[nd.Index] + 1; c > s.Length {
			s.Length = c
		}
	}
	tr.ObserveAllocs(telemetry.PhaseListSched, a0)
	tr.Observe(telemetry.PhaseListSched, time.Since(t0), n)
	return s
}

// Verify checks the schedule against every DDG edge and the machine's issue
// width. It returns the first violation, or nil.
func (s *Schedule) Verify() error {
	perCycle := make([]int, s.Length)
	for _, nd := range s.Graph.Nodes {
		c := s.Cycle[nd.Index]
		if c < 0 {
			return fmt.Errorf("sched: node %d (%v) unscheduled", nd.Index, nd.Op)
		}
		if !nd.IsCopy() && c < len(perCycle) { // copies are slot-free (see ListSchedule)
			perCycle[c]++
		}
		for _, e := range nd.Succs {
			if s.Cycle[e.To.Index] < c+e.Latency {
				return fmt.Errorf("sched: edge %v -> %v violated: %d -> %d (lat %d)",
					nd.Op, e.To.Op, c, s.Cycle[e.To.Index], e.Latency)
			}
		}
	}
	for c, k := range perCycle {
		if k > s.Model.IssueWidth {
			return fmt.Errorf("sched: cycle %d issues %d ops on a %d-wide machine", c, k, s.Model.IssueWidth)
		}
	}
	return nil
}

// SpeculatedAbove counts the ops placed at cycles earlier than some branch
// of an ancestor block — the amount of speculation the schedule performs.
// Renaming copies are not counted.
func (s *Schedule) SpeculatedAbove() int {
	r := s.Graph.Region
	// Latest terminator cycle per block (-1 = no terminator).
	lastTerm := make([]int, len(s.Graph.Fn.Blocks))
	for i := range lastTerm {
		lastTerm[i] = -1
	}
	for _, nd := range s.Graph.Nodes {
		if nd.Term && s.Cycle[nd.Index] > lastTerm[nd.Home] {
			lastTerm[nd.Home] = s.Cycle[nd.Index]
		}
	}
	count := 0
	for _, nd := range s.Graph.Nodes {
		if nd.Term || nd.IsCopy() {
			continue
		}
		for anc := r.Parent(nd.Home); anc != ir.NoBlock; anc = r.Parent(anc) {
			if tc := lastTerm[anc]; tc >= 0 && s.Cycle[nd.Index] < tc {
				count++
				break
			}
		}
	}
	return count
}

// String renders the schedule as MultiOp rows.
func (s *Schedule) String() string {
	rows := make([][]*ddg.Node, s.Length)
	for _, nd := range s.Graph.Nodes {
		c := s.Cycle[nd.Index]
		rows[c] = append(rows[c], nd)
	}
	out := ""
	for c, row := range rows {
		out += fmt.Sprintf("%3d:", c)
		for _, nd := range row {
			out += fmt.Sprintf("  [bb%d] %v", nd.Home, nd.Op)
		}
		out += "\n"
	}
	return out
}
