package sched

// Stats summarizes one schedule for the telemetry layer: how much work it
// placed, how much of it was speculative, and how densely branches pack
// into MultiOps — the quantities behind the paper's Figs. 6–10 discussion
// of why treegions win.
type Stats struct {
	// Ops counts scheduled DDG nodes, renaming copies included.
	Ops int
	// Copies counts renaming copy ops.
	Copies int
	// Branches counts terminator ops (branches and returns).
	Branches int
	// Length is the schedule length in cycles (summed when aggregated).
	Length int
	// Speculated counts ops placed above an ancestor block's branch
	// (Schedule.SpeculatedAbove).
	Speculated int
	// BranchCycles counts cycles issuing at least one branch.
	BranchCycles int
	// PredicatedCycles counts cycles issuing two or more branches — the
	// predicated multi-branch MultiOps of the paper's Section 2 machine.
	PredicatedCycles int
	// MaxBranchesPerCycle is the densest branch packing observed.
	MaxBranchesPerCycle int
}

// Stats measures the schedule. All counts derive only from node placement,
// so they are deterministic in the compile inputs.
func (s *Schedule) Stats() Stats {
	st := Stats{Ops: len(s.Graph.Nodes), Length: s.Length, Speculated: s.SpeculatedAbove()}
	branchesAt := make(map[int]int)
	for _, nd := range s.Graph.Nodes {
		if nd.IsCopy() {
			st.Copies++
		}
		if nd.Term {
			st.Branches++
			branchesAt[s.Cycle[nd.Index]]++
		}
	}
	//det:ordered commutative fold: counts and a max over map values, no key reaches the output
	for _, k := range branchesAt {
		st.BranchCycles++
		if k > 1 {
			st.PredicatedCycles++
		}
		if k > st.MaxBranchesPerCycle {
			st.MaxBranchesPerCycle = k
		}
	}
	return st
}

// Add merges two stats: counts and lengths sum, maxima take the max.
func (s Stats) Add(o Stats) Stats {
	s.Ops += o.Ops
	s.Copies += o.Copies
	s.Branches += o.Branches
	s.Length += o.Length
	s.Speculated += o.Speculated
	s.BranchCycles += o.BranchCycles
	s.PredicatedCycles += o.PredicatedCycles
	if o.MaxBranchesPerCycle > s.MaxBranchesPerCycle {
		s.MaxBranchesPerCycle = o.MaxBranchesPerCycle
	}
	return s
}

// BranchesPerCycle is the average branch density over branch-issuing
// cycles — above 1.0 means the machine's predicated multiway branching is
// actually being used.
func (s Stats) BranchesPerCycle() float64 {
	if s.BranchCycles == 0 {
		return 0
	}
	return float64(s.Branches) / float64(s.BranchCycles)
}
