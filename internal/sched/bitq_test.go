package sched

import (
	"math/rand"
	"testing"

	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
)

// Unit tests for the hierarchical bitmap queue and the calendar, plus the
// adversarial rank-space shapes that stress their boundaries: rank values
// straddling level-0 and level-1 word seams, every pending node landing in
// one calendar bucket, and latency-0 chains that maximize next-queue
// traffic. Each adversarial graph is scheduled by the production bitmap
// path, the retained heap reference, and (transitively, via the suite
// differential test) the sweep reference; the first two must agree node for
// node.

// testBitq carves a queue for a rank space of n out of a fresh slab.
func testBitq(n int) *bitq {
	lvl, depth, total := bitqSize(n)
	q := &bitq{}
	q.carve(make([]uint64, total), 0, lvl, depth)
	return q
}

func TestBitqSize(t *testing.T) {
	cases := []struct {
		n, depth, w0 int
	}{
		{0, 1, 1},
		{1, 1, 1},
		{64, 1, 1},
		{65, 2, 2},
		{4096, 2, 64},
		{4097, 3, 65},
		{262144, 3, 4096},
		{262145, 4, 4097},
	}
	for _, c := range cases {
		lvl, depth, _ := bitqSize(c.n)
		if depth != c.depth || lvl[0] != c.w0 {
			t.Errorf("bitqSize(%d) = depth %d, lvl0 %d words; want %d, %d",
				c.n, depth, lvl[0], c.depth, c.w0)
		}
		if lvl[depth-1] != 1 {
			t.Errorf("bitqSize(%d): top level has %d words, want 1", c.n, lvl[depth-1])
		}
	}
}

// TestBitqPopOrder inserts ranks in shuffled order and pops them back; the
// sequence must come out sorted regardless of word seams. The rank set
// deliberately clusters around the 63/64/65 and 4095/4096/4097 boundaries.
func TestBitqPopOrder(t *testing.T) {
	ranks := []int32{0, 1, 62, 63, 64, 65, 126, 127, 128, 129,
		4094, 4095, 4096, 4097, 5000, 8191}
	n := 8192
	q := testBitq(n)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(ranks))
		for _, i := range perm {
			q.insert(ranks[i])
		}
		if int(q.n) != len(ranks) {
			t.Fatalf("population %d after %d inserts", q.n, len(ranks))
		}
		for i := 0; i < len(ranks); i++ {
			if got := q.popMin(); got != ranks[i] {
				t.Fatalf("trial %d: pop %d = rank %d, want %d", trial, i, got, ranks[i])
			}
		}
		if q.n != 0 {
			t.Fatalf("population %d after draining", q.n)
		}
		for l := 0; l < int(q.depth); l++ {
			for w, v := range q.lvl[l] {
				if v != 0 {
					t.Fatalf("level %d word %d nonzero (%#x) after drain", l, w, v)
				}
			}
		}
	}
}

// TestBitqDrainInto checks the word-granular bulk move, including the case
// where source and destination share populated words.
func TestBitqDrainInto(t *testing.T) {
	n := 300
	src, dst := testBitq(n), testBitq(n)
	for r := int32(0); r < 300; r += 3 {
		src.insert(r)
	}
	for r := int32(1); r < 300; r += 3 {
		dst.insert(r)
	}
	src.drainInto(dst)
	if src.n != 0 {
		t.Fatalf("source population %d after drain", src.n)
	}
	want := int32(0)
	for got, step := dst.popMin(), 0; ; step++ {
		if got != want {
			t.Fatalf("pop %d = rank %d, want %d", step, got, want)
		}
		if want += 1; want%3 == 2 {
			want++ // ranks ≡ 2 (mod 3) were never inserted
		}
		if want >= 300 {
			break
		}
		got = dst.popMin()
	}
}

// TestCalendarWindow exercises the bucket ring at several widths, checking
// that drainDue returns exactly the ranks filed for the cycle and that
// nextEarliest jumps over arbitrary gaps — including the wrap-around where
// the pending earliest's bucket sits before cycle+1 in ring order.
func TestCalendarWindow(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16, 64} {
		lvl, depth, per := bitqSize(128)
		slab := make([]uint64, per*w)
		cal := &calendar{buckets: make([]bitq, w), w: int32(w), mask: int32(w - 1)}
		off := 0
		for b := 0; b < w; b++ {
			off = cal.buckets[b].carve(slab, off, lvl, depth)
		}
		dst := testBitq(128)

		// File three ranks at earliest = 5, one at earliest = 5+w-1 (the
		// far edge of the window a scheduler at cycle 5 could produce).
		cal.insert(5, 7)
		cal.insert(5, 64)
		cal.insert(5, 127)
		far := int32(5 + w - 1)
		if w > 1 {
			cal.insert(far, 9)
		}
		if got := cal.nextEarliest(4); got != 5 {
			t.Fatalf("w=%d: nextEarliest(4) = %d, want 5", w, got)
		}
		cal.drainDue(5, dst)
		if dst.n != 3 {
			t.Fatalf("w=%d: drained %d ranks at cycle 5, want 3", w, dst.n)
		}
		for _, want := range []int32{7, 64, 127} {
			if got := dst.popMin(); got != want {
				t.Fatalf("w=%d: drained rank %d, want %d", w, got, want)
			}
		}
		if w > 1 {
			if got := cal.nextEarliest(5); got != far {
				t.Fatalf("w=%d: nextEarliest(5) = %d, want %d", w, got, far)
			}
			cal.drainDue(far, dst)
			if got := dst.popMin(); got != 9 {
				t.Fatalf("w=%d: far bucket drained rank %d, want 9", w, got)
			}
		}
		if cal.n != 0 || cal.occ != 0 {
			t.Fatalf("w=%d: calendar not empty after draining (n=%d occ=%#x)",
				w, cal.n, cal.occ)
		}
	}
}

// synthNode builds a node with the given index; rank order follows index
// order under synthPrio.
func synthNode(i int) *ddg.Node {
	return &ddg.Node{Index: i, Op: &ir.Op{Opcode: ir.Add}}
}

// synthPrio makes rank equal to node index (higher key sorts first).
func synthPrio(n int) PriorityFn {
	return func(nd *ddg.Node) [3]float64 {
		return [3]float64{float64(n - nd.Index), 0, 0}
	}
}

// synthEdge wires from→to with the given latency on both edge lists.
func synthEdge(from, to *ddg.Node, lat int) {
	from.Succs = append(from.Succs, ddg.Edge{To: to, Latency: lat, Kind: ddg.EdgeData})
	to.Preds = append(to.Preds, ddg.InEdge{From: from, Latency: lat, Kind: ddg.EdgeData})
}

// assertSameSchedule schedules g with the bitmap production path and the
// heap reference and requires cycle-for-cycle agreement.
func assertSameSchedule(t *testing.T, name string, g *ddg.Graph, m machine.Model, prio PriorityFn) {
	t.Helper()
	got := ListSchedule(g, m, prio)
	want := ListScheduleHeapRef(g, m, prio)
	if got.Length != want.Length {
		t.Fatalf("%s: length %d, heap reference %d", name, got.Length, want.Length)
	}
	for i := range want.Cycle {
		if got.Cycle[i] != want.Cycle[i] {
			t.Fatalf("%s: node %d at cycle %d, heap reference %d",
				name, i, got.Cycle[i], want.Cycle[i])
		}
	}
}

// TestAdversarialWordSeams schedules independent nodes whose ranks straddle
// the level-0 word seam (63/64/65) and, at 4096+ nodes, the level-1 seam,
// on a narrow machine so pops repeatedly cross the boundaries.
func TestAdversarialWordSeams(t *testing.T) {
	for _, n := range []int{66, 130, 4100} {
		g := &ddg.Graph{Nodes: make([]*ddg.Node, n)}
		for i := 0; i < n; i++ {
			g.Nodes[i] = synthNode(i)
		}
		// A sparse latency lattice keeps the ready set hovering around the
		// seams instead of draining monotonically.
		for i := 0; i+64 < n; i += 64 {
			synthEdge(g.Nodes[i], g.Nodes[i+64], 3)
		}
		for i := 1; i+63 < n; i += 64 {
			synthEdge(g.Nodes[i], g.Nodes[i+63], 1)
		}
		for _, m := range []machine.Model{{Name: "2U", IssueWidth: 2}, machine.FourU} {
			assertSameSchedule(t, "seams", g, m, synthPrio(n))
		}
	}
}

// TestAdversarialOneBucket funnels every successor through a single
// latency: one root fans out to hundreds of dependents that all become
// pending with the same earliest cycle, so the whole batch lands in one
// calendar bucket and must drain whole.
func TestAdversarialOneBucket(t *testing.T) {
	n := 400
	g := &ddg.Graph{Nodes: make([]*ddg.Node, n)}
	for i := 0; i < n; i++ {
		g.Nodes[i] = synthNode(i)
	}
	for i := 1; i < n; i++ {
		synthEdge(g.Nodes[0], g.Nodes[i], 9) // FDiv-class latency
	}
	assertSameSchedule(t, "one-bucket", g, machine.FourU, synthPrio(n))
}

// TestAdversarialZeroLatencyChain builds a latency-0 chain running against
// rank order: scheduling node i makes node i+1 ready in the same cycle at a
// LOWER rank than the sweep position, which is exactly the case that routes
// through the next queue and forces a same-cycle rescan.
func TestAdversarialZeroLatencyChain(t *testing.T) {
	n := 200
	g := &ddg.Graph{Nodes: make([]*ddg.Node, n)}
	for i := 0; i < n; i++ {
		g.Nodes[i] = synthNode(i)
	}
	// prio reverses index order, so the chain head has the highest rank and
	// each enabled successor sorts before the position just popped.
	prio := func(nd *ddg.Node) [3]float64 {
		return [3]float64{float64(nd.Index), 0, 0}
	}
	for i := 0; i+1 < n; i++ {
		synthEdge(g.Nodes[i], g.Nodes[i+1], 0)
	}
	for _, m := range []machine.Model{machine.Scalar, machine.FourU, machine.SixteenU} {
		assertSameSchedule(t, "zero-latency-chain", g, m, prio)
	}
}

// TestScheduleZeroSteadyStateAllocs proves the queue operations allocate
// nothing once the scratch is warm: a full schedule call allocates exactly
// its result (the Schedule header and its Cycle slice).
func TestScheduleZeroSteadyStateAllocs(t *testing.T) {
	n := 500
	g := &ddg.Graph{Nodes: make([]*ddg.Node, n)}
	for i := 0; i < n; i++ {
		g.Nodes[i] = synthNode(i)
	}
	for i := 0; i+1 < n; i += 2 {
		synthEdge(g.Nodes[i], g.Nodes[i+1], 2)
	}
	prio := synthPrio(n)
	var sc Scratch
	ListScheduleScratch(g, machine.FourU, prio, nil, &sc) // warm the slabs
	allocs := testing.AllocsPerRun(20, func() {
		ListScheduleScratch(g, machine.FourU, prio, nil, &sc)
	})
	if allocs > 2 {
		t.Fatalf("schedule call allocates %.0f objects steady-state, want ≤ 2 (result only)", allocs)
	}
}
