package sched

import (
	"fmt"
	"sort"
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/machine"
	"treegion/internal/progen"
)

// refListSchedule is the pre-heap sweep scheduler, kept verbatim as the
// reference the heap-based ListSchedule must reproduce cycle for cycle: each
// cycle rescans the full rank order until the issue slots fill or no more
// ops become same-cycle ready.
func refListSchedule(g *ddg.Graph, m machine.Model, prio PriorityFn) *Schedule {
	n := len(g.Nodes)
	s := &Schedule{Graph: g, Model: m, Cycle: make([]int, n)}
	if n == 0 {
		return s
	}
	order := make([]*ddg.Node, n)
	copy(order, g.Nodes)
	keys := make([][3]float64, n)
	for _, nd := range g.Nodes {
		keys[nd.Index] = prio(nd)
	}
	sort.SliceStable(order, func(i, j int) bool {
		ni, nj := order[i], order[j]
		if EagerTerminators && ni.Term != nj.Term {
			return ni.Term
		}
		a, b := keys[ni.Index], keys[nj.Index]
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] > b[k]
			}
		}
		return ni.Index < nj.Index
	})
	unscheduledPreds := make([]int, n)
	earliest := make([]int, n)
	for _, nd := range g.Nodes {
		unscheduledPreds[nd.Index] = len(nd.Preds)
	}
	scheduled := make([]bool, n)
	remaining := n
	cycle := 0
	for remaining > 0 {
		slots := m.IssueWidth
		progress := false
		for again := true; again && slots > 0; {
			again = false
			for _, nd := range order {
				if slots == 0 {
					break
				}
				i := nd.Index
				if scheduled[i] || unscheduledPreds[i] > 0 || earliest[i] > cycle {
					continue
				}
				s.Cycle[i] = cycle
				scheduled[i] = true
				remaining--
				if !nd.IsCopy() {
					slots--
				}
				progress = true
				for _, e := range nd.Succs {
					j := e.To.Index
					unscheduledPreds[j]--
					if t := cycle + e.Latency; t > earliest[j] {
						earliest[j] = t
					}
					if e.Latency == 0 {
						again = true
					}
				}
			}
		}
		if remaining == 0 {
			break
		}
		if !progress {
			next := -1
			for _, nd := range g.Nodes {
				i := nd.Index
				if scheduled[i] || unscheduledPreds[i] > 0 {
					continue
				}
				if next == -1 || earliest[i] < next {
					next = earliest[i]
				}
			}
			if next <= cycle {
				next = cycle + 1
			}
			cycle = next
			continue
		}
		cycle++
	}
	for _, nd := range g.Nodes {
		if c := s.Cycle[nd.Index] + 1; c > s.Length {
			s.Length = c
		}
	}
	return s
}

// TestListScheduleMatchesReference differentially checks the heap-based
// scheduler against the reference sweep scheduler over every region of the
// benchmark suite, for all four heuristics, several machine widths, and
// both terminator policies. Schedules must match cycle for cycle.
func TestListScheduleMatchesReference(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) == 0 {
		t.Fatal("empty benchmark suite")
	}
	models := []machine.Model{machine.Scalar, machine.FourU, machine.EightU}
	defer func(old bool) { EagerTerminators = old }(EagerTerminators)
	regions := 0
	for _, eager := range []bool{true, false} {
		EagerTerminators = eager
		for _, p := range progs {
			for _, fn := range p.Funcs {
				f := fn.Clone() // renaming mutates; keep the suite pristine
				g := cfg.New(f)
				lv := cfg.ComputeLiveness(g)
				for _, r := range core.Form(f, g) {
					dg, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv})
					if err != nil {
						t.Fatalf("%s/%s: %v", p.Name, f.Name, err)
					}
					regions++
					for _, h := range core.Heuristics() {
						prio := h.Keys
						for _, m := range models {
							got := ListSchedule(dg, m, prio)
							want := refListSchedule(dg, m, prio)
							if got.Length != want.Length {
								t.Fatalf("%s/%s root=bb%d %s %s eager=%v: length %d, reference %d",
									p.Name, f.Name, r.Root, h, m.Name, eager, got.Length, want.Length)
							}
							for i := range want.Cycle {
								if got.Cycle[i] != want.Cycle[i] {
									t.Fatalf("%s/%s root=bb%d %s %s eager=%v: node %d (%v) at cycle %d, reference %d",
										p.Name, f.Name, r.Root, h, m.Name, eager,
										i, dg.Nodes[i].Op, got.Cycle[i], want.Cycle[i])
								}
							}
							if err := got.Verify(); err != nil {
								t.Fatalf("%s/%s %s %s: %v", p.Name, f.Name, h, m.Name, err)
							}
						}
					}
				}
			}
		}
	}
	if regions == 0 {
		t.Fatal("no regions exercised")
	}
	_ = fmt.Sprint(regions)
}
