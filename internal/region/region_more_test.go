package region

import (
	"testing"
	"testing/quick"

	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/progen"
)

func TestRegionKindStrings(t *testing.T) {
	want := []struct {
		k Kind
		s string
	}{
		{KindBasicBlock, "bb"},
		{KindSLR, "slr"},
		{KindSuperblock, "sb"},
		{KindTreegion, "tree"},
		{KindTreegionTD, "tree-td"},
	}
	for _, c := range want {
		if c.k.String() != c.s {
			t.Errorf("%d.String() = %q, want %q", c.k, c.k.String(), c.s)
		}
	}
}

func TestAddPanicsOnViolations(t *testing.T) {
	f := ir.NewFunction("p")
	b0, b1 := f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	r := New(f, KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("double add", func() { r.Add(b1.ID, b0.ID) })
	b2 := f.NewBlock()
	mustPanic("foreign parent", func() { r.Add(b2.ID, b2.ID) })
}

func TestBranchExitCarriesOp(t *testing.T) {
	f := ir.NewFunction("be")
	b0, b1, out := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	br := f.EmitBrct(b0, ir.NoReg, p, out.ID, 0.5)
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	f.EmitRet(out)
	r := New(f, KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)
	found := false
	for _, e := range r.Exits() {
		if e.To == out.ID {
			found = true
			if e.Br != br {
				t.Fatal("exit does not reference its branch op")
			}
		}
	}
	if !found {
		t.Fatal("branch exit missing")
	}
}

// Property: over the whole generated suite, every treegion-formed region's
// exit weights plus Ret-leaf weights account for the root's weight (flow
// conservation through trees), within Monte-Carlo integer exactness.
func TestTreeFlowConservation(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	prog := progs[0]
	for _, fn := range prog.Funcs {
		prof, err := interp.Profile(fn, 77, 40, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		g := cfg.New(fn)
		_ = g
		// Hand-roll treegion formation via the core package would import
		// upward; validate the invariant on single-block regions instead:
		// Σ outgoing edges + Ret executions == block weight.
		for _, b := range fn.Blocks {
			r := New(fn, KindBasicBlock, b.ID)
			sum := 0.0
			for _, e := range r.Exits() {
				sum += prof.EdgeWeight(e.From, e.To)
			}
			for _, op := range fn.Block(b.ID).Ops {
				if op.Opcode == ir.Ret {
					sum += prof.BlockWeight(b.ID)
				}
			}
			if diff := sum - prof.BlockWeight(b.ID); diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%s bb%d: exits sum %v != weight %v", fn.Name, b.ID, sum, prof.BlockWeight(b.ID))
			}
		}
	}
}

// Property: Subtree sizes over random trees sum consistently: |Subtree(root)|
// equals the region size, and Σ over children |Subtree(c)| == size-1.
func TestSubtreeSizesProperty(t *testing.T) {
	fn := func(arms uint8) bool {
		k := 2 + int(arms)%4
		f := ir.NewFunction("q")
		root := f.NewBlock()
		p := f.NewReg(ir.ClassPred)
		r := New(f, KindTreegion, root.ID)
		for i := 0; i < k; i++ {
			c := f.NewBlock()
			if i < k-1 {
				f.EmitBrct(root, ir.NoReg, p, c.ID, 0.1)
			} else {
				root.FallThrough = c.ID
			}
			f.EmitRet(c)
			r.Add(c.ID, root.ID)
		}
		if len(r.Subtree(root.ID)) != k+1 {
			return false
		}
		total := 0
		for _, c := range r.Children(root.ID) {
			total += len(r.Subtree(c))
		}
		return total == k
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
