// Package region defines the scheduling-region abstraction shared by every
// region former in this compiler: basic blocks, simple linear regions,
// superblocks, and treegions. A region is a tree of basic blocks rooted at
// its unique entry; linear regions are simply trees that happen to be paths,
// so one representation (and one scheduler) serves all of them.
package region

import (
	"fmt"
	"strings"

	"treegion/internal/ir"
)

// Kind tags how a region was formed.
type Kind uint8

// Region kinds.
const (
	KindBasicBlock Kind = iota
	KindSLR
	KindSuperblock
	KindTreegion
	KindTreegionTD
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBasicBlock:
		return "bb"
	case KindSLR:
		return "slr"
	case KindSuperblock:
		return "sb"
	case KindTreegion:
		return "tree"
	case KindTreegionTD:
		return "tree-td"
	default:
		return "?"
	}
}

// Region is a single-entry tree of basic blocks within one function. The
// root is the only block that may be a merge point; every other member has
// exactly one predecessor, its tree parent.
type Region struct {
	Fn     *ir.Function
	Kind   Kind
	Root   ir.BlockID
	Blocks []ir.BlockID // preorder; Blocks[0] == Root

	// FromTrace marks superblock regions that came from profile trace
	// selection (as opposed to cold-code filler); the paper's Table 4
	// counts only these.
	FromTrace bool

	parent map[ir.BlockID]ir.BlockID
	member map[ir.BlockID]bool
}

// New starts a region containing just the root.
func New(fn *ir.Function, kind Kind, root ir.BlockID) *Region {
	r := &Region{
		Fn:     fn,
		Kind:   kind,
		Root:   root,
		parent: make(map[ir.BlockID]ir.BlockID),
		member: make(map[ir.BlockID]bool),
	}
	r.Blocks = append(r.Blocks, root)
	r.parent[root] = ir.NoBlock
	r.member[root] = true
	return r
}

// Add places b into the region as a child of parent, which must already be
// a member (and must actually be a CFG predecessor of b; Validate checks).
func (r *Region) Add(b, parent ir.BlockID) {
	if r.member[b] {
		panic(fmt.Sprintf("region: bb%d added twice", b))
	}
	if !r.member[parent] {
		panic(fmt.Sprintf("region: parent bb%d of bb%d not a member", parent, b))
	}
	r.Blocks = append(r.Blocks, b)
	r.parent[b] = parent
	r.member[b] = true
}

// Contains reports membership.
func (r *Region) Contains(b ir.BlockID) bool { return r.member[b] }

// Parent returns b's tree parent (ir.NoBlock for the root).
func (r *Region) Parent(b ir.BlockID) ir.BlockID { return r.parent[b] }

// Children returns b's in-region children in successor order.
func (r *Region) Children(b ir.BlockID) []ir.BlockID {
	var out []ir.BlockID
	for _, s := range r.Fn.Block(b).Succs() {
		if r.member[s] && r.parent[s] == b {
			out = append(out, s)
		}
	}
	return out
}

// IsLeaf reports whether b has no in-region children.
func (r *Region) IsLeaf(b ir.BlockID) bool { return len(r.Children(b)) == 0 }

// Leaves returns the leaf blocks in preorder.
func (r *Region) Leaves() []ir.BlockID {
	var out []ir.BlockID
	for _, b := range r.Blocks {
		if r.IsLeaf(b) {
			out = append(out, b)
		}
	}
	return out
}

// PathCount returns the number of distinct root-to-leaf paths (== leaves).
func (r *Region) PathCount() int { return len(r.Leaves()) }

// PathTo returns the block path root..b.
func (r *Region) PathTo(b ir.BlockID) []ir.BlockID {
	var rev []ir.BlockID
	for cur := b; cur != ir.NoBlock; cur = r.parent[cur] {
		rev = append(rev, cur)
	}
	out := make([]ir.BlockID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Ancestors returns the strict ancestors of b, nearest first.
func (r *Region) Ancestors(b ir.BlockID) []ir.BlockID {
	var out []ir.BlockID
	for cur := r.parent[b]; cur != ir.NoBlock; cur = r.parent[cur] {
		out = append(out, cur)
	}
	return out
}

// Subtree returns b and all in-region descendants of b, preorder.
func (r *Region) Subtree(b ir.BlockID) []ir.BlockID {
	out := []ir.BlockID{b}
	for i := 0; i < len(out); i++ {
		out = append(out, r.Children(out[i])...)
	}
	return out
}

// NumOps returns the region's total static op count.
func (r *Region) NumOps() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(r.Fn.Block(b).Ops)
	}
	return n
}

// Exit is one way control leaves the region: the edge From→To, taken via
// branch op Br, or by fallthrough when Br is nil. Edges to the region's own
// root (loop back edges) are exits too.
type Exit struct {
	From, To ir.BlockID
	Br       *ir.Op // nil for a fallthrough exit
}

// Exits returns the region's exit edges in preorder of their source blocks.
// An exit is any edge whose target is outside the region or is not the
// source's tree child (e.g. a back edge to the root).
func (r *Region) Exits() []Exit {
	var out []Exit
	for _, bid := range r.Blocks {
		b := r.Fn.Block(bid)
		for _, op := range b.Ops {
			if op.IsBranch() && !r.isTreeEdge(bid, op.Target) {
				out = append(out, Exit{From: bid, To: op.Target, Br: op})
			}
		}
		if ft := b.FallThrough; ft != ir.NoBlock && !r.isTreeEdge(bid, ft) {
			out = append(out, Exit{From: bid, To: ft})
		}
	}
	return out
}

func (r *Region) isTreeEdge(from, to ir.BlockID) bool {
	return r.member[to] && r.parent[to] == from
}

// ExitsBelow returns, for every member block b, the number of region exits
// from b's subtree — the paper's "exit count" of ops homed in b.
func (r *Region) ExitsBelow() map[ir.BlockID]int {
	own := make(map[ir.BlockID]int, len(r.Blocks))
	for _, bid := range r.Blocks {
		b := r.Fn.Block(bid)
		n := 0
		for _, s := range b.Succs() {
			if !r.isTreeEdge(bid, s) {
				n++
			}
		}
		own[bid] = n
	}
	out := make(map[ir.BlockID]int, len(r.Blocks))
	// Preorder reversed gives children before parents.
	for i := len(r.Blocks) - 1; i >= 0; i-- {
		b := r.Blocks[i]
		n := own[b]
		for _, c := range r.Children(b) {
			n += out[c]
		}
		out[b] = n
	}
	return out
}

// Validate checks the tree invariants against the current CFG:
// every non-root member's parent is its sole predecessor-in-region and an
// actual CFG edge exists; preorder lists parents before children.
func (r *Region) Validate() error {
	if len(r.Blocks) == 0 || r.Blocks[0] != r.Root {
		return fmt.Errorf("region: preorder must start at root")
	}
	seen := map[ir.BlockID]bool{}
	for _, b := range r.Blocks {
		if seen[b] {
			return fmt.Errorf("region: bb%d listed twice", b)
		}
		seen[b] = true
		p := r.parent[b]
		if b == r.Root {
			if p != ir.NoBlock {
				return fmt.Errorf("region: root bb%d has parent", b)
			}
			continue
		}
		if !seen[p] {
			return fmt.Errorf("region: bb%d precedes its parent bb%d", b, p)
		}
		// The parent edge must exist in the CFG.
		found := false
		for _, s := range r.Fn.Block(p).Succs() {
			if s == b {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("region: no CFG edge bb%d->bb%d", p, b)
		}
	}
	return nil
}

// String summarizes the region.
func (r *Region) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s region root=bb%d blocks=[", r.Kind, r.Root)
	for i, b := range r.Blocks {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "bb%d", b)
	}
	sb.WriteString("]")
	return sb.String()
}
