// Package region defines the scheduling-region abstraction shared by every
// region former in this compiler: basic blocks, simple linear regions,
// superblocks, and treegions. A region is a tree of basic blocks rooted at
// its unique entry; linear regions are simply trees that happen to be paths,
// so one representation (and one scheduler) serves all of them.
package region

import (
	"fmt"
	"strings"

	"treegion/internal/ir"
)

// Kind tags how a region was formed.
type Kind uint8

// Region kinds.
const (
	KindBasicBlock Kind = iota
	KindSLR
	KindSuperblock
	KindTreegion
	KindTreegionTD
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBasicBlock:
		return "bb"
	case KindSLR:
		return "slr"
	case KindSuperblock:
		return "sb"
	case KindTreegion:
		return "tree"
	case KindTreegionTD:
		return "tree-td"
	default:
		return "?"
	}
}

// Region is a single-entry tree of basic blocks within one function. The
// root is the only block that may be a merge point; every other member has
// exactly one predecessor, its tree parent.
type Region struct {
	Fn     *ir.Function
	Kind   Kind
	Root   ir.BlockID
	Blocks []ir.BlockID // preorder; Blocks[0] == Root

	// FromTrace marks superblock regions that came from profile trace
	// selection (as opposed to cold-code filler); the paper's Table 4
	// counts only these.
	FromTrace bool

	// parent and member are dense, indexed by BlockID, and grown on demand:
	// tail duplication appends blocks to the function mid-formation and then
	// Adds them. parent[b] is ir.NoBlock for the root and for non-members.
	parent []ir.BlockID
	member []bool
	// children caches per-block child lists (successor order) in one backing
	// slab; it is built lazily by Children and dropped by Add, which is the
	// only membership mutation. CFG edge rewrites during formation
	// (TailDuplicate's ReplaceSucc) are always followed by an Add before the
	// next query, so Add-invalidation keeps the cache coherent.
	children  [][]ir.BlockID
	childSlab []ir.BlockID
}

// New starts a region containing just the root.
func New(fn *ir.Function, kind Kind, root ir.BlockID) *Region {
	r := &Region{
		Fn:   fn,
		Kind: kind,
		Root: root,
	}
	r.ensure(root)
	r.Blocks = append(r.Blocks, root)
	r.parent[root] = ir.NoBlock
	r.member[root] = true
	return r
}

// ensure grows the dense tables to cover block b, in one reallocation —
// regions are built by the thousand on the store's warm decode path, so
// element-at-a-time growth here shows up directly in GC pressure.
func (r *Region) ensure(b ir.BlockID) {
	need := int(b) + 1
	if n := len(r.Fn.Blocks); n > need {
		need = n
	}
	if len(r.parent) >= need {
		return
	}
	parent := make([]ir.BlockID, need)
	copy(parent, r.parent)
	for i := len(r.parent); i < need; i++ {
		parent[i] = ir.NoBlock
	}
	member := make([]bool, need)
	copy(member, r.member)
	r.parent, r.member = parent, member
}

// Add places b into the region as a child of parent, which must already be
// a member (and must actually be a CFG predecessor of b; Validate checks).
func (r *Region) Add(b, parent ir.BlockID) {
	r.ensure(b)
	if r.member[b] {
		panic(fmt.Sprintf("region: bb%d added twice", b))
	}
	if int(parent) < 0 || int(parent) >= len(r.member) || !r.member[parent] {
		panic(fmt.Sprintf("region: parent bb%d of bb%d not a member", parent, b))
	}
	r.Blocks = append(r.Blocks, b)
	r.parent[b] = parent
	r.member[b] = true
	r.children = nil
	r.childSlab = nil
}

// Contains reports membership.
func (r *Region) Contains(b ir.BlockID) bool {
	return int(b) >= 0 && int(b) < len(r.member) && r.member[b]
}

// Parent returns b's tree parent (ir.NoBlock for the root and non-members).
func (r *Region) Parent(b ir.BlockID) ir.BlockID {
	if int(b) < 0 || int(b) >= len(r.parent) {
		return ir.NoBlock
	}
	return r.parent[b]
}

// Children returns b's in-region children in successor order. The result
// aliases an internal cache; callers must not modify it.
func (r *Region) Children(b ir.BlockID) []ir.BlockID {
	if r.children == nil {
		r.buildChildren()
	}
	if int(b) >= len(r.children) {
		return nil
	}
	return r.children[b]
}

// buildChildren fills the child-list cache: every non-root member is the
// unique tree child of its parent, so the lists pack into one slab of
// len(Blocks)-1 entries, filled in each parent's successor order.
func (r *Region) buildChildren() {
	n := len(r.parent)
	counts := make([]int32, n)
	for _, b := range r.Blocks {
		if b != r.Root {
			counts[r.parent[b]]++
		}
	}
	r.childSlab = make([]ir.BlockID, len(r.Blocks)-1)
	r.children = make([][]ir.BlockID, n)
	off := 0
	var succs []ir.BlockID
	for _, b := range r.Blocks {
		c := int(counts[b])
		lst := r.childSlab[off : off : off+c]
		succs = r.Fn.Block(b).AppendSuccs(succs[:0])
		for _, s := range succs {
			if r.Contains(s) && r.parent[s] == b {
				lst = append(lst, s)
			}
		}
		r.children[b] = lst
		off += c
	}
}

// IsLeaf reports whether b has no in-region children.
func (r *Region) IsLeaf(b ir.BlockID) bool { return len(r.Children(b)) == 0 }

// Leaves returns the leaf blocks in preorder.
func (r *Region) Leaves() []ir.BlockID {
	var out []ir.BlockID
	for _, b := range r.Blocks {
		if r.IsLeaf(b) {
			out = append(out, b)
		}
	}
	return out
}

// PathCount returns the number of distinct root-to-leaf paths (== leaves).
// It counts straight off the parent table rather than via Leaves: statistics
// aggregation calls this once per region, and forcing the children cache
// just to count leaves dominated the warm artifact-decode profile.
func (r *Region) PathCount() int {
	if len(r.Blocks) <= 1 {
		return len(r.Blocks)
	}
	internal := make([]bool, len(r.parent))
	for _, b := range r.Blocks {
		if p := r.parent[b]; p != ir.NoBlock {
			internal[p] = true
		}
	}
	leaves := 0
	for _, b := range r.Blocks {
		if !internal[b] {
			leaves++
		}
	}
	return leaves
}

// PathTo returns the block path root..b.
func (r *Region) PathTo(b ir.BlockID) []ir.BlockID {
	return r.AppendPathTo(nil, b)
}

// AppendPathTo appends the block path root..b to dst and returns it,
// letting hot callers reuse one buffer across paths.
func (r *Region) AppendPathTo(dst []ir.BlockID, b ir.BlockID) []ir.BlockID {
	start := len(dst)
	for cur := b; cur != ir.NoBlock; cur = r.parent[cur] {
		dst = append(dst, cur)
	}
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Ancestors returns the strict ancestors of b, nearest first.
func (r *Region) Ancestors(b ir.BlockID) []ir.BlockID {
	var out []ir.BlockID
	for cur := r.parent[b]; cur != ir.NoBlock; cur = r.parent[cur] {
		out = append(out, cur)
	}
	return out
}

// Subtree returns b and all in-region descendants of b, preorder.
func (r *Region) Subtree(b ir.BlockID) []ir.BlockID {
	out := []ir.BlockID{b}
	for i := 0; i < len(out); i++ {
		out = append(out, r.Children(out[i])...)
	}
	return out
}

// NumOps returns the region's total static op count.
func (r *Region) NumOps() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(r.Fn.Block(b).Ops)
	}
	return n
}

// Exit is one way control leaves the region: the edge From→To, taken via
// branch op Br, or by fallthrough when Br is nil. Edges to the region's own
// root (loop back edges) are exits too.
type Exit struct {
	From, To ir.BlockID
	Br       *ir.Op // nil for a fallthrough exit
}

// Exits returns the region's exit edges in preorder of their source blocks.
// An exit is any edge whose target is outside the region or is not the
// source's tree child (e.g. a back edge to the root).
func (r *Region) Exits() []Exit {
	var out []Exit
	for _, bid := range r.Blocks {
		b := r.Fn.Block(bid)
		for _, op := range b.Ops {
			if op.IsBranch() && !r.isTreeEdge(bid, op.Target) {
				out = append(out, Exit{From: bid, To: op.Target, Br: op})
			}
		}
		if ft := b.FallThrough; ft != ir.NoBlock && !r.isTreeEdge(bid, ft) {
			out = append(out, Exit{From: bid, To: ft})
		}
	}
	return out
}

func (r *Region) isTreeEdge(from, to ir.BlockID) bool {
	return r.Contains(to) && r.parent[to] == from
}

// ExitsBelow returns, for every member block b, the number of region exits
// from b's subtree — the paper's "exit count" of ops homed in b. The result
// is indexed by BlockID; non-member entries are zero.
func (r *Region) ExitsBelow() []int {
	out := make([]int, len(r.Fn.Blocks))
	var succs []ir.BlockID
	for _, bid := range r.Blocks {
		n := 0
		succs = r.Fn.Block(bid).AppendSuccs(succs[:0])
		for _, s := range succs {
			if !r.isTreeEdge(bid, s) {
				n++
			}
		}
		out[bid] = n
	}
	// Preorder reversed gives children before parents.
	for i := len(r.Blocks) - 1; i >= 0; i-- {
		b := r.Blocks[i]
		for _, c := range r.Children(b) {
			out[b] += out[c]
		}
	}
	return out
}

// Validate checks the tree invariants against the current CFG:
// every non-root member's parent is its sole predecessor-in-region and an
// actual CFG edge exists; preorder lists parents before children.
func (r *Region) Validate() error {
	if len(r.Blocks) == 0 || r.Blocks[0] != r.Root {
		return fmt.Errorf("region: preorder must start at root")
	}
	seen := map[ir.BlockID]bool{}
	for _, b := range r.Blocks {
		if seen[b] {
			return fmt.Errorf("region: bb%d listed twice", b)
		}
		seen[b] = true
		p := r.parent[b]
		if b == r.Root {
			if p != ir.NoBlock {
				return fmt.Errorf("region: root bb%d has parent", b)
			}
			continue
		}
		if !seen[p] {
			return fmt.Errorf("region: bb%d precedes its parent bb%d", b, p)
		}
		// The parent edge must exist in the CFG.
		found := false
		for _, s := range r.Fn.Block(p).Succs() {
			if s == b {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("region: no CFG edge bb%d->bb%d", p, b)
		}
	}
	return nil
}

// String summarizes the region.
func (r *Region) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s region root=bb%d blocks=[", r.Kind, r.Root)
	for i, b := range r.Blocks {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "bb%d", b)
	}
	sb.WriteString("]")
	return sb.String()
}
