package region

import (
	"fmt"

	"treegion/internal/ir"
)

// Rebuild reconstructs a region from its serialized shape: the preorder
// block list and the parallel parent list (Parents[0] must be ir.NoBlock for
// the root). The artifact store uses it to revive regions from disk, so —
// unlike New/Add, which panic on programmer error — it validates everything
// and returns an error on malformed input: corrupt store entries must read
// as cache misses, never as crashes.
func Rebuild(fn *ir.Function, kind Kind, blocks, parents []ir.BlockID, fromTrace bool) (*Region, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("region: rebuild: empty block list")
	}
	if len(parents) != len(blocks) {
		return nil, fmt.Errorf("region: rebuild: %d parents for %d blocks", len(parents), len(blocks))
	}
	inRange := func(b ir.BlockID) bool { return b >= 0 && int(b) < len(fn.Blocks) }
	if !inRange(blocks[0]) {
		return nil, fmt.Errorf("region: rebuild: root bb%d out of range", blocks[0])
	}
	if parents[0] != ir.NoBlock {
		return nil, fmt.Errorf("region: rebuild: root bb%d has parent bb%d", blocks[0], parents[0])
	}
	r := New(fn, kind, blocks[0])
	r.FromTrace = fromTrace
	// The preorder length is known up front; reserve it so the Add loop
	// never regrows Blocks (regions revive by the thousand on warm decode).
	if n := len(blocks); cap(r.Blocks) < n {
		grown := make([]ir.BlockID, 1, n)
		grown[0] = r.Blocks[0]
		r.Blocks = grown
	}
	for i := 1; i < len(blocks); i++ {
		b, p := blocks[i], parents[i]
		if !inRange(b) {
			return nil, fmt.Errorf("region: rebuild: bb%d out of range", b)
		}
		if r.Contains(b) {
			return nil, fmt.Errorf("region: rebuild: bb%d listed twice", b)
		}
		if !r.Contains(p) {
			return nil, fmt.Errorf("region: rebuild: parent bb%d of bb%d precedes it in no preorder", p, b)
		}
		r.Add(b, p)
	}
	return r, nil
}

// Parents returns the parent list parallel to r.Blocks (the root's entry is
// ir.NoBlock), the serialized form Rebuild consumes.
func (r *Region) Parents() []ir.BlockID {
	out := make([]ir.BlockID, len(r.Blocks))
	for i, b := range r.Blocks {
		out[i] = r.parent[b]
	}
	return out
}
