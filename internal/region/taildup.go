package region

import (
	"treegion/internal/ir"
	"treegion/internal/profile"
)

// TailDuplicate clones block target and retargets the single edge pred→target
// onto the clone, keeping the profile consistent: the clone inherits the
// retargeted edge's weight, the original loses it, and the original's
// outgoing edge weights are split proportionally. It returns the clone.
//
// This is the primitive both superblock formation and treegion formation
// with tail duplication are built on.
func TailDuplicate(fn *ir.Function, prof *profile.Data, pred, target ir.BlockID) *ir.Block {
	dup := fn.DuplicateBlock(fn.Block(target))
	w := prof.EdgeWeight(pred, target)
	prof.SplitBlock(fn, target, dup.ID, w)
	prof.MoveEdge(pred, target, dup.ID)
	fn.Block(pred).ReplaceSucc(target, dup.ID)
	return dup
}
