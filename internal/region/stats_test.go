package region

import "testing"

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		n, bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {16, 4}, {17, 5}, {100, 5},
	}
	for _, tc := range cases {
		var h Hist
		h.Observe(tc.n)
		if h[tc.bucket] != 1 {
			t.Errorf("Observe(%d) landed in %v, want bucket %d (%s)", tc.n, h, tc.bucket, HistBuckets[tc.bucket])
		}
		if h.Total() != 1 {
			t.Errorf("Observe(%d): total = %d", tc.n, h.Total())
		}
	}
}

func TestHistAddAndString(t *testing.T) {
	var a, b Hist
	a.Observe(1)
	a.Observe(1)
	a.Observe(3)
	b.Observe(20)
	sum := a.Add(b)
	if sum.Total() != 4 {
		t.Errorf("total = %d, want 4", sum.Total())
	}
	if got, want := sum.String(), "1:2 3-4:1 17+:1"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (Hist{}).String(); got != "empty" {
		t.Errorf("empty String = %q", got)
	}
}

func TestComputeStatsHistograms(t *testing.T) {
	// The Fig. 1-style tree holds 5 blocks with 3 root-to-leaf paths; the
	// two exit blocks become singleton regions.
	fn, r := tree(t)
	s5 := New(fn, KindBasicBlock, 5)
	s6 := New(fn, KindBasicBlock, 6)

	s := ComputeStats([]*Region{r, s5, s6}, nil)
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if got, want := s.Blocks.String(), "1:2 5-8:1"; got != want {
		t.Errorf("Blocks = %q, want %q", got, want)
	}
	if got, want := s.Paths.String(), "1:2 3-4:1"; got != want {
		t.Errorf("Paths = %q, want %q", got, want)
	}
}

func TestMergeHistograms(t *testing.T) {
	var a, b Stats
	a.Count = 1
	a.Blocks.Observe(3)
	a.Paths.Observe(2)
	b.Count = 1
	b.Blocks.Observe(1)
	b.Paths.Observe(1)
	m := Merge([]Stats{a, b})
	if m.Blocks.Total() != 2 || m.Paths.Total() != 2 {
		t.Errorf("merged totals = %d/%d, want 2/2", m.Blocks.Total(), m.Paths.Total())
	}
	if got, want := m.Blocks.String(), "1:1 3-4:1"; got != want {
		t.Errorf("merged Blocks = %q, want %q", got, want)
	}
}
