package region

import (
	"testing"

	"treegion/internal/ir"
	"treegion/internal/profile"
)

// tree builds the Fig. 1-style CFG fragment:
//
//	bb0 -> bb1, bb2; bb1 -> bb3, bb4; bb2 -> exit5; bb3 -> exit5; bb4 -> exit6
func tree(t *testing.T) (*ir.Function, *Region) {
	t.Helper()
	f := ir.NewFunction("tree")
	blocks := make([]*ir.Block, 7)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	p := f.NewReg(ir.ClassPred)
	for _, b := range []int{1, 2, 3, 4} {
		f.EmitALU(blocks[b], ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	}
	f.EmitBrct(blocks[0], ir.NoReg, p, 1, 0.5)
	blocks[0].FallThrough = 2
	f.EmitBrct(blocks[1], ir.NoReg, p, 3, 0.5)
	blocks[1].FallThrough = 4
	blocks[2].FallThrough = 5
	blocks[3].FallThrough = 5
	blocks[4].FallThrough = 6
	f.EmitRet(blocks[5])
	f.EmitRet(blocks[6])
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	r := New(f, KindTreegion, 0)
	r.Add(1, 0)
	r.Add(2, 0)
	r.Add(3, 1)
	r.Add(4, 1)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return f, r
}

func TestRegionTopology(t *testing.T) {
	_, r := tree(t)
	if got := r.PathCount(); got != 3 {
		t.Errorf("PathCount = %d, want 3 (leaves bb2 bb3 bb4)", got)
	}
	if ch := r.Children(1); len(ch) != 2 || ch[0] != 3 || ch[1] != 4 {
		t.Errorf("Children(bb1) = %v", ch)
	}
	if !r.IsLeaf(2) || r.IsLeaf(1) {
		t.Error("leaf classification wrong")
	}
	path := r.PathTo(4)
	want := []ir.BlockID{0, 1, 4}
	if len(path) != len(want) {
		t.Fatalf("PathTo(4) = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathTo(4) = %v, want %v", path, want)
		}
	}
	anc := r.Ancestors(4)
	if len(anc) != 2 || anc[0] != 1 || anc[1] != 0 {
		t.Fatalf("Ancestors(4) = %v", anc)
	}
	sub := r.Subtree(1)
	if len(sub) != 3 {
		t.Fatalf("Subtree(1) = %v", sub)
	}
}

func TestRegionExits(t *testing.T) {
	_, r := tree(t)
	exits := r.Exits()
	// Exit edges: bb2->5, bb3->5, bb4->6.
	if len(exits) != 3 {
		t.Fatalf("Exits = %v, want 3", exits)
	}
	for _, e := range exits {
		if e.Br != nil {
			t.Errorf("fallthrough exit has branch op: %+v", e)
		}
		if e.To != 5 && e.To != 6 {
			t.Errorf("unexpected exit target bb%d", e.To)
		}
	}
}

func TestExitsBelow(t *testing.T) {
	_, r := tree(t)
	eb := r.ExitsBelow()
	if eb[0] != 3 {
		t.Errorf("ExitsBelow(root) = %d, want 3", eb[0])
	}
	if eb[1] != 2 {
		t.Errorf("ExitsBelow(bb1) = %d, want 2", eb[1])
	}
	for _, leaf := range []ir.BlockID{2, 3, 4} {
		if eb[leaf] != 1 {
			t.Errorf("ExitsBelow(bb%d) = %d, want 1", leaf, eb[leaf])
		}
	}
}

func TestExitToOwnRoot(t *testing.T) {
	// A region whose leaf branches back to the region root: that edge is an
	// exit, not a tree edge.
	f := ir.NewFunction("loopish")
	b0, b1 := f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	b0.FallThrough = b1.ID
	f.EmitBrct(b1, ir.NoReg, p, b0.ID, 0.5)
	b1.FallThrough = b0.ID // not valid: duplicate succ; use a real exit
	b1.FallThrough = ir.NoBlock
	f.EmitRet(b1)
	// b1 now has branch to b0 and a Ret: invalid per layout. Rebuild simply:
	f = ir.NewFunction("loopish")
	b0, b1 = f.NewBlock(), f.NewBlock()
	b2 := f.NewBlock()
	p = f.NewReg(ir.ClassPred)
	b0.FallThrough = b1.ID
	f.EmitBrct(b1, ir.NoReg, p, b0.ID, 0.9)
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := New(f, KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)
	exits := r.Exits()
	var foundRootExit bool
	for _, e := range exits {
		if e.To == b0.ID {
			foundRootExit = true
			if e.Br == nil {
				t.Error("back edge exit should carry its branch op")
			}
		}
	}
	if !foundRootExit {
		t.Error("back edge to own root must be an exit")
	}
}

func TestRegionValidateCatchesBadParent(t *testing.T) {
	f := ir.NewFunction("bad")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	r := New(f, KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)
	// bb2's CFG pred is bb1, not bb0.
	r.Add(b2.ID, b0.ID)
	if err := r.Validate(); err == nil {
		t.Fatal("bogus parent edge not caught")
	}
}

func TestComputeStats(t *testing.T) {
	f, r := tree(t)
	solo := New(f, KindTreegion, 5)
	s := ComputeStats([]*Region{r, solo}, nil)
	if s.Count != 2 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.MaxBlocks != 5 {
		t.Fatalf("MaxBlocks = %d, want 5", s.MaxBlocks)
	}
	if s.AvgBlocks != 3 {
		t.Fatalf("AvgBlocks = %v, want 3", s.AvgBlocks)
	}
	// With a profile that never executed bb5, the solo region drops out.
	prof := profile.New()
	prof.AddBlock(0, 10)
	s = ComputeStats([]*Region{r, solo}, prof)
	if s.Count != 1 {
		t.Fatalf("executed-only Count = %d, want 1", s.Count)
	}
}

func TestMergeStats(t *testing.T) {
	a := Stats{Count: 2, AvgBlocks: 3, MaxBlocks: 5, AvgOps: 10}
	b := Stats{Count: 1, AvgBlocks: 6, MaxBlocks: 7, AvgOps: 4}
	m := Merge([]Stats{a, b})
	if m.Count != 3 || m.MaxBlocks != 7 {
		t.Fatalf("Merge = %+v", m)
	}
	if m.AvgBlocks != 4 {
		t.Fatalf("AvgBlocks = %v, want 4", m.AvgBlocks)
	}
	if m.AvgOps != 8 {
		t.Fatalf("AvgOps = %v, want 8", m.AvgOps)
	}
}

func TestCheckPartition(t *testing.T) {
	f, r := tree(t)
	r5 := New(f, KindTreegion, 5)
	r6 := New(f, KindTreegion, 6)
	if err := CheckPartition(f, []*Region{r, r5, r6}); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if err := CheckPartition(f, []*Region{r, r5}); err == nil {
		t.Fatal("missing block not caught")
	}
	dup := New(f, KindTreegion, 5)
	if err := CheckPartition(f, []*Region{r, r5, r6, dup}); err == nil {
		t.Fatal("double ownership not caught")
	}
}

func TestTailDuplicatePrimitive(t *testing.T) {
	// bb0 and bb1 both feed merge bb2, which feeds bb3/bb4.
	f := ir.NewFunction("td")
	b0, b1, b2, b3, b4 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	f.EmitBrct(b0, ir.NoReg, p, b2.ID, 0.5)
	b0.FallThrough = b1.ID
	b1.FallThrough = b2.ID
	f.EmitALU(b2, ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	f.EmitBrct(b2, ir.NoReg, p, b3.ID, 0.25)
	b2.FallThrough = b4.ID
	f.EmitRet(b3)
	f.EmitRet(b4)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	prof := profile.New()
	prof.AddBlock(b0.ID, 100)
	prof.AddBlock(b1.ID, 40)
	prof.AddBlock(b2.ID, 100)
	prof.AddBlock(b3.ID, 25)
	prof.AddBlock(b4.ID, 75)
	prof.AddEdge(b0.ID, b2.ID, 60)
	prof.AddEdge(b0.ID, b1.ID, 40)
	prof.AddEdge(b1.ID, b2.ID, 40)
	prof.AddEdge(b2.ID, b3.ID, 25)
	prof.AddEdge(b2.ID, b4.ID, 75)

	dup := TailDuplicate(f, prof, b0.ID, b2.ID)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// bb0 now targets the duplicate; bb1 still targets the original.
	for _, s := range b0.Succs() {
		if s == b2.ID {
			t.Fatal("bb0 still points at the original merge")
		}
	}
	if b1.FallThrough != b2.ID {
		t.Fatal("bb1's edge must be untouched")
	}
	// Weight conservation.
	if got := prof.BlockWeight(dup.ID); got != 60 {
		t.Errorf("dup weight = %v, want 60", got)
	}
	if got := prof.BlockWeight(b2.ID); got != 40 {
		t.Errorf("orig weight = %v, want 40", got)
	}
	// Outgoing edges split 60/40.
	if got := prof.EdgeWeight(dup.ID, b3.ID); got != 15 {
		t.Errorf("dup->bb3 = %v, want 15", got)
	}
	if got := prof.EdgeWeight(b2.ID, b3.ID); got != 10 {
		t.Errorf("orig->bb3 = %v, want 10", got)
	}
	if got := prof.EdgeWeight(b0.ID, dup.ID); got != 60 {
		t.Errorf("bb0->dup = %v, want 60", got)
	}
	if got := prof.EdgeWeight(b0.ID, b2.ID); got != 0 {
		t.Errorf("bb0->orig = %v, want 0", got)
	}
	// The duplicate's ops trace back to the originals.
	if dup.Orig != b2.ID {
		t.Error("dup Orig wrong")
	}
	for i, op := range dup.Ops {
		if op.Orig != b2.Ops[i].ID {
			t.Error("dup op Orig wrong")
		}
	}
}
