package region

import (
	"fmt"

	"treegion/internal/ir"
	"treegion/internal/profile"
)

// HistBuckets are the bucket upper ranges of Hist, chosen to resolve the
// paper's region-shape discussion: singleton blocks, pairs, then powers of
// two up to the "wide tree" tail.
var HistBuckets = [6]string{"1", "2", "3-4", "5-8", "9-16", "17+"}

// Hist is a fixed-bucket histogram of small integer region measures (block
// counts, root-to-leaf path counts). The value-typed representation adds
// and compares cheaply and keeps region stats allocation-free.
type Hist [6]int

func histBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	default:
		return 5
	}
}

// Observe counts one measure of size n.
func (h *Hist) Observe(n int) { h[histBucket(n)]++ }

// Add returns the bucket-wise sum.
func (h Hist) Add(o Hist) Hist {
	for i := range h {
		h[i] += o[i]
	}
	return h
}

// Total returns the number of observations.
func (h Hist) Total() int {
	n := 0
	for _, v := range h {
		n += v
	}
	return n
}

// String renders the non-empty buckets compactly, e.g. "1:3 3-4:2 17+:1".
func (h Hist) String() string {
	out := ""
	for i, v := range h {
		if v == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", HistBuckets[i], v)
	}
	if out == "" {
		return "empty"
	}
	return out
}

// Stats aggregates the paper's region-characteristic measures (Tables 1, 2
// and 4): region count, average and maximum basic-block count, and average
// op count per region, plus the size and path-count histograms the
// telemetry layer exports.
type Stats struct {
	Count     int
	AvgBlocks float64
	MaxBlocks int
	AvgOps    float64
	// Blocks histograms the block count per counted region.
	Blocks Hist
	// Paths histograms the root-to-leaf path count per counted region.
	Paths Hist
}

// ComputeStats aggregates over regions. If prof is non-nil, only regions
// whose root has nonzero profile weight are counted — the paper's Table 4
// counts only regions formed from executed code (its superblock former only
// considers profiled traces at all).
func ComputeStats(regions []*Region, prof *profile.Data) Stats {
	var s Stats
	totalBlocks, totalOps := 0, 0
	for _, r := range regions {
		if prof != nil && prof.BlockWeight(r.Root) == 0 {
			continue
		}
		s.Count++
		nb := len(r.Blocks)
		totalBlocks += nb
		if nb > s.MaxBlocks {
			s.MaxBlocks = nb
		}
		totalOps += r.NumOps()
		s.Blocks.Observe(nb)
		s.Paths.Observe(r.PathCount())
	}
	if s.Count > 0 {
		s.AvgBlocks = float64(totalBlocks) / float64(s.Count)
		s.AvgOps = float64(totalOps) / float64(s.Count)
	}
	return s
}

// Merge combines per-function stats into program-level stats (weighted by
// region count).
func Merge(parts []Stats) Stats {
	var out Stats
	totalBlocks, totalOps := 0.0, 0.0
	for _, p := range parts {
		out.Count += p.Count
		totalBlocks += p.AvgBlocks * float64(p.Count)
		totalOps += p.AvgOps * float64(p.Count)
		if p.MaxBlocks > out.MaxBlocks {
			out.MaxBlocks = p.MaxBlocks
		}
		out.Blocks = out.Blocks.Add(p.Blocks)
		out.Paths = out.Paths.Add(p.Paths)
	}
	if out.Count > 0 {
		out.AvgBlocks = totalBlocks / float64(out.Count)
		out.AvgOps = totalOps / float64(out.Count)
	}
	return out
}

// CheckPartition verifies that regions exactly partition the blocks of fn
// reachable via g-membership semantics: every block of fn appears in exactly
// one region. It returns the first violation, or nil.
func CheckPartition(fn *ir.Function, regions []*Region) error {
	owner := make(map[ir.BlockID]int)
	for i, r := range regions {
		for _, b := range r.Blocks {
			if prev, dup := owner[b]; dup {
				return fmt.Errorf("bb%d in regions %d and %d", b, prev, i)
			}
			owner[b] = i
		}
	}
	for _, b := range fn.Blocks {
		if _, ok := owner[b.ID]; !ok {
			return fmt.Errorf("bb%d in no region", b.ID)
		}
	}
	return nil
}
