package region

import (
	"fmt"

	"treegion/internal/ir"
	"treegion/internal/profile"
)

// Stats aggregates the paper's region-characteristic measures (Tables 1, 2
// and 4): region count, average and maximum basic-block count, and average
// op count per region.
type Stats struct {
	Count     int
	AvgBlocks float64
	MaxBlocks int
	AvgOps    float64
}

// ComputeStats aggregates over regions. If prof is non-nil, only regions
// whose root has nonzero profile weight are counted — the paper's Table 4
// counts only regions formed from executed code (its superblock former only
// considers profiled traces at all).
func ComputeStats(regions []*Region, prof *profile.Data) Stats {
	var s Stats
	totalBlocks, totalOps := 0, 0
	for _, r := range regions {
		if prof != nil && prof.BlockWeight(r.Root) == 0 {
			continue
		}
		s.Count++
		nb := len(r.Blocks)
		totalBlocks += nb
		if nb > s.MaxBlocks {
			s.MaxBlocks = nb
		}
		totalOps += r.NumOps()
	}
	if s.Count > 0 {
		s.AvgBlocks = float64(totalBlocks) / float64(s.Count)
		s.AvgOps = float64(totalOps) / float64(s.Count)
	}
	return s
}

// Merge combines per-function stats into program-level stats (weighted by
// region count).
func Merge(parts []Stats) Stats {
	var out Stats
	totalBlocks, totalOps := 0.0, 0.0
	for _, p := range parts {
		out.Count += p.Count
		totalBlocks += p.AvgBlocks * float64(p.Count)
		totalOps += p.AvgOps * float64(p.Count)
		if p.MaxBlocks > out.MaxBlocks {
			out.MaxBlocks = p.MaxBlocks
		}
	}
	if out.Count > 0 {
		out.AvgBlocks = totalBlocks / float64(out.Count)
		out.AvgOps = totalOps / float64(out.Count)
	}
	return out
}

// CheckPartition verifies that regions exactly partition the blocks of fn
// reachable via g-membership semantics: every block of fn appears in exactly
// one region. It returns the first violation, or nil.
func CheckPartition(fn *ir.Function, regions []*Region) error {
	owner := make(map[ir.BlockID]int)
	for i, r := range regions {
		for _, b := range r.Blocks {
			if prev, dup := owner[b]; dup {
				return fmt.Errorf("bb%d in regions %d and %d", b, prev, i)
			}
			owner[b] = i
		}
	}
	for _, b := range fn.Blocks {
		if _, ok := owner[b.ID]; !ok {
			return fmt.Errorf("bb%d in no region", b.ID)
		}
	}
	return nil
}
