package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePaths assigns each golden fixture the import path it is analyzed
// under. The policy lists (DetmapCriticalPackages, WallclockCriticalPackages)
// match import paths, so fixtures for policy-scoped analyzers borrow a
// critical path; the rest run under neutral paths.
var fixturePaths = map[string]string{
	"detmap":      "treegion/internal/sched",
	"wallclock":   "treegion/internal/sched",
	"recsize":     "treegion/internal/store",
	"atomicity":   "treegion/internal/fixture/atomicity",
	"arenaescape": "treegion/internal/fixture/arenaescape",
	"apierr":      "treegion/internal/fixture/apierr",
}

// TestFixtures runs the full analyzer suite over each package under
// testdata/vet and checks the findings against the fixture's // want
// annotations:
//
//	x := f() // want analyzer "regex"     expectation on this line
//	// want analyzer "regex"              expectation on the next line
//
// Every expectation must be matched by a finding and every finding by an
// expectation, so a fixture fails both when its analyzer goes blind and
// when it over-reports.
func TestFixtures(t *testing.T) {
	dirs, err := os.ReadDir(filepath.Join("testdata", "vet"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		seen[d.Name()] = true
		t.Run(d.Name(), func(t *testing.T) { runFixture(t, d.Name()) })
	}
	// Every analyzer must have a fixture (the ci gate for the gate).
	for _, a := range Analyzers() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s has no fixture under testdata/vet", a.Name)
		}
	}
}

func runFixture(t *testing.T, name string) {
	dir := filepath.Join("testdata", "vet", name)
	path, ok := fixturePaths[name]
	if !ok {
		t.Fatalf("no import path registered for fixture %q", name)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var fnames []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		fnames = append(fnames, fname)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		Dirs:  ParseDirectives(fset, files),
	}
	diags := Run(fset, []*Package{pkg}, Analyzers())

	wants := parseWants(t, fnames)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if matched[i] || w.file != d.File || w.line != d.Line || w.analyzer != d.Analyzer {
				continue
			}
			if !w.re.MatchString(d.Message) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i := range wants {
		if !matched[i] {
			w := &wants[i]
			t.Errorf("%s:%d: expected %s finding matching %q, got none",
				w.file, w.line, w.analyzer, w.re)
		}
	}
}

type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
}

var wantRE = regexp.MustCompile(`want ([a-z]+) "((?:[^"\\]|\\.)*)"`)

// parseWants scans fixture sources for // want annotations. A comment that
// is the whole line anchors its expectation to the following line (used
// when the finding lands on a directive line, which cannot carry a second
// comment); a trailing comment anchors to its own line.
func parseWants(t *testing.T, fnames []string) []want {
	var out []want
	for _, fname := range fnames {
		src, err := os.ReadFile(fname)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			ms := wantRE.FindAllStringSubmatch(line, -1)
			if len(ms) == 0 {
				continue
			}
			target := i + 1 // 1-based line of this line
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				target++ // standalone want comment: expectation is for the next line
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", fname, i+1, m[2], err)
				}
				out = append(out, want{file: fname, line: target, analyzer: m[1], re: re})
			}
		}
	}
	return out
}
