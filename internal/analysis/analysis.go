// Package analysis is treegion-vet: a static-analysis suite over the
// repository's own invariants. Every performance PR in this tree is
// certified by one property — schedules are byte-identical and
// deterministic in (IR, profile, config) — and the analyzers here encode
// the defect classes that would silently break it: map-iteration order
// leaking into output (detmap), mixed atomic/plain field access
// (atomicity), pooled scratch escaping into results (arenaescape), wall
// clock feeding result fields (wallclock), HTTP handlers bypassing the
// shared error schema (apierr), and fixed-width codec records drifting
// from their declared sizes (recsize).
//
// The driver is stdlib-only: packages are discovered with `go list`,
// parsed with go/parser and type-checked with go/types; there is no
// dependency on golang.org/x/tools. See DESIGN.md §14 for the analyzer
// inventory and the annotation syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, locatable and machine-readable. The JSON
// field set is the contract of `treegion-vet -json`.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Exactly one of Run and RunGlobal is
// set: Run sees one package at a time; RunGlobal sees every loaded package
// in one call (atomicity needs the whole program to pair atomic and plain
// accesses across packages).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// RunGlobal runs once with a pass per loaded package.
	RunGlobal func([]*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path. External test packages carry the
	// "_test" suffix; CriticalPath strips it for policy matching.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Dirs  *Directives

	diags *[]Diagnostic
}

// CriticalPath is the import path used for policy matching: external test
// packages answer for the package they test.
func (p *Pass) CriticalPath() string {
	return strings.TrimSuffix(p.Path, "_test")
}

// Reportf records a finding at pos unless a suppression directive covers
// it. detmap findings are suppressed by //det:ordered; every analyzer is
// suppressed by a matching //vet:ignore <analyzer> <why>. A directive
// covers its own line, the statement starting on the line below it, and
// everything lexically inside that statement.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Dirs.Suppresses(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (use or def).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// CalleeFunc resolves call's callee to a *types.Func (function or method),
// or nil for builtins, conversions and indirect calls through plain vars.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// Analyzers is the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetmapAnalyzer,
		AtomicityAnalyzer,
		ArenaEscapeAnalyzer,
		WallclockAnalyzer,
		APIErrAnalyzer,
		RecSizeAnalyzer,
	}
}

// AnalyzerNames returns the known analyzer names (the valid targets of a
// //vet:ignore directive).
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the analyzers over the packages and returns the findings in
// stable order (file, line, col, analyzer, message). Directive validation
// (unjustified or mistargeted suppressions) runs as part of every call, so
// suppression debt cannot hide a malformed annotation.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	pass := func(a *Analyzer, pkg *Package) *Pass {
		return &Pass{
			Analyzer: a,
			Fset:     fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Dirs:     pkg.Dirs,
			diags:    &diags,
		}
	}
	for _, a := range analyzers {
		if a.RunGlobal != nil {
			passes := make([]*Pass, len(pkgs))
			for i, pkg := range pkgs {
				passes[i] = pass(a, pkg)
			}
			a.RunGlobal(passes)
			continue
		}
		for _, pkg := range pkgs {
			a.Run(pass(a, pkg))
		}
	}
	for _, pkg := range pkgs {
		diags = append(diags, ValidateDirectives(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
