package analysis

import (
	"go/ast"
)

// APIErrAnalyzer enforces the shared wire error schema: every HTTP surface
// in this repo (daemon, router) answers failures with the structured body
// from internal/api, written through api.WriteError. A call to http.Error
// bypasses that schema — clients would see text/plain where every other
// error is the {"error":{...}} envelope — so any http.Error call in
// non-test code is a finding. Test files are exempt: tests stand up
// deliberately broken backends.
var APIErrAnalyzer = &Analyzer{
	Name: "apierr",
	Doc:  "HTTP handlers must emit errors via internal/api.WriteError, never http.Error",
	Run:  runAPIErr,
}

func runAPIErr(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				pass.Reportf(call.Pos(),
					"http.Error bypasses the shared error schema — use api.WriteError so clients parse one error shape from every tier")
			}
			return true
		})
	}
}
