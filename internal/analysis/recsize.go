package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RecSizeAnalyzer proves the store codec's fixed-width record layouts. The
// tgart2 payload is a sequence of fixed-width little-endian records whose
// sizes are declared as named constants (opRecSize = 38, ...); the encode
// loop appends fields with typed writer calls (w.u8, w.i32, w.f64) and the
// decode loop reads them at explicit byte offsets (le.Uint32(rec[4:]),
// rec[16]). If anyone adds a field to one side without bumping the
// constant — or bumps the constant without adding the field — the entry
// silently corrupts on the next round trip.
//
// A loop annotated //rec:size <constName> is checked statically:
//
//   - encode form: the byte widths of the writer calls in the loop body
//     must sum exactly to the constant (u8/bool = 1, u32/i32 = 4,
//     u64/i64/f64 = 8). Variable-width writes (str) and control flow make
//     the loop unsizable and are findings themselves.
//   - decode form: the byte intervals read off the record — rec[off],
//     le.Uint16/32/64(rec[off:]) and the strided form raw[i*K+off:] — must
//     tile [0, K) exactly: no gaps, no overlaps, no reads past the end.
//
// In internal/store/codec.go the analyzer additionally requires that every
// record-size argument of reader.count/reader.take is a named constant, so
// a bare magic number can never drift away from its loop.
var RecSizeAnalyzer = &Analyzer{
	Name: "recsize",
	Doc:  "fixed-width codec records must statically sum to their declared size constants",
	Run:  runRecSize,
}

// writerWidths are the byte widths of the fixed-width writer methods.
var writerWidths = map[string]int{
	"u8": 1, "bool": 1,
	"u16": 2,
	"u32": 4, "i32": 4,
	"u64": 8, "i64": 8, "f64": 8,
}

// readerWidths are the byte widths of the little-endian accessor calls.
var readerWidths = map[string]int{
	"Uint16": 2, "Uint32": 4, "Uint64": 8,
	"PutUint16": 2, "PutUint32": 4, "PutUint64": 8,
}

func runRecSize(pass *Pass) {
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		hasDirective := false
		for i := range pass.Dirs.All {
			d := &pass.Dirs.All[i]
			if d.Kind == "rec:size" && d.File == fname {
				hasDirective = true
				break
			}
		}
		if !hasDirective {
			continue
		}
		checkRecSizeFile(pass, f, fname)
	}
	// The codec itself must carry the annotations: a codec.go without any
	// //rec:size directive means the wiring rotted away.
	if strings.HasSuffix(pass.CriticalPath(), "internal/store") {
		for _, f := range pass.Files {
			fname := pass.Fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(fname, "/codec.go") {
				continue
			}
			found := false
			for i := range pass.Dirs.All {
				d := &pass.Dirs.All[i]
				if d.Kind == "rec:size" && d.File == fname {
					found = true
					break
				}
			}
			if !found {
				pass.Reportf(f.Pos(),
					"codec.go declares fixed-width records but carries no //rec:size annotations — the record layouts are unverified")
			}
		}
	}
}

func checkRecSizeFile(pass *Pass, f *ast.File, fname string) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var pos token.Pos
		switch l := n.(type) {
		case *ast.ForStmt:
			body, pos = l.Body, l.For
		case *ast.RangeStmt:
			body, pos = l.Body, l.For
		default:
			return true
		}
		line := pass.Fset.Position(pos).Line
		constName, ok := pass.Dirs.RecSizeFor(fname, line)
		if !ok {
			return true
		}
		want, ok := lookupIntConst(pass, constName)
		if !ok {
			pass.Reportf(pos, "//rec:size names %q, which is not an integer constant in this package", constName)
			return true
		}
		checkRecLoop(pass, body, pos, constName, want)
		return true
	})

	// In the codec, reader.count/reader.take record sizes must be named
	// constants so the loop annotations cannot drift from the byte math.
	if strings.HasSuffix(fname, "/codec.go") {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "count" && sel.Sel.Name != "take") || len(call.Args) != 1 {
				return true
			}
			if !isReaderRecv(pass, sel.X) {
				return true
			}
			// take is also the primitive field reader (take(4) inside u32),
			// so only its strided n*K record form is held to the rule.
			if sel.Sel.Name == "take" {
				if bin, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr); !ok || bin.Op != token.MUL {
					return true
				}
			}
			reportBareSizeLiterals(pass, call.Args[0], sel.Sel.Name)
			return true
		})
	}
}

// isReaderRecv reports whether e has the codec's *reader type.
func isReaderRecv(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "reader"
}

// reportBareSizeLiterals flags integer literals in a count/take size
// expression; every record size must be a named constant.
func reportBareSizeLiterals(pass *Pass, e ast.Expr, callee string) {
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return true
		}
		pass.Reportf(lit.Pos(),
			"bare record size %s in r.%s — declare a named *RecSize constant and annotate its loop with //rec:size",
			lit.Value, callee)
		return true
	})
}

// lookupIntConst resolves a package-level integer constant by name.
func lookupIntConst(pass *Pass, name string) (int64, bool) {
	obj := pass.Pkg.Scope().Lookup(name)
	c, ok := obj.(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := constant.Int64Val(c.Val())
	if !ok {
		return 0, false
	}
	return v, true
}

// interval is one [lo, hi) byte range read off a record.
type interval struct {
	lo, hi int
	pos    token.Pos
}

// checkRecLoop verifies one annotated loop against its size constant. The
// loop is encode-form if it contains fixed-width writer calls, decode-form
// if it contains byte reads; a loop with neither (or both) is a finding.
func checkRecLoop(pass *Pass, body *ast.BlockStmt, pos token.Pos, constName string, want int64) {
	writeSum := 0
	writeCalls := 0
	var reads []interval
	unsizable := ""

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if wWidth, ok := writerWidths[name]; ok && isWriterRecv(pass, sel.X) {
				writeSum += wWidth
				writeCalls++
				return true
			}
			if name == "str" && isWriterRecv(pass, sel.X) {
				unsizable = "variable-width str write"
				return true
			}
			if rWidth, ok := readerWidths[name]; ok && len(x.Args) >= 1 {
				if iv, ok := recOffset(pass, x.Args[0]); ok {
					reads = append(reads, interval{lo: iv, hi: iv + rWidth, pos: x.Pos()})
				} else {
					unsizable = fmt.Sprintf("unrecognized offset expression in %s", name)
				}
				return true
			}
		case *ast.IndexExpr:
			// rec[k] single-byte read — only when indexing a []byte with a
			// constant (or strided-constant) offset and not the index side
			// of an assignment into another array (handled by parent walk).
			if isByteSlice(pass.TypeOf(x.X)) {
				if off, ok := recIndexOffset(pass, x); ok {
					reads = append(reads, interval{lo: off, hi: off + 1, pos: x.Pos()})
				}
			}
		}
		return true
	})

	switch {
	case unsizable != "":
		pass.Reportf(pos, "loop annotated //rec:size %s is not statically sizable: %s", constName, unsizable)
	case writeCalls > 0 && len(reads) > 0:
		pass.Reportf(pos, "loop annotated //rec:size %s mixes writer calls and byte reads — split the loop", constName)
	case writeCalls > 0:
		if int64(writeSum) != want {
			pass.Reportf(pos,
				"record writes sum to %d bytes but %s = %d — the encode loop and the size constant disagree",
				writeSum, constName, want)
		}
	case len(reads) > 0:
		checkTiling(pass, pos, reads, constName, want)
	default:
		pass.Reportf(pos, "loop annotated //rec:size %s contains no recognizable record accesses", constName)
	}
}

// checkTiling verifies the read intervals tile [0, want) exactly.
func checkTiling(pass *Pass, pos token.Pos, reads []interval, constName string, want int64) {
	sort.Slice(reads, func(i, j int) bool { return reads[i].lo < reads[j].lo })
	next := 0
	for _, iv := range reads {
		switch {
		case iv.lo > next:
			pass.Reportf(iv.pos,
				"record read at offset %d leaves bytes [%d,%d) of %s unread — gap in the decode", iv.lo, next, iv.lo, constName)
			next = iv.hi
		case iv.lo < next:
			pass.Reportf(iv.pos,
				"record read at offset %d overlaps the previous field ending at %d in a //rec:size %s loop", iv.lo, next, constName)
			if iv.hi > next {
				next = iv.hi
			}
		default:
			next = iv.hi
		}
	}
	if int64(next) != want {
		pass.Reportf(pos,
			"record reads cover %d bytes but %s = %d — the decode loop and the size constant disagree",
			next, constName, want)
	}
}

// isWriterRecv reports whether e has the codec's *writer type.
func isWriterRecv(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "writer"
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// recOffset extracts the constant byte offset from the argument of a
// little-endian accessor: rec[4:], rec (offset 0), or the strided form
// raw[i*K+off:] / raw[i*K:].
func recOffset(pass *Pass, e ast.Expr) (int, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		if x.Low == nil {
			return 0, true
		}
		return exprByteOffset(pass, x.Low)
	case *ast.Ident:
		return 0, true
	}
	return 0, false
}

// recIndexOffset extracts the offset of a single-byte read rec[k] or the
// strided raw[i*K+off].
func recIndexOffset(pass *Pass, x *ast.IndexExpr) (int, bool) {
	return exprByteOffset(pass, x.Index)
}

// exprByteOffset evaluates an index/slice offset of the forms: constant c,
// i*K, i*K+c — returning the per-record offset (c, or 0 for the bare
// stride).
func exprByteOffset(pass *Pass, e ast.Expr) (int, bool) {
	e = ast.Unparen(e)
	if c, ok := intConstValue(pass, e); ok {
		return int(c), true
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	switch bin.Op {
	case token.MUL:
		// i*K: offset 0 within the record.
		if _, ok := intConstValue(pass, bin.Y); ok {
			return 0, true
		}
		if _, ok := intConstValue(pass, bin.X); ok {
			return 0, true
		}
	case token.ADD:
		// i*K + c  (or c + i*K)
		if c, ok := intConstValue(pass, bin.Y); ok {
			if isStride(pass, bin.X) {
				return int(c), true
			}
		}
		if c, ok := intConstValue(pass, bin.X); ok {
			if isStride(pass, bin.Y) {
				return int(c), true
			}
		}
	}
	return 0, false
}

// isStride reports whether e has the form i*K with K constant.
func isStride(pass *Pass, e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || bin.Op != token.MUL {
		return false
	}
	_, xc := intConstValue(pass, bin.X)
	_, yc := intConstValue(pass, bin.Y)
	return xc != yc // exactly one side constant
}

// intConstValue returns e's compile-time integer value, if it has one.
func intConstValue(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
