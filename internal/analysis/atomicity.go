package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicityAnalyzer enforces the atomics discipline: a variable or struct
// field that is touched through sync/atomic's function API anywhere in the
// program must never be plain-loaded or plain-stored anywhere else. Mixing
// the two is a data race the race detector only catches when both sides
// execute in one run; statically, any plain mention of an atomic location
// outside an atomic call is a finding. (Fields of type atomic.Int64 & co
// are safe by construction and outside this analyzer's scope.)
//
// The analyzer is global: the atomic-location set is collected across every
// loaded package first, then every plain access is checked against it, so
// an exported counter atomically updated in one package and read plainly in
// another is still caught.
var AtomicityAnalyzer = &Analyzer{
	Name:      "atomicity",
	Doc:       "locations accessed via sync/atomic must never be plain-accessed",
	RunGlobal: runAtomicity,
}

func runAtomicity(passes []*Pass) {
	// Locations are keyed by declaration position, not object identity: the
	// loader type-checks a package twice (plain, then test-augmented), and
	// the two builds yield distinct types.Object values for one declaration
	// — but they share parsed ASTs, so the declaration Pos is identical.
	type loc struct {
		name  string
		first token.Pos // first atomic use
	}
	atomicLoc := map[token.Pos]loc{}
	blessed := map[ast.Node]bool{} // selector/ident nodes inside atomic call args

	// Phase 1: collect every &x.f (or &x) passed to a sync/atomic function.
	for _, pass := range passes {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.CalleeFunc(call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				obj, node := resolveLoc(pass, addr.X)
				if obj == nil || !obj.Pos().IsValid() {
					return true
				}
				if _, seen := atomicLoc[obj.Pos()]; !seen {
					atomicLoc[obj.Pos()] = loc{name: obj.Name(), first: call.Pos()}
				}
				blessed[node] = true
				return true
			})
		}
	}
	if len(atomicLoc) == 0 {
		return
	}

	// Phase 2: any other mention of an atomic location is a plain access.
	for _, pass := range passes {
		for _, f := range pass.Files {
			// The Sel ident inside a selector is subsumed by the selector
			// node itself; collect them so each access reports once.
			subsumed := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					subsumed[sel.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				var obj types.Object
				switch e := n.(type) {
				case *ast.SelectorExpr:
					obj = pass.ObjectOf(e.Sel)
				case *ast.Ident:
					if subsumed[e] {
						return true
					}
					// Uses only: the declaration of the location is not an
					// access.
					obj = pass.Info.Uses[e]
				default:
					return true
				}
				if obj == nil || blessed[n] || !obj.Pos().IsValid() {
					return true
				}
				l, isAtomic := atomicLoc[obj.Pos()]
				if !isAtomic {
					return true
				}
				pass.Reportf(n.Pos(),
					"plain access to %s, which is accessed with sync/atomic at %s (use the atomic API everywhere)",
					l.name, pass.Fset.Position(l.first))
				return true
			})
		}
	}
}

// resolveLoc resolves the operand of &... to the variable/field object it
// addresses and the AST node that mentions it.
func resolveLoc(pass *Pass, e ast.Expr) (types.Object, ast.Node) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel), x
	case *ast.Ident:
		return pass.ObjectOf(x), x
	}
	return nil, nil
}
