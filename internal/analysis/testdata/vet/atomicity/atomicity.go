// Fixture for the atomicity analyzer: locations touched via sync/atomic
// must never be plain-accessed.
package atomicity

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
}

var global int64

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&global, 1)
}

func read(c *counters) int64 {
	return c.hits + // want atomicity "plain access to hits"
		atomic.LoadInt64(&global)
}

func plainGlobal() int64 {
	return global // want atomicity "plain access to global"
}

func coldPath(c *counters) {
	// cold is never touched atomically; plain access is fine.
	c.cold++
}

func blessedUses(c *counters) int64 {
	// Atomic API uses of an atomic location are not findings.
	return atomic.SwapInt64(&c.hits, 0)
}
