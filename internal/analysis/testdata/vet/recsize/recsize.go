// Fixture for the recsize analyzer: fixed-width record loops must
// statically sum to their declared size constants.
package recsize

import "encoding/binary"

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, 0)
	_ = v
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type rec struct {
	id   int32
	kind uint8
	val  float64
}

const (
	goodRecSize = 13 // i32 id + u8 kind + f64 val
	// Deliberately wrong: the loop below writes 13 bytes.
	badRecSize = 10
	gapRecSize = 13
)

func encodeGood(w *writer, recs []rec) {
	//rec:size goodRecSize
	for _, r := range recs {
		w.i32(r.id)
		w.u8(r.kind)
		w.f64(r.val)
	}
}

func encodeBad(w *writer, recs []rec) {
	//rec:size badRecSize
	for _, r := range recs { // want recsize "sum to 13 bytes but badRecSize = 10"
		w.i32(r.id)
		w.u8(r.kind)
		w.f64(r.val)
	}
}

func decodeGood(raw []byte, n int) []rec {
	le := binary.LittleEndian
	out := make([]rec, n)
	//rec:size goodRecSize
	for i := range out {
		r := raw[i*goodRecSize : i*goodRecSize+goodRecSize]
		out[i].id = int32(le.Uint32(r[0:]))
		out[i].kind = r[4]
		out[i].val = float64(le.Uint64(r[5:]))
	}
	return out
}

func decodeGap(raw []byte, n int) []rec {
	le := binary.LittleEndian
	out := make([]rec, n)
	//rec:size gapRecSize
	for i := range out {
		r := raw[i*gapRecSize : i*gapRecSize+gapRecSize]
		out[i].id = int32(le.Uint32(r[0:]))
		// kind at offset 4 is never read: bytes [4,5) are a gap.
		out[i].val = float64(le.Uint64(r[5:])) // want recsize "leaves bytes \[4,5\)"
	}
	return out
}

func encodeUnsizable(w *writer, names []string) {
	//rec:size goodRecSize
	for _, s := range names { // want recsize "not statically sizable"
		w.str(s)
	}
}
