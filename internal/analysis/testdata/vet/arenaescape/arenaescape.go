// Fixture for the arenaescape analyzer: pooled buffers and compile
// scratch must not escape into results.
package arenaescape

import "sync"

type Scratch struct {
	buf   []int
	stack []int
}

type result struct {
	rows []int
}

var pool = sync.Pool{New: func() any { return new([]byte) }}

func leakToField(sc *Scratch, out *result) {
	out.rows = sc.buf // want arenaescape "outlives the scratch reuse boundary"
}

func leakByReturn(sc *Scratch) []int {
	return sc.buf // want arenaescape "callers would retain a reused buffer"
}

func leakViaLiteral(sc *Scratch) *result {
	r := &result{rows: sc.stack} // want arenaescape "composite literal"
	return r
}

func leakAlias(sc *Scratch) []int {
	b := sc.buf
	return b // want arenaescape "callers would retain a reused buffer"
}

func getWithoutPut() []byte {
	bp := pool.Get().(*[]byte) // want arenaescape "without a Put in the same function"
	return append((*bp)[:0], 1, 2, 3)
}

func disciplined() int {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	return len(*bp)
}

func storeBack(sc *Scratch) {
	// Stores into the scratch itself stay inside the boundary.
	sc.stack = sc.buf[:0]
}

func copied(sc *Scratch, out *result) {
	// Laundering through a call is the documented copy contract.
	out.rows = cloneInts(sc.buf)
}

func cloneInts(v []int) []int {
	out := make([]int, len(v))
	copy(out, v)
	return out
}
