// Fixture for the apierr analyzer: handlers must answer failures through
// the shared error schema, never http.Error.
package apierr

import "net/http"

func handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "nope", http.StatusMethodNotAllowed) // want apierr "bypasses the shared error schema"
		return
	}
	w.WriteHeader(http.StatusOK)
}

func writeJSONError(w http.ResponseWriter, status int) {
	// The schema-conforming path (stand-in for api.WriteError).
	w.WriteHeader(status)
	_, _ = w.Write([]byte(`{"error":{}}`))
}
