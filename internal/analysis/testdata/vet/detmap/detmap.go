// Fixture for the detmap analyzer. Loaded by the harness under the
// determinism-critical import path treegion/internal/sched.
package detmap

import "sort"

func keys(m map[string]int) []string {
	var out []string
	// The blessed collect-then-sort idiom: no finding.
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func emit(m map[string]int, sink func(string, int)) {
	for k, v := range m { // want detmap "iteration-order dependent"
		sink(k, v)
	}
}

func sum(m map[string]int) int {
	total := 0
	//det:ordered commutative sum over values; order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}

func unjustified(m map[string]int) int {
	total := 0
	// want annotation "requires a justification"
	//det:ordered
	for _, v := range m {
		total += v
	}
	return total
}

func collectNoSort(m map[string]int, sink func([]string)) {
	var out []string
	for k := range m { // want detmap "iteration-order dependent"
		out = append(out, k)
	}
	sink(out)
}
