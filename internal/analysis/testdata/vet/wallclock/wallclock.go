// Fixture for the wallclock analyzer. Loaded under the deterministic
// import path treegion/internal/sched: results there must be a pure
// function of the inputs, so no wall-clock reading may feed them.
package wallclock

import "time"

type Result struct {
	Cycles  int
	Elapsed int64
}

var lastRun int64

func timed(work func()) *Result {
	t0 := time.Now()
	work()
	d := time.Since(t0)
	r := &Result{Cycles: 10}
	r.Elapsed = d.Nanoseconds() // want wallclock "stored into r.Elapsed"
	return r
}

func toGlobal() {
	lastRun = time.Now().UnixNano() // want wallclock "stored in package-level state"
}

func inLiteral(work func()) Result {
	t0 := time.Now()
	work()
	return Result{Elapsed: int64(time.Since(t0))} // want wallclock "composite literal"
}

func durationFlowsFreely(work func()) {
	// time-typed values may move through locals and into ordinary calls
	// (the callee is analyzed on its own); only a naked scalar derived from
	// them is restricted, and returning any reading is a finding.
	t0 := time.Now()
	work()
	d := time.Since(t0)
	observe(d)
}

func observe(time.Duration) {}
