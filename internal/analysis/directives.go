package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The three directive comments treegion-vet understands. Each must be a
// line comment starting exactly with the marker (no space after //, the
// same convention as //go: directives):
//
//	//det:ordered <why>          suppress detmap on the next statement;
//	                             the justification is mandatory
//	//vet:ignore <analyzer> <why> suppress the named analyzer likewise
//	//rec:size <constName>       declare the fixed-width record size the
//	                             next loop must statically sum to
//
// A directive covers its own line, the statement that starts on the same
// or the following line, and everything lexically inside that statement.
const (
	dirOrdered = "det:ordered"
	dirIgnore  = "vet:ignore"
	dirRecSize = "rec:size"
)

// Directive is one parsed annotation.
type Directive struct {
	Kind string // dirOrdered, dirIgnore or dirRecSize
	// Analyzer is the suppression target (dirIgnore only).
	Analyzer string
	// Arg is the justification text (suppressions) or the record-size
	// constant name (rec:size).
	Arg  string
	File string
	Pos  token.Pos
	Line int
	// EndLine is the last line the directive covers (the end of the
	// statement it attaches to; == Line when it attaches to nothing).
	EndLine int
}

// Directives indexes every annotation of one package.
type Directives struct {
	All []Directive
}

// ParseDirectives scans the package's comments and attaches each directive
// to the statement or declaration that starts on its line or the line
// below, extending its coverage to that node's extent.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{}
	for _, f := range files {
		var dirs []Directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok { // block comments cannot carry directives
					continue
				}
				var kind string
				switch {
				case strings.HasPrefix(text, dirOrdered):
					kind = dirOrdered
				case strings.HasPrefix(text, dirIgnore):
					kind = dirIgnore
				case strings.HasPrefix(text, dirRecSize):
					kind = dirRecSize
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				arg := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(text, kind), ":"))
				dir := Directive{
					Kind: kind,
					Arg:  arg,
					File: pos.Filename,
					Pos:  c.Pos(),
					Line: pos.Line,
				}
				if kind == dirIgnore {
					dir.Analyzer, dir.Arg, _ = strings.Cut(arg, " ")
					dir.Arg = strings.TrimSpace(dir.Arg)
				}
				dir.EndLine = dir.Line
				dirs = append(dirs, dir)
			}
		}
		if len(dirs) == 0 {
			continue
		}
		// Attach: a directive at line L covers any statement/decl starting
		// at L or L+1, out to the largest such node's end line.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl:
			default:
				return true
			}
			start := fset.Position(n.Pos()).Line
			end := fset.Position(n.End()).Line
			for i := range dirs {
				if dirs[i].Line == start || dirs[i].Line == start-1 {
					if end > dirs[i].EndLine {
						dirs[i].EndLine = end
					}
				}
			}
			return true
		})
		d.All = append(d.All, dirs...)
	}
	return d
}

// Suppresses reports whether a directive shields the given analyzer at
// (file, line). detmap answers to //det:ordered; every analyzer answers to
// a //vet:ignore naming it.
func (d *Directives) Suppresses(analyzer, file string, line int) bool {
	if d == nil {
		return false
	}
	for i := range d.All {
		dir := &d.All[i]
		if dir.File != file || line < dir.Line || line > dir.EndLine {
			continue
		}
		switch dir.Kind {
		case dirOrdered:
			if analyzer == "detmap" {
				return true
			}
		case dirIgnore:
			if dir.Analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// RecSizeFor returns the rec:size constant name covering the loop that
// starts at (file, line), if any.
func (d *Directives) RecSizeFor(file string, line int) (string, bool) {
	for i := range d.All {
		dir := &d.All[i]
		if dir.Kind == dirRecSize && dir.File == file &&
			(dir.Line == line || dir.Line == line-1) {
			return dir.Arg, true
		}
	}
	return "", false
}

// OrderedCount returns the number of //det:ordered annotations in the
// package — the suppression debt `treegion-vet -v` surfaces.
func (d *Directives) OrderedCount() int {
	n := 0
	for i := range d.All {
		if d.All[i].Kind == dirOrdered {
			n++
		}
	}
	return n
}

// IgnoreCount returns the number of //vet:ignore annotations.
func (d *Directives) IgnoreCount() int {
	n := 0
	for i := range d.All {
		if d.All[i].Kind == dirIgnore {
			n++
		}
	}
	return n
}

// ValidateDirectives enforces the annotation contract itself: every
// suppression must carry a justification, and //vet:ignore must name a
// known analyzer. Findings are attributed to the pseudo-analyzer
// "annotation" (not suppressible — a malformed suppression cannot excuse
// itself).
func ValidateDirectives(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	report := func(dir *Directive, msg string) {
		out = append(out, Diagnostic{
			Analyzer: "annotation",
			File:     dir.File,
			Line:     dir.Line,
			Col:      1,
			Message:  msg,
		})
	}
	for i := range pkg.Dirs.All {
		dir := &pkg.Dirs.All[i]
		switch dir.Kind {
		case dirOrdered:
			if dir.Arg == "" {
				report(dir, "//det:ordered requires a justification (//det:ordered <why>)")
			}
		case dirIgnore:
			if !known[dir.Analyzer] {
				report(dir, "//vet:ignore names unknown analyzer "+quoteName(dir.Analyzer))
			} else if dir.Arg == "" {
				report(dir, "//vet:ignore "+dir.Analyzer+" requires a justification (//vet:ignore "+dir.Analyzer+" <why>)")
			}
		case dirRecSize:
			if dir.Arg == "" {
				report(dir, "//rec:size requires a record-size constant name")
			}
		}
	}
	return out
}

func quoteName(s string) string {
	if s == "" {
		return `""`
	}
	return `"` + s + `"`
}
