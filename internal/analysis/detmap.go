package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetmapCriticalPackages are the determinism-critical import paths: the
// packages whose output bytes (schedules, printed IR, codec payloads,
// telemetry Counts, pipeline emission order) must be a pure function of
// the compilation inputs. A `range` over a map in one of these packages
// injects Go's randomized iteration order straight into that contract.
// The root package rides along because it assembles the experiment tables
// and golden results the paper comparisons are checked against.
var DetmapCriticalPackages = []string{
	"treegion",
	"treegion/internal/sched",
	"treegion/internal/region",
	"treegion/internal/irtext",
	"treegion/internal/store",
	"treegion/internal/telemetry",
	"treegion/internal/pipeline",
}

// DetmapAnalyzer flags `range` over a map in a determinism-critical
// package. Two escapes exist: the collect-then-sort idiom (a loop that
// only appends keys/values to slices which a later statement in the same
// block sorts) is recognized structurally, and a justified //det:ordered
// annotation suppresses the finding for loops whose order provably cannot
// reach an output (e.g. commutative folds).
var DetmapAnalyzer = &Analyzer{
	Name: "detmap",
	Doc:  "no map iteration in determinism-critical packages unless sorted or //det:ordered",
	Run:  runDetmap,
}

// pathIsCritical matches exactly: listing the module root must not drag
// every subpackage (cmd tools, jobs, router) into the policy.
func pathIsCritical(path string, critical []string) bool {
	for _, c := range critical {
		if path == c {
			return true
		}
	}
	return false
}

func runDetmap(pass *Pass) {
	if !pathIsCritical(pass.CriticalPath(), DetmapCriticalPackages) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if detmapCollectThenSort(pass, rng, block.List[i+1:]) {
					continue
				}
				pass.Reportf(rng.For,
					"range over %s is iteration-order dependent in determinism-critical package %s (sort the keys first, or annotate //det:ordered <why>)",
					types.TypeString(t, types.RelativeTo(pass.Pkg)), pass.CriticalPath())
			}
			return true
		})
	}
}

// detmapCollectThenSort recognizes the blessed idiom
//
//	for k := range m { keys = append(keys, k) }
//	...
//	slices.Sort(keys)            // or sort.Slice, slices.SortFunc, ...
//
// The loop body may only append to local slices (no other side effects),
// and every append target must be sorted by a call later in the same
// enclosing block.
func detmapCollectThenSort(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	var targets []types.Object
	for _, stmt := range rng.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return false
		}
		lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || pass.ObjectOf(arg0) != pass.ObjectOf(lhs) {
			return false
		}
		obj := pass.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	// Every collected slice must be sorted later in the block.
	for _, obj := range targets {
		if !sortedLater(pass, obj, rest) {
			return false
		}
	}
	return true
}

// sortedLater reports whether some statement in rest calls a sort function
// mentioning obj.
func sortedLater(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			if !strings.Contains(fn.Name(), "Sort") && !sortHelperName(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// sortHelperName covers the sort-package entry points that do not contain
// "Sort" in their name.
func sortHelperName(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}
