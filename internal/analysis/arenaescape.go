package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchTypeNames are the named types that mark per-worker compile
// scratch: buffers that are reused across compiles and must never alias
// into a result that outlives the compile (the DESIGN §12 reuse boundary).
// Matched by type name on any type declared inside the analyzed module.
var ScratchTypeNames = map[string]bool{
	"Scratch": true, // ddg.Scratch, sched.Scratch
	"Arena":   true, // eval.Arena
}

// ArenaEscapeAnalyzer enforces the scratch reuse boundary from both ends:
//
//   - sync.Pool discipline: a function that calls (*sync.Pool).Get must
//     also call Put (directly or deferred) in its own body, and the pooled
//     value must not be returned, stored into a struct field of another
//     value, or stored into a container. Cross-function ownership handoff
//     is possible but must be annotated (//vet:ignore arenaescape <why>)
//     so the transfer is visible and justified.
//
//   - Scratch/Arena escape: an expression rooted at a value of a scratch
//     type (see ScratchTypeNames) must not be returned as a non-scratch
//     type, stored into a field of a non-scratch value, or placed in a
//     composite literal — those are exactly the stores that would leak a
//     reused buffer into a Graph/Schedule/FunctionResult that escapes the
//     compile. Passing scratch to calls is fine (the callee is analyzed on
//     its own), as is storing back into the scratch itself.
//
// The tracking is intra-procedural with one level of local aliasing
// (x := sc.buf taints x); values laundered through calls are assumed
// copied, which matches the documented contract that builders copy what
// they keep.
var ArenaEscapeAnalyzer = &Analyzer{
	Name: "arenaescape",
	Doc:  "pooled buffers and compile scratch must not escape into results",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolDiscipline(pass, fd)
			checkScratchEscape(pass, fd)
		}
	}
}

// isPoolMethod reports whether call is pool.Get or pool.Put on sync.Pool.
func isPoolMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// checkPoolDiscipline checks every sync.Pool Get in fd: a Put must exist in
// the same function, and the pooled value must not escape.
func checkPoolDiscipline(pass *Pass, fd *ast.FuncDecl) {
	var gets []*ast.CallExpr
	puts := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolMethod(pass, call, "Get") {
			gets = append(gets, call)
		}
		if isPoolMethod(pass, call, "Put") {
			puts++
		}
		return true
	})
	if len(gets) == 0 {
		return
	}
	if puts == 0 {
		for _, g := range gets {
			pass.Reportf(g.Pos(),
				"sync.Pool Get in %s without a Put in the same function (return the value on all paths, or annotate the ownership handoff with //vet:ignore arenaescape <why>)",
				fd.Name.Name)
		}
	}
	// Track the locals the Get results land in and flag escapes.
	pooled := map[types.Object]bool{}
	for _, g := range gets {
		if obj := assignedTo(pass, fd.Body, g); obj != nil {
			pooled[obj] = true
		}
	}
	if len(pooled) > 0 {
		flagEscapes(pass, fd, pooled, "sync.Pool-managed value")
	}
}

// assignedTo finds the local variable the result of call (possibly behind a
// type assertion) is assigned to within body.
func assignedTo(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var out types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || out != nil {
			return out == nil
		}
		for i, rhs := range asg.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			if e != ast.Expr(call) || i >= len(asg.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok {
				out = pass.ObjectOf(id)
			}
		}
		return out == nil
	})
	return out
}

// isScratchType reports whether t is (a pointer to) a module-declared type
// whose name marks it as compile scratch.
func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	// Name-based: nothing in the stdlib we touch declares a Scratch/Arena,
	// and matching by name keeps the analyzer honest across package moves.
	return named.Obj().Pkg() != nil && ScratchTypeNames[named.Obj().Name()]
}

// checkScratchEscape flags scratch-rooted expressions escaping fd.
func checkScratchEscape(pass *Pass, fd *ast.FuncDecl) {
	roots := map[types.Object]bool{}
	// Parameters and receiver of scratch type.
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := pass.ObjectOf(name)
				if obj != nil && isScratchType(obj.Type()) {
					roots[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	// Locals declared with a scratch type.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range d.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil && isScratchType(obj.Type()) {
						roots[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range d.Names {
				if obj := pass.Info.Defs[name]; obj != nil && isScratchType(obj.Type()) {
					roots[obj] = true
				}
			}
		}
		return true
	})
	if len(roots) == 0 {
		return
	}
	// One level of aliasing: x := sc.buf (or x := sc) taints x.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Rhs {
			if rootedAt(pass, asg.Rhs[i], roots) == nil {
				continue
			}
			if id, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil && pass.Info.Defs[id] != nil {
					roots[obj] = true
				}
			}
		}
		return true
	})
	flagEscapes(pass, fd, roots, "compile-scratch value")
}

// rootedAt returns the root object if e is an ident/selector/index chain
// whose base resolves to one of roots.
func rootedAt(pass *Pass, e ast.Expr, roots map[types.Object]bool) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(x)
			if obj != nil && roots[obj] {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// flagEscapes reports stores/returns that leak a rooted value out of fd.
func flagEscapes(pass *Pass, fd *ast.FuncDecl, roots map[types.Object]bool, what string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				root := rootedAt(pass, s.Rhs[i], roots)
				if root == nil {
					continue
				}
				// Stores back into a rooted location (sc.cur = cur) keep the
				// value inside the scratch; anything else leaks it.
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					// Local alias: already tracked (or a fresh local, fine).
				case *ast.SelectorExpr:
					if rootedAt(pass, l, roots) == nil {
						pass.Reportf(s.Pos(),
							"%s %s stored into %s, which outlives the scratch reuse boundary (copy what you keep)",
							what, exprString(pass, s.Rhs[i]), exprString(pass, lhs))
					}
				case *ast.IndexExpr:
					if rootedAt(pass, l, roots) == nil {
						pass.Reportf(s.Pos(),
							"%s %s stored into %s, which outlives the scratch reuse boundary (copy what you keep)",
							what, exprString(pass, s.Rhs[i]), exprString(pass, lhs))
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				root := rootedAt(pass, res, roots)
				if root == nil {
					continue
				}
				if isScratchType(pass.TypeOf(res)) {
					continue // scratch-to-scratch plumbing (accessors)
				}
				// A method on the scratch itself returning its internals is
				// the scratch's own lending API — the borrower is checked at
				// its own call sites. Only non-scratch functions leaking a
				// scratch they were handed are findings here.
				if recvIsScratch(pass, fd) {
					continue
				}
				pass.Reportf(s.Pos(),
					"%s %s returned from %s as a non-scratch type — callers would retain a reused buffer",
					what, exprString(pass, res), fd.Name.Name)
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if rootedAt(pass, e, roots) != nil && !isScratchType(pass.TypeOf(s)) {
					pass.Reportf(e.Pos(),
						"%s %s placed in composite literal of type %s — the literal may outlive the scratch",
						what, exprString(pass, e), typeName(pass, s))
				}
			}
		}
		return true
	})
}

// recvIsScratch reports whether fd is a method with a scratch-typed
// receiver.
func recvIsScratch(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	for _, name := range fd.Recv.List[0].Names {
		if obj := pass.ObjectOf(name); obj != nil && isScratchType(obj.Type()) {
			return true
		}
	}
	// Unnamed receiver: fall back to the declared type.
	if len(fd.Recv.List[0].Names) == 0 {
		return isScratchType(pass.TypeOf(fd.Recv.List[0].Type))
	}
	return false
}

func exprString(pass *Pass, e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

// writeExpr renders the small expression forms diagnostics mention.
func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[...]")
	case *ast.SliceExpr:
		writeExpr(b, x.X)
		b.WriteString("[:]")
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		writeExpr(b, x.X)
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	default:
		b.WriteString("expression")
	}
}

func typeName(pass *Pass, e ast.Expr) string {
	t := pass.TypeOf(e)
	if t == nil {
		return "?"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
