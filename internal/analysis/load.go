package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked unit of analysis. In-package test
// files are checked together with the package proper; an external test
// package (package foo_test) loads as its own unit with Path suffixed
// "_test".
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dirs  *Directives
}

// listing is the subset of `go list -json` treegion-vet consumes.
type listing struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load discovers the packages matching patterns with `go list`, parses and
// type-checks them from source in dependency order, and returns them ready
// for analysis. dir is the module root the go command runs in; tests are
// included unless includeTests is false. The loader is stdlib-only: module
// packages are checked from source and served to importers from the
// in-memory cache, everything else resolves through the standard gc
// importer (with a source-importer fallback).
func Load(fset *token.FileSet, dir string, patterns []string, includeTests bool) ([]*Package, error) {
	module, err := goList(dir, "-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, fmt.Errorf("treegion-vet: resolving module: %w", err)
	}
	modPath := strings.TrimSpace(string(module))

	args := append([]string{"-json", "--"}, patterns...)
	listings, err := goListJSON(dir, args...)
	if err != nil {
		return nil, err
	}
	if len(listings) == 0 {
		return nil, fmt.Errorf("treegion-vet: no packages match %v", patterns)
	}
	// roots are the packages the patterns matched — the ones analyzed and
	// reported on. byPath grows below to the module-local import closure,
	// which is only type-checked so the roots' imports resolve.
	roots := map[string]bool{}
	byPath := map[string]*listing{}
	for _, l := range listings {
		roots[l.ImportPath] = true
		byPath[l.ImportPath] = l
	}

	// When the patterns name a subset of the module (`./internal/ddg/`
	// rather than `./...`), module-local dependencies are absent from the
	// listing. Resolve them with supplemental go list rounds until the
	// closure is complete; each round can surface new deps of the deps.
	isLocal := func(p string) bool {
		return p == modPath || strings.HasPrefix(p, modPath+"/")
	}
	for {
		missing := map[string]bool{}
		for _, l := range byPath {
			deps := append([]string{}, l.Imports...)
			if includeTests {
				deps = append(deps, l.TestImports...)
				deps = append(deps, l.XTestImports...)
			}
			for _, dep := range deps {
				if isLocal(dep) && byPath[dep] == nil {
					missing[dep] = true
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		extra := make([]string, 0, len(missing))
		for p := range missing {
			extra = append(extra, p)
		}
		sort.Strings(extra)
		more, err := goListJSON(dir, append([]string{"-json", "--"}, extra...)...)
		if err != nil {
			return nil, err
		}
		for _, l := range more {
			byPath[l.ImportPath] = l
		}
	}

	imp := &moduleImporter{
		module: modPath,
		local:  map[string]*types.Package{},
		std:    importer.Default(),
		fset:   fset,
	}

	// Phase 1: type-check every package WITHOUT its test files, in
	// non-test dependency order (a DAG by construction). Test imports are
	// allowed to be cyclic at package granularity (cfg's tests import
	// progen, progen's tests import cfg) — Go links a test binary against
	// the plain build of each dependency, and this phase materialises
	// exactly those plain builds.
	checked := map[string]bool{}
	plain := map[string]*Package{}
	asts := &astCache{fset: fset, files: map[string]*ast.File{}}
	var order []string // DFS postorder over the non-test import DAG
	var visit func(path string) error
	visit = func(path string) error {
		l, ok := byPath[path]
		if !ok || checked[path] {
			return nil
		}
		checked[path] = true
		for _, dep := range l.Imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		files := append(append([]string{}, l.GoFiles...), l.CgoFiles...)
		pkg, err := checkPackage(fset, asts, imp, l.ImportPath, l.Dir, files)
		if err != nil {
			return err
		}
		imp.local[l.ImportPath] = pkg.Types
		plain[path] = pkg
		order = append(order, path)
		return nil
	}
	// Deterministic order: visit the whole closure sorted (not just the
	// roots — a dependency reachable only through test imports is not on
	// any root's non-test DAG, yet its plain build must exist for phase 2).
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Phase 2: re-check each package with its in-package test files merged
	// (test files reference unexported identifiers, so they must be checked
	// together with the package proper), then its external test package.
	// The plain builds stay in the import cache: every dependent sees the
	// non-test build, exactly as the go tool links test binaries. The
	// augmented build shares the plain build's parsed ASTs (astCache), so
	// an object declared in a non-test file has the same token.Pos in both
	// builds — the identity global analyzers pair accesses by.
	var pkgs []*Package
	for _, path := range order {
		if !roots[path] {
			continue // closure-only dependency: type-checked, not analyzed
		}
		l := byPath[path]
		pkg := plain[path]
		if includeTests && len(l.TestGoFiles) > 0 {
			files := append(append([]string{}, l.GoFiles...), l.CgoFiles...)
			files = append(files, l.TestGoFiles...)
			aug, err := checkPackage(fset, asts, imp, l.ImportPath, l.Dir, files)
			if err != nil {
				return nil, err
			}
			pkg = aug
		}
		pkgs = append(pkgs, pkg)
		if includeTests && len(l.XTestGoFiles) > 0 {
			// foo_test compiles against the test-augmented foo; swap it into
			// the cache for this one check, then restore the plain build.
			imp.local[l.ImportPath] = pkg.Types
			xpkg, err := checkPackage(fset, asts, imp, l.ImportPath+"_test", l.Dir, l.XTestGoFiles)
			imp.local[l.ImportPath] = plain[path].Types
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	return pkgs, nil
}

// astCache parses each file at most once, so the plain and test-augmented
// builds of a package share AST nodes and token positions.
type astCache struct {
	fset  *token.FileSet
	files map[string]*ast.File
}

func (c *astCache) parse(filename string) (*ast.File, error) {
	if f, ok := c.files[filename]; ok {
		return f, nil
	}
	f, err := parser.ParseFile(c.fset, filename, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	c.files[filename] = f
	return f, nil
}

// checkPackage parses and type-checks one file set as a package.
func checkPackage(fset *token.FileSet, cache *astCache, imp types.Importer, path, dir string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("treegion-vet: %s: no Go files", path)
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := cache.parse(filepath.Join(dir, f))
		if err != nil {
			return nil, fmt.Errorf("treegion-vet: %w", err)
		}
		asts = append(asts, af)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("treegion-vet: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Files: asts,
		Types: tpkg,
		Info:  info,
		Dirs:  ParseDirectives(fset, asts),
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// moduleImporter resolves module-local import paths from the already
// type-checked cache and everything else through the gc importer, falling
// back to type-checking stdlib from source where no export data exists.
type moduleImporter struct {
	module  string
	local   map[string]*types.Package
	std     types.Importer
	fset    *token.FileSet
	srcOnce sync.Once
	src     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		return nil, fmt.Errorf("import cycle or unlisted module package %q", path)
	}
	if p, err := m.std.Import(path); err == nil {
		return p, nil
	}
	m.srcOnce.Do(func() { m.src = importer.ForCompiler(m.fset, "source", nil) })
	return m.src.Import(path)
}

// goListJSON runs `go list` with the given args and decodes the JSON
// stream of package listings, failing on the first listing-level error.
func goListJSON(dir string, args ...string) ([]*listing, error) {
	out, err := goList(dir, args...)
	if err != nil {
		return nil, fmt.Errorf("treegion-vet: go list: %w", err)
	}
	var listings []*listing
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		l := &listing{}
		if err := dec.Decode(l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("treegion-vet: decoding go list output: %w", err)
		}
		if l.Error != nil {
			return nil, fmt.Errorf("treegion-vet: %s: %s", l.ImportPath, l.Error.Err)
		}
		listings = append(listings, l)
	}
	return listings, nil
}

func goList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%v: %s", err, bytes.TrimSpace(stderr.Bytes()))
	}
	return out, nil
}
