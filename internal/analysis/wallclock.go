package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WallclockCriticalPackages are the packages whose outputs must be
// byte-comparable across runs: the compile core that produces results, and
// the tiers that serialize or emit them. Wall-clock readings there may feed
// exactly one sink — telemetry — and nothing else. The serving layer
// (daemon, router, jobs) legitimately reports latencies and deadlines and
// is out of scope, as is internal/telemetry itself (the sink) and
// internal/store (whose wall-clock use is file mtimes for GC recency,
// never payload bytes — the codec is covered by recsize and detmap).
var WallclockCriticalPackages = []string{
	"treegion",
	"treegion/internal/ir",
	"treegion/internal/irtext",
	"treegion/internal/cfg",
	"treegion/internal/core",
	"treegion/internal/ddg",
	"treegion/internal/region",
	"treegion/internal/linear",
	"treegion/internal/hyper",
	"treegion/internal/sched",
	"treegion/internal/regalloc",
	"treegion/internal/vlsim",
	"treegion/internal/interp",
	"treegion/internal/eval",
	"treegion/internal/profile",
	"treegion/internal/machine",
	"treegion/internal/progen",
	"treegion/internal/compcache",
	"treegion/internal/pipeline",
}

// TelemetrySinkPath is the one package wall-clock readings may flow into.
var TelemetrySinkPath = "treegion/internal/telemetry"

// WallclockAnalyzer keeps wall-clock readings out of deterministic results.
// Inside a critical package it taints every time.Now/Since/Until call and
// tracks the taint through locals:
//
//   - time-typed taint (time.Time, time.Duration) may flow through locals
//     and call arguments — the callee is analyzed on its own — but must not
//     be stored into a field, a container or a composite literal, or be
//     returned: that is a wall-clock reading persisted into a result.
//   - the moment taint leaves the time domain (d.Seconds(), float64(d),
//     a comparison) it becomes a naked scalar, and a naked scalar may only
//     be an argument to a telemetry call. Any other use — storing,
//     returning, branching on it, passing it elsewhere — is a finding.
//
// Test files are exempt: tests legitimately measure wall time.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "no wall clock feeding deterministic result fields",
	Run:  runWallclock,
}

type taint uint8

const (
	clean taint = iota
	timeTaint
	nakedTaint
)

func runWallclock(pass *Pass) {
	if !pathIsCritical(pass.CriticalPath(), WallclockCriticalPackages) {
		return
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if isTestFile(name) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &wallclockWalker{pass: pass, tainted: map[types.Object]taint{}}
				w.block(fd.Body)
			}
		}
	}
}

func isTestFile(name string) bool {
	return len(name) > 8 && name[len(name)-8:] == "_test.go"
}

type wallclockWalker struct {
	pass    *Pass
	tainted map[types.Object]taint
}

// block walks statements in order so taint assignments are seen before
// uses (Go's happy path; back-edges in loops are covered by walking the
// loop body twice).
func (w *wallclockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *wallclockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		w.assign(st)
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			if w.expr(res) != clean {
				w.pass.Reportf(res.Pos(),
					"wall-clock derived value returned — results must be byte-comparable, route timings through telemetry")
			}
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if w.expr(st.Cond) != clean {
			w.pass.Reportf(st.Cond.Pos(), "branching on wall clock makes results time-dependent")
		}
		w.block(st.Body)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		// Twice: taint introduced late in the body reaches uses earlier in
		// the next iteration.
		for i := 0; i < 2; i++ {
			if st.Cond != nil && w.expr(st.Cond) != clean {
				w.pass.Reportf(st.Cond.Pos(), "looping on wall clock makes results time-dependent")
				break
			}
			if st.Post != nil {
				w.stmt(st.Post)
			}
			w.block(st.Body)
		}
	case *ast.RangeStmt:
		w.expr(st.X)
		for i := 0; i < 2; i++ {
			w.block(st.Body)
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil && w.expr(st.Tag) != clean {
			w.pass.Reportf(st.Tag.Pos(), "switching on wall clock makes results time-dependent")
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.stmt(st.Assign)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.BlockStmt:
		w.block(st)
	case *ast.DeferStmt:
		w.expr(st.Call)
	case *ast.GoStmt:
		w.expr(st.Call)
	case *ast.SendStmt:
		if w.expr(st.Value) != clean {
			w.pass.Reportf(st.Value.Pos(), "wall-clock derived value sent on a channel out of this compile")
		}
		w.expr(st.Chan)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						t := w.expr(v)
						if t != clean && i < len(vs.Names) {
							if obj := w.pass.Info.Defs[vs.Names[i]]; obj != nil {
								w.tainted[obj] = t
							}
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	}
}

func (w *wallclockWalker) assign(st *ast.AssignStmt) {
	for i, rhs := range st.Rhs {
		t := w.expr(rhs)
		if i >= len(st.Lhs) {
			break
		}
		lhs := ast.Unparen(st.Lhs[i])
		if t == clean {
			// A clean overwrite clears a previously tainted local.
			if id, ok := lhs.(*ast.Ident); ok && st.Tok == token.ASSIGN {
				if obj := w.pass.ObjectOf(id); obj != nil {
					delete(w.tainted, obj)
				}
			}
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := w.pass.ObjectOf(l)
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
				w.tainted[obj] = t // local: track
				continue
			}
			w.pass.Reportf(st.Pos(),
				"wall-clock derived value stored in package-level state — results must be byte-comparable")
		default:
			w.pass.Reportf(st.Pos(),
				"wall-clock derived value stored into %s — results must be byte-comparable, route timings through telemetry",
				exprString(w.pass, st.Lhs[i]))
		}
	}
}

// expr evaluates e's taint, reporting disallowed consumptions as it goes.
func (w *wallclockWalker) expr(e ast.Expr) taint {
	switch x := ast.Unparen(e).(type) {
	case nil:
		return clean
	case *ast.Ident:
		if obj := w.pass.ObjectOf(x); obj != nil {
			return w.tainted[obj]
		}
		return clean
	case *ast.CallExpr:
		return w.call(x)
	case *ast.SelectorExpr:
		// Field read off a tainted value stays tainted in-kind.
		return w.expr(x.X)
	case *ast.BinaryExpr:
		lt, rt := w.expr(x.X), w.expr(x.Y)
		t := max(lt, rt)
		if t == clean {
			return clean
		}
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return nakedTaint // comparison result carries the wall clock as a bool
		}
		return t
	case *ast.UnaryExpr:
		return w.expr(x.X)
	case *ast.StarExpr:
		return w.expr(x.X)
	case *ast.IndexExpr:
		w.expr(x.Index)
		return w.expr(x.X)
	case *ast.SliceExpr:
		return w.expr(x.X)
	case *ast.TypeAssertExpr:
		return w.expr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if w.expr(v) != clean {
				w.pass.Reportf(v.Pos(),
					"wall-clock derived value placed in composite literal — results must be byte-comparable")
			}
		}
		return clean
	case *ast.FuncLit:
		// Closures see the enclosing taint (deferred telemetry observers).
		w.block(x.Body)
		return clean
	case *ast.KeyValueExpr:
		return w.expr(x.Value)
	default:
		return clean
	}
}

// call classifies a call: wall-clock source, telemetry sink, time-domain
// operation, conversion out of the time domain, or an ordinary call that
// must not receive naked wall-clock scalars.
func (w *wallclockWalker) call(call *ast.CallExpr) taint {
	// Conversions: T(x). A conversion of time taint to a scalar type goes
	// naked; time->time (time.Duration(n)) keeps kind.
	if w.isConversion(call) && len(call.Args) == 1 {
		argT := w.expr(call.Args[0])
		if argT == clean {
			return clean
		}
		if isTimeType(w.pass.TypeOf(call)) {
			return timeTaint
		}
		return nakedTaint
	}

	fn := w.pass.CalleeFunc(call)

	// Receiver taint for method calls.
	recvTaint := clean
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvTaint = w.expr(sel.X)
	}

	// Argument taints (evaluated regardless, for nested violations).
	argTaint := clean
	for _, a := range call.Args {
		argTaint = max(argTaint, w.expr(a))
	}

	switch {
	case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return timeTaint
		}
		// Other time-package helpers keep the kind of their inputs.
		t := max(recvTaint, argTaint)
		if t == clean {
			return clean
		}
		if isTimeType(w.pass.TypeOf(call)) {
			return t
		}
		return nakedTaint
	case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == TelemetrySinkPath:
		return clean // the one legitimate sink
	case recvTaint != clean:
		// Method on a tainted value (t0.Add, d.Seconds, d.String).
		if isTimeType(w.pass.TypeOf(call)) {
			return timeTaint
		}
		return nakedTaint
	case argTaint == nakedTaint:
		name := "function"
		if fn != nil {
			name = fn.Name()
		}
		w.pass.Reportf(call.Pos(),
			"wall-clock scalar passed to %s — only telemetry may consume wall-clock readings in this package", name)
		return clean
	default:
		// Time-typed arguments may enter ordinary calls: the callee is
		// itself analyzed. The call result is clean (copied/derived).
		return clean
	}
}

func (w *wallclockWalker) isConversion(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, isType := w.pass.ObjectOf(fun).(*types.TypeName)
		return isType
	case *ast.SelectorExpr:
		_, isType := w.pass.ObjectOf(fun.Sel).(*types.TypeName)
		return isType
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return true
	}
	return false
}

// isTimeType reports whether t is time.Time or time.Duration (possibly
// behind a pointer).
func isTimeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return false
	}
	return obj.Name() == "Time" || obj.Name() == "Duration"
}
