package cfg

// Differential check of the word-packed bitset liveness against the
// original map-based implementation, kept here verbatim as the reference.
// The two must agree register-for-register on every block of every example
// program and every function of the eight-benchmark suite; the bitset
// version is only a representation change, never a semantic one.

import (
	"os"
	"path/filepath"
	"testing"

	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/progen"
)

// refLiveness is the pre-bitset ComputeLiveness: map-based RegSets, same
// transfer function (guarded defs do not kill), same reverse-RPO sweep.
func refLiveness(g *Graph) (liveIn, liveOut []RegSet) {
	n := len(g.Fn.Blocks)
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for _, b := range g.Fn.Blocks {
		u, d := NewRegSet(), NewRegSet()
		for _, op := range b.Ops {
			if op.Guarded() && !d.Has(op.Guard) {
				u.Add(op.Guard)
			}
			for _, s := range op.Srcs {
				if !d.Has(s) {
					u.Add(s)
				}
			}
			if !op.Guarded() {
				for _, dst := range op.Dests {
					d.Add(dst)
				}
			}
		}
		use[b.ID], def[b.ID] = u, d
	}
	liveIn = make([]RegSet, n)
	liveOut = make([]RegSet, n)
	for i := 0; i < n; i++ {
		liveIn[i] = NewRegSet()
		liveOut[i] = NewRegSet()
	}
	changed := true
	for changed {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			out := liveOut[b]
			for _, s := range g.Succs[b] {
				if out.AddAll(liveIn[s]) {
					changed = true
				}
			}
			in := liveIn[b]
			if in.AddAll(use[b]) {
				changed = true
			}
			for r := range out {
				if !def[b].Has(r) && !in.Has(r) {
					in.Add(r)
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}

// diffLiveness compares bitset and map liveness on fn, in both directions:
// every register the reference finds live must be in the bitset, and the
// bitset's population counts must match so it holds nothing extra.
func diffLiveness(t *testing.T, fn *ir.Function) {
	t.Helper()
	g := New(fn)
	lv := ComputeLiveness(g)
	refIn, refOut := refLiveness(g)
	check := func(kind string, bid ir.BlockID, got BitSet, want RegSet) {
		for r := range want {
			if !got.Has(r) {
				t.Errorf("%s: bb%d %s: bitset missing %v", fn.Name, bid, kind, r)
			}
		}
		if got.Count() != len(want) {
			t.Errorf("%s: bb%d %s: bitset has %d regs, reference has %d",
				fn.Name, bid, kind, got.Count(), len(want))
		}
	}
	for _, b := range fn.Blocks {
		check("live-in", b.ID, lv.LiveIn[b.ID], refIn[b.ID])
		check("live-out", b.ID, lv.LiveOut[b.ID], refOut[b.ID])
	}
}

func TestLivenessMatchesReferenceExamples(t *testing.T) {
	paths, err := filepath.Glob("../../examples/tir/*.tir")
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, "../../testdata/fig1.tir")
	if len(paths) < 2 {
		t.Fatalf("found only %d example programs", len(paths))
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Examples may be multi-function programs; diff every function.
		prog, err := irtext.ParseProgram(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		t.Run(filepath.Base(p), func(t *testing.T) {
			for _, fn := range prog.Funcs {
				diffLiveness(t, fn)
			}
		})
	}
}

func TestLivenessMatchesReferenceSuite(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 8 {
		t.Fatalf("suite has %d programs, want 8", len(progs))
	}
	for _, prog := range progs {
		t.Run(prog.Name, func(t *testing.T) {
			for _, fn := range prog.Funcs {
				diffLiveness(t, fn)
			}
		})
	}
}
