package cfg

import (
	"math/bits"

	"treegion/internal/ir"
)

// BitSet is a word-packed register set over a function's dense register
// universe (ir.RegIndex). All BitSets of one Liveness share a single uint64
// slab, so computing liveness for a function costs a handful of allocations
// regardless of block count. Registers minted after the snapshot (scheduler
// renaming) fall outside the index and report not-present, matching the
// map-based semantics the renamer relies on.
type BitSet struct {
	idx   *ir.RegIndex
	words []uint64
}

// Has reports membership.
func (s BitSet) Has(r ir.Reg) bool {
	k := s.idx.Of(r)
	return k >= 0 && s.words[k>>6]&(1<<(uint(k)&63)) != 0
}

// Count returns the number of registers in the set.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s BitSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Liveness holds per-block live-in/live-out register sets, from the standard
// backward iterative dataflow. The treegion scheduler consults live-in sets
// of off-path blocks to decide when speculation requires renaming.
type Liveness struct {
	Regs    ir.RegIndex
	LiveIn  []BitSet // indexed by BlockID
	LiveOut []BitSet
}

// ComputeLiveness runs the dataflow over g until fixpoint. Sets are packed
// bitsets over the function's register universe at call time; the transfer
// function is in = use ∪ (out \ def), with guarded definitions not killing
// (a predicated-off op leaves the pre-existing value flowing through).
func ComputeLiveness(g *Graph) *Liveness {
	fn := g.Fn
	lv := &Liveness{Regs: fn.RegIndexTable()}
	idx := &lv.Regs
	n := len(fn.Blocks)
	nw := (idx.Len() + 63) / 64
	slab := make([]uint64, 4*n*nw)
	word := func(base, b int) []uint64 { return slab[base+b*nw : base+(b+1)*nw] }
	useBase, defBase, inBase, outBase := 0, n*nw, 2*n*nw, 3*n*nw

	set := func(w []uint64, k int) {
		if k >= 0 {
			w[k>>6] |= 1 << (uint(k) & 63)
		}
	}
	has := func(w []uint64, k int) bool {
		return k >= 0 && w[k>>6]&(1<<(uint(k)&63)) != 0
	}

	for _, b := range fn.Blocks {
		u, d := word(useBase, int(b.ID)), word(defBase, int(b.ID))
		for _, op := range b.Ops {
			if op.Guarded() && !has(d, idx.Of(op.Guard)) {
				set(u, idx.Of(op.Guard))
			}
			for _, s := range op.Srcs {
				if k := idx.Of(s); k >= 0 && !has(d, k) {
					set(u, k)
				}
			}
			// A guarded definition may not execute, so it does not kill:
			// the pre-existing value can still flow through the block.
			if !op.Guarded() {
				for _, dst := range op.Dests {
					set(d, idx.Of(dst))
				}
			}
		}
	}

	changed := true
	for changed {
		changed = false
		// Iterate in reverse RPO for fast convergence of a backward problem.
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := int(g.RPO[i])
			out := word(outBase, b)
			for _, s := range g.Succs[b] {
				sin := word(inBase, int(s))
				for w := range out {
					if nv := out[w] | sin[w]; nv != out[w] {
						out[w] = nv
						changed = true
					}
				}
			}
			in, u, d := word(inBase, b), word(useBase, b), word(defBase, b)
			for w := range in {
				if nv := in[w] | u[w] | (out[w] &^ d[w]); nv != in[w] {
					in[w] = nv
					changed = true
				}
			}
		}
	}

	lv.LiveIn = make([]BitSet, n)
	lv.LiveOut = make([]BitSet, n)
	for b := 0; b < n; b++ {
		lv.LiveIn[b] = BitSet{idx: idx, words: word(inBase, b)}
		lv.LiveOut[b] = BitSet{idx: idx, words: word(outBase, b)}
	}
	return lv
}
