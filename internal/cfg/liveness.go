package cfg

import "treegion/internal/ir"

// RegSet is a set of virtual registers.
type RegSet map[ir.Reg]struct{}

// NewRegSet returns a set holding the given registers.
func NewRegSet(rs ...ir.Reg) RegSet {
	s := make(RegSet, len(rs))
	for _, r := range rs {
		s.Add(r)
	}
	return s
}

// Add inserts r (ignores NoReg).
func (s RegSet) Add(r ir.Reg) {
	if r.IsValid() {
		s[r] = struct{}{}
	}
}

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool {
	_, ok := s[r]
	return ok
}

// AddAll inserts every register of o and reports whether s grew.
func (s RegSet) AddAll(o RegSet) bool {
	grew := false
	for r := range o {
		if _, ok := s[r]; !ok {
			s[r] = struct{}{}
			grew = true
		}
	}
	return grew
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	for r := range s {
		c[r] = struct{}{}
	}
	return c
}

// Liveness holds per-block live-in/live-out register sets, from the standard
// backward iterative dataflow. The treegion scheduler consults live-in sets
// of off-path blocks to decide when speculation requires renaming.
type Liveness struct {
	LiveIn  []RegSet // indexed by BlockID
	LiveOut []RegSet
}

// ComputeLiveness runs the dataflow over g until fixpoint.
func ComputeLiveness(g *Graph) *Liveness {
	n := len(g.Fn.Blocks)
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for _, b := range g.Fn.Blocks {
		u, d := NewRegSet(), NewRegSet()
		for _, op := range b.Ops {
			if op.Guarded() && !d.Has(op.Guard) {
				u.Add(op.Guard)
			}
			for _, s := range op.Srcs {
				if !d.Has(s) {
					u.Add(s)
				}
			}
			// A guarded definition may not execute, so it does not kill:
			// the pre-existing value can still flow through the block.
			if !op.Guarded() {
				for _, dst := range op.Dests {
					d.Add(dst)
				}
			}
		}
		use[b.ID], def[b.ID] = u, d
	}
	lv := &Liveness{
		LiveIn:  make([]RegSet, n),
		LiveOut: make([]RegSet, n),
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = NewRegSet()
		lv.LiveOut[i] = NewRegSet()
	}
	changed := true
	for changed {
		changed = false
		// Iterate in reverse RPO for fast convergence of a backward problem.
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			out := lv.LiveOut[b]
			for _, s := range g.Succs[b] {
				if out.AddAll(lv.LiveIn[s]) {
					changed = true
				}
			}
			in := lv.LiveIn[b]
			if in.AddAll(use[b]) {
				changed = true
			}
			for r := range out {
				if !def[b].Has(r) {
					if !in.Has(r) {
						in.Add(r)
						changed = true
					}
				}
			}
		}
	}
	return lv
}
