package cfg

import "treegion/internal/ir"

// DomTree holds immediate-dominator information for the reachable blocks of
// a function, computed with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	g *Graph
	// IDom[b] is the immediate dominator of b, or ir.NoBlock for the entry
	// and for unreachable blocks.
	IDom []ir.BlockID
}

// Dominators computes the dominator tree of g.
func Dominators(g *Graph) *DomTree {
	n := len(g.Fn.Blocks)
	idom := make([]ir.BlockID, n)
	for i := range idom {
		idom[i] = ir.NoBlock
	}
	entry := g.Fn.Entry
	idom[entry] = entry // temporarily self, per CHK
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			if b == entry {
				continue
			}
			var newIdom = ir.NoBlock
			for _, p := range g.Preds[b] {
				if idom[p] == ir.NoBlock {
					continue // predecessor not processed yet / unreachable
				}
				if newIdom == ir.NoBlock {
					newIdom = p
				} else {
					newIdom = intersect(g, idom, p, newIdom)
				}
			}
			if newIdom != ir.NoBlock && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = ir.NoBlock // entry has no immediate dominator
	return &DomTree{g: g, IDom: idom}
}

func intersect(g *Graph, idom []ir.BlockID, a, b ir.BlockID) ir.BlockID {
	for a != b {
		for g.RPONum[a] > g.RPONum[b] {
			a = idom[a]
		}
		for g.RPONum[b] > g.RPONum[a] {
			b = idom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b ir.BlockID) bool {
	if !d.g.Reachable(a) || !d.g.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		b = d.IDom[b]
		if b == ir.NoBlock {
			return false
		}
	}
}
