package cfg

import (
	"testing"

	"treegion/internal/ir"
)

// diamond builds:
//
//	bb0 -> bb1, bb2; bb1 -> bb3; bb2 -> bb3; bb3 ret
func diamond(t *testing.T) *ir.Function {
	t.Helper()
	f := ir.NewFunction("diamond")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	r1, r2 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r1, r2)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	f.EmitALU(b1, ir.Add, r1, r1, r2)
	f.EmitBru(b1, ir.NoReg, b3.ID)
	f.EmitALU(b2, ir.Sub, r1, r1, r2)
	b2.FallThrough = b3.ID
	f.EmitSt(b3, r2, 0, r1)
	f.EmitRet(b3)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

// loop builds: bb0 -> bb1; bb1 -> bb1 (backedge), bb2; bb2 ret
func loop(t *testing.T) *ir.Function {
	t.Helper()
	f := ir.NewFunction("loop")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	r := f.NewReg(ir.ClassGPR)
	b0.FallThrough = b1.ID
	f.EmitALU(b1, ir.Add, r, r, r)
	f.EmitCmpp(b1, p, ir.NoReg, ir.CondLT, r, r)
	f.EmitBrct(b1, ir.NoReg, p, b1.ID, 0.9)
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGraphPredsSuccs(t *testing.T) {
	f := diamond(t)
	g := New(f)
	if len(g.Succs[0]) != 2 {
		t.Fatalf("bb0 succs = %v", g.Succs[0])
	}
	if len(g.Preds[3]) != 2 {
		t.Fatalf("bb3 preds = %v", g.Preds[3])
	}
	if !g.IsMergePoint(3) {
		t.Error("bb3 should be a merge point")
	}
	if g.IsMergePoint(1) || g.IsMergePoint(0) {
		t.Error("bb0/bb1 should not be merge points")
	}
	if g.MergeCount(3) != 2 {
		t.Errorf("MergeCount(bb3) = %d", g.MergeCount(3))
	}
}

func TestRPOProperties(t *testing.T) {
	f := diamond(t)
	g := New(f)
	if len(g.RPO) != 4 {
		t.Fatalf("RPO covers %d blocks, want 4", len(g.RPO))
	}
	if g.RPO[0] != f.Entry {
		t.Fatal("RPO must start at entry")
	}
	// In an acyclic graph every edge must go forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range g.Succs[b.ID] {
			if g.RPONum[s] <= g.RPONum[b.ID] {
				t.Errorf("edge bb%d->bb%d not forward in RPO", b.ID, s)
			}
		}
	}
	if g.RPONum[3] != 3 {
		t.Errorf("merge block should be last in RPO, got pos %d", g.RPONum[3])
	}
}

func TestUnreachableBlock(t *testing.T) {
	f := diamond(t)
	orphan := f.NewBlock()
	f.EmitRet(orphan)
	g := New(f)
	if g.Reachable(orphan.ID) {
		t.Error("orphan reported reachable")
	}
	if g.RPONum[orphan.ID] != -1 {
		t.Error("orphan has RPO number")
	}
	d := Dominators(g)
	if d.Dominates(f.Entry, orphan.ID) {
		t.Error("entry should not dominate unreachable block")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	g := New(f)
	d := Dominators(g)
	if d.IDom[0] != ir.NoBlock {
		t.Error("entry must have no idom")
	}
	for _, b := range []ir.BlockID{1, 2, 3} {
		if d.IDom[b] != 0 {
			t.Errorf("idom(bb%d) = bb%d, want bb0", b, d.IDom[b])
		}
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("Dominates wrong on diamond")
	}
	if !d.Dominates(2, 2) {
		t.Error("Dominates must be reflexive")
	}
}

func TestDominatorsChain(t *testing.T) {
	f := ir.NewFunction("chain")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	g := New(f)
	d := Dominators(g)
	if d.IDom[1] != 0 || d.IDom[2] != 1 {
		t.Fatalf("idoms = %v", d.IDom)
	}
	if !d.Dominates(0, 2) {
		t.Error("transitivity broken")
	}
}

func TestBackEdges(t *testing.T) {
	f := loop(t)
	g := New(f)
	be := g.BackEdges()
	if len(be) != 1 {
		t.Fatalf("back edges = %v, want exactly one", be)
	}
	if be[0][0] != 1 || be[0][1] != 1 {
		t.Fatalf("back edge = %v, want bb1->bb1", be[0])
	}
	// The diamond has none.
	if be := New(diamond(t)).BackEdges(); len(be) != 0 {
		t.Fatalf("diamond back edges = %v, want none", be)
	}
}

func TestLoopHeaderIsMergePoint(t *testing.T) {
	f := loop(t)
	g := New(f)
	if !g.IsMergePoint(1) {
		t.Error("loop header must be a merge point (entry + latch)")
	}
}

func TestLivenessDiamond(t *testing.T) {
	f := diamond(t)
	g := New(f)
	lv := ComputeLiveness(g)
	r1, r2 := ir.GPR(0), ir.GPR(1)
	// r1, r2 feed the compare in bb0 and are used along both arms.
	if !lv.LiveIn[0].Has(r1) || !lv.LiveIn[0].Has(r2) {
		t.Error("r1/r2 must be live-in at entry")
	}
	// bb3 stores r1 to [r2]: both live-in at bb3 and live-out of bb1/bb2.
	if !lv.LiveIn[3].Has(r1) || !lv.LiveIn[3].Has(r2) {
		t.Error("r1/r2 must be live-in at merge")
	}
	if !lv.LiveOut[1].Has(r1) || !lv.LiveOut[2].Has(r1) {
		t.Error("r1 must be live-out of both arms")
	}
	// Nothing is live out of the exit block.
	if !lv.LiveOut[3].Empty() {
		t.Errorf("live-out of exit has %d regs, want empty", lv.LiveOut[3].Count())
	}
	// The predicate is consumed in bb0 and dead beyond it.
	p := ir.Pred(0)
	if lv.LiveIn[1].Has(p) || lv.LiveIn[2].Has(p) {
		t.Error("predicate must be dead after bb0")
	}
}

func TestLivenessKill(t *testing.T) {
	// bb0 defines r0 then falls to bb1 which redefines r0 before use:
	// r0 must not be live-in at bb1's predecessor beyond the def.
	f := ir.NewFunction("kill")
	b0, b1 := f.NewBlock(), f.NewBlock()
	r0, r1 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	f.EmitMovI(b0, r0, 1)
	b0.FallThrough = b1.ID
	f.EmitMovI(b1, r0, 2)
	f.EmitALU(b1, ir.Add, r1, r0, r0)
	f.EmitRet(b1)
	g := New(f)
	lv := ComputeLiveness(g)
	if lv.LiveIn[1].Has(r0) {
		t.Error("r0 is redefined before use in bb1; must not be live-in")
	}
	if lv.LiveOut[0].Has(r0) {
		t.Error("r0 must not be live-out of bb0")
	}
}

func TestLivenessLoop(t *testing.T) {
	f := loop(t)
	g := New(f)
	lv := ComputeLiveness(g)
	r := ir.GPR(0)
	// r is used and defined in the loop body; it must be live around the
	// back edge, i.e. live-out of bb1 and live-in at bb1.
	if !lv.LiveOut[1].Has(r) || !lv.LiveIn[1].Has(r) {
		t.Error("loop-carried register must be live around the back edge")
	}
}

func TestRegSetOps(t *testing.T) {
	s := NewRegSet(ir.GPR(1))
	s.Add(ir.NoReg)
	if len(s) != 1 {
		t.Fatal("NoReg must be ignored")
	}
	o := NewRegSet(ir.GPR(1), ir.GPR(2))
	if !s.AddAll(o) {
		t.Fatal("AddAll should grow")
	}
	if s.AddAll(o) {
		t.Fatal("AddAll should not grow twice")
	}
	c := s.Clone()
	c.Add(ir.GPR(9))
	if s.Has(ir.GPR(9)) {
		t.Fatal("Clone must be independent")
	}
}
