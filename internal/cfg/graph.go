// Package cfg provides control-flow-graph analyses over ir.Functions:
// predecessor maps, reverse postorder, dominators, liveness, merge points and
// back-edge detection. Region formation and the scheduler consume these.
//
// All analyses are snapshots: they are computed from the function's current
// shape and are not updated when the function mutates. Transformations that
// edit the CFG (tail duplication) recompute what they need.
package cfg

import "treegion/internal/ir"

// Graph caches the structural views of a function's CFG that every analysis
// needs: successor and predecessor lists and a reverse postorder.
type Graph struct {
	Fn    *ir.Function
	Succs [][]ir.BlockID // indexed by BlockID
	Preds [][]ir.BlockID // indexed by BlockID
	// RPO is a reverse postorder over blocks reachable from the entry.
	RPO []ir.BlockID
	// RPONum[b] is b's position in RPO, or -1 if b is unreachable.
	RPONum []int
}

// New builds the structural snapshot for fn.
func New(fn *ir.Function) *Graph {
	n := len(fn.Blocks)
	g := &Graph{
		Fn:     fn,
		Succs:  make([][]ir.BlockID, n),
		Preds:  make([][]ir.BlockID, n),
		RPONum: make([]int, n),
	}
	for _, b := range fn.Blocks {
		g.Succs[b.ID] = b.Succs()
	}
	for _, b := range fn.Blocks {
		for _, s := range g.Succs[b.ID] {
			g.Preds[s] = append(g.Preds[s], b.ID)
		}
	}
	// Iterative postorder DFS from the entry, then reverse.
	post := make([]ir.BlockID, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b ir.BlockID
		i int
	}
	stack := []frame{{fn.Entry, 0}}
	state[fn.Entry] = 1
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(g.Succs[top.b]) {
			s := g.Succs[top.b][top.i]
			top.i++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[top.b] = 2
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]ir.BlockID, len(post))
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i := range g.RPONum {
		g.RPONum[i] = -1
	}
	for i, b := range g.RPO {
		g.RPONum[b] = i
	}
	return g
}

// Reachable reports whether b is reachable from the entry.
func (g *Graph) Reachable(b ir.BlockID) bool { return g.RPONum[b] >= 0 }

// IsMergePoint reports whether b has two or more predecessors. (The paper's
// treegion formation stops at merge points.) The entry block is never a
// merge point unless something branches back to it.
func (g *Graph) IsMergePoint(b ir.BlockID) bool { return len(g.Preds[b]) >= 2 }

// MergeCount returns the number of incoming edges of b.
func (g *Graph) MergeCount(b ir.BlockID) int { return len(g.Preds[b]) }

// BackEdges returns the back edges (tail→head) of the reachable CFG, found
// via DFS edge classification. A treegion can never contain one (merge
// points delimit regions), but the profiler and generator care about loops.
func (g *Graph) BackEdges() [][2]ir.BlockID {
	n := len(g.Fn.Blocks)
	color := make([]uint8, n)
	var out [][2]ir.BlockID
	type frame struct {
		b ir.BlockID
		i int
	}
	stack := []frame{{g.Fn.Entry, 0}}
	color[g.Fn.Entry] = 1
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(g.Succs[top.b]) {
			s := g.Succs[top.b][top.i]
			top.i++
			switch color[s] {
			case 0:
				color[s] = 1
				stack = append(stack, frame{s, 0})
			case 1:
				out = append(out, [2]ir.BlockID{top.b, s})
			}
			continue
		}
		color[top.b] = 2
		stack = stack[:len(stack)-1]
	}
	return out
}
