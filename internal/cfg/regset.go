package cfg

import "treegion/internal/ir"

// RegSet is a map-backed set of virtual registers. The hot liveness dataflow
// uses word-packed BitSets instead (see liveness.go); RegSet remains the
// convenient representation for the verifier's per-block definedness
// analysis and for tests, where registers are inserted incrementally and the
// universe is not known up front.
type RegSet map[ir.Reg]struct{}

// NewRegSet returns a set holding the given registers.
func NewRegSet(rs ...ir.Reg) RegSet {
	s := make(RegSet, len(rs))
	for _, r := range rs {
		s.Add(r)
	}
	return s
}

// Add inserts r (ignores NoReg).
func (s RegSet) Add(r ir.Reg) {
	if r.IsValid() {
		s[r] = struct{}{}
	}
}

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool {
	_, ok := s[r]
	return ok
}

// AddAll inserts every register of o and reports whether s grew.
func (s RegSet) AddAll(o RegSet) bool {
	grew := false
	for r := range o {
		if _, ok := s[r]; !ok {
			s[r] = struct{}{}
			grew = true
		}
	}
	return grew
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	for r := range s {
		c[r] = struct{}{}
	}
	return c
}
