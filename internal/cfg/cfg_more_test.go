package cfg

import (
	"testing"
	"testing/quick"

	"treegion/internal/ir"
)

// nestedLoops builds: pre -> h1; h1 -> {b1, after1}; b1 -> h2;
// h2 -> {b2, h1back}; b2 -> h2 (inner back edge); after1 ret.
func nestedLoops(t *testing.T) *ir.Function {
	t.Helper()
	f := ir.NewFunction("nested")
	pre, h1, b1, h2, b2, after := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	pre.FallThrough = h1.ID
	f.EmitCmpp(h1, p, ir.NoReg, ir.CondLT, ir.GPR(0), ir.GPR(1))
	f.EmitBrct(h1, ir.NoReg, p, b1.ID, 0.9)
	h1.FallThrough = after.ID
	b1.FallThrough = h2.ID
	q := f.NewReg(ir.ClassPred)
	f.EmitCmpp(h2, q, ir.NoReg, ir.CondLT, ir.GPR(0), ir.GPR(1))
	f.EmitBrct(h2, ir.NoReg, q, b2.ID, 0.8)
	h2.FallThrough = h1.ID // outer back edge
	b2.FallThrough = h2.ID // inner back edge
	f.EmitRet(after)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDominatorsNestedLoops(t *testing.T) {
	f := nestedLoops(t)
	g := New(f)
	d := Dominators(g)
	// pre dominates everything; h1 dominates h2, b2, after; h2 dominates b2.
	for b := ir.BlockID(1); b < 6; b++ {
		if !d.Dominates(0, b) {
			t.Errorf("pre must dominate bb%d", b)
		}
	}
	if !d.Dominates(1, 3) || !d.Dominates(1, 5) {
		t.Error("outer header must dominate inner header and exit")
	}
	if !d.Dominates(3, 4) {
		t.Error("inner header must dominate inner body")
	}
	if d.Dominates(4, 3) {
		t.Error("inner body must not dominate inner header")
	}
}

func TestBackEdgesNested(t *testing.T) {
	f := nestedLoops(t)
	g := New(f)
	be := g.BackEdges()
	if len(be) != 2 {
		t.Fatalf("back edges = %v, want 2 (inner and outer)", be)
	}
	heads := map[ir.BlockID]bool{}
	for _, e := range be {
		heads[e[1]] = true
	}
	if !heads[1] || !heads[3] {
		t.Fatalf("back edge heads = %v, want the two loop headers", heads)
	}
}

func TestLivenessGuardIsUse(t *testing.T) {
	// A guarded op's predicate must be live into the block.
	f := ir.NewFunction("g")
	b0, b1 := f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	r := f.NewReg(ir.ClassGPR)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r, r)
	b0.FallThrough = b1.ID
	mov := f.EmitMovI(b1, r, 5)
	mov.Guard = p
	f.EmitRet(b1)
	lv := ComputeLiveness(New(f))
	if !lv.LiveIn[b1.ID].Has(p) {
		t.Fatal("guard predicate not live-in")
	}
	if !lv.LiveOut[b0.ID].Has(p) {
		t.Fatal("guard predicate not live-out of its def block")
	}
}

func TestLivenessGuardedDefDoesNotKill(t *testing.T) {
	// bb1 guardedly redefines r, then bb2 reads r: the original value may
	// flow through, so r must be live-in at bb1.
	f := ir.NewFunction("gk")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	r := f.NewReg(ir.ClassGPR)
	f.EmitMovI(b0, r, 1)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r, r)
	b0.FallThrough = b1.ID
	mov := f.EmitMovI(b1, r, 5)
	mov.Guard = p
	b1.FallThrough = b2.ID
	f.EmitSt(b2, r, 0, r)
	f.EmitRet(b2)
	lv := ComputeLiveness(New(f))
	if !lv.LiveIn[b1.ID].Has(r) {
		t.Fatal("value under a guarded redefinition must stay live-in")
	}

	// Sanity: with the guard removed, the def kills and r is dead at bb1.
	mov.Guard = ir.NoReg
	lv = ComputeLiveness(New(f))
	if lv.LiveIn[b1.ID].Has(r) {
		t.Fatal("unguarded def must kill")
	}
}

// Property: dominance is reflexive and antisymmetric on random chains with
// a random skip edge.
func TestDominanceProperties(t *testing.T) {
	fn := func(skipFrom, skipTo uint8) bool {
		const n = 8
		f := ir.NewFunction("q")
		blocks := make([]*ir.Block, n)
		for i := range blocks {
			blocks[i] = f.NewBlock()
		}
		for i := 0; i < n-1; i++ {
			blocks[i].FallThrough = blocks[i+1].ID
		}
		f.EmitRet(blocks[n-1])
		from := int(skipFrom) % (n - 2)
		to := from + 2 + int(skipTo)%(n-from-2)
		p := f.NewReg(ir.ClassPred)
		// Insert the branch before the fallthrough chain op ordering rules:
		f.EmitBrct(blocks[from], ir.NoReg, p, blocks[to].ID, 0.5)
		if err := f.Validate(); err != nil {
			return true // skip malformed combinations (duplicate succ)
		}
		g := New(f)
		d := Dominators(g)
		for i := 0; i < n; i++ {
			if !d.Dominates(ir.BlockID(i), ir.BlockID(i)) {
				return false
			}
			for j := i + 1; j < n; j++ {
				if d.Dominates(ir.BlockID(i), ir.BlockID(j)) && d.Dominates(ir.BlockID(j), ir.BlockID(i)) {
					return false
				}
			}
		}
		// Entry dominates all reachable blocks.
		for i := 1; i < n; i++ {
			if g.Reachable(ir.BlockID(i)) && !d.Dominates(0, ir.BlockID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
