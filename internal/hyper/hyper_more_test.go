package hyper

import (
	"testing"

	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/profile"
)

// mirrorTriangle builds the if-arm on the FALLTHROUGH side:
// head --br--> join; head -> arm -> join.
func TestIfConvertMirrorTriangle(t *testing.T) {
	f := ir.NewFunction("mirror")
	head, arm, join := f.NewBlock(), f.NewBlock(), f.NewBlock()
	a := f.NewReg(ir.ClassGPR)
	v := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(head, a, 1)
	f.EmitMovI(head, v, 7)
	f.EmitCmpp(head, p, ir.NoReg, ir.CondGT, a, a) // false: arm executes
	f.EmitBrct(head, ir.NoReg, p, join.ID, 0)
	head.FallThrough = arm.ID
	f.EmitMovI(arm, v, 9)
	arm.FallThrough = join.ID
	f.EmitSt(join, a, 0, v)
	f.EmitRet(join)
	prof := profile.New()
	prof.AddBlock(head.ID, 10)
	prof.AddBlock(arm.ID, 10)
	prof.AddEdge(head.ID, arm.ID, 10)
	prof.AddEdge(arm.ID, join.ID, 10)

	st := IfConvert(f, prof, DefaultConfig())
	if st.Triangles != 1 {
		t.Fatalf("stats = %+v, want one (mirror) triangle", st)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The complement polarity grew on the CMPP and guards the arm op.
	cmpp := f.Block(0).Ops[2]
	if len(cmpp.Dests) != 2 {
		t.Fatal("CMPP complement not grown")
	}
	var guarded *ir.Op
	for _, op := range f.Block(0).Ops {
		if op.Guarded() {
			guarded = op
		}
	}
	if guarded == nil || guarded.Guard != cmpp.Dests[1] {
		t.Fatalf("arm op guarded by %v, want the complement %v", guarded, cmpp.Dests[1])
	}
	// Data: p false → complement true → arm fires → store 9.
	tr, err := interp.Run(f, interp.NewOracle(0), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 9 {
		t.Fatalf("stores = %v, want value 9", tr.Stores)
	}
	// The dead PBR-free branch is gone and head falls straight through.
	if f.Block(0).NumSuccs() != 1 {
		t.Fatal("head still branches")
	}
}

func TestIfConvertDropsDeadPbr(t *testing.T) {
	f := ir.NewFunction("pbr")
	head, arm, join := f.NewBlock(), f.NewBlock(), f.NewBlock()
	a := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	btr := f.NewReg(ir.ClassBTR)
	f.EmitMovI(head, a, 1)
	f.EmitCmpp(head, p, ir.NoReg, ir.CondGT, a, a)
	f.EmitPbr(head, btr, arm.ID)
	f.EmitBrct(head, btr, p, arm.ID, 0.5)
	head.FallThrough = join.ID
	f.EmitALU(arm, ir.Add, f.NewReg(ir.ClassGPR), a, a)
	arm.FallThrough = join.ID
	f.EmitRet(join)
	before := f.NumOps()
	st := IfConvert(f, profile.New(), DefaultConfig())
	if st.Triangles != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Both the branch and its PBR disappeared.
	if f.NumOps() != before-2 {
		t.Fatalf("ops %d -> %d, want the branch and PBR removed", before, f.NumOps())
	}
	for _, op := range f.Block(0).Ops {
		if op.Opcode == ir.Pbr || op.IsBranch() {
			t.Fatalf("leftover %v", op)
		}
	}
}

func TestIfConvertNestedDiamondsAcrossPasses(t *testing.T) {
	// Outer diamond whose arms are themselves tiny diamonds: inner ones
	// convert on pass 1, outer on pass 2.
	f := ir.NewFunction("nested")
	mk := func(parent *ir.Block, depth int) *ir.Block {
		a := f.NewReg(ir.ClassGPR)
		p := f.NewReg(ir.ClassPred)
		f.EmitMovI(parent, a, int64(depth))
		f.EmitCmpp(parent, p, ir.NoReg, ir.CondGT, a, a)
		tb, eb, join := f.NewBlock(), f.NewBlock(), f.NewBlock()
		f.EmitBrct(parent, ir.NoReg, p, tb.ID, 0.5)
		parent.FallThrough = eb.ID
		f.EmitALU(tb, ir.Add, f.NewReg(ir.ClassGPR), a, a)
		tb.FallThrough = join.ID
		f.EmitALU(eb, ir.Sub, f.NewReg(ir.ClassGPR), a, a)
		eb.FallThrough = join.ID
		return join
	}
	head := f.NewBlock()
	j1 := mk(head, 1)
	j2 := mk(j1, 2)
	f.EmitRet(j2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	st := IfConvert(f, profile.New(), DefaultConfig())
	if st.Diamonds != 2 {
		t.Fatalf("stats = %+v, want both diamonds converted", st)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Control is now a straight line from the entry.
	g := f.Block(head.ID)
	for g.FallThrough != ir.NoBlock {
		if len(g.Branches()) != 0 {
			t.Fatal("branches remain after full conversion")
		}
		g = f.Block(g.FallThrough)
	}
}

func TestIfConvertRespectsMaxPasses(t *testing.T) {
	f := ir.NewFunction("passes")
	mkTri := func(parent *ir.Block) *ir.Block {
		a := f.NewReg(ir.ClassGPR)
		p := f.NewReg(ir.ClassPred)
		f.EmitCmpp(parent, p, ir.NoReg, ir.CondGT, a, a)
		arm, join := f.NewBlock(), f.NewBlock()
		f.EmitBrct(parent, ir.NoReg, p, arm.ID, 0.5)
		parent.FallThrough = join.ID
		f.EmitALU(arm, ir.Add, f.NewReg(ir.ClassGPR), a, a)
		arm.FallThrough = join.ID
		return join
	}
	head := f.NewBlock()
	j := mkTri(head)
	j = mkTri(j)
	f.EmitRet(j)
	// Single pass still converts both: they are siblings, not nested.
	st := IfConvert(f, profile.New(), Config{MaxArmOps: 8, MaxPasses: 1})
	if st.Triangles != 2 {
		t.Fatalf("stats = %+v, want both sibling triangles in one pass", st)
	}
}
