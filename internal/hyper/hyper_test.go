package hyper

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/progen"
)

// diamond builds: head{cmpp; br T} -> E; T{r5=ADD}, E{r5=SUB} -> join{st r5}.
// The branch probability is pinned to the *actual* truth of the compare
// (r10 > r3 is true), so the oracle-driven original and the data-driven
// predicated version take the same logical path and their store traces are
// directly comparable.
func diamond(t *testing.T, takenMatchesData bool) (*ir.Function, *profile.Data) {
	t.Helper()
	f := ir.NewFunction("d")
	head, tb, eb, join := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	a, b := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	v := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(head, a, 10)
	f.EmitMovI(head, b, 3)
	// Pin the data truth and the oracle to the same outcome so the
	// oracle-driven original and the data-driven predicated version take
	// the same logical path.
	cond, prob := ir.CondGT, 1.0 // 10 > 3: true, always taken
	if !takenMatchesData {
		cond, prob = ir.CondLT, 0.0 // 10 < 3: false, never taken
	}
	f.EmitCmpp(head, p, ir.NoReg, cond, a, b)
	f.EmitBrct(head, ir.NoReg, p, tb.ID, prob)
	head.FallThrough = eb.ID
	f.EmitALU(tb, ir.Add, v, a, b) // 13
	tb.FallThrough = join.ID
	f.EmitALU(eb, ir.Sub, v, a, b) // 7
	eb.FallThrough = join.ID
	f.EmitSt(join, a, 0, v)
	f.EmitRet(join)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	prof.AddBlock(head.ID, 100)
	prof.AddBlock(join.ID, 100)
	if takenMatchesData {
		prof.AddBlock(tb.ID, 100)
		prof.AddEdge(head.ID, tb.ID, 100)
		prof.AddEdge(tb.ID, join.ID, 100)
	} else {
		prof.AddBlock(eb.ID, 100)
		prof.AddEdge(head.ID, eb.ID, 100)
		prof.AddEdge(eb.ID, join.ID, 100)
	}
	return f, prof
}

func TestIfConvertDiamond(t *testing.T) {
	f, prof := diamond(t, true)
	before := prof.Total()
	st := IfConvert(f, prof, DefaultConfig())
	if st.Diamonds != 1 || st.Triangles != 0 {
		t.Fatalf("stats = %+v, want one diamond", st)
	}
	if st.Predicated != 2 {
		t.Fatalf("predicated = %d, want 2", st.Predicated)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The head now falls straight to the join; the arms are empty.
	head := f.Block(0)
	if head.FallThrough != 3 || head.NumSuccs() != 1 {
		t.Fatalf("head successors wrong: %v", head.Succs())
	}
	if len(f.Block(1).Ops) != 0 || len(f.Block(2).Ops) != 0 {
		t.Fatal("arms not emptied")
	}
	// Both arm ops live in head, guarded with opposite polarities.
	var guards []ir.Reg
	for _, op := range head.Ops {
		if op.Guarded() {
			guards = append(guards, op.Guard)
		}
	}
	if len(guards) != 2 || guards[0] == guards[1] {
		t.Fatalf("guards = %v, want two opposite predicates", guards)
	}
	// The CMPP grew a complement destination.
	cmpp := findCmpp(head, guards[0])
	if cmpp == nil {
		cmpp = findCmpp(head, guards[1])
	}
	if cmpp == nil || len(cmpp.Dests) != 2 {
		t.Fatal("CMPP complement missing")
	}
	// Profile mass conserved (arm weight folded away, head unchanged).
	if got := prof.Total(); got != before-100 {
		t.Fatalf("profile total = %v, want %v (arm folded into head)", got, before-100)
	}
	if prof.EdgeWeight(0, 3) != 100 {
		t.Fatalf("head->join edge = %v", prof.EdgeWeight(0, 3))
	}
}

func TestIfConvertPreservesSemantics(t *testing.T) {
	// The branch decision matches the data, so traces are comparable.
	for _, taken := range []bool{true, false} {
		orig, _ := diamond(t, taken)
		conv, prof := diamond(t, taken)
		IfConvert(conv, prof, DefaultConfig())
		a, errA := interp.Run(orig, interp.NewOracle(1), interp.Config{})
		b, errB := interp.Run(conv, interp.NewOracle(1), interp.Config{})
		if errA != nil || errB != nil {
			t.Fatalf("run: %v / %v", errA, errB)
		}
		if len(a.Stores) != 1 || len(b.Stores) != 1 {
			t.Fatalf("stores: %v vs %v", a.Stores, b.Stores)
		}
		if a.Stores[0] != b.Stores[0] {
			t.Fatalf("taken=%v: store %v vs %v — predication changed the result",
				taken, a.Stores[0], b.Stores[0])
		}
	}
}

func TestIfConvertTriangle(t *testing.T) {
	f := ir.NewFunction("tri")
	head, arm, join := f.NewBlock(), f.NewBlock(), f.NewBlock()
	a := f.NewReg(ir.ClassGPR)
	v := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(head, a, 1)
	f.EmitMovI(head, v, 7)
	f.EmitCmpp(head, p, ir.NoReg, ir.CondGT, a, a) // false
	f.EmitBrct(head, ir.NoReg, p, arm.ID, 0)
	head.FallThrough = join.ID
	f.EmitMovI(arm, v, 9)
	arm.FallThrough = join.ID
	f.EmitSt(join, a, 0, v)
	f.EmitRet(join)
	prof := profile.New()
	prof.AddBlock(head.ID, 50)
	prof.AddEdge(head.ID, join.ID, 50)

	st := IfConvert(f, prof, DefaultConfig())
	if st.Triangles != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Not-taken path: v stays 7 under both the original and the guarded op.
	tr, err := interp.Run(f, interp.NewOracle(3), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 1 || tr.Stores[0].Value != 7 {
		t.Fatalf("stores = %v, want value 7 (guard false squashes MOVI 9)", tr.Stores)
	}
}

func TestIfConvertSkipsBigArms(t *testing.T) {
	f, prof := diamond(t, true)
	st := IfConvert(f, prof, Config{MaxArmOps: 0, MaxPasses: 1})
	if st.Diamonds != 1 {
		t.Fatal("default MaxArmOps should allow the small diamond")
	}
	f2, prof2 := diamond(t, true)
	// An absurd limit of... we need arms > limit: build arm with 2 ops? The
	// arm has one op; force the skip with a separate check using a bigger arm.
	_ = f2
	_ = prof2
	f3 := ir.NewFunction("big")
	head, arm, join := f3.NewBlock(), f3.NewBlock(), f3.NewBlock()
	a := f3.NewReg(ir.ClassGPR)
	p := f3.NewReg(ir.ClassPred)
	f3.EmitCmpp(head, p, ir.NoReg, ir.CondGT, a, a)
	f3.EmitBrct(head, ir.NoReg, p, arm.ID, 0.5)
	head.FallThrough = join.ID
	for i := 0; i < 12; i++ {
		f3.EmitALU(arm, ir.Add, f3.NewReg(ir.ClassGPR), a, a)
	}
	arm.FallThrough = join.ID
	f3.EmitRet(join)
	pr := profile.New()
	if st := IfConvert(f3, pr, Config{MaxArmOps: 8, MaxPasses: 2}); st.Triangles != 0 {
		t.Fatal("oversized arm converted")
	}
}

func TestIfConvertSkipsCallsAndBranches(t *testing.T) {
	f := ir.NewFunction("call")
	head, arm, join := f.NewBlock(), f.NewBlock(), f.NewBlock()
	a := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(head, p, ir.NoReg, ir.CondGT, a, a)
	f.EmitBrct(head, ir.NoReg, p, arm.ID, 0.5)
	head.FallThrough = join.ID
	call := f.NewOp(ir.Call)
	arm.Ops = append(arm.Ops, call)
	arm.FallThrough = join.ID
	f.EmitRet(join)
	if st := IfConvert(f, profile.New(), DefaultConfig()); st.Triangles != 0 {
		t.Fatal("arm with a call converted")
	}
}

func TestIfConvertOnSuite(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs[:4] {
		for _, fn := range prog.Funcs[:2] {
			prof, err := interp.Profile(fn, 31, 40, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			st := IfConvert(fn, prof, DefaultConfig())
			if st.Triangles+st.Diamonds == 0 {
				t.Errorf("%s/%s: nothing converted — suite should contain diamonds", prog.Name, fn.Name)
			}
			if err := fn.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
			}
			// The transformed function must still terminate under the
			// interpreter (guards squash correctly).
			if _, err := interp.Run(fn, interp.NewOracle(5), interp.Config{MaxSteps: 2_000_000}); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
			}
			// Merge points must have decreased: joins of converted diamonds
			// lost a predecessor.
			g := cfg.New(fn)
			_ = g
		}
	}
}
