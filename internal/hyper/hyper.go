// Package hyper implements hyperblock-style if-conversion — the alternative
// to tail duplication the paper names as future work ("the serialization of
// code using predication as in hyperblocks is an alternative to using tail
// duplication to eliminate merge points... We also plan to compare the
// tradeoffs between hyperblocks and treegions directly and to evaluate the
// merits of predication versus speculation for scheduling").
//
// The pass converts innermost if-then triangles and if-then-else diamonds
// into straight-line predicated code: the controlling branch disappears, the
// arm ops are guarded by the branch predicate (or its CMPP-produced
// complement), and the join loses a merge point — often letting subsequent
// treegion formation build larger regions without any code duplication.
// Predication's cost is the paper's expected tradeoff: guarded ops occupy
// issue slots on every execution, whereas speculation fills otherwise idle
// slots only.
package hyper

import (
	"treegion/internal/ir"
	"treegion/internal/profile"
)

// Config bounds the conversion.
type Config struct {
	// MaxArmOps skips arms larger than this (serializing a big cold arm
	// into the hot path is rarely worth it). Zero means the default.
	MaxArmOps int
	// MaxPasses bounds how many times the function is re-scanned; each pass
	// can expose new innermost diamonds. Zero means the default.
	MaxPasses int
}

// DefaultConfig mirrors common hyperblock formation limits.
func DefaultConfig() Config { return Config{MaxArmOps: 8, MaxPasses: 4} }

// Stats reports what the pass did.
type Stats struct {
	Triangles int // if-then conversions
	Diamonds  int // if-then-else conversions
	Predicated int // ops that received a guard
}

// IfConvert predicates innermost triangles and diamonds of fn in place,
// keeping prof consistent (arm weights fold into the head block). It
// returns conversion statistics. The function must be profiled before
// conversion; the transformed function still validates and interprets
// (guarded ops are squashed when their predicate is false).
func IfConvert(fn *ir.Function, prof *profile.Data, c Config) Stats {
	if c.MaxArmOps <= 0 {
		c.MaxArmOps = 8
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 4
	}
	var st Stats
	for pass := 0; pass < c.MaxPasses; pass++ {
		changed := false
		preds := computePreds(fn)
		for _, head := range fn.Blocks {
			if convertOne(fn, prof, preds, head, c, &st) {
				changed = true
				preds = computePreds(fn)
			}
		}
		if !changed {
			break
		}
	}
	return st
}

// convertOne tries to if-convert the branch ending head. Shapes handled
// (T = branch target, J = fallthrough / join):
//
//	triangle: head --br--> T -> J,  head -> J        (if-then)
//	diamond:  head --br--> T -> J,  head -> E -> J   (if-then-else)
func convertOne(fn *ir.Function, prof *profile.Data, preds map[ir.BlockID][]ir.BlockID,
	head *ir.Block, c Config, st *Stats) bool {
	brs := head.Branches()
	if len(brs) != 1 || head.FallThrough == ir.NoBlock {
		return false
	}
	br := brs[0]
	if !br.Opcode.IsConditionalBranch() {
		return false
	}
	t := fn.Block(br.Target)
	e := fn.Block(head.FallThrough)

	// The predicate must come from a CMPP in head (its first destination)
	// so the complement polarity can be grown on demand.
	cmpp := findCmpp(head, br.Srcs[len(br.Srcs)-1])
	if cmpp == nil {
		return false
	}

	switch {
	case armOK(fn, preds, t, head.ID, c) && armOK(fn, preds, e, head.ID, c) &&
		t.FallThrough == e.FallThrough && t.FallThrough != ir.NoBlock:
		// Diamond: T guarded by the taken polarity, E by the complement.
		join := t.FallThrough
		guardOps(t, predOf(br, cmpp, fn, false))
		guardOps(e, predOf(br, cmpp, fn, true))
		st.Predicated += len(t.Ops) + len(e.Ops)
		dropBranch(head, br)
		head.Ops = append(head.Ops, t.Ops...)
		head.Ops = append(head.Ops, e.Ops...)
		foldBlock(prof, t, join)
		foldBlock(prof, e, join)
		prof.MoveEdge(head.ID, t.ID, join)
		prof.MoveEdge(head.ID, e.ID, join)
		head.FallThrough = join
		st.Diamonds++
		return true
	case armOK(fn, preds, t, head.ID, c) && t.FallThrough == e.ID:
		// Triangle, arm on the taken side: head --br--> T -> J; head -> J.
		guardOps(t, predOf(br, cmpp, fn, false))
		st.Predicated += len(t.Ops)
		dropBranch(head, br)
		head.Ops = append(head.Ops, t.Ops...)
		foldBlock(prof, t, e.ID)
		prof.MoveEdge(head.ID, t.ID, e.ID)
		st.Triangles++
		return true
	case armOK(fn, preds, e, head.ID, c) && e.FallThrough == t.ID:
		// Mirror triangle, arm on the fallthrough: head --br--> J; head -> E -> J.
		guardOps(e, predOf(br, cmpp, fn, true))
		st.Predicated += len(e.Ops)
		dropBranch(head, br)
		head.Ops = append(head.Ops, e.Ops...)
		foldBlock(prof, e, t.ID)
		prof.MoveEdge(head.ID, e.ID, t.ID)
		head.FallThrough = t.ID
		st.Triangles++
		return true
	}
	return false
}

// findCmpp locates the CMPP in head whose primary destination is p.
func findCmpp(head *ir.Block, p ir.Reg) *ir.Op {
	if p.Class != ir.ClassPred {
		return nil
	}
	for _, op := range head.Ops {
		if op.Opcode == ir.Cmpp && op.Dests[0] == p && !op.Guarded() {
			return op
		}
	}
	return nil
}

// dropBranch removes the branch and, if present and otherwise dead, the PBR
// that primed its branch-target register.
func dropBranch(head *ir.Block, br *ir.Op) {
	removeOp(head, br)
	if len(br.Srcs) == 0 || br.Srcs[0].Class != ir.ClassBTR {
		return
	}
	btr := br.Srcs[0]
	for _, op := range head.Ops {
		for _, s := range op.Srcs {
			if s == btr {
				return // still used
			}
		}
	}
	for _, op := range head.Ops {
		if op.Opcode == ir.Pbr && len(op.Dests) == 1 && op.Dests[0] == btr {
			removeOp(head, op)
			return
		}
	}
}

// armOK reports whether blk is a convertible arm: solely reached from head,
// straight-line (no branches, no Ret), small enough, and free of
// unpredicable ops.
func armOK(fn *ir.Function, preds map[ir.BlockID][]ir.BlockID, blk *ir.Block, head ir.BlockID, c Config) bool {
	if len(preds[blk.ID]) != 1 || preds[blk.ID][0] != head {
		return false
	}
	if len(blk.Ops) > c.MaxArmOps {
		return false
	}
	for _, op := range blk.Ops {
		if op.IsBranch() || op.Opcode == ir.Ret || op.Opcode == ir.Call {
			return false
		}
		if op.Guarded() {
			return false // no nested predication in this study
		}
		// Guarding a CMPP that feeds a *branch elsewhere* would be fine,
		// but a squashed CMPP leaves its predicate stale; require the
		// predicate to be consumed... conservatively skip CMPPs with
		// complement destinations used beyond the arm.
		if op.Opcode == ir.Pbr {
			return false // its branch was in this arm's future; keep simple
		}
	}
	return blk.FallThrough != ir.NoBlock
}

// predOf returns the branch's polarity predicate: for BRCT the taken guard
// is the predicate itself and the complement guards the else arm (grown on
// the CMPP on demand); BRCF is the mirror image.
func predOf(br *ir.Op, cmpp *ir.Op, fn *ir.Function, complement bool) ir.Reg {
	taken := br.Opcode == ir.Brct
	wantTrue := taken != complement // true-polarity guard?
	if wantTrue {
		return cmpp.Dests[0]
	}
	if len(cmpp.Dests) == 1 {
		pbar := fn.NewReg(ir.ClassPred)
		cmpp.Dests = append(cmpp.Dests, pbar)
	}
	return cmpp.Dests[1]
}

// guardOps applies guard p to every op of the arm.
func guardOps(blk *ir.Block, p ir.Reg) {
	for _, op := range blk.Ops {
		op.Guard = p
	}
}

// foldBlock empties an absorbed arm and zeroes its profile entries (the
// predicated ops now execute whenever the head does).
func foldBlock(prof *profile.Data, arm *ir.Block, join ir.BlockID) {
	arm.Ops = nil
	arm.FallThrough = ir.NoBlock
	delete(prof.Edge, profile.Edge{From: arm.ID, To: join})
	prof.AddBlock(arm.ID, -prof.BlockWeight(arm.ID))
}

// removeOp deletes op from blk.
func removeOp(blk *ir.Block, op *ir.Op) {
	for i, o := range blk.Ops {
		if o == op {
			blk.Ops = append(blk.Ops[:i], blk.Ops[i+1:]...)
			return
		}
	}
}

func computePreds(fn *ir.Function) map[ir.BlockID][]ir.BlockID {
	preds := make(map[ir.BlockID][]ir.BlockID, len(fn.Blocks))
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}
