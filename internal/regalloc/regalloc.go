// Package regalloc maps the virtual registers of a finished schedule onto
// finite physical register files and estimates the spill cost — the problem
// the treegion paper explicitly set aside ("copy Ops added due to renaming
// were not used in computing speedup") and that its follow-up work tackled.
// Speculation and renaming lengthen live ranges, so wide-issue region
// scheduling trades register pressure for parallelism; this package
// quantifies that trade.
//
// The allocator is a classic Poletto–Sarkar linear scan over the schedule's
// cycle axis: values live from their definition's issue cycle to their last
// in-region consumer's cycle; when a class's file is exhausted, the interval
// with the furthest end point spills. Each spilled interval is charged one
// store plus one reload per consumer, and SpillCycles estimates the cycles
// those memory ops would add to the region (they are *not* scheduled — this
// is an assessment pass, mirroring how the paper's evaluation kept
// scheduling and allocation separate).
package regalloc

import (
	"sort"

	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/sched"
)

// FileSizes bounds each register class. Zero means unlimited (class
// ignored). The PlayDoh-flavoured default is generous, 1998-style.
type FileSizes struct {
	GPR, Pred, BTR, FPR int
}

// DefaultFiles mirrors a PlayDoh-like configuration: 64 general registers,
// 64 predicates, 8 branch-target registers, 64 floating-point registers.
func DefaultFiles() FileSizes { return FileSizes{GPR: 64, Pred: 64, BTR: 8, FPR: 64} }

func (f FileSizes) of(c ir.RegClass) int {
	switch c {
	case ir.ClassGPR:
		return f.GPR
	case ir.ClassPred:
		return f.Pred
	case ir.ClassBTR:
		return f.BTR
	case ir.ClassFPR:
		return f.FPR
	default:
		return 0
	}
}

// Result summarizes one schedule's allocation.
type Result struct {
	// Spilled counts spilled live intervals per class (map key is the
	// class's letter prefix, e.g. "r").
	Spilled map[ir.RegClass]int
	// MaxUsed is the peak simultaneous physical registers per class.
	MaxUsed map[ir.RegClass]int
	// SpillOps is the number of memory ops (one store per spill, one
	// reload per consumer of a spilled value) the allocation would insert.
	SpillOps int
	// SpillCycles is a crude latency estimate: each spill op costs one
	// issue slot plus the load's 2-cycle latency on the reload path.
	SpillCycles int
}

// TotalSpills sums spilled intervals over all classes.
func (r Result) TotalSpills() int {
	n := 0
	for _, k := range r.Spilled {
		n += k
	}
	return n
}

type interval struct {
	class      ir.RegClass
	start, end int
	uses       int // consumers after the definition (reload count if spilled)
}

// Allocate runs linear scan over the schedule under the given file sizes.
func Allocate(s *sched.Schedule, files FileSizes) Result {
	res := Result{
		Spilled: map[ir.RegClass]int{},
		MaxUsed: map[ir.RegClass]int{},
	}
	intervals := collect(s)
	byClass := map[ir.RegClass][]interval{}
	for _, iv := range intervals {
		byClass[iv.class] = append(byClass[iv.class], iv)
	}
	for class, ivs := range byClass {
		k := files.of(class)
		if k <= 0 {
			continue
		}
		spilled, maxUsed, reloads := linearScan(ivs, k)
		res.Spilled[class] = spilled
		res.MaxUsed[class] = maxUsed
		res.SpillOps += spilled + reloads // one store per spill + reloads
		res.SpillCycles += spilled + 3*reloads
	}
	return res
}

// collect builds live intervals: one per defined register per node.
func collect(s *sched.Schedule) []interval {
	var out []interval
	for _, n := range s.Graph.Nodes {
		if len(n.Op.Dests) == 0 {
			continue
		}
		def := s.Cycle[n.Index]
		end := def
		uses := 0
		for _, e := range n.Succs {
			if consumes(e.To, n) {
				uses++
				if c := s.Cycle[e.To.Index]; c > end {
					end = c
				}
			}
		}
		for _, d := range n.Op.Dests {
			if d.IsValid() {
				out = append(out, interval{class: d.Class, start: def, end: end, uses: uses})
			}
		}
	}
	return out
}

// consumes reports whether to actually reads one of from's destinations
// (filters anti/output/control edges out of the use count).
func consumes(to *ddg.Node, from *ddg.Node) bool {
	for _, d := range from.Op.Dests {
		if !d.IsValid() {
			continue
		}
		for _, src := range to.Op.Srcs {
			if src == d {
				return true
			}
		}
		if to.Op.Guard == d {
			return true
		}
	}
	return false
}

// linearScan performs Poletto–Sarkar allocation with furthest-end spilling.
func linearScan(ivs []interval, k int) (spilled, maxUsed, reloads int) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})
	// active holds the end cycles of currently allocated intervals.
	var active []interval
	expire := func(now int) {
		kept := active[:0]
		for _, a := range active {
			if a.end >= now {
				kept = append(kept, a)
			}
		}
		active = kept
	}
	for _, iv := range ivs {
		expire(iv.start)
		if len(active) < k {
			active = append(active, iv)
			if len(active) > maxUsed {
				maxUsed = len(active)
			}
			continue
		}
		// Spill the interval with the furthest end (it blocks longest).
		victim := -1
		for i, a := range active {
			if a.end > iv.end && (victim < 0 || a.end > active[victim].end) {
				victim = i
			}
		}
		spilled++
		if victim >= 0 {
			reloads += active[victim].uses
			active[victim] = iv
		} else {
			reloads += iv.uses // the new interval itself spills
		}
	}
	return spilled, maxUsed, reloads
}
