package regalloc

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/progen"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// wideBlock builds a block with n simultaneously live GPR values: n MOVIs
// whose results all feed one op at the end.
func wideBlock(t *testing.T, n int) *sched.Schedule {
	t.Helper()
	f := ir.NewFunction("wide")
	b := f.NewBlock()
	regs := make([]ir.Reg, n)
	for i := range regs {
		regs[i] = f.NewReg(ir.ClassGPR)
		f.EmitMovI(b, regs[i], int64(i))
	}
	// Chain all values into one result so every MOVI stays live to the end.
	acc := regs[0]
	for i := 1; i < n; i++ {
		next := f.NewReg(ir.ClassGPR)
		f.EmitALU(b, ir.Add, next, acc, regs[i])
		acc = next
	}
	f.EmitSt(b, regs[0], 0, acc)
	f.EmitRet(b)
	r := region.New(f, region.KindBasicBlock, b.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	return sched.ListSchedule(g, machine.SixteenU, core.DepHeight.Keys)
}

func TestNoSpillWithBigFile(t *testing.T) {
	s := wideBlock(t, 10)
	res := Allocate(s, FileSizes{GPR: 64})
	if res.TotalSpills() != 0 {
		t.Fatalf("spilled %d with a 64-entry file", res.TotalSpills())
	}
	if res.MaxUsed[ir.ClassGPR] == 0 {
		t.Fatal("no usage recorded")
	}
}

func TestSpillsWithTinyFile(t *testing.T) {
	s := wideBlock(t, 24)
	small := Allocate(s, FileSizes{GPR: 4})
	big := Allocate(s, FileSizes{GPR: 64})
	if small.TotalSpills() == 0 {
		t.Fatal("no spills with a 4-entry file and 24 live values")
	}
	if big.TotalSpills() != 0 {
		t.Fatal("spills with a 64-entry file")
	}
	if small.SpillOps <= small.TotalSpills() {
		t.Fatal("reloads not charged")
	}
	if small.SpillCycles < small.SpillOps {
		t.Fatal("cycle estimate below op count")
	}
}

func TestMonotoneInFileSize(t *testing.T) {
	s := wideBlock(t, 24)
	prev := 1 << 30
	for _, k := range []int{2, 4, 8, 16, 32} {
		res := Allocate(s, FileSizes{GPR: k})
		if res.TotalSpills() > prev {
			t.Fatalf("spills increased when the file grew to %d", k)
		}
		prev = res.TotalSpills()
	}
}

func TestZeroFileIgnored(t *testing.T) {
	s := wideBlock(t, 8)
	res := Allocate(s, FileSizes{}) // everything unlimited
	if res.TotalSpills() != 0 || res.SpillOps != 0 {
		t.Fatal("unlimited files must not spill")
	}
}

func TestPressureOrderingAcrossFormers(t *testing.T) {
	// Treegion schedules (more speculation) must need at least as many
	// registers as basic-block schedules of the same code.
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	fn := progs[0].Funcs[0]
	spillsOf := func(kind eval.RegionKind) int {
		f := fn.Clone()
		prof, err := interp.Profile(f, 71, 50, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		c := eval.DefaultConfig()
		c.Kind = kind
		c.Machine = machine.EightU
		fr, err := eval.CompileFunction(f, prof, c)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range fr.Schedules {
			total += Allocate(s, FileSizes{GPR: 16, Pred: 8, BTR: 4, FPR: 16}).TotalSpills()
		}
		return total
	}
	bb := spillsOf(eval.BasicBlocks)
	tree := spillsOf(eval.Treegion)
	if tree < bb {
		t.Fatalf("treegion spills (%d) below basic-block spills (%d) under tight files", tree, bb)
	}
}

func TestDefaultFiles(t *testing.T) {
	d := DefaultFiles()
	if d.GPR != 64 || d.BTR != 8 {
		t.Fatalf("defaults = %+v", d)
	}
}
