package vlsim

import (
	"testing"

	"treegion/internal/core"
	"treegion/internal/eval"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/profile"
)

// TestRenamedSpeculationIsHarmless builds the canonical renaming situation
// by hand — both arms of a diamond define the same live-out register — and
// checks that executing the *treegion schedule* (where both renamed defs run
// speculatively above the branch) still commits the correct value on every
// path.
func TestRenamedSpeculationIsHarmless(t *testing.T) {
	build := func() (*ir.Function, *profile.Data) {
		f := ir.NewFunction("ren")
		b0, tb, eb, join := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
		base := f.NewReg(ir.ClassGPR)
		v := f.NewReg(ir.ClassGPR)
		p := f.NewReg(ir.ClassPred)
		f.EmitMovI(b0, base, 100)
		f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, base, base)
		f.EmitBrct(b0, ir.NoReg, p, tb.ID, 0.5)
		b0.FallThrough = eb.ID
		f.EmitMovI(tb, v, 111)
		tb.FallThrough = join.ID
		f.EmitMovI(eb, v, 222)
		eb.FallThrough = join.ID
		f.EmitSt(join, base, 0, v)
		f.EmitRet(join)
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		prof := profile.New()
		prof.AddBlock(0, 10)
		prof.AddBlock(1, 5)
		prof.AddBlock(2, 5)
		prof.AddBlock(3, 10)
		prof.AddEdge(0, 1, 5)
		prof.AddEdge(0, 2, 5)
		prof.AddEdge(1, 3, 5)
		prof.AddEdge(2, 3, 5)
		return f, prof
	}
	fn, prof := build()
	orig := fn.Clone()
	fr, err := eval.CompileFunction(fn, prof, eval.Config{
		Kind: eval.Treegion, Heuristic: core.DepHeight, Machine: machine.EightU, Rename: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both MOVIs must have been renamed (v live at the join), and the wide
	// machine speculates them above the branch.
	renamed := 0
	for _, f2 := range fr.Regions {
		for _, b := range f2.Blocks {
			for _, op := range fr.Fn.Block(b).Ops {
				if op.Renamed {
					renamed++
				}
			}
		}
	}
	if renamed != 2 {
		t.Fatalf("renamed = %d, want both arm defs", renamed)
	}
	// Differential check across both oracle outcomes.
	for seed := uint64(0); seed < 8; seed++ {
		want, err := interp.Run(orig, interp.NewOracle(seed), interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(fr, interp.NewOracle(seed), 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Stores) != 1 || got.Stores[0] != want.Stores[0] {
			t.Fatalf("seed %d: store %v, want %v", seed, got.Stores, want.Stores)
		}
	}
}

// TestLoadLatencyObserved: a load's consumer in the next region must see
// the loaded value even when the load issues on the region's last cycle
// (in-flight writes complete at region exit).
func TestLoadLatencyObserved(t *testing.T) {
	f := ir.NewFunction("lat")
	b0, b1 := f.NewBlock(), f.NewBlock()
	base := f.NewReg(ir.ClassGPR)
	v := f.NewReg(ir.ClassGPR)
	f.EmitMovI(b0, base, 40)
	f.EmitLd(b0, v, base, 0)
	b0.FallThrough = b1.ID
	f.EmitSt(b1, base, 8, v)
	f.EmitRet(b1)
	prof := profile.New()
	prof.AddBlock(0, 1)
	prof.AddBlock(1, 1)
	prof.AddEdge(0, 1, 1)
	orig := f.Clone()
	fr, err := eval.CompileFunction(f, prof, eval.Config{
		Kind: eval.BasicBlocks, Heuristic: core.DepHeight, Machine: machine.FourU, Rename: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := interp.Run(orig, interp.NewOracle(0), interp.Config{})
	got, err := Run(fr, interp.NewOracle(0), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stores) != 1 || got.Stores[0] != want.Stores[0] {
		t.Fatalf("store %v, want %v (synthetic memory at 40)", got.Stores, want.Stores)
	}
}

// TestOffPathNonSpecSquashed: a store on the not-taken arm must not appear
// in the trace even though its row executes.
func TestOffPathNonSpecSquashed(t *testing.T) {
	f := ir.NewFunction("sq")
	b0, tb, eb := f.NewBlock(), f.NewBlock(), f.NewBlock()
	base := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitMovI(b0, base, 16)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, base, base)
	f.EmitBrct(b0, ir.NoReg, p, tb.ID, 0) // never taken
	b0.FallThrough = eb.ID
	f.EmitSt(tb, base, 0, base)
	f.EmitRet(tb)
	f.EmitSt(eb, base, 8, base)
	f.EmitRet(eb)
	prof := profile.New()
	prof.AddBlock(0, 1)
	prof.AddBlock(2, 1)
	prof.AddEdge(0, 2, 1)
	fr, err := eval.CompileFunction(f, prof, eval.Config{
		Kind: eval.Treegion, Heuristic: core.DepHeight, Machine: machine.EightU, Rename: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(fr, interp.NewOracle(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stores) != 1 || got.Stores[0].Addr != 24 {
		t.Fatalf("stores = %v, want only the fallthrough arm's [16+8]", got.Stores)
	}
}
