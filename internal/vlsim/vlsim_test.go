package vlsim

import (
	"testing"

	"treegion/internal/core"
	"treegion/internal/eval"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/progen"
)

// differential compiles fn under c and checks that executing the schedules
// on the simulated VLIW produces exactly the store trace and block path of
// the sequential interpreter on the original program, across several trips.
func differential(t *testing.T, name string, fn *ir.Function, prof *profile.Data, c eval.Config, seeds int) {
	t.Helper()
	orig := fn.Clone()
	fr, err := eval.CompileFunction(fn, prof, c)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		want, err := interp.Run(orig, interp.NewOracle(seed), interp.Config{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}
		got, err := Run(fr, interp.NewOracle(seed), 2_000_000)
		if err != nil {
			t.Fatalf("%s seed %d: vlsim: %v", name, seed, err)
		}
		if len(got.Blocks) != len(want.Blocks) {
			t.Fatalf("%s seed %d: path length %d vs %d", name, seed, len(got.Blocks), len(want.Blocks))
		}
		for i := range want.Blocks {
			if got.Blocks[i] != want.Blocks[i] {
				t.Fatalf("%s seed %d: path diverges at step %d: bb%d vs bb%d",
					name, seed, i, got.Blocks[i], want.Blocks[i])
			}
		}
		if len(got.Stores) != len(want.Stores) {
			t.Fatalf("%s seed %d: %d stores vs %d", name, seed, len(got.Stores), len(want.Stores))
		}
		for i := range want.Stores {
			if got.Stores[i] != want.Stores[i] {
				t.Fatalf("%s seed %d: store %d = %+v, want %+v",
					name, seed, i, got.Stores[i], want.Stores[i])
			}
		}
	}
}

// TestSchedulesExecuteCorrectly is the compiler's end-to-end differential
// test: for every region former and machine, the *scheduled* code — with
// speculation, renaming, tail duplication and dominator parallelism — must
// behave exactly like the original sequential program.
func TestSchedulesExecuteCorrectly(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	kinds := []struct {
		kind   eval.RegionKind
		rename bool
		dompar bool
	}{
		{eval.BasicBlocks, true, false},
		{eval.SLR, true, false},
		{eval.Treegion, true, false},
		{eval.Superblock, false, false}, // restricted speculation
		{eval.TreegionTD, true, true},
	}
	for _, prog := range progs[:4] {
		for fi, origFn := range prog.Funcs {
			if fi > 1 {
				break
			}
			for _, k := range kinds {
				for _, h := range []core.Heuristic{core.DepHeight, core.GlobalWeight} {
					fn := origFn.Clone()
					prof, err := interp.Profile(fn, 41, 25, interp.Config{MaxSteps: 2_000_000})
					if err != nil {
						t.Fatal(err)
					}
					c := eval.Config{
						Kind: k.kind, Heuristic: h, Machine: machine.FourU,
						Rename: k.rename, DominatorParallelism: k.dompar,
						TD: core.DefaultTDConfig(),
					}
					name := prog.Name + "/" + fn.Name + "/" + k.kind.String() + "/" + h.String()
					differential(t, name, fn, prof, c, 6)
				}
			}
		}
	}
}

// TestSchedulesExecuteCorrectlyWide repeats the differential check on the
// 8-issue machine (more speculation in flight).
func TestSchedulesExecuteCorrectlyWide(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs[4:] {
		fn := prog.Funcs[0].Clone()
		prof, err := interp.Profile(fn, 43, 25, interp.Config{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		c := eval.Config{
			Kind: eval.TreegionTD, Heuristic: core.GlobalWeight, Machine: machine.EightU,
			Rename: true, DominatorParallelism: true, TD: core.DefaultTDConfig(),
		}
		differential(t, prog.Name+"/8U", fn, prof, c, 6)
	}
}

// TestSimulatedLatencies checks the pending-write machinery directly: a
// value read in the same cycle as its write sees the old contents.
func TestSimulatedLatencies(t *testing.T) {
	st := newState()
	st.regs[ir.GPR(0)] = 7
	st.pending = append(st.pending, write{ir.GPR(0), 99, 3})
	if got := st.read(ir.GPR(0), 2); got != 7 {
		t.Fatalf("read before visibility = %d, want 7", got)
	}
	if got := st.read(ir.GPR(0), 3); got != 99 {
		t.Fatalf("read at visibility = %d, want 99", got)
	}
	// flush applies the latest-visible write last.
	st2 := newState()
	st2.pending = append(st2.pending,
		write{ir.GPR(1), 1, 5},
		write{ir.GPR(1), 2, 4},
	)
	st2.flush()
	if st2.regs[ir.GPR(1)] != 1 {
		t.Fatalf("flush kept %d, want the later-visible 1", st2.regs[ir.GPR(1)])
	}
}
