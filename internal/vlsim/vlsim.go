// Package vlsim executes compiled schedules on a simulated VLIW: MultiOp
// rows issue in order, results become visible after their latency, ops from
// not-taken paths execute speculatively exactly as the hardware would, and
// control leaves each region at its resolved exit. Running a whole compiled
// function this way and comparing the observable store trace (and visited
// blocks) against the sequential interpreter on the *original* program
// verifies the entire compiler end to end — region formation, tail
// duplication, dependence construction, register renaming, dominator
// parallelism, and list scheduling together.
//
// The simulation follows the schedule semantics DESIGN.md documents:
//
//   - every op of a region's schedule at a cycle no later than the taken
//     exit issues — including speculatable ops homed on other paths (this is
//     precisely what makes the comparison a real test of renaming);
//   - non-speculatable ops homed off the taken path are squashed (they are
//     guarded by their block's path predicate);
//   - ops carrying an if-conversion guard are squashed when the guard reads
//     false;
//   - a register write becomes visible `latency` cycles after issue; reads
//     in the same cycle see the old value (which is why anti-dependences may
//     share a cycle); in-flight writes complete when control leaves the
//     region (fully pipelined units, NUAL write-back);
//   - memory updates apply in node order within a cycle (the PlayDoh rule
//     that a store and its dependent memory ops may share a cycle).
package vlsim

import (
	"fmt"
	"slices"
	"time"

	"treegion/internal/ddg"
	"treegion/internal/eval"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/sched"
	"treegion/internal/telemetry"
)

// debugHook, when set by tests, is called for on-path non-speculatable ops
// scheduled beyond the taken exit (which would be a model violation).
var debugHook func(s *sched.Schedule, n *ddg.Node, exitCycle int)

// Machine state. Register reads honour write latency via pending writes.
type state struct {
	regs    map[ir.Reg]int64
	mem     map[int64]int64
	pending []write
}

type write struct {
	reg       ir.Reg
	val       int64
	visibleAt int
}

func newState() *state {
	return &state{regs: make(map[ir.Reg]int64), mem: make(map[int64]int64)}
}

// read returns r's value as seen at cycle: committed state plus any pending
// write that has become visible (pending writes are flushed in visibleAt
// order, so the committed map always holds the latest visible value).
func (s *state) read(r ir.Reg, cycle int) int64 {
	s.commit(cycle)
	return s.regs[r]
}

func (s *state) commit(cycle int) {
	kept := s.pending[:0]
	for _, w := range s.pending {
		if w.visibleAt <= cycle {
			s.regs[w.reg] = w.val
		} else {
			kept = append(kept, w)
		}
	}
	s.pending = kept
}

func (s *state) flush() {
	slices.SortStableFunc(s.pending, func(a, b write) int {
		return a.visibleAt - b.visibleAt
	})
	for _, w := range s.pending {
		s.regs[w.reg] = w.val
	}
	s.pending = s.pending[:0]
}

// Run executes the compiled function fr from its entry, resolving branches
// with the oracle (whose decisions are keyed by original op identity, so
// the path matches the sequential interpreter on the original program). It
// returns the observable trace.
func Run(fr *eval.FunctionResult, o interp.Oracle, maxRegions int) (*interp.Trace, error) {
	if fr.Trace != nil {
		t0 := time.Now()
		defer func() { fr.Trace.Observe(telemetry.PhaseVLSim, time.Since(t0), fr.OpsAfter) }()
	}
	// Map each block to its region and schedule.
	owner := make(map[ir.BlockID]int)
	for i, r := range fr.Regions {
		for _, b := range r.Blocks {
			owner[b] = i
		}
	}
	st := newState()
	tr := &interp.Trace{}
	occ := make(map[int]int)
	if maxRegions <= 0 {
		maxRegions = 1 << 20
	}
	cur := fr.Fn.Entry
	for steps := 0; ; steps++ {
		if steps > maxRegions {
			return tr, fmt.Errorf("vlsim: %s exceeded %d region executions", fr.Fn.Name, maxRegions)
		}
		ri, ok := owner[cur]
		if !ok {
			return tr, fmt.Errorf("vlsim: bb%d not in any region", cur)
		}
		next, done, err := runRegion(fr.Schedules[ri], cur, st, o, occ, tr)
		if err != nil {
			return tr, err
		}
		st.flush()
		if done {
			return tr, nil
		}
		cur = next
	}
}

// runRegion executes one region's schedule entered at entry (which must be
// the region root) and returns the successor block, or done for Ret.
func runRegion(s *sched.Schedule, entry ir.BlockID, st *state, o interp.Oracle,
	occ map[int]int, tr *interp.Trace) (ir.BlockID, bool, error) {
	r := s.Graph.Region
	if entry != r.Root {
		return 0, false, fmt.Errorf("vlsim: entered region at bb%d, root is bb%d", entry, r.Root)
	}

	// Resolve the path first: walk the tree from the root, deciding each
	// block's branches in arm order with the oracle — the same decision
	// stream the sequential interpreter consumes.
	type exitInfo struct {
		to    ir.BlockID
		br    *ir.Op // nil for fallthrough exits
		done  bool
		cycle int // cycle of the deciding event (for op filtering)
	}
	onPath := map[ir.BlockID]bool{}
	var exit exitInfo
	cur := entry
walk:
	for {
		onPath[cur] = true
		tr.Blocks = append(tr.Blocks, s.Graph.Fn.Block(cur).Orig)
		blk := s.Graph.Fn.Block(cur)
		for _, op := range blk.Ops {
			if !op.IsBranch() {
				if op.Opcode == ir.Ret {
					exit = exitInfo{done: true}
					break walk
				}
				continue
			}
			taken := true
			if op.Opcode.IsConditionalBranch() {
				n := occ[op.Orig]
				occ[op.Orig] = n + 1
				taken = o.Take(op.Orig, n, op.Prob)
			}
			if taken {
				if r.Contains(op.Target) && r.Parent(op.Target) == cur {
					cur = op.Target
					continue walk
				}
				nd := s.Graph.NodeOf(op)
				exit = exitInfo{to: op.Target, br: op, cycle: s.Cycle[nd.Index]}
				break walk
			}
		}
		ft := blk.FallThrough
		if ft == ir.NoBlock {
			return 0, false, fmt.Errorf("vlsim: bb%d has no continuation", cur)
		}
		if r.Contains(ft) && r.Parent(ft) == cur {
			cur = ft
			continue
		}
		// Fallthrough exit: control leaves after the block's last
		// terminator (all arms checked); ops needed later were measured by
		// eval the same way. For filtering, use the schedule's full length.
		exit = exitInfo{to: ft, cycle: s.Length - 1}
		break
	}
	if exit.done {
		exit.cycle = s.Length - 1
	}

	// Execute rows 0..exitCycle. Within a row, ops run in node-index order
	// (block program order), which fixes same-cycle memory ordering.
	rows := make([][]*ddg.Node, s.Length)
	for _, n := range s.Graph.Nodes {
		c := s.Cycle[n.Index]
		rows[c] = append(rows[c], n)
	}
	if debugHook != nil {
		for _, n := range s.Graph.Nodes {
			if onPath[n.Home] && !n.Spec && !n.Term && s.Cycle[n.Index] > exit.cycle {
				debugHook(s, n, exit.cycle)
			}
		}
	}
	for c := 0; c <= exit.cycle && c < s.Length; c++ {
		slices.SortStableFunc(rows[c], func(a, b *ddg.Node) int { return a.Index - b.Index })
		for _, n := range rows[c] {
			if err := execNode(s, n, c, onPath, st, tr); err != nil {
				return 0, false, err
			}
		}
	}
	return exit.to, exit.done, nil
}

// execNode executes one scheduled op at cycle c under the path filter.
func execNode(s *sched.Schedule, n *ddg.Node, c int, onPath map[ir.BlockID]bool,
	st *state, tr *interp.Trace) error {
	op := n.Op
	if n.Term {
		return nil // control handled by the path walk
	}
	if !n.Spec && !onPath[n.Home] {
		return nil // squashed: guarded by its path predicate
	}
	if op.Guarded() && st.read(op.Guard, c) == 0 {
		return nil // if-conversion guard false
	}
	lat := latencyOf(op.Opcode)
	switch op.Opcode {
	case ir.Nop, ir.Call:
	case ir.Pbr:
		st.pending = append(st.pending, write{op.Dests[0], int64(op.Target), c + lat})
	case ir.MovI:
		st.pending = append(st.pending, write{op.Dests[0], op.Imm, c + lat})
	case ir.Mov, ir.Copy:
		st.pending = append(st.pending, write{op.Dests[0], st.read(op.Srcs[0], c), c + lat})
	case ir.Ld:
		addr := st.read(op.Srcs[0], c) + op.Imm
		v, ok := st.mem[addr]
		if !ok {
			v = interp.SyntheticMem(addr)
		}
		st.pending = append(st.pending, write{op.Dests[0], v, c + lat})
	case ir.St:
		if !onPath[n.Home] {
			return fmt.Errorf("vlsim: off-path store executed: %v", op)
		}
		addr := st.read(op.Srcs[0], c) + op.Imm
		v := st.read(op.Srcs[1], c)
		st.mem[addr] = v
		tr.Stores = append(tr.Stores, interp.StoreEvent{Addr: addr, Value: v})
	case ir.Cmpp:
		a, b := st.read(op.Srcs[0], c), st.read(op.Srcs[1], c)
		res := int64(0)
		if interp.Compare(op.Cond, a, b) {
			res = 1
		}
		st.pending = append(st.pending, write{op.Dests[0], res, c + lat})
		if len(op.Dests) > 1 {
			st.pending = append(st.pending, write{op.Dests[1], 1 - res, c + lat})
		}
	default:
		a, b := int64(0), int64(0)
		if len(op.Srcs) > 0 {
			a = st.read(op.Srcs[0], c)
		}
		if len(op.Srcs) > 1 {
			b = st.read(op.Srcs[1], c)
		}
		st.pending = append(st.pending, write{op.Dests[0], interp.ALU(op.Opcode, a, b), c + lat})
	}
	tr.Steps++
	return nil
}

func latencyOf(o ir.Opcode) int {
	switch o {
	case ir.Ld:
		return 2
	case ir.FMul:
		return 3
	case ir.FDiv:
		return 9
	default:
		return 1
	}
}
