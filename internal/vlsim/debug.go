package vlsim

import (
	"fmt"

	"treegion/internal/ddg"
	"treegion/internal/sched"
)

// SetDebug arms a hook that reports on-path non-speculatable ops scheduled
// past the taken exit (a schedule-model violation) to stdout.
func SetDebug() {
	debugHook = func(s *sched.Schedule, n *ddg.Node, exitCycle int) {
		fmt.Printf("VIOLATION: region root=bb%d op [bb%d] %v (spec=%v) at cycle %d > exit %d\n",
			s.Graph.Region.Root, n.Home, n.Op, n.Spec, s.Cycle[n.Index], exitCycle)
		fmt.Printf("  region: %v\n", s.Graph.Region)
		for _, e := range n.Succs {
			fmt.Printf("  succ: [bb%d] %v lat %d at %d\n", e.To.Home, e.To.Op, e.Latency, s.Cycle[e.To.Index])
		}
		// terms of home block
		for _, m := range s.Graph.Nodes {
			if m.Home == n.Home && m.Term {
				fmt.Printf("  term of home: %v at %d\n", m.Op, s.Cycle[m.Index])
			}
		}
	}
}
