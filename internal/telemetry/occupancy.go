package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Scheduler ready-set occupancy. The list scheduler samples the size of
// its ready set once per issued cycle; the samples land in a per-Scratch
// ReadyOccupancySample (plain int64s, no atomics on the hot path) and are
// folded into the process-wide histogram once per scheduled region. Like
// the PR-5 alloc samples, occupancy is observability-only: it lives
// outside CompileTrace so deterministic trace counts (and the tgart2
// artifact schema) are untouched.

// ReadyOccupancyBounds are the histogram's power-of-two upper bounds; the
// widest machine issues 16 ops per cycle, but stress-tier regions keep
// thousands of ops ready at once.
var ReadyOccupancyBounds = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
}

// readyOccupancySlots is one per bound plus the +Inf overflow.
const readyOccupancySlots = 16

// readyOccupancy is the process-wide sink, exported on demand via
// ExportReadyOccupancy.
var readyOccupancy = &Histogram{
	bounds: ReadyOccupancyBounds,
	counts: make([]atomic.Int64, readyOccupancySlots),
}

// ReadyOccupancySample accumulates one scheduler call's occupancy samples.
// It is embedded in sched.Scratch so the per-cycle hot path touches only
// worker-local memory; Flush publishes the batch with a handful of atomic
// adds.
type ReadyOccupancySample struct {
	counts [readyOccupancySlots]int64
	n      int64
	sum    int64
}

// Observe records one ready-set size. The bucket index is the power-of-two
// ceiling's exponent (CLZ-style, matching the queue it measures).
func (s *ReadyOccupancySample) Observe(size int) {
	i := 0
	if size > 1 {
		i = bits.Len(uint(size - 1))
		if i >= readyOccupancySlots {
			i = readyOccupancySlots - 1
		}
	}
	s.counts[i]++
	s.n++
	s.sum += int64(size)
}

// Flush folds the sample into the process-wide histogram and clears s.
func (s *ReadyOccupancySample) Flush() {
	if s.n == 0 {
		return
	}
	h := readyOccupancy
	for i := range s.counts {
		if c := s.counts[i]; c != 0 {
			h.counts[i].Add(c)
			s.counts[i] = 0
		}
	}
	h.count.Add(s.n)
	h.addSum(float64(s.sum))
	s.n, s.sum = 0, 0
}

// ExportReadyOccupancy registers the process-wide occupancy histogram on
// reg as treegion_sched_ready_occupancy. Safe to call more than once.
func ExportReadyOccupancy(reg *Registry) {
	reg.AttachHistogram("treegion_sched_ready_occupancy", nil,
		"scheduler ready-set size, sampled once per issued cycle", readyOccupancy)
}

// ReadyOccupancyCount returns the total number of samples recorded
// process-wide (test hook).
func ReadyOccupancyCount() int64 { return readyOccupancy.Count() }
