package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach Prometheus label pairs to an instrument. Two instruments
// with the same name but different labels are distinct series under one
// metric family (e.g. compile-phase histograms labelled by phase).
type Labels map[string]string

// Counter is a monotonically increasing int64. A nil counter no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram with an exact sum and
// count, safe for concurrent observation. A nil histogram no-ops.
type Histogram struct {
	bounds  []float64      // upper bounds, ascending; +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Standard bucket layouts.
var (
	// DefBuckets spans compile-phase latencies from 1µs to 2.5s.
	DefBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
	}
	// SizeBuckets covers small integer measures (blocks or paths per region).
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
	// RatioBuckets covers code-expansion ratios (ops after / ops before).
	RatioBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3}
)

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a counter, a gauge/counter backed by a
// read function, or a histogram.
type metric struct {
	name, help string
	labels     string // rendered pairs without braces, e.g. `phase="treeform"`
	kind       metricKind
	counter    *Counter
	hist       *Histogram
	fn         func() int64
}

// Registry holds instruments in registration order and renders them in the
// Prometheus text exposition format. Registration is idempotent: asking for
// an existing (name, labels) returns the same instrument, so hot paths may
// re-resolve instruments without double registration. A nil registry hands
// out nil instruments, which no-op.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	byKey map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", k, labels[k])
	}
	return out
}

// register returns the existing metric for (name, labels) or installs m.
func (r *Registry) register(name string, labels Labels, m *metric) *metric {
	m.name = name
	m.labels = renderLabels(labels)
	key := name + "{" + m.labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		return prev
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, nil, help)
}

// LabeledCounter registers (or returns) a counter series with labels.
func (r *Registry) LabeledCounter(name string, labels Labels, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, labels, &metric{help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// CounterFunc registers a counter whose value is read from fn at render
// time (e.g. an atomic owned by another subsystem).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, nil, &metric{help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.LabeledGaugeFunc(name, nil, help, fn)
}

// LabeledGaugeFunc registers a gauge series with labels, read from fn at
// render time (e.g. the router's per-replica in-flight counts).
func (r *Registry) LabeledGaugeFunc(name string, labels Labels, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, labels, &metric{help: help, kind: kindGauge, fn: fn})
}

// AttachHistogram registers an existing histogram under (name, labels) —
// the export path for package-global sinks that hot paths feed without a
// registry in hand (e.g. the scheduler's ready-occupancy histogram).
// Idempotent like Histogram; the first attachment wins.
func (r *Registry) AttachHistogram(name string, labels Labels, help string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.register(name, labels, &metric{help: help, kind: kindHistogram, hist: h})
}

// addSum CAS-accumulates v into the histogram's sum without counting an
// observation (batch flush path).
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram registers (or returns) a histogram series with the given
// bucket upper bounds.
func (r *Registry) Histogram(name string, labels Labels, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	m := r.register(name, labels, &metric{help: help, kind: kindHistogram, hist: h})
	return m.hist
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// WritePrometheus renders every registered instrument in the text
// exposition format, emitting HELP/TYPE once per metric family.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()

	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		}
		switch {
		case m.hist != nil:
			h := m.hist
			cum := int64(0)
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				le := `le="` + fmtFloat(ub) + `"`
				if m.labels != "" {
					le = m.labels + "," + le
				}
				fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", le), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			le := `le="+Inf"`
			if m.labels != "" {
				le = m.labels + "," + le
			}
			fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", le), cum)
			fmt.Fprintf(w, "%s %s\n", series(m.name+"_sum", m.labels), fmtFloat(h.Sum()))
			fmt.Fprintf(w, "%s %d\n", series(m.name+"_count", m.labels), h.Count())
		case m.fn != nil:
			fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels), m.fn())
		default:
			fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels), m.counter.Value())
		}
	}
}
