package telemetry

import (
	"strings"
	"testing"
)

// TestReadyOccupancySample checks the power-of-two bucketing, the batch
// flush into the process-wide histogram, and the Prometheus export path.
func TestReadyOccupancySample(t *testing.T) {
	before := ReadyOccupancyCount()

	var s ReadyOccupancySample
	sizes := []int{1, 2, 3, 4, 5, 16, 17, 1000, 20000}
	for _, v := range sizes {
		s.Observe(v)
	}
	// Bucketing is the power-of-two ceiling's exponent: 1→0, 2→1, 3..4→2,
	// 5..8→3, 16→4, 17..32→5, 1000→10, 20000 clamps to the last slot.
	wantIdx := []int{0, 1, 2, 2, 3, 4, 5, 10, readyOccupancySlots - 1}
	for i, v := range sizes {
		_ = v
		found := false
		for j := range s.counts {
			if j == wantIdx[i] && s.counts[j] > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("size %d landed outside bucket %d (counts %v)", v, wantIdx[i], s.counts)
		}
	}
	if s.n != int64(len(sizes)) {
		t.Fatalf("sample holds %d observations, want %d", s.n, len(sizes))
	}

	s.Flush()
	if s.n != 0 || s.sum != 0 {
		t.Fatalf("sample not cleared by Flush (n=%d sum=%d)", s.n, s.sum)
	}
	if got := ReadyOccupancyCount() - before; got != int64(len(sizes)) {
		t.Fatalf("process-wide count grew by %d, want %d", got, len(sizes))
	}
	// A second flush of the now-empty sample must be a no-op.
	s.Flush()
	if got := ReadyOccupancyCount() - before; got != int64(len(sizes)) {
		t.Fatalf("empty Flush changed the count (delta %d)", got)
	}

	reg := NewRegistry()
	ExportReadyOccupancy(reg)
	ExportReadyOccupancy(reg) // idempotent
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "treegion_sched_ready_occupancy_bucket") ||
		!strings.Contains(out, "treegion_sched_ready_occupancy_count") {
		t.Fatalf("exported registry missing occupancy series:\n%s", out)
	}
}
