package telemetry

import (
	"runtime"
	"sync/atomic"
)

// Per-phase allocation tracking is off by default: reading runtime.MemStats
// costs microseconds per sample, which would dominate small-region phases.
// When enabled (treegiond -phase-allocs, or SetAllocTracking in tests and
// benchmarks), every traced phase also records the number of heap
// allocations it performed, and the registry exports them per phase.
var allocTracking atomic.Bool

// SetAllocTracking switches per-phase allocation sampling on or off
// process-wide.
func SetAllocTracking(on bool) { allocTracking.Store(on) }

// AllocTracking reports whether per-phase allocation sampling is on.
func AllocTracking() bool { return allocTracking.Load() }

// AllocMark samples the process's cumulative heap-allocation count, or
// returns 0 when tracking is off. Pair a mark taken at phase start with
// ObserveAllocs at phase end.
func AllocMark() uint64 {
	if !allocTracking.Load() {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// ObserveAllocs records the allocations of phase p since mark (a value from
// AllocMark taken at the phase's start). A zero mark — tracking was off at
// the start — records nothing, so toggling tracking mid-phase never counts
// a bogus delta.
func (t *CompileTrace) ObserveAllocs(p Phase, mark uint64) {
	if t == nil || p >= NumPhases || mark == 0 {
		return
	}
	if now := AllocMark(); now > mark {
		t.phase[p].allocs.Add(int64(now - mark))
	}
}
