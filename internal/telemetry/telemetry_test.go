package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestTraceObserveAndSnapshot(t *testing.T) {
	tr := NewTrace("f")
	tr.Observe(PhaseTreeform, 5*time.Millisecond, 10)
	tr.Observe(PhaseListSched, 2*time.Millisecond, 7)
	tr.Observe(PhaseListSched, 3*time.Millisecond, 4)

	s := tr.Snapshot()
	if s.Function != "f" {
		t.Errorf("Function = %q, want f", s.Function)
	}
	if got := s.Phase[PhaseTreeform]; got.Calls != 1 || got.Ops != 10 || got.Nanos != int64(5*time.Millisecond) {
		t.Errorf("treeform = %+v", got)
	}
	if got := s.Phase[PhaseListSched]; got.Calls != 2 || got.Ops != 11 || got.Nanos != int64(5*time.Millisecond) {
		t.Errorf("list-sched = %+v", got)
	}
	tot := s.Total()
	if tot.Calls != 3 || tot.Ops != 21 || tot.Nanos != int64(10*time.Millisecond) {
		t.Errorf("total = %+v", tot)
	}
}

func TestTraceMergeOrderIndependent(t *testing.T) {
	mk := func() (*CompileTrace, *CompileTrace) {
		a, b := NewTrace("a"), NewTrace("b")
		a.Observe(PhaseDDG, time.Millisecond, 3)
		a.Observe(PhaseTreeform, time.Millisecond, 5)
		b.Observe(PhaseDDG, 2*time.Millisecond, 4)
		return a, b
	}
	a1, b1 := mk()
	ab := NewTrace("p")
	ab.Merge(a1)
	ab.Merge(b1)
	a2, b2 := mk()
	ba := NewTrace("p")
	ba.Merge(b2)
	ba.Merge(a2)
	if ab.Snapshot().Counts() != ba.Snapshot().Counts() {
		t.Error("merge order changed counts")
	}
	if got := ab.Snapshot().Phase[PhaseDDG]; got.Calls != 2 || got.Ops != 7 {
		t.Errorf("merged ddg = %+v", got)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *CompileTrace
	tr.Observe(PhaseTreeform, time.Second, 1) // must not panic
	tr.Merge(NewTrace("x"))
	if tr.PhaseNanos(PhaseTreeform) != 0 {
		t.Error("nil trace has nonzero nanos")
	}
	s := tr.Snapshot()
	if s.Total() != (PhaseSnapshot{}) {
		t.Errorf("nil snapshot total = %+v", s.Total())
	}
	if !strings.Contains(s.Table(), "total") {
		t.Error("nil snapshot table missing totals row")
	}
}

func TestTraceTable(t *testing.T) {
	tr := NewTrace("f")
	tr.Observe(PhaseTreeform, time.Millisecond, 24)
	tr.Observe(PhaseListSched, 500*time.Microsecond, 24)
	tbl := tr.Snapshot().Table()
	for _, want := range []string{"phase", "treeform", "list-sched", "total", "24"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if strings.Contains(tbl, "vlsim") {
		t.Errorf("table lists idle phase:\n%s", tbl)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Registration is idempotent: same name returns the same instrument.
	if r.Counter("test_total", "A counter.") != c {
		t.Error("re-registration returned a different counter")
	}
	r.GaugeFunc("test_gauge", "A gauge.", func() int64 { return 42 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 3",
		"# TYPE test_gauge gauge",
		"test_gauge 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("phase_total", Labels{"phase": "treeform"}, "Per-phase.").Add(5)
	r.LabeledCounter("phase_total", Labels{"phase": "list-sched"}, "Per-phase.").Add(7)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Count(out, "# TYPE phase_total counter") != 1 {
		t.Errorf("TYPE emitted more than once per family:\n%s", out)
	}
	for _, want := range []string{
		`phase_total{phase="treeform"} 5`,
		`phase_total{phase="list-sched"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", nil, "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.56; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil, "h.", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive per Prometheus convention
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("boundary value not in its le bucket:\n%s", b.String())
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "x")
	c.Inc() // nil counter must no-op
	if c.Value() != 0 {
		t.Error("nil counter counted")
	}
	h := r.Histogram("y", nil, "y", DefBuckets)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram observed")
	}
	r.GaugeFunc("z", "z", func() int64 { return 1 })
	r.CounterFunc("w", "w", func() int64 { return 1 })
	var b strings.Builder
	r.WritePrometheus(&b) // must not panic
	if b.Len() != 0 {
		t.Error("nil registry rendered output")
	}
}
