package telemetry

import "testing"

// allocSink defeats escape analysis so the tracking test really allocates.
var allocSink [][]byte

func TestAllocTrackingOffRecordsNothing(t *testing.T) {
	SetAllocTracking(false)
	tr := NewTrace("f")
	if m := AllocMark(); m != 0 {
		t.Fatalf("AllocMark with tracking off = %d, want 0", m)
	}
	tr.ObserveAllocs(PhaseDDG, 0)
	if a := tr.Snapshot().Phase[PhaseDDG].Allocs; a != 0 {
		t.Fatalf("allocs recorded while off: %d", a)
	}
}

func TestAllocTrackingRecordsDeltas(t *testing.T) {
	SetAllocTracking(true)
	defer SetAllocTracking(false)
	tr := NewTrace("f")
	mark := AllocMark()
	if mark == 0 {
		t.Fatal("AllocMark returned 0 with tracking on")
	}
	for i := 0; i < 8; i++ {
		allocSink = append(allocSink, make([]byte, 1<<16))
	}
	tr.ObserveAllocs(PhaseDDG, mark)
	snap := tr.Snapshot()
	if snap.Phase[PhaseDDG].Allocs == 0 {
		t.Fatal("no allocations recorded across an allocating span")
	}
	// Allocs survive merge and restore but stay out of the deterministic
	// Counts projection.
	sum := NewTrace("p")
	sum.Merge(tr)
	if got := sum.Snapshot().Phase[PhaseDDG].Allocs; got != snap.Phase[PhaseDDG].Allocs {
		t.Fatalf("merge lost allocs: %d != %d", got, snap.Phase[PhaseDDG].Allocs)
	}
	if got := snap.Restore().Snapshot().Phase[PhaseDDG].Allocs; got != snap.Phase[PhaseDDG].Allocs {
		t.Fatalf("restore lost allocs: %d != %d", got, snap.Phase[PhaseDDG].Allocs)
	}
	if c := snap.Counts()[PhaseDDG]; c[0] != 0 || c[1] != 0 {
		t.Fatalf("Counts picked up alloc-only activity: %v", c)
	}
}
