// Package telemetry is the compiler's observability layer. It has two
// halves:
//
//   - CompileTrace: a per-function compile trace recording wall time, call
//     counts and op counts for every phase of the compile path (treeform,
//     tail duplication, liveness, DDG build, priority sort, list
//     scheduling, timing measurement, register allocation, VLIW
//     simulation). Traces merge deterministically in their counts, so a
//     program-level trace is identical across worker counts.
//
//   - Registry: a process-wide metrics registry of counters, gauges and
//     histograms rendered in the Prometheus text exposition format, which
//     the daemon serves on /v1/metrics.
//
// The layer is allocation-conscious: a CompileTrace is a fixed-size array
// of atomic counters — no maps, no locks, no allocation on the hot path —
// and a nil trace is a valid "tracing off" sentinel (every method no-ops),
// so instrumented code never branches on a tracing flag.
package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the per-function compile path.
type Phase uint8

// Compile phases, in pipeline order.
const (
	// PhaseIfConvert is hyperblock-style if-conversion (when enabled).
	PhaseIfConvert Phase = iota
	// PhaseTreeform is region formation (any former), excluding the tail
	// duplication it triggers.
	PhaseTreeform
	// PhaseTailDup is tail duplication performed during tree-td formation.
	PhaseTailDup
	// PhaseLiveness is the post-formation liveness computation.
	PhaseLiveness
	// PhaseDDG is data-dependence-graph construction (including renaming).
	PhaseDDG
	// PhasePrioritySort is the static priority sort of a region's nodes.
	PhasePrioritySort
	// PhaseListSched is the cycle-driven list-scheduling loop.
	PhaseListSched
	// PhaseMeasure is the paper's path-height timing estimate per region.
	PhaseMeasure
	// PhaseVerify is the static schedule/IR verifier (when enabled).
	PhaseVerify
	// PhaseRegalloc is linear-scan register allocation (experiments).
	PhaseRegalloc
	// PhaseVLSim is cycle-accurate VLIW simulation (validation runs).
	PhaseVLSim

	// NumPhases bounds the Phase enum.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"ifconvert", "treeform", "tail-dup", "liveness", "ddg-build",
	"priority-sort", "list-sched", "measure", "verify", "regalloc", "vlsim",
}

// String names the phase as printed in trace tables and metric labels.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase%d", int(p))
}

// Phases lists every phase in pipeline order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// phaseStat accumulates one phase's activity. All fields are atomics so a
// trace attached to a cached (shared) FunctionResult stays safe to read and
// merge concurrently.
type phaseStat struct {
	nanos  atomic.Int64
	calls  atomic.Int64
	ops    atomic.Int64
	allocs atomic.Int64 // heap allocations, sampled only under SetAllocTracking
}

// CompileTrace records per-phase wall time and op counts for one function
// compile, or — merged — for a whole program. A nil trace is valid: every
// method no-ops, so instrumentation sites need no tracing flag.
type CompileTrace struct {
	// Function is the traced function (or program) name.
	Function string
	phase    [NumPhases]phaseStat
}

// NewTrace builds an empty trace for the named function or program.
func NewTrace(function string) *CompileTrace {
	return &CompileTrace{Function: function}
}

// Observe records one execution of phase p taking d and covering ops ops.
func (t *CompileTrace) Observe(p Phase, d time.Duration, ops int) {
	if t == nil || p >= NumPhases {
		return
	}
	st := &t.phase[p]
	st.nanos.Add(int64(d))
	st.calls.Add(1)
	st.ops.Add(int64(ops))
}

// PhaseNanos returns the accumulated wall time of phase p in nanoseconds.
func (t *CompileTrace) PhaseNanos(p Phase) int64 {
	if t == nil || p >= NumPhases {
		return 0
	}
	return t.phase[p].nanos.Load()
}

// Merge adds o's counts into t. Counts are integers, so merging is
// order-independent: a program trace assembled from per-function traces is
// identical regardless of worker count or completion order.
func (t *CompileTrace) Merge(o *CompileTrace) {
	if t == nil || o == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		src, dst := &o.phase[p], &t.phase[p]
		dst.nanos.Add(src.nanos.Load())
		dst.calls.Add(src.calls.Load())
		dst.ops.Add(src.ops.Load())
		dst.allocs.Add(src.allocs.Load())
	}
}

// PhaseSnapshot is a point-in-time copy of one phase's counters.
type PhaseSnapshot struct {
	// Nanos is accumulated wall time in nanoseconds.
	Nanos int64
	// Calls counts Observe invocations (e.g. regions scheduled).
	Calls int64
	// Ops counts the ops the phase covered across all calls.
	Ops int64
	// Allocs counts the phase's heap allocations; zero unless the compile
	// ran under SetAllocTracking. Excluded from Counts(): sampling is
	// optional, so allocs are not part of the deterministic columns.
	Allocs int64
}

// Duration returns the accumulated wall time.
func (s PhaseSnapshot) Duration() time.Duration { return time.Duration(s.Nanos) }

func (s PhaseSnapshot) add(o PhaseSnapshot) PhaseSnapshot {
	return PhaseSnapshot{Nanos: s.Nanos + o.Nanos, Calls: s.Calls + o.Calls, Ops: s.Ops + o.Ops, Allocs: s.Allocs + o.Allocs}
}

// TraceSnapshot is a point-in-time copy of a whole trace, safe to compare
// and serialize. The Calls and Ops columns are deterministic in the compile
// inputs; Nanos is wall time and varies run to run.
type TraceSnapshot struct {
	Function string
	Phase    [NumPhases]PhaseSnapshot
}

// Snapshot copies the trace's counters. A nil trace snapshots to zeros.
func (t *CompileTrace) Snapshot() TraceSnapshot {
	var s TraceSnapshot
	if t == nil {
		return s
	}
	s.Function = t.Function
	for p := Phase(0); p < NumPhases; p++ {
		st := &t.phase[p]
		s.Phase[p] = PhaseSnapshot{Nanos: st.nanos.Load(), Calls: st.calls.Load(), Ops: st.ops.Load(), Allocs: st.allocs.Load()}
	}
	return s
}

// Restore materializes a live trace carrying the snapshot's counts. The
// artifact store persists traces as snapshots; a result served from disk
// gets its original compile trace back, so trace tables and phase metrics
// of warm results match their cold compile.
func (s TraceSnapshot) Restore() *CompileTrace {
	t := NewTrace(s.Function)
	for p := Phase(0); p < NumPhases; p++ {
		st := &t.phase[p]
		st.nanos.Store(s.Phase[p].Nanos)
		st.calls.Store(s.Phase[p].Calls)
		st.ops.Store(s.Phase[p].Ops)
		st.allocs.Store(s.Phase[p].Allocs)
	}
	return t
}

// Total sums every phase.
func (s TraceSnapshot) Total() PhaseSnapshot {
	var tot PhaseSnapshot
	for p := Phase(0); p < NumPhases; p++ {
		tot = tot.add(s.Phase[p])
	}
	return tot
}

// Counts projects the snapshot onto its deterministic columns (calls and
// ops per phase), the part golden tests may compare across worker counts.
func (s TraceSnapshot) Counts() [NumPhases][2]int64 {
	var out [NumPhases][2]int64
	for p := Phase(0); p < NumPhases; p++ {
		out[p] = [2]int64{s.Phase[p].Calls, s.Phase[p].Ops}
	}
	return out
}

// Table renders the snapshot as an aligned per-phase table (idle phases
// omitted) with a totals row — the `treegionc -stats` output.
func (s TraceSnapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %12s\n", "phase", "calls", "ops", "time")
	for p := Phase(0); p < NumPhases; p++ {
		ps := s.Phase[p]
		if ps.Calls == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %10d %10d %12s\n", p, ps.Calls, ps.Ops, fmtDuration(ps.Duration()))
	}
	tot := s.Total()
	fmt.Fprintf(&b, "%-14s %10d %10d %12s\n", "total", tot.Calls, tot.Ops, fmtDuration(tot.Duration()))
	return b.String()
}

// fmtDuration rounds to a readable precision without losing small phases.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
