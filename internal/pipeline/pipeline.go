// Package pipeline is the concurrent compilation driver. Region-based
// compilation is embarrassingly parallel per function — each function is
// cloned, formed and scheduled independently — so the pipeline fans the
// functions of a program out over a bounded worker pool and reassembles the
// results in function order, making the aggregate byte-identical to the
// serial path (golden tests see no difference between 1 and N workers).
//
// Each worker compile is panic-isolated (a panicking compile yields an
// error for that function instead of killing the process), honours context
// cancellation, and consults an optional content-addressed result cache
// (internal/compcache) before doing any work.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"treegion/internal/compcache"
	"treegion/internal/eval"
	"treegion/internal/inline"
	"treegion/internal/ir"
	"treegion/internal/irtext"
	"treegion/internal/profile"
	"treegion/internal/progen"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
)

// Options configures a pipeline run.
type Options struct {
	// Workers bounds concurrent function compiles; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, memoizes compiles content-addressed by
	// (function IR, profile, config). Results served from the cache are
	// shared and must be treated as immutable.
	Cache *compcache.Cache
	// Metrics, when non-nil, receives pipeline counters.
	Metrics *Metrics
	// Telemetry, when non-nil, receives per-compile phase-latency
	// histograms, scheduling counters and region-shape histograms for every
	// cold compile.
	Telemetry *telemetry.Registry
	// Verify runs the static verifier over the compile result. A function
	// whose schedule produces Error-severity diagnostics fails with a
	// *verify.Failure carrying the full diagnostic list; advisory
	// diagnostics ride along on (a private copy of) the FunctionResult.
	// Verified and plain pipelines share one cache key — the verdict is
	// cached separately, keyed by the same artifact hash, so a warm
	// verified lookup re-checks nothing and a plain lookup can reuse an
	// artifact a verified caller compiled (and vice versa).
	Verify bool
	// Inline enables demand-driven inline-on-absorb: CompileProgram (and
	// CompileEach) resolve the batch's functions into an ir.Program, and
	// treegion formation splices eligible callee bodies into the caller.
	// Cache keys grow the transitive callee content, so editing a callee
	// invalidates its inlining callers.
	Inline inline.Config
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Metrics counts pipeline activity; safe for concurrent use. The daemon
// exports these on /metrics.
type Metrics struct {
	// Compiles counts cold compiles actually executed.
	Compiles atomic.Int64
	// CacheHits counts compiles served from the result cache (any tier:
	// memory, disk, or an in-flight duplicate).
	CacheHits atomic.Int64
	// StoreHits counts the subset of CacheHits served from the persistent
	// artifact store (the disk tier) rather than memory.
	StoreHits atomic.Int64
	// Panics counts compiles that panicked and were converted to errors.
	Panics atomic.Int64
	// Errors counts compiles that returned an error (including panics).
	Errors atomic.Int64
	// InFlight is the number of compiles currently executing.
	InFlight atomic.Int64
	// VerifyFailures counts compiles rejected by the static verifier.
	VerifyFailures atomic.Int64
	// VerifyRuns counts actual verifier executions (verdict-cache misses).
	VerifyRuns atomic.Int64
	// VerdictHits counts verified lookups answered from the verdict cache
	// without running the verifier.
	VerdictHits atomic.Int64
}

// compileFunc is the per-function compile entry point; tests swap it to
// inject panics and failures.
var compileFunc = eval.CompileFunctionArena

// compileMany drives fns through the batched work-stealing pool: each
// worker claims chunks of K indices from the shared queue (stealing half of
// the largest remaining range when its own runs dry) and compiles the whole
// chunk on one private arena, so the DDG/scheduler scratch is reused across
// every function the worker touches instead of round-tripping through the
// global sync.Pool per region. Results and errors land at their function's
// index; cached[i], when the slice is non-nil, records cache hits. onDone,
// when non-nil, is called (possibly concurrently) after each index settles.
func compileMany(ctx context.Context, fns []*ir.Function, profs []*profile.Data, c eval.Config, opts Options,
	frs []*eval.FunctionResult, errs []error, cached []bool, onDone func(int)) {
	n := len(fns)
	if n == 0 {
		return
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Serial fast path: compile on the caller's goroutine with one
		// arena and no steal-queue locking. A one-worker pool otherwise
		// pays the goroutine hop and per-chunk mutex for nothing, which
		// showed up as a single-worker pipeline running measurably slower
		// than a plain serial loop.
		arena := eval.NewArena()
		for i := range fns {
			if err := ctx.Err(); err != nil {
				errs[i] = err
			} else {
				var hit bool
				frs[i], hit, errs[i] = compileOne(fns[i], profs[i], c, opts, arena)
				if cached != nil {
					cached[i] = hit
				}
			}
			if onDone != nil {
				onDone(i)
			}
		}
		return
	}
	q := newStealQueue(n, workers)
	k := chunkSize(n, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := eval.NewArena()
			for {
				mu.Lock()
				chunk, ok := q.take(w, k)
				mu.Unlock()
				if !ok {
					return
				}
				for i := chunk.lo; i < chunk.hi; i++ {
					if err := ctx.Err(); err != nil {
						// Settle the claimed tail as cancelled so callers
						// report cancellation rather than a nil result.
						errs[i] = err
					} else {
						var hit bool
						frs[i], hit, errs[i] = compileOne(fns[i], profs[i], c, opts, arena)
						if cached != nil {
							cached[i] = hit
						}
					}
					if onDone != nil {
						onDone(i)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// CompileProgram compiles every function of prog under c across the
// batched work-stealing worker pool and aggregates the results exactly as
// eval.CompileProgram does. Function results are assembled in function
// order regardless of completion order, so the returned ProgramResult is
// deterministic in the inputs. On error it returns the failing function
// with the lowest index (also deterministic). The originals in prog and
// profs are never mutated.
func CompileProgram(ctx context.Context, prog *progen.Program, profs eval.Profiles, c eval.Config, opts Options) (*eval.ProgramResult, error) {
	if len(profs) != len(prog.Funcs) {
		return nil, fmt.Errorf("pipeline: %s: %d profiles for %d functions", prog.Name, len(profs), len(prog.Funcs))
	}
	if err := applyInline(&c, prog.Funcs, profs, opts); err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", prog.Name, err)
	}
	n := len(prog.Funcs)
	frs := make([]*eval.FunctionResult, n)
	errs := make([]error, n)
	compileMany(ctx, prog.Funcs, profs, c, opts, frs, errs, nil, nil)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: %s: function %s: %w", prog.Name, prog.Funcs[i].Name, err)
		}
	}
	return eval.Aggregate(prog.Name, c, frs), nil
}

// CompileEach compiles fns[i] against profs[i] on the work-stealing pool
// and calls emit exactly once per index, in index order, as results become
// available — the streaming core of the daemon's /v1/compile-batch. A
// per-function failure is delivered to emit as err (the run continues); an
// error returned BY emit (e.g. the client went away) cancels the remaining
// work and is returned after the workers drain. emit runs on the caller's
// goroutine.
func CompileEach(ctx context.Context, fns []*ir.Function, profs []*profile.Data, c eval.Config, opts Options,
	emit func(i int, fr *eval.FunctionResult, cached bool, err error) error) error {
	if len(profs) != len(fns) {
		return fmt.Errorf("pipeline: %d profiles for %d functions", len(profs), len(fns))
	}
	if err := applyInline(&c, fns, profs, opts); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	n := len(fns)
	if n == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	frs := make([]*eval.FunctionResult, n)
	errs := make([]error, n)
	cached := make([]bool, n)
	done := make([]bool, n)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	go func() {
		// Wake the emit loop when the context dies with results pending.
		<-ctx.Done()
		cond.Broadcast()
	}()
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		compileMany(ctx, fns, profs, c, opts, frs, errs, cached, func(i int) {
			mu.Lock()
			done[i] = true
			cond.Broadcast()
			mu.Unlock()
		})
	}()

	var emitErr error
	for i := 0; i < n && emitErr == nil; i++ {
		mu.Lock()
		for !done[i] && ctx.Err() == nil {
			cond.Wait()
		}
		ready := done[i]
		mu.Unlock()
		if !ready {
			emitErr = ctx.Err()
			break
		}
		emitErr = emit(i, frs[i], cached[i], errs[i])
	}
	if emitErr != nil {
		cancel() // stop compiling what nobody will read
	}
	<-finished
	return emitErr
}

// applyInline copies the pipeline's inline option onto the eval config,
// resolving the batch into a program the inliner (and the verifier's
// differential check) can splice callee bodies from. A batch that does not
// form a valid program — duplicate names, calls to functions outside the
// batch, arity mismatches — is rejected up front: silently compiling it
// without inlining would make the option's effect depend on input shape.
func applyInline(c *eval.Config, fns []*ir.Function, profs []*profile.Data, opts Options) error {
	if !opts.Inline.Enabled || c.InlineEnv != nil {
		return nil
	}
	p, err := ir.NewProgram(fns)
	if err != nil {
		return err
	}
	c.Inline = opts.Inline
	c.InlineEnv = &inline.Env{Prog: p, Profiles: profs}
	return nil
}

// CompileFunction compiles a single function through the cache and the
// panic isolation of the pipeline. Unlike eval.CompileFunction it does NOT
// mutate fn or prof — it compiles clones — so callers can keep feeding the
// same parsed function. It reports whether the result came from the cache.
func CompileFunction(ctx context.Context, fn *ir.Function, prof *profile.Data, c eval.Config, opts Options) (*eval.FunctionResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	return compileOne(fn, prof, c, opts, nil)
}

// keyBufPool recycles the buffer contentKey serializes into: the key-form
// IR and profile bytes exist only to be hashed, so the warm cache path
// should not allocate a fresh buffer per lookup.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

// contentKey computes the content-addressed cache key of one compilation
// input triple. It hashes the compact binary serializations
// (irtext.AppendFuncKey, profile.AppendKey), which carry exactly the
// information of irtext.Print and profile.Canonical: the keys partition
// compilations identically to hashing the text forms, without the
// formatting cost.
func contentKey(orig *ir.Function, prof *profile.Data, c eval.Config) compcache.Key {
	bp := keyBufPool.Get().(*[]byte)
	buf := irtext.AppendFuncKey((*bp)[:0], orig)
	// With inlining on, the compile reads the transitive callees' bodies and
	// profiles, so they are input content: hash them into the key (in the
	// deterministic first-reached order of the call-graph walk) so editing a
	// callee invalidates every caller that could splice it. Inline-off keys
	// are unchanged — residual calls never read the callee.
	if c.Inline.Enabled && c.InlineEnv != nil && c.InlineEnv.Prog != nil {
		if fi := c.InlineEnv.Prog.Index(orig.Name); fi >= 0 {
			for _, ci := range c.InlineEnv.Prog.Callees(fi) {
				buf = irtext.AppendFuncKey(buf, c.InlineEnv.Prog.Funcs[ci])
				if ci < len(c.InlineEnv.Profiles) && c.InlineEnv.Profiles[ci] != nil {
					buf = c.InlineEnv.Profiles[ci].AppendKey(buf)
				}
			}
		}
	}
	mark := len(buf)
	buf = prof.AppendKey(buf)
	k := compcache.KeyOfBytes(buf[:mark], buf[mark:], c.Fingerprint())
	*bp = buf[:0]
	keyBufPool.Put(bp)
	return k
}

// compileOne compiles one function on clones of (orig, prof), going through
// the tiered cache (memory, then disk, then compile) when one is
// configured. Concurrent identical requests coalesce onto one compile.
// arena, when non-nil, is the calling worker's private compile scratch.
//
// Verification rides on top: the artifact is compiled and cached once under
// the unified key, and the verifier's verdict is cached alongside it under
// the same key, so the verifier runs only when no verdict is known yet. A
// failing verdict is cached too — the artifact stays valid for plain
// callers while verified callers keep getting the recorded Failure without
// re-running the verifier.
func compileOne(orig *ir.Function, prof *profile.Data, c eval.Config, opts Options, arena *eval.Arena) (*eval.FunctionResult, bool, error) {
	var key compcache.Key
	if opts.Cache != nil {
		key = contentKey(orig, prof, c)
	}
	fr, src, err := opts.Cache.GetOrCompute(key, func() (*eval.FunctionResult, error) {
		fr, err := compileIsolated(orig.Clone(), prof.Clone(), c, opts.Metrics, arena)
		if err != nil {
			return nil, err
		}
		if opts.Telemetry != nil {
			observeResult(opts.Telemetry, fr)
		}
		return fr, nil
	})
	if err != nil {
		if opts.Metrics != nil {
			opts.Metrics.Errors.Add(1)
		}
		return nil, false, err
	}
	hit := src != compcache.SourceCompile
	if opts.Metrics != nil && hit {
		opts.Metrics.CacheHits.Add(1)
		if src == compcache.SourceL2 {
			opts.Metrics.StoreHits.Add(1)
		}
	}
	if !opts.Verify {
		return fr, hit, nil
	}
	v, ok := opts.Cache.Verdict(key)
	if ok {
		if opts.Metrics != nil {
			opts.Metrics.VerdictHits.Add(1)
		}
	} else {
		// No verdict yet (or no cache at all): run the verifier. Cached
		// results are shared and immutable, so the diagnostics go into the
		// verdict, never onto fr.
		t0 := time.Now()
		ds := eval.VerifyDiagnostics(orig, fr, c)
		elapsed := time.Since(t0)
		v = &verify.Verdict{Passed: !verify.HasErrors(ds), Diagnostics: ds}
		opts.Cache.PutVerdict(key, v)
		if opts.Metrics != nil {
			opts.Metrics.VerifyRuns.Add(1)
			if !v.Passed {
				opts.Metrics.VerifyFailures.Add(1)
			}
		}
		if opts.Telemetry != nil {
			observeVerify(opts.Telemetry, fr, ds, elapsed)
		}
	}
	if !v.Passed {
		if opts.Metrics != nil {
			opts.Metrics.Errors.Add(1)
		}
		return nil, false, &verify.Failure{Fn: orig.Name, Diagnostics: v.Diagnostics}
	}
	if len(v.Diagnostics) > 0 {
		// Advisory diagnostics ride on a private shallow copy: the cached
		// result stays pristine for plain callers.
		out := *fr
		out.Diagnostics = v.Diagnostics
		fr = &out
	}
	return fr, hit, nil
}

// observeVerify publishes one verifier run's telemetry: the verify phase
// latency (which no longer lives on the compile trace — cached artifacts
// share one trace regardless of who verifies them) and per-rule diagnostic
// counters, counted once per verifier execution rather than once per
// caller served from the verdict cache.
func observeVerify(reg *telemetry.Registry, fr *eval.FunctionResult, ds []verify.Diagnostic, elapsed time.Duration) {
	lbl := telemetry.Labels{"phase": telemetry.PhaseVerify.String()}
	reg.Histogram("treegion_compile_phase_seconds", lbl,
		"Wall time per compile phase per function.", telemetry.DefBuckets).Observe(elapsed.Seconds())
	reg.LabeledCounter("treegion_compile_phase_ops_total", lbl,
		"Ops processed per compile phase.").Add(int64(fr.OpsAfter))
	for _, d := range ds {
		reg.LabeledCounter("treegion_verify_diagnostics_total",
			telemetry.Labels{"rule": d.Rule, "severity": d.Severity.String()},
			"Static-verifier diagnostics by rule and severity.").Inc()
	}
}

// observeResult publishes one cold compile's telemetry: per-phase latency
// histograms and op counters, the scheduling counters behind the paper's
// why-treegions-win discussion, and region-shape histograms.
func observeResult(reg *telemetry.Registry, fr *eval.FunctionResult) {
	reg.Counter("treegion_compile_functions_total", "Functions cold-compiled through the pipeline.").Inc()
	reg.Counter("treegion_compile_ops_total",
		"Ops compiled (post-formation) across all cold compiles; divide by wall time for ops/sec.").Add(int64(fr.OpsAfter))
	snap := fr.Trace.Snapshot()
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		ps := snap.Phase[p]
		if ps.Calls == 0 {
			continue
		}
		lbl := telemetry.Labels{"phase": p.String()}
		reg.Histogram("treegion_compile_phase_seconds", lbl,
			"Wall time per compile phase per function.", telemetry.DefBuckets).Observe(ps.Duration().Seconds())
		reg.LabeledCounter("treegion_compile_phase_ops_total", lbl,
			"Ops processed per compile phase.").Add(ps.Ops)
		if ps.Allocs > 0 {
			reg.LabeledCounter("treegion_compile_phase_allocs_total", lbl,
				"Heap allocations per compile phase (sampled only under -phase-allocs).").Add(ps.Allocs)
		}
	}
	ss := fr.Sched
	reg.Counter("treegion_sched_speculated_ops_total",
		"Ops scheduled above an ancestor block's branch.").Add(int64(ss.Speculated))
	reg.Counter("treegion_sched_renamed_dests_total",
		"Destinations renamed at compile time to enable speculation.").Add(int64(fr.NumRenamed))
	reg.Counter("treegion_sched_copies_total",
		"Renaming copy ops inserted.").Add(int64(fr.NumCopies))
	reg.Counter("treegion_sched_merged_ops_total",
		"Duplicate ops merged by dominator parallelism.").Add(int64(fr.NumMerged))
	reg.Counter("treegion_sched_branches_total",
		"Terminator ops scheduled.").Add(int64(ss.Branches))
	reg.Counter("treegion_sched_branch_cycles_total",
		"Cycles issuing at least one branch.").Add(int64(ss.BranchCycles))
	reg.Counter("treegion_sched_predicated_branch_cycles_total",
		"Cycles issuing two or more branches (predicated multiway MultiOps).").Add(int64(ss.PredicatedCycles))
	for _, r := range fr.Regions {
		reg.Histogram("treegion_region_blocks", nil,
			"Basic blocks per formed region.", telemetry.SizeBuckets).Observe(float64(len(r.Blocks)))
		reg.Histogram("treegion_region_paths", nil,
			"Root-to-leaf paths per formed region.", telemetry.SizeBuckets).Observe(float64(r.PathCount()))
	}
	if fr.OpsBefore > 0 {
		reg.Histogram("treegion_code_expansion_ratio", nil,
			"Tail-duplication code expansion per function (ops after / ops before).",
			telemetry.RatioBuckets).Observe(float64(fr.OpsAfter) / float64(fr.OpsBefore))
	}
	// Inline counters appear only when the compile actually consulted the
	// inliner, so inline-off runs expose an unchanged metric set.
	il := fr.Inline
	if il.Inlined > 0 || il.Declined() > 0 {
		reg.Counter("treegion_inline_splices_total",
			"Calls inlined (spliced) during treegion formation.").Add(int64(il.Inlined))
		reg.Counter("treegion_inline_ops_total",
			"Ops added by inline splices (callee clones plus binding copies).").Add(int64(il.InlinedOps))
		for _, d := range []struct {
			reason string
			n      int
		}{
			{"depth", il.DeclinedDepth},
			{"size", il.DeclinedSize},
			{"budget", il.DeclinedBudget},
			{"guarded", il.DeclinedGuarded},
			{"shape", il.DeclinedShape},
		} {
			if d.n > 0 {
				reg.LabeledCounter("treegion_inline_declined_total",
					telemetry.Labels{"reason": d.reason},
					"Calls left as barriers, by the first inline budget they failed.").Add(int64(d.n))
			}
		}
	}
}

// Register exposes the pipeline counters on reg under prefix (for the
// daemon, "treegiond"), so the whole service reports through one registry.
func (m *Metrics) Register(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"_pipeline_compiles_total", "Cold function compiles executed.", m.Compiles.Load)
	reg.CounterFunc(prefix+"_pipeline_cache_hits_total", "Pipeline compiles served from cache.", m.CacheHits.Load)
	reg.CounterFunc(prefix+"_pipeline_store_hits_total", "Pipeline compiles served from the persistent artifact store.", m.StoreHits.Load)
	reg.CounterFunc(prefix+"_pipeline_panics_total", "Compiles that panicked (isolated to errors).", m.Panics.Load)
	reg.CounterFunc(prefix+"_pipeline_errors_total", "Compiles that returned errors.", m.Errors.Load)
	reg.GaugeFunc(prefix+"_pipeline_in_flight", "Compiles currently executing.", m.InFlight.Load)
	reg.CounterFunc(prefix+"_pipeline_verify_failures_total", "Compiles rejected by the static verifier.", m.VerifyFailures.Load)
	reg.CounterFunc(prefix+"_pipeline_verify_runs_total", "Verifier executions (verdict-cache misses).", m.VerifyRuns.Load)
	reg.CounterFunc(prefix+"_pipeline_verdict_hits_total", "Verified compiles answered from the verdict cache.", m.VerdictHits.Load)
	telemetry.ExportReadyOccupancy(reg)
}

// compileIsolated runs one compile with panic isolation: a panic inside
// region formation or scheduling becomes an error result for this function
// instead of killing the process.
func compileIsolated(fn *ir.Function, prof *profile.Data, c eval.Config, m *Metrics, arena *eval.Arena) (fr *eval.FunctionResult, err error) {
	if m != nil {
		m.InFlight.Add(1)
		defer m.InFlight.Add(-1)
		m.Compiles.Add(1)
	}
	defer func() {
		if r := recover(); r != nil {
			if m != nil {
				m.Panics.Add(1)
			}
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			fr, err = nil, fmt.Errorf("compile panicked: %v\n%s", r, buf)
		}
	}()
	return compileFunc(fn, prof, c, arena)
}
