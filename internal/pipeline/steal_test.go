package pipeline

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"treegion/internal/compcache"
	"treegion/internal/eval"
)

// Every index in [0, n) must be claimed exactly once, whatever the mix of
// own-range chunks and steals — the pipeline's correctness reduces to this.
func TestStealQueueCoversAllIndicesOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers, k int }{
		{0, 1, 1}, {1, 4, 3}, {7, 3, 2}, {64, 8, 4}, {100, 16, 16}, {5, 8, 1},
	} {
		q := newStealQueue(tc.n, tc.workers)
		var mu sync.Mutex
		seen := make([]int, tc.n)
		var wg sync.WaitGroup
		for w := 0; w < tc.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					mu.Lock()
					chunk, ok := q.take(w, tc.k)
					mu.Unlock()
					if !ok {
						return
					}
					if chunk.len() == 0 || chunk.len() > tc.k {
						t.Errorf("n=%d workers=%d: chunk %+v has bad size (k=%d)", tc.n, tc.workers, chunk, tc.k)
						return
					}
					for i := chunk.lo; i < chunk.hi; i++ {
						mu.Lock()
						seen[i]++
						mu.Unlock()
					}
				}
			}(w)
		}
		wg.Wait()
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d k=%d: index %d claimed %d times", tc.n, tc.workers, tc.k, i, c)
			}
		}
	}
}

// A worker whose range is exhausted must steal from the largest victim and
// leave the victim the lower half, keeping both ranges contiguous.
func TestStealTakesUpperHalfOfLargestVictim(t *testing.T) {
	q := newStealQueue(12, 3) // spans: [0,4) [4,8) [8,12)
	q.spans[0] = span{4, 4}   // worker 0 drained
	q.spans[1] = span{4, 6}   // 2 left
	q.spans[2] = span{6, 12}  // 6 left — the largest

	chunk, ok := q.take(0, 2)
	if !ok {
		t.Fatal("take found no work with 8 indices pending")
	}
	if q.spans[2].hi != 9 || q.spans[2].lo != 6 {
		t.Fatalf("victim span = %+v, want [6,9) (kept lower half)", q.spans[2])
	}
	if chunk != (span{9, 11}) {
		t.Fatalf("stolen chunk = %+v, want [9,11)", chunk)
	}
	if q.spans[0] != (span{11, 12}) {
		t.Fatalf("thief's remaining span = %+v, want [11,12)", q.spans[0])
	}
}

func TestChunkSizeBounds(t *testing.T) {
	for _, tc := range []struct{ n, workers, want int }{
		{1, 8, 1},    // tiny input: per-function dispatch
		{64, 8, 2},   // several chunks per worker
		{10000, 2, 16}, // capped so steals can still rebalance
	} {
		if got := chunkSize(tc.n, tc.workers); got != tc.want {
			t.Errorf("chunkSize(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}

// CompileEach must deliver every result exactly once, in index order, with
// the same content the batch compiler produces, at any worker count.
func TestCompileEachOrderedAndComplete(t *testing.T) {
	prog, profs := testProgram(t)
	cfg := eval.DefaultConfig()

	want, err := CompileProgram(context.Background(), prog, profs, cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 8} {
		var order []int
		var got []*eval.FunctionResult
		err := CompileEach(context.Background(), prog.Funcs, profs, cfg,
			Options{Workers: workers},
			func(i int, fr *eval.FunctionResult, cached bool, cerr error) error {
				if cerr != nil {
					t.Fatalf("workers=%d: function %d: %v", workers, i, cerr)
				}
				if cached {
					t.Fatalf("workers=%d: spurious cache hit without a cache", workers)
				}
				order = append(order, i)
				got = append(got, fr)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(order) != len(prog.Funcs) {
			t.Fatalf("workers=%d: %d results for %d functions", workers, len(order), len(prog.Funcs))
		}
		for i, idx := range order {
			if i != idx {
				t.Fatalf("workers=%d: results out of order: %v", workers, order)
			}
		}
		streamed := eval.Aggregate(prog.Name, cfg, got)
		if !reflect.DeepEqual(project(streamed), project(want)) {
			t.Errorf("workers=%d: streamed results differ from batch compile", workers)
		}
	}
}

// An emit error must stop the stream: no later emits, and the error comes
// back from CompileEach.
func TestCompileEachEmitErrorStops(t *testing.T) {
	prog, profs := testProgram(t)
	sentinel := errors.New("client gone")
	calls := 0
	err := CompileEach(context.Background(), prog.Funcs, profs,
		eval.DefaultConfig(), Options{Workers: 4},
		func(i int, fr *eval.FunctionResult, cached bool, cerr error) error {
			calls++
			return sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing on the first call", calls)
	}
}

// CompileEach must report cache hits: a second pass over the same inputs
// with a shared cache serves every function from it.
func TestCompileEachCacheHits(t *testing.T) {
	prog, profs := testProgram(t)
	cfg := eval.DefaultConfig()
	opts := Options{Workers: 2, Cache: compcache.New(32 << 20)}
	run := func() (hits int) {
		err := CompileEach(context.Background(), prog.Funcs, profs, cfg, opts,
			func(i int, fr *eval.FunctionResult, cached bool, cerr error) error {
				if cerr != nil {
					t.Fatal(cerr)
				}
				if cached {
					hits++
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return hits
	}
	if hits := run(); hits != 0 {
		t.Fatalf("first pass: %d cache hits, want 0", hits)
	}
	if hits := run(); hits != len(prog.Funcs) {
		t.Fatalf("second pass: %d cache hits, want %d", hits, len(prog.Funcs))
	}
}
