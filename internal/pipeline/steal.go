package pipeline

// The batched work-stealing queue behind CompileProgram and CompileEach.
//
// The function indices [0, n) are partitioned contiguously across workers.
// A worker claims chunks of K indices from the front of its own range —
// one queue operation per K functions, not per function — and compiles the
// whole chunk on its private arena. When its range runs dry it steals the
// upper half of the largest remaining range. Because work items are just
// indices into a results array, output order (and therefore trace merging
// and aggregation) is deterministic no matter how the ranges migrate.
//
// A single mutex guards the ranges: workers touch it once per chunk (or per
// steal), so even at high worker counts contention is a rounding error next
// to a function compile.

// span is a half-open range of pending function indices.
type span struct{ lo, hi int }

func (s span) len() int { return s.hi - s.lo }

// stealQueue holds one pending span per worker.
type stealQueue struct {
	spans []span
}

// newStealQueue partitions [0, n) contiguously across workers.
func newStealQueue(n, workers int) *stealQueue {
	q := &stealQueue{spans: make([]span, workers)}
	per, rem := n/workers, n%workers
	lo := 0
	for w := range q.spans {
		sz := per
		if w < rem {
			sz++
		}
		q.spans[w] = span{lo, lo + sz}
		lo += sz
	}
	return q
}

// take claims up to k indices from worker w's own range, stealing the upper
// half of the largest other range first when w's is empty. The second
// return is false when no work remains anywhere.
//
// take must be called under the pool's mutex.
func (q *stealQueue) take(w, k int) (span, bool) {
	s := &q.spans[w]
	if s.lo >= s.hi {
		victim, best := -1, 0
		for i := range q.spans {
			if i == w {
				continue
			}
			if n := q.spans[i].len(); n > best {
				best, victim = n, i
			}
		}
		if victim < 0 || best == 0 {
			return span{}, false
		}
		v := &q.spans[victim]
		// The thief takes the upper ceil-half so a single-item victim hands
		// over its item instead of an empty span.
		mid := v.lo + v.len()/2
		*s = span{mid, v.hi}
		v.hi = mid
	}
	chunk := span{s.lo, min(s.lo+k, s.hi)}
	s.lo = chunk.hi
	return chunk, true
}

// chunkSize picks the dispatch batch K: small enough that every worker gets
// several chunks (so stealing can rebalance a skewed tail), large enough
// that queue traffic and arena warm-up amortize across many functions.
func chunkSize(n, workers int) int {
	k := n / (workers * 4)
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return k
}
