package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"treegion/internal/compcache"
	"treegion/internal/eval"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/progen"
)

func testProgram(t testing.TB) (*progen.Program, eval.Profiles) {
	t.Helper()
	p, ok := progen.PresetByName("compress")
	if !ok {
		t.Fatal("no compress preset")
	}
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := eval.ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, profs
}

// projection is the observable content of a ProgramResult, copied into
// plain values so reflect.DeepEqual ignores pointer identity (the ddg
// graphs key maps by *ir.Op, which differs between independent compiles).
type projection struct {
	Name          string
	Time          float64
	CodeExpansion float64
	RegionCount   int
	FuncTimes     []float64
	FuncCopies    []float64
	OpsAfter      []int
	SchedLengths  [][]int
	Counters      [][4]int
}

func project(r *eval.ProgramResult) projection {
	p := projection{
		Name:          r.Name,
		Time:          r.Time,
		CodeExpansion: r.CodeExpansion,
		RegionCount:   r.RegionStats.Count,
	}
	for _, fr := range r.Funcs {
		p.FuncTimes = append(p.FuncTimes, fr.Time)
		p.FuncCopies = append(p.FuncCopies, fr.Copies)
		p.OpsAfter = append(p.OpsAfter, fr.OpsAfter)
		var lens []int
		for _, s := range fr.Schedules {
			lens = append(lens, s.Length)
		}
		p.SchedLengths = append(p.SchedLengths, lens)
		p.Counters = append(p.Counters, [4]int{fr.NumRenamed, fr.NumCopies, fr.NumMerged, fr.NumSpeculated})
	}
	return p
}

// TestDeterministicAcrossWorkerCounts is the determinism contract: the same
// benchmark compiled with 1 worker and N workers (with and without the
// cache) produces identical cycle counts, schedule lengths and speedups.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	prog, profs := testProgram(t)
	cfg := eval.DefaultConfig()

	serial, err := eval.CompileProgram(prog, profs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := project(serial)

	for _, workers := range []int{1, 2, 8} {
		for _, withCache := range []bool{false, true} {
			opts := Options{Workers: workers}
			if withCache {
				opts.Cache = compcache.New(64 << 20)
			}
			got, err := CompileProgram(context.Background(), prog, profs, cfg, opts)
			if err != nil {
				t.Fatalf("workers=%d cache=%v: %v", workers, withCache, err)
			}
			if !reflect.DeepEqual(project(got), want) {
				t.Errorf("workers=%d cache=%v: result differs from serial compile", workers, withCache)
			}
			base, err := CompileProgram(context.Background(), prog, profs, eval.BaselineConfig(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if sp := eval.Speedup(base.Time, got.Time); sp <= 0 {
				t.Errorf("workers=%d: speedup = %v", workers, sp)
			}
		}
	}
}

// TestOriginalsNotMutated: the pipeline must compile clones; callers keep
// the pristine program for other configurations.
func TestOriginalsNotMutated(t *testing.T) {
	prog, profs := testProgram(t)
	before := make([]int, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		before[i] = fn.NumOps()
	}
	cfg := eval.DefaultConfig()
	cfg.Kind = eval.TreegionTD // tail duplication mutates hardest
	if _, err := CompileProgram(context.Background(), prog, profs, cfg, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for i, fn := range prog.Funcs {
		if fn.NumOps() != before[i] {
			t.Errorf("function %s mutated: %d ops, was %d", fn.Name, fn.NumOps(), before[i])
		}
	}
}

// TestPanicIsolation: a panicking function compile must surface as an error
// for that function, not kill the process — and the error must be the
// first failing function by index regardless of completion order.
func TestPanicIsolation(t *testing.T) {
	prog, profs := testProgram(t)
	orig := compileFunc
	defer func() { compileFunc = orig }()
	victim := prog.Funcs[1].Name
	compileFunc = func(fn *ir.Function, prof *profile.Data, c eval.Config, ar *eval.Arena) (*eval.FunctionResult, error) {
		if fn.Name == victim {
			panic("injected scheduler bug")
		}
		return orig(fn, prof, c, ar)
	}
	var m Metrics
	_, err := CompileProgram(context.Background(), prog, profs, eval.DefaultConfig(), Options{Workers: 4, Metrics: &m})
	if err == nil {
		t.Fatal("panicking compile returned nil error")
	}
	if !strings.Contains(err.Error(), victim) || !strings.Contains(err.Error(), "injected scheduler bug") {
		t.Errorf("error %q does not name the panicking function", err)
	}
	if m.Panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", m.Panics.Load())
	}
	if m.Errors.Load() != 1 {
		t.Errorf("errors counter = %d, want 1", m.Errors.Load())
	}
}

// TestFirstErrorByIndex: with several failing functions, the reported error
// is deterministic — the lowest function index wins.
func TestFirstErrorByIndex(t *testing.T) {
	prog, profs := testProgram(t)
	orig := compileFunc
	defer func() { compileFunc = orig }()
	compileFunc = func(fn *ir.Function, prof *profile.Data, c eval.Config, ar *eval.Arena) (*eval.FunctionResult, error) {
		return nil, fmt.Errorf("boom %s", fn.Name)
	}
	for trial := 0; trial < 4; trial++ {
		_, err := CompileProgram(context.Background(), prog, profs, eval.DefaultConfig(), Options{Workers: 8})
		if err == nil || !strings.Contains(err.Error(), prog.Funcs[0].Name) {
			t.Fatalf("trial %d: error %v, want first function %s", trial, err, prog.Funcs[0].Name)
		}
	}
}

// TestContextCancellation: a cancelled context aborts the run with
// context.Canceled instead of compiling everything.
func TestContextCancellation(t *testing.T) {
	prog, profs := testProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileProgram(ctx, prog, profs, eval.DefaultConfig(), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCacheRoundTrip: a second program compile over a shared cache is all
// hits and returns identical observable results.
func TestCacheRoundTrip(t *testing.T) {
	prog, profs := testProgram(t)
	cfg := eval.DefaultConfig()
	cache := compcache.New(64 << 20)
	var m Metrics
	opts := Options{Workers: 4, Cache: cache, Metrics: &m}

	cold, err := CompileProgram(context.Background(), prog, profs, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CacheHits.Load(); got != 0 {
		t.Errorf("cold run cache hits = %d", got)
	}
	warm, err := CompileProgram(context.Background(), prog, profs, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CacheHits.Load(); got != int64(len(prog.Funcs)) {
		t.Errorf("warm run cache hits = %d, want %d", got, len(prog.Funcs))
	}
	if !reflect.DeepEqual(project(cold), project(warm)) {
		t.Error("warm result differs from cold result")
	}
	if st := cache.Stats(); st.HitRate() <= 0 {
		t.Errorf("hit rate = %v, want > 0", st.HitRate())
	}
}

// TestProfileMismatch: profile/function count skew is an input error, not a
// crash.
func TestProfileMismatch(t *testing.T) {
	prog, profs := testProgram(t)
	if _, err := CompileProgram(context.Background(), prog, profs[:1], eval.DefaultConfig(), Options{}); err == nil {
		t.Fatal("mismatched profiles accepted")
	}
}
