// Package api defines the wire schema every treegion HTTP surface shares.
// The daemon (treegiond) and the shard router (treegion-router) both answer
// failed requests with the structured body defined here, so a client parses
// one error shape no matter which tier produced it — and the two binaries
// cannot drift apart, because they marshal the same struct.
package api

import (
	"encoding/json"
	"net/http"
)

// Error is the body of every non-2xx reply:
//
//	{"error": {"code": "...", "message": "...", ...}}
//
// Code is a stable machine-readable identifier (bad_json, bad_ir,
// verify_failed, queue_full, no_replica, ...); Message is human-readable
// detail. verify_failed errors also carry the distinct violated rule IDs
// and the rendered diagnostics.
type Error struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the payload inside the "error" envelope.
type ErrorDetail struct {
	Code        string   `json:"code"`
	Message     string   `json:"message"`
	Rules       []string `json:"rules,omitempty"`
	Diagnostics []string `json:"diagnostics,omitempty"`
}

// WriteError writes the structured error body with the given HTTP status.
func WriteError(w http.ResponseWriter, status int, d ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(Error{Error: d})
}

// StoreStats is the GET /v1/store/stats response: the persistent artifact
// store's counters plus the payload schema this daemon reads and writes.
// Lookups hitting an entry with any other schema version (including the
// retired tgart1 container) count under schema_skew and read as misses.
type StoreStats struct {
	// Enabled is false when the daemon runs without -store-dir; all other
	// fields are zero then.
	Enabled bool `json:"enabled"`
	// SchemaVersion is the tgart2 payload schema this binary speaks.
	SchemaVersion int `json:"schema_version"`

	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Puts       int64 `json:"puts"`
	Evictions  int64 `json:"evictions"`
	Corrupt    int64 `json:"corrupt"`
	SchemaSkew int64 `json:"schema_skew"`

	WriteErrors  int64 `json:"write_errors"`
	EncodeErrors int64 `json:"encode_errors"`

	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget_bytes"`

	VerdictHits   int64 `json:"verdict_hits"`
	VerdictMisses int64 `json:"verdict_misses"`
	VerdictPuts   int64 `json:"verdict_puts"`
}
