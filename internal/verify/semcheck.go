package verify

import (
	"fmt"

	"treegion/internal/interp"
	"treegion/internal/ir"
)

// Semantic rules: differential interpretation. The same deterministic
// branch oracle drives one trip through the original function and one
// through the compiled function (the oracle keys decisions off Orig IDs, so
// tail-duplicated branches replay the original decision stream), and the
// observable behaviour must agree.
//
//	SEM001  the store traces diverge (order, address or value)
//	SEM002  the visited original-block sequences diverge
//
// The check is skipped for if-converted code: there control follows
// computed predicates, not the oracle, so the trips are not comparable.

// defaultSeeds drives the differential runs when the caller supplies none.
var defaultSeeds = []uint64{1, 7, 42, 1998}

// CheckSemantics interprets orig and compiled under identical oracles and
// compares their observable traces. Calls stay opaque no-ops; use
// CheckSemanticsProgram to execute them against a resolved program.
func CheckSemantics(orig, compiled *ir.Function, seeds []uint64, maxSteps int) []Diagnostic {
	return CheckSemanticsProgram(nil, orig, compiled, seeds, maxSteps)
}

// CheckSemanticsProgram is CheckSemantics with a program context: resolved
// calls execute the callee bodies (interp.RunIn) on both sides, so the
// comparison certifies inlined compilations — the callee's blocks appear in
// both traces under the callee's Orig namespace, whether executed in a call
// frame (original) or spliced inline (compiled). A nil prog reproduces
// CheckSemantics exactly.
func CheckSemanticsProgram(prog *ir.Program, orig, compiled *ir.Function, seeds []uint64, maxSteps int) []Diagnostic {
	if len(seeds) == 0 {
		seeds = defaultSeeds
	}
	var ds []Diagnostic
	add := func(rule, format string, args ...interface{}) {
		ds = append(ds, Diagnostic{
			Rule: rule, Severity: Error, Fn: compiled.Name, Block: ir.NoBlock, Op: -1,
			Message: fmt.Sprintf(format, args...),
		})
	}
	cfg := interp.Config{MaxSteps: maxSteps}
	for _, seed := range seeds {
		want, err := interp.RunIn(prog, orig, interp.NewOracle(seed), cfg)
		if err != nil {
			// The original function does not execute cleanly under this
			// seed; nothing to compare against.
			continue
		}
		got, err := interp.RunIn(prog, compiled, interp.NewOracle(seed), cfg)
		if err != nil {
			add("SEM002", "seed %d: compiled function fails to execute: %v", seed, err)
			continue
		}
		if d, ok := diffStores(want.Stores, got.Stores); ok {
			add("SEM001", "seed %d: %s", seed, d)
		}
		if d, ok := diffBlocks(want.Blocks, got.Blocks); ok {
			add("SEM002", "seed %d: %s", seed, d)
		}
	}
	return ds
}

func diffStores(want, got []interp.StoreEvent) (string, bool) {
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("store %d diverges: original writes %d to [%d], compiled writes %d to [%d]",
				i, want[i].Value, want[i].Addr, got[i].Value, got[i].Addr), true
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("store count diverges: original %d, compiled %d", len(want), len(got)), true
	}
	return "", false
}

func diffBlocks(want, got []ir.BlockID) (string, bool) {
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("visit %d diverges: original executes bb%d, compiled executes bb%d (Orig IDs)",
				i, want[i], got[i]), true
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("visited block count diverges: original %d, compiled %d", len(want), len(got)), true
	}
	return "", false
}
