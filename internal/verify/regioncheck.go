package verify

import (
	"fmt"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/inline"
	"treegion/internal/ir"
	"treegion/internal/region"
)

// Region-invariant rules. The checks re-derive every invariant from the CFG
// and the region's block lists; none of them consult the formers' own
// bookkeeping.
//
//	RG001  broken region tree: preorder, parentage or CFG edges inconsistent
//	RG002  the regions do not partition the function's blocks
//	RG003  a non-root member has a predecessor other than its tree parent
//	       (single-entry-tree / no-merge-point invariant, paper Section 2)
//	RG004  a region violates its kind's shape (linear regions with tree
//	       branching, multi-block "basic block" regions)
//	RG005  tail duplication exceeded its configured limits (paper Section 4:
//	       code-expansion limit, path-count limit)

// CheckRegions runs the region rules over a function's region partition. td
// bounds KindTreegionTD regions; a zero ExpansionLimit skips RG005 (the
// caller does not know the formation configuration).
func CheckRegions(fn *ir.Function, regions []*region.Region, td core.TDConfig) []Diagnostic {
	return CheckRegionsInline(fn, regions, td, nil)
}

// CheckRegionsInline is CheckRegions aware of demand-driven inlining: the
// splice records identify the continuation blocks, which carry their host's
// Orig for trace purposes but are not tail duplicates and must not count
// against the RG005 expansion budget. A nil stats value reproduces
// CheckRegions exactly.
func CheckRegionsInline(fn *ir.Function, regions []*region.Region, td core.TDConfig, in *inline.Stats) []Diagnostic {
	c := &regionChecker{fn: fn, g: cfg.New(fn)}
	if in != nil {
		c.conts = make(map[ir.BlockID]bool, len(in.Splices))
		for _, sp := range in.Splices {
			c.conts[sp.Cont] = true
		}
	}
	owner := make(map[ir.BlockID]int)
	for i, r := range regions {
		c.tree(i, r)
		c.kind(i, r)
		if r.Kind == region.KindTreegionTD {
			c.tdBounds(i, r, td)
		}
		for _, b := range r.Blocks {
			if prev, dup := owner[b]; dup {
				c.add("RG002", Error, b, "bb%d belongs to regions %d and %d", b, prev, i)
			} else {
				owner[b] = i
			}
		}
	}
	for _, b := range fn.Blocks {
		if _, ok := owner[b.ID]; !ok {
			c.add("RG002", Error, b.ID, "bb%d belongs to no region", b.ID)
		}
	}
	return c.ds
}

type regionChecker struct {
	fn *ir.Function
	g  *cfg.Graph
	// conts marks inline continuation blocks (non-nil only when splice
	// records were supplied); see tdBounds.
	conts map[ir.BlockID]bool
	ds    []Diagnostic
}

func (c *regionChecker) add(rule string, sev Severity, b ir.BlockID, format string, args ...interface{}) {
	c.ds = append(c.ds, Diagnostic{
		Rule: rule, Severity: sev, Fn: c.fn.Name, Block: b, Op: -1,
		Message: fmt.Sprintf(format, args...),
	})
}

// tree re-derives RG001 (the block list is a preorder of a tree rooted at
// Root whose edges exist in the CFG) and RG003 (every non-root member's only
// CFG predecessor is its tree parent).
func (c *regionChecker) tree(i int, r *region.Region) {
	if len(r.Blocks) == 0 {
		c.add("RG001", Error, ir.NoBlock, "region %d has no blocks", i)
		return
	}
	if r.Blocks[0] != r.Root {
		c.add("RG001", Error, r.Root, "region %d root bb%d is not Blocks[0] (bb%d)", i, r.Root, r.Blocks[0])
	}
	seen := make(map[ir.BlockID]bool)
	for j, b := range r.Blocks {
		if b < 0 || int(b) >= len(c.fn.Blocks) {
			c.add("RG001", Error, b, "region %d contains missing bb%d", i, b)
			continue
		}
		if seen[b] {
			c.add("RG001", Error, b, "region %d lists bb%d twice", i, b)
			continue
		}
		seen[b] = true
		if j == 0 {
			continue
		}
		p := r.Parent(b)
		if p == ir.NoBlock || !seen[p] {
			c.add("RG001", Error, b, "region %d member bb%d has parent bb%d outside the preceding preorder", i, b, p)
			continue
		}
		edge := false
		for _, s := range c.fn.Block(p).Succs() {
			if s == b {
				edge = true
				break
			}
		}
		if !edge {
			c.add("RG001", Error, b, "region %d tree edge bb%d->bb%d is not a CFG edge", i, p, b)
		}
		// Single-entry tree: one predecessor, the tree parent. The root is
		// the region's only permitted merge point.
		preds := c.g.Preds[b]
		if len(preds) != 1 || preds[0] != p {
			c.add("RG003", Error, b,
				"region %d member bb%d has %d CFG predecessors (want exactly its tree parent bb%d): merge point inside a region",
				i, b, len(preds), p)
		}
	}
}

// kind checks RG004: the shape each region kind promises.
func (c *regionChecker) kind(i int, r *region.Region) {
	switch r.Kind {
	case region.KindBasicBlock:
		if len(r.Blocks) != 1 {
			c.add("RG004", Error, r.Root, "region %d is a basic-block region with %d blocks", i, len(r.Blocks))
		}
	case region.KindSLR, region.KindSuperblock:
		for _, b := range r.Blocks {
			if ch := r.Children(b); len(ch) > 1 {
				c.add("RG004", Error, b, "region %d (%s) is not linear: bb%d has %d in-region children", i, r.Kind, b, len(ch))
			}
		}
	}
}

// tdBounds checks RG005 over a tail-duplicated treegion. Sizes mirror the
// former's growth measure (ops plus one per block) with renaming copies
// excluded — they are inserted after formation and must not count against
// the formation-time budget. The sound post-hoc invariant is
//
//	size(duplicated blocks) <= (limit-1) * size(original blocks)
//
// because every admission is checked against limit * (size at initial
// absorption), and initial absorption plus directly absorbed saplings are
// exactly the blocks that kept their original identity (Orig == ID).
func (c *regionChecker) tdBounds(i int, r *region.Region, td core.TDConfig) {
	if td.ExpansionLimit == 0 {
		return
	}
	// Mirror the former's defaulting so callers can pass a raw config.
	if td.PathLimit <= 0 {
		td.PathLimit = 20
	}
	if td.ExpansionLimit < 1 {
		td.ExpansionLimit = 1
	}
	orig, dup := 0, 0
	for _, bid := range r.Blocks {
		if bid < 0 || int(bid) >= len(c.fn.Blocks) {
			return // RG001 already reported; sizes would be meaningless
		}
		blk := c.fn.Block(bid)
		w := 1
		for _, op := range blk.Ops {
			if op.Opcode != ir.Copy {
				w++
			}
		}
		// Original-identity weight: blocks that kept their ID, inline
		// continuations (they carry their host's Orig for the trace, but are
		// split-off original code, not duplicates), and spliced callee
		// bodies (Orig in a callee namespace). A tail duplicate OF a spliced
		// block also lands in the namespaced arm — that only loosens the
		// bound (undercounts dup), so it cannot produce a false positive.
		switch {
		case blk.Orig == bid, c.conts[bid], int(blk.Orig) >= ir.OrigStride:
			orig += w
		default:
			dup += w
		}
	}
	if float64(dup) > (td.ExpansionLimit-1)*float64(orig)+1e-6 {
		c.add("RG005", Error, r.Root,
			"region %d duplicated %d ops+blocks onto an original size of %d, beyond expansion limit %.2g",
			i, dup, orig, td.ExpansionLimit)
	}
	// The former tests the path limit before each admission, so the final
	// admission may legally overshoot by the leaves of the one subtree it
	// absorbed. Post hoc, an overshoot is legal iff undoing some single
	// admitted subtree brings the count back within the limit; report only
	// counts no single admission can explain.
	if pc := r.PathCount(); pc > td.PathLimit && !c.overshootExplained(r, pc, td.PathLimit) {
		c.add("RG005", Error, r.Root,
			"region %d has %d root-to-leaf paths (limit %d, not attributable to one admission)",
			i, pc, td.PathLimit)
	}
}

// overshootExplained reports whether removing some non-root member's
// subtree — the candidate final admission — reconstructs a pre-admission
// path count within the limit. Removing subtree c turns its parent into a
// leaf when c was the parent's only in-region child.
func (c *regionChecker) overshootExplained(r *region.Region, pc, limit int) bool {
	for _, b := range r.Blocks[1:] {
		leaves := 0
		for _, s := range r.Subtree(b) {
			if r.IsLeaf(s) {
				leaves++
			}
		}
		before := pc - leaves
		if len(r.Children(r.Parent(b))) == 1 {
			before++
		}
		if before <= limit {
			return true
		}
	}
	return false
}
