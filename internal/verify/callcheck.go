package verify

import (
	"fmt"

	"treegion/internal/inline"
	"treegion/internal/ir"
)

// Call rules: interprocedural invariants over compiled functions. CL001
// re-derives the call convention of every residual (non-inlined) call from
// the program's callee signatures; CL002 and CL003 re-check the inliner's
// splice records against the code it claims to have produced, so a splice
// that mangled the CFG or exceeded its own budgets is caught even though the
// spliced body is otherwise ordinary code.
//
//	CL001  a residual call's operands do not match the callee's signature
//	       (unknown callee, arity mismatch, or wrong register class)
//	CL002  a recorded splice is inconsistent with the function: missing
//	       host→entry edge, continuation not carrying the host's Orig, or a
//	       spliced block outside the callee's Orig namespace
//	CL003  a recorded splice exceeds the configured inline depth cap

// CheckCalls applies the CL rules. CL001 needs opts.Prog; CL002/CL003 need
// opts.Inline (CL002 also uses opts.Prog for the callee namespaces).
func CheckCalls(fn *ir.Function, opts Options) []Diagnostic {
	var ds []Diagnostic
	add := func(rule string, blk ir.BlockID, op int, format string, args ...interface{}) {
		ds = append(ds, Diagnostic{
			Rule: rule, Severity: Error, Fn: fn.Name, Block: blk, Op: op,
			Message: fmt.Sprintf(format, args...),
		})
	}
	if opts.Prog != nil {
		for _, b := range fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode != ir.Call || op.Callee == "" {
					continue
				}
				callee := opts.Prog.Lookup(op.Callee)
				if callee == nil {
					add("CL001", b.ID, op.ID, "call @%s: callee not in program", op.Callee)
					continue
				}
				if len(op.Srcs) != len(callee.Params) || len(op.Dests) != len(callee.Rets) {
					add("CL001", b.ID, op.ID,
						"call @%s passes %d args/%d results, signature wants %d/%d",
						op.Callee, len(op.Srcs), len(op.Dests), len(callee.Params), len(callee.Rets))
					continue
				}
				for i, r := range op.Srcs {
					if r.Class != callee.Params[i].Class {
						add("CL001", b.ID, op.ID,
							"call @%s arg %d is a %v register, parameter wants %v",
							op.Callee, i, r.Class, callee.Params[i].Class)
					}
				}
				for i, r := range op.Dests {
					if r.Class != callee.Rets[i].Class {
						add("CL001", b.ID, op.ID,
							"call @%s result %d is a %v register, return wants %v",
							op.Callee, i, r.Class, callee.Rets[i].Class)
					}
				}
			}
		}
	}
	if opts.Inline == nil {
		return ds
	}
	maxDepth := opts.Inline.Config.MaxDepth
	if maxDepth <= 0 {
		maxDepth = inline.DefaultConfig().MaxDepth
	}
	inRange := func(id ir.BlockID) bool { return id >= 0 && int(id) < len(fn.Blocks) }
	for si, sp := range opts.Inline.Splices {
		if sp.Depth > maxDepth {
			add("CL003", ir.NoBlock, -1,
				"splice %d of @%s at depth %d exceeds the depth cap %d", si, sp.Callee, sp.Depth, maxDepth)
		}
		if !inRange(sp.Host) || !inRange(sp.Entry) || !inRange(sp.Cont) {
			add("CL002", ir.NoBlock, -1,
				"splice %d of @%s references blocks outside the function (host bb%d, entry bb%d, cont bb%d)",
				si, sp.Callee, sp.Host, sp.Entry, sp.Cont)
			continue
		}
		host := fn.Block(sp.Host)
		hasEdge := false
		for _, s := range host.Succs() {
			if s == sp.Entry {
				hasEdge = true
			}
		}
		if !hasEdge {
			add("CL002", sp.Host, -1,
				"splice %d of @%s: no CFG edge from host bb%d to spliced entry bb%d",
				si, sp.Callee, sp.Host, sp.Entry)
		}
		if cont := fn.Block(sp.Cont); cont.Orig != host.Orig {
			add("CL002", sp.Cont, -1,
				"splice %d of @%s: continuation bb%d has Orig %d, host bb%d resumes as %d",
				si, sp.Callee, sp.Cont, cont.Orig, sp.Host, host.Orig)
		}
		if opts.Prog != nil {
			ci := opts.Prog.Index(sp.Callee)
			if ci < 0 {
				add("CL002", ir.NoBlock, -1, "splice %d: callee @%s not in program", si, sp.Callee)
				continue
			}
			base := ir.BlockID(opts.Prog.OrigBase(ci))
			for _, id := range sp.Blocks {
				if !inRange(id) {
					add("CL002", ir.NoBlock, -1,
						"splice %d of @%s: spliced block bb%d outside the function", si, sp.Callee, id)
					continue
				}
				if o := fn.Block(id).Orig; o < base || o >= base+ir.BlockID(ir.OrigStride) {
					add("CL002", id, -1,
						"splice %d of @%s: spliced block bb%d has Orig %d outside the callee namespace [%d,%d)",
						si, sp.Callee, id, o, base, base+ir.BlockID(ir.OrigStride))
				}
			}
		}
	}
	return ds
}
