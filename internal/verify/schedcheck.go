package verify

import (
	"fmt"

	"treegion/internal/cfg"
	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// Schedule-legality rules. The verifier proves legality twice over: every
// DDG edge the scheduler consumed is checked against the cycle assignment
// (a scheduler bug cannot hide), and the register, memory and control
// constraints are re-derived from the IR and the region tree without
// consulting the graph's edges at all (a graph-builder bug cannot hide
// either).
//
//	SC001  a node is unscheduled, or schedules/regions are mismatched
//	SC002  a register dependence (flow, anti, output) is violated
//	SC003  a cycle issues more ops than the machine's width
//	SC004  serialized memory ordering is violated (a load bypassed a store)
//	SC005  a speculated op clobbers a value observable on an off-path
//	       successor (the paper's renaming obligation, Section 3)
//	SC006  terminators are out of priority order or precede their resolver
//	SC007  a non-speculatable op escapes its control window
//	SC008  a value producer issues after a region exit that needs the value

// CheckSchedule verifies one region's schedule. lv must be liveness over
// the function's current (post-compilation) shape.
func CheckSchedule(fn *ir.Function, r *region.Region, s *sched.Schedule, lv *cfg.Liveness) []Diagnostic {
	c := &schedChecker{fn: fn, r: r, s: s, lv: lv, seen: make(map[string]bool)}
	if s == nil || s.Graph == nil {
		c.addAt("SC001", Error, ir.NoBlock, -1, "region at bb%d has no schedule", r.Root)
		return c.ds
	}
	c.g = s.Graph
	if c.g.Region != r {
		c.addAt("SC001", Error, ir.NoBlock, -1, "schedule belongs to a different region (root bb%d, want bb%d)",
			c.g.Region.Root, r.Root)
		return c.ds
	}
	if len(s.Cycle) != len(c.g.Nodes) {
		c.addAt("SC001", Error, ir.NoBlock, -1, "%d cycle assignments for %d nodes", len(s.Cycle), len(c.g.Nodes))
		return c.ds
	}
	c.byBlock = make(map[ir.BlockID][]*ddg.Node)
	for _, n := range c.g.Nodes {
		if s.Cycle[n.Index] < 0 {
			c.addNode("SC001", Error, n, "%v is unscheduled", n.Op)
		}
		c.byBlock[n.Home] = append(c.byBlock[n.Home], n)
	}
	c.width()
	c.edgeConformance()
	c.pathDependences()
	c.controlWindows()
	c.liveExits()
	c.offPathClobbers()
	return c.ds
}

type schedChecker struct {
	fn *ir.Function
	r  *region.Region
	s  *sched.Schedule
	g  *ddg.Graph
	lv *cfg.Liveness
	// byBlock groups nodes by Home in Index order, which is the effective
	// op order the DDG builder derived (body, merged representatives, then
	// terminators).
	byBlock map[ir.BlockID][]*ddg.Node
	seen    map[string]bool
	ds      []Diagnostic
}

func (c *schedChecker) cyc(n *ddg.Node) int { return c.s.Cycle[n.Index] }

// ok reports that a node is scheduled; unscheduled nodes already carry an
// SC001 and are excluded from every other rule.
func (c *schedChecker) ok(n *ddg.Node) bool { return c.cyc(n) >= 0 }

func (c *schedChecker) addAt(rule string, sev Severity, b ir.BlockID, op int, format string, args ...interface{}) {
	c.ds = append(c.ds, Diagnostic{
		Rule: rule, Severity: sev, Fn: c.fn.Name, Block: b, Op: op,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *schedChecker) addNode(rule string, sev Severity, n *ddg.Node, format string, args ...interface{}) {
	c.addAt(rule, sev, n.Home, n.Op.ID, format, args...)
}

// addOnce suppresses duplicates: path walks revisit shared tree prefixes, so
// the same violated pair shows up once per leaf otherwise.
func (c *schedChecker) addOnce(rule string, from, to *ddg.Node, format string, args ...interface{}) {
	key := fmt.Sprintf("%s/%d/%d", rule, from.Op.ID, to.Op.ID)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.addNode(rule, Error, to, format, args...)
}

// width checks SC003: per-cycle issue counts against the model. Renaming
// copies are slot-free by the paper's accounting and do not count.
func (c *schedChecker) width() {
	perCycle := make(map[int]int)
	for _, n := range c.g.Nodes {
		if c.ok(n) && !n.IsCopy() {
			perCycle[c.cyc(n)]++
		}
	}
	for cycle, k := range perCycle {
		if k > c.s.Model.IssueWidth {
			c.addAt("SC003", Error, ir.NoBlock, -1,
				"cycle %d issues %d ops on a %d-wide machine", cycle, k, c.s.Model.IssueWidth)
		}
	}
}

// edgeConformance checks the cycle assignment against every edge of the DDG
// the scheduler actually consumed, mapping each violated edge to the rule
// its kind encodes.
func (c *schedChecker) edgeConformance() {
	for _, n := range c.g.Nodes {
		if !c.ok(n) {
			continue
		}
		for _, e := range n.Succs {
			if !c.ok(e.To) || c.cyc(e.To) >= c.cyc(n)+e.Latency {
				continue
			}
			rule := "SC002"
			switch e.Kind {
			case ddg.EdgeMem:
				rule = "SC004"
			case ddg.EdgeControl:
				rule = "SC007"
				if n.Term && e.To.Term {
					rule = "SC006"
				}
			case ddg.EdgeLive:
				rule = "SC008"
			}
			c.addOnce(rule, n, e.To,
				"%s edge violated: %v (cycle %d) -> %v (cycle %d) needs latency %d",
				e.Kind, n.Op, c.cyc(n), e.To.Op, c.cyc(e.To), e.Latency)
		}
	}
}

// pathDependences re-derives the register and memory constraints (SC002,
// SC004) along every root-to-leaf path, mirroring the semantics the DDG
// walker encodes but sharing none of its code or edges: reaching
// definitions (guarded definitions join, unguarded ones kill), readers
// since definition, and the serialized memory state.
func (c *schedChecker) pathDependences() {
	for _, leaf := range c.r.Leaves() {
		defs := make(map[ir.Reg][]*ddg.Node)
		readers := make(map[ir.Reg][]*ddg.Node)
		var lastStore *ddg.Node
		var loads []*ddg.Node
		for _, bid := range c.r.PathTo(leaf) {
			for _, n := range c.byBlock[bid] {
				if !c.ok(n) {
					continue
				}
				op := n.Op
				srcs := op.Srcs
				if op.Guarded() {
					srcs = append(append([]ir.Reg(nil), srcs...), op.Guard)
				}
				for _, src := range srcs {
					if !src.IsValid() {
						continue
					}
					for _, def := range defs[src] {
						if lat := machine.Latency(def.Op.Opcode); c.cyc(n) < c.cyc(def)+lat {
							c.addOnce("SC002", def, n,
								"%v (cycle %d) reads %v before %v (cycle %d, latency %d) produces it",
								op, c.cyc(n), src, def.Op, c.cyc(def), lat)
						}
					}
					readers[src] = append(readers[src], n)
				}
				switch op.Opcode {
				case ir.Ld:
					if lastStore != nil && c.cyc(n) < c.cyc(lastStore) {
						c.addOnce("SC004", lastStore, n,
							"%v (cycle %d) bypasses %v (cycle %d)", op, c.cyc(n), lastStore.Op, c.cyc(lastStore))
					}
					loads = append(loads, n)
				case ir.St, ir.Call:
					if lastStore != nil && c.cyc(n) < c.cyc(lastStore) {
						c.addOnce("SC004", lastStore, n,
							"%v (cycle %d) bypasses %v (cycle %d)", op, c.cyc(n), lastStore.Op, c.cyc(lastStore))
					}
					for _, ld := range loads {
						if c.cyc(n) < c.cyc(ld) {
							c.addOnce("SC004", ld, n,
								"%v (cycle %d) overtakes %v (cycle %d)", op, c.cyc(n), ld.Op, c.cyc(ld))
						}
					}
					lastStore = n
					loads = nil
				}
				for _, d := range op.Dests {
					if !d.IsValid() {
						continue
					}
					for _, rd := range readers[d] {
						if rd != n && c.cyc(n) < c.cyc(rd) {
							c.addOnce("SC002", rd, n,
								"%v (cycle %d) overwrites %v before reader %v (cycle %d)",
								op, c.cyc(n), d, rd.Op, c.cyc(rd))
						}
					}
					for _, def := range defs[d] {
						if c.cyc(n) < c.cyc(def)+1 {
							c.addOnce("SC002", def, n,
								"%v (cycle %d) does not issue after prior definition %v (cycle %d)",
								op, c.cyc(n), def.Op, c.cyc(def))
						}
					}
				}
				for _, d := range op.Dests {
					if !d.IsValid() {
						continue
					}
					if op.Guarded() {
						defs[d] = append(defs[d], n)
					} else {
						defs[d] = []*ddg.Node{n}
						readers[d] = nil
					}
				}
			}
		}
	}
}

// terms returns bid's terminator nodes in effective order.
func (c *schedChecker) terms(bid ir.BlockID) []*ddg.Node {
	var out []*ddg.Node
	for _, n := range c.byBlock[bid] {
		if n.Term {
			out = append(out, n)
		}
	}
	return out
}

// resolver re-derives the branch whose resolution admits control into bid:
// the parent's branch targeting bid, or the parent's last branch for a
// fallthrough entry, climbing past branchless ancestors. Nil at the root.
func (c *schedChecker) resolver(bid ir.BlockID) *ddg.Node {
	cur := bid
	for {
		parent := c.r.Parent(cur)
		if parent == ir.NoBlock {
			return nil
		}
		var last *ddg.Node
		for _, t := range c.terms(parent) {
			if t.Op.IsBranch() && t.Op.Target == cur {
				return t
			}
			last = t
		}
		if last != nil {
			return last
		}
		cur = parent
	}
}

// downTerms re-derives the terminators that bound bid's non-speculatable
// ops from below: the block's own, or — for terminator-less blocks — the
// nearest descendant terminators along the single fallthrough chain.
func (c *schedChecker) downTerms(bid ir.BlockID) []*ddg.Node {
	if ts := c.terms(bid); len(ts) > 0 {
		return ts
	}
	cur := bid
	for {
		ch := c.r.Children(cur)
		if len(ch) != 1 {
			return nil
		}
		cur = ch[0]
		if ts := c.terms(cur); len(ts) > 0 {
			return ts
		}
	}
}

// controlWindows re-derives SC006 and SC007. Terminators must issue in
// priority (program) order — a multiway branch's arms are tested in
// sequence, so reordering them rewrites the program's control decisions —
// and no terminator may issue before the branch that admits its block.
// Non-speculatable ops (stores, calls, copies) must execute exactly when
// their home block does: strictly after its resolver, no later than its
// terminators.
func (c *schedChecker) controlWindows() {
	for _, bid := range c.r.Blocks {
		terms := c.terms(bid)
		for i := 0; i+1 < len(terms); i++ {
			a, b := terms[i], terms[i+1]
			if c.ok(a) && c.ok(b) && c.cyc(b) < c.cyc(a) {
				c.addOnce("SC006", a, b,
					"terminator %v (cycle %d) issues before prior arm %v (cycle %d)",
					b.Op, c.cyc(b), a.Op, c.cyc(a))
			}
		}
		res := c.resolver(bid)
		if res != nil && c.ok(res) {
			for _, t := range terms {
				if c.ok(t) && c.cyc(t) < c.cyc(res) {
					c.addOnce("SC006", res, t,
						"terminator %v (cycle %d) issues before its resolver %v (cycle %d)",
						t.Op, c.cyc(t), res.Op, c.cyc(res))
				}
			}
		}
		down := c.downTerms(bid)
		for _, n := range c.byBlock[bid] {
			if n.Term || !c.ok(n) || n.Op.Opcode.Speculatable() {
				continue
			}
			if res != nil && c.ok(res) && c.cyc(n) < c.cyc(res)+1 {
				c.addOnce("SC007", res, n,
					"non-speculatable %v (cycle %d) issues before control resolves at %v (cycle %d)",
					n.Op, c.cyc(n), res.Op, c.cyc(res))
			}
			for _, t := range down {
				if c.ok(t) && c.cyc(n) > c.cyc(t) {
					c.addOnce("SC007", n, t,
						"non-speculatable %v (cycle %d) issues after its block's terminator %v (cycle %d)",
						n.Op, c.cyc(n), t.Op, c.cyc(t))
				}
			}
		}
	}
}

// liveExits re-derives SC008 from the current liveness: a producer must
// issue no later than any region-exit branch in its subtree whose target
// still reads one of its destinations. (The DDG builder used the
// pre-renaming liveness; recomputed liveness is never larger at exit
// targets — renaming only removes in-region reads — so this cannot flag a
// schedule the builder's edges allowed.)
func (c *schedChecker) liveExits() {
	type exitBr struct {
		n      *ddg.Node
		target ir.BlockID
	}
	exits := make(map[ir.BlockID][]exitBr)
	for _, bid := range c.r.Blocks {
		for _, t := range c.terms(bid) {
			if t.Op.IsBranch() && !(c.r.Contains(t.Op.Target) && c.r.Parent(t.Op.Target) == bid) {
				exits[bid] = append(exits[bid], exitBr{t, t.Op.Target})
			}
		}
	}
	for _, bid := range c.r.Blocks {
		sub := c.r.Subtree(bid)
		for _, n := range c.byBlock[bid] {
			if n.Term || !c.ok(n) || len(n.Op.Dests) == 0 {
				continue
			}
			for _, d := range sub {
				for _, e := range exits[d] {
					if !c.ok(e.n) || c.cyc(n) <= c.cyc(e.n) {
						continue
					}
					for _, dst := range n.Op.Dests {
						if dst.IsValid() && c.lv.LiveIn[e.target].Has(dst) {
							c.addOnce("SC008", n, e.n,
								"%v (cycle %d) produces %v after exit %v (cycle %d) whose target bb%d needs it",
								n.Op, c.cyc(n), dst, e.n.Op, c.cyc(e.n), e.target)
							break
						}
					}
				}
			}
		}
	}
}

// offPathClobbers re-derives SC005, the paper's Section 3 obligation: an op
// speculated above a divergence executes on sibling paths too, so its
// destination must not be observable there — not live into the off-path
// successor, and not racing a definition the off-path subtree relies on.
// Renaming discharges the obligation with fresh destinations; this check
// proves it was discharged.
//
// An op n homed at H executes on an off-path successor s of an ancestor A
// iff it was hoisted into the shared stream above every arm admission on
// the way down to H (for each arm-entered block on the path, n issues no
// later than the branch that admits it) and, when s itself is entered by a
// branch, n issues no later than that branch. Fallthrough edges transfer
// control only after the whole stream executes, so they gate nothing.
func (c *schedChecker) offPathClobbers() {
	for _, n := range c.g.Nodes {
		if n.Term || !c.ok(n) || len(n.Op.Dests) == 0 || n.Op.Guarded() {
			continue
		}
		cur := n.Home
		for {
			parent := c.r.Parent(cur)
			if parent == ir.NoBlock {
				break
			}
			// The gate first: if cur is arm-entered and n issues after the
			// admitting branch, n sits in cur's own stream segment and can
			// execute on no sibling path, here or higher — even one whose
			// branch happens to be scheduled later.
			terms := c.terms(parent)
			admitted := true
			for _, t := range terms {
				if t.Op.IsBranch() && t.Op.Target == cur && c.r.Contains(cur) && c.r.Parent(cur) == parent {
					if !c.ok(t) || c.cyc(n) > c.cyc(t) {
						admitted = false
					}
				}
			}
			if !admitted {
				break
			}
			for _, t := range terms {
				if !t.Op.IsBranch() {
					continue
				}
				tgt := t.Op.Target
				if tgt == cur && c.r.Contains(tgt) && c.r.Parent(tgt) == parent {
					continue // the on-path edge
				}
				if c.ok(t) && c.cyc(n) <= c.cyc(t) {
					c.clobber(n, parent, tgt)
				}
			}
			if ft := c.fn.Block(parent).FallThrough; ft != ir.NoBlock && ft != cur {
				c.clobber(n, parent, ft)
			}
			cur = parent
		}
	}
}

// clobber reports n's destinations observable on off-path successor s of
// divergence A: live into s, or colliding with a definition inside s's
// subtree that the schedule lets n overwrite.
func (c *schedChecker) clobber(n *ddg.Node, a, s ir.BlockID) {
	for _, d := range n.Op.Dests {
		if !d.IsValid() {
			continue
		}
		if c.lv.LiveIn[s].Has(d) {
			key := fmt.Sprintf("SC005/%d/%d", n.Op.ID, s)
			if !c.seen[key] {
				c.seen[key] = true
				c.addNode("SC005", Error, n,
					"speculated %v (cycle %d) clobbers %v, live into off-path bb%d (missing rename copy?)",
					n.Op, c.cyc(n), d, s)
			}
		}
		if !(c.r.Contains(s) && c.r.Parent(s) == a) {
			continue
		}
		for _, sb := range c.r.Subtree(s) {
			for _, m := range c.byBlock[sb] {
				if m.Term || !c.ok(m) || c.cyc(m) > c.cyc(n) {
					continue
				}
				for _, md := range m.Op.Dests {
					if md == d {
						c.addOnce("SC005", m, n,
							"speculated %v (cycle %d) overwrites %v after off-path definition %v (cycle %d) in bb%d",
							n.Op, c.cyc(n), d, m.Op, c.cyc(m), sb)
					}
				}
			}
		}
	}
}
