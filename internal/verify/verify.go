// Package verify is the compiler's static-analysis gate: a suite of passes
// that independently re-derives the legality of everything the pipeline
// emitted — IR well-formedness, region-shape invariants, schedule legality
// and observable semantics — instead of trusting the transformations that
// produced it. Each violated invariant becomes a Diagnostic carrying a
// stable rule ID (IR0xx, RG0xx, SC0xx, SEM0xx, MC0xx) so CLIs, the daemon
// and telemetry can report machine-readable findings. DESIGN.md §9
// documents every rule with its paper justification.
//
// The verifier deliberately does not reuse the builders it checks: register
// and memory dependences are re-derived by walking every root-to-leaf path
// of each region, control windows are recomputed from the schedule itself,
// and off-path clobbers are found from final (recomputed) liveness. The DDG
// the scheduler consumed is additionally checked edge by edge, so a bug in
// either the graph builder or the list scheduler is caught by the other
// side's derivation.
package verify

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/inline"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// Severity grades a diagnostic.
type Severity uint8

const (
	// Info marks advisory findings that do not fail a compile.
	Info Severity = iota
	// Warning marks suspicious but not provably illegal results.
	Warning
	// Error marks a proven invariant violation; pipelines running with
	// verification fail the function.
	Error
)

// String names the severity as rendered by treegion-lint.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return "?"
	}
}

// Diagnostic is one verifier finding, locatable to a function, block and op.
type Diagnostic struct {
	// Rule is the stable machine-readable rule ID (e.g. "SC002").
	Rule     string
	Severity Severity
	// Fn is the function name.
	Fn string
	// Block is the block the finding anchors to, or ir.NoBlock.
	Block ir.BlockID
	// Op is the ID of the op the finding anchors to, or -1.
	Op      int
	Message string
}

// String renders "error SC002 fn/bb3/op12: message".
func (d Diagnostic) String() string {
	loc := d.Fn
	if d.Block != ir.NoBlock {
		loc += fmt.Sprintf("/bb%d", d.Block)
	}
	if d.Op >= 0 {
		loc += fmt.Sprintf("/op%d", d.Op)
	}
	return fmt.Sprintf("%s %s %s: %s", d.Severity, d.Rule, loc, d.Message)
}

// HasErrors reports whether any diagnostic is Error severity or above.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity >= Error {
			return true
		}
	}
	return false
}

// Rules returns the distinct rule IDs present, sorted.
func Rules(ds []Diagnostic) []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range ds {
		if !seen[d.Rule] {
			seen[d.Rule] = true
			out = append(out, d.Rule)
		}
	}
	sort.Strings(out)
	return out
}

// Failure is the error a verifying pipeline returns when a compile produced
// Error-severity diagnostics. It carries the full diagnostic list so CLIs
// and the daemon can render rule IDs instead of a bare string.
type Failure struct {
	Fn          string
	Diagnostics []Diagnostic
}

// Error summarizes the failure with the violated rule IDs.
func (f *Failure) Error() string {
	var rules []string
	for _, d := range f.Diagnostics {
		if d.Severity >= Error {
			rules = append(rules, d.Rule)
		}
	}
	sort.Strings(rules)
	rules = dedupSorted(rules)
	return fmt.Sprintf("verify: %s: %d diagnostics (rules %s)",
		f.Fn, len(f.Diagnostics), strings.Join(rules, ", "))
}

// Rules returns the distinct Error-severity rule IDs, sorted.
func (f *Failure) Rules() []string {
	var rules []string
	for _, d := range f.Diagnostics {
		if d.Severity >= Error {
			rules = append(rules, d.Rule)
		}
	}
	sort.Strings(rules)
	return dedupSorted(rules)
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Options configures Compiled.
type Options struct {
	// Machine is the model the schedules were produced for.
	Machine machine.Model
	// TD bounds tail duplication; checked against KindTreegionTD regions
	// (RG005). The zero value skips the bound checks.
	TD core.TDConfig
	// IfConvert records that hyperblock if-conversion ran: guarded
	// definitions relax the def-before-use rule and the oracle-driven
	// differential check is skipped (branch decisions moved into computed
	// predicates).
	IfConvert bool
	// Orig, when non-nil, is the pre-compilation function; it enables the
	// differential interpretation check (SEM001/SEM002).
	Orig *ir.Function
	// Seeds drives the differential interpreter; empty selects defaults.
	Seeds []uint64
	// MaxSteps bounds each differential run (0 selects a default).
	MaxSteps int
	// Prog, when non-nil, is the resolved program context: the differential
	// check executes resolved calls through the callee bodies (both sides),
	// and the call-convention rule (CL001) checks residual calls against the
	// callee signatures.
	Prog *ir.Program
	// Inline, when non-nil, carries the inliner's splice records and the
	// budgets it ran under; it enables the splice-integrity rules
	// (CL002/CL003) and the region-shape checks' treatment of spliced
	// blocks.
	Inline *inline.Stats
}

// Compiled runs every verification pass over one compiled function: fn is
// the post-compilation IR, regions/schedules are the pipeline's outputs
// (parallel slices). It returns all diagnostics, most severe first, then by
// rule ID.
func Compiled(fn *ir.Function, regions []*region.Region, schedules []*sched.Schedule, opts Options) []Diagnostic {
	var ds []Diagnostic
	if err := opts.Machine.Validate(); err != nil {
		ds = append(ds, Diagnostic{
			Rule: "MC001", Severity: Error, Fn: fn.Name, Block: ir.NoBlock, Op: -1,
			Message: err.Error(),
		})
	}
	ds = append(ds, CheckFunction(fn, opts.IfConvert)...)
	if HasErrors(ds) {
		// A malformed CFG poisons every downstream analysis (liveness and
		// region walks would index out of range); stop at the IR layer.
		sortDiagnostics(ds)
		return ds
	}
	lv := cfg.ComputeLiveness(cfg.New(fn))
	ds = append(ds, CheckRegionsInline(fn, regions, opts.TD, opts.Inline)...)
	if len(schedules) == len(regions) {
		for i, s := range schedules {
			ds = append(ds, CheckSchedule(fn, regions[i], s, lv)...)
		}
	} else if len(schedules) != 0 {
		ds = append(ds, Diagnostic{
			Rule: "SC001", Severity: Error, Fn: fn.Name, Block: ir.NoBlock, Op: -1,
			Message: fmt.Sprintf("%d schedules for %d regions", len(schedules), len(regions)),
		})
	}
	if opts.Prog != nil || opts.Inline != nil {
		ds = append(ds, CheckCalls(fn, opts)...)
	}
	if opts.Orig != nil && !opts.IfConvert {
		ds = append(ds, CheckSemanticsProgram(opts.Prog, opts.Orig, fn, opts.Seeds, opts.MaxSteps)...)
	}
	sortDiagnostics(ds)
	return ds
}

// sortDiagnostics orders most severe first, then by rule, block, op and
// message, so the output is deterministic in the inputs.
func sortDiagnostics(ds []Diagnostic) {
	slices.SortStableFunc(ds, func(a, b Diagnostic) int {
		if a.Severity != b.Severity {
			return int(b.Severity) - int(a.Severity)
		}
		if a.Rule != b.Rule {
			return strings.Compare(a.Rule, b.Rule)
		}
		if a.Block != b.Block {
			return int(a.Block) - int(b.Block)
		}
		if a.Op != b.Op {
			return a.Op - b.Op
		}
		return strings.Compare(a.Message, b.Message)
	})
}
