package verify

import (
	"encoding/json"
	"fmt"
)

// verdictSchema versions the persisted verdict blob. A blob carrying any
// other schema decodes as an error, which verdict consumers treat as a
// plain miss (re-verify), mirroring the artifact store's skew-equals-miss
// policy.
const verdictSchema = 1

// Verdict is the cached outcome of verifying one compiled artifact. It is
// keyed by the artifact's content address, so it is valid exactly as long
// as the artifact is: same input IR, same profile, same configuration,
// same result — same verdict. Failed verdicts are cached too (with their
// diagnostics), so a persistently failing compile doesn't re-run the
// verifier on every warm lookup.
type Verdict struct {
	Passed      bool
	Diagnostics []Diagnostic
}

// verdictBlob is the JSON wire form.
type verdictBlob struct {
	Schema      int          `json:"schema"`
	Passed      bool         `json:"passed"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// Encode serializes the verdict.
func (v *Verdict) Encode() ([]byte, error) {
	return json.Marshal(verdictBlob{
		Schema:      verdictSchema,
		Passed:      v.Passed,
		Diagnostics: v.Diagnostics,
	})
}

// DecodeVerdict parses a persisted verdict. Malformed bytes or a different
// schema are errors; callers treat either as a miss.
func DecodeVerdict(data []byte) (*Verdict, error) {
	var b verdictBlob
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("verify: bad verdict: %w", err)
	}
	if b.Schema != verdictSchema {
		return nil, fmt.Errorf("verify: verdict schema %d, want %d", b.Schema, verdictSchema)
	}
	for _, d := range b.Diagnostics {
		if d.Severity > Error {
			return nil, fmt.Errorf("verify: bad verdict severity %d", d.Severity)
		}
	}
	return &Verdict{Passed: b.Passed, Diagnostics: b.Diagnostics}, nil
}
