package verify

import (
	"strings"
	"testing"

	"treegion/internal/ir"
	"treegion/internal/machine"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "SC002", Severity: Error, Fn: "f", Block: 3, Op: 12, Message: "too early"}
	if got, want := d.String(), "error SC002 f/bb3/op12: too early"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d = Diagnostic{Rule: "SEM001", Severity: Error, Fn: "f", Block: ir.NoBlock, Op: -1, Message: "stores diverge"}
	if got := d.String(); strings.Contains(got, "bb") || strings.Contains(got, "op") {
		t.Errorf("blockless diagnostic rendered a location: %q", got)
	}
}

func TestHasErrorsAndRules(t *testing.T) {
	ds := []Diagnostic{
		{Rule: "IR009", Severity: Info},
		{Rule: "SC003", Severity: Error},
		{Rule: "SC003", Severity: Error},
	}
	if !HasErrors(ds) {
		t.Error("HasErrors = false with an Error diagnostic present")
	}
	if HasErrors(ds[:1]) {
		t.Error("HasErrors = true for advisory-only diagnostics")
	}
	if got := Rules(ds); len(got) != 2 || got[0] != "IR009" || got[1] != "SC003" {
		t.Errorf("Rules = %v, want [IR009 SC003]", got)
	}
}

func TestFailureError(t *testing.T) {
	f := &Failure{Fn: "g", Diagnostics: []Diagnostic{
		{Rule: "SC005", Severity: Error},
		{Rule: "SC002", Severity: Error},
	}}
	msg := f.Error()
	if !strings.Contains(msg, "g") || !strings.Contains(msg, "SC002") || !strings.Contains(msg, "SC005") {
		t.Errorf("Error() = %q, want function name and both rule IDs", msg)
	}
}

// TestCompiledBadMachine: an unusable machine model is MC001 and poisons
// nothing else — verification stops there.
func TestCompiledBadMachine(t *testing.T) {
	fn := ir.NewFunction("m")
	b := fn.NewBlock()
	b.Ops = append(b.Ops, fn.NewOp(ir.Ret))
	ds := Compiled(fn, nil, nil, Options{Machine: machine.Model{Name: "broken", IssueWidth: 0}})
	if got := Rules(ds); len(got) != 1 || got[0] != "MC001" {
		t.Fatalf("rules = %v, want [MC001]", got)
	}
}
