package verify

import (
	"fmt"

	"treegion/internal/cfg"
	"treegion/internal/ir"
)

// IR well-formedness rules. These independently re-derive everything
// ir.Function.Validate enforces (and more: operand shapes, def-before-use)
// and report every violation instead of stopping at the first.
//
//	IR001  missing or out-of-range entry block
//	IR002  block ID does not match its index
//	IR003  branch, pbr or fallthrough target out of range
//	IR004  misplaced terminator (op after branch, BRU not last,
//	       fallthrough after BRU)
//	IR005  RET in a block with successors
//	IR006  duplicate successor edge
//	IR007  duplicate op ID
//	IR008  malformed operands for the opcode (counts, register classes)
//	IR009  a predicate or branch-target register is read on some entry
//	       path before any definition (data registers are exempt: the
//	       synthetic benchmarks treat entry-live GPRs/FPRs as implicit
//	       zero-initialized parameters, which the interpreter honours)

// CheckFunction runs the IR rules over fn. ifConverted relaxes IR009
// (guarded definitions do not kill, so path-sensitive def-before-use over
// predicated code would report spurious entry-live registers).
func CheckFunction(fn *ir.Function, ifConverted bool) []Diagnostic {
	c := &irChecker{fn: fn}
	c.structure()
	// Def-before-use needs an indexable CFG; skip it when the structure is
	// already broken or when predication blurs kills.
	if !HasErrors(c.ds) && !ifConverted && !anyGuarded(fn) {
		c.mustDefine()
	}
	return c.ds
}

type irChecker struct {
	fn *ir.Function
	ds []Diagnostic
}

func (c *irChecker) add(rule string, sev Severity, b ir.BlockID, op int, format string, args ...interface{}) {
	c.ds = append(c.ds, Diagnostic{
		Rule: rule, Severity: sev, Fn: c.fn.Name, Block: b, Op: op,
		Message: fmt.Sprintf(format, args...),
	})
}

func anyGuarded(fn *ir.Function) bool {
	for _, b := range fn.Blocks {
		for _, op := range b.Ops {
			if op.Guarded() {
				return true
			}
		}
	}
	return false
}

func (c *irChecker) structure() {
	fn := c.fn
	if fn.Entry == ir.NoBlock || int(fn.Entry) >= len(fn.Blocks) || fn.Entry < 0 {
		c.add("IR001", Error, ir.NoBlock, -1, "entry bb%d out of range (%d blocks)", fn.Entry, len(fn.Blocks))
	}
	inRange := func(b ir.BlockID) bool { return b >= 0 && int(b) < len(fn.Blocks) }
	seenOp := make(map[int]bool)
	for i, b := range fn.Blocks {
		if b.ID != ir.BlockID(i) {
			c.add("IR002", Error, b.ID, -1, "block at index %d has ID %d", i, b.ID)
		}
		sawBranch := false
		sawBru := false
		for j, op := range b.Ops {
			if seenOp[op.ID] {
				c.add("IR007", Error, b.ID, op.ID, "duplicate op ID %d", op.ID)
			}
			seenOp[op.ID] = true
			if op.IsBranch() || op.Opcode == ir.Pbr {
				if !inRange(op.Target) {
					c.add("IR003", Error, b.ID, op.ID, "%s targets missing bb%d", op.Opcode, op.Target)
				}
			}
			switch {
			case op.IsBranch():
				if sawBru {
					c.add("IR004", Error, b.ID, op.ID, "branch after BRU")
				}
				sawBranch = true
				if op.Opcode == ir.Bru {
					sawBru = true
					if j != len(b.Ops)-1 {
						c.add("IR004", Error, b.ID, op.ID, "BRU is not the last op of its block")
					}
				}
			case sawBranch && op.Opcode != ir.Nop:
				c.add("IR004", Error, b.ID, op.ID, "non-branch op %v after a branch", op)
			}
			if op.Opcode == ir.Ret && (b.FallThrough != ir.NoBlock || len(b.Branches()) > 0) {
				c.add("IR005", Error, b.ID, op.ID, "RET in a block with successors")
			}
			c.operands(b, op)
		}
		if b.FallThrough != ir.NoBlock {
			if !inRange(b.FallThrough) {
				c.add("IR003", Error, b.ID, -1, "fallthrough targets missing bb%d", b.FallThrough)
			}
			if sawBru {
				c.add("IR004", Error, b.ID, -1, "fallthrough after BRU")
			}
		}
		seen := make(map[ir.BlockID]bool)
		for _, s := range b.Succs() {
			if seen[s] {
				c.add("IR006", Error, b.ID, -1, "duplicate successor bb%d", s)
			}
			seen[s] = true
		}
	}
}

// operands checks the operand shape of one op (IR008): destination/source
// counts and register classes per opcode, plus guard-class sanity.
func (c *irChecker) operands(b *ir.Block, op *ir.Op) {
	bad := func(format string, args ...interface{}) {
		c.add("IR008", Error, b.ID, op.ID, "%s: %s", op.Opcode, fmt.Sprintf(format, args...))
	}
	if op.Guard.IsValid() && op.Guard.Class != ir.ClassPred {
		bad("guard %v is not a predicate", op.Guard)
	}
	wantShape := func(dests, srcs int) bool {
		ok := true
		if len(op.Dests) != dests {
			bad("needs %d destination(s), has %d", dests, len(op.Dests))
			ok = false
		}
		if len(op.Srcs) != srcs {
			bad("needs %d source(s), has %d", srcs, len(op.Srcs))
			ok = false
		}
		return ok
	}
	allValid := func(rs []ir.Reg, what string) {
		for _, r := range rs {
			if !r.IsValid() {
				bad("invalid %s register", what)
			}
		}
	}
	switch op.Opcode {
	case ir.Nop:
		// No constraints: padding.
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr,
		ir.FAdd, ir.FMul, ir.FDiv:
		if wantShape(1, 2) {
			allValid(op.Dests, "destination")
			allValid(op.Srcs, "source")
		}
	case ir.MovI:
		if wantShape(1, 0) {
			allValid(op.Dests, "destination")
		}
	case ir.Mov, ir.Copy:
		if wantShape(1, 1) {
			allValid(op.Dests, "destination")
			allValid(op.Srcs, "source")
		}
	case ir.Ld:
		if wantShape(1, 1) {
			allValid(op.Dests, "destination")
			allValid(op.Srcs, "address")
		}
	case ir.St:
		if wantShape(0, 2) {
			allValid(op.Srcs, "source")
		}
	case ir.Cmpp:
		if len(op.Dests) != 1 && len(op.Dests) != 2 {
			bad("needs 1 or 2 destinations, has %d", len(op.Dests))
		}
		for _, d := range op.Dests {
			if d.IsValid() && d.Class != ir.ClassPred {
				bad("destination %v is not a predicate", d)
			}
		}
		if len(op.Srcs) != 2 {
			bad("needs 2 sources, has %d", len(op.Srcs))
		}
		allValid(op.Srcs, "source")
	case ir.Pbr:
		if wantShape(1, 0) {
			if d := op.Dests[0]; d.IsValid() && d.Class != ir.ClassBTR {
				bad("destination %v is not a branch-target register", d)
			}
		}
	case ir.Brct, ir.Brcf:
		if len(op.Dests) != 0 {
			bad("takes no destinations, has %d", len(op.Dests))
		}
		if len(op.Srcs) != 2 {
			bad("needs 2 sources (btr, pred), has %d", len(op.Srcs))
			break
		}
		// The btr slot may be empty (decoded target form); the predicate
		// must be a real predicate register.
		if b := op.Srcs[0]; b.IsValid() && b.Class != ir.ClassBTR {
			bad("branch-target source %v is not a BTR", b)
		}
		if p := op.Srcs[1]; !p.IsValid() || p.Class != ir.ClassPred {
			bad("predicate source %v is not a predicate", p)
		}
	case ir.Bru:
		if len(op.Dests) != 0 {
			bad("takes no destinations, has %d", len(op.Dests))
		}
	case ir.Call, ir.Ret:
		// Opaque; no operand constraints.
	}
}

// mustDefine is a forward must-define dataflow: a register counts as
// defined at a use only if every path from entry to the use writes it
// first. Only predicate and branch-target reads are reported: those steer
// control, while maybe-undefined data registers are the synthetic suite's
// implicit zero-initialized parameters (the interpreter zero-fills them).
func (c *irChecker) mustDefine() {
	fn := c.fn
	g := cfg.New(fn)
	// definedIn[b] is the set of registers written on every path from entry
	// to b. Must-analysis: initialize every non-entry block to "everything"
	// (nil sentinel) and intersect over predecessors to a fixpoint.
	definedIn := make([]cfg.RegSet, len(fn.Blocks))
	definedIn[fn.Entry] = cfg.NewRegSet()
	blockDefs := func(b *ir.Block, in cfg.RegSet) cfg.RegSet {
		out := in.Clone()
		for _, op := range b.Ops {
			for _, d := range op.Dests {
				if d.IsValid() {
					out.Add(d)
				}
			}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, bid := range g.RPO {
			in := definedIn[bid]
			if bid != fn.Entry {
				in = nil // "all registers" until a predecessor constrains it
				for _, p := range g.Preds[bid] {
					if definedIn[p] == nil {
						continue // unprocessed pred: no constraint yet
					}
					out := blockDefs(fn.Block(p), definedIn[p])
					if in == nil {
						in = out
					} else {
						in = intersect(in, out)
					}
				}
				if in == nil {
					continue
				}
			}
			if definedIn[bid] == nil || len(in) != len(definedIn[bid]) || !subset(definedIn[bid], in) {
				definedIn[bid] = in
				changed = true
			}
		}
	}
	for _, b := range fn.Blocks {
		in := definedIn[b.ID]
		if in == nil {
			continue // unreachable: never executes
		}
		defined := in.Clone()
		for _, op := range b.Ops {
			for _, s := range op.Srcs {
				if s.IsValid() && !defined.Has(s) &&
					(s.Class == ir.ClassPred || s.Class == ir.ClassBTR) {
					c.add("IR009", Error, b.ID, op.ID,
						"%v reads %v, which has no definition on some path from entry", op, s)
				}
			}
			for _, d := range op.Dests {
				if d.IsValid() {
					defined.Add(d)
				}
			}
		}
	}
}

func intersect(a, b cfg.RegSet) cfg.RegSet {
	out := cfg.NewRegSet()
	for r := range a {
		if b.Has(r) {
			out.Add(r)
		}
	}
	return out
}

func subset(a, b cfg.RegSet) bool {
	for r := range a {
		if !b.Has(r) {
			return false
		}
	}
	return true
}
