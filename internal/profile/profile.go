// Package profile holds execution-frequency data for a function: how many
// times each basic block ran and how many times each CFG edge was taken.
// The paper's region formation and three of its four scheduling heuristics
// consume exactly this (IMPACT-style) information; we obtain it from the
// stochastic interpreter in internal/interp instead of SPEC training runs.
package profile

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"

	"treegion/internal/ir"
)

// Edge identifies a CFG edge by its endpoints.
type Edge struct {
	From, To ir.BlockID
}

// Data is a profile: block and edge execution counts.
type Data struct {
	Block map[ir.BlockID]float64
	Edge  map[Edge]float64
}

// New returns an empty profile.
func New() *Data {
	return &Data{
		Block: make(map[ir.BlockID]float64),
		Edge:  make(map[Edge]float64),
	}
}

// Clone returns an independent copy of the profile. Region formers that
// tail duplicate mutate their profile, so each compilation configuration
// works on its own clone.
func (d *Data) Clone() *Data {
	c := New()
	for b, w := range d.Block {
		c.Block[b] = w
	}
	for e, w := range d.Edge {
		c.Edge[e] = w
	}
	return c
}

// BlockWeight returns the execution count of b (0 if never seen).
func (d *Data) BlockWeight(b ir.BlockID) float64 { return d.Block[b] }

// EdgeWeight returns the traversal count of the edge from→to.
func (d *Data) EdgeWeight(from, to ir.BlockID) float64 {
	return d.Edge[Edge{from, to}]
}

// AddBlock accumulates count executions of b.
func (d *Data) AddBlock(b ir.BlockID, count float64) { d.Block[b] += count }

// AddEdge accumulates count traversals of from→to.
func (d *Data) AddEdge(from, to ir.BlockID, count float64) {
	d.Edge[Edge{from, to}] += count
}

// BestSucc returns the successor of b with the greatest edge weight, and
// that weight. It returns ir.NoBlock if b has no successors. Ties break
// toward the earlier successor in arm order, which keeps formation
// deterministic.
func (d *Data) BestSucc(fn *ir.Function, b ir.BlockID) (ir.BlockID, float64) {
	best, bestW := ir.NoBlock, -1.0
	for _, s := range fn.Block(b).Succs() {
		if w := d.EdgeWeight(b, s); w > bestW {
			best, bestW = s, w
		}
	}
	if best == ir.NoBlock {
		return ir.NoBlock, 0
	}
	return best, bestW
}

// MoveEdge transfers the weight of edge (from,oldTo) onto (from,newTo).
// Tail duplication uses it when it retargets a predecessor onto a duplicate
// block.
func (d *Data) MoveEdge(from, oldTo, newTo ir.BlockID) {
	w := d.Edge[Edge{from, oldTo}]
	delete(d.Edge, Edge{from, oldTo})
	d.Edge[Edge{from, newTo}] += w
}

// SplitBlock installs the weight bookkeeping for a duplicate: the duplicate
// dup inherits inWeight (the weight of the edges now entering it), the
// original orig loses that amount, and each outgoing edge's weight is split
// proportionally between orig and dup.
func (d *Data) SplitBlock(fn *ir.Function, orig, dup ir.BlockID, inWeight float64) {
	origW := d.Block[orig]
	d.Block[dup] = inWeight
	d.Block[orig] = origW - inWeight
	if d.Block[orig] < 0 {
		d.Block[orig] = 0
	}
	frac := 0.0
	if origW > 0 {
		frac = inWeight / origW
	}
	for _, s := range fn.Block(orig).Succs() {
		w := d.Edge[Edge{orig, s}]
		moved := w * frac
		d.Edge[Edge{orig, s}] = w - moved
		d.Edge[Edge{dup, s}] += moved
	}
}

// Total returns the sum of all block weights (a rough program size × trip
// count measure, useful for sanity checks).
func (d *Data) Total() float64 {
	t := 0.0
	for _, w := range d.Block {
		t += w
	}
	return t
}

// Canonical returns a deterministic full serialization of the profile —
// block and edge weights, sorted — suitable as the profile component of a
// content-addressed cache key. Two profiles with equal Canonical strings
// drive every profile-guided decision identically.
// Canonical sits on the hot path of every cache lookup (it feeds the
// content-addressed key), so it builds the string with manual byte appends
// rather than fmt.
func (d *Data) Canonical() string {
	return string(d.AppendCanonical(nil))
}

// AppendCanonical appends the Canonical serialization to buf and returns
// it, so the cache-key path can hash out of one reused buffer.
func (d *Data) AppendCanonical(buf []byte) []byte {
	blocks := make([]int, 0, len(d.Block))
	for b := range d.Block {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	edges := make([]Edge, 0, len(d.Edge))
	for e := range d.Edge {
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	// ~24 bytes per entry covers typical weights; under-estimates just grow.
	buf = slices.Grow(buf, 24*(len(blocks)+len(edges)))
	for _, b := range blocks {
		buf = append(buf, 'b')
		buf = strconv.AppendInt(buf, int64(b), 10)
		buf = append(buf, '=')
		buf = strconv.AppendFloat(buf, d.Block[ir.BlockID(b)], 'g', -1, 64)
		buf = append(buf, ';')
	}
	for _, e := range edges {
		buf = append(buf, 'e')
		buf = strconv.AppendInt(buf, int64(e.From), 10)
		buf = append(buf, '-')
		buf = strconv.AppendInt(buf, int64(e.To), 10)
		buf = append(buf, '=')
		buf = strconv.AppendFloat(buf, d.Edge[e], 'g', -1, 64)
		buf = append(buf, ';')
	}
	return buf
}

// AppendKey appends a compact binary serialization of the profile to buf
// and returns it: count-prefixed, sorted block entries (u32 id, f64 bits)
// followed by edge entries (u32 from, u32 to, f64 bits), little-endian.
// It carries exactly the information Canonical does, so hashing it
// partitions profiles the same way, without the per-entry float formatting.
func (d *Data) AppendKey(buf []byte) []byte {
	blocks := make([]int, 0, len(d.Block))
	for b := range d.Block {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	edges := make([]Edge, 0, len(d.Edge))
	for e := range d.Edge {
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	le := binary.LittleEndian
	buf = slices.Grow(buf, 8+12*len(blocks)+16*len(edges))
	buf = le.AppendUint32(buf, uint32(len(blocks)))
	for _, b := range blocks {
		buf = le.AppendUint32(buf, uint32(b))
		buf = le.AppendUint64(buf, math.Float64bits(d.Block[ir.BlockID(b)]))
	}
	buf = le.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = le.AppendUint32(buf, uint32(e.From))
		buf = le.AppendUint32(buf, uint32(e.To))
		buf = le.AppendUint64(buf, math.Float64bits(d.Edge[e]))
	}
	return buf
}

// String dumps the profile sorted by block ID, for debugging.
func (d *Data) String() string {
	ids := make([]int, 0, len(d.Block))
	for b := range d.Block {
		ids = append(ids, int(b))
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "bb%d: %.0f\n", id, d.Block[ir.BlockID(id)])
	}
	return sb.String()
}
