package profile

import (
	"testing"
	"testing/quick"

	"treegion/internal/ir"
)

func TestBasicAccumulation(t *testing.T) {
	d := New()
	d.AddBlock(1, 10)
	d.AddBlock(1, 5)
	d.AddEdge(1, 2, 7)
	if d.BlockWeight(1) != 15 {
		t.Fatalf("BlockWeight = %v", d.BlockWeight(1))
	}
	if d.EdgeWeight(1, 2) != 7 {
		t.Fatalf("EdgeWeight = %v", d.EdgeWeight(1, 2))
	}
	if d.BlockWeight(9) != 0 || d.EdgeWeight(9, 9) != 0 {
		t.Fatal("missing entries must read as zero")
	}
	if d.Total() != 15 {
		t.Fatalf("Total = %v", d.Total())
	}
}

func TestBestSucc(t *testing.T) {
	f := ir.NewFunction("t")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.3)
	b0.FallThrough = b2.ID
	f.EmitRet(b1)
	f.EmitRet(b2)

	d := New()
	d.AddEdge(b0.ID, b1.ID, 30)
	d.AddEdge(b0.ID, b2.ID, 70)
	s, w := d.BestSucc(f, b0.ID)
	if s != b2.ID || w != 70 {
		t.Fatalf("BestSucc = bb%d/%v", s, w)
	}
	// Ties resolve to the earlier successor in arm order.
	d.AddEdge(b0.ID, b1.ID, 40)
	s, _ = d.BestSucc(f, b0.ID)
	if s != b1.ID {
		t.Fatalf("tie did not resolve to arm order: bb%d", s)
	}
	// A block with no successors.
	if s, _ := d.BestSucc(f, b1.ID); s != ir.NoBlock {
		t.Fatal("BestSucc on exit block must return NoBlock")
	}
}

func TestMoveEdge(t *testing.T) {
	d := New()
	d.AddEdge(1, 2, 50)
	d.MoveEdge(1, 2, 3)
	if d.EdgeWeight(1, 2) != 0 || d.EdgeWeight(1, 3) != 50 {
		t.Fatal("MoveEdge failed")
	}
}

func TestSplitBlockConservesMass(t *testing.T) {
	f := ir.NewFunction("t")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	f.EmitBrct(b1, ir.NoReg, p, b2.ID, 0.5)
	b1.FallThrough = b3.ID
	_ = b0
	f.EmitRet(b2)
	f.EmitRet(b3)

	d := New()
	d.AddBlock(b1.ID, 100)
	d.AddEdge(b1.ID, b2.ID, 30)
	d.AddEdge(b1.ID, b3.ID, 70)
	dup := f.DuplicateBlock(b1)
	before := d.Total()
	edgeSum := d.EdgeWeight(b1.ID, b2.ID) + d.EdgeWeight(b1.ID, b3.ID)

	d.SplitBlock(f, b1.ID, dup.ID, 40)
	if d.BlockWeight(b1.ID) != 60 || d.BlockWeight(dup.ID) != 40 {
		t.Fatalf("split weights = %v/%v", d.BlockWeight(b1.ID), d.BlockWeight(dup.ID))
	}
	if got := d.EdgeWeight(dup.ID, b2.ID); got != 12 {
		t.Fatalf("dup edge = %v, want 12 (40%% of 30)", got)
	}
	after := d.EdgeWeight(b1.ID, b2.ID) + d.EdgeWeight(b1.ID, b3.ID) +
		d.EdgeWeight(dup.ID, b2.ID) + d.EdgeWeight(dup.ID, b3.ID)
	if after != edgeSum {
		t.Fatalf("edge mass changed: %v -> %v", edgeSum, after)
	}
	if d.Total() != before {
		t.Fatalf("block mass changed: %v -> %v", before, d.Total())
	}
}

func TestSplitBlockZeroWeight(t *testing.T) {
	f := ir.NewFunction("t")
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	d := New()
	dup := f.DuplicateBlock(b0)
	d.SplitBlock(f, b0.ID, dup.ID, 0) // must not divide by zero
	if d.BlockWeight(dup.ID) != 0 {
		t.Fatal("zero split gave weight")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := New()
	d.AddBlock(1, 10)
	d.AddEdge(1, 2, 5)
	c := d.Clone()
	c.AddBlock(1, 90)
	c.AddEdge(1, 2, 5)
	if d.BlockWeight(1) != 10 || d.EdgeWeight(1, 2) != 5 {
		t.Fatal("Clone aliases the original")
	}
}

// Property: SplitBlock conserves total block weight for any split amount
// within [0, weight].
func TestSplitConservationProperty(t *testing.T) {
	f := ir.NewFunction("t")
	b0, b1 := f.NewBlock(), f.NewBlock()
	b0.FallThrough = b1.ID
	f.EmitRet(b1)
	fn := func(w, frac uint16) bool {
		d := New()
		weight := float64(w%1000) + 1
		in := weight * float64(frac%101) / 100
		d.AddBlock(b0.ID, weight)
		d.AddEdge(b0.ID, b1.ID, weight)
		dup := f.DuplicateBlock(b0)
		before := d.Total()
		d.SplitBlock(f, b0.ID, dup.ID, in)
		diff := d.Total() - before
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	d := New()
	d.AddBlock(2, 5)
	d.AddBlock(0, 9)
	s := d.String()
	if s != "bb0: 9\nbb2: 5\n" {
		t.Fatalf("String() = %q", s)
	}
}
