package eval

import (
	"treegion/internal/core"
	"treegion/internal/ir"
	"treegion/internal/verify"
)

// VerifyResult runs the static verifier over one compiled function,
// translating the compilation Config into verifier options exactly as
// CompileFunction interpreted it (tail-duplication defaults included). orig
// is the pre-compilation function (CompileFunction mutates its input, so
// callers keep a clone); nil skips the differential semantics check.
func VerifyResult(orig *ir.Function, fr *FunctionResult, c Config) []verify.Diagnostic {
	var td core.TDConfig
	if c.Kind == TreegionTD {
		td = c.TD
		if td.ExpansionLimit == 0 {
			td = core.DefaultTDConfig()
		}
	}
	ds := verify.Compiled(fr.Fn, fr.Regions, fr.Schedules, verify.Options{
		Machine:   c.Machine,
		TD:        td,
		IfConvert: c.IfConvert,
		Orig:      orig,
	})
	fr.Diagnostics = ds
	return ds
}
