package eval

import (
	"treegion/internal/core"
	"treegion/internal/ir"
	"treegion/internal/verify"
)

// VerifyDiagnostics runs the static verifier over one compiled function,
// translating the compilation Config into verifier options exactly as
// CompileFunction interpreted it (tail-duplication defaults included). orig
// is the pre-compilation function (CompileFunction mutates its input, so
// callers keep a clone); nil skips the differential semantics check.
//
// Unlike VerifyResult it does not touch fr, so it is safe on results shared
// out of a cache.
func VerifyDiagnostics(orig *ir.Function, fr *FunctionResult, c Config) []verify.Diagnostic {
	var td core.TDConfig
	if c.Kind == TreegionTD {
		td = c.TD
		if td.ExpansionLimit == 0 {
			td = core.DefaultTDConfig()
		}
	}
	opts := verify.Options{
		Machine:   c.Machine,
		TD:        td,
		IfConvert: c.IfConvert,
		Orig:      orig,
	}
	// Interprocedural context: with a resolved program the differential
	// check executes calls and CL001 re-derives residual call conventions;
	// with inlining on, the splice records enable CL002/CL003 and the
	// region checks' continuation handling.
	if c.InlineEnv != nil {
		opts.Prog = c.InlineEnv.Prog
	}
	if c.Inline.Enabled {
		st := fr.Inline
		opts.Inline = &st
	}
	return verify.Compiled(fr.Fn, fr.Regions, fr.Schedules, opts)
}

// VerifyResult is VerifyDiagnostics plus recording the diagnostics on fr.
// Only call it on a result this caller owns — never on a cached, shared one.
func VerifyResult(orig *ir.Function, fr *FunctionResult, c Config) []verify.Diagnostic {
	ds := VerifyDiagnostics(orig, fr, c)
	fr.Diagnostics = ds
	return ds
}
