package eval

import (
	"treegion/internal/ddg"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/sched"
)

// Utilization measures how full the machine's issue slots are over a
// region's weighted execution — the paper's core motivation for treegions
// is that linear regions "lead to underutilization of processor resources,
// especially on wide-issue machines".
//
// For each executed path, the utilization is (ops the path issues) /
// (issue width × path height); the region's utilization is the
// weight-averaged value over its paths, and UtilizationOf aggregates over
// regions by weighted cycles. Renaming copies count as issued work (they
// occupy slots on the real machine even though the paper's speedup metric
// ignores them — here we measure the hardware, not the metric).
func UtilizationOf(fr *FunctionResult, prof *profile.Data, m machine.Model) float64 {
	totalSlots, usedSlots := 0.0, 0.0
	for _, s := range fr.Schedules {
		r := s.Graph.Region
		// Ops issued per path: every node at a cycle <= the path's height-1
		// that either lies on the path or is speculatable (issues anyway).
		for _, e := range r.Exits() {
			w := prof.EdgeWeight(e.From, e.To)
			if w == 0 {
				continue
			}
			h, issued := pathIssue(s, e.From)
			totalSlots += w * float64(h*m.IssueWidth)
			usedSlots += w * float64(issued)
		}
		for _, b := range r.Blocks {
			for _, op := range r.Fn.Block(b).Ops {
				if op.Opcode == ir.Ret {
					w := prof.BlockWeight(b)
					h, issued := pathIssue(s, b)
					totalSlots += w * float64(h*m.IssueWidth)
					usedSlots += w * float64(issued)
				}
			}
		}
	}
	if totalSlots == 0 {
		return 0
	}
	return usedSlots / totalSlots
}

// pathIssue returns the height of the path to block b (conservatively the
// full schedule region up to the last cycle any path event needs — we use
// the maximum terminator cycle on the path as the exit proxy) and the
// number of ops issued during it.
func pathIssue(s *sched.Schedule, b ir.BlockID) (height, issued int) {
	r := s.Graph.Region
	onPath := map[ir.BlockID]bool{}
	for _, x := range r.PathTo(b) {
		onPath[x] = true
	}
	exitCycle := -1
	for _, n := range s.Graph.Nodes {
		if onPath[n.Home] {
			if c := s.Cycle[n.Index]; c > exitCycle {
				exitCycle = c
			}
		}
	}
	if exitCycle < 0 {
		return 0, 0
	}
	for _, n := range s.Graph.Nodes {
		c := s.Cycle[n.Index]
		if c > exitCycle {
			continue
		}
		if onPath[n.Home] || n.Spec {
			issued++
		}
	}
	return exitCycle + 1, issued
}

// MaxLive estimates the register pressure of one schedule: the maximum
// number of simultaneously live values across cycles, where a value is
// live from its definition's issue cycle until its last in-region consumer
// issues (values with no in-region consumer are live for one cycle; values
// consumed by later regions are not tracked — the paper's study predates
// its own register-allocation follow-up, and so does this estimate).
// Speculation and renaming both lengthen live ranges, which is the cost
// this metric exposes.
func MaxLive(s *sched.Schedule) int {
	type rng struct{ def, lastUse int }
	ranges := map[*ddg.Node]*rng{}
	for _, n := range s.Graph.Nodes {
		if len(n.Op.Dests) == 0 {
			continue
		}
		ranges[n] = &rng{def: s.Cycle[n.Index], lastUse: s.Cycle[n.Index]}
	}
	for _, n := range s.Graph.Nodes {
		for _, e := range n.Succs {
			// Flow edges are the ones with the producer's latency; treat
			// any successor as a potential consumer (conservative).
			if rg, ok := ranges[n]; ok {
				if c := s.Cycle[e.To.Index]; c > rg.lastUse {
					rg.lastUse = c
				}
			}
		}
	}
	if s.Length == 0 {
		return 0
	}
	delta := make([]int, s.Length+1)
	for n, rg := range ranges {
		width := len(n.Op.Dests)
		delta[rg.def] += width
		if rg.lastUse+1 <= s.Length {
			delta[rg.lastUse+1] -= width
		}
	}
	max, cur := 0, 0
	for _, d := range delta {
		cur += d
		if cur > max {
			max = cur
		}
	}
	return max
}

// PressureOf returns the weighted-average and maximum MaxLive over the
// function's schedules (weighted by root execution count).
func PressureOf(fr *FunctionResult, prof *profile.Data) (avg float64, max int) {
	totW := 0.0
	for _, s := range fr.Schedules {
		ml := MaxLive(s)
		w := prof.BlockWeight(s.Graph.Region.Root)
		avg += w * float64(ml)
		totW += w
		if ml > max {
			max = ml
		}
	}
	if totW > 0 {
		avg /= totW
	}
	return avg, max
}
