package eval

import (
	"treegion/internal/ddg"
	"treegion/internal/sched"
)

// Arena is the per-worker compile scratch: the DDG builder's dense tables
// and the list scheduler's working set, reused across every function a
// pipeline worker compiles instead of round-tripping each buffer through a
// global sync.Pool per region. The buffers grow to the largest function the
// worker has seen and stay there, so a worker chewing through a chunk of
// functions allocates the scratch once.
//
// An Arena must not be shared between concurrent compiles. A nil *Arena is
// valid everywhere one is accepted and selects the pooled/allocating paths.
type Arena struct {
	ddg   ddg.Scratch
	sched sched.Scratch
}

// NewArena returns an empty arena; buffers are grown on first use.
func NewArena() *Arena { return &Arena{} }

func (a *Arena) ddgScratch() *ddg.Scratch {
	if a == nil {
		return nil
	}
	return &a.ddg
}

func (a *Arena) schedScratch() *sched.Scratch {
	if a == nil {
		return nil
	}
	return &a.sched
}
