package eval

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/progen"
	"treegion/internal/region"
	"treegion/internal/sched"
)

// lineFn builds bb0 {ld; add; cmpp; brct->bb1} -> bb2; bb1, bb2 ret.
func lineFn(t *testing.T) (*ir.Function, *profile.Data) {
	t.Helper()
	f := ir.NewFunction("line")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	a := f.NewReg(ir.ClassGPR)
	c := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitLd(b0, a, r0, 0)
	f.EmitALU(b0, ir.Add, c, a, a)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, c, a)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	f.EmitRet(b1)
	f.EmitRet(b2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	prof.AddBlock(0, 100)
	prof.AddBlock(1, 60)
	prof.AddBlock(2, 40)
	prof.AddEdge(0, 1, 60)
	prof.AddEdge(0, 2, 40)
	return f, prof
}

func TestMeasureRegionBranchExit(t *testing.T) {
	f, prof := lineFn(t)
	r := region.New(f, region.KindBasicBlock, 0)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.ListSchedule(g, machine.FourU, core.DepHeight.Keys)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Critical path: LD (2) -> ADD (1) -> CMPP (1) -> BRCT: branch at
	// cycle 4, so both exits cost 5 cycles.
	rt := MeasureRegion(s, prof, lv)
	if rt.Time != 100*5 {
		t.Fatalf("Time = %v, want 500", rt.Time)
	}
	if rt.TimeWithCopies != rt.Time {
		t.Fatalf("no copies here, yet TimeWithCopies = %v", rt.TimeWithCopies)
	}
}

func TestMeasureRegionZeroWeightExitFree(t *testing.T) {
	f, prof := lineFn(t)
	prof.Edge = map[profile.Edge]float64{{From: 0, To: 2}: 40} // branch exit never taken
	r := region.New(f, region.KindBasicBlock, 0)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.ListSchedule(g, machine.FourU, core.DepHeight.Keys)
	rt := MeasureRegion(s, prof, lv)
	if rt.Time != 40*5 {
		t.Fatalf("Time = %v, want 200 (only the fallthrough path)", rt.Time)
	}
}

func TestMeasureRegionRetLeaf(t *testing.T) {
	f := ir.NewFunction("ret")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	f.EmitSt(b0, r0, 0, r0)
	f.EmitRet(b0)
	prof := profile.New()
	prof.AddBlock(0, 10)
	r := region.New(f, region.KindBasicBlock, 0)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.ListSchedule(g, machine.FourU, core.DepHeight.Keys)
	rt := MeasureRegion(s, prof, lv)
	// ST and RET share cycle 0 (lat-0 op->term edge): 1 cycle per trip.
	if rt.Time != 10 {
		t.Fatalf("Time = %v, want 10", rt.Time)
	}
}

func TestCopiesExcludedFromTime(t *testing.T) {
	// Two arms defining the same live-out register force renaming; the
	// compensation copies must show up only in TimeWithCopies.
	f := ir.NewFunction("cp")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	v := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r0)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	f.EmitMovI(b1, v, 1)
	b1.FallThrough = b3.ID
	f.EmitMovI(b2, v, 2)
	b2.FallThrough = b3.ID
	f.EmitSt(b3, r0, 0, v)
	f.EmitRet(b3)
	prof := profile.New()
	prof.AddBlock(0, 10)
	prof.AddBlock(1, 5)
	prof.AddBlock(2, 5)
	prof.AddEdge(0, 1, 5)
	prof.AddEdge(0, 2, 5)
	prof.AddEdge(1, 3, 5)
	prof.AddEdge(2, 3, 5)
	r := region.New(f, region.KindTreegion, 0)
	r.Add(1, 0)
	r.Add(2, 0)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := ddg.Build(f, r, ddg.Options{Rename: true, Liveness: lv, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCopies != 2 {
		t.Fatalf("copies = %d, want 2", g.NumCopies)
	}
	s := sched.ListSchedule(g, machine.FourU, core.DepHeight.Keys)
	rt := MeasureRegion(s, prof, lv)
	if rt.TimeWithCopies <= rt.Time {
		t.Fatalf("TimeWithCopies (%v) must exceed Time (%v): copies are pinned below the branch",
			rt.TimeWithCopies, rt.Time)
	}
}

func TestCompileFunctionKinds(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	fn := progs[0].Funcs[0]
	prof, err := interp.Profile(fn, 1, 50, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []RegionKind{BasicBlocks, SLR, Treegion, Superblock, TreegionTD} {
		c := DefaultConfig()
		c.Kind = kind
		c.DominatorParallelism = kind == TreegionTD
		res, err := CompileFunction(fn.Clone(), prof.Clone(), c)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%v: nonpositive time", kind)
		}
		if len(res.Regions) != len(res.Schedules) {
			t.Fatalf("%v: regions/schedules mismatch", kind)
		}
		if kind == BasicBlocks || kind == SLR || kind == Treegion {
			if res.OpsAfter != res.OpsBefore {
				t.Fatalf("%v: code grew without tail duplication", kind)
			}
		}
	}
}

func TestWiderMachinesNeverSlower(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	prog := progs[0]
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, m := range []machine.Model{machine.Scalar, machine.FourU, machine.EightU, machine.SixteenU} {
		c := DefaultConfig()
		c.Machine = m
		res, err := CompileProgram(prog, profs, c)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Time > prev+1e-6 {
			t.Fatalf("%s slower than the narrower machine: %v > %v", m.Name, res.Time, prev)
		}
		prev = res.Time
	}
}

func TestBaselineConfigShape(t *testing.T) {
	b := BaselineConfig()
	if b.Kind != BasicBlocks || b.Machine.IssueWidth != 1 {
		t.Fatalf("baseline misconfigured: %+v", b)
	}
	if Speedup(100, 50) != 2 || Speedup(100, 0) != 0 {
		t.Fatal("Speedup arithmetic wrong")
	}
}

func TestParseRegionKind(t *testing.T) {
	for _, s := range []string{"bb", "slr", "tree", "sb", "tree-td"} {
		k, err := ParseRegionKind(s)
		if err != nil || k.String() != s {
			t.Errorf("ParseRegionKind(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParseRegionKind("hyperblock"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestCompileProgramExpansion(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	prog := progs[0]
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	cTree := DefaultConfig()
	tree, err := CompileProgram(prog, profs, cTree)
	if err != nil {
		t.Fatal(err)
	}
	if tree.CodeExpansion != 1.0 {
		t.Fatalf("plain treegions must not expand code: %v", tree.CodeExpansion)
	}
	cTD := DefaultConfig()
	cTD.Kind = TreegionTD
	cTD.DominatorParallelism = true
	td, err := CompileProgram(prog, profs, cTD)
	if err != nil {
		t.Fatal(err)
	}
	if td.CodeExpansion <= 1.0 {
		t.Fatalf("tail duplication did not expand code: %v", td.CodeExpansion)
	}
	if td.CodeExpansion > cTD.TD.ExpansionLimit+0.5 {
		t.Fatalf("expansion %v far above the per-region limit %v", td.CodeExpansion, cTD.TD.ExpansionLimit)
	}
}
