package eval

import (
	"testing"

	"treegion/internal/core"
	"treegion/internal/machine"
	"treegion/internal/progen"
)

// TestVerifySuiteMatrix proves every schedule the compiler emits over the
// benchmark suite legal: every region former, all four priority heuristics,
// and both the 4-issue and 8-issue machines. The verifier must come back
// empty-handed on every compile.
func TestVerifySuiteMatrix(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	kinds := []RegionKind{BasicBlocks, SLR, Treegion, Superblock, TreegionTD}
	machines := []machine.Model{machine.FourU, machine.EightU}
	heuristics := core.Heuristics()
	if testing.Short() {
		progs = progs[:2]
		heuristics = []core.Heuristic{core.DepHeight, core.GlobalWeight}
	}
	for _, prog := range progs {
		profs, err := ProfileProgram(prog)
		if err != nil {
			t.Fatalf("%s: profile: %v", prog.Name, err)
		}
		for _, kind := range kinds {
			for _, h := range heuristics {
				for _, m := range machines {
					c := DefaultConfig()
					c.Kind = kind
					c.Heuristic = h
					c.Machine = m
					if kind == TreegionTD {
						c.DominatorParallelism = true
					}
					verifyProgram(t, prog, profs, c)
				}
			}
		}
	}
}

// TestVerifyIfConverted covers the predicated pipeline: the verifier must
// stay silent on if-converted compiles too (with the differential and
// def-before-use checks it cannot apply there skipped internally).
func TestVerifyIfConverted(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.IfConvert = true
	for _, prog := range progs[:3] {
		profs, err := ProfileProgram(prog)
		if err != nil {
			t.Fatalf("%s: profile: %v", prog.Name, err)
		}
		verifyProgram(t, prog, profs, c)
	}
}

// TestVerifyNoRename covers restricted speculation: with renaming off,
// conflicting ops are pinned rather than renamed and the schedule must
// still verify.
func TestVerifyNoRename(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Rename = false
	for _, prog := range progs[:3] {
		profs, err := ProfileProgram(prog)
		if err != nil {
			t.Fatalf("%s: profile: %v", prog.Name, err)
		}
		verifyProgram(t, prog, profs, c)
	}
}

func verifyProgram(t *testing.T, prog *progen.Program, profs Profiles, c Config) {
	t.Helper()
	for i, orig := range prog.Funcs {
		fr, err := CompileFunction(orig.Clone(), profs[i].Clone(), c)
		if err != nil {
			t.Fatalf("%s/%s [%s]: compile: %v", prog.Name, orig.Name, c.Fingerprint(), err)
		}
		for _, d := range VerifyResult(orig, fr, c) {
			t.Errorf("%s [%s]: %s", prog.Name, c.Fingerprint(), d)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestVerifyStress2Slice proves the asymptotic stress tier's giant
// straight-line regions verify too — these are the rank spaces that push
// the scheduler's bitmap queues past their level-1 word seam, so the legal-
// schedule guarantee must be demonstrated there, not just on suite-sized
// regions. The program is sliced to one function and two heuristics to stay
// affordable under -short (make check runs this slice under the race
// detector); make bench exercises the full tier.
func TestVerifyStress2Slice(t *testing.T) {
	p, ok := progen.PresetByName("stress2")
	if !ok {
		t.Fatal("stress2 preset not registered")
	}
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	prog.Funcs = prog.Funcs[:1]
	prog.Preset.NumFuncs = 1
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []core.Heuristic{core.DepHeight, core.GlobalWeight} {
		c := DefaultConfig()
		c.Heuristic = h
		verifyProgram(t, prog, profs, c)
	}
}
