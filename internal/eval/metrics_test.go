package eval

import (
	"testing"

	"treegion/internal/interp"
	"treegion/internal/machine"
	"treegion/internal/progen"
)

func compileKind(t *testing.T, kind RegionKind) (*FunctionResult, machine.Model) {
	t.Helper()
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	fn := progs[0].Funcs[0].Clone()
	prof, err := interp.Profile(fn, 51, 60, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Kind = kind
	c.Machine = machine.EightU
	c.DominatorParallelism = kind == TreegionTD
	fr, err := CompileFunction(fn, prof, c)
	if err != nil {
		t.Fatal(err)
	}
	return fr, c.Machine
}

func TestUtilizationBounds(t *testing.T) {
	for _, kind := range []RegionKind{BasicBlocks, SLR, Treegion, TreegionTD} {
		fr, m := compileKind(t, kind)
		u := UtilizationOf(fr, fr.Prof, m)
		if u <= 0 || u > 1 {
			t.Fatalf("%v: utilization = %v, want (0,1]", kind, u)
		}
	}
}

func TestTreegionsUtilizeMoreThanBasicBlocks(t *testing.T) {
	bb, m := compileKind(t, BasicBlocks)
	tree, _ := compileKind(t, Treegion)
	ub := UtilizationOf(bb, bb.Prof, m)
	ut := UtilizationOf(tree, tree.Prof, m)
	if ut <= ub {
		t.Fatalf("treegion utilization %v must exceed basic blocks %v (the paper's premise)", ut, ub)
	}
}

func TestPressureGrowsWithSpeculation(t *testing.T) {
	bb, _ := compileKind(t, BasicBlocks)
	tree, _ := compileKind(t, Treegion)
	ab, _ := PressureOf(bb, bb.Prof)
	at, _ := PressureOf(tree, tree.Prof)
	if at <= ab {
		t.Fatalf("treegion pressure %v must exceed basic blocks %v (speculation lengthens live ranges)", at, ab)
	}
	if ab <= 0 {
		t.Fatal("pressure must be positive")
	}
}

func TestMaxLiveOnSchedules(t *testing.T) {
	fr, _ := compileKind(t, Treegion)
	for _, s := range fr.Schedules {
		ml := MaxLive(s)
		if ml < 0 {
			t.Fatal("negative MaxLive")
		}
		// At most every value-producing node lives at once.
		defs := 0
		for _, n := range s.Graph.Nodes {
			defs += len(n.Op.Dests)
		}
		if ml > defs {
			t.Fatalf("MaxLive %d exceeds total defs %d", ml, defs)
		}
	}
}
