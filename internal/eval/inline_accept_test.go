package eval

import (
	"testing"

	"treegion/internal/inline"
	"treegion/internal/ir"
	"treegion/internal/progen"
)

// compileSuite generates a call-emitting preset, profiles it, and compiles it
// under tail-duplicating treegion formation with inlining on and off, plus
// the scalar baseline, returning all three results and the config used for
// the inline-on compile (carrying the resolved InlineEnv for verification).
func compileSuite(t *testing.T, preset string) (on, off, base *ProgramResult, prog *progen.Program, onCfg Config) {
	t.Helper()
	p, ok := progen.PresetByName(preset)
	if !ok {
		t.Fatalf("preset %s not registered", preset)
	}
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := ir.NewProgram(prog.Funcs)
	if err != nil {
		t.Fatal(err)
	}

	c := DefaultConfig()
	c.Kind = TreegionTD
	off, err = CompileProgram(prog, profs, c)
	if err != nil {
		t.Fatal(err)
	}
	onCfg = c
	onCfg.Inline = inline.DefaultConfig()
	onCfg.InlineEnv = &inline.Env{Prog: resolved, Profiles: profs}
	on, err = CompileProgram(prog, profs, onCfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err = CompileProgram(prog, profs, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return on, off, base, prog, onCfg
}

// TestInlineAcceptanceCallhot pins the issue's acceptance bar on the 90/10
// hot-callee preset: inlining must grow treegions past call barriers (mean
// region op count up at least 1.5x), must pay off in simulated speedup, and
// every compiled function must pass the full verifier — including the
// differential semantics check, which executes the original's calls and so
// certifies the inlined code against real interprocedural behavior.
func TestInlineAcceptanceCallhot(t *testing.T) {
	on, off, base, prog, onCfg := compileSuite(t, "callhot")

	if ratio := on.RegionStats.AvgOps / off.RegionStats.AvgOps; ratio < 1.5 {
		t.Errorf("mean treegion ops %.2f -> %.2f (ratio %.3f), want >= 1.5x",
			off.RegionStats.AvgOps, on.RegionStats.AvgOps, ratio)
	}
	sOn, sOff := Speedup(base.Time, on.Time), Speedup(base.Time, off.Time)
	if sOn <= sOff {
		t.Errorf("speedup %.3f with inlining vs %.3f without: inlining must pay off", sOn, sOff)
	}
	if on.Inline.Inlined == 0 {
		t.Error("no call sites inlined on the hot-callee preset")
	}
	if off.Inline.Inlined != 0 || len(off.Inline.Splices) != 0 {
		t.Errorf("inline-off compile recorded splices: %+v", off.Inline)
	}
	for i, fr := range on.Funcs {
		for _, d := range VerifyDiagnostics(prog.Funcs[i], fr, onCfg) {
			t.Errorf("%s: %s", fr.Fn.Name, d)
		}
	}
}

// TestInlineAcceptanceCalldeep exercises the depth-3 chain preset, where the
// recursion/depth cap and expansion budget must actually decline work — the
// counters prove the budget paths run, not just the happy path.
func TestInlineAcceptanceCalldeep(t *testing.T) {
	on, off, base, prog, onCfg := compileSuite(t, "calldeep")

	if on.Inline.Inlined == 0 {
		t.Error("no call sites inlined on the chain preset")
	}
	if on.Inline.DeclinedDepth+on.Inline.DeclinedBudget == 0 {
		t.Errorf("no depth/budget declines on a depth-3 chain: %+v", on.Inline)
	}
	if sOn, sOff := Speedup(base.Time, on.Time), Speedup(base.Time, off.Time); sOn <= sOff {
		t.Errorf("speedup %.3f with inlining vs %.3f without", sOn, sOff)
	}
	for i, fr := range on.Funcs {
		for _, d := range VerifyDiagnostics(prog.Funcs[i], fr, onCfg) {
			t.Errorf("%s: %s", fr.Fn.Name, d)
		}
	}
}
