package eval

import (
	"fmt"
	"time"

	"treegion/internal/cfg"
	"treegion/internal/core"
	"treegion/internal/ddg"
	"treegion/internal/hyper"
	"treegion/internal/inline"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/linear"
	"treegion/internal/machine"
	"treegion/internal/profile"
	"treegion/internal/progen"
	"treegion/internal/region"
	"treegion/internal/sched"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
)

// RegionKind selects the region former for a compilation.
type RegionKind uint8

// Region formers, in the paper's order of presentation.
const (
	BasicBlocks RegionKind = iota
	SLR
	Treegion
	Superblock
	TreegionTD
)

// String names the kind as in the paper.
func (k RegionKind) String() string {
	switch k {
	case BasicBlocks:
		return "bb"
	case SLR:
		return "slr"
	case Treegion:
		return "tree"
	case Superblock:
		return "sb"
	case TreegionTD:
		return "tree-td"
	default:
		return "?"
	}
}

// ParseRegionKind resolves a command-line name.
func ParseRegionKind(s string) (RegionKind, error) {
	for _, k := range []RegionKind{BasicBlocks, SLR, Treegion, Superblock, TreegionTD} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown region kind %q (want bb, slr, tree, sb or tree-td)", s)
}

// Config is one compilation configuration: how regions are formed and
// scheduled, and on which machine the result is timed.
type Config struct {
	Kind      RegionKind
	Heuristic core.Heuristic
	Machine   machine.Model
	// Rename enables compile-time register renaming (paper: on).
	Rename bool
	// DominatorParallelism enables duplicate merging; meaningful for
	// TreegionTD (paper Section 4).
	DominatorParallelism bool
	// TD bounds treegion tail duplication (TreegionTD only).
	TD core.TDConfig
	// SB bounds superblock formation (Superblock only).
	SB linear.SuperblockConfig
	// IfConvert runs hyperblock-style if-conversion before region formation
	// (the paper's future-work comparison of predication vs tail
	// duplication); Hyper bounds it.
	IfConvert bool
	Hyper     hyper.Config
	// Inline enables demand-driven inline-on-absorb during treegion
	// formation (Treegion and TreegionTD kinds): calls whose callee fits the
	// budgets are spliced into the growing region. Requires InlineEnv.
	Inline inline.Config
	// InlineEnv is the interprocedural context (resolved program plus
	// per-function profiles) the inliner clones callee bodies from. It is
	// input content, not configuration — the pipeline hashes the reachable
	// callees into cache keys separately — so it is not fingerprinted.
	InlineEnv *inline.Env
}

// Fingerprint returns a canonical string covering every field of the
// Config. It is the configuration component of content-addressed cache keys
// and memoization keys: two Configs compile identically iff their
// fingerprints match.
func (c Config) Fingerprint() string {
	fp := fmt.Sprintf("k%s/h%s/m%s-%d/r%t/d%t/td%g-%d-%d/sb%d-%g/ic%t-%d-%d",
		c.Kind, c.Heuristic, c.Machine.Name, c.Machine.IssueWidth,
		c.Rename, c.DominatorParallelism,
		c.TD.ExpansionLimit, c.TD.PathLimit, c.TD.MergeLimit,
		c.SB.MaxTraceLen, c.SB.ExpansionLimit,
		c.IfConvert, c.Hyper.MaxArmOps, c.Hyper.MaxPasses)
	// The inline segment appears only when inlining is on, keeping every
	// pre-existing fingerprint (and cache key derived from it) byte-stable.
	if c.Inline.Enabled {
		fp += "/il" + c.Inline.Fingerprint()
	}
	return fp
}

// DefaultConfig returns the paper's headline configuration: treegion
// scheduling with the global weight heuristic on the 4-issue machine.
func DefaultConfig() Config {
	return Config{
		Kind:      Treegion,
		Heuristic: core.GlobalWeight,
		Machine:   machine.FourU,
		Rename:    true,
		TD:        core.DefaultTDConfig(),
		SB:        linear.DefaultSuperblockConfig(),
	}
}

// FunctionResult is the outcome of compiling one function.
type FunctionResult struct {
	Fn *ir.Function
	// Prof is the profile as adjusted by region formation (tail duplication
	// splits weights onto the duplicate blocks).
	Prof      *profile.Data
	Regions   []*region.Region
	Schedules []*sched.Schedule
	Time      float64 // paper metric (copies excluded)
	Copies    float64 // metric including copies
	// Static code size before and after region formation (code expansion).
	OpsBefore, OpsAfter int
	// Transformation counters summed over regions.
	NumRenamed, NumCopies, NumMerged, NumSpeculated int
	// Sched aggregates the per-region schedule statistics (speculation,
	// branch packing, copies) over every region of the function.
	Sched sched.Stats
	// Trace is the per-phase compile telemetry of this function. Its call
	// and op counts are deterministic in the inputs; wall times are not.
	Trace *telemetry.CompileTrace
	// If-conversion statistics (when Config.IfConvert was set).
	Hyper hyper.Stats
	// Inline records the demand-driven inlining performed during formation
	// (when Config.Inline.Enabled was set): splices, added ops, declines.
	Inline inline.Stats
	// Diagnostics holds the static verifier's findings when verification
	// ran (see VerifyResult); nil when it did not.
	Diagnostics []verify.Diagnostic
}

// CompileFunction forms regions over fn (mutating it — pass a clone if the
// original must survive), schedules every region, and measures the result.
// The profile is mutated in step with tail duplication; pass a clone.
func CompileFunction(fn *ir.Function, prof *profile.Data, c Config) (*FunctionResult, error) {
	return CompileFunctionArena(fn, prof, c, nil)
}

// CompileFunctionArena is CompileFunction compiling through a caller-owned
// scratch arena (nil behaves exactly like CompileFunction). The batched
// pipeline gives each worker one arena and reuses it across the worker's
// whole chunk of functions.
func CompileFunctionArena(fn *ir.Function, prof *profile.Data, c Config, ar *Arena) (*FunctionResult, error) {
	tr := telemetry.NewTrace(fn.Name)
	res := &FunctionResult{Fn: fn, Prof: prof, OpsBefore: fn.NumOps(), Trace: tr}
	if c.IfConvert {
		t0 := time.Now()
		a0 := telemetry.AllocMark()
		res.Hyper = hyper.IfConvert(fn, prof, c.Hyper)
		tr.ObserveAllocs(telemetry.PhaseIfConvert, a0)
		tr.Observe(telemetry.PhaseIfConvert, time.Since(t0), fn.NumOps())
		if err := fn.Validate(); err != nil {
			return nil, fmt.Errorf("eval: %s: invalid after if-conversion: %w", fn.Name, err)
		}
	}
	// Formation. Tail duplication records its own phase inside FormTDTraced;
	// the treeform phase is the formation time net of it, so the trace's
	// phase totals add up without double counting.
	t0 := time.Now()
	a0 := telemetry.AllocMark()
	// Demand-driven inlining hooks into the treegion formers. New returns
	// nil when disabled or without program context; the typed nil must not
	// reach the interface, or the formers would see a non-nil rewriter.
	in := inline.New(c.Inline, c.InlineEnv, fn, prof)
	var rw core.BlockRewriter
	if in != nil {
		rw = in
	}
	g := cfg.New(fn)
	switch c.Kind {
	case BasicBlocks:
		res.Regions = linear.BasicBlocks(fn)
	case SLR:
		res.Regions = linear.SLRs(fn, g, prof)
	case Treegion:
		res.Regions = core.FormInline(fn, g, rw)
	case Superblock:
		sb := c.SB
		if sb.MaxTraceLen == 0 && sb.ExpansionLimit == 0 {
			sb = linear.DefaultSuperblockConfig()
		}
		res.Regions = linear.Superblocks(fn, prof, sb)
	case TreegionTD:
		td := c.TD
		if td.ExpansionLimit == 0 {
			td = core.DefaultTDConfig()
		}
		res.Regions = core.FormTDInlineTraced(fn, prof, td, tr, rw)
	default:
		return nil, fmt.Errorf("eval: unknown region kind %d", c.Kind)
	}
	if in != nil {
		res.Inline = in.Stats()
	}
	res.OpsAfter = fn.NumOps()
	tr.ObserveAllocs(telemetry.PhaseTreeform, a0)
	tr.Observe(telemetry.PhaseTreeform,
		time.Since(t0)-time.Duration(tr.PhaseNanos(telemetry.PhaseTailDup)), res.OpsAfter)
	if err := region.CheckPartition(fn, res.Regions); err != nil {
		return nil, fmt.Errorf("eval: %s: %w", fn.Name, err)
	}
	t0 = time.Now()
	a0 = telemetry.AllocMark()
	lv := cfg.ComputeLiveness(cfg.New(fn))
	tr.ObserveAllocs(telemetry.PhaseLiveness, a0)
	tr.Observe(telemetry.PhaseLiveness, time.Since(t0), res.OpsAfter)
	for _, r := range res.Regions {
		t0 = time.Now()
		a0 = telemetry.AllocMark()
		dg, err := ddg.BuildScratch(fn, r, ddg.Options{
			Rename:               c.Rename,
			DominatorParallelism: c.DominatorParallelism,
			Liveness:             lv,
			Profile:              prof,
		}, ar.ddgScratch())
		if err != nil {
			return nil, err
		}
		tr.ObserveAllocs(telemetry.PhaseDDG, a0)
		tr.Observe(telemetry.PhaseDDG, time.Since(t0), len(dg.Nodes))
		s := sched.ListScheduleScratch(dg, c.Machine, c.Heuristic.Keys, tr, ar.schedScratch())
		if err := s.Verify(); err != nil {
			return nil, fmt.Errorf("eval: %s: %w", fn.Name, err)
		}
		t0 = time.Now()
		a0 = telemetry.AllocMark()
		rt := MeasureRegion(s, prof, lv)
		tr.ObserveAllocs(telemetry.PhaseMeasure, a0)
		tr.Observe(telemetry.PhaseMeasure, time.Since(t0), len(dg.Nodes))
		res.Time += rt.Time
		res.Copies += rt.TimeWithCopies
		res.Schedules = append(res.Schedules, s)
		res.NumRenamed += dg.NumRenamed
		res.NumCopies += dg.NumCopies
		res.NumMerged += dg.NumMerged
		ss := s.Stats()
		res.Sched = res.Sched.Add(ss)
		res.NumSpeculated += ss.Speculated
	}
	return res, nil
}

// ProgramResult aggregates one benchmark under one configuration.
type ProgramResult struct {
	Name  string
	Cfg   Config
	Funcs []*FunctionResult
	// Time is the estimated program execution time in cycles.
	Time float64
	// CodeExpansion is Σ ops-after / Σ ops-before.
	CodeExpansion float64
	// RegionStats aggregates the formed regions (executed regions only when
	// a profile is supplied to the underlying stats call).
	RegionStats region.Stats
	// Sched aggregates schedule statistics over every function.
	Sched sched.Stats
	// Inline aggregates the per-function inlining statistics.
	Inline inline.Stats
	// Trace merges the per-function compile traces. Its call and op counts
	// are deterministic in the inputs and the worker count.
	Trace *telemetry.CompileTrace
}

// Profiles holds the per-function profiles of one generated program.
type Profiles []*profile.Data

// ProfileProgram runs the stochastic interpreter over every function of the
// generated program, with the preset's trip count.
func ProfileProgram(prog *progen.Program) (Profiles, error) {
	trips := prog.Preset.ProfileTrips
	if trips <= 0 {
		trips = 50
	}
	out := make(Profiles, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		d, err := interp.Profile(fn, prog.Preset.Seed*1000+uint64(i), trips, interp.Config{MaxSteps: 2_000_000})
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// CompileProgram compiles every function of prog under c, on fresh clones of
// the functions and profiles, and aggregates the results. When c enables
// inlining without supplying an InlineEnv, the env is resolved from prog
// itself (the original functions — the inliner clones out of them while the
// compilation mutates its own copies).
func CompileProgram(prog *progen.Program, profs Profiles, c Config) (*ProgramResult, error) {
	if c.Inline.Enabled && c.InlineEnv == nil {
		p, err := ir.NewProgram(prog.Funcs)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", prog.Name, err)
		}
		c.InlineEnv = &inline.Env{Prog: p, Profiles: profs}
	}
	frs := make([]*FunctionResult, len(prog.Funcs))
	for i, orig := range prog.Funcs {
		fn := orig.Clone()
		prof := profs[i].Clone()
		fr, err := CompileFunction(fn, prof, c)
		if err != nil {
			return nil, err
		}
		frs[i] = fr
	}
	return Aggregate(prog.Name, c, frs), nil
}

// Aggregate folds per-function results (in function order — aggregation
// order matters for float sums, so parallel drivers must preserve it) into a
// ProgramResult exactly as the serial CompileProgram does.
func Aggregate(name string, c Config, frs []*FunctionResult) *ProgramResult {
	res := &ProgramResult{Name: name, Cfg: c, Trace: telemetry.NewTrace(name)}
	before, after := 0, 0
	var statParts []region.Stats
	for _, fr := range frs {
		res.Funcs = append(res.Funcs, fr)
		before += fr.OpsBefore
		after += fr.OpsAfter
		res.Sched = res.Sched.Add(fr.Sched)
		res.Inline = res.Inline.Add(fr.Inline)
		res.Trace.Merge(fr.Trace)
		switch c.Kind {
		case Superblock:
			// The paper's Table 4 counts only trace-formed superblocks.
			var traces []*region.Region
			for _, r := range fr.Regions {
				if r.FromTrace {
					traces = append(traces, r)
				}
			}
			statParts = append(statParts, region.ComputeStats(traces, nil))
		default:
			statParts = append(statParts, region.ComputeStats(fr.Regions, nil))
		}
	}
	if before > 0 {
		res.CodeExpansion = float64(after) / float64(before)
	}
	res.RegionStats = region.Merge(statParts)
	res.Time = aggregateTime(frs)
	return res
}

// aggregateTime folds per-function times into an estimated program time.
//
// For call-free programs it is the plain function-order sum the serial
// pipeline has always produced (bit-identical floats). When functions call
// each other — resolved residual calls left in the compiled code, or calls
// the inliner absorbed (recorded as splices) — the standalone sum would count
// a callee twice: once in its caller's profile-weighted time (the call's own
// latency, or the spliced body) and once standalone. Instead, each function's
// total time charges every residual callsite with the callee's
// per-invocation time (its total time divided by its profiled entry weight),
// and the program time sums only the roots — functions no other function
// references. Inlined callsites charge nothing: the spliced body is already
// inside the caller's schedule and profile.
func aggregateTime(frs []*FunctionResult) float64 {
	idx := make(map[string]int, len(frs))
	for i, fr := range frs {
		idx[fr.Fn.Name] = i
	}
	// Reference edges: residual resolved calls in the compiled bodies, plus
	// splices (calls that existed in the source and were absorbed).
	called := make([]bool, len(frs))
	anyCalls := false
	for _, fr := range frs {
		for _, b := range fr.Fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode != ir.Call || op.Callee == "" {
					continue
				}
				if j, ok := idx[op.Callee]; ok {
					called[j] = true
					anyCalls = true
				}
			}
		}
		for _, sp := range fr.Inline.Splices {
			if j, ok := idx[sp.Callee]; ok {
				called[j] = true
				anyCalls = true
			}
		}
	}
	if !anyCalls {
		var sum float64
		for _, fr := range frs {
			sum += fr.Time
		}
		return sum
	}
	// tt(i): fr.Time plus the residual-call charges, memoized; on-stack
	// cycle detection breaks recursion deterministically by charging the
	// cycle edge nothing (generated programs are acyclic; hand-written
	// recursive inputs still get a stable, finite estimate).
	const (
		unvisited = iota
		onstack
		doneState
	)
	state := make([]int, len(frs))
	memo := make([]float64, len(frs))
	var tt func(i int) float64
	tt = func(i int) float64 {
		switch state[i] {
		case doneState:
			return memo[i]
		case onstack:
			return 0
		}
		state[i] = onstack
		fr := frs[i]
		t := fr.Time
		for _, b := range fr.Fn.Blocks {
			w := fr.Prof.BlockWeight(b.ID)
			if w == 0 {
				continue
			}
			for _, op := range b.Ops {
				if op.Opcode != ir.Call || op.Callee == "" {
					continue
				}
				j, ok := idx[op.Callee]
				if !ok {
					continue
				}
				ew := frs[j].Prof.BlockWeight(frs[j].Fn.Entry)
				if ew <= 0 {
					continue
				}
				t += w * (tt(j) / ew)
			}
		}
		state[i] = doneState
		memo[i] = t
		return t
	}
	var sum float64
	roots := 0
	for i := range frs {
		if !called[i] {
			sum += tt(i)
			roots++
		}
	}
	// Degenerate fully-cyclic programs have no roots; fall back to summing
	// everything so the estimate never collapses to zero.
	if roots == 0 {
		for i := range frs {
			sum += tt(i)
		}
	}
	return sum
}

// BaselineConfig is the speedup denominator: basic-block scheduling on the
// single-issue machine.
func BaselineConfig() Config {
	return Config{Kind: BasicBlocks, Heuristic: core.DepHeight, Machine: machine.Scalar, Rename: true}
}

// Speedup returns baselineTime / t.
func Speedup(baselineTime, t float64) float64 {
	if t == 0 {
		return 0
	}
	return baselineTime / t
}
