package eval

import (
	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/profile"
)

// ReMeasure re-evaluates an already compiled function against a different
// profile — the paper's proposed future-work study ("investigate the
// performance of treegion schedules across different sets of inputs, to see
// the effects of profile variations"). The schedules are untouched; only
// the per-path weights change, exactly as running the compiled binary on a
// different input would.
//
// The new profile must be collected on the *transformed* function (the one
// inside fr), since tail duplication changed its CFG; ProfileCompiled does
// that.
func ReMeasure(fr *FunctionResult, prof *profile.Data) RegionTime {
	lv := cfg.ComputeLiveness(cfg.New(fr.Fn))
	var total RegionTime
	for _, s := range fr.Schedules {
		rt := MeasureRegion(s, prof, lv)
		total.Time += rt.Time
		total.TimeWithCopies += rt.TimeWithCopies
	}
	return total
}

// ProfileCompiled profiles the transformed function of fr with a fresh
// seed. Because the interpreter's branch oracle keys decisions off original
// op identities, duplicated branches keep the behaviour of their originals
// and the varied profile is a faithful "different input set".
func ProfileCompiled(fr *FunctionResult, seed uint64, trips int) (*profile.Data, error) {
	return interp.Profile(fr.Fn, seed, trips, interp.Config{MaxSteps: 2_000_000})
}
