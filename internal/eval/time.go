// Package eval estimates program execution time the way the paper does:
// "using the profile count and schedule height of each region". For every
// path through a scheduled region, the path's height is the cycle after the
// last event the path needs: its exit branch, every branch that had to
// resolve before it, every non-speculatable op on the path (stores execute
// before control leaves), and every op whose value is live into the exit
// target. Speculatable ops that are dead at an exit may sink below it and
// do not delay the path. The region contributes the weighted sum of its
// path heights; program time is the sum over regions. Caches are ignored
// and branch prediction is perfect, exactly as in the paper, and copy Ops
// introduced by renaming are excluded from the accounted heights (the
// paper's accounting); TimeWithCopies reports the conservative variant.
package eval

import (
	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/sched"
)

// RegionTime is the estimated cycle count one region contributes.
type RegionTime struct {
	// Time is the paper's metric: Σ over exit paths of weight × height,
	// with renaming copies excluded from heights.
	Time float64
	// TimeWithCopies includes copy ops in the heights.
	TimeWithCopies float64
}

// blockView caches per-block cycle data of one schedule. Views are stored
// densely, indexed by BlockID; branch cycles come straight from the
// schedule via Graph.NodeOf, so no per-block maps are built.
type blockView struct {
	nonspec       int // max cycle over non-spec, non-copy, non-term nodes
	nonspecCopies int // ... including copies
	terms         int // max cycle over terminator nodes
	// specDefs are the speculatable value-producing nodes homed here,
	// needed for per-exit liveness checks.
	specDefs []specDef
}

type specDef struct {
	cycle int
	dests []ir.Reg
}

// MeasureRegion computes the region's weighted time under the profile. The
// liveness must cover the scheduled function (post-renaming liveness is not
// required: renamed registers are region-local and their live-out values
// travel through non-speculatable copies, which are accounted separately).
func MeasureRegion(s *sched.Schedule, prof *profile.Data, lv *cfg.Liveness) RegionTime {
	r := s.Graph.Region
	views := make([]blockView, len(r.Fn.Blocks))
	for _, b := range r.Blocks {
		views[b] = blockView{nonspec: -1, nonspecCopies: -1, terms: -1}
	}
	// A terminator's own cycle is read off the schedule on demand: NodeOf
	// is a dense-array lookup, so no armCycle map is needed.
	cycleOf := func(op *ir.Op) (int, bool) {
		if nd := s.Graph.NodeOf(op); nd != nil {
			return s.Cycle[nd.Index], true
		}
		return 0, false
	}
	for _, n := range s.Graph.Nodes {
		v := &views[n.Home]
		c := s.Cycle[n.Index]
		switch {
		case n.Term:
			if c > v.terms {
				v.terms = c
			}
		case !n.Spec:
			if c > v.nonspecCopies {
				v.nonspecCopies = c
			}
			if !n.IsCopy() && c > v.nonspec {
				v.nonspec = c
			}
		default:
			if len(n.Op.Dests) > 0 {
				v.specDefs = append(v.specDefs, specDef{cycle: c, dests: n.Op.Dests})
			}
		}
	}

	// pathMax walks root..B accumulating the cycles the path waits for.
	var pathBuf []ir.BlockID
	pathMax := func(b ir.BlockID, exitBr *ir.Op, target ir.BlockID, withCopies bool) int {
		max := -1
		bump := func(c int) {
			if c > max {
				max = c
			}
		}
		pathBuf = r.AppendPathTo(pathBuf[:0], b)
		path := pathBuf
		for i, x := range path {
			v := &views[x]
			if withCopies {
				bump(v.nonspecCopies)
			} else {
				bump(v.nonspec)
			}
			// Speculatable defs the exit target still needs.
			if target != ir.NoBlock && lv != nil {
				for _, sd := range v.specDefs {
					if sd.cycle <= max {
						continue
					}
					for _, d := range sd.dests {
						if d.IsValid() && lv.LiveIn[target].Has(d) {
							bump(sd.cycle)
							break
						}
					}
				}
			}
			switch {
			case i < len(path)-1:
				// Ancestor: the path continues to path[i+1]. If it leaves
				// via an arm branch, arms after it never execute; if via
				// fallthrough, every arm was checked first.
				next := path[i+1]
				via := -1
				for _, op := range r.Fn.Block(x).Ops {
					if op.IsBranch() && op.Target == next {
						if c, ok := cycleOf(op); ok {
							via = c
						}
					}
				}
				if via < 0 {
					via = v.terms // fallthrough: all branches resolved
				}
				bump(via)
			case exitBr != nil:
				// The path ends at this exit branch.
				if c, ok := cycleOf(exitBr); ok {
					bump(c)
				}
			default:
				// Fallthrough exit or Ret leaf: all terminators resolved.
				bump(v.terms)
			}
		}
		return max + 1
	}

	var rt RegionTime
	addPath := func(w float64, b ir.BlockID, br *ir.Op, target ir.BlockID) {
		if w == 0 {
			return
		}
		rt.Time += w * float64(pathMax(b, br, target, false))
		rt.TimeWithCopies += w * float64(pathMax(b, br, target, true))
	}

	for _, e := range r.Exits() {
		addPath(prof.EdgeWeight(e.From, e.To), e.From, e.Br, e.To)
	}
	// Ret leaves: executions that end the function inside the region.
	for _, b := range r.Blocks {
		blk := r.Fn.Block(b)
		for _, op := range blk.Ops {
			if op.Opcode == ir.Ret {
				addPath(prof.BlockWeight(b), b, nil, ir.NoBlock)
			}
		}
	}
	return rt
}
