package eval

import (
	"testing"

	"treegion/internal/interp"
	"treegion/internal/profile"
	"treegion/internal/progen"
)

func TestReMeasureSameProfileIsIdentity(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	fn := progs[0].Funcs[0].Clone()
	prof, err := interp.Profile(fn, 61, 50, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := CompileFunction(fn, prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := ReMeasure(fr, fr.Prof)
	if diff := rt.Time - fr.Time; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("ReMeasure with the compile-time profile gives %v, compile gave %v", rt.Time, fr.Time)
	}
}

func TestProfileCompiledVariesWithSeed(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	fn := progs[1].Funcs[0].Clone()
	prof, err := interp.Profile(fn, 62, 50, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := CompileFunction(fn, prof, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ProfileCompiled(fr, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileCompiled(fr, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ProfileCompiled(fr, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() == b.Total() && equalProfiles(a, b) {
		t.Fatal("different seeds produced identical profiles (suspicious)")
	}
	if !equalProfiles(a, c) {
		t.Fatal("same seed produced different profiles")
	}
	// Re-measuring under a varied profile still yields a sane time.
	rt := ReMeasure(fr, b)
	if rt.Time <= 0 || rt.TimeWithCopies < rt.Time {
		t.Fatalf("varied re-measure: %+v", rt)
	}
}

func equalProfiles(a, b *profile.Data) bool {
	if len(a.Block) != len(b.Block) || len(a.Edge) != len(b.Edge) {
		return false
	}
	for k, v := range a.Block {
		if b.Block[k] != v {
			return false
		}
	}
	for k, v := range a.Edge {
		if b.Edge[k] != v {
			return false
		}
	}
	return true
}
