// Package machine describes the paper's statically scheduled VLIW machine
// models: universal, fully pipelined functional units, so the only resource
// constraint is the issue width. Latencies are unit except load (2 cycles),
// floating-point multiply (3) and floating-point divide (9).
package machine

import (
	"fmt"

	"treegion/internal/ir"
)

// Model is a VLIW machine model.
type Model struct {
	Name string
	// IssueWidth is the number of Ops per MultiOp. Units are universal and
	// fully pipelined, so width is the only resource bound.
	IssueWidth int
}

// The paper's machine models plus the single-issue baseline used as the
// speedup denominator, and a wider model for headroom ablations.
var (
	Scalar    = Model{Name: "1U", IssueWidth: 1}
	FourU     = Model{Name: "4U", IssueWidth: 4}
	EightU    = Model{Name: "8U", IssueWidth: 8}
	SixteenU  = Model{Name: "16U", IssueWidth: 16}
)

// Validate checks that the model can execute code at all: a MultiOp must
// hold at least one Op. The verifier reports a violation as rule MC001.
func (m Model) Validate() error {
	if m.IssueWidth < 1 {
		return fmt.Errorf("machine: model %q has issue width %d (want >= 1)", m.Name, m.IssueWidth)
	}
	return nil
}

// ByName looks a model up by its paper name ("1U", "4U", "8U", "16U").
func ByName(name string) (Model, bool) {
	for _, m := range []Model{Scalar, FourU, EightU, SixteenU} {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// CallLatency is the issue-to-result latency of a non-inlined CALL: the
// branch-and-link plus return overhead a call pays even when the callee's
// own cycles are accounted separately (see eval's interprocedural time
// model). Inlining removes this cost along with the scheduling barrier.
const CallLatency = 4

// Latency returns the issue-to-result latency of an opcode on all models.
func Latency(o ir.Opcode) int {
	switch o {
	case ir.Ld:
		return 2
	case ir.FMul:
		return 3
	case ir.FDiv:
		return 9
	case ir.Call:
		return CallLatency
	default:
		return 1
	}
}
