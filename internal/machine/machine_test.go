package machine

import (
	"testing"

	"treegion/internal/ir"
)

func TestLatencies(t *testing.T) {
	cases := []struct {
		op   ir.Opcode
		want int
	}{
		{ir.Ld, 2},
		{ir.FMul, 3},
		{ir.FDiv, 9},
		{ir.Add, 1},
		{ir.St, 1},
		{ir.Cmpp, 1},
		{ir.Brct, 1},
		{ir.FAdd, 1},
		{ir.Copy, 1},
		{ir.Pbr, 1},
	}
	for _, c := range cases {
		if got := Latency(c.op); got != c.want {
			t.Errorf("Latency(%v) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestModels(t *testing.T) {
	if Scalar.IssueWidth != 1 || FourU.IssueWidth != 4 || EightU.IssueWidth != 8 || SixteenU.IssueWidth != 16 {
		t.Fatal("issue widths wrong")
	}
	for _, name := range []string{"1U", "4U", "8U", "16U"} {
		m, ok := ByName(name)
		if !ok || m.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("32U"); ok {
		t.Error("ByName accepted unknown model")
	}
}
