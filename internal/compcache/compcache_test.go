package compcache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"treegion/internal/eval"
	"treegion/internal/irtext"
	"treegion/internal/progen"
)

func compiled(t testing.TB) (fn string, prof string, cfg eval.Config, fr *eval.FunctionResult) {
	t.Helper()
	p, ok := progen.PresetByName("compress")
	if !ok {
		t.Fatal("no compress preset")
	}
	prog, err := progen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := eval.ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg = eval.DefaultConfig()
	fnText := irtext.Print(prog.Funcs[0])
	profText := profs[0].Canonical()
	fr, err = eval.CompileFunction(prog.Funcs[0].Clone(), profs[0].Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fnText, profText, cfg, fr
}

func TestKeyOf(t *testing.T) {
	k1 := KeyOf("func f", "b0=1;", "k/tree")
	if k2 := KeyOf("func f", "b0=1;", "k/tree"); k1 != k2 {
		t.Error("equal inputs produced different keys")
	}
	// Every component participates, and the separators prevent boundary
	// ambiguity between the concatenated inputs.
	for _, k2 := range []Key{
		KeyOf("func g", "b0=1;", "k/tree"),
		KeyOf("func f", "b0=2;", "k/tree"),
		KeyOf("func f", "b0=1;", "k/slr"),
		KeyOf("func fb", "0=1;", "k/tree"),
	} {
		if k1 == k2 {
			t.Error("different inputs collided")
		}
	}
}

func TestHitMissAccounting(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(64 << 20)
	k := KeyOf(fnText, profText, cfg.Fingerprint())

	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, NewEntry(fr))
	e, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after put")
	}
	if e.Result != fr {
		t.Error("entry does not hold the stored result")
	}
	if len(e.ScheduleLengths) != len(fr.Schedules) {
		t.Errorf("schedule metadata: %d lengths for %d schedules", len(e.ScheduleLengths), len(fr.Schedules))
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 0 evictions", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 entry with positive bytes", st)
	}
	if got, want := st.HitRate(), 0.5; got != want {
		t.Errorf("hit rate = %v, want %v", got, want)
	}
}

// TestHitDeepEqualColdCompile: a cache hit must be indistinguishable from
// recompiling — deeply equal on every observable of the result. (Raw
// DeepEqual over two independent compiles would compare ddg maps keyed by
// *ir.Op pointers, so equality is checked over the result's content.)
func TestHitDeepEqualColdCompile(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	_, _, _, cold := compiled(t) // an independent cold compile of the same inputs

	c := New(64 << 20)
	k := KeyOf(fnText, profText, cfg.Fingerprint())
	c.Put(k, NewEntry(fr))
	e, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after put")
	}
	hit := e.Result

	type observable struct {
		IR                   string
		Prof                 string
		Time, Copies         float64
		OpsBefore, OpsAfter  int
		Renamed, CopiesN     int
		Merged, Speculated   int
		SchedLengths, Cycles [][]int
	}
	obs := func(r *eval.FunctionResult) observable {
		o := observable{
			IR:   irtext.Print(r.Fn),
			Prof: r.Prof.Canonical(),
			Time: r.Time, Copies: r.Copies,
			OpsBefore: r.OpsBefore, OpsAfter: r.OpsAfter,
			Renamed: r.NumRenamed, CopiesN: r.NumCopies,
			Merged: r.NumMerged, Speculated: r.NumSpeculated,
		}
		for _, s := range r.Schedules {
			o.SchedLengths = append(o.SchedLengths, []int{s.Length})
			o.Cycles = append(o.Cycles, append([]int(nil), s.Cycle...))
		}
		return o
	}
	if !reflect.DeepEqual(obs(hit), obs(cold)) {
		t.Error("cache hit differs from an independent cold compile")
	}
}

func TestEvictionUnderTinyBudget(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	entry := NewEntry(fr)
	// A budget of ~2 entries per shard; hammering one shard's worth of
	// distinct keys must evict.
	c := New(entry.Size * 2 * numShards)
	var keys []Key
	for i := 0; i < 64; i++ {
		k := KeyOf(fnText, profText, fmt.Sprintf("%s/%d", cfg.Fingerprint(), i))
		keys = append(keys, k)
		c.Put(k, NewEntry(fr))
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under tiny budget: %+v", st)
	}
	if st.Entries >= 64 {
		t.Errorf("entries = %d, want < 64", st.Entries)
	}
	if st.Bytes > st.Budget+entry.Size*numShards {
		t.Errorf("bytes = %d way over budget %d", st.Bytes, st.Budget)
	}
	// LRU: most recently inserted keys survive, oldest are gone.
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Error("most recent entry evicted")
	}
	alive := 0
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			alive++
		}
	}
	if alive == len(keys) {
		t.Error("every entry survived a tiny budget")
	}
}

func TestOversizedSingletonStaysResident(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(1) // absurd budget: smaller than any entry
	k := KeyOf(fnText, profText, cfg.Fingerprint())
	c.Put(k, NewEntry(fr))
	if _, ok := c.Get(k); !ok {
		t.Error("singleton entry evicted under impossible budget (thrash)")
	}
}

func TestReplaceExistingKey(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(64 << 20)
	k := KeyOf(fnText, profText, cfg.Fingerprint())
	c.Put(k, NewEntry(fr))
	bytes1 := c.Stats().Bytes
	c.Put(k, NewEntry(fr))
	st := c.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d after re-put, want 1", st.Entries)
	}
	if st.Bytes != bytes1 {
		t.Errorf("bytes = %d after same-size re-put, want %d", st.Bytes, bytes1)
	}
}

func TestNilCacheIsNoCaching(t *testing.T) {
	var c *Cache
	k := KeyOf("f", "p", "c")
	if _, ok := c.Get(k); ok {
		t.Error("nil cache hit")
	}
	c.Put(k, &Entry{Size: 1}) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(int64(NewEntry(fr).Size) * 4 * numShards)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := KeyOf(fnText, profText, fmt.Sprintf("%s/%d/%d", cfg.Fingerprint(), g, i%16))
				if _, ok := c.Get(k); !ok {
					c.Put(k, NewEntry(fr))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
