package compcache

import (
	"testing"

	"treegion/internal/verify"
)

// memVerdicts is a test VerdictStore recording tier traffic.
type memVerdicts struct {
	m          map[Key]*verify.Verdict
	gets, puts int
}

func (s *memVerdicts) GetVerdict(k Key) (*verify.Verdict, bool) {
	s.gets++
	v, ok := s.m[k]
	return v, ok
}

func (s *memVerdicts) PutVerdict(k Key, v *verify.Verdict) error {
	s.puts++
	s.m[k] = v
	return nil
}

func TestVerdictTiers(t *testing.T) {
	c := New(64 << 20)
	vs := &memVerdicts{m: make(map[Key]*verify.Verdict)}
	c.SetVerdictStore(vs)
	k := KeyOf("fn", "prof", "cfg")

	if _, ok := c.Verdict(k); ok {
		t.Fatal("verdict hit on empty cache")
	}
	want := &verify.Verdict{Passed: true}
	c.PutVerdict(k, want)
	if vs.puts != 1 {
		t.Fatalf("persistent puts = %d, want 1", vs.puts)
	}
	// Memory answers without touching the persistent tier.
	gets := vs.gets
	v, ok := c.Verdict(k)
	if !ok || v != want {
		t.Fatal("memory tier miss after put")
	}
	if vs.gets != gets {
		t.Fatal("memory hit consulted the persistent tier")
	}
	// A fresh cache (process restart) promotes from the persistent tier.
	c2 := New(64 << 20)
	c2.SetVerdictStore(vs)
	v, ok = c2.Verdict(k)
	if !ok || !v.Passed {
		t.Fatal("persistent verdict not found after restart")
	}
	gets = vs.gets
	if _, ok := c2.Verdict(k); !ok {
		t.Fatal("promoted verdict missed")
	}
	if vs.gets != gets {
		t.Fatal("promotion into memory did not stick")
	}
	st := c2.Stats()
	if st.VerdictHits != 2 || st.VerdictMisses != 0 {
		t.Fatalf("verdict stats %+v", st)
	}
	// A nil cache is a valid no-verdict-caching sentinel.
	var nc *Cache
	if _, ok := nc.Verdict(k); ok {
		t.Fatal("nil cache produced a verdict")
	}
	nc.PutVerdict(k, want)
}
