// Package compcache is a sharded, content-addressed cache of function
// compilation results. A compilation is fully determined by three inputs —
// the textual IR of the function, the profile that guides formation and
// scheduling, and the Config — so the cache key is a SHA-256 over exactly
// those, and a hit can stand in for a recompile byte-for-byte.
//
// Entries carry the FunctionResult plus lightweight schedule metadata and
// an estimated in-memory size; each shard evicts least-recently-used entries
// once its slice of the byte budget is exceeded. Hit, miss and eviction
// counters are exported for the daemon's /metrics endpoint.
//
// Cached results are shared between callers and MUST be treated as
// immutable: do not mutate the Fn, Prof, Regions or Schedules of a
// FunctionResult obtained from the cache.
package compcache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"treegion/internal/eval"
	"treegion/internal/telemetry"
	"treegion/internal/verify"
)

// Key is the content address of one (function IR, profile, config)
// compilation.
type Key [sha256.Size]byte

// KeyOf hashes the three compilation inputs. irText must be the canonical
// textual IR (irtext.Print), profCanonical a profile.Data.Canonical() dump,
// and cfgFingerprint an eval.Config.Fingerprint().
func KeyOf(irText, profCanonical, cfgFingerprint string) Key {
	h := sha256.New()
	h.Write([]byte(irText))
	h.Write([]byte{0})
	h.Write([]byte(profCanonical))
	h.Write([]byte{0})
	h.Write([]byte(cfgFingerprint))
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyOfBytes is KeyOf over byte slices — same hash for the same content,
// but the hot compile path can feed it slices of one pooled buffer instead
// of materializing strings per lookup.
func KeyOfBytes(irText, profCanonical []byte, cfgFingerprint string) Key {
	h := sha256.New()
	h.Write(irText)
	h.Write([]byte{0})
	h.Write(profCanonical)
	h.Write([]byte{0})
	h.Write([]byte(cfgFingerprint))
	var k Key
	h.Sum(k[:0])
	return k
}

// Entry is one cached compilation: the result plus schedule metadata.
type Entry struct {
	Result *eval.FunctionResult
	// ScheduleLengths are the per-region schedule lengths in cycles.
	ScheduleLengths []int
	// Size is the estimated in-memory footprint charged against the budget.
	Size int64
}

// EstimateSize approximates the in-memory footprint of a cached result. It
// only needs to be proportional to reality for LRU eviction to behave.
func EstimateSize(fr *eval.FunctionResult) int64 {
	const (
		opCost    = 112 // ir.Op + block bookkeeping
		nodeCost  = 160 // ddg.Node + schedule cycle + map slot
		baseCost  = 512
		statCost  = 64
		entryCost = 256 // Entry + list element + map slot
	)
	n := int64(baseCost + entryCost)
	n += int64(fr.OpsAfter) * opCost
	for _, s := range fr.Schedules {
		n += int64(len(s.Cycle)) * nodeCost
	}
	n += int64(len(fr.Regions)) * statCost
	if fr.Prof != nil {
		n += int64(len(fr.Prof.Block)+len(fr.Prof.Edge)) * 32
	}
	return n
}

// NewEntry wraps a compile result, extracting schedule metadata and
// estimating its size.
func NewEntry(fr *eval.FunctionResult) *Entry {
	e := &Entry{Result: fr, Size: EstimateSize(fr)}
	for _, s := range fr.Schedules {
		e.ScheduleLengths = append(e.ScheduleLengths, s.Length)
	}
	return e
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int64
	Bytes, Budget           int64
	// InflightDedups counts concurrent identical compiles that were
	// coalesced onto another caller's in-flight compile.
	InflightDedups int64
	// VerdictHits/VerdictMisses count verification-verdict lookups served
	// from cache (either tier) vs. requiring a verifier run.
	VerdictHits, VerdictMisses int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

const numShards = 32

// L2 is a second-level result store layered under the in-memory cache —
// in practice internal/store's disk-backed artifact store. Lookups go
// memory → L2 → compile; results compiled cold are written through to both
// levels. Put errors are the L2's to count and report (a failed disk write
// must never fail a compile), which is why the interface lets Put return
// one but GetOrCompute ignores it.
type L2 interface {
	Get(Key) (*eval.FunctionResult, bool)
	Put(Key, *eval.FunctionResult) error
}

// VerdictStore persists verification verdicts keyed by artifact hash —
// internal/store's disk layer in practice. A verdict is valid exactly as
// long as the artifact under the same key is, so the two share one content
// address.
type VerdictStore interface {
	GetVerdict(Key) (*verify.Verdict, bool)
	PutVerdict(Key, *verify.Verdict) error
}

// Cache is a sharded LRU cache under a byte budget. The zero value is not
// usable; call New. A nil *Cache is a valid "no caching" sentinel: Get
// always misses (without counting) and Put is a no-op.
type Cache struct {
	shards      [numShards]shard
	shardBudget int64

	hits, misses, evictions atomic.Int64
	entries, bytes          atomic.Int64

	// l2 is the optional second level (disk store). Set before concurrent
	// use via SetL2.
	l2 L2

	// verdicts is the optional persistent verdict tier under verdictMem.
	// Set before concurrent use via SetVerdictStore.
	verdicts VerdictStore

	// verdictMem memoizes verdicts in memory so a warm verified lookup in
	// the same process doesn't touch disk. Verdicts are tiny; the map is
	// cleared wholesale at a soft cap instead of tracking LRU order.
	verdictMu  sync.RWMutex
	verdictMem map[Key]*verify.Verdict

	verdictHits, verdictMisses atomic.Int64

	// flightMu guards inflight: one compile per key at a time, with
	// late-arriving identical requests waiting on the leader's flight
	// instead of compiling again.
	flightMu sync.Mutex
	inflight map[Key]*flight
	dedups   atomic.Int64
}

// flight is one in-progress compile other callers may wait on.
type flight struct {
	done chan struct{}
	res  *eval.FunctionResult
	err  error
}

type shard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	m     map[Key]*list.Element
	bytes int64
}

type lruItem struct {
	key   Key
	entry *Entry
}

// DefaultBudget is a comfortable in-process budget: large enough to hold
// the whole experiment suite under every paper configuration.
const DefaultBudget = 512 << 20

// New builds a cache with the given total byte budget (split evenly across
// shards). Budgets <= 0 fall back to DefaultBudget.
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudget
	}
	c := &Cache{
		shardBudget: budgetBytes / numShards,
		inflight:    make(map[Key]*flight),
		verdictMem:  make(map[Key]*verify.Verdict),
	}
	if c.shardBudget < 1 {
		c.shardBudget = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[Key]*list.Element)
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	// The key is a cryptographic hash; its first byte is already uniform.
	return &c.shards[int(k[0])%numShards]
}

// Get returns the cached entry for k, marking it most recently used.
func (c *Cache) Get(k Key) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*lruItem).entry, true
}

// Put stores e under k, evicting least-recently-used entries from the
// shard until it fits its slice of the budget. Re-putting an existing key
// replaces the entry.
func (c *Cache) Put(k Key, e *Entry) {
	if c == nil || e == nil {
		return
	}
	s := c.shard(k)
	var freed []*Entry
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		old := el.Value.(*lruItem)
		s.bytes += e.Size - old.entry.Size
		c.bytes.Add(e.Size - old.entry.Size)
		old.entry = e
		s.ll.MoveToFront(el)
	} else {
		s.m[k] = s.ll.PushFront(&lruItem{key: k, entry: e})
		s.bytes += e.Size
		c.entries.Add(1)
		c.bytes.Add(e.Size)
	}
	// Evict from the back while over budget, but never the entry just
	// inserted (an oversized singleton stays resident rather than thrash).
	for s.bytes > c.shardBudget && s.ll.Len() > 1 {
		back := s.ll.Back()
		it := back.Value.(*lruItem)
		s.ll.Remove(back)
		delete(s.m, it.key)
		s.bytes -= it.entry.Size
		freed = append(freed, it.entry)
	}
	s.mu.Unlock()
	for _, ev := range freed {
		c.entries.Add(-1)
		c.bytes.Add(-ev.Size)
		c.evictions.Add(1)
	}
}

// SetL2 layers a second-level store (the disk-backed artifact store) under
// the memory cache. Call once at setup, before the cache is shared across
// goroutines. An L2 that also persists verdicts (internal/store does) is
// wired as the verdict tier too, unless one was set explicitly.
func (c *Cache) SetL2(l2 L2) {
	if c == nil {
		return
	}
	c.l2 = l2
	if vs, ok := l2.(VerdictStore); ok && c.verdicts == nil {
		c.verdicts = vs
	}
}

// SetVerdictStore layers a persistent verdict tier under the in-memory
// verdict map. Call once at setup, before the cache is shared.
func (c *Cache) SetVerdictStore(vs VerdictStore) {
	if c != nil {
		c.verdicts = vs
	}
}

// verdictMemCap is the soft cap on memoized verdicts; far above any suite
// size, it only bounds a pathological workload.
const verdictMemCap = 1 << 16

// Verdict returns the cached verification verdict for the artifact keyed
// by k: memory first, then the persistent tier (promoting a hit into
// memory). A miss means the caller must run the verifier and PutVerdict.
func (c *Cache) Verdict(k Key) (*verify.Verdict, bool) {
	if c == nil {
		return nil, false
	}
	c.verdictMu.RLock()
	v, ok := c.verdictMem[k]
	c.verdictMu.RUnlock()
	if ok {
		c.verdictHits.Add(1)
		return v, true
	}
	if c.verdicts != nil {
		if v, ok := c.verdicts.GetVerdict(k); ok {
			c.memoizeVerdict(k, v)
			c.verdictHits.Add(1)
			return v, true
		}
	}
	c.verdictMisses.Add(1)
	return nil, false
}

// PutVerdict records the verdict at both tiers. Like artifact writes, a
// failed persistent write never fails the compile it serves.
func (c *Cache) PutVerdict(k Key, v *verify.Verdict) {
	if c == nil || v == nil {
		return
	}
	c.memoizeVerdict(k, v)
	if c.verdicts != nil {
		_ = c.verdicts.PutVerdict(k, v)
	}
}

func (c *Cache) memoizeVerdict(k Key, v *verify.Verdict) {
	c.verdictMu.Lock()
	if len(c.verdictMem) >= verdictMemCap {
		c.verdictMem = make(map[Key]*verify.Verdict)
	}
	c.verdictMem[k] = v
	c.verdictMu.Unlock()
}

// Source identifies where GetOrCompute served a result from.
type Source uint8

// GetOrCompute serve sources.
const (
	// SourceCompile is a cold compile actually executed by this call.
	SourceCompile Source = iota
	// SourceMemory is a first-level (in-memory) cache hit.
	SourceMemory
	// SourceL2 is a second-level (disk store) hit, promoted into memory.
	SourceL2
	// SourceInflight is a result shared from a concurrent identical
	// compile (singleflight dedup).
	SourceInflight
)

// String names the source for logs and tests.
func (s Source) String() string {
	switch s {
	case SourceCompile:
		return "compile"
	case SourceMemory:
		return "memory"
	case SourceL2:
		return "l2"
	case SourceInflight:
		return "inflight"
	default:
		return "?"
	}
}

// peek is Get without counter or recency side effects; the singleflight
// leader uses it to re-check the memory level after winning the flight
// (a racing leader may have populated the key between the caller's miss
// and this flight's start).
func (c *Cache) peek(k Key) (*eval.FunctionResult, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.m[k]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return el.Value.(*lruItem).entry.Result, true
}

// GetOrCompute is the cache's full lookup path: memory, then the L2 store,
// then compute — with singleflight coalescing, so N concurrent identical
// requests execute compute exactly once and the rest share the leader's
// result (or error). Errors are never cached at either level; every waiter
// of a failed flight receives the leader's error. A nil cache degenerates
// to calling compute directly.
func (c *Cache) GetOrCompute(k Key, compute func() (*eval.FunctionResult, error)) (*eval.FunctionResult, Source, error) {
	if c == nil {
		fr, err := compute()
		return fr, SourceCompile, err
	}
	if e, ok := c.Get(k); ok {
		return e.Result, SourceMemory, nil
	}
	c.flightMu.Lock()
	if f, ok := c.inflight[k]; ok {
		c.flightMu.Unlock()
		c.dedups.Add(1)
		<-f.done
		return f.res, SourceInflight, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[k] = f
	c.flightMu.Unlock()
	defer func() {
		c.flightMu.Lock()
		delete(c.inflight, k)
		c.flightMu.Unlock()
		close(f.done)
	}()
	if fr, ok := c.peek(k); ok {
		f.res = fr
		return fr, SourceMemory, nil
	}
	if c.l2 != nil {
		if fr, ok := c.l2.Get(k); ok {
			c.Put(k, NewEntry(fr))
			f.res = fr
			return fr, SourceL2, nil
		}
	}
	fr, err := compute()
	if err != nil {
		f.err = err
		return nil, SourceCompile, err
	}
	c.Put(k, NewEntry(fr))
	if c.l2 != nil {
		// Write-through; a failed disk write is the store's problem (it
		// counts write errors), not the compile's.
		_ = c.l2.Put(k, fr)
	}
	f.res = fr
	return fr, SourceCompile, nil
}

// Register exposes the cache counters on reg under prefix (for the daemon,
// "treegiond"), reporting hits, misses, evictions and residency through the
// same registry as the rest of the compile path.
func (c *Cache) Register(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"_cache_hits_total", "Compiles served from the result cache.", c.hits.Load)
	reg.CounterFunc(prefix+"_cache_misses_total", "Cache lookups that required a compile.", c.misses.Load)
	reg.CounterFunc(prefix+"_cache_evictions_total", "Entries evicted under the byte budget.", c.evictions.Load)
	reg.GaugeFunc(prefix+"_cache_entries", "Resident cache entries.", c.entries.Load)
	reg.GaugeFunc(prefix+"_cache_bytes", "Estimated resident cache bytes.", c.bytes.Load)
	reg.GaugeFunc(prefix+"_cache_budget_bytes", "Configured cache byte budget.", func() int64 {
		return c.shardBudget * numShards
	})
	reg.CounterFunc(prefix+"_compcache_inflight_dedup_total",
		"Concurrent identical compiles coalesced onto one in-flight compile.", c.dedups.Load)
	reg.CounterFunc(prefix+"_cache_verdict_hits_total",
		"Verification verdicts served from cache.", c.verdictHits.Load)
	reg.CounterFunc(prefix+"_cache_verdict_misses_total",
		"Verdict lookups that required a verifier run.", c.verdictMisses.Load)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Entries:        c.entries.Load(),
		Bytes:          c.bytes.Load(),
		Budget:         c.shardBudget * numShards,
		InflightDedups: c.dedups.Load(),
		VerdictHits:    c.verdictHits.Load(),
		VerdictMisses:  c.verdictMisses.Load(),
	}
}
