package compcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treegion/internal/eval"
)

// TestConcurrentIdenticalCompilesCoalesce proves the singleflight
// guarantee: N concurrent GetOrCompute calls for one key execute the
// compute exactly once, everyone gets the same result, and the dedup
// counter records the N-1 followers.
func TestConcurrentIdenticalCompilesCoalesce(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(64 << 20)
	k := KeyOf(fnText, profText, cfg.Fingerprint())

	const n = 16
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() (*eval.FunctionResult, error) {
		computes.Add(1)
		<-release // hold the flight open until all followers have piled on
		return fr, nil
	}

	results := make([]*eval.FunctionResult, n)
	sources := make([]Source, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, src, err := c.GetOrCompute(k, compute)
			if err != nil {
				t.Error(err)
			}
			results[i], sources[i] = res, src
		}(i)
	}
	// Wait until every follower is parked on the leader's flight.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().InflightDedups < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined the flight", c.Stats().InflightDedups)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != fr {
			t.Fatalf("caller %d got a different result", i)
		}
		if sources[i] == SourceCompile {
			leaders++
		} else if sources[i] != SourceInflight {
			t.Fatalf("caller %d source %v", i, sources[i])
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if d := c.Stats().InflightDedups; d != n-1 {
		t.Fatalf("dedup counter %d, want %d", d, n-1)
	}
	// The flight is gone; the next lookup is a plain memory hit.
	if _, src, err := c.GetOrCompute(k, func() (*eval.FunctionResult, error) {
		t.Fatal("recompute after flight landed")
		return nil, nil
	}); err != nil || src != SourceMemory {
		t.Fatalf("post-flight lookup: src=%v err=%v", src, err)
	}
}

// TestDistinctKeyedFlightsAreDistinct proves that compiles under different
// keys never coalesce: each distinct key runs its own compute, only
// identical keys share a flight. (Verified and plain compiles of one
// function share a single key — and therefore a single flight — since the
// verdict cache made the "/verified" key split obsolete.)
func TestDistinctKeyedFlightsAreDistinct(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(64 << 20)
	plain := KeyOf(fnText, profText, cfg.Fingerprint())
	verified := KeyOf(fnText, profText, cfg.Fingerprint()+"+issue16")
	if plain == verified {
		t.Fatal("distinct keys collided")
	}

	const n = 8
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() (*eval.FunctionResult, error) {
		computes.Add(1)
		<-release
		return fr, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		k := plain
		if i%2 == 1 {
			k = verified
		}
		wg.Add(1)
		go func(k Key) {
			defer wg.Done()
			if _, _, err := c.GetOrCompute(k, compute); err != nil {
				t.Error(err)
			}
		}(k)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().InflightDedups < n-2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined", c.Stats().InflightDedups)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	// One compute per distinct key: the verified population never rode the
	// unverified flight or vice versa.
	if got := computes.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (one per key)", got)
	}
	if d := c.Stats().InflightDedups; d != n-2 {
		t.Fatalf("dedup counter %d, want %d", d, n-2)
	}
}

// TestFlightErrorIsSharedAndNotCached: a failing compute propagates its
// error to every coalesced caller and leaves nothing in the cache, so the
// next request retries.
func TestFlightErrorIsSharedAndNotCached(t *testing.T) {
	c := New(1 << 20)
	k := KeyOf("f", "p", "cfg")
	boom := errors.New("boom")

	const n = 4
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompute(k, func() (*eval.FunctionResult, error) {
				computes.Add(1)
				<-release
				return nil, boom
			})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().InflightDedups < n-1 {
		if time.Now().After(deadline) {
			t.Fatal("followers never joined")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times", computes.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d error %v", i, err)
		}
	}
	// The failure was not cached: a fresh call computes again.
	var again atomic.Int64
	if _, src, err := c.GetOrCompute(k, func() (*eval.FunctionResult, error) {
		again.Add(1)
		return nil, boom
	}); err == nil || src != SourceCompile || again.Load() != 1 {
		t.Fatal("failed flight left state behind")
	}
}

// fakeL2 is an in-memory L2 for tier-order tests.
type fakeL2 struct {
	mu   sync.Mutex
	m    map[Key]*eval.FunctionResult
	gets int
	puts int
}

func (f *fakeL2) Get(k Key) (*eval.FunctionResult, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	fr, ok := f.m[k]
	return fr, ok
}

func (f *fakeL2) Put(k Key, fr *eval.FunctionResult) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.m[k] = fr
	return nil
}

// TestTieredLookupOrder: memory first, then L2, then compute; cold
// compiles write through to both tiers, and an L2 hit is promoted to
// memory so the next lookup never touches disk.
func TestTieredLookupOrder(t *testing.T) {
	fnText, profText, cfg, fr := compiled(t)
	c := New(64 << 20)
	l2 := &fakeL2{m: make(map[Key]*eval.FunctionResult)}
	c.SetL2(l2)
	k := KeyOf(fnText, profText, cfg.Fingerprint())

	// Cold: compute runs, both tiers are populated.
	_, src, err := c.GetOrCompute(k, func() (*eval.FunctionResult, error) { return fr, nil })
	if err != nil || src != SourceCompile {
		t.Fatalf("cold: src=%v err=%v", src, err)
	}
	if l2.puts != 1 {
		t.Fatalf("cold compile did not write through to L2 (%d puts)", l2.puts)
	}
	// Warm: memory answers; the L2 is not consulted.
	gets := l2.gets
	if _, src, _ = c.GetOrCompute(k, nil); src != SourceMemory {
		t.Fatalf("warm memory: src=%v", src)
	}
	if l2.gets != gets {
		t.Fatal("memory hit touched the L2")
	}
	// Evict memory (fresh cache, same L2): the disk tier answers and the
	// entry is promoted.
	c2 := New(64 << 20)
	c2.SetL2(l2)
	if _, src, _ = c2.GetOrCompute(k, func() (*eval.FunctionResult, error) {
		t.Fatal("compute despite L2 entry")
		return nil, nil
	}); src != SourceL2 {
		t.Fatalf("L2 tier: src=%v", src)
	}
	if _, src, _ = c2.GetOrCompute(k, nil); src != SourceMemory {
		t.Fatalf("promotion failed: src=%v", src)
	}
}
