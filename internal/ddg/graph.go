// Package ddg builds the data dependence graph the treegion scheduler list
// schedules (step 1 of the paper's Fig. 3 algorithm). Building the graph
// also performs the paper's two enabling transformations:
//
//   - compile-time register renaming, so speculation above branches cannot
//     clobber values live on other paths (Section 3);
//   - dominator-parallelism merging, which replaces a complete set of
//     tail-duplicated identical Ops with one Op homed at their common
//     dominator (Section 4).
//
// Edge latencies encode both data and control legality:
//
//	flow (def→use)          latency of the producer
//	anti (use→def)          0 (write may share the reader's cycle)
//	output (def→def)        1
//	memory ordering         0 (PlayDoh: a store and dependent memory ops may
//	                           share a cycle; loads never bypass stores)
//	op → own block branch   0 (every op issues no later than its exits)
//	parent br → child br    0 (predicated branches may share a cycle)
//	ancestor br → non-spec  1 (stores/copies/calls wait for control)
//	arm i → arm i+1         0 (multiway arms keep their priority order)
//
// Speculatable ops get no control edges at all: the list scheduler is free
// to hoist them to the top of the region, which is exactly the paper's
// speculation mechanism.
//
// The graph is slab-allocated: all Nodes live in one array, all edges in two
// (successor and predecessor sides), and per-op lookups go through dense
// op-ID tables instead of pointer-keyed maps. Edges are accumulated as flat
// (from, to) records during the build and installed in one counting-sort
// pass that preserves insertion order, which downstream consumers (verifier,
// store serialization) iterate and therefore must be deterministic.
package ddg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// EdgeKind classifies a dependence edge. The scheduler treats every kind
// identically (a minimum issue distance); the verifier uses the kind to map
// a violated edge to the legality rule it encodes.
type EdgeKind uint8

const (
	// EdgeData is a register dependence: flow, anti or output.
	EdgeData EdgeKind = iota
	// EdgeMem is serialized memory ordering (loads never bypass stores).
	EdgeMem
	// EdgeControl orders terminators and pins non-speculatable ops inside
	// their control window (resolver → op, op → own exits, arm order).
	EdgeControl
	// EdgeLive orders a value producer before a region exit whose target
	// still needs the value (downward-code-motion limit).
	EdgeLive
)

// String names the kind as shown in verifier diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeMem:
		return "mem"
	case EdgeControl:
		return "control"
	case EdgeLive:
		return "live-exit"
	default:
		return "?"
	}
}

// Edge is a dependence with a minimum issue-distance in cycles.
type Edge struct {
	To      *Node
	Latency int
	Kind    EdgeKind
}

// InEdge mirrors Edge from the consumer side.
type InEdge struct {
	From    *Node
	Latency int
	Kind    EdgeKind
}

// Node is one schedulable op.
type Node struct {
	Index int
	Op    *ir.Op
	// Home is the block whose path the op belongs to. For ops merged by
	// dominator parallelism this is the common dominator, not the block the
	// op physically sits in.
	Home ir.BlockID
	// Term marks terminators: branches and Ret.
	Term bool
	// Spec marks ops the scheduler may hoist above branches.
	Spec bool

	Succs []Edge
	Preds []InEdge

	// Static priority inputs (Section 3 heuristics).
	Height    int
	ExitCount int
	Weight    float64
}

// IsCopy reports whether the node is a renaming compensation copy, which
// the paper excludes from speedup accounting.
func (n *Node) IsCopy() bool { return n.Op.Opcode == ir.Copy }

// Graph is the dependence graph of one region.
type Graph struct {
	Fn     *ir.Function
	Region *region.Region
	Nodes  []*Node

	// byID maps op.ID → node index + 1 (0 = no node). Op IDs are dense per
	// function, so this replaces the old map[*ir.Op]*Node. It is built
	// lazily on the first NodeOf: the table costs OpIDBound entries per
	// graph, and most graphs — every one revived from the artifact store,
	// for a start — never take a NodeOf lookup at all. The hand-rolled
	// double-checked guard (rather than sync.Once) keeps NodeOf's fast path
	// allocation-free: a method-value closure per call would dwarf the
	// lookup itself in the simulator's inner loop.
	indexed atomic.Bool
	indexMu sync.Mutex
	byID    []int32

	// Transformation statistics.
	NumRenamed int // ops whose destination was renamed
	NumCopies  int // compensation copies inserted
	NumMerged  int // duplicate ops eliminated by dominator parallelism
}

// NodeOf returns the node for op, or nil (eliminated or foreign op). The
// identity check guards against an op from a different function whose dense
// ID happens to collide. Safe for concurrent use once the graph is built.
func (g *Graph) NodeOf(op *ir.Op) *Node {
	if !g.indexed.Load() {
		g.indexMu.Lock()
		if !g.indexed.Load() {
			g.indexNodes()
			g.indexed.Store(true)
		}
		g.indexMu.Unlock()
	}
	if op == nil || op.ID < 0 || op.ID >= len(g.byID) {
		return nil
	}
	k := g.byID[op.ID]
	if k == 0 {
		return nil
	}
	if n := g.Nodes[k-1]; n.Op == op {
		return n
	}
	return nil
}

// indexNodes builds the dense op-ID lookup from g.Nodes. Only the NodeOf
// guard may call it; Nodes must not change afterwards.
func (g *Graph) indexNodes() {
	bound := g.Fn.OpIDBound()
	g.byID = make([]int32, bound)
	for i, n := range g.Nodes {
		if n.Op.ID >= 0 && n.Op.ID < bound {
			g.byID[n.Op.ID] = int32(i + 1)
		}
	}
}

// edgeRec is one pending dependence edge, by node index. Edges are recorded
// flat during the build and installed into slab-backed adjacency lists by
// installEdges.
type edgeRec struct {
	from, to int32
	lat      int32
	kind     EdgeKind
}

// installEdges materializes recs into per-node Succs/Preds slices carved
// from two backing slabs. A counting pass sizes each node's lists, then a
// stable fill preserves record order within every list — the same order the
// old per-edge appends produced. sc, when non-nil, supplies the counting
// buffers; the edge slabs are always fresh (they escape into the nodes).
func installEdges(nodes []*Node, recs []edgeRec, sc *Scratch) {
	n := len(nodes)
	var outCnt, inCnt []int32
	if sc != nil {
		sc.outCnt = growClear(sc.outCnt, n)
		sc.inCnt = growClear(sc.inCnt, n)
		outCnt, inCnt = sc.outCnt, sc.inCnt
	} else {
		outCnt = make([]int32, n)
		inCnt = make([]int32, n)
	}
	for _, e := range recs {
		outCnt[e.from]++
		inCnt[e.to]++
	}
	succSlab := make([]Edge, len(recs))
	predSlab := make([]InEdge, len(recs))
	so, po := 0, 0
	for i, nd := range nodes {
		nd.Succs = succSlab[so : so : so+int(outCnt[i])]
		nd.Preds = predSlab[po : po : po+int(inCnt[i])]
		so += int(outCnt[i])
		po += int(inCnt[i])
	}
	for _, e := range recs {
		f, t := nodes[e.from], nodes[e.to]
		f.Succs = append(f.Succs, Edge{To: t, Latency: int(e.lat), Kind: e.kind})
		t.Preds = append(t.Preds, InEdge{From: f, Latency: int(e.lat), Kind: e.kind})
	}
}

// Options configures Build.
type Options struct {
	// Rename enables compile-time register renaming (paper default: on).
	Rename bool
	// DominatorParallelism enables duplicate merging (Section 4).
	DominatorParallelism bool
	// Liveness must cover the current function when Rename or
	// DominatorParallelism is set.
	Liveness *cfg.Liveness
	// Profile supplies node weights for the profile-driven heuristics; nil
	// means all weights zero.
	Profile *profile.Data
}

// DefaultOptions returns the paper's configuration for plain treegion
// scheduling (renaming on, dominator parallelism off — the latter is enabled
// for the tail-duplication experiments).
func DefaultOptions(lv *cfg.Liveness, prof *profile.Data) Options {
	return Options{Rename: true, Liveness: lv, Profile: prof}
}

// Build constructs the DDG for r. It may mutate the function: renaming
// rewrites destination/source registers inside the region and inserts Copy
// ops. Each region must therefore be built at most once per compiled
// function instance.
func Build(fn *ir.Function, r *region.Region, opts Options) (*Graph, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return BuildScratch(fn, r, opts, sc)
}

// scratchPool recycles builder scratch across Build calls, so callers
// without a worker-owned Scratch still reuse the dense tables instead of
// reallocating them per region (mirrors sched.ListSchedule's pool).
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// BuildScratch is Build drawing every non-escaping table and buffer from a
// caller-owned Scratch (nil allocates fresh, exactly as Build). Workers that
// build many DDGs back to back reuse one Scratch across all of them.
func BuildScratch(fn *ir.Function, r *region.Region, opts Options, sc *Scratch) (*Graph, error) {
	g := &Graph{Fn: fn, Region: r}
	bound := fn.OpIDBound()
	//vet:ignore arenaescape the builder borrows sc for exactly one Build; release() below hands every buffer back before return
	b := &builder{g: g, opts: opts, sc: sc}
	//vet:ignore arenaescape borrowed buffers flow back to sc via release() on every exit path of this function
	if sc != nil {
		b.home = grow(sc.home, bound)
		b.gone = growClear(sc.gone, bound)
		b.recs = sc.recs[:0]
		b.succBuf = sc.succBuf
		b.subtreeBuf = sc.subtreeBuf
	} else {
		b.home = make([]ir.BlockID, bound)
		b.gone = make([]bool, bound)
	}
	for i := range b.home {
		b.home[i] = ir.NoBlock
	}
	if opts.DominatorParallelism {
		if opts.Liveness == nil {
			return nil, fmt.Errorf("ddg: dominator parallelism requires liveness")
		}
		b.mergeDominatorParallel()
	}
	if opts.Rename {
		if opts.Liveness == nil {
			return nil, fmt.Errorf("ddg: renaming requires liveness")
		}
		b.buildDefBits()
		b.rename()
	} else if opts.Liveness != nil {
		// Restricted speculation (IMPACT-style superblock scheduling): with
		// no compile-time renaming, an op whose destination is live on some
		// other path must not be hoisted above the diverging branch — pin it.
		b.buildDefBits()
		b.pinConflicting()
	}
	b.buildEffective()
	b.makeNodes()
	// Presize the edge-record slab from the node count: the suite and both
	// stress tiers measure at most ~2.8 dependence records per node, so 3n
	// capacity absorbs the whole build without a growth chain. A scratch
	// keeps whatever larger capacity earlier builds reached.
	if est := 3 * len(g.Nodes); cap(b.recs) < est {
		b.recs = make([]edgeRec, 0, est)
	}
	b.dataEdges()
	b.controlEdges()
	installEdges(g.Nodes, b.recs, sc)
	b.attributes()
	if sc != nil {
		sc.release(b)
	}
	return g, nil
}

// blkRange locates one block's nodes inside Graph.Nodes: body ops occupy
// [start, term), terminators [term, end). Nodes are created per block in
// effective order, so every block's nodes are contiguous.
type blkRange struct {
	start, term, end int32
}

type builder struct {
	g    *Graph
	opts Options
	// sc, when non-nil, supplies every non-escaping table below; Build
	// stores the (possibly regrown) buffers back on exit.
	sc *Scratch
	// Dense per-op tables indexed by op.ID, sized to the bound at builder
	// creation. Ops minted later (renaming copies) are never gone, moved or
	// pinned, so the bounds-checked accessors report false for them.
	home   []ir.BlockID // override block of dominator-merged reps; NoBlock = unmoved
	gone   []bool       // duplicate ops eliminated by dominator parallelism
	pinned []bool       // ops that must not speculate above their block
	// moved lists merged representatives homed at each dominator block.
	moved map[ir.BlockID][]*ir.Op

	// Post-transform caches, built by buildEffective/makeNodes.
	effSlab []*ir.Op   // effective op sequences, all blocks back to back
	effOf   []blkRange // effective-op range per BlockID (into effSlab)
	nodeOf  []blkRange // node range per BlockID (into g.Nodes)

	// recs accumulates edges for installEdges.
	recs []edgeRec

	// Per-block def bitsets over regs (snapshot after dominator merging),
	// used by conflictsOffPath during rename/pinning. Built by buildDefBits;
	// nil during dominator merging, whose incremental gone-marking would
	// invalidate a prebuilt table (there conflictsOffPath scans ops instead).
	regs    ir.RegIndex
	defBits []uint64
	defNW   int

	// Reusable scratch.
	succBuf    []ir.BlockID
	subtreeBuf []ir.BlockID
}

func (b *builder) isGone(op *ir.Op) bool {
	return op.ID < len(b.gone) && b.gone[op.ID]
}

func (b *builder) isPinned(op *ir.Op) bool {
	return b.pinned != nil && op.ID < len(b.pinned) && b.pinned[op.ID]
}

func (b *builder) setPinned(op *ir.Op) {
	if b.pinned == nil {
		if b.sc != nil {
			b.pinned = growClear(b.sc.pinned, len(b.gone))
		} else {
			b.pinned = make([]bool, len(b.gone))
		}
	}
	if op.ID < len(b.pinned) {
		b.pinned[op.ID] = true
	}
}

// homeOf returns the override home of a dominator-merged representative.
func (b *builder) homeOf(op *ir.Op) (ir.BlockID, bool) {
	if op.ID < len(b.home) && b.home[op.ID] != ir.NoBlock {
		return b.home[op.ID], true
	}
	return ir.NoBlock, false
}

// appendEffective writes block bid's effective op sequence — the scheduler's
// view: surviving non-branch ops physically here, then merged
// representatives homed here, then the block's branch/Ret ops — onto dst,
// returning the extended slice and the body length (ops before the first
// terminator).
func (b *builder) appendEffective(dst []*ir.Op, bid ir.BlockID) ([]*ir.Op, int) {
	blk := b.g.Fn.Block(bid)
	base := len(dst)
	for _, op := range blk.Ops {
		if b.isGone(op) {
			continue
		}
		if home, moved := b.homeOf(op); moved && home != bid {
			continue
		}
		if op.IsBranch() || op.Opcode == ir.Ret {
			continue
		}
		dst = append(dst, op)
	}
	dst = append(dst, b.moved[bid]...)
	body := len(dst) - base
	for _, op := range blk.Ops {
		if b.isGone(op) {
			continue
		}
		if home, moved := b.homeOf(op); moved && home != bid {
			continue
		}
		if op.IsBranch() || op.Opcode == ir.Ret {
			dst = append(dst, op)
		}
	}
	return dst, body
}

// buildEffective caches every member block's effective op sequence in one
// backing slab. It runs after all transforms (merging, renaming) so the
// sequences are final.
func (b *builder) buildEffective() {
	r := b.g.Region
	total := 0
	for _, bid := range r.Blocks {
		total += len(b.g.Fn.Block(bid).Ops) + len(b.moved[bid])
	}
	if b.sc != nil {
		b.effOf = growClear(b.sc.effOf, len(b.g.Fn.Blocks))
		if cap(b.sc.effSlab) < total {
			b.sc.effSlab = make([]*ir.Op, 0, total)
		}
		b.effSlab = b.sc.effSlab[:0]
	} else {
		b.effOf = make([]blkRange, len(b.g.Fn.Blocks))
		b.effSlab = make([]*ir.Op, 0, total)
	}
	for _, bid := range r.Blocks {
		start := len(b.effSlab)
		var body int
		b.effSlab, body = b.appendEffective(b.effSlab, bid)
		b.effOf[bid] = blkRange{
			start: int32(start),
			term:  int32(start + body),
			end:   int32(len(b.effSlab)),
		}
	}
}

// effectiveOps returns the cached effective op sequence for block bid.
func (b *builder) effectiveOps(bid ir.BlockID) []*ir.Op {
	r := b.effOf[bid]
	return b.effSlab[r.start:r.end]
}

// bodyNodes and termNodes return block bid's non-terminator and terminator
// nodes; valid after makeNodes.
func (b *builder) bodyNodes(bid ir.BlockID) []*Node {
	r := b.nodeOf[bid]
	return b.g.Nodes[r.start:r.term]
}

func (b *builder) termNodes(bid ir.BlockID) []*Node {
	r := b.nodeOf[bid]
	return b.g.Nodes[r.term:r.end]
}

func (b *builder) blockNodes(bid ir.BlockID) []*Node {
	r := b.nodeOf[bid]
	return b.g.Nodes[r.start:r.end]
}

// makeNodes creates a node per surviving op, in region preorder, physical
// order within blocks. This order is topological for every edge kind the
// builder creates, which the attribute pass relies on. All nodes live in one
// slab; per-block ranges are recorded for the edge passes.
func (b *builder) makeNodes() {
	g := b.g
	// The Node slab and the Nodes index escape into the Graph; they are
	// always fresh even under a Scratch.
	slab := make([]Node, len(b.effSlab))
	g.Nodes = make([]*Node, 0, len(slab))
	if b.sc != nil {
		b.nodeOf = growClear(b.sc.nodeOf, len(g.Fn.Blocks))
	} else {
		b.nodeOf = make([]blkRange, len(g.Fn.Blocks))
	}
	for _, bid := range g.Region.Blocks {
		er := b.effOf[bid]
		nr := blkRange{
			start: int32(len(g.Nodes)),
			term:  int32(len(g.Nodes)) + (er.term - er.start),
			end:   int32(len(g.Nodes)) + (er.end - er.start),
		}
		for _, op := range b.effSlab[er.start:er.end] {
			n := &slab[len(g.Nodes)]
			n.Index = len(g.Nodes)
			n.Op = op
			n.Home = bid
			n.Term = op.IsBranch() || op.Opcode == ir.Ret
			n.Spec = op.Opcode.Speculatable() && !b.isPinned(op)
			g.Nodes = append(g.Nodes, n)
		}
		b.nodeOf[bid] = nr
	}
}

// addEdge records from→to unless it would self-loop; duplicate edges are
// harmless (the scheduler takes the max).
func (b *builder) addEdge(from, to *Node, lat int, kind EdgeKind) {
	if from == nil || to == nil || from == to {
		return
	}
	b.recs = append(b.recs, edgeRec{
		from: int32(from.Index),
		to:   int32(to.Index),
		lat:  int32(lat),
		kind: kind,
	})
}

// attributes computes height, exit count and weight for every node.
func (b *builder) attributes() {
	g := b.g
	// Heights: nodes are in topological order, so one reverse sweep works.
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		h := 0
		for _, e := range n.Succs {
			if v := e.Latency + e.To.Height; v > h {
				h = v
			}
		}
		n.Height = h
	}
	exits := g.Region.ExitsBelow()
	for _, n := range g.Nodes {
		n.ExitCount = exits[n.Home]
		if b.opts.Profile != nil {
			n.Weight = b.opts.Profile.BlockWeight(n.Home)
		}
	}
}

// appendSubtree appends bid and all in-region descendants, preorder, to dst.
func (b *builder) appendSubtree(dst []ir.BlockID, bid ir.BlockID) []ir.BlockID {
	base := len(dst)
	dst = append(dst, bid)
	for i := base; i < len(dst); i++ {
		dst = append(dst, b.g.Region.Children(dst[i])...)
	}
	return dst
}
