// Package ddg builds the data dependence graph the treegion scheduler list
// schedules (step 1 of the paper's Fig. 3 algorithm). Building the graph
// also performs the paper's two enabling transformations:
//
//   - compile-time register renaming, so speculation above branches cannot
//     clobber values live on other paths (Section 3);
//   - dominator-parallelism merging, which replaces a complete set of
//     tail-duplicated identical Ops with one Op homed at their common
//     dominator (Section 4).
//
// Edge latencies encode both data and control legality:
//
//	flow (def→use)          latency of the producer
//	anti (use→def)          0 (write may share the reader's cycle)
//	output (def→def)        1
//	memory ordering         0 (PlayDoh: a store and dependent memory ops may
//	                           share a cycle; loads never bypass stores)
//	op → own block branch   0 (every op issues no later than its exits)
//	parent br → child br    0 (predicated branches may share a cycle)
//	ancestor br → non-spec  1 (stores/copies/calls wait for control)
//	arm i → arm i+1         0 (multiway arms keep their priority order)
//
// Speculatable ops get no control edges at all: the list scheduler is free
// to hoist them to the top of the region, which is exactly the paper's
// speculation mechanism.
package ddg

import (
	"fmt"

	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// EdgeKind classifies a dependence edge. The scheduler treats every kind
// identically (a minimum issue distance); the verifier uses the kind to map
// a violated edge to the legality rule it encodes.
type EdgeKind uint8

const (
	// EdgeData is a register dependence: flow, anti or output.
	EdgeData EdgeKind = iota
	// EdgeMem is serialized memory ordering (loads never bypass stores).
	EdgeMem
	// EdgeControl orders terminators and pins non-speculatable ops inside
	// their control window (resolver → op, op → own exits, arm order).
	EdgeControl
	// EdgeLive orders a value producer before a region exit whose target
	// still needs the value (downward-code-motion limit).
	EdgeLive
)

// String names the kind as shown in verifier diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeMem:
		return "mem"
	case EdgeControl:
		return "control"
	case EdgeLive:
		return "live-exit"
	default:
		return "?"
	}
}

// Edge is a dependence with a minimum issue-distance in cycles.
type Edge struct {
	To      *Node
	Latency int
	Kind    EdgeKind
}

// InEdge mirrors Edge from the consumer side.
type InEdge struct {
	From    *Node
	Latency int
	Kind    EdgeKind
}

// Node is one schedulable op.
type Node struct {
	Index int
	Op    *ir.Op
	// Home is the block whose path the op belongs to. For ops merged by
	// dominator parallelism this is the common dominator, not the block the
	// op physically sits in.
	Home ir.BlockID
	// Term marks terminators: branches and Ret.
	Term bool
	// Spec marks ops the scheduler may hoist above branches.
	Spec bool

	Succs []Edge
	Preds []InEdge

	// Static priority inputs (Section 3 heuristics).
	Height    int
	ExitCount int
	Weight    float64
}

// IsCopy reports whether the node is a renaming compensation copy, which
// the paper excludes from speedup accounting.
func (n *Node) IsCopy() bool { return n.Op.Opcode == ir.Copy }

// Graph is the dependence graph of one region.
type Graph struct {
	Fn     *ir.Function
	Region *region.Region
	Nodes  []*Node

	byOp map[*ir.Op]*Node

	// Transformation statistics.
	NumRenamed int // ops whose destination was renamed
	NumCopies  int // compensation copies inserted
	NumMerged  int // duplicate ops eliminated by dominator parallelism
}

// NodeOf returns the node for op, or nil (eliminated or foreign op).
func (g *Graph) NodeOf(op *ir.Op) *Node { return g.byOp[op] }

// Options configures Build.
type Options struct {
	// Rename enables compile-time register renaming (paper default: on).
	Rename bool
	// DominatorParallelism enables duplicate merging (Section 4).
	DominatorParallelism bool
	// Liveness must cover the current function when Rename or
	// DominatorParallelism is set.
	Liveness *cfg.Liveness
	// Profile supplies node weights for the profile-driven heuristics; nil
	// means all weights zero.
	Profile *profile.Data
}

// DefaultOptions returns the paper's configuration for plain treegion
// scheduling (renaming on, dominator parallelism off — the latter is enabled
// for the tail-duplication experiments).
func DefaultOptions(lv *cfg.Liveness, prof *profile.Data) Options {
	return Options{Rename: true, Liveness: lv, Profile: prof}
}

// Build constructs the DDG for r. It may mutate the function: renaming
// rewrites destination/source registers inside the region and inserts Copy
// ops. Each region must therefore be built at most once per compiled
// function instance.
func Build(fn *ir.Function, r *region.Region, opts Options) (*Graph, error) {
	g := &Graph{
		Fn:     fn,
		Region: r,
		byOp:   make(map[*ir.Op]*Node),
	}
	b := &builder{g: g, opts: opts, home: make(map[*ir.Op]ir.BlockID), gone: make(map[*ir.Op]bool)}
	if opts.DominatorParallelism {
		if opts.Liveness == nil {
			return nil, fmt.Errorf("ddg: dominator parallelism requires liveness")
		}
		b.mergeDominatorParallel()
	}
	if opts.Rename {
		if opts.Liveness == nil {
			return nil, fmt.Errorf("ddg: renaming requires liveness")
		}
		b.rename()
	} else if opts.Liveness != nil {
		// Restricted speculation (IMPACT-style superblock scheduling): with
		// no compile-time renaming, an op whose destination is live on some
		// other path must not be hoisted above the diverging branch — pin it.
		b.pinConflicting()
	}
	b.makeNodes()
	b.dataEdges()
	b.controlEdges()
	b.attributes()
	return g, nil
}

type builder struct {
	g    *Graph
	opts Options
	// home overrides the physical block of dominator-merged representatives.
	home map[*ir.Op]ir.BlockID
	// gone marks duplicate ops eliminated by dominator parallelism.
	gone map[*ir.Op]bool
	// pinned marks merged representatives that must not speculate above
	// their dominator (their destination conflicts higher up).
	pinned map[*ir.Op]bool
	// moved lists merged representatives homed at each dominator block.
	moved map[ir.BlockID][]*ir.Op
}

// effectiveOps returns the op sequence the scheduler sees for block b:
// the block's surviving non-branch ops, then merged representatives homed
// here, then the block's branch/Ret ops.
func (b *builder) effectiveOps(bid ir.BlockID) []*ir.Op {
	blk := b.g.Fn.Block(bid)
	var body, terms []*ir.Op
	for _, op := range blk.Ops {
		if b.gone[op] {
			continue
		}
		if home, moved := b.home[op]; moved && home != bid {
			continue
		}
		if op.IsBranch() || op.Opcode == ir.Ret {
			terms = append(terms, op)
		} else {
			body = append(body, op)
		}
	}
	for _, op := range b.moved[bid] {
		body = append(body, op)
	}
	return append(body, terms...)
}

// makeNodes creates a node per surviving op, in region preorder, physical
// order within blocks. This order is topological for every edge kind the
// builder creates, which the attribute pass relies on.
func (b *builder) makeNodes() {
	for _, bid := range b.g.Region.Blocks {
		for _, op := range b.effectiveOps(bid) {
			n := &Node{
				Index: len(b.g.Nodes),
				Op:    op,
				Home:  bid,
				Term:  op.IsBranch() || op.Opcode == ir.Ret,
				Spec:  op.Opcode.Speculatable() && !b.pinned[op],
			}
			b.g.Nodes = append(b.g.Nodes, n)
			b.g.byOp[op] = n
		}
	}
}

// addEdge links from→to unless it would self-loop; duplicate edges are
// harmless (the scheduler takes the max).
func addEdge(from, to *Node, lat int, kind EdgeKind) {
	if from == nil || to == nil || from == to {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to, Latency: lat, Kind: kind})
	to.Preds = append(to.Preds, InEdge{From: from, Latency: lat, Kind: kind})
}

// attributes computes height, exit count and weight for every node.
func (b *builder) attributes() {
	g := b.g
	// Heights: nodes are in topological order, so one reverse sweep works.
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		h := 0
		for _, e := range n.Succs {
			if v := e.Latency + e.To.Height; v > h {
				h = v
			}
		}
		n.Height = h
	}
	exits := g.Region.ExitsBelow()
	for _, n := range g.Nodes {
		n.ExitCount = exits[n.Home]
		if b.opts.Profile != nil {
			n.Weight = b.opts.Profile.BlockWeight(n.Home)
		}
	}
}
