package ddg

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
)

// simpleTree builds a two-path treegion:
//
//	bb0: r2 = LD [r0]; p0 = CMPP(r2 > r1); BRCT -> bb1; fall bb2
//	bb1: r3 = ADD r2, r1; ST [r0], r3        (then exit to bb3)
//	bb2: r3 = SUB r2, r1; ST [r0+8], r3      (then exit to bb3)
//	bb3: uses r3 (outside region)
func simpleTree(t *testing.T) (*ir.Function, *region.Region, *cfg.Liveness) {
	t.Helper()
	f := ir.NewFunction("simple")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0, r1, r2, r3 := ir.GPR(0), ir.GPR(1), ir.GPR(2), ir.GPR(3)
	for _, r := range []ir.Reg{r0, r1, r2, r3} {
		f.NoteReg(r)
	}
	p0 := f.NewReg(ir.ClassPred)
	f.EmitLd(b0, r2, r0, 0)
	f.EmitCmpp(b0, p0, ir.NoReg, ir.CondGT, r2, r1)
	f.EmitBrct(b0, ir.NoReg, p0, b1.ID, 0.5)
	b0.FallThrough = b2.ID
	f.EmitALU(b1, ir.Add, r3, r2, r1)
	f.EmitSt(b1, r0, 0, r3)
	b1.FallThrough = b3.ID
	f.EmitALU(b2, ir.Sub, r3, r2, r1)
	f.EmitSt(b2, r0, 8, r3)
	b2.FallThrough = b3.ID
	f.EmitALU(b3, ir.Xor, f.NewReg(ir.ClassGPR), r3, r1)
	f.EmitRet(b3)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := region.New(f, region.KindTreegion, b0.ID)
	r.Add(b1.ID, b0.ID)
	r.Add(b2.ID, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	return f, r, lv
}

func findNode(g *Graph, opc ir.Opcode, home ir.BlockID) *Node {
	for _, n := range g.Nodes {
		if n.Op.Opcode == opc && n.Home == home {
			return n
		}
	}
	return nil
}

func hasEdge(from, to *Node, lat int) bool {
	for _, e := range from.Succs {
		if e.To == to && e.Latency == lat {
			return true
		}
	}
	return false
}

func TestBuildFlowAndControlEdges(t *testing.T) {
	f, r, lv := simpleTree(t)
	_ = f
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	ld := findNode(g, ir.Ld, 0)
	cmpp := findNode(g, ir.Cmpp, 0)
	br := findNode(g, ir.Brct, 0)
	add := findNode(g, ir.Add, 1)
	st1 := findNode(g, ir.St, 1)
	if ld == nil || cmpp == nil || br == nil || add == nil || st1 == nil {
		t.Fatal("missing nodes")
	}
	// Load feeds the compare with latency 2.
	if !hasEdge(ld, cmpp, 2) {
		t.Error("missing LD->CMPP flow edge with load latency")
	}
	// Compare feeds the branch with latency 1.
	if !hasEdge(cmpp, br, 1) {
		t.Error("missing CMPP->BRCT flow edge")
	}
	// The branch to bb1 is an internal tree edge, so body ops that no exit
	// needs are free to sink past it (downward code motion): the load must
	// have no ordering edge to the branch beyond its data flow.
	if hasEdge(ld, br, 0) {
		t.Error("dead-at-exit op pinned above an internal branch")
	}
	// The ADD in bb1 is speculatable: it must have no edge from the branch.
	for _, e := range br.Succs {
		if e.To == add {
			t.Error("speculatable op pinned below branch")
		}
	}
	// The store is not: it waits a full cycle after the branch.
	if !hasEdge(br, st1, 1) {
		t.Error("store missing control-resolution edge")
	}
	if add.Spec == false || st1.Spec == true {
		t.Error("Spec flags wrong")
	}
}

func TestBuildRenamesConflictingDest(t *testing.T) {
	f, r, lv := simpleTree(t)
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	// r3 is defined on both arms and is live into bb3, so both (speculatable)
	// defs must be renamed, with copies restoring r3.
	if g.NumRenamed != 2 {
		t.Fatalf("NumRenamed = %d, want 2", g.NumRenamed)
	}
	if g.NumCopies != 2 {
		t.Fatalf("NumCopies = %d, want 2", g.NumCopies)
	}
	add := findNode(g, ir.Add, 1)
	if !add.Op.Renamed || add.Op.Dests[0] == ir.GPR(3) {
		t.Error("ADD dest not renamed")
	}
	// The store on the same path must read the fresh register directly.
	st1 := findNode(g, ir.St, 1)
	if st1.Op.Srcs[1] != add.Op.Dests[0] {
		t.Errorf("store reads %v, want renamed %v", st1.Op.Srcs[1], add.Op.Dests[0])
	}
	// A copy restoring r3 exists on each arm, homed in the arm.
	copies := 0
	for _, n := range g.Nodes {
		if n.IsCopy() {
			copies++
			if n.Op.Dests[0] != ir.GPR(3) {
				t.Errorf("copy restores %v, want r3", n.Op.Dests[0])
			}
			if n.Spec {
				t.Error("copies must not speculate")
			}
		}
	}
	if copies != 2 {
		t.Fatalf("found %d copy nodes, want 2", copies)
	}
	// The function must remain valid after the rewrite.
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoRenameWithoutConflict(t *testing.T) {
	// Single-path region: nothing lives off-path, so no renames.
	f := ir.NewFunction("line")
	b0, b1 := f.NewBlock(), f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	r1 := f.NewReg(ir.ClassGPR)
	f.EmitLd(b0, r1, r0, 0)
	b0.FallThrough = b1.ID
	f.EmitALU(b1, ir.Add, f.NewReg(ir.ClassGPR), r1, r0)
	f.EmitRet(b1)
	r := region.New(f, region.KindSLR, b0.ID)
	r.Add(b1.ID, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRenamed != 0 || g.NumCopies != 0 {
		t.Fatalf("renamed %d / copies %d on a conflict-free region", g.NumRenamed, g.NumCopies)
	}
}

func TestMemorySerialization(t *testing.T) {
	f := ir.NewFunction("mem")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	a := f.NewReg(ir.ClassGPR)
	c := f.NewReg(ir.ClassGPR)
	f.EmitLd(b0, a, r0, 0)     // ld1
	f.EmitSt(b0, r0, 8, a)     // st1: after ld1 (anti) and ld1 flow (a)
	f.EmitLd(b0, c, r0, 16)    // ld2: after st1
	f.EmitSt(b0, r0, 24, c)    // st2: after st1, ld2
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	var ld1, ld2, st1, st2 *Node
	for _, n := range g.Nodes {
		switch {
		case n.Op.Opcode == ir.Ld && n.Op.Imm == 0:
			ld1 = n
		case n.Op.Opcode == ir.Ld && n.Op.Imm == 16:
			ld2 = n
		case n.Op.Opcode == ir.St && n.Op.Imm == 8:
			st1 = n
		case n.Op.Opcode == ir.St && n.Op.Imm == 24:
			st2 = n
		}
	}
	if !hasEdge(ld1, st1, 0) {
		t.Error("missing ld->st ordering")
	}
	if !hasEdge(st1, ld2, 0) {
		t.Error("missing st->ld ordering (loads may not bypass stores)")
	}
	if !hasEdge(st1, st2, 0) {
		t.Error("missing st->st ordering")
	}
	_ = ld2
}

func TestAntiAndOutputDeps(t *testing.T) {
	f := ir.NewFunction("waw")
	b0 := f.NewBlock()
	r0, r1 := f.NewReg(ir.ClassGPR), f.NewReg(ir.ClassGPR)
	read := f.EmitALU(b0, ir.Add, r1, r0, r0)  // reads r0
	write := f.EmitMovI(b0, r0, 5)             // anti: read -> write
	write2 := f.EmitMovI(b0, r0, 6)            // output: write -> write2
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	nr, nw, nw2 := g.NodeOf(read), g.NodeOf(write), g.NodeOf(write2)
	if !hasEdge(nr, nw, 0) {
		t.Error("missing anti edge (lat 0)")
	}
	if !hasEdge(nw, nw2, 1) {
		t.Error("missing output edge (lat 1)")
	}
}

func TestSiblingPathsIndependent(t *testing.T) {
	// Defs on one arm must not create edges to the other arm.
	f, r, lv := simpleTree(t)
	_ = f
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	add := findNode(g, ir.Add, 1)
	sub := findNode(g, ir.Sub, 2)
	for _, e := range add.Succs {
		if e.To.Home == 2 {
			t.Errorf("cross-path edge %v -> %v", add.Op, e.To.Op)
		}
	}
	for _, e := range sub.Succs {
		if e.To.Home == 1 {
			t.Errorf("cross-path edge %v -> %v", sub.Op, e.To.Op)
		}
	}
	// Stores on different paths must not be memory-serialized either.
	st1 := findNode(g, ir.St, 1)
	st2 := findNode(g, ir.St, 2)
	if hasEdge(st1, st2, 0) || hasEdge(st2, st1, 0) {
		t.Error("sibling stores serialized")
	}
}

func TestHeights(t *testing.T) {
	f := ir.NewFunction("h")
	b0 := f.NewBlock()
	r0 := f.NewReg(ir.ClassGPR)
	a := f.NewReg(ir.ClassGPR)
	c := f.NewReg(ir.ClassGPR)
	ld := f.EmitLd(b0, a, r0, 0)
	add := f.EmitALU(b0, ir.Add, c, a, a)
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	nl, na := g.NodeOf(ld), g.NodeOf(add)
	// add -> ret lat 0 => height(add) >= 1 via... add has succ Ret (lat 0),
	// Ret height 0, so height(add) = max(0+0, ...) = 0? Our heights count
	// outgoing latency only: ld -> add lat 2 gives height(ld) = 2.
	if nl.Height < 2 {
		t.Errorf("height(LD) = %d, want >= 2", nl.Height)
	}
	if nl.Height <= na.Height {
		t.Errorf("height(LD)=%d must exceed height(ADD)=%d", nl.Height, na.Height)
	}
}

func TestExitCountAndWeightAttrs(t *testing.T) {
	f, r, lv := simpleTree(t)
	prof := profile.New()
	prof.AddBlock(0, 100)
	prof.AddBlock(1, 70)
	prof.AddBlock(2, 30)
	g, err := Build(f, r, Options{Rename: true, Liveness: lv, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	ld := findNode(g, ir.Ld, 0)
	add := findNode(g, ir.Add, 1)
	sub := findNode(g, ir.Sub, 2)
	if ld.ExitCount != 2 {
		t.Errorf("ExitCount(root op) = %d, want 2", ld.ExitCount)
	}
	if add.ExitCount != 1 || sub.ExitCount != 1 {
		t.Errorf("leaf exit counts = %d/%d, want 1/1", add.ExitCount, sub.ExitCount)
	}
	if ld.Weight != 100 || add.Weight != 70 || sub.Weight != 30 {
		t.Errorf("weights = %v/%v/%v", ld.Weight, add.Weight, sub.Weight)
	}
}

func TestTopologicalIndexOrder(t *testing.T) {
	f, r, lv := simpleTree(t)
	_ = f
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			if e.To.Index <= n.Index {
				t.Fatalf("edge %v -> %v goes backwards in index order", n.Op, e.To.Op)
			}
		}
	}
}
