package ddg

import (
	"treegion/internal/ir"
)

// opAt locates a physical op inside the region.
type opAt struct {
	op    *ir.Op
	block ir.BlockID
	pos   int // index within its block's op list
}

// mergeDominatorParallel finds complete sets of tail-duplicated identical
// ops whose sources reach their common dominator unchanged and replaces each
// set with one representative homed at the dominator (the paper's dominator
// parallelism, Section 4). Because any block in a treegion dominates all
// blocks below it, the tree LCA of the duplicates is that dominator.
func (b *builder) mergeDominatorParallel() {
	r := b.g.Region
	fn := b.g.Fn
	if b.sc != nil {
		b.moved = b.sc.movedMap()
	} else {
		b.moved = make(map[ir.BlockID][]*ir.Op)
	}

	// Group candidate ops by original identity.
	groups := make(map[int][]opAt)
	var order []int
	for _, bid := range r.Blocks {
		for pos, op := range fn.Block(bid).Ops {
			if op.IsBranch() || op.Opcode == ir.Ret || op.Opcode == ir.Copy {
				continue
			}
			if !op.Opcode.Speculatable() || len(op.Dests) == 0 {
				continue
			}
			if len(groups[op.Orig]) == 0 {
				order = append(order, op.Orig)
			}
			groups[op.Orig] = append(groups[op.Orig], opAt{op, bid, pos})
		}
	}

	for _, orig := range order {
		set := groups[orig]
		if len(set) < 2 || !identicalOps(set) {
			continue
		}
		lca := b.treeLCA(set)
		if !b.sourcesReach(lca, set) {
			continue
		}
		pre, covered := b.preMemberBlocks(lca, set)
		if !covered {
			continue
		}
		if b.destConflicts(lca, pre, set[0].op) {
			continue
		}
		// Merge: the member sitting highest (in the LCA if any) represents
		// the set; everyone else is eliminated.
		rep := set[0]
		for _, m := range set[1:] {
			if m.block == lca {
				rep = m
			}
		}
		for _, m := range set {
			if m.op == rep.op {
				continue
			}
			b.gone[m.op.ID] = true
			b.g.NumMerged++
		}
		b.home[rep.op.ID] = lca
		if rep.block != lca {
			b.moved[lca] = append(b.moved[lca], rep.op)
		}
		// The merged op is unconditional at the dominator, but hoisting it
		// further is speculation: pin it if its destination is live on some
		// path that bypasses the dominator.
		for _, d := range rep.op.Dests {
			if b.conflictsOffPath(lca, d) {
				b.setPinned(rep.op)
				break
			}
		}
	}
}

// identicalOps reports whether all members compute the same operation over
// the same registers.
func identicalOps(set []opAt) bool {
	a := set[0].op
	for _, m := range set[1:] {
		o := m.op
		if o.Opcode != a.Opcode || o.Imm != a.Imm || o.Cond != a.Cond ||
			o.Guard != a.Guard ||
			len(o.Dests) != len(a.Dests) || len(o.Srcs) != len(a.Srcs) {
			return false
		}
		for i := range o.Dests {
			if o.Dests[i] != a.Dests[i] {
				return false
			}
		}
		for i := range o.Srcs {
			if o.Srcs[i] != a.Srcs[i] {
				return false
			}
		}
	}
	// Members must sit in pairwise distinct blocks (one per path).
	seen := map[ir.BlockID]bool{}
	for _, m := range set {
		if seen[m.block] {
			return false
		}
		seen[m.block] = true
	}
	return true
}

// treeLCA returns the lowest common ancestor of the members' blocks within
// the region tree.
func (b *builder) treeLCA(set []opAt) ir.BlockID {
	r := b.g.Region
	lca := set[0].block
	for _, m := range set[1:] {
		anc := map[ir.BlockID]bool{}
		for cur := lca; cur != ir.NoBlock; cur = r.Parent(cur) {
			anc[cur] = true
		}
		cur := m.block
		for !anc[cur] {
			cur = r.Parent(cur)
		}
		lca = cur
	}
	return lca
}

// sourcesReach reports whether, for every member, no op strictly between the
// LCA and the member redefines one of the member's sources — i.e. the value
// the member read is the value available at the dominator.
func (b *builder) sourcesReach(lca ir.BlockID, set []opAt) bool {
	fn := b.g.Fn
	r := b.g.Region
	srcs := map[ir.Reg]bool{}
	for _, s := range set[0].op.Srcs {
		if s.IsValid() {
			srcs[s] = true
		}
	}
	if len(srcs) == 0 {
		return true
	}
	for _, m := range set {
		for cur := m.block; cur != lca; cur = r.Parent(cur) {
			ops := fn.Block(cur).Ops
			limit := len(ops)
			if cur == m.block {
				limit = m.pos
			}
			for _, op := range ops[:limit] {
				if b.isGone(op) {
					continue
				}
				for _, d := range op.Dests {
					if srcs[d] {
						return false
					}
				}
			}
		}
	}
	return true
}

// preMemberBlocks walks the LCA's subtree stopping at member blocks. It
// returns the blocks strictly between the LCA and the members, and whether
// every path from the LCA reaches a member (a *complete* duplicate set).
func (b *builder) preMemberBlocks(lca ir.BlockID, set []opAt) ([]ir.BlockID, bool) {
	r := b.g.Region
	isMember := map[ir.BlockID]bool{}
	for _, m := range set {
		isMember[m.block] = true
	}
	if isMember[lca] {
		return nil, true
	}
	var pre []ir.BlockID
	covered := true
	var walk func(ir.BlockID)
	walk = func(x ir.BlockID) {
		for _, c := range r.Children(x) {
			if isMember[c] {
				continue
			}
			if r.IsLeaf(c) {
				covered = false
				continue
			}
			pre = append(pre, c)
			walk(c)
		}
	}
	walk(lca)
	return pre, covered
}

// destConflicts reports whether homing op at the LCA would clobber a value
// some non-covered consumer still needs: the destination must be neither
// read nor written between the LCA and the members, and must not be live
// into any region exit leaving from the LCA or a pre-member block.
func (b *builder) destConflicts(lca ir.BlockID, pre []ir.BlockID, op *ir.Op) bool {
	fn := b.g.Fn
	r := b.g.Region
	lv := b.opts.Liveness
	dests := map[ir.Reg]bool{}
	for _, d := range op.Dests {
		if d.IsValid() {
			dests[d] = true
		}
	}
	for _, x := range pre {
		for _, o := range fn.Block(x).Ops {
			if b.isGone(o) || o == op {
				continue
			}
			for _, s := range o.Srcs {
				if dests[s] {
					return true
				}
			}
			for _, d := range o.Dests {
				if dests[d] {
					return true
				}
			}
		}
	}
	// Region exits leaving before a member is reached.
	check := append([]ir.BlockID{lca}, pre...)
	for _, x := range check {
		for _, s := range fn.Block(x).Succs() {
			if r.Contains(s) && r.Parent(s) == x {
				continue // tree edge
			}
			for d := range dests {
				if lv.LiveIn[s].Has(d) {
					return true
				}
			}
		}
	}
	return false
}
