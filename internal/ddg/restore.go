package ddg

import (
	"fmt"

	"treegion/internal/ir"
	"treegion/internal/region"
)

// NodeSpec is the serialized form of one Node: everything Build computed,
// minus the pointers that only make sense in-process. The artifact store
// persists schedules as (NodeSpec, EdgeSpec) lists and revives them with
// Restore.
type NodeSpec struct {
	// Op locates the node's op in the revived function.
	Op *ir.Op
	// Home is the block whose path the op belongs to (the common dominator
	// for merged ops, so it can differ from the op's physical block).
	Home      ir.BlockID
	Term      bool
	Spec      bool
	Height    int
	ExitCount int
	Weight    float64
}

// EdgeSpec is one serialized dependence edge between node indices.
type EdgeSpec struct {
	From, To int
	Latency  int
	Kind     EdgeKind
}

// Restore rebuilds a Graph from serialized parts. Node indices follow the
// order of nodes; edges are installed in list order, so successor order —
// which downstream consumers iterate — matches the graph that was saved.
// Restore validates indices and returns an error on malformed input (a
// corrupt store entry must read as a miss, never crash or build a graph
// that panics later).
func Restore(fn *ir.Function, r *region.Region, nodes []NodeSpec, edges []EdgeSpec, renamed, copies, merged int) (*Graph, error) {
	return RestoreScratch(fn, r, nodes, edges, renamed, copies, merged, nil)
}

// RestoreScratch is Restore with reusable working memory, mirroring
// Build/BuildScratch: the edge-record and counting buffers come from sc, so
// a caller reviving many schedules (the artifact store decodes every region
// of every function in a suite) allocates only what the graph retains.
// Neither nodes nor edges is retained by the result.
func RestoreScratch(fn *ir.Function, r *region.Region, nodes []NodeSpec, edges []EdgeSpec, renamed, copies, merged int, sc *Scratch) (*Graph, error) {
	g := &Graph{
		Fn:         fn,
		Region:     r,
		NumRenamed: renamed,
		NumCopies:  copies,
		NumMerged:  merged,
	}
	slab := make([]Node, len(nodes))
	g.Nodes = make([]*Node, 0, len(nodes))
	for i, spec := range nodes {
		if spec.Op == nil {
			return nil, fmt.Errorf("ddg: restore: node %d has no op", i)
		}
		n := &slab[i]
		n.Index = i
		n.Op = spec.Op
		n.Home = spec.Home
		n.Term = spec.Term
		n.Spec = spec.Spec
		n.Height = spec.Height
		n.ExitCount = spec.ExitCount
		n.Weight = spec.Weight
		g.Nodes = append(g.Nodes, n)
	}
	var recs []edgeRec
	if sc != nil {
		sc.recs = grow(sc.recs, len(edges))
		recs = sc.recs
	} else {
		recs = make([]edgeRec, len(edges))
	}
	for i, e := range edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return nil, fmt.Errorf("ddg: restore: edge %d->%d out of range (%d nodes)", e.From, e.To, len(g.Nodes))
		}
		recs[i] = edgeRec{from: int32(e.From), to: int32(e.To), lat: int32(e.Latency), kind: e.Kind}
	}
	installEdges(g.Nodes, recs, sc)
	return g, nil
}
