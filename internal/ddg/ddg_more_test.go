package ddg

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/region"
)

// multiway builds a 3-arm switch region: b0 {cmpp p0; cmpp p1; br arm0;
// br arm1} -> arm2 (fallthrough); each arm has a store, all to join b4.
func multiway(t *testing.T) (*ir.Function, *region.Region, *cfg.Liveness) {
	t.Helper()
	f := ir.NewFunction("mw")
	b0 := f.NewBlock()
	arms := []*ir.Block{f.NewBlock(), f.NewBlock(), f.NewBlock()}
	join := f.NewBlock()
	r0 := ir.GPR(0)
	f.NoteReg(r0)
	p0, p1 := f.NewReg(ir.ClassPred), f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p0, ir.NoReg, ir.CondEQ, r0, r0)
	f.EmitCmpp(b0, p1, ir.NoReg, ir.CondNE, r0, r0)
	f.EmitBrct(b0, ir.NoReg, p0, arms[0].ID, 0.3)
	f.EmitBrct(b0, ir.NoReg, p1, arms[1].ID, 0.3)
	b0.FallThrough = arms[2].ID
	for i, a := range arms {
		f.EmitSt(a, r0, int64(8*i), r0)
		a.FallThrough = join.ID
	}
	f.EmitRet(join)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := region.New(f, region.KindTreegion, b0.ID)
	for _, a := range arms {
		r.Add(a.ID, b0.ID)
	}
	lv := cfg.ComputeLiveness(cfg.New(f))
	return f, r, lv
}

func TestResolverPerArm(t *testing.T) {
	f, r, lv := multiway(t)
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	var br0, br1 *Node
	for _, n := range g.Nodes {
		if n.Op.Opcode == ir.Brct {
			if n.Op.Target == 1 {
				br0 = n
			} else if n.Op.Target == 2 {
				br1 = n
			}
		}
	}
	st0 := findNode(g, ir.St, 1)
	st1 := findNode(g, ir.St, 2)
	st2 := findNode(g, ir.St, 3)
	// Arm 0's store resolves at br0 (lat 1): it must NOT wait for br1.
	if !hasEdge(br0, st0, 1) {
		t.Error("arm0 store missing resolver edge")
	}
	if hasEdge(br1, st0, 1) {
		t.Error("arm0 store pinned below a later arm's branch")
	}
	// Arm 1's store resolves at br1 only (earlier arms precede br1 anyway).
	if !hasEdge(br1, st1, 1) {
		t.Error("arm1 store missing resolver edge")
	}
	// The fallthrough arm resolves at the last branch.
	if !hasEdge(br1, st2, 1) {
		t.Error("fallthrough arm store missing last-branch resolver edge")
	}
	// Arm order is kept: br0 -> br1 lat 0.
	if !hasEdge(br0, br1, 0) {
		t.Error("arm-order edge missing")
	}
}

func TestNearestDescendantTerms(t *testing.T) {
	// chain: b0 (store, no terms) -> b1 (no terms) -> b2 (branch exit).
	f := ir.NewFunction("chain")
	b0, b1, b2, out := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0 := ir.GPR(0)
	f.NoteReg(r0)
	p := f.NewReg(ir.ClassPred)
	f.EmitSt(b0, r0, 0, r0)
	b0.FallThrough = b1.ID
	f.EmitALU(b1, ir.Add, f.NewReg(ir.ClassGPR), r0, r0)
	b1.FallThrough = b2.ID
	f.EmitCmpp(b2, p, ir.NoReg, ir.CondGT, r0, r0)
	f.EmitBrct(b2, ir.NoReg, p, out.ID, 0.5)
	b2.FallThrough = out.ID // invalid duplicate succ; reroute below
	b2.FallThrough = ir.NoBlock
	out2 := f.NewBlock()
	b2.FallThrough = out2.ID
	f.EmitRet(out)
	f.EmitRet(out2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := region.New(f, region.KindSLR, b0.ID)
	r.Add(b1.ID, b0.ID)
	r.Add(b2.ID, b1.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	st := findNode(g, ir.St, b0.ID)
	br := findNode(g, ir.Brct, b2.ID)
	if !hasEdge(st, br, 0) {
		t.Fatal("store in a terminator-less block must precede the downstream exit branch")
	}
}

func TestLiveExitEdges(t *testing.T) {
	// b0 defines v (live at the branch-exit target) and w (dead there):
	// only v's def must be pinned above the exit branch.
	f := ir.NewFunction("live")
	b0, tgt, ft := f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0 := ir.GPR(0)
	f.NoteReg(r0)
	v := f.NewReg(ir.ClassGPR)
	w := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	defV := f.EmitALU(b0, ir.Add, v, r0, r0)
	defW := f.EmitALU(b0, ir.Sub, w, r0, r0)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r0)
	f.EmitBrct(b0, ir.NoReg, p, tgt.ID, 0.5)
	b0.FallThrough = ft.ID
	f.EmitSt(tgt, r0, 0, v) // v live at the exit target
	f.EmitRet(tgt)
	f.EmitSt(ft, r0, 8, w) // w live only at the fallthrough
	f.EmitRet(ft)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := region.New(f, region.KindBasicBlock, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	br := findNode(g, ir.Brct, b0.ID)
	if !hasEdge(g.NodeOf(defV), br, 0) {
		t.Error("def live at exit target not ordered before the exit branch")
	}
	if hasEdge(g.NodeOf(defW), br, 0) {
		t.Error("def dead at exit target pinned above the branch anyway")
	}
}

func TestGuardedDefsMultipleReaching(t *testing.T) {
	// v = 1; (p) v = 2; use v: the use must depend on BOTH defs, and the
	// guarded def must not sever the first.
	f := ir.NewFunction("gm")
	b0 := f.NewBlock()
	v := f.NewReg(ir.ClassGPR)
	p := ir.Pred(0)
	f.NoteReg(p)
	d1 := f.EmitMovI(b0, v, 1)
	d2 := f.EmitMovI(b0, v, 2)
	d2.Guard = p
	use := f.EmitALU(b0, ir.Add, f.NewReg(ir.ClassGPR), v, v)
	f.EmitRet(b0)
	r := region.New(f, region.KindBasicBlock, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if !hasEdge(g.NodeOf(d1), g.NodeOf(use), 1) {
		t.Error("use must still depend on the unguarded def")
	}
	if !hasEdge(g.NodeOf(d2), g.NodeOf(use), 1) {
		t.Error("use must depend on the guarded def")
	}
	// Output dependence between the defs keeps them ordered.
	if !hasEdge(g.NodeOf(d1), g.NodeOf(d2), 1) {
		t.Error("guarded redefinition must stay after the original")
	}
}

func TestPinConflictingWithoutRename(t *testing.T) {
	f, r, lv := simpleTree(t)
	g, err := Build(f, r, Options{Rename: false, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRenamed != 0 || g.NumCopies != 0 {
		t.Fatal("renaming ran despite Rename=false")
	}
	// The conflicting arm defs (r3 live at the join) must be pinned.
	add := findNode(g, ir.Add, 1)
	sub := findNode(g, ir.Sub, 2)
	if add.Spec || sub.Spec {
		t.Fatal("conflicting defs not pinned under restricted speculation")
	}
	// And therefore carry resolver edges.
	br := findNode(g, ir.Brct, 0)
	if !hasEdge(br, add, 1) {
		t.Fatal("pinned op missing resolver edge")
	}
}

func TestBuildRequiresLivenessForRename(t *testing.T) {
	f, r, _ := simpleTree(t)
	if _, err := Build(f, r, Options{Rename: true}); err == nil {
		t.Fatal("Build accepted renaming without liveness")
	}
}

func TestGraphNodeOfForeignOp(t *testing.T) {
	f, r, lv := simpleTree(t)
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	foreign := f.NewOp(ir.Add)
	if g.NodeOf(foreign) != nil {
		t.Fatal("foreign op resolved to a node")
	}
}
