package ddg

import "treegion/internal/ir"

// Scratch holds the builder's reusable working set: every dense table and
// buffer that does NOT escape into the returned Graph. A pipeline worker
// that builds DDGs for a whole chunk of functions passes the same Scratch to
// every BuildScratch call and the tables are recycled across functions
// instead of reallocated; the buffers grow to the largest function seen and
// stay there. The Graph-owned allocations (the Node slab, Succs/Preds edge
// slabs, the byID index) are always fresh — results outlive the scratch.
//
// A Scratch must not be shared between concurrent builds.
type Scratch struct {
	home    []ir.BlockID
	gone    []bool
	pinned  []bool
	effOf   []blkRange
	nodeOf  []blkRange
	effSlab []*ir.Op
	recs    []edgeRec
	outCnt  []int32
	inCnt   []int32
	defBits []uint64
	moved   map[ir.BlockID][]*ir.Op

	succBuf    []ir.BlockID
	subtreeBuf []ir.BlockID

	// dataEdges walker stacks, indexed by dense register. The inner
	// def/reader stacks are carved from walkSlab with per-register caps
	// counted from the region's ops (prepWalker), so the walk itself never
	// allocates; defCnt/readerCnt are the counting buffers. The stacks hold
	// node indices rather than pointers so the slab carries no GC scan cost.
	defs       [][]int32
	defBase    []int32
	readers    [][]int32
	readerBase []int32
	undo       []undoRec
	loads      []int32
	walkSlab   []int32
	defCnt     []int32
	readerCnt  []int32
}

// grow returns buf resized to n, reallocating only when capacity is short.
// Contents are unspecified; callers that need cleared memory clear it.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// growClear returns buf resized to n with every element zeroed.
func growClear[T any](buf []T, n int) []T {
	buf = grow(buf, n)
	clear(buf)
	return buf
}

// movedMap returns the (cleared) dominator-merge map.
func (sc *Scratch) movedMap() map[ir.BlockID][]*ir.Op {
	if sc.moved == nil {
		sc.moved = make(map[ir.BlockID][]*ir.Op)
	} else {
		clear(sc.moved)
	}
	return sc.moved
}

// release stores the builder's (possibly regrown) buffers back into the
// scratch so the capacity carries over to the next build.
func (sc *Scratch) release(b *builder) {
	sc.home = b.home
	sc.gone = b.gone
	if b.pinned != nil {
		sc.pinned = b.pinned
	}
	sc.effOf = b.effOf
	sc.nodeOf = b.nodeOf
	sc.effSlab = b.effSlab
	sc.recs = b.recs[:0]
	if b.defBits != nil {
		sc.defBits = b.defBits
	}
	sc.succBuf = b.succBuf
	sc.subtreeBuf = b.subtreeBuf
}

// releaseWalker stores the dataEdges walker's stacks back into the scratch.
// The inner def/reader stacks are views into walkSlab (already stored by
// prepWalker); only the outer tables and the undo/loads capacity carry over.
func (sc *Scratch) releaseWalker(w *walker) {
	sc.defs = w.defs
	sc.defBase = w.defBase
	sc.readers = w.readers
	sc.readerBase = w.readerBase
	sc.undo = w.undo[:0]
	sc.loads = w.loads[:0]
}
