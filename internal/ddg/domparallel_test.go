package ddg

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/region"
)

// dupTree builds a tail-duplicated treegion like the paper's Fig. 12:
//
//	bb0 branches to bb1 / bb2; each arm contains a *duplicate* of the same
//	op (r5 = ADD r0, r1 with shared Orig), then a distinguishing op.
func dupTree(t *testing.T, redefineSrcOnArm bool) (*ir.Function, *region.Region, *cfg.Liveness, *ir.Op, *ir.Op) {
	t.Helper()
	f := ir.NewFunction("dup")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	r0, r1 := ir.GPR(0), ir.GPR(1)
	f.NoteReg(r0)
	f.NoteReg(r1)
	r5 := f.NewReg(ir.ClassGPR)
	p := f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p, ir.NoReg, ir.CondGT, r0, r1)
	f.EmitBrct(b0, ir.NoReg, p, b1.ID, 0.5)
	b0.FallThrough = b2.ID

	if redefineSrcOnArm {
		f.EmitMovI(b1, r0, 42) // clobbers the duplicate's source on one path
	}
	d1 := f.EmitALU(b1, ir.Add, r5, r0, r1)
	f.EmitSt(b1, r0, 0, r5)
	b1.FallThrough = b3.ID

	d2 := f.CloneOp(d1) // same Orig: a tail-duplicated twin
	b2.Ops = append(b2.Ops, d2)
	f.EmitSt(b2, r0, 8, r5)
	b2.FallThrough = b3.ID
	f.EmitRet(b3)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := region.New(f, region.KindTreegionTD, b0.ID)
	r.Add(b1.ID, b0.ID)
	r.Add(b2.ID, b0.ID)
	lv := cfg.ComputeLiveness(cfg.New(f))
	return f, r, lv, d1, d2
}

func TestDominatorParallelismMerges(t *testing.T) {
	f, r, lv, d1, d2 := dupTree(t, false)
	g, err := Build(f, r, Options{Rename: true, DominatorParallelism: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMerged != 1 {
		t.Fatalf("NumMerged = %d, want 1", g.NumMerged)
	}
	// Exactly one of the twins survives, homed at the dominator bb0.
	n1, n2 := g.NodeOf(d1), g.NodeOf(d2)
	if (n1 == nil) == (n2 == nil) {
		t.Fatalf("want exactly one surviving twin, got %v/%v", n1, n2)
	}
	rep := n1
	if rep == nil {
		rep = n2
	}
	if rep.Home != 0 {
		t.Fatalf("representative homed at bb%d, want bb0 (the dominator)", rep.Home)
	}
	// Both stores read r5 and must depend on the representative.
	stores := 0
	for _, n := range g.Nodes {
		if n.Op.Opcode != ir.St {
			continue
		}
		stores++
		found := false
		for _, e := range n.Preds {
			if e.From == rep {
				found = true
			}
		}
		if !found {
			t.Errorf("store on bb%d does not depend on merged op", n.Home)
		}
	}
	if stores != 2 {
		t.Fatalf("stores = %d", stores)
	}
}

func TestDominatorParallelismRejectsChangedSource(t *testing.T) {
	f, r, lv, d1, d2 := dupTree(t, true)
	g, err := Build(f, r, Options{Rename: true, DominatorParallelism: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMerged != 0 {
		t.Fatalf("merged despite a source redefinition between dominator and twin")
	}
	if g.NodeOf(d1) == nil || g.NodeOf(d2) == nil {
		t.Fatal("twins must both survive")
	}
}

func TestDominatorParallelismOffByDefault(t *testing.T) {
	f, r, lv, d1, d2 := dupTree(t, false)
	g, err := Build(f, r, Options{Rename: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMerged != 0 || g.NodeOf(d1) == nil || g.NodeOf(d2) == nil {
		t.Fatal("merging happened without DominatorParallelism")
	}
}

func TestDominatorParallelismIncompleteSetNotMerged(t *testing.T) {
	// Three-way divergence but duplicates on only two arms: not a complete
	// set, so the merge must be rejected (the third path would observe the
	// unconditional write).
	f := ir.NewFunction("partial")
	b0 := f.NewBlock()
	arms := []*ir.Block{f.NewBlock(), f.NewBlock(), f.NewBlock()}
	exit := f.NewBlock()
	r0, r1 := ir.GPR(0), ir.GPR(1)
	f.NoteReg(r0)
	f.NoteReg(r1)
	r5 := f.NewReg(ir.ClassGPR)
	p1, p2 := f.NewReg(ir.ClassPred), f.NewReg(ir.ClassPred)
	f.EmitCmpp(b0, p1, ir.NoReg, ir.CondGT, r0, r1)
	f.EmitCmpp(b0, p2, ir.NoReg, ir.CondLT, r0, r1)
	f.EmitBrct(b0, ir.NoReg, p1, arms[0].ID, 0.3)
	f.EmitBrct(b0, ir.NoReg, p2, arms[1].ID, 0.3)
	b0.FallThrough = arms[2].ID
	d1 := f.EmitALU(arms[0], ir.Add, r5, r0, r1)
	f.EmitSt(arms[0], r0, 0, r5)
	d2 := f.CloneOp(d1)
	arms[1].Ops = append(arms[1].Ops, d2)
	f.EmitSt(arms[1], r0, 8, r5)
	// arm 2 uses r5's *old* value: merging would corrupt it.
	f.EmitSt(arms[2], r0, 16, r5)
	for _, a := range arms {
		a.FallThrough = exit.ID
	}
	f.EmitRet(exit)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	r := region.New(f, region.KindTreegionTD, b0.ID)
	for _, a := range arms {
		r.Add(a.ID, b0.ID)
	}
	lv := cfg.ComputeLiveness(cfg.New(f))
	g, err := Build(f, r, Options{Rename: true, DominatorParallelism: true, Liveness: lv})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMerged != 0 {
		t.Fatal("incomplete duplicate set merged")
	}
}
