package ddg

import "treegion/internal/ir"

// rename performs the paper's compile-time register renaming: any
// speculatable op whose destination would clobber a value live on some
// other path (were the op hoisted above the diverging branch) gets a fresh
// destination register. In-region consumers are rewritten to read the fresh
// register directly (so they can chase the speculated value), and a Copy op
// restoring the original register is placed at the op's home position; the
// copy is non-speculatable and carries the value to paths that leave the
// region. The paper excludes these copies from speedup accounting.
func (b *builder) rename() {
	r := b.g.Region
	fn := b.g.Fn
	for _, bid := range r.Blocks {
		blk := fn.Block(bid)
		for i := 0; i < len(blk.Ops); i++ {
			op := blk.Ops[i]
			if b.isGone(op) || !op.Opcode.Speculatable() || len(op.Dests) == 0 {
				continue
			}
			if _, merged := b.homeOf(op); merged {
				continue // merged representatives are pinned, never renamed
			}
			if op.Guarded() {
				// A guarded definition cannot be renamed: the restoring
				// copy would have to be predicated too. Pin it instead.
				for _, d := range op.Dests {
					if d.IsValid() && b.conflictsOffPath(bid, d) {
						b.setPinned(op)
						break
					}
				}
				continue
			}
			inserted := 0
			for di, d := range op.Dests {
				if !d.IsValid() || !b.conflictsOffPath(bid, d) {
					continue
				}
				fresh := fn.NewReg(d.Class)
				op.Dests[di] = fresh
				op.Renamed = true
				cp := fn.NewOp(ir.Copy)
				cp.Dests = []ir.Reg{d}
				cp.Srcs = []ir.Reg{fresh}
				insertAt(blk, i+1+inserted, cp)
				inserted++
				b.g.NumCopies++
				b.rewriteUses(bid, i+1+inserted, d, fresh)
			}
			if inserted > 0 {
				b.g.NumRenamed++
				i += inserted // skip the copies we just placed
			}
		}
	}
}

// pinConflicting implements restricted speculation for schedulers without
// renaming: every speculatable op whose destination conflicts off-path is
// pinned below its controlling branch instead of being renamed.
func (b *builder) pinConflicting() {
	for _, bid := range b.g.Region.Blocks {
		for _, op := range b.g.Fn.Block(bid).Ops {
			if b.isGone(op) || !op.Opcode.Speculatable() || len(op.Dests) == 0 {
				continue
			}
			if _, merged := b.homeOf(op); merged {
				continue
			}
			for _, d := range op.Dests {
				if d.IsValid() && b.conflictsOffPath(bid, d) {
					b.setPinned(op)
					break
				}
			}
		}
	}
}

// buildDefBits snapshots, per block, the set of registers a surviving op
// defines, as bitsets over the function's current register universe. It runs
// after dominator merging (the gone set is final) and before renaming.
// Renaming keeps the table valid for the original registers it is queried
// with: a renamed op's old destination is re-defined in the same block by
// the inserted Copy, and fresh registers are never looked up.
func (b *builder) buildDefBits() {
	b.regs = b.g.Fn.RegIndexTable()
	b.defNW = (b.regs.Len() + 63) / 64
	if b.sc != nil {
		b.defBits = growClear(b.sc.defBits, len(b.g.Fn.Blocks)*b.defNW)
	} else {
		b.defBits = make([]uint64, len(b.g.Fn.Blocks)*b.defNW)
	}
	for _, blk := range b.g.Fn.Blocks {
		w := b.defBits[int(blk.ID)*b.defNW : (int(blk.ID)+1)*b.defNW]
		for _, op := range blk.Ops {
			if b.isGone(op) {
				continue
			}
			for _, d := range op.Dests {
				if k := b.regs.Of(d); k >= 0 {
					w[k>>6] |= 1 << (uint(k) & 63)
				}
			}
		}
	}
}

// conflictsOffPath reports whether hoisting a definition of d from block bid
// to the top of the region could be observed on some path other than
// root..bid: d is live into a sibling subtree or a region-exit target of an
// ancestor divergence, or some sibling subtree also defines d.
func (b *builder) conflictsOffPath(bid ir.BlockID, d ir.Reg) bool {
	r := b.g.Region
	fn := b.g.Fn
	lv := b.opts.Liveness
	cur := bid
	for {
		parent := r.Parent(cur)
		if parent == ir.NoBlock {
			return false
		}
		b.succBuf = fn.Block(parent).AppendSuccs(b.succBuf[:0])
		for _, s := range b.succBuf {
			if s == cur && r.Contains(s) && r.Parent(s) == parent {
				continue // the on-path edge
			}
			if lv.LiveIn[s].Has(d) {
				return true
			}
			if r.Contains(s) && r.Parent(s) == parent {
				// Sibling subtree: a second definition of d there would race
				// with ours once both speculate above the divergence.
				b.subtreeBuf = b.appendSubtree(b.subtreeBuf[:0], s)
				for _, x := range b.subtreeBuf {
					if b.blockDefines(x, d) {
						return true
					}
				}
			}
		}
		cur = parent
	}
}

// blockDefines reports whether a surviving op of block x writes d. During
// renaming the prebuilt per-block bitsets answer in O(1); during dominator
// merging (whose incremental eliminations would invalidate a snapshot) it
// scans the ops.
func (b *builder) blockDefines(x ir.BlockID, d ir.Reg) bool {
	if b.defBits != nil {
		if k := b.regs.Of(d); k >= 0 {
			w := b.defBits[int(x)*b.defNW : (int(x)+1)*b.defNW]
			return w[k>>6]&(1<<(uint(k)&63)) != 0
		}
	}
	for _, op := range b.g.Fn.Block(x).Ops {
		if b.isGone(op) {
			continue
		}
		for _, dd := range op.Dests {
			if dd == d {
				return true
			}
		}
	}
	return false
}

// rewriteUses replaces reads of old with fresh from position from in block
// bid onward, descending the region subtree, stopping along each path at a
// surviving redefinition of old (whose consumers want the new value).
func (b *builder) rewriteUses(bid ir.BlockID, from int, old, fresh ir.Reg) {
	fn := b.g.Fn
	blk := fn.Block(bid)
	for _, op := range blk.Ops[from:] {
		if b.isGone(op) {
			continue
		}
		for si, s := range op.Srcs {
			if s == old {
				op.Srcs[si] = fresh
			}
		}
		for _, dd := range op.Dests {
			if dd == old {
				return // redefined; later readers want that def
			}
		}
	}
	for _, c := range b.g.Region.Children(bid) {
		b.rewriteUses(c, 0, old, fresh)
	}
}

// insertAt places op at index i of blk's op list.
func insertAt(blk *ir.Block, i int, op *ir.Op) {
	blk.Ops = append(blk.Ops, nil)
	copy(blk.Ops[i+1:], blk.Ops[i:])
	blk.Ops[i] = op
}
