package ddg

import (
	"treegion/internal/ir"
	"treegion/internal/machine"
)

// dataEdges walks the region tree and adds register and memory dependence
// edges. Maps of reaching definitions, readers-since-definition, and memory
// state are scoped to the current root-to-leaf path with an undo log, so
// sibling paths never see each other's definitions — only one of them
// executes, and cross-path write conflicts were already resolved by
// renaming (or are non-speculatable ops guarded by disjoint predicates).
func (b *builder) dataEdges() {
	w := &walker{b: b}
	w.walk(b.g.Region.Root)
}

type walker struct {
	b *builder
	// lastDef holds the *reaching definitions* of each register: normally a
	// single node, but a guarded (if-converted) definition does not kill,
	// so it joins the previous definitions instead of replacing them and
	// consumers depend on all of them.
	lastDef   map[ir.Reg][]*Node
	readers   map[ir.Reg][]*Node
	lastStore *Node
	loads     []*Node // loads since the last store
	undo      []func()
}

func (w *walker) walk(bid ir.BlockID) {
	if w.lastDef == nil {
		w.lastDef = make(map[ir.Reg][]*Node)
		w.readers = make(map[ir.Reg][]*Node)
	}
	mark := len(w.undo)
	for _, op := range w.b.effectiveOps(bid) {
		w.visit(w.b.g.byOp[op])
	}
	for _, c := range w.b.g.Region.Children(bid) {
		w.walk(c)
	}
	// Roll back this block's effects before the caller visits a sibling.
	for len(w.undo) > mark {
		w.undo[len(w.undo)-1]()
		w.undo = w.undo[:len(w.undo)-1]
	}
}

// setDef records an unguarded (killing) definition.
func (w *walker) setDef(r ir.Reg, n *Node) {
	prevDefs := w.lastDef[r]
	prevReaders := w.readers[r]
	w.undo = append(w.undo, func() {
		w.lastDef[r] = prevDefs
		w.readers[r] = prevReaders
	})
	w.lastDef[r] = []*Node{n}
	w.readers[r] = nil
}

// addDef records a guarded (non-killing) definition: previous definitions
// still reach, and their readers stay visible.
func (w *walker) addDef(r ir.Reg, n *Node) {
	prevDefs := w.lastDef[r]
	w.undo = append(w.undo, func() { w.lastDef[r] = prevDefs })
	w.lastDef[r] = append(prevDefs[:len(prevDefs):len(prevDefs)], n)
}

func (w *walker) addReader(r ir.Reg, n *Node) {
	prev := w.readers[r]
	w.undo = append(w.undo, func() { w.readers[r] = prev })
	w.readers[r] = append(prev[:len(prev):len(prev)], n)
}

func (w *walker) setStore(n *Node) {
	prevStore, prevLoads := w.lastStore, w.loads
	w.undo = append(w.undo, func() { w.lastStore, w.loads = prevStore, prevLoads })
	w.lastStore = n
	w.loads = nil
}

func (w *walker) addLoad(n *Node) {
	prev := w.loads
	w.undo = append(w.undo, func() { w.loads = prev })
	w.loads = append(prev[:len(prev):len(prev)], n)
}

func (w *walker) visit(n *Node) {
	op := n.Op
	// Flow dependences and reader bookkeeping; the guard predicate is a
	// source like any other.
	srcs := op.Srcs
	if op.Guarded() {
		srcs = append(append([]ir.Reg(nil), srcs...), op.Guard)
	}
	for _, s := range srcs {
		if !s.IsValid() {
			continue
		}
		for _, def := range w.lastDef[s] {
			addEdge(def, n, machine.Latency(def.Op.Opcode), EdgeData)
		}
		w.addReader(s, n)
	}
	// Memory ordering: serialized, with PlayDoh same-cycle allowance.
	switch op.Opcode {
	case ir.Ld:
		if w.lastStore != nil {
			addEdge(w.lastStore, n, 0, EdgeMem)
		}
		w.addLoad(n)
	case ir.St, ir.Call:
		if w.lastStore != nil {
			addEdge(w.lastStore, n, 0, EdgeMem)
		}
		for _, ld := range w.loads {
			addEdge(ld, n, 0, EdgeMem)
		}
		w.setStore(n)
	}
	// Anti and output dependences, then the new definitions.
	for _, d := range op.Dests {
		if !d.IsValid() {
			continue
		}
		for _, rd := range w.readers[d] {
			addEdge(rd, n, 0, EdgeData)
		}
		for _, def := range w.lastDef[d] {
			addEdge(def, n, 1, EdgeData)
		}
	}
	for _, d := range op.Dests {
		if !d.IsValid() {
			continue
		}
		if op.Guarded() {
			w.addDef(d, n)
		} else {
			w.setDef(d, n)
		}
	}
}

// controlEdges adds the edges that encode branch semantics (see the package
// comment's table).
//
// Ops may also sink below branches (downward code motion): an op is ordered
// before an exit branch only when the exit actually needs it — the op is
// non-speculatable (it must execute whenever its block does), or one of its
// destinations is live into the exit's target. Ops dead at an exit float
// past it into the surviving paths.
func (b *builder) controlEdges() {
	r := b.g.Region
	for _, bid := range r.Blocks {
		var body, terms []*Node
		for _, op := range b.effectiveOps(bid) {
			n := b.g.byOp[op]
			if n.Term {
				terms = append(terms, n)
			} else {
				body = append(body, n)
			}
		}
		// Non-speculatable ops issue no later than their block's
		// terminators (a store executes before control can leave). A block
		// with no terminators of its own falls through to a single child,
		// so the constraint attaches to the nearest descendant terminators
		// instead. Multiway arms keep their priority order.
		downTerms := terms
		if len(downTerms) == 0 {
			downTerms = b.nearestDescendantTerms(bid)
		}
		for _, n := range body {
			if !n.Spec {
				for _, t := range downTerms {
					addEdge(n, t, 0, EdgeControl)
				}
			}
		}
		for i := 0; i+1 < len(terms); i++ {
			addEdge(terms[i], terms[i+1], 0, EdgeControl)
		}
		// Control resolution: entering this block is decided by the branch
		// that targets it (for an arm entry, later arms of the parent never
		// execute on this path) or, for a fallthrough entry, by the
		// parent's last branch. Terminators are ordered at it; ops that
		// cannot speculate issue strictly after it.
		if res := b.resolver(bid); res != nil {
			for _, t := range terms {
				addEdge(res, t, 0, EdgeControl)
			}
			for _, n := range body {
				if n.Spec {
					continue // speculation: free to hoist
				}
				addEdge(res, n, 1, EdgeControl)
			}
		}
	}
	b.liveExitEdges()
}

// resolver returns the branch node whose resolution admits control into
// bid: the parent's branch targeting bid, or for fallthrough entries the
// parent's last branch (climbing past branchless ancestors). It returns
// nil at the region root.
func (b *builder) resolver(bid ir.BlockID) *Node {
	r := b.g.Region
	cur := bid
	for {
		parent := r.Parent(cur)
		if parent == ir.NoBlock {
			return nil
		}
		var last *Node
		for _, op := range b.effectiveOps(parent) {
			n := b.g.byOp[op]
			if !n.Term {
				continue
			}
			if op.IsBranch() && op.Target == cur {
				return n // arm entry
			}
			last = n
		}
		if last != nil {
			return last // fallthrough entry: every branch checked first
		}
		cur = parent // branchless block: climb
	}
}

// liveExitEdges orders each value-producing op before every region-exit
// branch (in its own block or its subtree) whose target path still needs
// the value.
func (b *builder) liveExitEdges() {
	r := b.g.Region
	fn := b.g.Fn
	lv := b.opts.Liveness
	if lv == nil {
		// Without liveness (renaming disabled and no analysis supplied) we
		// fall back to the conservative rule: everything precedes its own
		// block's terminators.
		for _, bid := range r.Blocks {
			var body, terms []*Node
			for _, op := range b.effectiveOps(bid) {
				n := b.g.byOp[op]
				if n.Term {
					terms = append(terms, n)
				} else {
					body = append(body, n)
				}
			}
			for _, n := range body {
				for _, t := range terms {
					addEdge(n, t, 0, EdgeLive)
				}
			}
		}
		return
	}
	// Exit branches per block.
	type exitBr struct {
		n      *Node
		target ir.BlockID
	}
	exits := make(map[ir.BlockID][]exitBr)
	for _, bid := range r.Blocks {
		for _, op := range fn.Block(bid).Ops {
			if !op.IsBranch() {
				continue
			}
			if n := b.g.byOp[op]; n != nil {
				if !(r.Contains(op.Target) && r.Parent(op.Target) == bid) {
					exits[bid] = append(exits[bid], exitBr{n, op.Target})
				}
			}
		}
	}
	for _, bid := range r.Blocks {
		sub := r.Subtree(bid)
		for _, op := range b.effectiveOps(bid) {
			n := b.g.byOp[op]
			if n.Term || len(op.Dests) == 0 {
				continue
			}
			for _, d := range sub {
				for _, e := range exits[d] {
					for _, dst := range op.Dests {
						if dst.IsValid() && lv.LiveIn[e.target].Has(dst) {
							addEdge(n, e.n, 0, EdgeLive)
							break
						}
					}
				}
			}
		}
	}
}

// nearestDescendantTerms descends the fallthrough chain from a
// terminator-less block to the first block that has terminators (a
// terminator-less block has at most one in-region child) and returns them.
func (b *builder) nearestDescendantTerms(bid ir.BlockID) []*Node {
	r := b.g.Region
	cur := bid
	for {
		ch := r.Children(cur)
		if len(ch) != 1 {
			return nil
		}
		cur = ch[0]
		var terms []*Node
		for _, op := range b.effectiveOps(cur) {
			if n := b.g.byOp[op]; n.Term {
				terms = append(terms, n)
			}
		}
		if len(terms) > 0 {
			return terms
		}
	}
}

// nearestBranchTerms climbs from bid's parent to the closest ancestor block
// that has terminator nodes and returns them (nil at the root).
func (b *builder) nearestBranchTerms(bid ir.BlockID) []*Node {
	r := b.g.Region
	for cur := r.Parent(bid); cur != ir.NoBlock; cur = r.Parent(cur) {
		var terms []*Node
		for _, op := range b.effectiveOps(cur) {
			if n := b.g.byOp[op]; n.Term {
				terms = append(terms, n)
			}
		}
		if len(terms) > 0 {
			return terms
		}
	}
	return nil
}
