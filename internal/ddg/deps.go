package ddg

import (
	"treegion/internal/ir"
	"treegion/internal/machine"
)

// dataEdges walks the region tree and adds register and memory dependence
// edges. Reaching definitions, readers-since-definition, and memory state
// are scoped to the current root-to-leaf path with an undo log, so sibling
// paths never see each other's definitions — only one of them executes, and
// cross-path write conflicts were already resolved by renaming (or are
// non-speculatable ops guarded by disjoint predicates).
//
// The state lives in per-register stacks over the function's dense register
// index: the reaching definitions of r are defs[r][defBase[r]:]. A killing
// definition raises the base (hiding everything below), a joining one just
// pushes, and the undo log records the previous base/length pair so block
// exit restores the parent path's view by truncation — no maps, no closure
// captures, and stack capacity is reused across the whole walk.
func (b *builder) dataEdges() {
	regs := b.g.Fn.RegIndexTable()
	w := &walker{b: b, regs: &regs, nodes: b.g.Nodes}
	b.prepWalker(w, regs.Len())
	w.walk(b.g.Region.Root)
	if b.sc != nil {
		b.sc.releaseWalker(w)
	}
}

// prepWalker sizes every walker stack from the region's ops instead of
// letting appends grow them: one counting pass over the nodes bounds each
// register's def stack by its total destination occurrences, its reader
// stack by its total source occurrences, and the undo log by the total
// event count — a path can only push what the whole region contains, so the
// bounds hold for every root-to-leaf walk. The per-register stacks are then
// carved from one index slab with those caps, which turns the walk's
// hottest allocation sites (one growth chain per touched register, per
// region) into zero allocations under a Scratch and a handful without one.
// The stacks hold node indices, not pointers: the slab stays invisible to
// the garbage collector, which matters at suite scale (a pointer slab this
// size showed up as scan time exceeding the allocation savings).
func (b *builder) prepWalker(w *walker, nr int) {
	sc := b.sc
	var defCnt, readerCnt []int32
	if sc != nil {
		w.defs = grow(sc.defs, nr)
		w.readers = grow(sc.readers, nr)
		w.defBase = growClear(sc.defBase, nr)
		w.readerBase = growClear(sc.readerBase, nr)
		defCnt = growClear(sc.defCnt, nr)
		readerCnt = growClear(sc.readerCnt, nr)
	} else {
		w.defs = make([][]int32, nr)
		w.readers = make([][]int32, nr)
		w.defBase = make([]int32, nr)
		w.readerBase = make([]int32, nr)
		defCnt = make([]int32, nr)
		readerCnt = make([]int32, nr)
	}
	undoCap, loadCap := 0, 0
	for _, nd := range b.g.Nodes {
		op := nd.Op
		for _, s := range op.Srcs {
			if s.IsValid() {
				if r := int32(w.regs.Of(s)); r >= 0 {
					readerCnt[r]++
					undoCap++
				}
			}
		}
		if op.Guarded() {
			if s := op.Guard; s.IsValid() {
				if r := int32(w.regs.Of(s)); r >= 0 {
					readerCnt[r]++
					undoCap++
				}
			}
		}
		switch op.Opcode {
		case ir.Ld:
			loadCap++
			undoCap++
		case ir.St, ir.Call:
			undoCap++
		}
		for _, d := range op.Dests {
			if d.IsValid() {
				if r := int32(w.regs.Of(d)); r >= 0 {
					defCnt[r]++
					undoCap++
				}
			}
		}
	}
	total := 0
	for r := 0; r < nr; r++ {
		total += int(defCnt[r]) + int(readerCnt[r])
	}
	var slab []int32
	if sc != nil {
		slab = grow(sc.walkSlab, total)
	} else {
		slab = make([]int32, total)
	}
	off := 0
	for r := 0; r < nr; r++ {
		d, rd := int(defCnt[r]), int(readerCnt[r])
		w.defs[r] = slab[off : off : off+d]
		off += d
		w.readers[r] = slab[off : off : off+rd]
		off += rd
	}
	if sc != nil {
		sc.walkSlab = slab
		sc.defCnt, sc.readerCnt = defCnt, readerCnt
		w.undo = grow(sc.undo, undoCap)[:0]
		w.loads = grow(sc.loads, loadCap)[:0]
	} else {
		w.undo = make([]undoRec, 0, undoCap)
		w.loads = make([]int32, 0, loadCap)
	}
}

// walker undo-record kinds.
const (
	undoSetDef uint8 = iota // a,b = def base,len; c,d = reader base,len
	undoAddDef              // a = def len
	undoReader              // a = reader len
	undoStore               // a,b = loads base,len; store = previous lastStore
	undoLoad                // a = loads len
)

type undoRec struct {
	kind       uint8
	reg        int32
	a, b, c, d int32
	store      *Node
}

type walker struct {
	b     *builder
	regs  *ir.RegIndex
	nodes []*Node // g.Nodes — the stacks below hold indices into it

	defs       [][]int32 // per dense reg: definition stack (node indices)
	defBase    []int32   // start of the *reaching* definitions within defs
	readers    [][]int32 // per dense reg: readers since the reaching defs
	readerBase []int32

	lastStore *Node
	loads     []int32 // loads since the last store (node indices)
	loadsBase int32

	undo []undoRec
}

func (w *walker) walk(bid ir.BlockID) {
	mark := len(w.undo)
	for _, n := range w.b.blockNodes(bid) {
		w.visit(n)
	}
	for _, c := range w.b.g.Region.Children(bid) {
		w.walk(c)
	}
	// Roll back this block's effects before the caller visits a sibling.
	for len(w.undo) > mark {
		u := w.undo[len(w.undo)-1]
		w.undo = w.undo[:len(w.undo)-1]
		switch u.kind {
		case undoSetDef:
			w.defBase[u.reg] = u.a
			w.defs[u.reg] = w.defs[u.reg][:u.b]
			w.readerBase[u.reg] = u.c
			w.readers[u.reg] = w.readers[u.reg][:u.d]
		case undoAddDef:
			w.defs[u.reg] = w.defs[u.reg][:u.a]
		case undoReader:
			w.readers[u.reg] = w.readers[u.reg][:u.a]
		case undoStore:
			w.loadsBase = u.a
			w.loads = w.loads[:u.b]
			w.lastStore = u.store
		case undoLoad:
			w.loads = w.loads[:u.a]
		}
	}
}

// setDef records an unguarded (killing) definition.
func (w *walker) setDef(r int32, n *Node) {
	w.undo = append(w.undo, undoRec{
		kind: undoSetDef, reg: r,
		a: w.defBase[r], b: int32(len(w.defs[r])),
		c: w.readerBase[r], d: int32(len(w.readers[r])),
	})
	w.defBase[r] = int32(len(w.defs[r]))
	w.defs[r] = append(w.defs[r], int32(n.Index))
	w.readerBase[r] = int32(len(w.readers[r]))
}

// addDef records a guarded (non-killing) definition: previous definitions
// still reach, and their readers stay visible.
func (w *walker) addDef(r int32, n *Node) {
	w.undo = append(w.undo, undoRec{kind: undoAddDef, reg: r, a: int32(len(w.defs[r]))})
	w.defs[r] = append(w.defs[r], int32(n.Index))
}

func (w *walker) addReader(r int32, n *Node) {
	w.undo = append(w.undo, undoRec{kind: undoReader, reg: r, a: int32(len(w.readers[r]))})
	w.readers[r] = append(w.readers[r], int32(n.Index))
}

func (w *walker) setStore(n *Node) {
	w.undo = append(w.undo, undoRec{
		kind: undoStore,
		a:    w.loadsBase, b: int32(len(w.loads)),
		store: w.lastStore,
	})
	w.lastStore = n
	w.loadsBase = int32(len(w.loads))
}

func (w *walker) addLoad(n *Node) {
	w.undo = append(w.undo, undoRec{kind: undoLoad, a: int32(len(w.loads))})
	w.loads = append(w.loads, int32(n.Index))
}

// visitSrc adds flow dependences from the reaching definitions of s and
// books n as a reader of s.
func (w *walker) visitSrc(s ir.Reg, n *Node) {
	if !s.IsValid() {
		return
	}
	r := int32(w.regs.Of(s))
	if r < 0 {
		return
	}
	for _, di := range w.defs[r][w.defBase[r]:] {
		def := w.nodes[di]
		w.b.addEdge(def, n, machine.Latency(def.Op.Opcode), EdgeData)
	}
	w.addReader(r, n)
}

func (w *walker) visit(n *Node) {
	op := n.Op
	// Flow dependences and reader bookkeeping; the guard predicate is a
	// source like any other.
	for _, s := range op.Srcs {
		w.visitSrc(s, n)
	}
	if op.Guarded() {
		w.visitSrc(op.Guard, n)
	}
	// Memory ordering: serialized, with PlayDoh same-cycle allowance.
	switch op.Opcode {
	case ir.Ld:
		if w.lastStore != nil {
			w.b.addEdge(w.lastStore, n, 0, EdgeMem)
		}
		w.addLoad(n)
	case ir.St, ir.Call:
		if w.lastStore != nil {
			w.b.addEdge(w.lastStore, n, 0, EdgeMem)
		}
		for _, li := range w.loads[w.loadsBase:] {
			w.b.addEdge(w.nodes[li], n, 0, EdgeMem)
		}
		w.setStore(n)
	}
	// Anti and output dependences, then the new definitions.
	for _, d := range op.Dests {
		if !d.IsValid() {
			continue
		}
		r := int32(w.regs.Of(d))
		if r < 0 {
			continue
		}
		for _, ri := range w.readers[r][w.readerBase[r]:] {
			w.b.addEdge(w.nodes[ri], n, 0, EdgeData)
		}
		for _, di := range w.defs[r][w.defBase[r]:] {
			w.b.addEdge(w.nodes[di], n, 1, EdgeData)
		}
	}
	for _, d := range op.Dests {
		if !d.IsValid() {
			continue
		}
		r := int32(w.regs.Of(d))
		if r < 0 {
			continue
		}
		if op.Guarded() {
			w.addDef(r, n)
		} else {
			w.setDef(r, n)
		}
	}
}

// controlEdges adds the edges that encode branch semantics (see the package
// comment's table).
//
// Ops may also sink below branches (downward code motion): an op is ordered
// before an exit branch only when the exit actually needs it — the op is
// non-speculatable (it must execute whenever its block does), or one of its
// destinations is live into the exit's target. Ops dead at an exit float
// past it into the surviving paths.
func (b *builder) controlEdges() {
	r := b.g.Region
	for _, bid := range r.Blocks {
		body, terms := b.bodyNodes(bid), b.termNodes(bid)
		// Non-speculatable ops issue no later than their block's
		// terminators (a store executes before control can leave). A block
		// with no terminators of its own falls through to a single child,
		// so the constraint attaches to the nearest descendant terminators
		// instead. Multiway arms keep their priority order.
		downTerms := terms
		if len(downTerms) == 0 {
			downTerms = b.nearestDescendantTerms(bid)
		}
		for _, n := range body {
			if !n.Spec {
				for _, t := range downTerms {
					b.addEdge(n, t, 0, EdgeControl)
				}
			}
		}
		for i := 0; i+1 < len(terms); i++ {
			b.addEdge(terms[i], terms[i+1], 0, EdgeControl)
		}
		// Control resolution: entering this block is decided by the branch
		// that targets it (for an arm entry, later arms of the parent never
		// execute on this path) or, for a fallthrough entry, by the
		// parent's last branch. Terminators are ordered at it; ops that
		// cannot speculate issue strictly after it.
		if res := b.resolver(bid); res != nil {
			for _, t := range terms {
				b.addEdge(res, t, 0, EdgeControl)
			}
			for _, n := range body {
				if n.Spec {
					continue // speculation: free to hoist
				}
				b.addEdge(res, n, 1, EdgeControl)
			}
		}
	}
	b.liveExitEdges()
}

// resolver returns the branch node whose resolution admits control into
// bid: the parent's branch targeting bid, or for fallthrough entries the
// parent's last branch (climbing past branchless ancestors). It returns
// nil at the region root.
func (b *builder) resolver(bid ir.BlockID) *Node {
	r := b.g.Region
	cur := bid
	for {
		parent := r.Parent(cur)
		if parent == ir.NoBlock {
			return nil
		}
		var last *Node
		for _, n := range b.termNodes(parent) {
			if n.Op.IsBranch() && n.Op.Target == cur {
				return n // arm entry
			}
			last = n
		}
		if last != nil {
			return last // fallthrough entry: every branch checked first
		}
		cur = parent // branchless block: climb
	}
}

// liveExitEdges orders each value-producing op before every region-exit
// branch (in its own block or its subtree) whose target path still needs
// the value.
func (b *builder) liveExitEdges() {
	r := b.g.Region
	lv := b.opts.Liveness
	if lv == nil {
		// Without liveness (renaming disabled and no analysis supplied) we
		// fall back to the conservative rule: everything precedes its own
		// block's terminators.
		for _, bid := range r.Blocks {
			for _, n := range b.bodyNodes(bid) {
				for _, t := range b.termNodes(bid) {
					b.addEdge(n, t, 0, EdgeLive)
				}
			}
		}
		return
	}
	for _, bid := range r.Blocks {
		b.subtreeBuf = b.appendSubtree(b.subtreeBuf[:0], bid)
		sub := b.subtreeBuf
		for _, n := range b.bodyNodes(bid) {
			op := n.Op
			if len(op.Dests) == 0 {
				continue
			}
			for _, d := range sub {
				for _, t := range b.termNodes(d) {
					br := t.Op
					if !br.IsBranch() {
						continue
					}
					if r.Contains(br.Target) && r.Parent(br.Target) == d {
						continue // tree edge, not an exit
					}
					for _, dst := range op.Dests {
						if dst.IsValid() && lv.LiveIn[br.Target].Has(dst) {
							b.addEdge(n, t, 0, EdgeLive)
							break
						}
					}
				}
			}
		}
	}
}

// nearestDescendantTerms descends the fallthrough chain from a
// terminator-less block to the first block that has terminators (a
// terminator-less block has at most one in-region child) and returns them.
func (b *builder) nearestDescendantTerms(bid ir.BlockID) []*Node {
	r := b.g.Region
	cur := bid
	for {
		ch := r.Children(cur)
		if len(ch) != 1 {
			return nil
		}
		cur = ch[0]
		if terms := b.termNodes(cur); len(terms) > 0 {
			return terms
		}
	}
}
