package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// memJournal is an in-memory Journal for tests.
type memJournal struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemJournal() *memJournal { return &memJournal{m: make(map[string][]byte)} }

func (j *memJournal) Put(id string, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m[id] = append([]byte(nil), data...)
	return nil
}

func (j *memJournal) Delete(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.m, id)
	return nil
}

func (j *memJournal) List() (map[string][]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.m))
	for k, v := range j.m {
		out[k] = append([]byte(nil), v...)
	}
	return out, nil
}

// record returns the journaled state of job id.
func (j *memJournal) record(t *testing.T, id string) Job {
	t.Helper()
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.m[id]
	if !ok {
		t.Fatalf("job %s not journaled", id)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	return job
}

func waitState(t *testing.T, q *Queue, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunDone(t *testing.T) {
	jl := newMemJournal()
	q, err := New(Options{Workers: 2, Capacity: 8, Journal: jl, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`{"echo":` + string(p) + `}`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())

	j, err := q.Submit(json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submit snapshot %+v", j)
	}
	done := waitState(t, q, j.ID, StateDone)
	if string(done.Result) != `{"echo":{"x":1}}` {
		t.Fatalf("result %s", done.Result)
	}
	if done.Attempts != 1 {
		t.Fatalf("attempts %d", done.Attempts)
	}
	// The terminal state is journaled.
	if rec := jl.record(t, j.ID); rec.State != StateDone {
		t.Fatalf("journaled state %s", rec.State)
	}
	if s := q.Stats(); s.Submitted != 1 || s.Completed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

type codedErr struct{ msg, code string }

func (e *codedErr) Error() string { return e.msg }
func (e *codedErr) Code() string  { return e.code }

func TestFailureCarriesCode(t *testing.T) {
	q, err := New(Options{Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		return nil, &codedErr{msg: "bad ir", code: "bad_ir"}
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit(nil)
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.Error != "bad ir" || failed.ErrorCode != "bad_ir" {
		t.Fatalf("failure %+v", failed)
	}
}

func TestTransientRetryWithBackoff(t *testing.T) {
	var attempts int
	mu := sync.Mutex{}
	q, err := New(Options{Retries: 3, Backoff: time.Millisecond, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts < 3 {
			return nil, Transient(fmt.Errorf("flaky"))
		}
		return json.RawMessage(`"ok"`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit(nil)
	done := waitState(t, q, j.ID, StateDone)
	if done.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", done.Attempts)
	}
	if s := q.Stats(); s.Retries != 2 {
		t.Fatalf("retries %d, want 2", s.Retries)
	}
}

func TestPermanentErrorIsNotRetried(t *testing.T) {
	var attempts int
	mu := sync.Mutex{}
	q, err := New(Options{Retries: 3, Backoff: time.Millisecond, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		return nil, errors.New("permanent")
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit(nil)
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.Attempts != 1 {
		t.Fatalf("permanent failure retried (%d attempts)", failed.Attempts)
	}
}

func TestTimeout(t *testing.T) {
	q, err := New(Options{Timeout: 20 * time.Millisecond, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit(nil)
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.ErrorCode != "timeout" {
		t.Fatalf("error code %q, want timeout", failed.ErrorCode)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	q, err := New(Options{Workers: 1, Capacity: 2, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		<-block
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer func() { close(block); q.Drain(context.Background()) }()

	// One job occupies the worker; Capacity more fill the channel; the
	// next submission overflows. (The worker may not have dequeued the
	// first job yet, so allow one extra submission before demanding
	// overflow.)
	overflowed := false
	for i := 0; i < 4; i++ {
		if _, err := q.Submit(nil); errors.Is(err, ErrQueueFull) {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("bounded queue never overflowed")
	}
	if q.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestCancelQueued(t *testing.T) {
	block := make(chan struct{})
	q, err := New(Options{Workers: 1, Capacity: 4, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		<-block
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer func() { close(block); q.Drain(context.Background()) }()

	first, _ := q.Submit(nil) // occupies the worker
	waitState(t, q, first.ID, StateRunning)
	second, _ := q.Submit(nil) // waits in the channel
	j, ok := q.Cancel(second.ID)
	if !ok || j.State != StateCanceled {
		t.Fatalf("cancel queued: %+v ok=%v", j, ok)
	}
	// The canceled job must never run.
	if j, _ := q.Get(second.ID); j.Attempts != 0 {
		t.Fatal("canceled job ran")
	}
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	q, err := New(Options{Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit(nil)
	<-started
	if _, ok := q.Cancel(j.ID); !ok {
		t.Fatal("cancel miss")
	}
	got := waitState(t, q, j.ID, StateCanceled)
	if got.ErrorCode != "canceled" {
		t.Fatalf("error code %q", got.ErrorCode)
	}
}

func TestCancelUnknown(t *testing.T) {
	q, _ := New(Options{Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) { return nil, nil }})
	q.Start()
	defer q.Drain(context.Background())
	if _, ok := q.Cancel("nope"); ok {
		t.Fatal("canceled a job that does not exist")
	}
}

func TestDrainFinishesRunningRejectsNew(t *testing.T) {
	release := make(chan struct{})
	q, err := New(Options{Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`"done"`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	j, _ := q.Submit(nil)
	waitState(t, q, j.ID, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := q.Submit(nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v", err)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Get(j.ID); got.State != StateDone {
		t.Fatalf("running job not finished by drain: %s", got.State)
	}
}

func TestRecovery(t *testing.T) {
	jl := newMemJournal()
	run := func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`"ran"`), nil
	}

	// Fabricate the journal a crashed process would leave: one job still
	// queued, one that was mid-run, one already done.
	mk := func(id string, st State, created time.Time) {
		data, _ := json.Marshal(Job{ID: id, State: st, Created: created})
		jl.Put(id, data)
	}
	base := time.Now().Add(-time.Minute)
	mk("jqueued", StateQueued, base)
	mk("jrunning", StateRunning, base.Add(time.Second))
	mk("jdone", StateDone, base.Add(2*time.Second))
	jl.Put("jtorn", []byte("{not json"))

	q, err := New(Options{Workers: 1, Capacity: 8, Journal: jl, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Drain(context.Background())

	// The queued job re-enqueues and runs to completion.
	done := waitState(t, q, "jqueued", StateDone)
	if string(done.Result) != `"ran"` {
		t.Fatalf("recovered job result %s", done.Result)
	}
	// The mid-run job is marked interrupted, with the journal updated.
	ij, ok := q.Get("jrunning")
	if !ok || ij.State != StateInterrupted {
		t.Fatalf("running job after restart: %+v", ij)
	}
	if rec := jl.record(t, "jrunning"); rec.State != StateInterrupted {
		t.Fatalf("journaled state %s", rec.State)
	}
	// Terminal history is preserved untouched.
	if dj, ok := q.Get("jdone"); !ok || dj.State != StateDone {
		t.Fatal("done job lost in recovery")
	}
	// The torn record was dropped, not resurrected.
	if _, ok := q.Get("jtorn"); ok {
		t.Fatal("torn journal record resurrected")
	}
	s := q.Stats()
	if s.Recovered != 1 || s.Interrupted != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestListNewestFirst(t *testing.T) {
	q, _ := New(Options{Workers: 1, Capacity: 8, Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) { return nil, nil }})
	q.Start()
	defer q.Drain(context.Background())
	a, _ := q.Submit(nil)
	b, _ := q.Submit(nil)
	waitState(t, q, a.ID, StateDone)
	waitState(t, q, b.ID, StateDone)
	list := q.List()
	if len(list) != 2 {
		t.Fatalf("%d jobs listed", len(list))
	}
	if list[0].Created.Before(list[1].Created) {
		t.Fatal("list not newest-first")
	}
}

func TestPanicingRunnerFailsJobOnly(t *testing.T) {
	q, _ := New(Options{Run: func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		panic("kaboom")
	}})
	q.Start()
	defer q.Drain(context.Background())
	j, _ := q.Submit(nil)
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("panic not reported")
	}
	// The worker survived: a second job still runs.
	j2, err := q.Submit(nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, j2.ID, StateFailed)
}
