// Package jobs is the asynchronous compile-job subsystem: a bounded
// in-process queue that runs opaque payloads on a worker pool with per-job
// timeouts, cancellation, and retry-with-backoff for transient failures.
//
// The queue is persistence-aware but storage-agnostic: every job state
// transition is journaled through the Journal interface (implemented by the
// artifact store's blob namespace), so a restarted daemon recovers the jobs
// a crash left behind — queued jobs re-enqueue, jobs that were mid-run are
// marked interrupted, and finished jobs remain queryable history.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treegion/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

// Job states. A job moves queued → running → done/failed/canceled; a
// restart turns a mid-run job into interrupted.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// Job is one unit of asynchronous work. The queue hands out snapshot
// copies; callers never share memory with the queue's internal record.
type Job struct {
	ID      string          `json:"id"`
	State   State           `json:"state"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Result is the runner's output once the job is done.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and ErrorCode describe a failed/interrupted job.
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
	// Attempts counts runner invocations (> 1 after transient retries).
	Attempts int       `json:"attempts"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

// Runner executes one job payload and returns its result. The context
// carries the per-job timeout and is canceled by DELETE /v1/jobs/{id}.
type Runner func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error)

// Journal persists job records by ID. A nil Journal disables persistence
// (jobs live and die with the process). The artifact store's Journal
// satisfies this interface.
type Journal interface {
	Put(id string, data []byte) error
	Delete(id string) error
	List() (map[string][]byte, error)
}

// TransientError marks a failure worth retrying (resource exhaustion, a
// flaky backend). Wrap with Transient; the queue retries with backoff.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Coder lets runner errors carry a machine-readable code (the daemon's
// structured API errors do); the code lands in Job.ErrorCode.
type Coder interface{ Code() string }

// Errors returned by Submit.
var (
	// ErrQueueFull signals a bounded-queue overflow; the daemon answers 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining signals a queue that is shutting down; the daemon answers 503.
	ErrDraining = errors.New("jobs: draining")
)

// Options configures a Queue.
type Options struct {
	// Workers bounds concurrent job execution (<= 0 means 1).
	Workers int
	// Capacity bounds the number of queued-but-not-running jobs; Submit
	// fails with ErrQueueFull beyond it (<= 0 means 64).
	Capacity int
	// Timeout bounds one job's total execution including retries
	// (<= 0 means no timeout).
	Timeout time.Duration
	// Retries is how many times a transient failure is retried (so a job
	// runs at most Retries+1 times). Negative means 0.
	Retries int
	// Backoff is the first retry delay; it doubles per retry
	// (<= 0 means 50ms).
	Backoff time.Duration
	// Journal persists job records; nil disables persistence.
	Journal Journal
	// Run executes one payload; required.
	Run Runner
}

// Queue runs jobs. Build with New, then Start; Drain for graceful shutdown.
type Queue struct {
	opts Options

	mu       sync.Mutex
	jobs     map[string]*Job
	cancels  map[string]context.CancelFunc
	draining bool

	ch   chan string
	stop chan struct{}
	wg   sync.WaitGroup

	submitted, completed, failed atomic.Int64
	canceled, rejected           atomic.Int64
	retries                      atomic.Int64
	recovered, interrupted       atomic.Int64
	running                      atomic.Int64
	journalErrs                  atomic.Int64
}

// New builds a queue; call Start to recover the journal and begin work.
func New(opts Options) (*Queue, error) {
	if opts.Run == nil {
		return nil, fmt.Errorf("jobs: Options.Run is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 64
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	return &Queue{
		opts:    opts,
		jobs:    make(map[string]*Job),
		cancels: make(map[string]context.CancelFunc),
		ch:      make(chan string, opts.Capacity),
		stop:    make(chan struct{}),
	}, nil
}

// Start recovers journaled jobs and launches the worker pool. Jobs that
// were queued when the previous process died re-enqueue in creation order;
// jobs that were mid-run are marked interrupted (their worker is gone and
// their partial effects are unknown); terminal jobs stay as history.
func (q *Queue) Start() {
	q.recover()
	for w := 0; w < q.opts.Workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
}

func (q *Queue) recover() {
	if q.opts.Journal == nil {
		return
	}
	records, err := q.opts.Journal.List()
	if err != nil {
		q.journalErrs.Add(1)
		return
	}
	var requeue []*Job
	for id, data := range records {
		var j Job
		if err := json.Unmarshal(data, &j); err != nil || j.ID != id {
			// A torn journal record: drop it rather than resurrect garbage.
			q.opts.Journal.Delete(id)
			continue
		}
		switch j.State {
		case StateQueued:
			requeue = append(requeue, &j)
		case StateRunning:
			j.State = StateInterrupted
			j.Error = "interrupted by daemon restart"
			j.ErrorCode = "interrupted"
			j.Finished = time.Now()
			q.interrupted.Add(1)
			q.persist(&j)
			q.jobs[j.ID] = &j
		default:
			q.jobs[j.ID] = &j
		}
	}
	sort.Slice(requeue, func(i, k int) bool {
		if !requeue[i].Created.Equal(requeue[k].Created) {
			return requeue[i].Created.Before(requeue[k].Created)
		}
		return requeue[i].ID < requeue[k].ID
	})
	for _, j := range requeue {
		q.jobs[j.ID] = j
		select {
		case q.ch <- j.ID:
			q.recovered.Add(1)
		default:
			// More journaled work than queue capacity: the overflow stays
			// journaled as queued and will be recovered by a later restart.
		}
	}
}

// newID returns a random job ID ("j" + 16 hex digits).
func newID() string {
	var b [8]byte
	rand.Read(b[:])
	return fmt.Sprintf("j%x", b)
}

// Submit enqueues a payload and returns a snapshot of the queued job.
// A full queue fails fast with ErrQueueFull; a draining queue with
// ErrDraining.
func (q *Queue) Submit(payload json.RawMessage) (Job, error) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		q.rejected.Add(1)
		return Job{}, ErrDraining
	}
	j := &Job{
		ID:      newID(),
		State:   StateQueued,
		Payload: append(json.RawMessage(nil), payload...),
		Created: time.Now(),
	}
	select {
	case q.ch <- j.ID:
	default:
		q.mu.Unlock()
		q.rejected.Add(1)
		return Job{}, ErrQueueFull
	}
	q.jobs[j.ID] = j
	snap := *j
	q.mu.Unlock()
	q.submitted.Add(1)
	q.persist(&snap)
	return snap, nil
}

// Get returns a snapshot of the job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every known job, newest first.
func (q *Queue) List() []Job {
	q.mu.Lock()
	out := make([]Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, *j)
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// Cancel cancels the job: a queued job is marked canceled and skipped when
// its turn comes; a running job has its context canceled (the runner
// decides how fast it reacts). Canceling a terminal job is a no-op. The
// returned snapshot reflects the post-cancel state.
func (q *Queue) Cancel(id string) (Job, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return Job{}, false
	}
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.Error = "canceled before execution"
		j.ErrorCode = "canceled"
		j.Finished = time.Now()
		q.canceled.Add(1)
		snap := *j
		q.mu.Unlock()
		q.persist(&snap)
		return snap, true
	case StateRunning:
		if cancel, ok := q.cancels[id]; ok {
			cancel()
		}
		snap := *j
		q.mu.Unlock()
		return snap, true
	default:
		snap := *j
		q.mu.Unlock()
		return snap, true
	}
}

// worker drains the queue until stopped.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.stop:
			return
		default:
		}
		select {
		case <-q.stop:
			return
		case id := <-q.ch:
			q.process(id)
		}
	}
}

// process runs one job through the retry loop.
func (q *Queue) process(id string) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State != StateQueued {
		// Canceled while queued (or a recovery edge case): nothing to run.
		q.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Started = time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	if q.opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), q.opts.Timeout)
	}
	q.cancels[id] = cancel
	snap := *j
	payload := j.Payload
	q.mu.Unlock()
	q.running.Add(1)
	q.persist(&snap)

	var result json.RawMessage
	var err error
	backoff := q.opts.Backoff
	for attempt := 0; ; attempt++ {
		q.mu.Lock()
		j.Attempts = attempt + 1
		q.mu.Unlock()
		result, err = q.run(ctx, payload)
		if err == nil || ctx.Err() != nil || !IsTransient(err) || attempt >= q.opts.Retries {
			break
		}
		q.retries.Add(1)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		if ctx.Err() != nil {
			break
		}
		backoff *= 2
	}
	q.running.Add(-1)

	q.mu.Lock()
	delete(q.cancels, id)
	j.Finished = time.Now()
	switch {
	case err == nil:
		j.State = StateDone
		j.Result = result
		q.completed.Add(1)
	case errors.Is(ctx.Err(), context.Canceled):
		j.State = StateCanceled
		j.Error = "canceled while running"
		j.ErrorCode = "canceled"
		q.canceled.Add(1)
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		j.State = StateFailed
		j.Error = fmt.Sprintf("job exceeded its %s timeout", q.opts.Timeout)
		j.ErrorCode = "timeout"
		q.failed.Add(1)
	default:
		j.State = StateFailed
		j.Error = err.Error()
		j.ErrorCode = "job_failed"
		var c Coder
		if errors.As(err, &c) {
			j.ErrorCode = c.Code()
		}
		q.failed.Add(1)
	}
	snap = *j
	q.mu.Unlock()
	cancel()
	q.persist(&snap)
}

// run isolates one runner invocation: a panicking runner fails its job
// instead of killing the worker pool.
func (q *Queue) run(ctx context.Context, payload json.RawMessage) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	return q.opts.Run(ctx, payload)
}

// persist journals one job snapshot.
func (q *Queue) persist(j *Job) {
	if q.opts.Journal == nil {
		return
	}
	data, err := json.Marshal(j)
	if err != nil {
		q.journalErrs.Add(1)
		return
	}
	if err := q.opts.Journal.Put(j.ID, data); err != nil {
		q.journalErrs.Add(1)
	}
}

// Drain shuts the queue down gracefully: new submissions are rejected,
// running jobs finish (bounded by ctx), and still-queued jobs stay
// journaled as queued for the next process to recover. It returns ctx.Err()
// if the deadline expired with workers still busy.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil
	}
	q.draining = true
	q.mu.Unlock()
	close(q.stop)
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the queue counters.
type Stats struct {
	Submitted, Completed, Failed int64
	Canceled, Rejected           int64
	Retries                      int64
	Recovered, Interrupted       int64
	Running, Depth               int64
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Submitted:   q.submitted.Load(),
		Completed:   q.completed.Load(),
		Failed:      q.failed.Load(),
		Canceled:    q.canceled.Load(),
		Rejected:    q.rejected.Load(),
		Retries:     q.retries.Load(),
		Recovered:   q.recovered.Load(),
		Interrupted: q.interrupted.Load(),
		Running:     q.running.Load(),
		Depth:       int64(len(q.ch)),
	}
}

// Register exposes the queue counters on reg under prefix.
func (q *Queue) Register(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+"_jobs_submitted_total", "Jobs accepted into the queue.", q.submitted.Load)
	reg.CounterFunc(prefix+"_jobs_completed_total", "Jobs finished successfully.", q.completed.Load)
	reg.CounterFunc(prefix+"_jobs_failed_total", "Jobs that failed (including timeouts).", q.failed.Load)
	reg.CounterFunc(prefix+"_jobs_canceled_total", "Jobs canceled by clients.", q.canceled.Load)
	reg.CounterFunc(prefix+"_jobs_rejected_total", "Submissions rejected (queue full or draining).", q.rejected.Load)
	reg.CounterFunc(prefix+"_jobs_retries_total", "Transient-failure retries executed.", q.retries.Load)
	reg.CounterFunc(prefix+"_jobs_recovered_total", "Journaled jobs re-enqueued after restart.", q.recovered.Load)
	reg.CounterFunc(prefix+"_jobs_interrupted_total", "Mid-run jobs marked interrupted after restart.", q.interrupted.Load)
	reg.GaugeFunc(prefix+"_jobs_running", "Jobs currently executing.", q.running.Load)
	reg.GaugeFunc(prefix+"_jobs_queued", "Jobs waiting in the queue.", func() int64 { return int64(len(q.ch)) })
}
