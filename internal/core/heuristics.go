package core

import (
	"fmt"

	"treegion/internal/ddg"
)

// Heuristic selects the static priority order used to sort DDG nodes before
// list scheduling (step 2 of the paper's Fig. 3 algorithm).
type Heuristic uint8

// The paper's four treegion scheduling heuristics (Section 3).
const (
	// DepHeight sorts by dependence height (critical-path scheduling):
	// maximal speculation, profile-free.
	DepHeight Heuristic = iota
	// ExitCount sorts by the number of region exits below the op (adapted
	// from speculative hedge's helped count), ties by height.
	ExitCount
	// GlobalWeight sorts by the profile weight of the op's home block
	// (adapted from speculative hedge's helped weight — in a tree, the
	// weight of all exits an op helps equals its block's weight), ties by
	// height. The paper's best performer.
	GlobalWeight
	// WeightedCount sorts by weight, then exit count, then height.
	WeightedCount
)

// Heuristics lists all four in the paper's presentation order.
func Heuristics() []Heuristic {
	return []Heuristic{DepHeight, ExitCount, GlobalWeight, WeightedCount}
}

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case DepHeight:
		return "depheight"
	case ExitCount:
		return "exitcount"
	case GlobalWeight:
		return "globalweight"
	case WeightedCount:
		return "weightedcount"
	default:
		return "?"
	}
}

// ParseHeuristic resolves a name used on command lines.
func ParseHeuristic(name string) (Heuristic, error) {
	for _, h := range Heuristics() {
		if h.String() == name {
			return h, nil
		}
	}
	return 0, fmt.Errorf("unknown heuristic %q (want depheight, exitcount, globalweight or weightedcount)", name)
}

// Keys returns the node's sort keys under the heuristic, most significant
// first. The list scheduler orders nodes by descending keys.
func (h Heuristic) Keys(n *ddg.Node) [3]float64 {
	switch h {
	case DepHeight:
		return [3]float64{float64(n.Height), 0, 0}
	case ExitCount:
		return [3]float64{float64(n.ExitCount), float64(n.Height), 0}
	case GlobalWeight:
		return [3]float64{n.Weight, float64(n.Height), 0}
	case WeightedCount:
		return [3]float64{n.Weight, float64(n.ExitCount), float64(n.Height)}
	default:
		return [3]float64{}
	}
}
