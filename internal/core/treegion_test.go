package core

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/progen"
	"treegion/internal/region"
)

// fig1 builds the paper's Figure 1 CFG:
//
//	bb1 -> bb2, bb8; bb2 -> bb3, bb4; bb3 -> bb5; bb4 -> bb5;
//	bb5 -> bb6, bb7; bb6 -> bb9; bb7 -> bb9; bb8 -> bb9; bb9 exit.
//
// (Block numbering here is zero-based: paper bbN == our bb(N-1).)
func fig1(t *testing.T) *ir.Function {
	t.Helper()
	f := ir.NewFunction("fig1")
	b := make([]*ir.Block, 9)
	for i := range b {
		b[i] = f.NewBlock()
	}
	p := f.NewReg(ir.ClassPred)
	emit := func(i int, br int, prob float64, ft int) {
		f.EmitALU(b[i], ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
		if br >= 0 {
			f.EmitBrct(b[i], ir.NoReg, p, ir.BlockID(br), prob)
		}
		if ft >= 0 {
			b[i].FallThrough = ir.BlockID(ft)
		}
	}
	emit(0, 7, 0.35, 1) // bb1 -> bb8 (taken), bb2 (fall)
	emit(1, 3, 0.4, 2)  // bb2 -> bb4, bb3
	emit(2, -1, 0, 4)   // bb3 -> bb5
	emit(3, -1, 0, 4)   // bb4 -> bb5
	emit(4, 6, 0.5, 5)  // bb5 -> bb7, bb6
	emit(5, -1, 0, 8)   // bb6 -> bb9
	emit(6, -1, 0, 8)   // bb7 -> bb9
	emit(7, -1, 0, 8)   // bb8 -> bb9
	f.EmitALU(b[8], ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	f.EmitRet(b[8])
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFormFig1(t *testing.T) {
	f := fig1(t)
	g := cfg.New(f)
	regions := Form(f, g)
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	// Expected treegions (paper Fig. 1): {bb1,bb2,bb3,bb4,bb8}, {bb5,bb6,bb7}, {bb9}.
	if len(regions) != 3 {
		t.Fatalf("formed %d treegions, want 3: %v", len(regions), regions)
	}
	byRoot := map[ir.BlockID]*region.Region{}
	for _, r := range regions {
		byRoot[r.Root] = r
	}
	top := byRoot[0]
	if top == nil || len(top.Blocks) != 5 {
		t.Fatalf("top treegion = %v, want 5 blocks", top)
	}
	mid := byRoot[4]
	if mid == nil || len(mid.Blocks) != 3 {
		t.Fatalf("middle treegion = %v, want {bb5,bb6,bb7}", mid)
	}
	last := byRoot[8]
	if last == nil || len(last.Blocks) != 1 {
		t.Fatalf("final treegion = %v, want {bb9}", last)
	}
	if top.PathCount() != 3 {
		t.Errorf("top treegion paths = %d, want 3", top.PathCount())
	}
}

func TestFormInvariantsOnSuite(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		for _, fn := range prog.Funcs {
			g := cfg.New(fn)
			regions := Form(fn, g)
			if err := region.CheckPartition(fn, regions); err != nil {
				t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
			}
			for _, r := range regions {
				if err := r.Validate(); err != nil {
					t.Fatalf("%s/%s: %v", prog.Name, fn.Name, err)
				}
				// No merge point other than the root.
				for _, b := range r.Blocks[1:] {
					if g.IsMergePoint(b) {
						t.Fatalf("%s/%s: merge point bb%d inside treegion", prog.Name, fn.Name, b)
					}
				}
			}
		}
	}
}

func TestFormIsProfileIndependent(t *testing.T) {
	// Form takes no profile at all; forming twice must give identical trees.
	f := fig1(t)
	a := Form(f, cfg.New(f))
	b := Form(f, cfg.New(f))
	if len(a) != len(b) {
		t.Fatal("nondeterministic formation")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("region %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestTreegionStatsExceedBasicBlocks(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		var parts []region.Stats
		for _, fn := range prog.Funcs {
			parts = append(parts, region.ComputeStats(Form(fn, cfg.New(fn)), nil))
		}
		s := region.Merge(parts)
		if s.AvgBlocks <= 1.2 {
			t.Errorf("%s: avg treegion blocks = %.2f; treegions should exceed basic blocks", prog.Name, s.AvgBlocks)
		}
	}
}

// --- treeform-td ---

func TestFormTDFig1MergesPaths(t *testing.T) {
	f := fig1(t)
	prof, err := interp.Profile(f, 1, 500, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	regions := FormTD(f, prof, TDConfig{ExpansionLimit: 4.0, PathLimit: 20, MergeLimit: 4})
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	// With a generous limit the whole CFG collapses into one treegion, as
	// the paper describes ("one large treegion where each execution path ...
	// has been converted into a unique path").
	if len(regions) != 1 {
		t.Fatalf("formed %d regions, want 1 fully duplicated tree: %v", len(regions), regions)
	}
	r := regions[0]
	// Fig. 1 has 4 root-to-exit paths: 1-2-3-5-6-9, 1-2-3-5-7-9, 1-2-4-5'...,
	// plus the 1-8-9 path; after full duplication the tree has one leaf per
	// execution path.
	if r.PathCount() < 4 {
		t.Errorf("paths = %d, want at least the 4 distinct execution paths", r.PathCount())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFormTDRespectsExpansionLimit(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	prog := progs[0] // compress
	for _, fn := range prog.Funcs[:2] {
		before := fn.NumOps()
		prof, err := interp.Profile(fn, 3, 50, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		regions := FormTD(fn, prof, TDConfig{ExpansionLimit: 2.0, PathLimit: 20, MergeLimit: 4})
		after := fn.NumOps()
		// Whole-function growth must stay within the per-region limit
		// (every region holds cur <= limit * base, and bases partition
		// distinct original code, with slack for absorb-after-dup overshoot).
		if float64(after) > 2.6*float64(before) {
			t.Errorf("%s: expansion %.2f exceeds limit with slack", fn.Name, float64(after)/float64(before))
		}
		if err := region.CheckPartition(fn, regions); err != nil {
			t.Fatal(err)
		}
		for _, r := range regions {
			if err := r.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFormTDPreservesSemantics(t *testing.T) {
	progs, err := progen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs[:4] {
		for _, fn := range prog.Funcs[:2] {
			orig := fn.Clone()
			prof, err := interp.Profile(fn, 9, 40, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			FormTD(fn, prof, DefaultTDConfig())
			if err := fn.Validate(); err != nil {
				t.Fatalf("%s: invalid after treeform-td: %v", fn.Name, err)
			}
			for seed := uint64(0); seed < 10; seed++ {
				a, errA := interp.Run(orig, interp.NewOracle(seed), interp.Config{MaxSteps: 2_000_000})
				b, errB := interp.Run(fn, interp.NewOracle(seed), interp.Config{MaxSteps: 2_000_000})
				if errA != nil || errB != nil {
					t.Fatalf("%s: run errors: %v / %v", fn.Name, errA, errB)
				}
				if !equalTraces(a, b) {
					t.Fatalf("%s seed %d: traces diverge after tail duplication", fn.Name, seed)
				}
			}
		}
	}
}

func equalTraces(a, b *interp.Trace) bool {
	if len(a.Blocks) != len(b.Blocks) || len(a.Stores) != len(b.Stores) {
		return false
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			return false
		}
	}
	for i := range a.Stores {
		if a.Stores[i] != b.Stores[i] {
			return false
		}
	}
	return true
}

func TestFormTDConservesProfileMass(t *testing.T) {
	f := fig1(t)
	prof, err := interp.Profile(f, 2, 300, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := prof.Total()
	FormTD(f, prof, TDConfig{ExpansionLimit: 4.0, PathLimit: 20, MergeLimit: 4})
	after := prof.Total()
	if diff := after - before; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("profile mass changed: %v -> %v", before, after)
	}
}

func TestFormTDPathLimit(t *testing.T) {
	f := fig1(t)
	prof, err := interp.Profile(f, 2, 300, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	regions := FormTD(f, prof, TDConfig{ExpansionLimit: 10, PathLimit: 2, MergeLimit: 4})
	for _, r := range regions {
		// One sapling absorption may add at most a handful of paths past
		// the limit before the loop stops; it must not run away.
		if r.PathCount() > 6 {
			t.Errorf("region paths = %d despite limit 2", r.PathCount())
		}
	}
}

func TestFormTDMergeLimit(t *testing.T) {
	// A merge point with 5 predecessors and successors must not be
	// duplicated under MergeLimit 4.
	f := ir.NewFunction("wide")
	entry := f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	arms := make([]*ir.Block, 5)
	merge := f.NewBlock()
	exit := f.NewBlock()
	f.EmitALU(merge, ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
	merge.FallThrough = exit.ID
	f.EmitRet(exit)
	for i := range arms {
		arms[i] = f.NewBlock()
		f.EmitALU(arms[i], ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
		arms[i].FallThrough = merge.ID
	}
	for i := 0; i < 4; i++ {
		f.EmitBrct(entry, ir.NoReg, p, arms[i].ID, 0.2)
	}
	entry.FallThrough = arms[4].ID
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	prof, err := interp.Profile(f, 4, 200, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nBlocks := len(f.Blocks)
	regions := FormTD(f, prof, TDConfig{ExpansionLimit: 10, PathLimit: 20, MergeLimit: 4})
	if len(f.Blocks) != nBlocks {
		t.Fatalf("merge point duplicated despite merge count 5 > limit 4 (blocks %d -> %d)", nBlocks, len(f.Blocks))
	}
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
}

func TestFormTDExitMergeWaiver(t *testing.T) {
	// A successor-less merge point (function exit) with merge count over the
	// limit IS duplicated (the paper's waiver).
	f := ir.NewFunction("exits")
	entry := f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	arms := make([]*ir.Block, 5)
	exit := f.NewBlock()
	f.EmitRet(exit)
	for i := range arms {
		arms[i] = f.NewBlock()
		f.EmitALU(arms[i], ir.Add, f.NewReg(ir.ClassGPR), ir.GPR(0), ir.GPR(1))
		arms[i].FallThrough = exit.ID
	}
	for i := 0; i < 4; i++ {
		f.EmitBrct(entry, ir.NoReg, p, arms[i].ID, 0.2)
	}
	entry.FallThrough = arms[4].ID
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	prof, err := interp.Profile(f, 4, 200, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	regions := FormTD(f, prof, TDConfig{ExpansionLimit: 10, PathLimit: 20, MergeLimit: 4})
	if len(regions) != 1 {
		t.Fatalf("got %d regions, want 1 (exit duplicated into every path)", len(regions))
	}
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
}
