// Package core implements the paper's contribution: treegion formation
// (Fig. 2), treegion formation with tail duplication (Fig. 11), and the four
// treegion scheduling priority heuristics (Section 3).
package core

import (
	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/region"
)

// Form grows treegions over fn exactly as the paper's treeform algorithm:
// every entry (and later every sapling) roots a tree; absorb-into-tree pulls
// in every reachable block that is not a merge point. The result partitions
// the function: every block belongs to exactly one treegion, no treegion
// contains a merge point other than its root, and treegions are acyclic.
//
// Formation is profile-independent, as the paper emphasizes.
func Form(fn *ir.Function, g *cfg.Graph) []*region.Region {
	return FormInline(fn, g, nil)
}

// FormInline is Form with a demand-driven block rewriter (typically the
// inliner, see internal/inline) consulted for every block the moment it joins
// a region. A nil rewriter reproduces Form exactly.
func FormInline(fn *ir.Function, g *cfg.Graph, rw BlockRewriter) []*region.Region {
	f := newFormer(fn, g)
	f.rw = rw
	return f.form(region.KindTreegion, nil)
}

// BlockRewriter is the demand-driven hook treegion formation offers the
// inliner: RewriteBlock is called once for each block right after it joins a
// region (and before its successors are considered for absorption), and may
// splice new blocks onto the function — splitting b and appending fresh
// blocks, but never touching blocks that already belong to regions. It
// returns whether it mutated the function, in which case the former refreshes
// its predecessor bookkeeping from b's new out-edges and the appended blocks.
type BlockRewriter interface {
	RewriteBlock(b ir.BlockID) bool
}

type former struct {
	fn       *ir.Function
	g        *cfg.Graph
	rw       BlockRewriter
	inRegion map[ir.BlockID]bool
	// preds is maintained incrementally so treeform-td sees merge counts
	// that reflect its own tail duplications.
	preds map[ir.BlockID][]ir.BlockID
}

func newFormer(fn *ir.Function, g *cfg.Graph) *former {
	f := &former{
		fn:       fn,
		g:        g,
		inRegion: make(map[ir.BlockID]bool),
		preds:    make(map[ir.BlockID][]ir.BlockID, len(fn.Blocks)),
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			f.preds[s] = append(f.preds[s], b.ID)
		}
	}
	return f
}

// isMerge consults the live predecessor bookkeeping.
func (f *former) isMerge(b ir.BlockID) bool { return len(f.preds[b]) >= 2 }

// entered gives the rewriter its shot at a block that just joined a region,
// then reconciles the predecessor bookkeeping with the mutation: b's old
// out-edges are retired (a splice moves them onto the continuation block) and
// the appended blocks' out-edges are registered, so merge detection keeps
// seeing accurate counts mid-formation.
func (f *former) entered(b ir.BlockID) {
	if f.rw == nil {
		return
	}
	old := f.fn.Block(b).Succs()
	n0 := len(f.fn.Blocks)
	if !f.rw.RewriteBlock(b) {
		return
	}
	for _, s := range old {
		lst := f.preds[s]
		for i, q := range lst {
			if q == b {
				f.preds[s] = append(lst[:i:i], lst[i+1:]...)
				break
			}
		}
	}
	for _, nb := range f.fn.Blocks[n0:] {
		for _, s := range nb.Succs() {
			f.preds[s] = append(f.preds[s], nb.ID)
		}
	}
	for _, s := range f.fn.Block(b).Succs() {
		f.preds[s] = append(f.preds[s], b)
	}
}

// form runs the treeform worklist. If expand is non-nil it is invoked after
// each tree's initial absorption to apply tail duplication (treeform-td).
func (f *former) form(kind region.Kind, expand func(*region.Region)) []*region.Region {
	var out []*region.Region
	queue := []ir.BlockID{f.fn.Entry}
	// Unreachable blocks (possible after other transforms) still get trees.
	for _, b := range f.fn.Blocks {
		if !f.g.Reachable(b.ID) {
			queue = append(queue, b.ID)
		}
	}
	for len(queue) > 0 {
		root := queue[0]
		queue = queue[1:]
		if f.inRegion[root] {
			continue
		}
		r := region.New(f.fn, kind, root)
		f.inRegion[root] = true
		f.entered(root)
		f.absorb(r, root)
		if expand != nil {
			expand(r)
		}
		for _, sap := range f.saplings(r) {
			queue = append(queue, sap)
		}
		out = append(out, r)
	}
	return out
}

// absorb is the paper's absorb-into-tree: starting from the successors of
// start (already a member), pull in every block that is not a merge point
// and not already owned. Successors go to the front of the candidate queue,
// mirroring the paper's depth-first growth.
func (f *former) absorb(r *region.Region, start ir.BlockID) {
	type cand struct{ node, parent ir.BlockID }
	var stack []cand
	push := func(b ir.BlockID) {
		succs := f.fn.Block(b).Succs()
		// Push in reverse so the first successor is processed first.
		for i := len(succs) - 1; i >= 0; i-- {
			stack = append(stack, cand{succs[i], b})
		}
	}
	push(start)
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.inRegion[c.node] {
			continue
		}
		if f.isMerge(c.node) {
			continue // becomes a sapling
		}
		r.Add(c.node, c.parent)
		f.inRegion[c.node] = true
		f.entered(c.node)
		push(c.node)
	}
}

// saplings returns the blocks just beyond the tree's leaves that are not yet
// in any region — the merge points that delimit this tree.
func (f *former) saplings(r *region.Region) []ir.BlockID {
	var out []ir.BlockID
	seen := make(map[ir.BlockID]bool)
	for _, b := range r.Blocks {
		for _, s := range f.fn.Block(b).Succs() {
			if !f.inRegion[s] && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}
