package core

import (
	"time"

	"treegion/internal/cfg"
	"treegion/internal/ir"
	"treegion/internal/profile"
	"treegion/internal/region"
	"treegion/internal/telemetry"
)

// TDConfig carries the paper's tail-duplication heuristics (Section 4): the
// per-treegion code-expansion limit, the path-count limit, and the sapling
// merge-count limit (waived for merge points with no successors, such as
// function exits).
type TDConfig struct {
	ExpansionLimit float64 // e.g. 2.0 or 3.0 (× original code size per treegion)
	PathLimit      int     // paper: 20
	MergeLimit     int     // paper: 4
}

// DefaultTDConfig returns the paper's experimental settings with the 2.0
// expansion limit.
func DefaultTDConfig() TDConfig {
	return TDConfig{ExpansionLimit: 2.0, PathLimit: 20, MergeLimit: 4}
}

// FormTD is the paper's treeform-td (Fig. 11): treegion formation where,
// after a tree's initial absorption, qualifying saplings are tail duplicated
// onto the tree (or absorbed directly once duplication has left them with a
// single incoming edge) until no sapling qualifies. The profile is kept
// consistent: duplicates inherit the weight of the re-routed edge.
func FormTD(fn *ir.Function, prof *profile.Data, td TDConfig) []*region.Region {
	return FormTDTraced(fn, prof, td, nil)
}

// FormTDTraced is FormTD recording each tail duplication's wall time and
// duplicated op count on tr as the tail-dup phase (nil disables tracing).
func FormTDTraced(fn *ir.Function, prof *profile.Data, td TDConfig, tr *telemetry.CompileTrace) []*region.Region {
	return FormTDInlineTraced(fn, prof, td, tr, nil)
}

// FormTDInlineTraced is FormTDTraced with a demand-driven block rewriter
// (the inliner) consulted for every block as it joins a region — including
// blocks a splice itself appended, so inlined bodies absorb and tail
// duplicate like original code. Blocks created by tail duplication are NOT
// offered to the rewriter: residual calls in a duplicate stay residual,
// keeping the duplicate's semantics byte-for-byte those of its original. A
// nil rewriter reproduces FormTDTraced exactly.
func FormTDInlineTraced(fn *ir.Function, prof *profile.Data, td TDConfig, tr *telemetry.CompileTrace, rw BlockRewriter) []*region.Region {
	if td.PathLimit <= 0 {
		td.PathLimit = 20
	}
	if td.MergeLimit <= 0 {
		td.MergeLimit = 4
	}
	if td.ExpansionLimit < 1 {
		td.ExpansionLimit = 1
	}
	g := cfg.New(fn)
	f := newFormer(fn, g)
	f.rw = rw
	e := &expander{f: f, prof: prof, td: td, tr: tr}
	return f.form(region.KindTreegionTD, e.expand)
}

type expander struct {
	f    *former
	prof *profile.Data
	td   TDConfig
	tr   *telemetry.CompileTrace
	// base is the current tree's size at initial absorption; see expand.
	base int
}

// size is the growth measure used for the expansion limit: ops plus one per
// block, so duplicating even an empty block consumes budget (termination).
// Copy ops are excluded: they ride free in the machine model (see
// ListSchedule), and the inliner binds arguments and returns with copies
// while formation is underway — without the exclusion those bindings would
// inflate a tree's recorded original size and let tail duplication overshoot
// the post-hoc RG005 invariant. Legacy formation never sees a Copy (renaming
// inserts them after formation), so the exclusion is exact there.
func blockSize(fn *ir.Function, b ir.BlockID) int {
	n := 1
	for _, op := range fn.Block(b).Ops {
		if op.Opcode != ir.Copy {
			n++
		}
	}
	return n
}

// expand applies tail duplication to one freshly absorbed treegion until no
// sapling qualifies.
//
// The expansion limit is measured against the tree's size at initial
// absorption ("the original code size per treegion"): everything added
// afterwards — duplicates and directly absorbed saplings alike — counts
// against the budget. Because initial absorptions partition the original
// code, this also bounds whole-function growth by the limit, matching the
// paper's observation that actual expansion stays well under the limit
// (Table 3).
func (e *expander) expand(r *region.Region) {
	f := e.f
	fn := f.fn
	e.base = 0
	for _, b := range r.Blocks {
		e.base += blockSize(fn, b)
	}
	for {
		if r.PathCount() > e.td.PathLimit {
			break
		}
		sap := e.pickSapling(r)
		if sap == ir.NoBlock {
			break
		}
		if f.isMerge(sap) {
			// Tail duplicate the sapling onto this tree: re-route the edge
			// from an in-region predecessor onto a fresh duplicate, then
			// absorb the duplicate (and its subtree).
			p := e.inRegionPred(r, sap)
			if p == ir.NoBlock {
				break // defensive; saplings always have an in-region pred
			}
			t0 := time.Now()
			dup := region.TailDuplicate(fn, e.prof, p, sap)
			e.retargetPreds(p, sap, dup)
			r.Add(dup.ID, p)
			f.inRegion[dup.ID] = true
			f.absorb(r, dup.ID)
			e.tr.Observe(telemetry.PhaseTailDup, time.Since(t0), len(dup.Ops))
		} else {
			// A single remaining incoming edge: absorb directly.
			p := f.preds[sap][0]
			r.Add(sap, p)
			f.inRegion[sap] = true
			f.entered(sap)
			f.absorb(r, sap)
		}
	}
}

// pickSapling returns the first sapling of r that passes the paper's three
// qualification tests, or ir.NoBlock.
func (e *expander) pickSapling(r *region.Region) ir.BlockID {
	f := e.f
	curSize := 0
	for _, b := range r.Blocks {
		curSize += blockSize(f.fn, b)
	}
	for _, s := range f.saplings(r) {
		if f.inRegion[s] {
			continue // already claimed by another treegion
		}
		// Merge-count limit, waived for merge points with no successors
		// (function exits), which are cheap to duplicate repeatedly.
		if len(f.preds[s]) > e.td.MergeLimit && f.fn.Block(s).NumSuccs() > 0 {
			continue
		}
		// Code-expansion limit against the tree's initial size.
		add := blockSize(f.fn, s)
		if float64(curSize+add) > e.td.ExpansionLimit*float64(e.base) {
			continue
		}
		return s
	}
	return ir.NoBlock
}

// inRegionPred finds a predecessor of sap that belongs to r.
func (e *expander) inRegionPred(r *region.Region, sap ir.BlockID) ir.BlockID {
	for _, p := range e.f.preds[sap] {
		if r.Contains(p) {
			return p
		}
	}
	return ir.NoBlock
}

// retargetPreds updates the former's predecessor bookkeeping after
// TailDuplicate moved the edge p→sap onto p→dup and created dup's outgoing
// edges.
func (e *expander) retargetPreds(p, sap ir.BlockID, dup *ir.Block) {
	f := e.f
	lst := f.preds[sap]
	for i, q := range lst {
		if q == p {
			f.preds[sap] = append(lst[:i:i], lst[i+1:]...)
			break
		}
	}
	f.preds[dup.ID] = []ir.BlockID{p}
	for _, s := range dup.Succs() {
		f.preds[s] = append(f.preds[s], dup.ID)
	}
}
