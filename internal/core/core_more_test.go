package core

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/ddg"
	"treegion/internal/interp"
	"treegion/internal/ir"
	"treegion/internal/region"
)

func TestHeuristicKeys(t *testing.T) {
	n := &ddg.Node{Height: 3, ExitCount: 2, Weight: 50}
	cases := []struct {
		h    Heuristic
		want [3]float64
	}{
		{DepHeight, [3]float64{3, 0, 0}},
		{ExitCount, [3]float64{2, 3, 0}},
		{GlobalWeight, [3]float64{50, 3, 0}},
		{WeightedCount, [3]float64{50, 2, 3}},
	}
	for _, c := range cases {
		if got := c.h.Keys(n); got != c.want {
			t.Errorf("%v.Keys = %v, want %v", c.h, got, c.want)
		}
	}
}

func TestHeuristicNamesRoundTrip(t *testing.T) {
	for _, h := range Heuristics() {
		got, err := ParseHeuristic(h.String())
		if err != nil || got != h {
			t.Errorf("round trip failed for %v", h)
		}
	}
	if _, err := ParseHeuristic("magic"); err == nil {
		t.Error("bogus heuristic accepted")
	}
}

func TestFormSelfLoop(t *testing.T) {
	// A self-looping block is its own merge point: it roots a singleton
	// treegion and the back edge is an exit to its own root.
	f := ir.NewFunction("self")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	p := f.NewReg(ir.ClassPred)
	b0.FallThrough = b1.ID
	f.EmitCmpp(b1, p, ir.NoReg, ir.CondLT, ir.GPR(0), ir.GPR(0))
	f.EmitBrct(b1, ir.NoReg, p, b1.ID, 0.5)
	b1.FallThrough = b2.ID
	f.EmitRet(b2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	regions := Form(f, cfg.New(f))
	if err := region.CheckPartition(f, regions); err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if !r.Contains(b1.ID) {
			continue
		}
		if r.Root != b1.ID {
			t.Fatalf("self-loop block must root its treegion, got %v", r)
		}
		// The self edge is an exit back to the root, never a tree edge.
		selfExit := false
		for _, e := range r.Exits() {
			if e.From == b1.ID && e.To == b1.ID {
				selfExit = true
			}
		}
		if !selfExit {
			t.Fatal("self edge not classified as an exit")
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFormDeepChainSingleTree(t *testing.T) {
	// A merge-free chain of N blocks becomes exactly one treegion.
	f := ir.NewFunction("deep")
	const n = 20
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for i := 0; i < n-1; i++ {
		blocks[i].FallThrough = blocks[i+1].ID
	}
	f.EmitRet(blocks[n-1])
	regions := Form(f, cfg.New(f))
	if len(regions) != 1 || len(regions[0].Blocks) != n {
		t.Fatalf("chain formed %d regions", len(regions))
	}
	if regions[0].PathCount() != 1 {
		t.Fatalf("chain tree has %d paths", regions[0].PathCount())
	}
}

func TestFormTDLimitOneIsPlainForm(t *testing.T) {
	// Expansion limit 1.0 leaves no duplication budget: treeform-td must
	// partition exactly like plain treeform (block sets, not kinds).
	f := fig1(t)
	prof, err := interp.Profile(f, 5, 200, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f2 := f.Clone()
	plain := Form(f, cfg.New(f))
	td := FormTD(f2, prof, TDConfig{ExpansionLimit: 1.0, PathLimit: 20, MergeLimit: 4})
	if len(plain) != len(td) {
		t.Fatalf("limit-1.0 treeform-td made %d regions, plain made %d", len(td), len(plain))
	}
	if f2.NumOps() != f.NumOps() {
		t.Fatal("limit-1.0 duplicated code")
	}
	for i := range plain {
		if plain[i].String()[5:] != td[i].String()[8:] { // strip "tree "/"tree-td "
			t.Fatalf("region %d differs:\n%s\n%s", i, plain[i], td[i])
		}
	}
}

func TestFormTDDeterministic(t *testing.T) {
	mk := func() ([]*region.Region, *ir.Function) {
		f := fig1(t)
		prof, err := interp.Profile(f, 5, 200, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return FormTD(f, prof, DefaultTDConfig()), f
	}
	a, fa := mk()
	b, fb := mk()
	if fa.String() != fb.String() {
		t.Fatal("treeform-td transformed the CFG nondeterministically")
	}
	if len(a) != len(b) {
		t.Fatal("region counts differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("regions differ")
		}
	}
}

func TestExitsBelowMatchesHeuristicIntuition(t *testing.T) {
	// On the Fig. 1 tree, root ops help every exit; leaf ops help only
	// their own.
	f := fig1(t)
	regions := Form(f, cfg.New(f))
	var top *region.Region
	for _, r := range regions {
		if r.Root == 0 {
			top = r
		}
	}
	eb := top.ExitsBelow()
	if eb[0] <= eb[2] || eb[0] <= eb[3] {
		t.Fatalf("root exit count %d must exceed leaf counts %d/%d", eb[0], eb[2], eb[3])
	}
}
