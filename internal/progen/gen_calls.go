package progen

import (
	"fmt"
	"math/rand"

	"treegion/internal/ir"
)

// Interprocedural generation (Preset.Call != nil). Callees are generated
// first — every one takes two GPR parameters and returns one GPR, so any
// call site is convention-compatible with any callee — then the callers,
// which invoke them from loop bodies: the paper's motivating shape for
// demand-driven inlining, where a call sitting on the hot path of a loop
// caps every treegion rooted at the loop header until the callee is spliced
// in. Generation stays fully deterministic in the preset seed; legacy
// presets never reach this path, so their rng streams are untouched.

func generateCalls(p Preset) (*Program, error) {
	prog := &Program{Name: p.Name, Preset: p}
	rng := rand.New(rand.NewSource(int64(p.Seed)))
	cs := p.Call

	var callees []*ir.Function
	if cs.ChainDepth > 0 {
		// Chain: callers invoke c0; c<i> calls c<i+1>; c<depth-1> is the
		// leaf. Generated leaf-first so each links to an existing callee.
		callees = make([]*ir.Function, cs.ChainDepth)
		var next *ir.Function
		for i := cs.ChainDepth - 1; i >= 0; i-- {
			callees[i] = genCallee(fmt.Sprintf("%s_c%d", p.Name, i), p, rng, next)
			next = callees[i]
		}
	} else {
		n := cs.Callees
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			callees = append(callees, genCallee(fmt.Sprintf("%s_c%d", p.Name, i), p, rng, nil))
		}
	}
	pickCallee := func() *ir.Function {
		if cs.ChainDepth > 0 || len(callees) == 1 || rng.Float64() < cs.HotFrac {
			return callees[0]
		}
		return callees[1+rng.Intn(len(callees)-1)]
	}

	for i := 0; i < p.NumFuncs; i++ {
		scale := 0.5 + rng.Float64() // 0.5x .. 1.5x, as in Generate
		budget := int(float64(p.OpsPerFunc) * scale)
		prog.Funcs = append(prog.Funcs,
			genCaller(fmt.Sprintf("%s_f%d", p.Name, i), p, budget, rng, pickCallee))
	}
	prog.Funcs = append(prog.Funcs, callees...)

	for _, fn := range prog.Funcs {
		if err := fn.Validate(); err != nil {
			return nil, fmt.Errorf("progen: generated invalid function: %w", err)
		}
	}
	// The program constructor re-derives the call graph and checks every
	// call site against its callee's convention.
	if _, err := ir.NewProgram(prog.Funcs); err != nil {
		return nil, fmt.Errorf("progen: generated invalid program: %w", err)
	}
	return prog, nil
}

// genCallee builds one callee: params seed the operand pool (so the body's
// dataflow genuinely depends on the arguments), a short ILP-bearing body
// with at most one conditional, and a single RET returning the last defined
// integer value. When next is non-nil the body calls it once mid-way — the
// chain link for calldeep-style presets.
func genCallee(name string, p Preset, rng *rand.Rand, next *ir.Function) *ir.Function {
	f := ir.NewFunction(name)
	g := &gen{f: f, p: p, rng: rng, budget: p.Call.CalleeOps}
	a := f.NewReg(ir.ClassGPR)
	b := f.NewReg(ir.ClassGPR)
	f.Params = []ir.Reg{a, b}
	entry := f.NewBlock()

	// Seed pools: one immediate address base plus the first parameter (the
	// callee indexing off its argument), and the parameters as operands.
	base := f.NewReg(ir.ClassGPR)
	f.EmitMovI(entry, base, 4096)
	g.bases = append(g.bases, base, a)
	g.pool = append(g.pool, a, b)
	for i := 0; i < 2; i++ {
		r := f.NewReg(ir.ClassGPR)
		f.EmitMovI(entry, r, int64(rng.Intn(1000)))
		g.pool = append(g.pool, r)
	}
	g.last = a

	half := g.budget / 2
	g.emitOps(entry, half)
	cur := entry
	if rng.Float64() < 0.7 {
		// One shallow conditional keeps callees from being pure straight
		// lines without blowing the inliner's block cap.
		cur = g.genCalleeIf(cur)
	}
	if next != nil {
		d := f.NewReg(ir.ClassGPR)
		f.EmitCall(cur, next.Name, []ir.Reg{d}, []ir.Reg{g.pick(), g.pick()})
		g.define(d)
	}
	if g.budget > 0 {
		g.emitOps(cur, g.budget)
	}
	f.Rets = []ir.Reg{g.last}
	f.EmitRet(cur)
	return f
}

// genCalleeIf emits an if-then inside a callee: cur {ops; cmpp; br then} ->
// join, then -> join. Unlike genIf, definitions made in the conditional arm
// are kept out of the operand pools: a callee body must read only values
// defined on every path to it. A read of a conditionally-defined register
// is well-defined intraprocedurally (the register deterministically holds
// zero or the arm's value), but a fresh frame re-zeroes it on every call
// while a spliced copy of the body persists it across the caller's loop
// iterations — the one observable difference inlining cannot hide.
func (g *gen) genCalleeIf(cur *ir.Block) *ir.Block {
	g.emitOps(cur, g.blockOps())
	p := g.emitCmpp(cur)
	then := g.f.NewBlock()
	join := g.f.NewBlock()
	g.emitBranch(cur, p, then.ID, g.twoWayProb())
	cur.FallThrough = join.ID
	pool := append([]ir.Reg(nil), g.pool...)
	recent := append([]ir.Reg(nil), g.recent...)
	last := g.last
	g.emitOps(then, 1+g.rng.Intn(4))
	then.FallThrough = join.ID
	g.pool, g.recent, g.last = pool, recent, last
	g.emitOps(join, 1+g.rng.Intn(3))
	return join
}

// genCaller builds one caller: the usual pool seeding, then CallsPerFunc
// call-bearing loops separated by ordinary intraprocedural structure.
func genCaller(name string, p Preset, budget int, rng *rand.Rand, pickCallee func() *ir.Function) *ir.Function {
	f := ir.NewFunction(name)
	g := &gen{f: f, p: p, rng: rng, budget: budget}
	entry := f.NewBlock()
	for i := 0; i < 4; i++ {
		r := f.NewReg(ir.ClassGPR)
		f.EmitMovI(entry, r, int64(64+i*512))
		g.bases = append(g.bases, r)
	}
	for i := 0; i < 8; i++ {
		r := f.NewReg(ir.ClassGPR)
		if i%2 == 0 {
			f.EmitLd(entry, r, g.bases[i%len(g.bases)], int64(8*i))
		} else {
			f.EmitMovI(entry, r, int64(rng.Intn(1000)))
		}
		g.pool = append(g.pool, r)
		g.last = r
	}
	for i := 0; i < 3; i++ {
		r := f.NewReg(ir.ClassFPR)
		f.EmitMovI(entry, r, int64(i+1))
		g.fpool = append(g.fpool, r)
	}

	cur := entry
	for i := 0; i < p.Call.CallsPerFunc; i++ {
		if g.budget > 0 {
			cur = g.genStruct(cur, 1)
		}
		cur = g.genCallLoop(cur, pickCallee())
	}
	g.emitOps(cur, 2)
	f.EmitRet(cur)
	return f
}

// genCallLoop emits a while loop whose body calls callee and consumes its
// result: the loop header is a merge (preheader + latch) and therefore
// roots its own treegion, and the call sits squarely on the region's hot
// path — exactly the shape where inline-on-absorb either splices the callee
// or leaves the call as a scheduling barrier.
func (g *gen) genCallLoop(cur *ir.Block, callee *ir.Function) *ir.Block {
	header := g.f.NewBlock()
	after := g.f.NewBlock()
	cur.FallThrough = header.ID
	g.emitOps(header, 2)
	p := g.emitCmpp(header)
	m := g.p.LoopIterMean
	if m < 2 {
		m = 2
	}
	body := g.f.NewBlock()
	g.emitBranch(header, p, body.ID, m/(m+1))
	header.FallThrough = after.ID
	g.emitOps(body, g.blockOps())
	d := g.f.NewReg(ir.ClassGPR)
	g.f.EmitCall(body, callee.Name, []ir.Reg{d}, []ir.Reg{g.pick(), g.pick()})
	g.define(d)
	// Post-call ops make the body's continuation non-trivial, so a splice
	// exercises the host-block split (prefix + continuation) rather than
	// degenerating to an empty tail.
	g.emitOps(body, 2)
	body.FallThrough = header.ID // back edge
	g.emitOps(after, 1+g.rng.Intn(3))
	return after
}
