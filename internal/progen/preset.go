// Package progen generates synthetic benchmark programs whose control-flow
// shape and profile skew mimic the structural traits the paper reports for
// SPECint95. The paper's results are driven by CFG topology and profile
// distribution — not benchmark semantics — so each preset dials in the traits
// the paper uses to explain its data:
//
//   - gcc / perl: frequent wide, shallow multiway branches whose arm weights
//     are heavily skewed with many never-taken arms (Fig. 9) — the treegions
//     that break the exit-count heuristic;
//   - ijpeg: strongly biased two-way branches, so treegions contain a single
//     hot path (Fig. 7);
//   - vortex: long "linearized" check chains with rarely taken escape exits
//     and near-equal block weights (Fig. 10) — the treegions that hurt the
//     weighted-count heuristic;
//   - compress / li: small loopy programs; m88ksim / go: mid-sized mixes with
//     larger basic blocks.
package progen

// StructKind indexes the structure-mix weights of a Preset.
type StructKind int

// Generable control structures.
const (
	KindStraight StructKind = iota // straight-line ops appended to the block
	KindIf                         // if-then
	KindIfElse                     // if-then-else
	KindSwitch                     // multiway branch with a join
	KindLoop                       // while loop (header is a merge point)
	KindChain                      // linearized check chain with escape exits
	numKinds
)

// Preset parameterizes generation for one synthetic benchmark.
type Preset struct {
	Name string
	Seed uint64

	// NumFuncs functions are generated; function i targets roughly
	// OpsPerFunc ops (±50%, varied by the rng).
	NumFuncs   int
	OpsPerFunc int

	// BlockOpsMin/Max bound the computational ops emitted per straight-line
	// run (branch machinery — CMPP, PBR, branches — comes on top).
	BlockOpsMin, BlockOpsMax int

	// StructWeights is the relative mix of control structures.
	StructWeights [numKinds]float64

	// MaxDepth bounds structure nesting.
	MaxDepth int

	// Bias is the taken-probability given to biased two-way branches;
	// BiasedFrac is the fraction of two-way branches that are biased
	// (the rest draw uniformly from [0.2, 0.8]).
	Bias       float64
	BiasedFrac float64

	// SwitchArmsMin/Max bound multiway-branch arity. ZeroArmFrac is the
	// fraction of arms that get (near-)zero probability; the remaining
	// probability mass is split unevenly across the rest. EmptyArmFrac is
	// the fraction of arms containing no code at all (a bare "case: break"
	// or a shared handler reached through an empty block) — real switches
	// are mostly jump tables, not sixteen distinct computations.
	SwitchArmsMin, SwitchArmsMax int
	ZeroArmFrac                  float64
	EmptyArmFrac                 float64

	// LoopIterMean is the mean trip count of generated loops.
	LoopIterMean float64

	// ChainLenMin/Max bound linearized-chain length; ChainEscapeProb is the
	// per-block probability of taking the escape exit.
	ChainLenMin, ChainLenMax int
	ChainEscapeProb          float64

	// ChainFrac is the probability that an ALU op reads the most recently
	// defined register (serializing the dataflow and lowering ILP).
	ChainFrac float64

	// Operand mix.
	LoadFrac, StoreFrac, FPFrac, ImmFrac float64

	// EmitPbr controls whether branches are fed by PBR ops (PlayDoh-style
	// branch-target-register priming), as in the paper's examples.
	EmitPbr bool

	// ProfileTrips is how many interpreter trips the suite uses to profile
	// each generated function.
	ProfileTrips int

	// Call, when non-nil, switches generation to the interprocedural
	// generator (gen_calls.go): callee functions with explicit
	// parameter/return conventions are generated first, then callers that
	// invoke them from loop bodies. Legacy presets keep this nil and their
	// rng streams (and therefore every golden) are untouched.
	Call *CallSpec
}

// CallSpec parameterizes interprocedural generation. Every callee uses the
// fixed two-GPR-parameter, one-GPR-return convention, so any call site is
// arity-compatible with any callee.
type CallSpec struct {
	// Callees is the number of independent leaf callees. Ignored when
	// ChainDepth is set.
	Callees int
	// HotFrac is the probability that a call site targets callee 0; the
	// rest spread uniformly over the others (the 90/10 skew that makes
	// demand-driven inlining pay off without global code explosion).
	HotFrac float64
	// CalleeOps is the per-callee computational-op budget (branch
	// machinery comes on top, as everywhere in progen).
	CalleeOps int
	// CallsPerFunc is the number of call-bearing loops per caller.
	CallsPerFunc int
	// ChainDepth, when positive, generates a call chain instead of
	// independent leaves: callers invoke c0, c0 calls c1, ... down to the
	// leaf c<ChainDepth-1>, so fully absorbing a chain takes ChainDepth
	// levels of inlining.
	ChainDepth int
}

// Presets returns the eight SPECint95-flavoured presets, in the paper's
// table order.
func Presets() []Preset {
	return []Preset{
		{
			Name: "compress", Seed: 101,
			NumFuncs: 4, OpsPerFunc: 260,
			BlockOpsMin: 3, BlockOpsMax: 7,
			StructWeights: [numKinds]float64{KindStraight: 2, KindIf: 3, KindIfElse: 2, KindSwitch: 0.3, KindLoop: 2, KindChain: 0.2},
			MaxDepth:      3,
			Bias:          0.85, BiasedFrac: 0.6,
			SwitchArmsMin: 3, SwitchArmsMax: 5, ZeroArmFrac: 0.3, EmptyArmFrac: 0.3,
			LoopIterMean: 12,
			ChainLenMin:  3, ChainLenMax: 5, ChainEscapeProb: 0.02,
			ChainFrac: 0.75,
			LoadFrac:  0.2, StoreFrac: 0.12, FPFrac: 0.0, ImmFrac: 0.1,
			EmitPbr: true, ProfileTrips: 120,
		},
		{
			Name: "gcc", Seed: 102,
			NumFuncs: 10, OpsPerFunc: 900,
			BlockOpsMin: 3, BlockOpsMax: 8,
			StructWeights: [numKinds]float64{KindStraight: 2, KindIf: 2.5, KindIfElse: 2, KindSwitch: 1.0, KindLoop: 1, KindChain: 0.3},
			MaxDepth:      4,
			Bias:          0.9, BiasedFrac: 0.65,
			SwitchArmsMin: 5, SwitchArmsMax: 13, ZeroArmFrac: 0.7, EmptyArmFrac: 0.55,
			LoopIterMean: 8,
			ChainLenMin:  3, ChainLenMax: 6, ChainEscapeProb: 0.02,
			ChainFrac: 0.72,
			LoadFrac:  0.22, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.12,
			EmitPbr: true, ProfileTrips: 60,
		},
		{
			Name: "go", Seed: 103,
			NumFuncs: 8, OpsPerFunc: 700,
			BlockOpsMin: 3, BlockOpsMax: 8,
			StructWeights: [numKinds]float64{KindStraight: 2, KindIf: 3, KindIfElse: 2.5, KindSwitch: 1, KindLoop: 1.2, KindChain: 0.3},
			MaxDepth:      4,
			Bias:          0.75, BiasedFrac: 0.5,
			SwitchArmsMin: 4, SwitchArmsMax: 9, ZeroArmFrac: 0.4, EmptyArmFrac: 0.4,
			LoopIterMean: 10,
			ChainLenMin:  3, ChainLenMax: 6, ChainEscapeProb: 0.03,
			ChainFrac: 0.75,
			LoadFrac:  0.2, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.12,
			EmitPbr: true, ProfileTrips: 70,
		},
		{
			Name: "ijpeg", Seed: 104,
			NumFuncs: 6, OpsPerFunc: 520,
			BlockOpsMin: 3, BlockOpsMax: 8,
			StructWeights: [numKinds]float64{KindStraight: 2.5, KindIf: 3, KindIfElse: 1.5, KindSwitch: 0.4, KindLoop: 2.2, KindChain: 0.2},
			MaxDepth:      3,
			Bias:          0.985, BiasedFrac: 0.88,
			SwitchArmsMin: 3, SwitchArmsMax: 5, ZeroArmFrac: 0.5, EmptyArmFrac: 0.4,
			LoopIterMean: 25,
			ChainLenMin:  3, ChainLenMax: 5, ChainEscapeProb: 0.01,
			ChainFrac: 0.68,
			LoadFrac:  0.25, StoreFrac: 0.14, FPFrac: 0.06, ImmFrac: 0.08,
			EmitPbr: true, ProfileTrips: 60,
		},
		{
			Name: "li", Seed: 105,
			NumFuncs: 6, OpsPerFunc: 380,
			BlockOpsMin: 2, BlockOpsMax: 6,
			StructWeights: [numKinds]float64{KindStraight: 2, KindIf: 3, KindIfElse: 2.2, KindSwitch: 0.8, KindLoop: 1.5, KindChain: 0.3},
			MaxDepth:      3,
			Bias:          0.8, BiasedFrac: 0.55,
			SwitchArmsMin: 3, SwitchArmsMax: 6, ZeroArmFrac: 0.4, EmptyArmFrac: 0.4,
			LoopIterMean: 9,
			ChainLenMin:  3, ChainLenMax: 5, ChainEscapeProb: 0.03,
			ChainFrac: 0.78,
			LoadFrac:  0.24, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.12,
			EmitPbr: true, ProfileTrips: 80,
		},
		{
			Name: "m88ksim", Seed: 106,
			NumFuncs: 7, OpsPerFunc: 640,
			BlockOpsMin: 5, BlockOpsMax: 10,
			StructWeights: [numKinds]float64{KindStraight: 2.5, KindIf: 3, KindIfElse: 2.2, KindSwitch: 1.2, KindLoop: 1.4, KindChain: 0.3},
			MaxDepth:      4,
			Bias:          0.88, BiasedFrac: 0.6,
			SwitchArmsMin: 4, SwitchArmsMax: 10, ZeroArmFrac: 0.45, EmptyArmFrac: 0.4,
			LoopIterMean: 12,
			ChainLenMin:  3, ChainLenMax: 6, ChainEscapeProb: 0.02,
			ChainFrac: 0.72,
			LoadFrac:  0.2, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.1,
			EmitPbr: true, ProfileTrips: 70,
		},
		{
			Name: "perl", Seed: 107,
			NumFuncs: 8, OpsPerFunc: 780,
			BlockOpsMin: 3, BlockOpsMax: 9,
			StructWeights: [numKinds]float64{KindStraight: 2, KindIf: 2.2, KindIfElse: 1.8, KindSwitch: 1.1, KindLoop: 1, KindChain: 0.3},
			MaxDepth:      4,
			Bias:          0.9, BiasedFrac: 0.65,
			SwitchArmsMin: 6, SwitchArmsMax: 16, ZeroArmFrac: 0.75, EmptyArmFrac: 0.6,
			LoopIterMean: 8,
			ChainLenMin:  3, ChainLenMax: 6, ChainEscapeProb: 0.02,
			ChainFrac: 0.72,
			LoadFrac:  0.22, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.12,
			EmitPbr: true, ProfileTrips: 60,
		},
		{
			Name: "vortex", Seed: 108,
			NumFuncs: 7, OpsPerFunc: 620,
			BlockOpsMin: 6, BlockOpsMax: 13,
			StructWeights: [numKinds]float64{KindStraight: 2.5, KindIf: 1.8, KindIfElse: 1.2, KindSwitch: 0.6, KindLoop: 1, KindChain: 3},
			MaxDepth:      3,
			Bias:          0.9, BiasedFrac: 0.6,
			SwitchArmsMin: 3, SwitchArmsMax: 6, ZeroArmFrac: 0.4, EmptyArmFrac: 0.4,
			LoopIterMean: 10,
			ChainLenMin:  5, ChainLenMax: 10, ChainEscapeProb: 0.006,
			ChainFrac: 0.68,
			LoadFrac:  0.2, StoreFrac: 0.12, FPFrac: 0.0, ImmFrac: 0.1,
			EmitPbr: true, ProfileTrips: 70,
		},
	}
}

// Stress returns the scale-out stress preset: an order of magnitude more
// ops per function than the largest suite benchmark and three times as
// many functions, built to saturate the batched work-stealing pipeline and
// the shard router under load. It is deliberately NOT part of Presets():
// the eight-benchmark suite is pinned by goldens and the paper's tables,
// while stress exists only for benchmarks and load generation (reachable
// through PresetByName("stress")). ProfileTrips is kept low — profiling a
// 7000-op function 12 times already dwarfs a suite benchmark's work.
func Stress() Preset {
	return Preset{
		Name: "stress", Seed: 901,
		NumFuncs: 24, OpsPerFunc: 7000,
		BlockOpsMin: 4, BlockOpsMax: 10,
		StructWeights: [numKinds]float64{KindStraight: 2, KindIf: 2.5, KindIfElse: 2, KindSwitch: 1, KindLoop: 1.2, KindChain: 0.5},
		MaxDepth:      5,
		Bias:          0.88, BiasedFrac: 0.6,
		SwitchArmsMin: 4, SwitchArmsMax: 12, ZeroArmFrac: 0.5, EmptyArmFrac: 0.45,
		LoopIterMean: 10,
		ChainLenMin:  3, ChainLenMax: 7, ChainEscapeProb: 0.02,
		ChainFrac: 0.72,
		LoadFrac:  0.22, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.1,
		EmitPbr: true, ProfileTrips: 12,
	}
}

// Stress2 returns the asymptotic stress tier: functions another 5-6× past
// stress (roughly 40-150× the suite presets), built from enormous
// straight-line blocks (512-1536 ops against stress's 4-10) with a much
// lower ChainFrac so dataflow stays wide. Treegions split at merge points,
// so region size — the scheduler's rank space — is set by block size, not
// function size: stress regions top out near 170 nodes, stress2 regions
// near 10000, with dozens past 4096 (a three-level bitmap). That is
// exactly the shape where ready-set churn dominates and asymptotic wins
// (the CLZ bitmap queues vs. the O(log n) heaps) separate from
// constant-factor ones. Like Stress it is NOT part of Presets() — the
// suite and its goldens stay pinned — and is reachable only through
// PresetByName("stress2"). ProfileTrips is minimal: one 40000-op function
// dwarfs an entire suite benchmark.
func Stress2() Preset {
	return Preset{
		Name: "stress2", Seed: 902,
		NumFuncs: 6, OpsPerFunc: 40000,
		BlockOpsMin: 512, BlockOpsMax: 1536,
		StructWeights: [numKinds]float64{KindStraight: 8, KindIf: 2.5, KindIfElse: 2, KindSwitch: 1, KindLoop: 0.2, KindChain: 0.5},
		MaxDepth:      2,
		Bias:          0.88, BiasedFrac: 0.6,
		SwitchArmsMin: 4, SwitchArmsMax: 12, ZeroArmFrac: 0.5, EmptyArmFrac: 0.45,
		LoopIterMean: 10,
		ChainLenMin:  3, ChainLenMax: 7, ChainEscapeProb: 0.02,
		ChainFrac: 0.35,
		LoadFrac:  0.22, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.1,
		EmitPbr: true, ProfileTrips: 4,
	}
}

// CallHot returns the skewed interprocedural preset: callers whose loop
// bodies call one of four leaf callees, with 90% of the call sites aimed at
// the hot callee 0. It is the benchmark the demand-driven inliner is judged
// on — inline-on should roughly flatten the hot loops into call-free
// treegions while the cold callees stay behind barriers. Like Stress it is
// NOT part of Presets(): the eight-benchmark suite is pinned by goldens.
func CallHot() Preset {
	return Preset{
		Name: "callhot", Seed: 701,
		NumFuncs: 5, OpsPerFunc: 90,
		BlockOpsMin: 3, BlockOpsMax: 6,
		StructWeights: [numKinds]float64{KindStraight: 2.5, KindIf: 2, KindIfElse: 1},
		MaxDepth:      2,
		Bias:          0.9, BiasedFrac: 0.6,
		SwitchArmsMin: 3, SwitchArmsMax: 4, ZeroArmFrac: 0.3, EmptyArmFrac: 0.3,
		LoopIterMean: 12,
		ChainLenMin:  3, ChainLenMax: 4, ChainEscapeProb: 0.02,
		ChainFrac: 0.6,
		LoadFrac:  0.18, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.1,
		EmitPbr: true, ProfileTrips: 60,
		Call: &CallSpec{Callees: 4, HotFrac: 0.9, CalleeOps: 18, CallsPerFunc: 5},
	}
}

// CallDeep returns the chained interprocedural preset: callers invoke c0,
// which calls c1, which calls the leaf c2 — a depth-3 chain that exactly
// meets the inliner's default MaxDepth, exercising recursion-depth
// accounting and the per-function expansion budget. Reachable only through
// PresetByName("calldeep").
func CallDeep() Preset {
	return Preset{
		Name: "calldeep", Seed: 702,
		NumFuncs: 4, OpsPerFunc: 70,
		BlockOpsMin: 3, BlockOpsMax: 6,
		StructWeights: [numKinds]float64{KindStraight: 2.5, KindIf: 2, KindIfElse: 1},
		MaxDepth:      2,
		Bias:          0.88, BiasedFrac: 0.6,
		SwitchArmsMin: 3, SwitchArmsMax: 4, ZeroArmFrac: 0.3, EmptyArmFrac: 0.3,
		LoopIterMean: 10,
		ChainLenMin:  3, ChainLenMax: 4, ChainEscapeProb: 0.02,
		ChainFrac: 0.6,
		LoadFrac:  0.18, StoreFrac: 0.1, FPFrac: 0.0, ImmFrac: 0.1,
		EmitPbr: true, ProfileTrips: 60,
		Call: &CallSpec{ChainDepth: 3, HotFrac: 1, CalleeOps: 14, CallsPerFunc: 4},
	}
}

// PresetByName returns the preset with the given name, or false. "stress",
// "stress2", "callhot" and "calldeep" resolve to the out-of-suite presets.
func PresetByName(name string) (Preset, bool) {
	switch name {
	case "stress":
		return Stress(), true
	case "stress2":
		return Stress2(), true
	case "callhot":
		return CallHot(), true
	case "calldeep":
		return CallDeep(), true
	}
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
