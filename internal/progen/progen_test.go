package progen

import (
	"testing"

	"treegion/internal/cfg"
	"treegion/internal/interp"
	"treegion/internal/ir"
)

func TestGenerateAllValid(t *testing.T) {
	progs, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 8 {
		t.Fatalf("got %d programs, want 8", len(progs))
	}
	for _, prog := range progs {
		if len(prog.Funcs) == 0 {
			t.Errorf("%s: no functions", prog.Name)
		}
		for _, fn := range prog.Funcs {
			if err := fn.Validate(); err != nil {
				t.Errorf("%s: %v", prog.Name, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := PresetByName("compress")
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Funcs) != len(b.Funcs) {
		t.Fatal("function counts differ")
	}
	for i := range a.Funcs {
		if a.Funcs[i].String() != b.Funcs[i].String() {
			t.Fatalf("function %d differs between identical generations", i)
		}
	}
}

func TestGeneratedFunctionsTerminate(t *testing.T) {
	progs, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		for _, fn := range prog.Funcs {
			if _, err := interp.Run(fn, interp.NewOracle(99), interp.Config{MaxSteps: 2_000_000}); err != nil {
				t.Errorf("%s/%s: %v", prog.Name, fn.Name, err)
			}
		}
	}
}

func TestGeneratedShapeTraits(t *testing.T) {
	// gcc preset must contain wide multiway branches; ijpeg must be biased.
	gcc, _ := PresetByName("gcc")
	prog, err := Generate(gcc)
	if err != nil {
		t.Fatal(err)
	}
	maxArms := 0
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if n := b.NumSuccs(); n > maxArms {
				maxArms = n
			}
		}
	}
	if maxArms < 6 {
		t.Errorf("gcc preset max block arity = %d, want wide multiway branches", maxArms)
	}

	ij, _ := PresetByName("ijpeg")
	iprog, err := Generate(ij)
	if err != nil {
		t.Fatal(err)
	}
	biased, total := 0, 0
	for _, fn := range iprog.Funcs {
		for _, b := range fn.Blocks {
			for _, op := range b.Ops {
				if op.Opcode.IsConditionalBranch() {
					total++
					if op.Prob > 0.95 || op.Prob < 0.05 {
						biased++
					}
				}
			}
		}
	}
	if total == 0 || float64(biased)/float64(total) < 0.5 {
		t.Errorf("ijpeg preset biased branches = %d/%d, want a majority", biased, total)
	}
}

func TestGeneratedCFGsHaveMergesAndLoops(t *testing.T) {
	p, _ := PresetByName("compress")
	prog, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	merges, backs := 0, 0
	for _, fn := range prog.Funcs {
		g := cfg.New(fn)
		for _, b := range fn.Blocks {
			if g.IsMergePoint(b.ID) {
				merges++
			}
		}
		backs += len(g.BackEdges())
	}
	if merges == 0 {
		t.Error("no merge points generated; treegion formation would be trivial")
	}
	if backs == 0 {
		t.Error("no loops generated")
	}
}

func TestBranchProbsWellFormed(t *testing.T) {
	progs, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range progs {
		for _, fn := range prog.Funcs {
			for _, b := range fn.Blocks {
				for _, op := range b.Ops {
					if op.Opcode.IsConditionalBranch() {
						if op.Prob < 0 || op.Prob > 1 {
							t.Fatalf("%s: branch prob %v out of range", prog.Name, op.Prob)
						}
					}
				}
			}
		}
	}
}

func TestPresetByName(t *testing.T) {
	if _, ok := PresetByName("gcc"); !ok {
		t.Fatal("gcc preset missing")
	}
	if _, ok := PresetByName("nonesuch"); ok {
		t.Fatal("bogus preset found")
	}
}

func TestInsertBeforeBranches(t *testing.T) {
	f := ir.NewFunction("t")
	b, tgt := f.NewBlock(), f.NewBlock()
	f.EmitALU(b, ir.Add, ir.GPR(1), ir.GPR(0), ir.GPR(0))
	f.EmitBrct(b, ir.NoReg, ir.Pred(0), tgt.ID, 0.5)
	op := f.NewOp(ir.Pbr)
	op.Dests = []ir.Reg{ir.BTR(0)}
	op.Target = tgt.ID
	insertBeforeBranches(b, op)
	if b.Ops[1].Opcode != ir.Pbr || b.Ops[2].Opcode != ir.Brct {
		t.Fatalf("PBR not inserted before branch: %v", b.Ops)
	}
}
