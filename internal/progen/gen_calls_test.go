package progen

import (
	"strings"
	"testing"

	"treegion/internal/interp"
	"treegion/internal/ir"
)

// callPresets returns the two call-emitting presets, which are reachable
// only by name — they must not join the paper's eight-benchmark suite.
func callPresets(t *testing.T) []Preset {
	t.Helper()
	var out []Preset
	for _, name := range []string{"callhot", "calldeep"} {
		p, ok := PresetByName(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		if p.Call == nil {
			t.Fatalf("preset %s has no call spec", name)
		}
		out = append(out, p)
	}
	return out
}

func TestCallPresetsOutOfSuite(t *testing.T) {
	for _, p := range Presets() {
		if p.Call != nil {
			t.Fatalf("call-emitting preset %s leaked into the benchmark suite", p.Name)
		}
	}
	callPresets(t)
}

func TestGenerateCallsDeterministic(t *testing.T) {
	for _, p := range callPresets(t) {
		a, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Funcs) != len(b.Funcs) {
			t.Fatalf("%s: function counts differ", p.Name)
		}
		for i := range a.Funcs {
			if a.Funcs[i].String() != b.Funcs[i].String() {
				t.Fatalf("%s: function %d differs between identical generations", p.Name, i)
			}
		}
	}
}

func TestGenerateCallsResolves(t *testing.T) {
	for _, p := range callPresets(t) {
		prog, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		resolved, err := ir.NewProgram(prog.Funcs)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Callers precede callees, every caller actually calls, and every
		// callee carries the fixed two-GPR-param one-GPR-ret convention.
		sites := resolved.CallSites()
		if len(sites) == 0 {
			t.Fatalf("%s: no call sites generated", p.Name)
		}
		callers := map[int]bool{}
		for _, cs := range sites {
			callers[cs.Caller] = true
		}
		for i, fn := range prog.Funcs {
			if strings.Contains(fn.Name, "_f") && !callers[i] {
				t.Errorf("%s: caller %s has no call site", p.Name, fn.Name)
			}
			if strings.Contains(fn.Name, "_c") {
				if len(fn.Params) != 2 || len(fn.Rets) != 1 {
					t.Errorf("%s: callee %s convention %d/%d, want 2/1",
						p.Name, fn.Name, len(fn.Params), len(fn.Rets))
				}
			}
		}
		if p.Call.ChainDepth > 0 {
			// Chain preset: callee i calls callee i+1, leaf calls nobody.
			for i := 0; i < p.Call.ChainDepth-1; i++ {
				name := p.Name + "_c" + string(rune('0'+i))
				next := p.Name + "_c" + string(rune('0'+i+1))
				ci := resolved.Index(name)
				if ci < 0 {
					t.Fatalf("%s: chain link %s missing", p.Name, name)
				}
				found := false
				for _, cs := range sites {
					if cs.Caller == ci && prog.Funcs[cs.Callee].Name == next {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: %s does not call %s", p.Name, name, next)
				}
			}
			leaf := resolved.Index(p.Name + "_c" + string(rune('0'+p.Call.ChainDepth-1)))
			if cs := resolved.Callees(leaf); len(cs) != 0 {
				t.Errorf("%s: chain leaf calls %v", p.Name, cs)
			}
		}
	}
}

func TestGenerateCallsTerminates(t *testing.T) {
	for _, p := range callPresets(t) {
		prog, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		resolved, err := ir.NewProgram(prog.Funcs)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range prog.Funcs {
			if _, err := interp.RunIn(resolved, fn, interp.NewOracle(99), interp.Config{MaxSteps: 2_000_000}); err != nil {
				t.Errorf("%s/%s: %v", p.Name, fn.Name, err)
			}
		}
	}
}
